module vodcluster

go 1.22
