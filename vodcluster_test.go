package vodcluster_test

import (
	"testing"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
)

func TestReplicatorRegistry(t *testing.T) {
	for _, name := range []string{"adams", "zipf", "classification", "uniform"} {
		r, err := vodcluster.ReplicatorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != name {
			t.Fatalf("lookup %q returned %q", name, r.Name())
		}
	}
	if _, err := vodcluster.ReplicatorByName("nope"); err == nil {
		t.Fatal("unknown replicator accepted")
	}
	if len(vodcluster.Replicators()) != 4 {
		t.Fatal("registry size changed without updating tests")
	}
}

func TestPlacerRegistry(t *testing.T) {
	for _, name := range []string{"slf", "roundrobin", "greedy", "random", "wslf", "bsr"} {
		p, err := vodcluster.PlacerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("lookup %q returned %q", name, p.Name())
		}
	}
	if _, err := vodcluster.PlacerByName("nope"); err == nil {
		t.Fatal("unknown placer accepted")
	}
}

func TestSchedulerFactory(t *testing.T) {
	for _, name := range []string{"", "static-rr", "first-available", "least-loaded"} {
		f, err := vodcluster.SchedulerFactory(name, false)
		if err != nil {
			t.Fatal(err)
		}
		if f() == nil {
			t.Fatal("factory returned nil scheduler")
		}
	}
	if _, err := vodcluster.SchedulerFactory("nope", false); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	f, err := vodcluster.SchedulerFactory("static-rr", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := f().Name(); got != "static-rr+redirect" {
		t.Fatalf("redirect wrapper missing: %q", got)
	}
	// Factories must produce fresh instances (no shared state across runs).
	if f() == f() {
		t.Fatal("factory reused a scheduler instance")
	}
}

func TestBuildLayoutEndToEnd(t *testing.T) {
	s := config.Paper()
	p, err := s.Problem()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := vodcluster.ReplicatorByName("adams")
	pl, _ := vodcluster.PlacerByName("slf")
	layout, err := vodcluster.BuildLayout(p, r, pl, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.Validate(p); err != nil {
		t.Fatal(err)
	}
	if layout.TotalReplicas() != 120 {
		t.Fatalf("total replicas %d, want 120", layout.TotalReplicas())
	}
	if _, err := vodcluster.BuildLayout(p, r, pl, 0.2); err == nil {
		t.Fatal("degree below 1 accepted")
	}
}

func TestPipelineMatchesScenario(t *testing.T) {
	s := config.Paper()
	s.Degree = 1.4
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		t.Fatal(err)
	}
	if p.M() != s.Videos {
		t.Fatal("problem does not match scenario")
	}
	if layout.TotalReplicas() != 140 {
		t.Fatalf("replicas %d, want 140", layout.TotalReplicas())
	}
	if sched().Name() != "static-rr" {
		t.Fatal("scheduler mismatch")
	}
	s.Replicator = "bogus"
	if _, _, _, err := vodcluster.Pipeline(s); err == nil {
		t.Fatal("bogus scenario accepted")
	}
}

func TestSweepArrivalRates(t *testing.T) {
	s := config.Paper()
	s.Videos = 40
	s.Servers = 4
	s.LambdaPerMin = 20
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := vodcluster.SweepArrivalRates(p, layout, sched, []float64{5, 20, 30}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points %d", len(pts))
	}
	// Rejection must be (weakly) monotone across light → overload.
	if pts[0].Agg.RejectionRate.Mean() > pts[2].Agg.RejectionRate.Mean() {
		t.Fatalf("rejection not increasing in λ: %g vs %g",
			pts[0].Agg.RejectionRate.Mean(), pts[2].Agg.RejectionRate.Mean())
	}
	// Sweeping must not mutate the input problem's arrival rate.
	if p.ArrivalRate != 20.0/core.Minute {
		t.Fatal("sweep mutated the problem")
	}
}
