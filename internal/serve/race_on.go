//go:build race

package serve

// raceEnabled lets tests skip allocation accounting under the race
// detector, whose instrumentation allocates on paths that are clean in a
// normal build.
const raceEnabled = true
