package serve

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"vodcluster/internal/obs"
	"vodcluster/internal/resilience"
)

// RetryConfig tunes live admission retry-with-backoff. All durations are
// virtual seconds — the time base traces and the simulator use — divided by
// the daemon's compression factor for real sleeps, so a compressed replay
// retries on the same virtual schedule the simulator's resilience.Retrier
// does. Zero-valued fields take the simulator's defaults: base 5 s,
// factor 2, jitter 0.5, patience 120 s, queue limit 256.
type RetryConfig struct {
	// Base is the delay before the first retry, virtual seconds.
	Base float64
	// Factor multiplies the delay on each further attempt.
	Factor float64
	// Jitter spreads each delay uniformly over ±Jitter/2 of itself, in [0, 1].
	Jitter float64
	// Patience bounds the total virtual time a request backs off before
	// reneging, counted from its first rejection.
	Patience float64
	// Limit bounds how many requests wait in retry at once; requests
	// rejected while the queue is full fail immediately.
	Limit int
}

// retrier is the live retry queue: a bounded count of request goroutines
// sleeping out their exponential backoff on real clocks, with the same delay
// schedule, patience reneging, and queue bound as the simulator's
// resilience.Retrier.
type retrier struct {
	s       *Server
	pol     resilience.Policy
	pending atomic.Int64
	peak    atomic.Int64
}

// newRetrier validates the config against the shared resilience tunables.
func newRetrier(s *Server, cfg RetryConfig) (*retrier, error) {
	pol := resilience.Policy{
		Retry:         true,
		RetryBase:     cfg.Base,
		RetryFactor:   cfg.Factor,
		RetryJitter:   cfg.Jitter,
		RetryPatience: cfg.Patience,
		RetryLimit:    cfg.Limit,
	}.WithDefaults()
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &retrier{s: s, pol: pol}, nil
}

// RetryPending returns the number of requests currently waiting in the
// retry queue, and the largest queue depth seen. Both are 0 when retry is
// not configured.
func (s *Server) RetryPending() (pending, peak int64) {
	if s.retry == nil {
		return 0, 0
	}
	return s.retry.pending.Load(), s.retry.peak.Load()
}

// OpenRetry runs one admission decision with the daemon's retry policy: a
// capacity rejection backs off (exponentially, with jitter, in compressed
// virtual time) and re-attempts admission until accepted, out of patience,
// the queue is full, or ctx or the daemon shuts the request down. Exactly
// one settled decision is recorded per call, whatever the attempt count.
// With no retry configured it is exactly Open.
func (s *Server) OpenRetry(ctx context.Context, v int) (SessionInfo, Outcome, error) {
	if s.retry == nil {
		return s.Open(v)
	}
	arriveNS := s.tracer.NowNS()
	s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindArrive, Video: v})
	if v < 0 || v >= s.c.Videos() {
		s.met.BadVideo()
		return SessionInfo{}, OutcomeRejected, fmt.Errorf("serve: video %d outside catalog of %d", v, s.c.Videos())
	}
	s.observeDemand(v) // once per request, however many retry attempts follow
	start := time.Now()
	info, outcome := s.attempt(v, arriveNS, false)
	if outcome != OutcomeRejected {
		return info, outcome, nil
	}
	return s.retry.run(ctx, v, arriveNS, start)
}

// run owns one rejected request from its first (unsettled) rejection to its
// final outcome.
func (r *retrier) run(ctx context.Context, v int, arriveNS int64, start time.Time) (SessionInfo, Outcome, error) {
	s := r.s
	// Bounded queue: a full queue makes the rejection final immediately.
	for {
		n := r.pending.Load()
		if n >= int64(r.pol.RetryLimit) {
			s.met.Decision(false, false, false, time.Since(start))
			s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindReject, Video: v,
				DurNS: s.tracer.NowNS() - arriveNS, Detail: "retry queue full"})
			return SessionInfo{}, OutcomeRejected, nil
		}
		if r.pending.CompareAndSwap(n, n+1) {
			for {
				p := r.peak.Load()
				if n+1 <= p || r.peak.CompareAndSwap(p, n+1) {
					break
				}
			}
			break
		}
	}
	defer r.pending.Add(-1)

	renege := func(detail string) (SessionInfo, Outcome, error) {
		s.met.Reneged()
		s.met.Decision(false, false, false, time.Since(start))
		s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindRenege, Video: v,
			DurNS: s.tracer.NowNS() - arriveNS, Detail: detail})
		return SessionInfo{}, OutcomeRejected, nil
	}

	waited := 0.0 // virtual seconds spent backing off so far
	for attempt := 0; ; attempt++ {
		d := resilience.BackoffDelay(r.pol, attempt, rand.Float64())
		if waited+d > r.pol.RetryPatience {
			return renege("")
		}
		waited += d
		t := time.NewTimer(time.Duration(d / s.compress * float64(time.Second)))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return renege("context canceled")
		case <-s.baseCtx.Done():
			t.Stop()
			s.met.Decision(false, false, true, time.Since(start))
			s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindDrain, Video: v,
				DurNS: s.tracer.NowNS() - arriveNS})
			return SessionInfo{}, OutcomeDraining, nil
		}
		s.met.Retried()
		s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindRetry, Video: v,
			Detail: fmt.Sprintf("attempt %d", attempt+1)})
		info, outcome := s.attempt(v, arriveNS, false)
		if outcome != OutcomeRejected {
			return info, outcome, nil
		}
	}
}
