package serve

import (
	"fmt"
	"math"
	"sync/atomic"

	"vodcluster/internal/core"
)

// Cluster is the concurrent runtime counterpart of cluster.State: per-server
// outgoing-bandwidth accounting done with atomic compare-and-swap so the
// admission hot path never takes a lock. Bandwidth is tracked in integer
// bits/s (encoding rates round up, so accounting errs on the conservative
// side), and a reservation is the capacity check — TryReserve either charges
// the stream's rate atomically or reports that the link is full, so
// concurrent admissions can never oversubscribe a server.
type Cluster struct {
	p      *core.Problem
	layout *core.Layout

	holders [][]int // video -> sorted servers holding it
	rate    []int64 // video -> encoding rate, bits/s, rounded up

	capBps   []int64        // per-server outgoing capacity, bits/s
	used     []atomic.Int64 // per-server outgoing bits/s in use
	active   []atomic.Int64 // per-server active streams
	draining []atomic.Bool  // per-server drain flag: no new placements

	backboneCap  int64
	backboneUsed atomic.Int64
}

// NewCluster validates the layout against the problem and builds the
// concurrent accounting state.
func NewCluster(p *core.Problem, layout *core.Layout) (*Cluster, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := layout.Validate(p); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	c := &Cluster{
		p:           p,
		layout:      layout,
		holders:     make([][]int, p.M()),
		rate:        make([]int64, p.M()),
		capBps:      make([]int64, p.N()),
		used:        make([]atomic.Int64, p.N()),
		active:      make([]atomic.Int64, p.N()),
		draining:    make([]atomic.Bool, p.N()),
		backboneCap: int64(p.BackboneBandwidth),
	}
	for v := range c.holders {
		c.holders[v] = append([]int(nil), layout.Servers[v]...)
		c.rate[v] = int64(math.Ceil(p.Catalog[v].BitRate))
	}
	for s := range c.capBps {
		c.capBps[s] = int64(p.BandwidthOf(s))
	}
	return c, nil
}

// Problem returns the problem the cluster was built for.
func (c *Cluster) Problem() *core.Problem { return c.p }

// Layout returns the layout the cluster was built for.
func (c *Cluster) Layout() *core.Layout { return c.layout }

// Holders returns the servers holding video v (shared slice; do not modify).
func (c *Cluster) Holders(v int) []int { return c.holders[v] }

// Rate returns video v's encoding rate in bits/s.
func (c *Cluster) Rate(v int) int64 { return c.rate[v] }

// Servers returns the number of servers.
func (c *Cluster) Servers() int { return len(c.capBps) }

// Videos returns the catalog size.
func (c *Cluster) Videos() int { return len(c.holders) }

// Capacity returns server s's outgoing capacity in bits/s.
func (c *Cluster) Capacity(s int) int64 { return c.capBps[s] }

// Used returns server s's outgoing bandwidth in use, bits/s.
func (c *Cluster) Used(s int) int64 { return c.used[s].Load() }

// Free returns server s's unused outgoing bandwidth, bits/s.
func (c *Cluster) Free(s int) int64 { return c.capBps[s] - c.used[s].Load() }

// Active returns the number of active streams on server s's outgoing link.
func (c *Cluster) Active(s int) int64 { return c.active[s].Load() }

// Draining reports whether server s refuses new stream placements.
func (c *Cluster) Draining(s int) bool { return c.draining[s].Load() }

// SetDraining toggles server s's drain flag.
func (c *Cluster) SetDraining(s int, v bool) { c.draining[s].Store(v) }

// BackboneUsed returns the backbone bandwidth in use, bits/s.
func (c *Cluster) BackboneUsed() int64 { return c.backboneUsed.Load() }

// TryReserve atomically charges rate bits/s to server s's outgoing link. It
// fails when the server is draining or lacks headroom. The CAS loop makes
// the capacity check and the charge one atomic step: two racing admissions
// can both pass a read-then-check, but only one CAS wins and the loser
// re-reads the new load.
func (c *Cluster) TryReserve(s int, rate int64) bool {
	if c.draining[s].Load() {
		return false
	}
	for {
		u := c.used[s].Load()
		if u+rate > c.capBps[s] {
			return false
		}
		if c.used[s].CompareAndSwap(u, u+rate) {
			c.active[s].Add(1)
			return true
		}
	}
}

// ForceCharge charges rate to server s without a capacity check — used by
// policies whose own accounting (a locked cluster.State) already admitted
// the stream, so the concurrent gauges stay in step.
func (c *Cluster) ForceCharge(s int, rate int64) {
	c.used[s].Add(rate)
	c.active[s].Add(1)
}

// Release frees a reservation made by TryReserve or ForceCharge.
func (c *Cluster) Release(s int, rate int64) {
	c.used[s].Add(-rate)
	c.active[s].Add(-1)
}

// TryReserveBackbone atomically charges rate to the internal backbone.
func (c *Cluster) TryReserveBackbone(rate int64) bool {
	for {
		u := c.backboneUsed.Load()
		if u+rate > c.backboneCap {
			return false
		}
		if c.backboneUsed.CompareAndSwap(u, u+rate) {
			return true
		}
	}
}

// ForceChargeBackbone charges the backbone without a capacity check (locked
// policies own the check).
func (c *Cluster) ForceChargeBackbone(rate int64) { c.backboneUsed.Add(rate) }

// ReleaseBackbone frees a backbone reservation.
func (c *Cluster) ReleaseBackbone(rate int64) { c.backboneUsed.Add(-rate) }
