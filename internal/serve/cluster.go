package serve

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"vodcluster/internal/core"
)

// BackendState is the health/availability state of one backend server. The
// live failure-handling state machine is
//
//	up ⇄ suspect → down → recovering → up
//	up ⇄ draining            (operator-driven, orthogonal to health)
//
// Up, Suspect, and Recovering backends accept new stream placements; a
// Suspect backend is one the health checker has seen fail probes but not yet
// confirmed dead (flap damping), and a Recovering backend is back from a
// failure but not yet trusted at full confidence. Draining and Down backends
// refuse new placements; the difference is that a Draining backend's
// replicas are still readable (cooperative maintenance) while a Down
// backend's replicas are unreachable and count against live replication —
// which is what triggers re-replication repair.
type BackendState int32

// Backend states. The zero value is BackendUp so a fresh cluster serves.
const (
	BackendUp BackendState = iota
	BackendSuspect
	BackendRecovering
	BackendDraining
	BackendDown
)

var backendStateNames = [...]string{
	BackendUp:         "up",
	BackendSuspect:    "suspect",
	BackendRecovering: "recovering",
	BackendDraining:   "draining",
	BackendDown:       "down",
}

// String returns the state's wire name.
func (s BackendState) String() string {
	if int(s) < len(backendStateNames) {
		return backendStateNames[s]
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Eligible reports whether a backend in this state accepts new placements.
func (s BackendState) Eligible() bool {
	return s == BackendUp || s == BackendSuspect || s == BackendRecovering
}

// Cluster is the concurrent runtime counterpart of cluster.State: per-server
// outgoing-bandwidth accounting done with atomic compare-and-swap so the
// admission hot path never takes a lock. Bandwidth is tracked in integer
// bits/s (encoding rates round up, so accounting errs on the conservative
// side), and a reservation is the capacity check — TryReserve either charges
// the stream's rate atomically or reports that the link is full, so
// concurrent admissions can never oversubscribe a server.
type Cluster struct {
	p      *core.Problem
	layout *core.Layout

	holders []atomic.Pointer[[]int] // video -> sorted servers holding it
	rate    []int64                 // video -> encoding rate, bits/s, rounded up

	capBps []int64        // per-server outgoing capacity, bits/s
	used   []atomic.Int64 // per-server outgoing bits/s in use
	active []atomic.Int64 // per-server active streams
	state  []atomic.Int32 // per-server BackendState

	backboneCap  int64
	backboneUsed atomic.Int64

	layoutVersion atomic.Int64 // bumped on every holder-list change
}

// NewCluster validates the layout against the problem and builds the
// concurrent accounting state.
func NewCluster(p *core.Problem, layout *core.Layout) (*Cluster, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := layout.Validate(p); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	c := &Cluster{
		p:           p,
		layout:      layout,
		holders:     make([]atomic.Pointer[[]int], p.M()),
		rate:        make([]int64, p.M()),
		capBps:      make([]int64, p.N()),
		used:        make([]atomic.Int64, p.N()),
		active:      make([]atomic.Int64, p.N()),
		state:       make([]atomic.Int32, p.N()),
		backboneCap: int64(p.BackboneBandwidth),
	}
	for v := range c.holders {
		hs := append([]int(nil), layout.Servers[v]...)
		c.holders[v].Store(&hs)
		c.rate[v] = int64(math.Ceil(p.Catalog[v].BitRate))
	}
	for s := range c.capBps {
		c.capBps[s] = int64(p.BandwidthOf(s))
	}
	c.layoutVersion.Store(1) // the seeded layout is version 1
	return c, nil
}

// Problem returns the problem the cluster was built for.
func (c *Cluster) Problem() *core.Problem { return c.p }

// Layout returns the layout the cluster was built for. Replicas added at
// runtime by the repairer live in the cluster's holder lists, not here.
func (c *Cluster) Layout() *core.Layout { return c.layout }

// Holders returns the servers holding video v (shared slice; do not modify).
func (c *Cluster) Holders(v int) []int { return *c.holders[v].Load() }

// AddHolder registers a new replica of video v on server s at runtime — the
// repair path landing a re-replicated copy. The holder list is republished
// atomically so concurrent admissions always see a consistent sorted slice.
// It reports false when s already held a copy.
func (c *Cluster) AddHolder(v, s int) bool {
	for {
		old := c.holders[v].Load()
		for _, h := range *old {
			if h == s {
				return false
			}
		}
		hs := append(append([]int(nil), *old...), s)
		sort.Ints(hs)
		if c.holders[v].CompareAndSwap(old, &hs) {
			c.layoutVersion.Add(1)
			return true
		}
	}
}

// RemoveHolder deregisters video v's replica on server s at runtime — the
// rebalancer's eviction landing. The shrunken holder list is republished
// atomically, like AddHolder's growth. It reports false when s holds no copy
// or when the copy is the video's last: the directory never goes empty, so
// scheduling always has at least one candidate (constraint Eq. 7).
func (c *Cluster) RemoveHolder(v, s int) bool {
	for {
		old := c.holders[v].Load()
		i := -1
		for j, h := range *old {
			if h == s {
				i = j
				break
			}
		}
		if i < 0 || len(*old) <= 1 {
			return false
		}
		hs := append([]int(nil), (*old)[:i]...)
		hs = append(hs, (*old)[i+1:]...)
		if c.holders[v].CompareAndSwap(old, &hs) {
			c.layoutVersion.Add(1)
			return true
		}
	}
}

// LayoutVersion returns the monotone layout version: 1 for the seeded
// layout, bumped on every holder-list change (repair copies, rebalance
// migrations, evictions). Clients diffing GET /layout poll it to detect
// placement churn cheaply.
func (c *Cluster) LayoutVersion() int64 { return c.layoutVersion.Load() }

// TotalReplicatedBytes sums the storage footprint of every replica currently
// in the directory.
func (c *Cluster) TotalReplicatedBytes() float64 {
	total := 0.0
	for v := range c.holders {
		total += float64(len(c.Holders(v))) * c.p.Catalog[v].SizeBytes()
	}
	return total
}

// LiveReplicas counts the replicas of v on backends that are not Down —
// the quantity the repairer compares against its replication threshold.
// Draining backends count: their data is still readable.
func (c *Cluster) LiveReplicas(v int) int {
	n := 0
	for _, s := range c.Holders(v) {
		if c.State(s) != BackendDown {
			n++
		}
	}
	return n
}

// Rate returns video v's encoding rate in bits/s.
func (c *Cluster) Rate(v int) int64 { return c.rate[v] }

// Servers returns the number of servers.
func (c *Cluster) Servers() int { return len(c.capBps) }

// Videos returns the catalog size.
func (c *Cluster) Videos() int { return len(c.holders) }

// Capacity returns server s's outgoing capacity in bits/s.
func (c *Cluster) Capacity(s int) int64 { return c.capBps[s] }

// Used returns server s's outgoing bandwidth in use, bits/s.
func (c *Cluster) Used(s int) int64 { return c.used[s].Load() }

// Free returns server s's unused outgoing bandwidth, bits/s.
func (c *Cluster) Free(s int) int64 { return c.capBps[s] - c.used[s].Load() }

// Active returns the number of active streams on server s's outgoing link.
func (c *Cluster) Active(s int) int64 { return c.active[s].Load() }

// State returns server s's backend state.
func (c *Cluster) State(s int) BackendState { return BackendState(c.state[s].Load()) }

// SetState stores server s's backend state unconditionally.
func (c *Cluster) SetState(s int, st BackendState) { c.state[s].Store(int32(st)) }

// CASState transitions server s from one state to another atomically; it
// reports whether the transition won. State-machine drivers (failure
// injection, the health checker) use this so exactly one caller owns each
// transition even when they race.
func (c *Cluster) CASState(s int, from, to BackendState) bool {
	return c.state[s].CompareAndSwap(int32(from), int32(to))
}

// Eligible reports whether server s accepts new stream placements.
func (c *Cluster) Eligible(s int) bool { return c.State(s).Eligible() }

// Draining reports whether server s refuses new stream placements — true
// for both the cooperative Draining state and the crashed Down state.
func (c *Cluster) Draining(s int) bool { return !c.Eligible(s) }

// SetDraining toggles server s between the operator-driven Draining state
// and Up. It is the legacy drain switch: state transitions richer than
// up ⇄ draining go through CASState.
func (c *Cluster) SetDraining(s int, v bool) {
	if v {
		c.SetState(s, BackendDraining)
	} else {
		c.SetState(s, BackendUp)
	}
}

// BackboneUsed returns the backbone bandwidth in use, bits/s.
func (c *Cluster) BackboneUsed() int64 { return c.backboneUsed.Load() }

// TryReserve atomically charges rate bits/s to server s's outgoing link. It
// fails when the server is ineligible (draining or down) or lacks headroom.
// The CAS loop makes the capacity check and the charge one atomic step: two
// racing admissions can both pass a read-then-check, but only one CAS wins
// and the loser re-reads the new load.
func (c *Cluster) TryReserve(s int, rate int64) bool {
	if !c.Eligible(s) {
		return false
	}
	for {
		u := c.used[s].Load()
		if u+rate > c.capBps[s] {
			return false
		}
		if c.used[s].CompareAndSwap(u, u+rate) {
			c.active[s].Add(1)
			return true
		}
	}
}

// TryReserveBandwidth charges rate bits/s to server s's outgoing link
// without counting an active stream — repair copies occupying the link
// without being viewer sessions. Unlike TryReserve it only requires the
// server to be reachable (not Down), so a draining source can still feed a
// re-replication copy.
func (c *Cluster) TryReserveBandwidth(s int, rate int64) bool {
	if c.State(s) == BackendDown {
		return false
	}
	for {
		u := c.used[s].Load()
		if u+rate > c.capBps[s] {
			return false
		}
		if c.used[s].CompareAndSwap(u, u+rate) {
			return true
		}
	}
}

// ReleaseBandwidth frees a TryReserveBandwidth charge.
func (c *Cluster) ReleaseBandwidth(s int, rate int64) { c.used[s].Add(-rate) }

// ForceCharge charges rate to server s without a capacity check — used by
// policies whose own accounting (a locked cluster.State) already admitted
// the stream, so the concurrent gauges stay in step.
func (c *Cluster) ForceCharge(s int, rate int64) {
	c.used[s].Add(rate)
	c.active[s].Add(1)
}

// Release frees a reservation made by TryReserve or ForceCharge.
func (c *Cluster) Release(s int, rate int64) {
	c.used[s].Add(-rate)
	c.active[s].Add(-1)
}

// TryReserveBackbone atomically charges rate to the internal backbone.
func (c *Cluster) TryReserveBackbone(rate int64) bool {
	for {
		u := c.backboneUsed.Load()
		if u+rate > c.backboneCap {
			return false
		}
		if c.backboneUsed.CompareAndSwap(u, u+rate) {
			return true
		}
	}
}

// ForceChargeBackbone charges the backbone without a capacity check (locked
// policies own the check).
func (c *Cluster) ForceChargeBackbone(rate int64) { c.backboneUsed.Add(rate) }

// ReleaseBackbone frees a backbone reservation.
func (c *Cluster) ReleaseBackbone(rate int64) { c.backboneUsed.Add(-rate) }
