package serve

// FastConn is the client side of the admission hot path: one persistent
// keep-alive connection speaking hand-rolled HTTP/1.1 to the body-first
// routes (/open, /open/batch, /close), with explicit queue/flush/read
// primitives so callers can pipeline many requests per round trip. It is
// deliberately not safe for concurrent use — the replay engine and the
// benchmark both run one FastConn per worker goroutine, which is the shape
// that lets the sharded ingress keep every connection on one listener.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"strconv"
	"time"
)

// FastConn pipelines admission requests over one TCP connection.
type FastConn struct {
	conn net.Conn
	br   *bufio.Reader
	host string
	// Timeout bounds each flush-to-response round trip (default 30s).
	Timeout time.Duration

	out      []byte // queued request bytes
	req      []byte // request-body scratch
	scratch  []byte // response-body scratch; valid until the next read
	sawClose bool   // server announced Connection: close
}

// DialFast opens a fast admission connection to host:port.
func DialFast(hostport string) (*FastConn, error) {
	d := net.Dialer{Timeout: 10 * time.Second}
	conn, err := d.Dial("tcp", hostport)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &FastConn{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 16<<10),
		host:    hostport,
		Timeout: 30 * time.Second,
	}, nil
}

// DialFast opens a fast admission connection to the client's daemon.
func (c *Client) DialFast() (*FastConn, error) {
	u, err := url.Parse(c.Base)
	if err != nil {
		return nil, fmt.Errorf("serve: fast dial: %w", err)
	}
	if u.Scheme != "" && u.Scheme != "http" {
		return nil, fmt.Errorf("serve: fast transport speaks plain http, not %s", u.Scheme)
	}
	host := u.Host
	if host == "" {
		host = u.Path // "host:port" with no scheme parses into Path
	}
	return DialFast(host)
}

// Close tears the connection down.
func (fc *FastConn) Close() error { return fc.conn.Close() }

// appendRequest queues one POST with the given body.
func (fc *FastConn) appendRequest(path string, body []byte) {
	out := append(fc.out, "POST "...)
	out = append(out, path...)
	out = append(out, " HTTP/1.1\r\nHost: "...)
	out = append(out, fc.host...)
	out = append(out, "\r\nContent-Length: "...)
	out = strconv.AppendInt(out, int64(len(body)), 10)
	out = append(out, "\r\n\r\n"...)
	fc.out = append(out, body...)
}

// QueueOpen queues one admission request for video v.
func (fc *FastConn) QueueOpen(v int) {
	fc.req = append(fc.req[:0], `{"video":`...)
	fc.req = strconv.AppendInt(fc.req, int64(v), 10)
	fc.req = append(fc.req, '}')
	fc.appendRequest("/open", fc.req)
}

// QueueOpenBatch queues one batch admission request.
func (fc *FastConn) QueueOpenBatch(vids []int) {
	fc.req = append(fc.req[:0], `{"videos":[`...)
	for i, v := range vids {
		if i > 0 {
			fc.req = append(fc.req, ',')
		}
		fc.req = strconv.AppendInt(fc.req, int64(v), 10)
	}
	fc.req = append(fc.req, ']', '}')
	fc.appendRequest("/open/batch", fc.req)
}

// QueueClose queues one session-close request.
func (fc *FastConn) QueueClose(id int64) {
	fc.req = append(fc.req[:0], `{"id":`...)
	fc.req = strconv.AppendInt(fc.req, id, 10)
	fc.req = append(fc.req, '}')
	fc.appendRequest("/close", fc.req)
}

// Flush writes every queued request in one syscall and arms the round-trip
// deadline. Responses must then be read in queue order.
func (fc *FastConn) Flush() error {
	if len(fc.out) == 0 {
		return nil
	}
	if fc.Timeout > 0 {
		fc.conn.SetDeadline(time.Now().Add(fc.Timeout))
	}
	_, err := fc.conn.Write(fc.out)
	fc.out = fc.out[:0]
	return err
}

// readResponse reads one response; the body aliases the connection scratch
// buffer and is valid only until the next read.
func (fc *FastConn) readResponse() (int, []byte, error) {
	if fc.sawClose {
		return 0, nil, errors.New("serve: connection closed by server")
	}
	line, err := fc.br.ReadSlice('\n')
	if err != nil {
		return 0, nil, err
	}
	line = trimCRLF(line)
	sp := bytes.IndexByte(line, ' ')
	if !bytes.HasPrefix(line, []byte("HTTP/1.")) || sp < 0 || len(line) < sp+4 {
		return 0, nil, fmt.Errorf("serve: malformed status line %q", line)
	}
	status, ok := atoiBytes(line[sp+1 : sp+4])
	if !ok {
		return 0, nil, fmt.Errorf("serve: malformed status line %q", line)
	}
	clen := -1
	for {
		h, err := fc.br.ReadSlice('\n')
		if err != nil {
			return 0, nil, err
		}
		h = trimCRLF(h)
		if len(h) == 0 {
			break
		}
		if v, ok := headerValue(h, "content-length"); ok {
			n, nok := atoiBytes(trimSpaces(v))
			if !nok {
				return 0, nil, fmt.Errorf("serve: malformed Content-Length %q", v)
			}
			clen = n
		} else if v, ok := headerValue(h, "connection"); ok {
			if asciiEqualFold(trimSpaces(v), "close") {
				fc.sawClose = true
			}
		}
	}
	if clen < 0 {
		return 0, nil, errors.New("serve: response without Content-Length (fast client has no chunked decoder)")
	}
	if cap(fc.scratch) < clen {
		fc.scratch = make([]byte, clen)
	}
	body := fc.scratch[:clen]
	if _, err := io.ReadFull(fc.br, body); err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

// ReadOpen reads one queued /open response.
func (fc *FastConn) ReadOpen() (SessionInfo, Outcome, error) {
	status, body, err := fc.readResponse()
	if err != nil {
		return SessionInfo{}, "", err
	}
	switch status {
	case 200:
		info, err := parseSessionInfoWire(body)
		return info, OutcomeAccepted, err
	case 503:
		out, _, err := parseOutcomeWire(body)
		if err != nil || out == "" {
			return SessionInfo{}, OutcomeRejected, nil
		}
		return SessionInfo{}, out, nil
	default:
		return SessionInfo{}, "", fmt.Errorf("serve: open: status %d: %s", status, excerpt(body))
	}
}

// OpenResult is one element of a batch admission response.
type OpenResult struct {
	Info    SessionInfo
	Outcome Outcome
	Err     string // error text for refused-with-reason elements
}

// ReadOpenBatch reads one queued /open/batch response, appending one
// OpenResult per requested video (request order) to dst.
func (fc *FastConn) ReadOpenBatch(dst []OpenResult) ([]OpenResult, error) {
	status, body, err := fc.readResponse()
	if err != nil {
		return dst, err
	}
	if status != 200 {
		return dst, fmt.Errorf("serve: batch: status %d: %s", status, excerpt(body))
	}
	err = splitJSONArray(body, func(elem []byte) error {
		if bytes.HasPrefix(elem, []byte(`{"id":`)) {
			info, err := parseSessionInfoWire(elem)
			if err != nil {
				return err
			}
			dst = append(dst, OpenResult{Info: info, Outcome: OutcomeAccepted})
			return nil
		}
		out, msg, err := parseOutcomeWire(elem)
		if err != nil {
			return err
		}
		dst = append(dst, OpenResult{Outcome: out, Err: msg})
		return nil
	})
	return dst, err
}

// ReadClose reads one queued /close response; false means the session was
// already gone.
func (fc *FastConn) ReadClose() (bool, error) {
	status, body, err := fc.readResponse()
	if err != nil {
		return false, err
	}
	switch status {
	case 200:
		return true, nil
	case 404:
		return false, nil
	default:
		return false, fmt.Errorf("serve: close: status %d: %s", status, excerpt(body))
	}
}

// Open runs one admission decision synchronously.
func (fc *FastConn) Open(v int) (SessionInfo, Outcome, error) {
	fc.QueueOpen(v)
	if err := fc.Flush(); err != nil {
		return SessionInfo{}, "", err
	}
	return fc.ReadOpen()
}

// OpenBatch runs one batch admission synchronously.
func (fc *FastConn) OpenBatch(vids []int, dst []OpenResult) ([]OpenResult, error) {
	fc.QueueOpenBatch(vids)
	if err := fc.Flush(); err != nil {
		return dst, err
	}
	return fc.ReadOpenBatch(dst)
}

// CloseSession ends one session synchronously.
func (fc *FastConn) CloseSession(id int64) (bool, error) {
	fc.QueueClose(id)
	if err := fc.Flush(); err != nil {
		return false, err
	}
	return fc.ReadClose()
}

// parseSessionInfoWire decodes an accepted-session body. The canonical
// appendSessionInfo shape parses inline; anything else (a proxy re-encoding,
// a reordered hand-written body) goes through encoding/json.
func parseSessionInfoWire(b []byte) (SessionInfo, error) {
	var info SessionInfo
	i := 0
	expect := func(tok string) bool {
		if len(b)-i >= len(tok) && string(b[i:i+len(tok)]) == tok {
			i += len(tok)
			return true
		}
		return false
	}
	field := func(pre string, dst *int64) bool {
		if !expect(pre) {
			return false
		}
		v, next, ok := parseInt(b, i)
		if !ok {
			return false
		}
		*dst = v
		i = next
		return true
	}
	var video, server, source int64
	canonical := func() bool {
		if !field(`{"id":`, &info.ID) ||
			!field(`,"video":`, &video) ||
			!field(`,"server":`, &server) ||
			!field(`,"source":`, &source) ||
			!field(`,"rate_bps":`, &info.RateBps) {
			return false
		}
		if !expect(`,"redirected":`) {
			return false
		}
		switch {
		case expect("true"):
			info.Redirected = true
		case expect("false"):
		default:
			return false
		}
		if !expect(`,"expires_in_s":`) {
			return false
		}
		j := bytes.IndexByte(b[i:], '}')
		if j < 0 || i+j != len(b)-1 {
			return false
		}
		f, err := strconv.ParseFloat(string(b[i:i+j]), 64)
		if err != nil {
			return false
		}
		info.ExpiresInS = f
		return true
	}
	if canonical() {
		info.Video, info.Server, info.Source = int(video), int(server), int(source)
		return info, nil
	}
	info = SessionInfo{}
	if err := json.Unmarshal(b, &info); err != nil {
		return SessionInfo{}, fmt.Errorf("serve: decoding session: %w", err)
	}
	return info, nil
}

// parseOutcomeWire decodes a refusal/error envelope.
func parseOutcomeWire(b []byte) (Outcome, string, error) {
	switch string(b) {
	case `{"outcome":"rejected"}`:
		return OutcomeRejected, "", nil
	case `{"outcome":"draining"}`:
		return OutcomeDraining, "", nil
	}
	var e errorBody
	if err := json.Unmarshal(b, &e); err != nil {
		return "", "", fmt.Errorf("serve: decoding outcome: %w", err)
	}
	return e.Outcome, e.Error, nil
}

// splitJSONArray calls fn for each top-level element of the array b.
func splitJSONArray(b []byte, fn func([]byte) error) error {
	if len(b) < 2 || b[0] != '[' || b[len(b)-1] != ']' {
		return fmt.Errorf("serve: batch response is not an array: %s", excerpt(b))
	}
	inner := b[1 : len(b)-1]
	if len(inner) == 0 {
		return nil
	}
	depth, start := 0, 0
	inStr, esc := false, false
	for i := 0; i < len(inner); i++ {
		c := inner[i]
		if inStr {
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		case ',':
			if depth == 0 {
				if err := fn(inner[start:i]); err != nil {
					return err
				}
				start = i + 1
			}
		}
	}
	return fn(inner[start:])
}

// atoiBytes parses a small non-negative decimal without allocating.
func atoiBytes(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 9 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// excerpt bounds a body for inclusion in an error message.
func excerpt(b []byte) []byte {
	if len(b) > 256 {
		return b[:256]
	}
	return b
}
