package serve

// Sharded dispatch (DESIGN.md §15): Config.Shards > 1 partitions the
// cluster's servers into contiguous groups, each owned by one dispatcher
// goroutine. An owner drains its mailbox in batches — every wakeup takes the
// whole accumulated batch, so under load the channel/wakeup cost amortizes
// over many admissions — and is the only goroutine that commits admissions
// onto its servers, so same-server admissions never contend on the CAS loop
// and directory changes (rebalance/repair landings, evictions) serialize
// with the admission stream by construction. Session lifetime is tracked
// with a per-shard expiry heap and one timer instead of a goroutine and
// context per session, and session/op objects are pooled, so an admission
// allocates nothing in steady state.
//
// The sim:* policies, which the single-shard engine serves through a global
// lock (SimPolicy), run sharded on a snapshot-and-verify protocol instead:
// the dispatcher reads each shard's version counter, ranks candidates
// against the lock-free gauges, and submits the decision with the expected
// version; the owner rejects the commit when the shard's state moved in
// between (a conflict), and the dispatcher re-decides against a fresh
// snapshot. After maxSnapshotRetries conflicts the request degrades to the
// unverified path — owners still re-check capacity, so the protocol bounds
// decision staleness without risking livelock.
//
// Shards ≤ 1 never constructs any of this: the daemon runs the original
// code path bit-identically, which is what the live-vs-sim smoke
// cross-checks validate.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vodcluster/internal/obs"
	"vodcluster/internal/policy"
)

// maxSnapshotRetries bounds how many times a snapshot-verified admission
// re-decides after a version conflict before degrading to the unverified
// path. Conflicts are counted in vod_snapshot_conflicts_total either way.
const maxSnapshotRetries = 8

// errShardStopped reports an operation submitted to a dispatcher that has
// already shut down; callers surface it as a draining outcome.
var errShardStopped = errors.New("serve: dispatch shard stopped")

// engine is the sharded dispatch runtime: the shard set, the server→shard
// map, the candidate ranker of the configured policy, and the object pools
// the hot path draws from.
type engine struct {
	s      *Server
	rk     ranker
	name   string // policy name reported by /metrics and /layout
	verify bool   // snapshot-and-verify commits (sim:* policies)

	shards  []*shard
	shardOf []int // server index -> owning shard index

	opPool      sync.Pool // *shardOp
	sessPool    sync.Pool // *session
	scratchPool sync.Pool // *rankScratch
}

// shard owns a contiguous server range [lo, hi): its dispatcher goroutine is
// the only committer of admissions onto those servers, and its registry
// holds every session whose id was allocated here (id mod len(shards) ==
// idx), wherever the session's grant lives after failovers.
type shard struct {
	eng     *engine
	idx     int
	lo, hi  int
	version atomic.Int64 // bumped on every accounting or directory commit here

	// mailbox: an unbounded slice guarded by a mutex plus a 1-slot wakeup
	// channel, so cross-shard submissions never block however deep the
	// backlog — which is what keeps owner→owner operations deadlock-free.
	mbMu   sync.Mutex
	mb     []*shardOp
	dead   bool // set under mbMu when the owner exits; submissions fail fast
	notify chan struct{}

	// registry of birth-shard sessions. The owner is the main writer, but
	// eviction scans and Close remove entries from other goroutines, so a
	// shard-local mutex guards it; presence in the map is the settlement
	// token — whoever removes an entry owns ending that session.
	regMu sync.Mutex
	reg   map[int64]*session

	nextID int64      // owner-only id allocator; ids are nextID*nshards+idx
	exp    expiryHeap // owner-only session-deadline heap
	done   chan struct{}
}

// opKind selects what a shardOp asks the owner to do.
type opKind uint8

const (
	opAdmit    opKind = iota // reserve + register one session on an owned server
	opSchedule               // async: re-arm an expiry entry (failover reinstate)
	opLand                   // rebalance migration: publish a replica
	opEvict                  // rebalance eviction: remove a replica
	opRepair                 // repair landing: publish a replica, no migration count
)

// shardOp is one pooled mailbox message; sync ops carry a 1-buffered done
// channel the owner signals exactly once.
type shardOp struct {
	kind     opKind
	async    bool
	video    int
	server   int
	rate     int64
	verify   int64 // expected shard version; -1 disables the snapshot check
	id       int64
	deadline time.Time

	info     SessionInfo
	ok       bool
	conflict bool
	err      error
	done     chan struct{}
}

// rankScratch is the pooled per-request working set of one admission:
// candidate and free-bandwidth slices for the ranker plus the shard-version
// snapshot, so ranking allocates nothing once the pool is warm.
type rankScratch struct {
	cands []int
	frees []int64
	vers  []int64
}

// ranker orders the admission candidates for one request — the lock-free
// decision half of a policy, decoupled from the commit so the sharded
// dispatcher can verify and reserve at the owning shard.
type ranker interface {
	// rank writes video v's candidate servers into sc.cands, most preferred
	// first. Owners re-check eligibility and capacity at commit time, so a
	// ranker's filtering is an optimization, not a safety requirement.
	rank(c *Cluster, v int, rate int64, sc *rankScratch) []int
}

// llRanker mirrors the least-loaded policy: eligible holders with room for
// the stream, most free outgoing bandwidth first (ties to the lower index).
type llRanker struct{}

func (llRanker) rank(c *Cluster, v int, rate int64, sc *rankScratch) []int {
	out, frees := sc.cands[:0], sc.frees[:0]
	for _, s := range c.Holders(v) {
		if c.Draining(s) {
			continue
		}
		f := c.Free(s)
		if f < rate {
			continue
		}
		// Insertion keeps frees descending; holders iterate in ascending
		// server order and ties don't displace, so equal-free candidates
		// stay ordered by index.
		i := len(out)
		out = append(out, 0)
		frees = append(frees, 0)
		for i > 0 && frees[i-1] < f {
			out[i], frees[i] = out[i-1], frees[i-1]
			i--
		}
		out[i], frees[i] = s, f
	}
	sc.cands, sc.frees = out, frees
	return out
}

// rotRanker mirrors static-rr (§3.2) and first-available: a per-video atomic
// cursor advances exactly once per request; probe widens the candidate list
// from the designated holder to the whole rotation.
type rotRanker struct {
	cursor []atomic.Int64
	probe  bool
}

func (r *rotRanker) rank(c *Cluster, v int, rate int64, sc *rankScratch) []int {
	hs := c.Holders(v)
	out := sc.cands[:0]
	if len(hs) == 0 {
		sc.cands = out
		return out
	}
	k := int((r.cursor[v].Add(1) - 1) % int64(len(hs)))
	n := 1
	if r.probe {
		n = len(hs)
	}
	for i := 0; i < n; i++ {
		out = append(out, hs[(k+i)%len(hs)])
	}
	sc.cands = out
	return out
}

// newEngine builds the sharded dispatch runtime and starts one owner
// goroutine per shard. The policy name resolves to a ranker: the three
// lock-free policies run unverified, their sim: forms run with
// snapshot-and-verify commits. Policies without a ranker (and backbone
// redirection, which no ranker models yet) require the single-shard engine.
func newEngine(s *Server, nshard int, polName string) (*engine, error) {
	c := s.c
	if c.Problem().BackboneBandwidth > 0 {
		return nil, fmt.Errorf("serve: sharded dispatch does not support backbone redirection yet; run with 1 shard")
	}
	base, sim := strings.CutPrefix(polName, "sim:")
	if !sim {
		base = polName
	} else {
		e, err := policy.Lookup(base)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		base = e.Name
	}
	var rk ranker
	switch base {
	case "", "least-loaded":
		rk, base = llRanker{}, "least-loaded"
	case "static-rr":
		rk = &rotRanker{cursor: make([]atomic.Int64, c.Videos())}
	case "first-available":
		rk = &rotRanker{cursor: make([]atomic.Int64, c.Videos()), probe: true}
	default:
		if sim {
			return nil, fmt.Errorf("serve: policy %q has no sharded dispatch ranker; run with 1 shard", polName)
		}
		return nil, policy.UnknownServeError(polName)
	}
	name := base
	if sim {
		name = "sim:" + base
	}
	n := c.Servers()
	if nshard > n {
		nshard = n
	}
	eng := &engine{s: s, rk: rk, name: name, verify: sim, shardOf: make([]int, n)}
	for i := 0; i < nshard; i++ {
		sh := &shard{
			eng: eng, idx: i,
			lo: i * n / nshard, hi: (i + 1) * n / nshard,
			notify: make(chan struct{}, 1),
			reg:    make(map[int64]*session),
			done:   make(chan struct{}),
		}
		for b := sh.lo; b < sh.hi; b++ {
			eng.shardOf[b] = i
		}
		eng.shards = append(eng.shards, sh)
	}
	for _, sh := range eng.shards {
		go sh.run()
	}
	s.met.SetShards(nshard)
	return eng, nil
}

// Shards reports how many admission shards the daemon dispatches through
// (1 for the legacy single-shard engine).
func (s *Server) Shards() int {
	if s.eng == nil {
		return 1
	}
	return len(s.eng.shards)
}

// --- pools ---

func (e *engine) getOp() *shardOp {
	if v := e.opPool.Get(); v != nil {
		op := v.(*shardOp)
		*op = shardOp{done: op.done}
		return op
	}
	return &shardOp{done: make(chan struct{}, 1)}
}

func (e *engine) putOp(op *shardOp) { e.opPool.Put(op) }

func (e *engine) getSession() *session {
	if v := e.sessPool.Get(); v != nil {
		return v.(*session)
	}
	return new(session)
}

func (e *engine) putSession(sess *session) {
	*sess = session{}
	e.sessPool.Put(sess)
}

func (e *engine) getScratch() *rankScratch {
	if v := e.scratchPool.Get(); v != nil {
		return v.(*rankScratch)
	}
	return &rankScratch{}
}

func (e *engine) putScratch(sc *rankScratch) { e.scratchPool.Put(sc) }

// --- accounting (version-stamped) ---

// reserve charges one stream onto server b and stamps the owning shard's
// version so snapshot readers observe the commit.
func (e *engine) reserve(b int, rate int64) bool {
	if !e.s.c.TryReserve(b, rate) {
		return false
	}
	e.shards[e.shardOf[b]].version.Add(1)
	return true
}

// release returns a grant's bandwidth. Releases are plain atomic adds, so
// any goroutine may settle a session without routing through the owner; the
// version stamp keeps snapshot readers honest.
func (e *engine) release(g Grant) {
	e.s.c.Release(g.Server, g.Rate)
	e.shards[e.shardOf[g.Server]].version.Add(1)
	if g.Redirected {
		e.s.c.ReleaseBackbone(g.Rate)
	}
}

// --- shard mailbox ---

// submit enqueues op; a dead shard fails it immediately so callers never
// block on a stopped owner.
func (sh *shard) submit(op *shardOp) {
	sh.mbMu.Lock()
	if sh.dead {
		sh.mbMu.Unlock()
		if op.async {
			sh.eng.putOp(op)
			return
		}
		op.err = errShardStopped
		op.done <- struct{}{}
		return
	}
	sh.mb = append(sh.mb, op)
	sh.mbMu.Unlock()
	select {
	case sh.notify <- struct{}{}:
	default:
	}
}

// call submits op and waits for the owner (or the dead-shard fast path) to
// signal completion.
func (sh *shard) call(op *shardOp) {
	sh.submit(op)
	<-op.done
}

// scheduleExpiry asks the owner to (re-)arm an expiry entry — the failover
// reinstate path; duplicate entries for one id are harmless because firing
// checks the registry.
func (sh *shard) scheduleExpiry(id int64, at time.Time) {
	op := sh.eng.getOp()
	op.kind, op.async, op.id, op.deadline = opSchedule, true, id, at
	sh.submit(op)
}

// --- owner loop ---

// run is the shard dispatcher: wake on mail or the next session deadline,
// drain the whole accumulated batch, fire due expiries, re-arm the timer.
// The mailbox slice double-buffers with a spare: each drain swaps in the
// previous batch's (fully processed) backing array instead of handing the
// allocator a nil slice, so steady-state dispatch appends into warm memory.
func (sh *shard) run() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	var spare []*shardOp
	for {
		select {
		case <-sh.eng.s.baseCtx.Done():
			sh.shutdown()
			return
		case <-sh.notify:
		case <-timer.C:
		}
		for {
			sh.mbMu.Lock()
			batch := sh.mb
			if len(batch) == 0 {
				sh.mbMu.Unlock()
				break
			}
			sh.mb = spare
			sh.mbMu.Unlock()
			for i, op := range batch {
				sh.exec(op)
				batch[i] = nil // drop the ref; ops recycle through the pool
			}
			spare = batch[:0]
		}
		sh.fireExpired()
		if len(sh.exp) > 0 {
			d := time.Until(sh.exp[0].at)
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
		} else {
			timer.Reset(time.Hour)
		}
	}
}

func (sh *shard) exec(op *shardOp) {
	switch op.kind {
	case opAdmit:
		sh.execAdmit(op)
	case opSchedule:
		sh.exp.push(expiry{at: op.deadline, id: op.id})
		sh.eng.putOp(op)
		return
	case opLand:
		op.err = sh.execLand(op)
	case opEvict:
		op.err = sh.execEvict(op)
	case opRepair:
		op.ok = sh.execRepair(op)
	}
	op.done <- struct{}{}
}

// execAdmit commits one admission onto an owned server: verify the snapshot
// version (when asked), reserve, register a pooled session, arm its expiry.
func (sh *shard) execAdmit(op *shardOp) {
	e := sh.eng
	if op.verify >= 0 && sh.version.Load() != op.verify {
		op.conflict = true
		return
	}
	if !e.reserve(op.server, op.rate) {
		return
	}
	s := e.s
	sess := e.getSession()
	sh.nextID++
	sess.id = sh.nextID*int64(len(e.shards)) + int64(sh.idx)
	sess.video = op.video
	sess.grant = Grant{Video: op.video, Server: op.server, Source: op.server, Rate: op.rate}
	wall := s.wallDuration(op.video)
	sess.deadline = time.Now().Add(wall)
	sh.regMu.Lock()
	sh.reg[sess.id] = sess
	sh.regMu.Unlock()
	s.activeN.Add(1)
	sh.exp.push(expiry{at: sess.deadline, id: sess.id})
	op.ok = true
	op.info = SessionInfo{
		ID: sess.id, Video: op.video, Server: op.server, Source: op.server,
		RateBps: op.rate, ExpiresInS: wall.Seconds(),
	}
}

// execLand is LandReplica's owner half: publish the migrated replica so the
// landing serializes with this shard's admission stream.
func (sh *shard) execLand(op *shardOp) error {
	s := sh.eng.s
	v, b := op.video, op.server
	if s.c.State(b) == BackendDown {
		return ErrBackendDown
	}
	if !s.c.AddHolder(v, b) {
		return fmt.Errorf("serve: backend %d already holds video %d", b, v)
	}
	sh.version.Add(1)
	s.met.Migrated()
	s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindRepair,
		Video: v, Server: b, Detail: "replica migrated in"})
	return nil
}

// execEvict is EvictReplica's owner half: same safety ladder as the
// single-shard path (exists → not last live copy → not pinned → remove →
// re-check). Owner serialization covers same-shard admissions; the
// post-removal re-check covers direct failover grants, which land without
// an op.
func (sh *shard) execEvict(op *shardOp) error {
	e := sh.eng
	s := e.s
	v, b := op.video, op.server
	if !holds(s.c, v, b) {
		return ErrNoReplica
	}
	live := 0
	for _, h := range s.c.Holders(v) {
		if h != b && s.c.State(h) != BackendDown {
			live++
		}
	}
	if live == 0 {
		return ErrLastReplica
	}
	if e.pinnedSessions(v, b) > 0 {
		return ErrReplicaPinned
	}
	if !s.c.RemoveHolder(v, b) {
		return ErrLastReplica
	}
	sh.version.Add(1)
	if e.pinnedSessions(v, b) > 0 {
		s.c.AddHolder(v, b)
		sh.version.Add(1)
		return ErrReplicaPinned
	}
	s.met.Evicted()
	s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindRepair,
		Video: v, Server: b, Detail: "replica evicted"})
	return nil
}

// execRepair is the repairer's settle half: publish the re-replicated copy.
// The caller (settleCopy) owns metrics and journaling.
func (sh *shard) execRepair(op *shardOp) bool {
	if !sh.eng.s.c.AddHolder(op.video, op.server) {
		return false
	}
	sh.version.Add(1)
	return true
}

// fireExpired settles every session whose deadline passed. Stale entries —
// closed, evicted, or re-armed sessions — find no registry entry and are
// skipped.
func (sh *shard) fireExpired() {
	now := time.Now()
	for len(sh.exp) > 0 && !sh.exp[0].at.After(now) {
		sh.settle(sh.exp.popMin().id, true)
	}
}

// settle ends session id exactly once: registry removal is the settlement
// token, so an expiry firing, a client Close, an eviction scan, and the
// shutdown flush can all race and exactly one of them releases the grant.
func (sh *shard) settle(id int64, natural bool) bool {
	sh.regMu.Lock()
	sess, ok := sh.reg[id]
	if ok {
		delete(sh.reg, id)
	}
	sh.regMu.Unlock()
	if !ok {
		return false
	}
	e := sh.eng
	s := e.s
	s.activeN.Add(-1)
	g := sess.grant
	video := sess.video
	e.release(g)
	e.putSession(sess)
	if natural {
		s.met.Completed()
		s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindEnd,
			Session: id, Video: video, Server: g.Server})
	} else {
		s.met.Canceled()
		s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindTear,
			Session: id, Video: video, Server: g.Server, Detail: "canceled"})
	}
	return true
}

// shutdown fails queued ops, settles every registered session as canceled
// (the daemon-shutdown semantics of the legacy engine's context cancel), and
// signals done.
func (sh *shard) shutdown() {
	sh.mbMu.Lock()
	sh.dead = true
	batch := sh.mb
	sh.mb = nil
	sh.mbMu.Unlock()
	for _, op := range batch {
		if op.async {
			sh.eng.putOp(op)
			continue
		}
		op.err = errShardStopped
		op.done <- struct{}{}
	}
	sh.regMu.Lock()
	ids := make([]int64, 0, len(sh.reg))
	for id := range sh.reg {
		ids = append(ids, id)
	}
	sh.regMu.Unlock()
	for _, id := range ids {
		sh.settle(id, false)
	}
	close(sh.done)
}

// --- engine-level request paths ---

// attempt is the sharded counterpart of Server.attempt: rank candidates
// lock-free, submit the commit to the owning shard, retry on snapshot
// conflicts, settle exactly one decision.
func (e *engine) attempt(v int, arriveNS int64, settleReject bool) (SessionInfo, Outcome) {
	s := e.s
	start := time.Now()
	if s.admitDelay > 0 {
		time.Sleep(s.admitDelay)
	}
	s.met.ObserveQueueDepth(float64(s.activeN.Load()))
	if s.draining.Load() {
		s.met.Decision(false, false, true, time.Since(start))
		s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindDrain, Video: v,
			DurNS: s.tracer.NowNS() - arriveNS})
		return SessionInfo{}, OutcomeDraining
	}
	rate := s.c.Rate(v)
	sc := e.getScratch()
	defer e.putScratch(sc)
	for try := 0; ; try++ {
		verify := e.verify && try < maxSnapshotRetries
		if verify {
			vers := sc.vers[:0]
			for _, sh := range e.shards {
				vers = append(vers, sh.version.Load())
			}
			sc.vers = vers
		}
		cands := e.rk.rank(s.c, v, rate, sc)
		conflict := false
		for _, b := range cands {
			sh := e.shards[e.shardOf[b]]
			op := e.getOp()
			op.kind, op.video, op.server, op.rate = opAdmit, v, b, rate
			op.verify = -1
			if verify {
				op.verify = sc.vers[sh.idx]
			}
			sh.call(op)
			ok, conf, err, info := op.ok, op.conflict, op.err, op.info
			e.putOp(op)
			if err != nil { // shard stopped: the daemon is shutting down
				s.met.Decision(false, false, true, time.Since(start))
				s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindDrain, Video: v,
					DurNS: s.tracer.NowNS() - arriveNS})
				return SessionInfo{}, OutcomeDraining
			}
			if conf {
				conflict = true
				break
			}
			if ok {
				s.met.Decision(true, false, false, time.Since(start))
				s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindAdmit,
					Session: info.ID, Video: v, Server: info.Server,
					DurNS: s.tracer.NowNS() - arriveNS})
				return info, OutcomeAccepted
			}
		}
		if conflict {
			s.met.SnapshotConflict()
			continue // re-decide against a fresh snapshot
		}
		if settleReject {
			s.met.Decision(false, false, false, time.Since(start))
			s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindReject, Video: v,
				DurNS: s.tracer.NowNS() - arriveNS})
		}
		return SessionInfo{}, OutcomeRejected
	}
}

// close ends session id early; ids route to their birth shard's registry.
func (e *engine) close(id int64) bool {
	if id < 0 {
		return false
	}
	return e.shards[int(id%int64(len(e.shards)))].settle(id, false)
}

// pinnedSessions counts sessions of v served by or sourced from b across
// every shard registry.
func (e *engine) pinnedSessions(v, b int) int {
	n := 0
	for _, sh := range e.shards {
		sh.regMu.Lock()
		for _, sess := range sh.reg {
			if sess.video == v && (sess.grant.Server == b || sess.grant.Source == b) {
				n++
			}
		}
		sh.regMu.Unlock()
	}
	return n
}

// evictSessions is the sharded eviction scan: collect (and thereby own)
// every session referencing b, fail each over with a direct reservation,
// reinstate survivors into their birth registry, and repeat until no session
// references b — catching failovers that land onto b concurrently.
func (e *engine) evictSessions(b int, cause string) (failedOver, dropped int) {
	s := e.s
	for {
		var affected []*session
		for _, sh := range e.shards {
			sh.regMu.Lock()
			for id, sess := range sh.reg {
				if sess.grant.Server == b || sess.grant.Source == b {
					delete(sh.reg, id)
					affected = append(affected, sess)
				}
			}
			sh.regMu.Unlock()
		}
		if len(affected) == 0 {
			return failedOver, dropped
		}
		for _, sess := range affected {
			old := sess.grant
			ng, ok := failoverMostFree(s.c, sess.video, b)
			if ok {
				e.shards[e.shardOf[ng.Server]].version.Add(1)
				// Never commit onto a server that went Down meanwhile; its
				// own eviction scan may already have run and missed us.
				if s.c.State(ng.Server) == BackendDown {
					e.release(ng)
					ok = false
				}
			}
			if ok && e.reinstate(sess, ng) {
				e.release(old)
				s.met.FailedOver()
				s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindFailover,
					Session: sess.id, Video: sess.video, Server: ng.Server,
					Detail: "from server " + fmt.Sprint(b)})
				failedOver++
				continue
			}
			e.release(old)
			s.activeN.Add(-1)
			s.met.Dropped()
			s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindTear,
				Session: sess.id, Video: sess.video, Server: b, Detail: cause})
			dropped++
			e.putSession(sess)
		}
	}
}

// reinstate publishes a failed-over session back into its birth registry
// under the new grant and re-arms its expiry. When the failover target was
// itself claimed (drained or crashed) while the grant landed, the session is
// taken back out: if we win that removal the new reservation is returned and
// the caller drops the session; if the target's own eviction scan won, that
// scan settles it and the failover stands.
func (e *engine) reinstate(sess *session, ng Grant) bool {
	sess.grant = ng
	sh := e.shards[int(sess.id%int64(len(e.shards)))]
	sh.regMu.Lock()
	sh.reg[sess.id] = sess
	sh.regMu.Unlock()
	if e.s.c.Draining(ng.Server) {
		sh.regMu.Lock()
		_, still := sh.reg[sess.id]
		if still {
			delete(sh.reg, sess.id)
		}
		sh.regMu.Unlock()
		if still {
			e.release(ng)
			return false
		}
	}
	sh.scheduleExpiry(sess.id, sess.deadline)
	return true
}

// drain waits for the active sessions to expire naturally; on ctx expiry the
// owners are stopped, which force-settles the remainder.
func (e *engine) drain(ctx context.Context) error {
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		if e.s.activeN.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			e.s.baseStop()
			e.wait()
			return fmt.Errorf("serve: drain timed out; %w", ctx.Err())
		case <-t.C:
		}
	}
}

// wait blocks until every shard owner has exited (after baseStop).
func (e *engine) wait() {
	for _, sh := range e.shards {
		<-sh.done
	}
}

// landReplica routes a rebalance migration through b's owner.
func (e *engine) landReplica(v, b int) error {
	sh := e.shards[e.shardOf[b]]
	op := e.getOp()
	op.kind, op.video, op.server = opLand, v, b
	sh.call(op)
	err := op.err
	e.putOp(op)
	return err
}

// evictReplica routes a rebalance eviction through b's owner.
func (e *engine) evictReplica(v, b int) error {
	sh := e.shards[e.shardOf[b]]
	op := e.getOp()
	op.kind, op.video, op.server = opEvict, v, b
	sh.call(op)
	err := op.err
	e.putOp(op)
	return err
}

// landRepair routes a repair-copy landing through dst's owner; it reports
// whether the copy became a new replica.
func (e *engine) landRepair(v, dst int) bool {
	sh := e.shards[e.shardOf[dst]]
	op := e.getOp()
	op.kind, op.video, op.server = opRepair, v, dst
	sh.call(op)
	ok := op.ok && op.err == nil
	e.putOp(op)
	return ok
}

// expiry is one deadline entry; entries are lazy — settlement consults the
// registry, so duplicates and stale entries are no-ops.
type expiry struct {
	at time.Time
	id int64
}

// expiryHeap is a hand-rolled binary min-heap on the deadline. It
// deliberately does not implement container/heap: heap.Push takes its
// element through an interface value, which boxes the expiry struct onto the
// heap on every admission — one avoidable allocation on the owner's hot
// path. The sift loops below move value types only.
type expiryHeap []expiry

// push adds e and restores the heap order (sift up).
func (h *expiryHeap) push(e expiry) {
	*h = append(*h, e)
	hs := *h
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hs[i].at.Before(hs[parent].at) {
			break
		}
		hs[i], hs[parent] = hs[parent], hs[i]
		i = parent
	}
}

// popMin removes and returns the earliest entry (sift down). The caller
// checks len > 0 first.
func (h *expiryHeap) popMin() expiry {
	hs := *h
	top := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	hs = hs[:n]
	*h = hs
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && hs[l].at.Before(hs[min].at) {
			min = l
		}
		if r < n && hs[r].at.Before(hs[min].at) {
			min = r
		}
		if min == i {
			return top
		}
		hs[i], hs[min] = hs[min], hs[i]
		i = min
	}
}
