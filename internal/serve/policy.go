package serve

import (
	"sort"
	"strings"
	"sync/atomic"

	"vodcluster/internal/policy"
)

// Grant is one admitted stream's reservation: which server's outgoing link
// carries it, which replica feeds it, and the charged rate. Policies create
// grants (charging the Cluster as part of admission) and release them.
type Grant struct {
	Video      int
	Server     int
	Source     int
	Rate       int64 // bits/s charged to Server's outgoing link
	Redirected bool  // the stream crosses the backbone from Source to Server

	simID int64 // stream handle of the locked sim-parity policy, else 0
}

// Policy decides and books admissions against the shared Cluster. Admit
// must be safe for concurrent use; on success the grant's resources are
// already charged and Release must eventually return them.
type Policy interface {
	// Name identifies the policy in /metrics and reports.
	Name() string
	// Admit attempts to admit one stream of video v.
	Admit(v int) (Grant, bool)
	// Release frees an admitted grant's resources.
	Release(g Grant)
	// Failover re-admits a stream of video v onto a replica holder other
	// than exclude, for sessions interrupted by a backend drain. The floor
	// semantics match resilience.TryFailover under the fixed-rate model.
	Failover(v, exclude int) (Grant, bool)
}

// PolicyNames lists the accepted -policy values from the shared registry:
// the lock-free policies first, then the locked sim-parity adapters (see
// NewSimPolicy).
func PolicyNames() []string { return policy.ServeNames() }

// NewPolicy resolves a policy name against a cluster. Names without the
// "sim:" prefix select the lock-free implementations; "sim:" names wrap the
// exact simulator schedulers (any registered cluster.Scheduler, plus
// redirect when the problem defines backbone bandwidth) behind a mutex.
// Unknown names report the registry's full name table.
func NewPolicy(name string, c *Cluster) (Policy, error) {
	if base, ok := strings.CutPrefix(name, "sim:"); ok {
		return NewSimPolicy(base, c)
	}
	switch name {
	case "", "least-loaded":
		return &leastLoaded{c: c}, nil
	case "first-available":
		return newRotating(c, true), nil
	case "static-rr":
		return newRotating(c, false), nil
	}
	return nil, policy.UnknownServeError(name)
}

// leastLoaded is the lock-free analogue of cluster.LeastLoaded: serve from
// the replica holder with the most free outgoing bandwidth, reject when that
// holder lacks room. A failed CAS (a racing admission landed first) re-picks
// the best holder instead of falling back to a worse one, mirroring the
// sequential policy's single-candidate semantics as closely as a concurrent
// admission can.
type leastLoaded struct {
	c *Cluster
}

func (p *leastLoaded) Name() string { return "least-loaded" }

func (p *leastLoaded) Admit(v int) (Grant, bool) {
	rate := p.c.Rate(v)
	for {
		best, bestFree := -1, int64(0)
		for _, s := range p.c.Holders(v) {
			if p.c.Draining(s) {
				continue
			}
			if free := p.c.Free(s); free > bestFree {
				best, bestFree = s, free
			}
		}
		if best == -1 || bestFree < rate {
			return Grant{}, false
		}
		if p.c.TryReserve(best, rate) {
			return Grant{Video: v, Server: best, Source: best, Rate: rate}, true
		}
		// Lost the race for this holder; re-evaluate under the new loads.
	}
}

func (p *leastLoaded) Release(g Grant) { p.c.Release(g.Server, g.Rate) }

func (p *leastLoaded) Failover(v, exclude int) (Grant, bool) {
	return failoverMostFree(p.c, v, exclude)
}

// rotating implements the paper's static round-robin dispatch (§3.2) and its
// first-available refinement with a per-video atomic cursor: every request
// advances the cursor exactly once, accepted or not, preserving the fixed
// rotation under concurrency.
type rotating struct {
	c      *Cluster
	cursor []atomic.Int64 // per-video rotation position
	probe  bool           // true: try the remaining holders before rejecting
}

func newRotating(c *Cluster, probe bool) *rotating {
	return &rotating{c: c, cursor: make([]atomic.Int64, c.Videos()), probe: probe}
}

func (p *rotating) Name() string {
	if p.probe {
		return "first-available"
	}
	return "static-rr"
}

func (p *rotating) Admit(v int) (Grant, bool) {
	holders := p.c.Holders(v)
	if len(holders) == 0 {
		return Grant{}, false
	}
	rate := p.c.Rate(v)
	k := int((p.cursor[v].Add(1) - 1) % int64(len(holders)))
	tries := 1
	if p.probe {
		tries = len(holders)
	}
	for i := 0; i < tries; i++ {
		s := holders[(k+i)%len(holders)]
		if p.c.TryReserve(s, rate) {
			return Grant{Video: v, Server: s, Source: s, Rate: rate}, true
		}
	}
	return Grant{}, false
}

func (p *rotating) Release(g Grant) { p.c.Release(g.Server, g.Rate) }

func (p *rotating) Failover(v, exclude int) (Grant, bool) {
	return failoverMostFree(p.c, v, exclude)
}

// failoverMostFree re-admits one stream of v onto the surviving holder with
// the most free outgoing bandwidth, skipping exclude and draining servers —
// the serve-layer counterpart of resilience.TryFailover (fixed-rate model,
// so the best copy is simply the least-loaded live holder). Candidates are
// tried in decreasing free-bandwidth order so a lost CAS race falls through
// to the next-best holder.
func failoverMostFree(c *Cluster, v, exclude int) (Grant, bool) {
	rate := c.Rate(v)
	type cand struct {
		s    int
		free int64
	}
	cands := make([]cand, 0, len(c.Holders(v)))
	for _, s := range c.Holders(v) {
		if s == exclude || c.Draining(s) {
			continue
		}
		if free := c.Free(s); free >= rate {
			cands = append(cands, cand{s, free})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].free != cands[j].free {
			return cands[i].free > cands[j].free
		}
		return cands[i].s < cands[j].s
	})
	for _, cd := range cands {
		if c.TryReserve(cd.s, rate) {
			return Grant{Video: v, Server: cd.s, Source: cd.s, Rate: rate}, true
		}
	}
	return Grant{}, false
}
