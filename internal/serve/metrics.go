package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"vodcluster/internal/obs"
)

// latencyBuckets are the upper bounds (seconds) of the admission-latency
// histogram, spanning sub-100µs in-process decisions up to multi-second
// stalls. The rendered histogram is cumulative, Prometheus-style.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Metrics is the daemon's lock-free instrument panel: admission outcome
// counters, session lifecycle counters, and an admission-latency histogram,
// all atomics so the hot path never serializes on telemetry. Render writes
// the Prometheus text exposition format.
type Metrics struct {
	requests  atomic.Int64 // settled admission decisions
	accepted  atomic.Int64
	rejected  atomic.Int64
	draining  atomic.Int64 // rejected because the daemon was draining
	redirects atomic.Int64 // accepted over the backbone
	badVideo  atomic.Int64 // requests for out-of-catalog videos

	completed  atomic.Int64 // sessions that ran to their natural end
	canceled   atomic.Int64 // sessions closed early by the client
	failedOver atomic.Int64 // sessions salvaged off a drained/failed backend
	dropped    atomic.Int64 // sessions lost to a drain/crash with no failover

	retried         atomic.Int64 // admission retry attempts after a rejection
	reneged         atomic.Int64 // retrying requests that gave up (patience)
	backendFailures atomic.Int64 // confirmed backend crashes (FailBackend)
	rereplications  atomic.Int64 // repair copies landed as new replicas
	probeOK         atomic.Int64 // successful health probes
	probeFail       atomic.Int64 // failed health probes

	rebalanceRounds atomic.Int64 // completed rebalance control rounds
	migrations      atomic.Int64 // rebalance copies landed as new replicas
	evictions       atomic.Int64 // surplus replicas removed by rebalancing

	snapshotConflicts atomic.Int64 // snapshot-and-verify admissions retried on a stale shard version
	shards            atomic.Int64 // dispatch shards in use (1 = legacy single-queue daemon)

	latCount atomic.Int64
	latSumNs atomic.Int64
	latBins  [len(latencyBuckets) + 1]atomic.Int64 // +Inf overflow last

	// queueDepth samples the number of active sessions observed at each
	// admission decision — the instantaneous system occupancy an arriving
	// request competes against. Built on the shared obs histogram so its
	// range follows the cluster's stream ceiling; nil (zero-value Metrics)
	// skips both recording and rendering.
	queueDepth *obs.Hist

	// httpStats is the sharded ingress instrument panel, attached when an
	// Ingress starts; nil until then (mux-only daemons render no vod_http_*
	// families).
	httpStats atomic.Pointer[HTTPStats]
}

// HTTPStats is the per-listener instrument panel of the sharded ingress:
// one row of independent atomics per accept loop, so listeners never share
// a cache line of telemetry, plus a request-latency histogram per listener.
type HTTPStats struct {
	ls []listenerStats
}

type listenerStats struct {
	conns       atomic.Int64 // connections accepted
	requests    atomic.Int64 // hot-path requests parsed and dispatched
	decisions   atomic.Int64 // admission decisions settled (batch counts each video)
	batches     atomic.Int64 // batch requests served
	fallbacks   atomic.Int64 // requests replayed into the net/http fallback
	parseErrors atomic.Int64 // malformed hot-path requests refused
	latency     *obs.ExpHist // hot-path request latency, read-to-encoded
	_           [24]byte     // pad to a cache line so listeners don't false-share
}

// NewHTTPStats builds a panel for n listeners.
func NewHTTPStats(n int) *HTTPStats {
	h := &HTTPStats{ls: make([]listenerStats, n)}
	for i := range h.ls {
		// 10µs..~1.3s exponential bounds: in-process admission decisions
		// cluster at the bottom, stalls show up in the overflow.
		h.ls[i].latency = obs.NewExpHist(1e-5, 18)
	}
	return h
}

// Decisions returns the total admission decisions settled via the ingress.
func (h *HTTPStats) Decisions() int64 {
	var n int64
	for i := range h.ls {
		n += h.ls[i].decisions.Load()
	}
	return n
}

// Fallbacks returns the total requests replayed into the net/http fallback.
func (h *HTTPStats) Fallbacks() int64 {
	var n int64
	for i := range h.ls {
		n += h.ls[i].fallbacks.Load()
	}
	return n
}

// render writes the vod_http_* families, one labeled series per listener.
func (h *HTTPStats) render(w io.Writer) {
	counter := func(name, help string, get func(*listenerStats) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i := range h.ls {
			fmt.Fprintf(w, "%s{listener=\"%d\"} %d\n", name, i, get(&h.ls[i]))
		}
	}
	counter("vod_http_connections_total", "Connections accepted per ingress listener.",
		func(ls *listenerStats) int64 { return ls.conns.Load() })
	counter("vod_http_requests_total", "Hot-path requests served per ingress listener.",
		func(ls *listenerStats) int64 { return ls.requests.Load() })
	counter("vod_http_decisions_total", "Admission decisions settled per ingress listener (batches count each video).",
		func(ls *listenerStats) int64 { return ls.decisions.Load() })
	counter("vod_http_batches_total", "Batch admission requests served per ingress listener.",
		func(ls *listenerStats) int64 { return ls.batches.Load() })
	counter("vod_http_fallbacks_total", "Requests replayed into the net/http fallback per ingress listener.",
		func(ls *listenerStats) int64 { return ls.fallbacks.Load() })
	counter("vod_http_parse_errors_total", "Malformed hot-path requests refused per ingress listener.",
		func(ls *listenerStats) int64 { return ls.parseErrors.Load() })
	fmt.Fprintf(w, "# HELP vod_http_request_seconds Hot-path request latency per ingress listener, read-to-encoded.\n")
	fmt.Fprintf(w, "# TYPE vod_http_request_seconds histogram\n")
	for i := range h.ls {
		h.ls[i].latency.WriteProm(w, "vod_http_request_seconds", fmt.Sprintf("listener=%q", strconv.Itoa(i)))
	}
}

// AttachHTTP wires the sharded-ingress panel into /metrics.
func (m *Metrics) AttachHTTP(h *HTTPStats) { m.httpStats.Store(h) }

// NewMetrics builds the instrument panel with a queue-depth histogram
// spanning [0, maxDepth) sessions. The zero Metrics value stays valid for
// callers that only need the atomic counters.
func NewMetrics(maxDepth int) *Metrics {
	if maxDepth <= 0 {
		maxDepth = 1024
	}
	bins := 64
	if maxDepth < bins {
		bins = maxDepth
	}
	m := &Metrics{queueDepth: obs.NewHist(0, float64(maxDepth), bins)}
	m.shards.Store(1)
	return m
}

// ObserveQueueDepth records the active-session count seen by one admission
// decision.
func (m *Metrics) ObserveQueueDepth(depth float64) { m.queueDepth.Observe(depth) }

// Decision records one settled admission decision and its latency.
func (m *Metrics) Decision(accepted, redirected, wasDraining bool, lat time.Duration) {
	m.requests.Add(1)
	if accepted {
		m.accepted.Add(1)
		if redirected {
			m.redirects.Add(1)
		}
	} else {
		m.rejected.Add(1)
		if wasDraining {
			m.draining.Add(1)
		}
	}
	m.latCount.Add(1)
	m.latSumNs.Add(int64(lat))
	sec := lat.Seconds()
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	m.latBins[i].Add(1)
}

// BadVideo records a request targeting a video outside the catalog.
func (m *Metrics) BadVideo() { m.badVideo.Add(1) }

// Completed records a session ending at its natural departure time.
func (m *Metrics) Completed() { m.completed.Add(1) }

// Canceled records a session closed early by the client.
func (m *Metrics) Canceled() { m.canceled.Add(1) }

// FailedOver records a session salvaged onto another backend.
func (m *Metrics) FailedOver() { m.failedOver.Add(1) }

// Dropped records a session lost to a backend drain or crash with no
// failover target.
func (m *Metrics) Dropped() { m.dropped.Add(1) }

// Retried records one admission retry attempt after a capacity rejection.
func (m *Metrics) Retried() { m.retried.Add(1) }

// Reneged records a retrying request that gave up before being admitted.
func (m *Metrics) Reneged() { m.reneged.Add(1) }

// BackendFailed records one confirmed backend crash.
func (m *Metrics) BackendFailed() { m.backendFailures.Add(1) }

// ReReplicated records one repair copy landing as a new replica.
func (m *Metrics) ReReplicated() { m.rereplications.Add(1) }

// RebalanceRound records one completed rebalance control round.
func (m *Metrics) RebalanceRound() { m.rebalanceRounds.Add(1) }

// Migrated records one rebalance copy landing as a new replica.
func (m *Metrics) Migrated() { m.migrations.Add(1) }

// Evicted records one surplus replica removed by the rebalancer.
func (m *Metrics) Evicted() { m.evictions.Add(1) }

// SnapshotConflict records one admission attempt that read a shard snapshot,
// decided, and found the shard's version moved before the decision committed.
func (m *Metrics) SnapshotConflict() { m.snapshotConflicts.Add(1) }

// SnapshotConflicts returns the snapshot-and-verify retry count so far.
func (m *Metrics) SnapshotConflicts() int64 { return m.snapshotConflicts.Load() }

// SetShards records how many dispatch shards the daemon runs (1 = legacy
// single-queue path).
func (m *Metrics) SetShards(n int) { m.shards.Store(int64(n)) }

// Probe records one health-probe result.
func (m *Metrics) Probe(ok bool) {
	if ok {
		m.probeOK.Add(1)
	} else {
		m.probeFail.Add(1)
	}
}

// Accepted returns the number of accepted admission decisions so far.
func (m *Metrics) Accepted() int64 { return m.accepted.Load() }

// Requests returns the number of settled admission decisions so far.
func (m *Metrics) Requests() int64 { return m.requests.Load() }

// Render writes the Prometheus text exposition of the counters plus the
// per-server gauges read from the cluster.
func (m *Metrics) Render(w io.Writer, c *Cluster, active int64, policy string) {
	fmt.Fprintf(w, "# HELP vod_requests_total Settled admission decisions by outcome.\n")
	fmt.Fprintf(w, "# TYPE vod_requests_total counter\n")
	fmt.Fprintf(w, "vod_requests_total{outcome=\"accepted\"} %d\n", m.accepted.Load())
	fmt.Fprintf(w, "vod_requests_total{outcome=\"rejected\"} %d\n", m.rejected.Load())
	fmt.Fprintf(w, "# HELP vod_rejected_draining_total Rejections issued while the daemon was draining.\n")
	fmt.Fprintf(w, "# TYPE vod_rejected_draining_total counter\n")
	fmt.Fprintf(w, "vod_rejected_draining_total %d\n", m.draining.Load())
	fmt.Fprintf(w, "# HELP vod_redirected_total Admissions served over the internal backbone.\n")
	fmt.Fprintf(w, "# TYPE vod_redirected_total counter\n")
	fmt.Fprintf(w, "vod_redirected_total %d\n", m.redirects.Load())
	fmt.Fprintf(w, "# HELP vod_bad_video_total Requests for videos outside the catalog.\n")
	fmt.Fprintf(w, "# TYPE vod_bad_video_total counter\n")
	fmt.Fprintf(w, "vod_bad_video_total %d\n", m.badVideo.Load())
	fmt.Fprintf(w, "# HELP vod_sessions_ended_total Ended sessions by cause.\n")
	fmt.Fprintf(w, "# TYPE vod_sessions_ended_total counter\n")
	fmt.Fprintf(w, "vod_sessions_ended_total{cause=\"completed\"} %d\n", m.completed.Load())
	fmt.Fprintf(w, "vod_sessions_ended_total{cause=\"canceled\"} %d\n", m.canceled.Load())
	fmt.Fprintf(w, "vod_sessions_ended_total{cause=\"dropped\"} %d\n", m.dropped.Load())
	fmt.Fprintf(w, "# HELP vod_failovers_total Sessions salvaged off a drained or failed backend.\n")
	fmt.Fprintf(w, "# TYPE vod_failovers_total counter\n")
	fmt.Fprintf(w, "vod_failovers_total %d\n", m.failedOver.Load())
	fmt.Fprintf(w, "# HELP vod_retries_total Admission retry attempts after a capacity rejection.\n")
	fmt.Fprintf(w, "# TYPE vod_retries_total counter\n")
	fmt.Fprintf(w, "vod_retries_total %d\n", m.retried.Load())
	fmt.Fprintf(w, "# HELP vod_reneges_total Retrying requests that gave up before admission.\n")
	fmt.Fprintf(w, "# TYPE vod_reneges_total counter\n")
	fmt.Fprintf(w, "vod_reneges_total %d\n", m.reneged.Load())
	fmt.Fprintf(w, "# HELP vod_backend_failures_total Confirmed backend crashes.\n")
	fmt.Fprintf(w, "# TYPE vod_backend_failures_total counter\n")
	fmt.Fprintf(w, "vod_backend_failures_total %d\n", m.backendFailures.Load())
	fmt.Fprintf(w, "# HELP vod_rereplications_total Repair copies landed as new replicas.\n")
	fmt.Fprintf(w, "# TYPE vod_rereplications_total counter\n")
	fmt.Fprintf(w, "vod_rereplications_total %d\n", m.rereplications.Load())
	fmt.Fprintf(w, "# HELP vod_rebalance_rounds_total Completed rebalance control rounds.\n")
	fmt.Fprintf(w, "# TYPE vod_rebalance_rounds_total counter\n")
	fmt.Fprintf(w, "vod_rebalance_rounds_total %d\n", m.rebalanceRounds.Load())
	fmt.Fprintf(w, "# HELP vod_migrations_total Rebalance copies landed as new replicas.\n")
	fmt.Fprintf(w, "# TYPE vod_migrations_total counter\n")
	fmt.Fprintf(w, "vod_migrations_total %d\n", m.migrations.Load())
	fmt.Fprintf(w, "# HELP vod_evictions_total Surplus replicas removed by rebalancing.\n")
	fmt.Fprintf(w, "# TYPE vod_evictions_total counter\n")
	fmt.Fprintf(w, "vod_evictions_total %d\n", m.evictions.Load())
	fmt.Fprintf(w, "# HELP vod_snapshot_conflicts_total Admissions retried because a shard snapshot went stale before commit.\n")
	fmt.Fprintf(w, "# TYPE vod_snapshot_conflicts_total counter\n")
	fmt.Fprintf(w, "vod_snapshot_conflicts_total %d\n", m.snapshotConflicts.Load())
	fmt.Fprintf(w, "# HELP vod_dispatch_shards Dispatch shards in use (1 = single-queue daemon).\n")
	fmt.Fprintf(w, "# TYPE vod_dispatch_shards gauge\n")
	fmt.Fprintf(w, "vod_dispatch_shards %d\n", m.shards.Load())
	fmt.Fprintf(w, "# HELP vod_health_probes_total Health-probe results.\n")
	fmt.Fprintf(w, "# TYPE vod_health_probes_total counter\n")
	fmt.Fprintf(w, "vod_health_probes_total{result=\"ok\"} %d\n", m.probeOK.Load())
	fmt.Fprintf(w, "vod_health_probes_total{result=\"fail\"} %d\n", m.probeFail.Load())
	fmt.Fprintf(w, "# HELP vod_sessions_active Currently active sessions.\n")
	fmt.Fprintf(w, "# TYPE vod_sessions_active gauge\n")
	fmt.Fprintf(w, "vod_sessions_active %d\n", active)
	fmt.Fprintf(w, "# HELP vod_policy_info Admission policy in use (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE vod_policy_info gauge\n")
	fmt.Fprintf(w, "vod_policy_info{policy=%q} 1\n", policy)

	fmt.Fprintf(w, "# HELP vod_server_capacity_bps Outgoing link capacity per backend.\n")
	fmt.Fprintf(w, "# TYPE vod_server_capacity_bps gauge\n")
	for s := 0; s < c.Servers(); s++ {
		fmt.Fprintf(w, "vod_server_capacity_bps{server=\"%d\"} %d\n", s, c.Capacity(s))
	}
	fmt.Fprintf(w, "# HELP vod_server_used_bps Outgoing bandwidth in use per backend.\n")
	fmt.Fprintf(w, "# TYPE vod_server_used_bps gauge\n")
	for s := 0; s < c.Servers(); s++ {
		fmt.Fprintf(w, "vod_server_used_bps{server=\"%d\"} %d\n", s, c.Used(s))
	}
	fmt.Fprintf(w, "# HELP vod_server_active_streams Active streams per backend outgoing link.\n")
	fmt.Fprintf(w, "# TYPE vod_server_active_streams gauge\n")
	for s := 0; s < c.Servers(); s++ {
		fmt.Fprintf(w, "vod_server_active_streams{server=\"%d\"} %d\n", s, c.Active(s))
	}
	fmt.Fprintf(w, "# HELP vod_server_draining Whether the backend refuses new placements.\n")
	fmt.Fprintf(w, "# TYPE vod_server_draining gauge\n")
	for s := 0; s < c.Servers(); s++ {
		d := 0
		if c.Draining(s) {
			d = 1
		}
		fmt.Fprintf(w, "vod_server_draining{server=\"%d\"} %d\n", s, d)
	}
	fmt.Fprintf(w, "# HELP vod_backend_state Backend health state (0 up, 1 suspect, 2 recovering, 3 draining, 4 down).\n")
	fmt.Fprintf(w, "# TYPE vod_backend_state gauge\n")
	for s := 0; s < c.Servers(); s++ {
		st := c.State(s)
		fmt.Fprintf(w, "vod_backend_state{server=\"%d\",state=%q} %d\n", s, st.String(), int(st))
	}
	fmt.Fprintf(w, "# HELP vod_backbone_used_bps Internal backbone bandwidth in use.\n")
	fmt.Fprintf(w, "# TYPE vod_backbone_used_bps gauge\n")
	fmt.Fprintf(w, "vod_backbone_used_bps %d\n", c.BackboneUsed())
	fmt.Fprintf(w, "# HELP vod_layout_version Monotone layout version; bumps on every replica-directory change.\n")
	fmt.Fprintf(w, "# TYPE vod_layout_version gauge\n")
	fmt.Fprintf(w, "vod_layout_version %d\n", c.LayoutVersion())

	fmt.Fprintf(w, "# HELP vod_admission_latency_seconds Admission decision latency.\n")
	fmt.Fprintf(w, "# TYPE vod_admission_latency_seconds histogram\n")
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += m.latBins[i].Load()
		fmt.Fprintf(w, "vod_admission_latency_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.latBins[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "vod_admission_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "vod_admission_latency_seconds_sum %g\n", float64(m.latSumNs.Load())/float64(time.Second))
	fmt.Fprintf(w, "vod_admission_latency_seconds_count %d\n", m.latCount.Load())

	m.queueDepth.WriteProm(w, "vod_queue_depth",
		"Active sessions observed at each admission decision.")

	if hs := m.httpStats.Load(); hs != nil {
		hs.render(w)
	}
}
