package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"vodcluster/internal/faults"
)

// errorBody is the JSON error/outcome envelope of the HTTP API.
type errorBody struct {
	Outcome Outcome `json:"outcome,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// layoutBody is the GET /layout response: the layout plus enough of the
// problem to interpret it.
type layoutBody struct {
	Servers      int     `json:"servers"`
	Videos       int     `json:"videos"`
	Degree       float64 `json:"degree"`
	Policy       string  `json:"policy"`
	Compress     float64 `json:"compress"`
	BackboneBps  int64   `json:"backbone_bps"`
	CapacityBps  []int64 `json:"capacity_bps"`
	Replicas     []int   `json:"replicas"`
	VideoServers [][]int `json:"video_servers"`
	// LayoutVersion is the monotone replica-directory version: 1 at startup,
	// bumped on every repair copy, migration, or eviction.
	LayoutVersion int64 `json:"layout_version"`
	// LiveReplicas is the current per-video replica count in the live
	// directory — unlike Replicas (the planned counts), it tracks runtime
	// mutation by the repairer and rebalancer.
	LiveReplicas []int `json:"live_replicas"`
	// ReplicatedBytes is the total storage footprint of every replica in the
	// live directory.
	ReplicatedBytes float64 `json:"replicated_bytes"`
	// Shards is the number of dispatch shards the daemon runs (1 = legacy
	// single-queue path).
	Shards int `json:"shards"`
}

// healthBody is the GET /healthz response.
type healthBody struct {
	Status          string   `json:"status"`
	ActiveSessions  int64    `json:"active_sessions"`
	DrainedBackends int      `json:"drained_backends"`
	BackendStates   []string `json:"backend_states"`
}

// repairsBody is the GET /repairs response.
type repairsBody struct {
	Enabled   bool           `json:"enabled"`
	Started   int64          `json:"started"`
	Completed int64          `json:"completed"`
	Aborted   int64          `json:"aborted"`
	Skipped   int64          `json:"skipped"`
	Inflight  int            `json:"inflight"`
	Journal   []RepairAction `json:"journal"`
}

// Handler returns the daemon's HTTP API:
//
//	POST   /session?video=V        admit a session (200 / 503 with outcome)
//	POST   /open                   admit a session; body {"video":V}
//	POST   /open/batch             admit many; body {"videos":[v0,v1,…]}
//	POST   /close                  end a session early; body {"id":N}
//	DELETE /session/{id}           end a session early
//	POST   /backend/{id}/drain     drain a backend (fails sessions over)
//	POST   /backend/{id}/restore   restore a drained backend
//	POST   /backend/{id}/fail      crash a backend (evicts its sessions)
//	POST   /backend/{id}/recover   recover a crashed backend
//	POST   /fault                  apply one fault-schedule event (JSON body)
//	GET    /repairs                re-replication journal and counters
//	GET    /rebalance              placement-controller status and journal
//	POST   /rebalance/trigger      request an immediate rebalance round
//	GET    /metrics                Prometheus text exposition
//	GET    /healthz                liveness + drain status + backend states
//	GET    /layout                 the layout being served
//	GET    /debug/trace            session-trace dump (when tracing is on);
//	                               ?format=chrome renders Chrome trace_event
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /session", s.handleOpen)
	mux.HandleFunc("POST /open", s.handleOpenFast)
	mux.HandleFunc("POST /open/batch", s.handleOpenBatch)
	mux.HandleFunc("POST /close", s.handleCloseFast)
	mux.HandleFunc("DELETE /session/{id}", s.handleClose)
	mux.HandleFunc("POST /backend/{id}/drain", s.handleDrain)
	mux.HandleFunc("POST /backend/{id}/restore", s.handleRestore)
	mux.HandleFunc("POST /backend/{id}/fail", s.handleFail)
	mux.HandleFunc("POST /backend/{id}/recover", s.handleRecover)
	mux.HandleFunc("POST /fault", s.handleFault)
	mux.HandleFunc("GET /repairs", s.handleRepairs)
	mux.HandleFunc("GET /rebalance", s.handleRebalance)
	mux.HandleFunc("POST /rebalance/trigger", s.handleRebalanceTrigger)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /layout", s.handleLayout)
	if s.tracer != nil {
		mux.HandleFunc("GET /debug/trace", s.handleTraceDump)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeRaw sends a pre-encoded JSON body with an explicit Content-Length.
// The hand-rolled fast client has no chunked decoder, so the body-first
// admission routes must never fall into net/http's chunked framing (which
// kicks in when WriteHeader precedes Write without a declared length).
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// readFastBody slurps a hot-path request body, bounded by the same cap the
// sharded ingress enforces.
func readFastBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, defaultMaxBody))
}

// handleOpenFast is POST /open: the body-first twin of POST /session,
// sharing its wire format with the sharded ingress so the fast client works
// against either front.
func (s *Server) handleOpenFast(w http.ResponseWriter, r *http.Request) {
	body, err := readFastBody(w, r)
	if err != nil {
		writeRaw(w, http.StatusRequestEntityTooLarge, appendOutcome(nil, "", "request body too large"))
		return
	}
	v, err := parseOpenBody(body)
	if err != nil {
		writeRaw(w, http.StatusBadRequest, appendOutcome(nil, "", err.Error()))
		return
	}
	info, outcome, oerr := s.OpenRetry(r.Context(), v)
	status := http.StatusOK
	switch {
	case oerr != nil:
		status = http.StatusBadRequest
	case outcome != OutcomeAccepted:
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeRaw(w, status, appendOpenResult(nil, info, outcome, oerr))
}

// handleOpenBatch is POST /open/batch: one round trip, many admissions,
// answered as a JSON array aligned with the request order.
func (s *Server) handleOpenBatch(w http.ResponseWriter, r *http.Request) {
	body, err := readFastBody(w, r)
	if err != nil {
		writeRaw(w, http.StatusRequestEntityTooLarge, appendOutcome(nil, "", "request body too large"))
		return
	}
	vids, err := parseBatchBody(body, nil)
	if err != nil {
		writeRaw(w, http.StatusBadRequest, appendOutcome(nil, "", err.Error()))
		return
	}
	if len(vids) > defaultMaxBatch {
		writeRaw(w, http.StatusBadRequest, appendOutcome(nil, "",
			fmt.Sprintf("batch of %d exceeds the %d-video cap", len(vids), defaultMaxBatch)))
		return
	}
	resp := []byte{'['}
	for i, v := range vids {
		if i > 0 {
			resp = append(resp, ',')
		}
		info, outcome, oerr := s.OpenRetry(r.Context(), v)
		resp = appendOpenResult(resp, info, outcome, oerr)
	}
	resp = append(resp, ']')
	writeRaw(w, http.StatusOK, resp)
}

// handleCloseFast is POST /close: the body-first twin of DELETE /session/{id}.
func (s *Server) handleCloseFast(w http.ResponseWriter, r *http.Request) {
	body, err := readFastBody(w, r)
	if err != nil {
		writeRaw(w, http.StatusRequestEntityTooLarge, appendOutcome(nil, "", "request body too large"))
		return
	}
	id, err := parseCloseBody(body)
	if err != nil {
		writeRaw(w, http.StatusBadRequest, appendOutcome(nil, "", err.Error()))
		return
	}
	if !s.Close(id) {
		writeRaw(w, http.StatusNotFound, appendOutcome(nil, "", "no such session"))
		return
	}
	writeRaw(w, http.StatusOK, appendOutcome(nil, "closed", ""))
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.Atoi(r.URL.Query().Get("video"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "video must be an integer catalog rank"})
		return
	}
	info, outcome, err := s.OpenRetry(r.Context(), v)
	switch {
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Outcome: outcome, Error: err.Error()})
	case outcome == OutcomeAccepted:
		writeJSON(w, http.StatusOK, info)
	default: // rejected or draining: the VoD "busy signal"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Outcome: outcome})
	}
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "session id must be an integer"})
		return
	}
	if !s.Close(id) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such session"})
		return
	}
	writeJSON(w, http.StatusOK, errorBody{Outcome: "closed"})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	b, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "backend id must be an integer"})
		return
	}
	failedOver, dropped, err := s.DrainBackend(b)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"failed_over": failedOver, "dropped": dropped})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	b, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "backend id must be an integer"})
		return
	}
	if err := s.RestoreBackend(b); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, errorBody{Outcome: "restored"})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	b, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "backend id must be an integer"})
		return
	}
	if err := s.ApplyFault(faults.Event{Action: faults.ActionFail, Backend: b}); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, errorBody{Outcome: "failed"})
}

func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	b, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "backend id must be an integer"})
		return
	}
	if err := s.ApplyFault(faults.Event{Action: faults.ActionRecover, Backend: b}); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, errorBody{Outcome: "recovering"})
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	var e faults.Event
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "fault event body: " + err.Error()})
		return
	}
	if e.Backend < 0 || e.Backend >= s.c.Servers() {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: (&BackendRangeError{Backend: e.Backend, Servers: s.c.Servers()}).Error()})
		return
	}
	if err := s.ApplyFault(e); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, errorBody{Outcome: Outcome(e.Action)})
}

func (s *Server) handleRepairs(w http.ResponseWriter, _ *http.Request) {
	rep := s.rep.Load()
	if rep == nil {
		writeJSON(w, http.StatusOK, repairsBody{})
		return
	}
	writeJSON(w, http.StatusOK, repairsBody{
		Enabled:   true,
		Started:   rep.Started(),
		Completed: rep.Completed(),
		Aborted:   rep.Aborted(),
		Skipped:   rep.Skipped(),
		Inflight:  rep.Inflight(),
		Journal:   rep.Journal(),
	})
}

func (s *Server) handleRebalance(w http.ResponseWriter, _ *http.Request) {
	r := s.Rebalancer()
	if r == nil {
		writeJSON(w, http.StatusOK, RebalanceStatus{LayoutVersion: s.c.LayoutVersion()})
		return
	}
	writeJSON(w, http.StatusOK, r.Status())
}

func (s *Server) handleRebalanceTrigger(w http.ResponseWriter, _ *http.Request) {
	r := s.Rebalancer()
	if r == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: "rebalancer not enabled"})
		return
	}
	r.Trigger()
	writeJSON(w, http.StatusAccepted, errorBody{Outcome: "triggered"})
}

func (s *Server) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var err error
	if r.URL.Query().Get("format") == "chrome" {
		err = s.tracer.WriteChromeTrace(w)
	} else {
		err = s.tracer.WriteJSON(w)
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// AttachInjector wires a fault injector into the daemon: crash/recover
// faults applied through ApplyFault are mirrored into it so an
// injector-backed health prober observes the same reality, and slow faults
// become expressible at all.
func (s *Server) AttachInjector(in *faults.Injector) { s.inj.Store(in) }

// Injector returns the attached fault injector, or nil.
func (s *Server) Injector() *faults.Injector { return s.inj.Load() }

// ApplyFault applies one fault-schedule event to the live daemon. Crash and
// recover events act immediately (deterministically, independent of probe
// timing) and are mirrored into the attached injector so health probes
// agree; already-settled transitions (backend already down / not down /
// already draining) are not errors — a scripted schedule and the health
// checker may legitimately race to the same conclusion.
func (s *Server) ApplyFault(e faults.Event) error {
	switch e.Action {
	case faults.ActionFail:
		if in := s.inj.Load(); in != nil {
			in.Crash(e.Backend)
		}
		_, _, err := s.FailBackend(e.Backend)
		if errors.Is(err, ErrBackendDown) {
			err = nil
		}
		return err
	case faults.ActionRecover:
		if in := s.inj.Load(); in != nil {
			in.Recover(e.Backend)
		}
		err := s.RecoverBackend(e.Backend)
		if errors.Is(err, ErrBackendNotDown) {
			err = nil
		}
		return err
	case faults.ActionSlow:
		in := s.inj.Load()
		if in == nil {
			return fmt.Errorf("serve: slow fault requires an attached injector")
		}
		in.Slow(e.Backend, time.Duration(e.SlowMS)*time.Millisecond)
		return nil
	case faults.ActionDrain:
		_, _, err := s.DrainBackend(e.Backend)
		if errors.Is(err, ErrBackendDraining) {
			err = nil
		}
		return err
	case faults.ActionRestore:
		return s.RestoreBackend(e.Backend)
	}
	return fmt.Errorf("serve: unknown fault action %q", e.Action)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.Render(w, s.c, s.Active(), s.PolicyName())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	drained := 0
	states := make([]string, s.c.Servers())
	for b := 0; b < s.c.Servers(); b++ {
		if s.c.Draining(b) {
			drained++
		}
		states[b] = s.c.State(b).String()
	}
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthBody{Status: status, ActiveSessions: s.Active(),
		DrainedBackends: drained, BackendStates: states})
}

func (s *Server) handleLayout(w http.ResponseWriter, _ *http.Request) {
	caps := make([]int64, s.c.Servers())
	for b := range caps {
		caps[b] = s.c.Capacity(b)
	}
	servers := make([][]int, s.c.Videos())
	liveReplicas := make([]int, s.c.Videos())
	for v := range servers {
		servers[v] = append([]int(nil), s.c.Holders(v)...)
		liveReplicas[v] = len(servers[v])
	}
	writeJSON(w, http.StatusOK, layoutBody{
		Servers:         s.c.Servers(),
		Videos:          s.c.Videos(),
		Degree:          s.c.Layout().ReplicationDegree(),
		Policy:          s.PolicyName(),
		Compress:        s.compress,
		BackboneBps:     int64(s.c.Problem().BackboneBandwidth),
		CapacityBps:     caps,
		Replicas:        append([]int(nil), s.c.Layout().Replicas...),
		VideoServers:    servers,
		LayoutVersion:   s.c.LayoutVersion(),
		LiveReplicas:    liveReplicas,
		ReplicatedBytes: s.c.TotalReplicatedBytes(),
		Shards:          s.Shards(),
	})
}
