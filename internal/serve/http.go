package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// errorBody is the JSON error/outcome envelope of the HTTP API.
type errorBody struct {
	Outcome Outcome `json:"outcome,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// layoutBody is the GET /layout response: the layout plus enough of the
// problem to interpret it.
type layoutBody struct {
	Servers      int     `json:"servers"`
	Videos       int     `json:"videos"`
	Degree       float64 `json:"degree"`
	Policy       string  `json:"policy"`
	Compress     float64 `json:"compress"`
	BackboneBps  int64   `json:"backbone_bps"`
	CapacityBps  []int64 `json:"capacity_bps"`
	Replicas     []int   `json:"replicas"`
	VideoServers [][]int `json:"video_servers"`
}

// healthBody is the GET /healthz response.
type healthBody struct {
	Status          string `json:"status"`
	ActiveSessions  int64  `json:"active_sessions"`
	DrainedBackends int    `json:"drained_backends"`
}

// Handler returns the daemon's HTTP API:
//
//	POST   /session?video=V        admit a session (200 / 503 with outcome)
//	DELETE /session/{id}           end a session early
//	POST   /backend/{id}/drain     drain a backend (fails sessions over)
//	POST   /backend/{id}/restore   restore a drained backend
//	GET    /metrics                Prometheus text exposition
//	GET    /healthz                liveness + drain status
//	GET    /layout                 the layout being served
//	GET    /debug/trace            session-trace dump (when tracing is on);
//	                               ?format=chrome renders Chrome trace_event
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /session", s.handleOpen)
	mux.HandleFunc("DELETE /session/{id}", s.handleClose)
	mux.HandleFunc("POST /backend/{id}/drain", s.handleDrain)
	mux.HandleFunc("POST /backend/{id}/restore", s.handleRestore)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /layout", s.handleLayout)
	if s.tracer != nil {
		mux.HandleFunc("GET /debug/trace", s.handleTraceDump)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.Atoi(r.URL.Query().Get("video"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "video must be an integer catalog rank"})
		return
	}
	info, outcome, err := s.Open(v)
	switch {
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Outcome: outcome, Error: err.Error()})
	case outcome == OutcomeAccepted:
		writeJSON(w, http.StatusOK, info)
	default: // rejected or draining: the VoD "busy signal"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Outcome: outcome})
	}
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "session id must be an integer"})
		return
	}
	if !s.Close(id) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such session"})
		return
	}
	writeJSON(w, http.StatusOK, errorBody{Outcome: "closed"})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	b, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "backend id must be an integer"})
		return
	}
	failedOver, dropped, err := s.DrainBackend(b)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"failed_over": failedOver, "dropped": dropped})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	b, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "backend id must be an integer"})
		return
	}
	if err := s.RestoreBackend(b); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, errorBody{Outcome: "restored"})
}

func (s *Server) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var err error
	if r.URL.Query().Get("format") == "chrome" {
		err = s.tracer.WriteChromeTrace(w)
	} else {
		err = s.tracer.WriteJSON(w)
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.Render(w, s.c, s.Active(), s.pol.Name())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	drained := 0
	for b := 0; b < s.c.Servers(); b++ {
		if s.c.Draining(b) {
			drained++
		}
	}
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthBody{Status: status, ActiveSessions: s.Active(), DrainedBackends: drained})
}

func (s *Server) handleLayout(w http.ResponseWriter, _ *http.Request) {
	caps := make([]int64, s.c.Servers())
	for b := range caps {
		caps[b] = s.c.Capacity(b)
	}
	servers := make([][]int, s.c.Videos())
	for v := range servers {
		servers[v] = append([]int(nil), s.c.Holders(v)...)
	}
	writeJSON(w, http.StatusOK, layoutBody{
		Servers:      s.c.Servers(),
		Videos:       s.c.Videos(),
		Degree:       s.c.Layout().ReplicationDegree(),
		Policy:       s.pol.Name(),
		Compress:     s.compress,
		BackboneBps:  int64(s.c.Problem().BackboneBandwidth),
		CapacityBps:  caps,
		Replicas:     append([]int(nil), s.c.Layout().Replicas...),
		VideoServers: servers,
	})
}
