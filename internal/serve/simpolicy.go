package serve

import (
	"fmt"
	"math"
	"sync"

	"vodcluster/internal/cluster"
	"vodcluster/internal/policy"
	"vodcluster/internal/redirect"
	"vodcluster/internal/resilience"
)

// SimPolicy drives the exact scheduling policies of the simulator — a
// cluster.Scheduler over a cluster.State, wrapped with backbone redirection
// when the problem defines internal bandwidth — behind a mutex. Decisions
// are bit-identical to sim.Run given the same request order, which is what
// the cross-validation mode leans on; the price is one lock on the admission
// path, so the lock-free policies remain the scaling default. The shared
// Cluster gauges are kept in step so /metrics reads the same either way.
type SimPolicy struct {
	c *Cluster

	mu    sync.Mutex
	st    *cluster.State
	sched cluster.Scheduler
	name  string
}

// NewSimPolicy builds the locked sim-parity adapter for a base scheduler
// name, resolved through the shared policy registry (any registered
// simulator policy works; the empty name takes the registry default).
// Redirection over the backbone is enabled exactly when the problem defines
// backbone bandwidth, matching the simulator pipeline's convention.
func NewSimPolicy(base string, c *Cluster) (*SimPolicy, error) {
	e, err := policy.Lookup(base)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	sched := e.NewScheduler()
	name := "sim:" + e.Name
	if c.Problem().BackboneBandwidth > 0 {
		sched = redirect.New(sched)
		name += "+redirect"
	}
	st, err := cluster.New(c.Problem(), c.Layout())
	if err != nil {
		return nil, err
	}
	return &SimPolicy{c: c, st: st, sched: sched, name: name}, nil
}

// Name implements Policy.
func (p *SimPolicy) Name() string { return p.name }

// Admit implements Policy.
func (p *SimPolicy) Admit(v int) (Grant, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, ok := p.st.Admit(v, p.sched)
	if !ok {
		return Grant{}, false
	}
	s, _ := p.st.Lookup(id)
	g := Grant{
		Video:      v,
		Server:     s.Server,
		Source:     s.Source,
		Rate:       int64(math.Ceil(s.Rate)),
		Redirected: s.Redirected,
		simID:      int64(id),
	}
	p.c.ForceCharge(g.Server, g.Rate)
	if g.Redirected {
		p.c.ForceChargeBackbone(g.Rate)
	}
	return g, true
}

// Release implements Policy. A grant whose underlying stream was already
// torn down by DrainBackend only returns the gauge charge.
func (p *SimPolicy) Release(g Grant) {
	p.mu.Lock()
	_ = p.st.Release(cluster.StreamID(g.simID)) // already-torn streams are expected
	p.mu.Unlock()
	p.c.Release(g.Server, g.Rate)
	if g.Redirected {
		p.c.ReleaseBackbone(g.Rate)
	}
}

// Failover implements Policy via resilience.TryFailover on the locked state.
// The excluded (draining) server is already down in the state, so the
// resilience candidate scan cannot pick it.
func (p *SimPolicy) Failover(v, exclude int) (Grant, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, ok := resilience.TryFailover(p.st, v, 1)
	if !ok {
		return Grant{}, false
	}
	s, _ := p.st.Lookup(id)
	g := Grant{
		Video:  v,
		Server: s.Server,
		Source: s.Source,
		Rate:   int64(math.Ceil(s.Rate)),
		simID:  int64(id),
	}
	p.c.ForceCharge(g.Server, g.Rate)
	return g, true
}

// DrainBackend mirrors a backend drain into the locked state: the server is
// failed (its streams torn down, its replicas unreachable) so subsequent
// decisions avoid it. The serve engine releases the affected grants and
// drives failover; the state-side teardown happened here.
func (p *SimPolicy) DrainBackend(s int) {
	p.mu.Lock()
	p.st.FailServer(s)
	p.mu.Unlock()
}

// RestoreBackend brings a drained backend back in the locked state.
func (p *SimPolicy) RestoreBackend(s int) {
	p.mu.Lock()
	p.st.RestoreServer(s)
	p.mu.Unlock()
}

// FailBackend mirrors a backend crash into the locked state. It is the same
// mirror as a drain: the simulator models both as a failed server whose
// streams are torn and whose replicas are unreachable.
func (p *SimPolicy) FailBackend(s int) { p.DrainBackend(s) }

// RecoverBackend mirrors a crash recovery into the locked state.
func (p *SimPolicy) RecoverBackend(s int) { p.RestoreBackend(s) }

// AddReplica mirrors a repair copy landing into the locked state, so
// subsequent sim-parity decisions see the restored replica exactly as the
// simulator's repairer would have placed it.
func (p *SimPolicy) AddReplica(v, s int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st.AddReplica(v, s)
}

// RemoveReplica mirrors a rebalance eviction into the locked state. The
// state-side EvictReplica re-checks pinned streams and the last-copy rule —
// defense in depth behind the serve-layer checks.
func (p *SimPolicy) RemoveReplica(v, s int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st.EvictReplica(v, s)
}

var _ Policy = (*SimPolicy)(nil)
