package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(testProblem(t, 0), testLayout(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown()
	})
	return srv, hs
}

func TestHTTPSessionFlow(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	client := NewClient(hs.URL)
	ctx := context.Background()

	info, outcome, lat, err := client.Request(ctx, 0)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("request: outcome %q, err %v", outcome, err)
	}
	if lat <= 0 {
		t.Fatal("latency not measured")
	}
	if info.Video != 0 || info.RateBps <= 0 {
		t.Fatalf("bad session info: %+v", info)
	}
	if srv.Active() != 1 {
		t.Fatalf("active = %d, want 1", srv.Active())
	}

	if err := client.CloseSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "session teardown", func() bool { return srv.Active() == 0 })
	if err := client.CloseSession(ctx, info.ID); err == nil {
		t.Fatal("closing a dead session succeeded")
	}

	// Saturate v1 (one 2-slot holder): the third request gets the busy
	// signal with a Retry-After hint.
	for i := 0; i < 2; i++ {
		if _, outcome, _, err := client.Request(ctx, 1); err != nil || outcome != OutcomeAccepted {
			t.Fatalf("fill %d: outcome %q, err %v", i, outcome, err)
		}
	}
	resp, err := http.Post(hs.URL+"/session?video=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated admission: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeRejected {
		t.Fatalf("outcome %q, want rejected", e.Outcome)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{http.MethodPost, "/session?video=abc", http.StatusBadRequest},
		{http.MethodPost, "/session?video=99", http.StatusBadRequest},
		{http.MethodPost, "/session", http.StatusBadRequest},
		{http.MethodDelete, "/session/notanumber", http.StatusBadRequest},
		{http.MethodDelete, "/session/12345", http.StatusNotFound},
		{http.MethodPost, "/backend/99/drain", http.StatusBadRequest},
		{http.MethodPost, "/backend/x/restore", http.StatusBadRequest},
		{http.MethodGet, "/session?video=0", http.StatusMethodNotAllowed},
		{http.MethodGet, "/nope", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, hs.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestHTTPHealthzAndLayout(t *testing.T) {
	srv, hs := newTestServer(t, Config{Policy: "static-rr", Compress: 60})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthBody
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: status %d body %+v", resp.StatusCode, h)
	}

	resp, err = http.Get(hs.URL + "/layout")
	if err != nil {
		t.Fatal(err)
	}
	var l layoutBody
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if l.Servers != 2 || l.Videos != 3 || l.Policy != "static-rr" || l.Compress != 60 {
		t.Fatalf("layout: %+v", l)
	}
	if len(l.VideoServers) != 3 || len(l.VideoServers[0]) != 2 {
		t.Fatalf("layout replica map: %+v", l.VideoServers)
	}

	// A backend drain shows up in /healthz; a daemon drain flips the status.
	if _, err := http.Post(hs.URL+"/backend/0/drain", "", nil); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.DrainedBackends != 1 {
		t.Fatalf("drained backends = %d, want 1", h.DrainedBackends)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz during drain: status %d body %+v", resp.StatusCode, h)
	}
}

// stubRebalancer is a canned serve.Rebalancer for exercising the HTTP
// surface without spinning up the real controller.
type stubRebalancer struct {
	triggers atomic.Int64
	status   RebalanceStatus
}

func (r *stubRebalancer) Observe(int) {}
func (r *stubRebalancer) Trigger() bool {
	r.triggers.Add(1)
	return true
}
func (r *stubRebalancer) Status() RebalanceStatus { return r.status }
func (r *stubRebalancer) Stop()                   {}

func TestHTTPRebalanceAndLayoutVersion(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	getLayout := func() layoutBody {
		t.Helper()
		resp, err := http.Get(hs.URL + "/layout")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var l layoutBody
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			t.Fatal(err)
		}
		return l
	}

	l := getLayout()
	if l.LayoutVersion != 1 {
		t.Fatalf("fresh layout version %d, want 1", l.LayoutVersion)
	}
	wantBytes := 0.0
	p := srv.Cluster().Problem()
	for v, servers := range l.VideoServers {
		if l.LiveReplicas[v] != len(servers) {
			t.Fatalf("live_replicas[%d] = %d, holders %v", v, l.LiveReplicas[v], servers)
		}
		wantBytes += float64(len(servers)) * p.Catalog[v].SizeBytes()
	}
	if l.ReplicatedBytes != wantBytes {
		t.Fatalf("replicated_bytes = %g, want %g", l.ReplicatedBytes, wantBytes)
	}

	// No controller attached: status is a zero-ish snapshot, trigger conflicts.
	resp, err := http.Get(hs.URL + "/rebalance")
	if err != nil {
		t.Fatal(err)
	}
	var st RebalanceStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Enabled || st.LayoutVersion != 1 {
		t.Fatalf("detached rebalance status: %+v", st)
	}
	resp, err = http.Post(hs.URL+"/rebalance/trigger", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trigger without controller: status %d, want 409", resp.StatusCode)
	}

	// Attached: trigger lands on the controller, status passes through.
	stub := &stubRebalancer{status: RebalanceStatus{Enabled: true, Rounds: 3, LayoutVersion: 1}}
	srv.AttachRebalancer(stub)
	resp, err = http.Post(hs.URL+"/rebalance/trigger", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trigger: status %d, want 202", resp.StatusCode)
	}
	if stub.triggers.Load() != 1 {
		t.Fatalf("triggers = %d, want 1", stub.triggers.Load())
	}
	resp, err = http.Get(hs.URL + "/rebalance")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Enabled || st.Rounds != 3 {
		t.Fatalf("attached rebalance status: %+v", st)
	}

	// A directory mutation bumps the version and the live replica view.
	v := 1
	dst := -1
	holders := srv.Cluster().Holders(v)
	for s := 0; s < srv.Cluster().Servers(); s++ {
		held := false
		for _, h := range holders {
			if h == s {
				held = true
			}
		}
		if !held {
			dst = s
			break
		}
	}
	if dst == -1 {
		t.Fatalf("video %d already everywhere: %v", v, holders)
	}
	if err := srv.LandReplica(v, dst); err != nil {
		t.Fatal(err)
	}
	l2 := getLayout()
	if l2.LayoutVersion != 2 {
		t.Fatalf("layout version after migration = %d, want 2", l2.LayoutVersion)
	}
	if l2.LiveReplicas[v] != len(holders)+1 {
		t.Fatalf("live_replicas[%d] = %d, want %d", v, l2.LiveReplicas[v], len(holders)+1)
	}
	if l2.ReplicatedBytes != wantBytes+p.Catalog[v].SizeBytes() {
		t.Fatalf("replicated_bytes = %g after migration, want %g", l2.ReplicatedBytes, wantBytes+p.Catalog[v].SizeBytes())
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	client := NewClient(hs.URL)
	ctx := context.Background()
	if _, outcome, _, err := client.Request(ctx, 0); err != nil || outcome != OutcomeAccepted {
		t.Fatalf("request: outcome %q, err %v", outcome, err)
	}
	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`vod_requests_total{outcome="accepted"} 1`,
		`vod_requests_total{outcome="rejected"} 0`,
		`vod_sessions_active 1`,
		`vod_server_capacity_bps{server="0"} 10000000`,
		`vod_admission_latency_seconds_count 1`,
		`vod_policy_info{policy="least-loaded"} 1`,
		`vod_admission_latency_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestHTTPDrainEndpointFailsOver(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	client := NewClient(hs.URL)
	info, outcome, _, err := client.Request(context.Background(), 0)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("request: outcome %q, err %v", outcome, err)
	}
	resp, err := http.Post(hs.URL+"/backend/"+strconv.Itoa(info.Server)+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var counts map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&counts); err != nil {
		t.Fatal(err)
	}
	if counts["failed_over"] != 1 || counts["dropped"] != 0 {
		t.Fatalf("drain counts: %v", counts)
	}
	if srv.Active() != 1 {
		t.Fatalf("active = %d after failover, want 1", srv.Active())
	}
}
