package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(testProblem(t, 0), testLayout(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown()
	})
	return srv, hs
}

func TestHTTPSessionFlow(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	client := NewClient(hs.URL)
	ctx := context.Background()

	info, outcome, lat, err := client.Request(ctx, 0)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("request: outcome %q, err %v", outcome, err)
	}
	if lat <= 0 {
		t.Fatal("latency not measured")
	}
	if info.Video != 0 || info.RateBps <= 0 {
		t.Fatalf("bad session info: %+v", info)
	}
	if srv.Active() != 1 {
		t.Fatalf("active = %d, want 1", srv.Active())
	}

	if err := client.CloseSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "session teardown", func() bool { return srv.Active() == 0 })
	if err := client.CloseSession(ctx, info.ID); err == nil {
		t.Fatal("closing a dead session succeeded")
	}

	// Saturate v1 (one 2-slot holder): the third request gets the busy
	// signal with a Retry-After hint.
	for i := 0; i < 2; i++ {
		if _, outcome, _, err := client.Request(ctx, 1); err != nil || outcome != OutcomeAccepted {
			t.Fatalf("fill %d: outcome %q, err %v", i, outcome, err)
		}
	}
	resp, err := http.Post(hs.URL+"/session?video=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated admission: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Outcome != OutcomeRejected {
		t.Fatalf("outcome %q, want rejected", e.Outcome)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{http.MethodPost, "/session?video=abc", http.StatusBadRequest},
		{http.MethodPost, "/session?video=99", http.StatusBadRequest},
		{http.MethodPost, "/session", http.StatusBadRequest},
		{http.MethodDelete, "/session/notanumber", http.StatusBadRequest},
		{http.MethodDelete, "/session/12345", http.StatusNotFound},
		{http.MethodPost, "/backend/99/drain", http.StatusBadRequest},
		{http.MethodPost, "/backend/x/restore", http.StatusBadRequest},
		{http.MethodGet, "/session?video=0", http.StatusMethodNotAllowed},
		{http.MethodGet, "/nope", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, hs.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestHTTPHealthzAndLayout(t *testing.T) {
	srv, hs := newTestServer(t, Config{Policy: "static-rr", Compress: 60})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthBody
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: status %d body %+v", resp.StatusCode, h)
	}

	resp, err = http.Get(hs.URL + "/layout")
	if err != nil {
		t.Fatal(err)
	}
	var l layoutBody
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if l.Servers != 2 || l.Videos != 3 || l.Policy != "static-rr" || l.Compress != 60 {
		t.Fatalf("layout: %+v", l)
	}
	if len(l.VideoServers) != 3 || len(l.VideoServers[0]) != 2 {
		t.Fatalf("layout replica map: %+v", l.VideoServers)
	}

	// A backend drain shows up in /healthz; a daemon drain flips the status.
	if _, err := http.Post(hs.URL+"/backend/0/drain", "", nil); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.DrainedBackends != 1 {
		t.Fatalf("drained backends = %d, want 1", h.DrainedBackends)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz during drain: status %d body %+v", resp.StatusCode, h)
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	client := NewClient(hs.URL)
	ctx := context.Background()
	if _, outcome, _, err := client.Request(ctx, 0); err != nil || outcome != OutcomeAccepted {
		t.Fatalf("request: outcome %q, err %v", outcome, err)
	}
	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`vod_requests_total{outcome="accepted"} 1`,
		`vod_requests_total{outcome="rejected"} 0`,
		`vod_sessions_active 1`,
		`vod_server_capacity_bps{server="0"} 10000000`,
		`vod_admission_latency_seconds_count 1`,
		`vod_policy_info{policy="least-loaded"} 1`,
		`vod_admission_latency_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestHTTPDrainEndpointFailsOver(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	client := NewClient(hs.URL)
	info, outcome, _, err := client.Request(context.Background(), 0)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("request: outcome %q, err %v", outcome, err)
	}
	resp, err := http.Post(hs.URL+"/backend/"+strconv.Itoa(info.Server)+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var counts map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&counts); err != nil {
		t.Fatal(err)
	}
	if counts["failed_over"] != 1 || counts["dropped"] != 0 {
		t.Fatalf("drain counts: %v", counts)
	}
	if srv.Active() != 1 {
		t.Fatalf("active = %d after failover, want 1", srv.Active())
	}
}
