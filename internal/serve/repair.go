package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"vodcluster/internal/core"
	"vodcluster/internal/obs"
)

// RepairConfig tunes the live re-replication repairer. The tuning mirrors
// the simulator's resilience.Policy repair fields (and takes the same
// defaults), so a live run and a sim.Run with equivalent configs repair the
// same videos at the same virtual times.
type RepairConfig struct {
	// MinLive is the live-replica threshold that triggers a repair copy
	// (default 2). A video's effective threshold is min(MinLive, its placed
	// replica count), so thinly-replicated videos on a healthy cluster do
	// not churn.
	MinLive int
	// Interval is the scan cadence in virtual seconds (default 60),
	// divided by the daemon's compression factor for the wall-clock ticker.
	Interval float64
	// CopyRate is the bandwidth one in-flight copy consumes, bits/s
	// (default 200 Mb/s) — reserved on the cluster backbone when the
	// problem defines one, otherwise on the source server's outgoing link,
	// so repair traffic competes with admissions exactly as in the sim.
	CopyRate float64
	// MaxPerScan caps copies started per scan (default 2).
	MaxPerScan int
	// Budget caps the total bits/s of concurrent repair copies; 0 means no
	// cap beyond the per-copy bandwidth reservations (the simulator's
	// behaviour, and the right setting for sim parity).
	Budget float64
}

// withDefaults fills zero-valued tunables with the resilience defaults.
func (c RepairConfig) withDefaults() RepairConfig {
	if c.MinLive == 0 {
		c.MinLive = 2
	}
	if c.Interval == 0 {
		c.Interval = 60
	}
	if c.CopyRate == 0 {
		c.CopyRate = 200 * core.Mbps
	}
	if c.MaxPerScan == 0 {
		c.MaxPerScan = 2
	}
	return c
}

// RepairAction is one journaled repairer decision.
type RepairAction struct {
	TimeNS int64  `json:"ts_ns"` // tracer-epoch nanoseconds
	Action string `json:"action"`
	Video  int    `json:"video"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Detail string `json:"detail,omitempty"`
}

// Repairer is the live counterpart of resilience.Repairer: a background
// loop that scans for videos whose live replica count fell below the
// threshold — the aftermath of a backend crash — and restores copies on
// surviving servers. Each in-flight copy reserves CopyRate on the backbone
// (or the source's outgoing link) for size·8/CopyRate virtual seconds; a
// landed copy is published to the Cluster's holder lists, mirrored into a
// sim-parity policy when one is active, journaled, and counted in
// vod_rereplications_total.
type Repairer struct {
	s   *Server
	cfg RepairConfig

	kick chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	copies   sync.WaitGroup

	mu           sync.Mutex
	inflight     map[int]bool // videos with a copy in flight
	inflightRate float64      // bits/s of concurrent copies
	peakRate     float64      // high-water inflightRate, for budget asserts
	journal      []RepairAction

	started   atomic.Int64
	completed atomic.Int64
	aborted   atomic.Int64
	skipped   atomic.Int64
}

// maxJournal bounds the kept journal; the oldest half is discarded beyond it.
const maxJournal = 4096

// NewRepairer attaches a repairer to srv (FailBackend kicks it for an
// immediate scan). The repairer is created stopped; call Start.
func NewRepairer(srv *Server, cfg RepairConfig) (*Repairer, error) {
	cfg = cfg.withDefaults()
	if cfg.MinLive < 1 || cfg.Interval <= 0 || cfg.CopyRate <= 0 || cfg.MaxPerScan < 1 || cfg.Budget < 0 {
		return nil, fmt.Errorf("serve: invalid repair config %+v", cfg)
	}
	r := &Repairer{
		s:        srv,
		cfg:      cfg,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		inflight: make(map[int]bool),
	}
	srv.rep.Store(r)
	return r, nil
}

// Started returns the number of repair copies begun.
func (r *Repairer) Started() int64 { return r.started.Load() }

// Completed returns the number of repair copies landed as replicas.
func (r *Repairer) Completed() int64 { return r.completed.Load() }

// Aborted returns copies dropped because an endpoint died mid-copy or the
// daemon shut down.
func (r *Repairer) Aborted() int64 { return r.aborted.Load() }

// Skipped returns repair opportunities abandoned for lack of bandwidth,
// storage, budget, or eligible servers.
func (r *Repairer) Skipped() int64 { return r.skipped.Load() }

// Inflight returns the number of copies currently in flight.
func (r *Repairer) Inflight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.inflight)
}

// PeakCopyRate returns the high-water mark of concurrent repair bandwidth in
// bits/s — what the budget bounds when one is configured.
func (r *Repairer) PeakCopyRate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peakRate
}

// Journal returns a copy of the journaled repair actions, oldest first.
func (r *Repairer) Journal() []RepairAction {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RepairAction(nil), r.journal...)
}

// Start launches the scan loop.
func (r *Repairer) Start() {
	go func() {
		defer close(r.done)
		wall := time.Duration(r.cfg.Interval / r.s.compress * float64(time.Second))
		tick := time.NewTicker(wall)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-r.kick:
				r.scan()
			case <-tick.C:
				r.scan()
			}
		}
	}()
}

// Stop terminates the scan loop, aborts in-flight copies, and waits for
// everything to wind down.
func (r *Repairer) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.copies.Wait()
}

// Kick requests an immediate scan (coalesced if one is already pending);
// FailBackend calls it so repair starts at the crash, not the next tick.
func (r *Repairer) Kick() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// scan mirrors resilience.Repairer.Tick: walk the catalog hottest-first
// (lowest rank — the catalog is popularity-ordered) and start up to
// MaxPerScan copies for videos below their live-replica threshold.
func (r *Repairer) scan() {
	c := r.s.Cluster()
	started := 0
	for v := 0; v < c.Videos() && started < r.cfg.MaxPerScan; v++ {
		r.mu.Lock()
		busy := r.inflight[v]
		r.mu.Unlock()
		if busy {
			continue
		}
		threshold := r.cfg.MinLive
		if placed := len(c.Holders(v)); placed < threshold {
			threshold = placed
		}
		if c.LiveReplicas(v) >= threshold {
			continue
		}
		if r.startCopy(v) {
			started++
		} else {
			r.skipped.Add(1)
		}
	}
}

// storageFree returns server s's unaccounted content storage: its capacity
// minus every replica it currently holds (including repair-landed ones).
func (r *Repairer) storageFree(s int) float64 {
	c := r.s.Cluster()
	p := c.Problem()
	used := 0.0
	for v := 0; v < c.Videos(); v++ {
		for _, h := range c.Holders(v) {
			if h == s {
				used += p.Catalog[v].SizeBytes()
			}
		}
	}
	return p.StorageOf(s) - used
}

// startCopy begins re-replicating v from its most-free surviving holder onto
// the most-free eligible non-holder with storage room, reserving the copy
// bandwidth for the transfer's (compressed) duration. Candidate selection
// matches resilience.Repairer.startCopy so the live and simulated repairers
// pick identical endpoints given identical cluster states.
func (r *Repairer) startCopy(v int) bool {
	c := r.s.Cluster()
	p := c.Problem()

	src, srcFree := -1, int64(0)
	for _, s := range c.Holders(v) {
		if c.State(s) == BackendDown {
			continue
		}
		if free := c.Free(s); src == -1 || free > srcFree {
			src, srcFree = s, free
		}
	}
	if src == -1 {
		return false // every replica is down: nothing to copy from
	}
	size := p.Catalog[v].SizeBytes()
	dst, dstFree := -1, int64(0)
	for s := 0; s < c.Servers(); s++ {
		if !c.Eligible(s) || s == src {
			continue
		}
		if holds(c, v, s) {
			continue
		}
		if r.storageFree(s) < size-1e-6 {
			continue
		}
		if free := c.Free(s); dst == -1 || free > dstFree {
			dst, dstFree = s, free
		}
	}
	if dst == -1 {
		return false
	}

	rate := int64(math.Ceil(r.cfg.CopyRate))
	r.mu.Lock()
	if r.cfg.Budget > 0 && r.inflightRate+r.cfg.CopyRate > r.cfg.Budget+1e-6 {
		r.mu.Unlock()
		return false
	}
	r.mu.Unlock()

	overBackbone := p.BackboneBandwidth > 0
	if overBackbone {
		if !c.TryReserveBackbone(rate) {
			return false
		}
	} else if !c.TryReserveBandwidth(src, rate) {
		return false
	}

	r.mu.Lock()
	r.inflight[v] = true
	r.inflightRate += r.cfg.CopyRate
	if r.inflightRate > r.peakRate {
		r.peakRate = r.inflightRate
	}
	r.mu.Unlock()
	r.started.Add(1)
	r.log(RepairAction{TimeNS: r.s.tracer.NowNS(), Action: "start", Video: v, Src: src, Dst: dst})
	r.s.tracer.Record(obs.Event{TS: r.s.tracer.NowNS(), Kind: obs.KindRepair,
		Video: v, Server: dst, Detail: fmt.Sprintf("copy from %d", src)})

	wall := time.Duration(size * 8 / r.cfg.CopyRate / r.s.compress * float64(time.Second))
	r.copies.Add(1)
	go func() {
		defer r.copies.Done()
		t := time.NewTimer(wall)
		finished := false
		select {
		case <-t.C:
			finished = true
		case <-r.stop:
			t.Stop()
		}
		if overBackbone {
			c.ReleaseBackbone(rate)
		} else {
			c.ReleaseBandwidth(src, rate)
		}
		r.mu.Lock()
		delete(r.inflight, v)
		r.inflightRate -= r.cfg.CopyRate
		r.mu.Unlock()
		r.settleCopy(v, src, dst, finished)
	}()
	return true
}

// settleCopy lands or aborts one finished transfer. The source dying
// mid-copy drops the unfinished copy (the faithful outcome, mirroring the
// sim); the destination dying makes the landed bytes unreachable, so the
// copy is dropped too.
func (r *Repairer) settleCopy(v, src, dst int, finished bool) {
	c := r.s.Cluster()
	abort := func(detail string) {
		r.aborted.Add(1)
		r.log(RepairAction{TimeNS: r.s.tracer.NowNS(), Action: "abort", Video: v, Src: src, Dst: dst, Detail: detail})
		r.s.tracer.Record(obs.Event{TS: r.s.tracer.NowNS(), Kind: obs.KindRepair,
			Video: v, Server: dst, Detail: "abort: " + detail})
	}
	switch {
	case !finished:
		abort("shutdown")
	case c.State(src) == BackendDown:
		abort("source died mid-copy")
	case c.State(dst) == BackendDown:
		abort("destination died mid-copy")
	case !r.s.landRepair(v, dst):
		abort("destination already holds a replica")
	default:
		if m, ok := r.s.pol.(interface{ AddReplica(v, s int) error }); ok {
			if err := m.AddReplica(v, dst); err != nil {
				// The concurrent holder list and the locked mirror disagree
				// (e.g. mirror storage exhausted); keep serving from the
				// live list but journal the divergence.
				r.log(RepairAction{TimeNS: r.s.tracer.NowNS(), Action: "mirror-error",
					Video: v, Src: src, Dst: dst, Detail: err.Error()})
			}
		}
		r.completed.Add(1)
		r.s.met.ReReplicated()
		r.log(RepairAction{TimeNS: r.s.tracer.NowNS(), Action: "complete", Video: v, Src: src, Dst: dst})
		r.s.tracer.Record(obs.Event{TS: r.s.tracer.NowNS(), Kind: obs.KindRepair,
			Video: v, Server: dst, Detail: "replica restored"})
	}
}

// log appends one journal entry, trimming the oldest half at the cap.
func (r *Repairer) log(a RepairAction) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.journal) >= maxJournal {
		r.journal = append(r.journal[:0], r.journal[maxJournal/2:]...)
	}
	r.journal = append(r.journal, a)
}

// holds reports whether server s currently holds a replica of v.
func holds(c *Cluster, v, s int) bool {
	for _, h := range c.Holders(v) {
		if h == s {
			return true
		}
	}
	return false
}
