package serve

import (
	"errors"
	"fmt"
)

// BackendRangeError reports a backend index outside the cluster.
type BackendRangeError struct {
	Backend int // the requested backend index
	Servers int // the cluster size
}

// Error implements error.
func (e *BackendRangeError) Error() string {
	return fmt.Sprintf("serve: backend %d outside cluster of %d", e.Backend, e.Servers)
}

// Sentinel errors of the backend state machine. Callers distinguish them
// with errors.Is; BackendRangeError carries the index and is matched with
// errors.As.
var (
	// ErrBackendDraining rejects a drain of a backend already draining.
	ErrBackendDraining = errors.New("serve: backend is already draining")
	// ErrBackendDown rejects an operation on a crashed backend: draining it
	// (it is already out of service) or failing it again (the failure was
	// already settled — this is what makes concurrent FailBackend calls
	// settle each crash exactly once).
	ErrBackendDown = errors.New("serve: backend is down")
	// ErrBackendNotDown rejects a recovery of a backend that never crashed.
	ErrBackendNotDown = errors.New("serve: backend is not down")
)

// Sentinel errors of replica eviction (the rebalancer's migration path).
var (
	// ErrReplicaPinned defers an eviction while live sessions stream from
	// the replica; the rebalancer retries after the sessions drain.
	ErrReplicaPinned = errors.New("serve: replica has pinned sessions")
	// ErrLastReplica refuses to evict a video's only live copy.
	ErrLastReplica = errors.New("serve: refusing to evict the last live replica")
	// ErrNoReplica rejects an eviction of a copy the server does not hold.
	ErrNoReplica = errors.New("serve: server holds no replica of the video")
)
