//go:build linux && !mips && !mipsle && !mips64 && !mips64le

package serve

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT from the asm-generic Linux socket ABI (0xf on
// every port Go supports except MIPS, which the build tag excludes). The
// frozen syscall package predates the option, so the constant lives here.
const soReusePort = 0xf

// reusePortAvailable reports whether this platform can bind several
// listeners to one address — the sharded accept-loop mode of the ingress.
const reusePortAvailable = true

// listenReusePort binds a TCP listener with SO_REUSEPORT set before bind,
// so N listeners share one port and the kernel spreads incoming connections
// across their accept queues — one accept loop per ingress shard with no
// user-space handoff.
func listenReusePort(addr string) (net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	return lc.Listen(context.Background(), "tcp", addr)
}
