package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"vodcluster/internal/faults"
	"vodcluster/internal/metrics"
	"vodcluster/internal/stats"
	"vodcluster/internal/workload"
)

// Client talks to a vodserved daemon. The zero HTTP client is replaced by
// one tuned for many short keep-alive requests to a single host, which is
// what open-loop replay produces.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8370".
	Base string
	// HTTP overrides the transport; nil gets a keep-alive pool sized for
	// replay concurrency.
	HTTP *http.Client
	// Conns is the number of persistent fast connections Replay drives
	// (each owned by one worker goroutine); 0 picks 4×GOMAXPROCS clamped
	// to [8, 64].
	Conns int
}

// NewClient builds a replay-tuned client for a daemon base URL.
func NewClient(base string) *Client {
	// MaxConnsPerHost bounds in-flight sockets: open-loop replay can have
	// thousands of outstanding decisions, and letting each open its own
	// connection thrashes the scheduler; queueing on a bounded pool is
	// faster and the queue delay is honestly part of observed admission
	// latency.
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		MaxConnsPerHost:     256,
		DisableCompression:  true,
	}
	return &Client{Base: base, HTTP: &http.Client{Transport: tr, Timeout: 30 * time.Second}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Request runs one admission decision for video v and returns the outcome,
// the session info when accepted, and the observed admission latency.
func (c *Client) Request(ctx context.Context, v int) (SessionInfo, Outcome, time.Duration, error) {
	url := fmt.Sprintf("%s/session?video=%d", c.Base, v)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return SessionInfo{}, "", 0, err
	}
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	lat := time.Since(start)
	if err != nil {
		return SessionInfo{}, "", lat, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var info SessionInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return SessionInfo{}, "", lat, fmt.Errorf("serve: decoding session: %w", err)
		}
		return info, OutcomeAccepted, lat, nil
	case http.StatusServiceUnavailable:
		var e errorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Outcome == "" {
			return SessionInfo{}, OutcomeRejected, lat, nil
		}
		return SessionInfo{}, e.Outcome, lat, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return SessionInfo{}, "", lat, fmt.Errorf("serve: %s: %s", resp.Status, body)
	}
}

// CloseSession ends session id early on the daemon.
func (c *Client) CloseSession(ctx context.Context, id int64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("%s/session/%d", c.Base, id), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: closing session %d: %s", id, resp.Status)
	}
	return nil
}

// Metrics fetches and returns the daemon's raw Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// Report aggregates one replay: outcome counts, error count, observed
// admission latencies, and the wall-clock span of the decisions.
type Report struct {
	Requests   int
	Accepted   int
	Rejected   int
	Draining   int
	Redirected int
	Errors     int
	// FirstError records the first transport/protocol error, if any.
	FirstError error
	// Latencies holds every decision's observed latency, in arrival order.
	Latencies []time.Duration
	// Times holds each settled decision's dispatch offset in trace
	// (virtual) seconds, aligned with Latencies and Outcomes — what
	// windowed measurements (post-failure rejection rate, throughput after
	// a scripted crash) slice on.
	Times []float64
	// Outcomes holds each settled decision's outcome, aligned with Times.
	Outcomes []Outcome
	// Wall is the wall-clock time from first dispatch to last settled
	// decision.
	Wall time.Duration
	// DispatchWall is the wall-clock span of the dispatch loop alone —
	// first scheduled request to last handoff. Requests/DispatchWall is the
	// rate the generator actually offered, which the caller must compare
	// against the rate it asked for: an overloaded generator silently
	// under-drives the daemon and makes every downstream number look rosier
	// than reality.
	DispatchWall time.Duration
	// DispatchLagMax is the worst gap between a request's scheduled
	// dispatch time and the moment the dispatcher actually handed it off —
	// the direct symptom of a generator that cannot keep up.
	DispatchLagMax time.Duration
}

// OfferedRate returns the request rate the dispatcher actually achieved, in
// requests per wall second.
func (r *Report) OfferedRate() float64 {
	if r.DispatchWall <= 0 {
		return 0
	}
	return float64(r.Requests) / r.DispatchWall.Seconds()
}

// Since aggregates the settled decisions dispatched at or after virtual
// time t: how many there were and how many were refused (capacity
// rejections plus drain refusals). It is the live counterpart of running
// the simulator with Warmup=t — both count only what arrived in [t, end).
func (r *Report) Since(t float64) (requests, rejected int) {
	for i, at := range r.Times {
		if at < t {
			continue
		}
		requests++
		if r.Outcomes[i] != OutcomeAccepted {
			rejected++
		}
	}
	return requests, rejected
}

// RejectionRate returns rejected (capacity + draining) over settled
// decisions, the quantity cross-validated against sim.Run.
func (r *Report) RejectionRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Rejected+r.Draining) / float64(r.Requests)
}

// DecisionsPerSec returns settled admission decisions per wall second.
func (r *Report) DecisionsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Wall.Seconds()
}

// LatencyQuantile returns the q-quantile (q in [0,1]) of observed admission
// latencies.
func (r *Report) LatencyQuantile(q float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	xs := make([]float64, len(r.Latencies))
	for i, d := range r.Latencies {
		xs[i] = float64(d)
	}
	sort.Float64s(xs)
	return time.Duration(stats.Quantile(xs, q))
}

// Result converts the replay into a metrics.Result so live measurements
// flow through the same aggregation/reporting stack as simulated ones.
func (r *Report) Result() metrics.Result {
	res := metrics.Result{
		Requests:   r.Requests,
		Accepted:   r.Accepted,
		Rejected:   r.Rejected + r.Draining,
		Redirected: r.Redirected,
	}
	if res.Requests > 0 {
		res.RejectionRate = float64(res.Rejected) / float64(res.Requests)
		res.FailureRate = res.RejectionRate
	}
	return res
}

// Replay replays a trace open-loop against the daemon at the given time
// compression: request i is dispatched at wall time Time_i/compress after
// the replay starts, regardless of how earlier decisions fared. A central
// timer loop hands requests to a pool of worker goroutines, each owning one
// persistent fast connection (Conns of them), so replay reuses sockets
// instead of paying a dial or a transport round trip per decision; a worker
// whose connection dies redials once per request. The daemon must run with
// the same compression factor for its session occupancy to match the
// trace's virtual timeline. Dispatch stops early when ctx ends;
// already-dispatched requests still settle. Latencies are measured from the
// moment the dispatcher hands a request off, so worker-queue wait is
// honestly part of observed admission latency, and the report carries the
// dispatcher's own lag so callers can detect an under-driven run.
func (c *Client) Replay(ctx context.Context, tr *workload.Trace, compress float64) (*Report, error) {
	scaled, err := tr.Compress(compress)
	if err != nil {
		return nil, err
	}
	type outcome struct {
		out        Outcome
		redirected bool
		lat        time.Duration
		err        error
	}
	results := make([]outcome, len(scaled.Requests))

	nconn := c.Conns
	if nconn <= 0 {
		nconn = 4 * runtime.GOMAXPROCS(0)
		if nconn < 8 {
			nconn = 8
		}
		if nconn > 64 {
			nconn = 64
		}
	}
	type job struct {
		i, v int
		at   time.Time
	}
	jobs := make(chan job, 4096)
	var wg sync.WaitGroup
	for w := 0; w < nconn; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var fc *FastConn
			defer func() {
				if fc != nil {
					fc.Close()
				}
			}()
			for j := range jobs {
				var info SessionInfo
				var out Outcome
				var err error
				for attempt := 0; attempt < 2; attempt++ {
					if fc == nil {
						if fc, err = c.DialFast(); err != nil {
							fc = nil
							break
						}
					}
					if info, out, err = fc.Open(j.v); err == nil {
						break
					}
					fc.Close()
					fc = nil
				}
				results[j.i] = outcome{out, info.Redirected, time.Since(j.at), err}
			}
		}()
	}

	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var lagMax time.Duration
dispatch:
	for i, req := range scaled.Requests {
		sched := start.Add(time.Duration(req.Time * float64(time.Second)))
		if wait := time.Until(sched); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break dispatch
			}
		}
		now := time.Now()
		if lag := now.Sub(sched); lag > lagMax {
			lagMax = lag
		}
		select {
		case jobs <- job{i, req.Video, now}:
		case <-ctx.Done():
			break dispatch
		}
	}
	dispatchWall := time.Since(start)
	close(jobs)
	wg.Wait()

	rep := &Report{Wall: time.Since(start), DispatchWall: dispatchWall, DispatchLagMax: lagMax}
	for i, res := range results {
		switch {
		case res.err != nil:
			rep.Errors++
			if rep.FirstError == nil {
				rep.FirstError = res.err
			}
			continue
		case res.out == OutcomeAccepted:
			rep.Accepted++
			if res.redirected {
				rep.Redirected++
			}
		case res.out == OutcomeRejected:
			rep.Rejected++
		case res.out == OutcomeDraining:
			rep.Draining++
		default:
			continue // never dispatched (ctx ended before its slot)
		}
		rep.Requests++
		rep.Latencies = append(rep.Latencies, res.lat)
		rep.Times = append(rep.Times, tr.Requests[i].Time)
		rep.Outcomes = append(rep.Outcomes, res.out)
	}
	return rep, nil
}

// Fault applies one fault-schedule event on the daemon (POST /fault) — the
// transport fault replay (vodload -faults) drives scripted crashes through.
func (c *Client) Fault(ctx context.Context, e faults.Event) error {
	body, err := json.Marshal(e)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.Base+"/fault", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("serve: applying fault: %s: %s", resp.Status, e.Error)
	}
	return nil
}
