package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestIngress binds a sharded ingress over a fresh micro-cluster daemon
// on a loopback port.
func newTestIngress(t *testing.T, cfg Config, icfg IngressConfig) (*Server, *Ingress, string) {
	t.Helper()
	srv, err := New(testProblem(t, 0), testLayout(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := NewIngress(srv, icfg)
	if err != nil {
		srv.Shutdown()
		t.Fatal(err)
	}
	addr, err := ing.Start("127.0.0.1:0")
	if err != nil {
		srv.Shutdown()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ing.Close()
		srv.Shutdown()
	})
	return srv, ing, addr.String()
}

func TestIngressFastSessionFlow(t *testing.T) {
	srv, ing, addr := newTestIngress(t, Config{}, IngressConfig{})
	fc, err := DialFast(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	info, out, err := fc.Open(0)
	if err != nil || out != OutcomeAccepted {
		t.Fatalf("open: outcome %q, err %v", out, err)
	}
	if info.Video != 0 || info.RateBps <= 0 {
		t.Fatalf("bad session info: %+v", info)
	}
	if srv.Active() != 1 {
		t.Fatalf("active = %d, want 1", srv.Active())
	}
	closed, err := fc.CloseSession(info.ID)
	if err != nil || !closed {
		t.Fatalf("close: %v %v", closed, err)
	}
	waitUntil(t, 2*time.Second, "session teardown", func() bool { return srv.Active() == 0 })
	if closed, err := fc.CloseSession(info.ID); err != nil || closed {
		t.Fatalf("closing a dead session: %v %v", closed, err)
	}

	// Saturate video 1 (one 2-slot holder); the third open is refused with
	// the rejected outcome but no transport error.
	for i := 0; i < 2; i++ {
		if _, out, err := fc.Open(1); err != nil || out != OutcomeAccepted {
			t.Fatalf("fill %d: outcome %q, err %v", i, out, err)
		}
	}
	if _, out, err := fc.Open(1); err != nil || out != OutcomeRejected {
		t.Fatalf("saturated open: outcome %q, err %v", out, err)
	}

	// Invalid video id: a 400 with an error payload, still no transport
	// error surprises, and the connection stays usable.
	if _, _, err := fc.Open(99); err == nil {
		t.Fatal("open of an unknown video succeeded")
	}
	if _, out, err := fc.Open(0); err != nil || out != OutcomeAccepted {
		t.Fatalf("post-error open: outcome %q, err %v", out, err)
	}

	if got := ing.Stats().Decisions(); got < 6 {
		t.Fatalf("decisions counter = %d, want ≥6", got)
	}
}

// TestIngressPipelining queues several requests into one flush and checks
// the responses come back complete and in order on the same connection.
func TestIngressPipelining(t *testing.T) {
	_, _, addr := newTestIngress(t, Config{}, IngressConfig{})
	fc, err := DialFast(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	const n = 5 // capacity for video 1 is 2: expect 2 accepts then 3 rejects
	for i := 0; i < n; i++ {
		fc.QueueOpen(1)
	}
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	accepted, rejected := 0, 0
	for i := 0; i < n; i++ {
		_, out, err := fc.ReadOpen()
		if err != nil {
			t.Fatalf("pipelined response %d: %v", i, err)
		}
		switch out {
		case OutcomeAccepted:
			accepted++
		case OutcomeRejected:
			rejected++
		}
		if rejected > 0 && out == OutcomeAccepted {
			t.Fatal("accept after reject: pipelined responses out of order")
		}
	}
	if accepted != 2 || rejected != 3 {
		t.Fatalf("accepted %d rejected %d, want 2 and 3", accepted, rejected)
	}
}

func TestIngressBatch(t *testing.T) {
	srv, ing, addr := newTestIngress(t, Config{}, IngressConfig{MaxBatch: 8})
	fc, err := DialFast(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	res, err := fc.OpenBatch([]int{1, 1, 1, 2, 2, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("batch returned %d results, want 6", len(res))
	}
	accepted := 0
	for i, r := range res {
		if r.Outcome == OutcomeAccepted {
			accepted++
			if r.Info.ID == 0 {
				t.Fatalf("result %d accepted without a session id", i)
			}
		}
	}
	if accepted != 4 { // 2 slots each on v1's and v2's holders
		t.Fatalf("batch accepted %d, want 4", accepted)
	}
	if got := ing.Stats().Decisions(); got != 6 {
		t.Fatalf("decisions counter = %d, want 6", got)
	}

	// Close every accepted session pipelined; bandwidth returns to zero.
	ncl := 0
	for _, r := range res {
		if r.Outcome == OutcomeAccepted {
			fc.QueueClose(r.Info.ID)
			ncl++
		}
	}
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ncl; i++ {
		ok, err := fc.ReadClose()
		if err != nil || !ok {
			t.Fatalf("pipelined close %d: %v %v", i, ok, err)
		}
	}
	waitUntil(t, 2*time.Second, "bandwidth drain", func() bool {
		return srv.Cluster().Used(0) == 0 && srv.Cluster().Used(1) == 0
	})

	// A batch beyond the cap is refused outright, settling no decisions.
	if _, err := fc.OpenBatch(make([]int, 9), nil); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized batch error = %v, want cap refusal", err)
	}
	if got := ing.Stats().Decisions(); got != 6 {
		t.Fatalf("decisions counter after refused batch = %d, want 6", got)
	}
}

// TestIngressFallback routes a non-hot-path request through the stitched-in
// net/http handler and checks an ordinary stdlib client can consume it.
func TestIngressFallback(t *testing.T) {
	_, ing, addr := newTestIngress(t, Config{}, IngressConfig{})
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "vod_http_requests_total") {
		t.Fatal("/metrics is missing the vod_http_* ingress families")
	}
	if ing.Stats().Fallbacks() != 1 {
		t.Fatalf("fallbacks counter = %d, want 1", ing.Stats().Fallbacks())
	}
}

// rawRoundTrip writes a raw request over a fresh connection and decodes the
// first response with the stdlib parser.
func rawRoundTrip(t *testing.T, addr, raw string) *http.Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(raw)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("reading response to %q: %v", raw, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestIngressProtocolErrors(t *testing.T) {
	_, _, addr := newTestIngress(t, Config{}, IngressConfig{MaxBody: 64})
	for _, tc := range []struct {
		name, raw  string
		wantStatus int
	}{
		{"malformed request line", "garbage\r\n\r\n", http.StatusBadRequest},
		{"chunked body refused", "POST /open HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", http.StatusNotImplemented},
		{"expect refused", "POST /open HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 11\r\n\r\n", http.StatusExpectationFailed},
		{"bad content-length", "POST /open HTTP/1.1\r\nContent-Length: ten\r\n\r\n", http.StatusBadRequest},
		{"oversized body", "POST /open HTTP/1.1\r\nContent-Length: 100\r\n\r\n", http.StatusRequestEntityTooLarge},
		{"body is not json", "POST /open HTTP/1.1\r\nContent-Length: 3\r\n\r\nhi!", http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := rawRoundTrip(t, addr, tc.raw)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
		})
	}
}

// TestIngressKeepAliveAfterBadBody: a malformed body fails that one request,
// not the connection — the next pipelined request on the same connection
// still settles.
func TestIngressKeepAliveAfterBadBody(t *testing.T) {
	_, _, addr := newTestIngress(t, Config{}, IngressConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	bad := `{"video":"x"}`
	good := `{"video":0}`
	raw := fmt.Sprintf("POST /open HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s", len(bad), bad) +
		fmt.Sprintf("POST /open HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s", len(good), good)
	if _, err := conn.Write([]byte(raw)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i, want := range []int{http.StatusBadRequest, http.StatusOK} {
		resp, err := http.ReadResponse(br, nil)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("response %d: status %d, want %d", i, resp.StatusCode, want)
		}
	}
}

// TestIngressChaosExactlyOnce is the satellite keep-alive/-race coverage:
// concurrent clients drive pipelined batches across every listener while a
// backend fails and recovers mid-burst. Every queued element settles exactly
// one decision, every accepted session is closed exactly once, and no
// bandwidth leaks on any backend.
func TestIngressChaosExactlyOnce(t *testing.T) {
	listeners := 1
	if reusePortAvailable {
		listeners = 2
	}
	srv, ing, addr := newTestIngress(t, Config{Shards: 2},
		IngressConfig{Listeners: listeners, MaxBatch: 64})

	const clients = 8
	const rounds = 30
	batch := []int{0, 1, 2, 0, 1, 2, 0, 1}
	sent := make([]int64, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			fc, err := DialFast(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer fc.Close()
			var open []int64
			var res []OpenResult
			for r := 0; r < rounds; r++ {
				res, err = fc.OpenBatch(batch, res[:0])
				if err != nil {
					t.Errorf("client %d round %d: %v", cl, r, err)
					return
				}
				sent[cl] += int64(len(batch))
				for _, or := range res {
					if or.Outcome == OutcomeAccepted {
						open = append(open, or.Info.ID)
					}
				}
				// Keep a rolling window open so evictions race live closes.
				for len(open) > 16 {
					if _, err := fc.CloseSession(open[0]); err != nil {
						t.Errorf("client %d close: %v", cl, err)
						return
					}
					open = open[1:]
				}
			}
			for _, id := range open {
				fc.QueueClose(id)
			}
			if err := fc.Flush(); err != nil {
				t.Errorf("client %d final flush: %v", cl, err)
				return
			}
			for range open {
				if _, err := fc.ReadClose(); err != nil {
					t.Errorf("client %d final close: %v", cl, err)
					return
				}
			}
		}(cl)
	}

	// Mid-burst fault: fail backend 0 (evicting and failing over its
	// sessions), let the burst continue degraded, then recover it.
	time.Sleep(5 * time.Millisecond)
	if _, _, err := srv.FailBackend(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := srv.RecoverBackend(0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	var total int64
	for _, n := range sent {
		total += n
	}
	if got := ing.Stats().Decisions(); got != total {
		t.Fatalf("decisions settled = %d, elements sent = %d: not exactly-once", got, total)
	}
	waitUntil(t, 2*time.Second, "zero leaked bandwidth", func() bool {
		return srv.Active() == 0 &&
			srv.Cluster().Used(0) == 0 && srv.Cluster().Used(1) == 0
	})
}

// TestAdmissionPathAllocs is the gated allocation guard over the full
// server-side hot path — decode → decide → encode, open then close — once
// buffers and pools are warm. The only allocation budget is the ≤2 the
// session bookkeeping is allowed; parse and encode must contribute zero.
func TestAdmissionPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	srv, err := New(testProblem(t, 0), testLayout(t), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ing, err := NewIngress(srv, IngressConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cs := &connState{}
	st := &ing.stats.ls[0]
	openBody := []byte(`{"video":0}`)
	var closeBody []byte
	roundTrip := func() {
		cs.out = cs.out[:0]
		ing.fastOpen(cs, st, openBody, false)
		id, _, ok := parseInt(cs.resp, len(`{"id":`))
		if !ok {
			t.Fatalf("open response %q has no canonical id", cs.resp)
		}
		closeBody = append(closeBody[:0], `{"id":`...)
		closeBody = strconv.AppendInt(closeBody, id, 10)
		closeBody = append(closeBody, '}')
		cs.out = cs.out[:0]
		ing.fastClose(cs, st, closeBody, false)
	}
	for i := 0; i < 100; i++ { // warm buffers, pools, and the shard mailboxes
		roundTrip()
	}
	allocs := testing.AllocsPerRun(500, roundTrip)
	if allocs > 2 {
		t.Fatalf("admission round trip allocates %.1f objects/op, budget is 2", allocs)
	}
}

func BenchmarkAdmissionPath(b *testing.B) {
	srv, err := New(testProblem(b, 0), testLayout(b), Config{Shards: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown()
	ing, err := NewIngress(srv, IngressConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cs := &connState{}
	st := &ing.stats.ls[0]
	openBody := []byte(`{"video":0}`)
	var closeBody []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.out = cs.out[:0]
		ing.fastOpen(cs, st, openBody, false)
		id, _, ok := parseInt(cs.resp, len(`{"id":`))
		if !ok {
			b.Fatalf("open response %q has no canonical id", cs.resp)
		}
		closeBody = append(closeBody[:0], `{"id":`...)
		closeBody = strconv.AppendInt(closeBody, id, 10)
		closeBody = append(closeBody, '}')
		cs.out = cs.out[:0]
		ing.fastClose(cs, st, closeBody, false)
	}
}

// FuzzIngressConn throws arbitrary bytes — truncated requests, oversized
// fields, pipelined garbage, and the occasional valid request the corpus
// seeds — at a live ingress connection and requires the daemon to survive:
// no panic, no hang, the connection always reaches EOF once the client
// stops writing.
func FuzzIngressConn(f *testing.F) {
	for _, s := range []string{
		"POST /open HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"video\":0}",
		"POST /open HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"video\":0}POST /close HTTP/1.1\r\nContent-Length: 8\r\n\r\n{\"id\":1}",
		"POST /open/batch HTTP/1.1\r\nContent-Length: 22\r\n\r\n{\"videos\":[0,1,2,0,1]}",
		"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
		"POST /open HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
		"POST /open HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
		"garbage\r\n\r\n",
		"POST /open HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"video\"",
		"\x00\x01\x02\r\n",
		strings.Repeat("A", 300) + "\r\n",
	} {
		f.Add([]byte(s))
	}
	// High compression: any valid open the fuzzer stumbles into expires in
	// milliseconds, so state never accumulates across executions.
	srv, err := New(testProblem(f, 0), testLayout(f), Config{Compress: 1e5})
	if err != nil {
		f.Fatal(err)
	}
	ing, err := NewIngress(srv, IngressConfig{MaxBody: 1 << 16})
	if err != nil {
		f.Fatal(err)
	}
	addr, err := ing.Start("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		ing.Close()
		srv.Shutdown()
	})
	target := addr.String()
	f.Fuzz(func(t *testing.T, b []byte) {
		conn, err := net.Dial("tcp", target)
		if err != nil {
			t.Skip("dial refused under load")
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		conn.Write(b)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite() // EOF tells the server this client is done
		}
		if _, err := io.Copy(io.Discard, conn); err != nil {
			// Read errors (reset on protocol violations) are fine; only a
			// deadline expiry would indicate a wedged connection.
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatalf("connection wedged after %q", b)
			}
		}
	})
}
