package serve

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vodcluster/internal/core"
)

// shardProblem: 8 videos on 8 servers, 4 Mb/s streams on 20 Mb/s links —
// 5 concurrent streams per backend — big enough that Config{Shards: 4}
// yields four two-server shards with every video's replica pair split
// across two different shards.
func shardProblem(t testing.TB) *core.Problem {
	t.Helper()
	cat := make(core.Catalog, 8)
	for i := range cat {
		cat[i] = core.Video{ID: i, Popularity: 1.0 / 8, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute}
	}
	p := &core.Problem{
		Catalog:            cat,
		NumServers:         8,
		StoragePerServer:   6 * cat[0].SizeBytes(), // slack for landed copies
		BandwidthPerServer: 20 * core.Mbps,
		ArrivalRate:        1.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// shardLayout places video v on servers v and (v+4) mod 8: with four shards
// of two servers each, the two replicas always live in different shards, so
// every failover and every least-loaded tie crosses a shard boundary.
func shardLayout(t testing.TB) *core.Layout {
	t.Helper()
	l := core.NewLayout(8)
	l.Replicas = make([]int, 8)
	for v := 0; v < 8; v++ {
		l.Replicas[v] = 2
		for _, s := range []int{v % 8, (v + 4) % 8} {
			if err := l.Place(v, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	return l
}

func newShardedServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	srv, err := New(shardProblem(t), shardLayout(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv
}

// assertNoLeaks fails when any backend still carries bandwidth or stream
// accounting after every session has been settled.
func assertNoLeaks(t *testing.T, srv *Server) {
	t.Helper()
	c := srv.Cluster()
	for b := 0; b < c.Servers(); b++ {
		if u := c.Used(b); u != 0 {
			t.Errorf("server %d leaks %d bit/s after settlement", b, u)
		}
		if a := c.Active(b); a != 0 {
			t.Errorf("server %d leaks %d active streams after settlement", b, a)
		}
	}
	if a := srv.Active(); a != 0 {
		t.Errorf("Active() = %d after settlement, want 0", a)
	}
}

func TestShardedConfigResolution(t *testing.T) {
	srv := newShardedServer(t, Config{Shards: 4})
	if srv.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", srv.Shards())
	}
	if srv.eng == nil {
		t.Fatal("Shards: 4 left the legacy engine in place")
	}
	if got := srv.PolicyName(); got != "least-loaded" {
		t.Fatalf("PolicyName() = %q, want least-loaded", got)
	}

	legacy := newShardedServer(t, Config{})
	if legacy.eng != nil || legacy.Shards() != 1 {
		t.Fatalf("default config must run the legacy single-shard engine (eng=%v shards=%d)",
			legacy.eng, legacy.Shards())
	}

	clamped := newShardedServer(t, Config{Shards: 100})
	if clamped.Shards() != 8 {
		t.Fatalf("Shards: 100 on 8 servers clamped to %d, want 8", clamped.Shards())
	}
}

func TestShardedRejectsUnsupportedConfigs(t *testing.T) {
	p := shardProblem(t)
	p.BackboneBandwidth = 100 * core.Mbps
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, shardLayout(t), Config{Shards: 4}); err == nil ||
		!strings.Contains(err.Error(), "backbone") {
		t.Fatalf("sharded + backbone redirection must be rejected, got %v", err)
	}
	if _, err := New(shardProblem(t), shardLayout(t), Config{Shards: 4, Policy: "no-such-policy"}); err == nil {
		t.Fatal("sharded dispatch accepted an unknown policy")
	}
}

// TestShardedAdmitSaturateAndClose: sharded admission fills video 0's two
// replicas to their link capacity (5 streams each), rejects the next
// request, and returns the accounting to zero when every session closes.
func TestShardedAdmitSaturateAndClose(t *testing.T) {
	srv := newShardedServer(t, Config{Shards: 4}) // real time: sessions outlive the test
	var ids []int64
	for {
		info, outcome, err := srv.Open(0)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != OutcomeAccepted {
			break
		}
		ids = append(ids, info.ID)
	}
	if len(ids) != 10 {
		t.Fatalf("admitted %d sessions of video 0, want 10 (2 replicas × 5 slots)", len(ids))
	}
	if got := srv.Active(); got != 10 {
		t.Fatalf("Active() = %d, want 10", got)
	}
	for _, id := range ids {
		if !srv.Close(id) {
			t.Fatalf("Close(%d) found no session", id)
		}
	}
	for _, id := range ids {
		if srv.Close(id) {
			t.Fatalf("Close(%d) settled twice", id)
		}
	}
	assertNoLeaks(t, srv)
}

// TestShardedExpiryAndDrain: with aggressive time compression the per-shard
// expiry heap settles sessions at their natural deadlines, and Drain returns
// once the registry is empty.
func TestShardedExpiryAndDrain(t *testing.T) {
	srv := newShardedServer(t, Config{Shards: 4, Compress: 1e5}) // 5400s video ≈ 54ms wall
	var ids []int64
	for v := 0; v < 8; v++ {
		info, outcome, err := srv.Open(v)
		if err != nil || outcome != OutcomeAccepted {
			t.Fatalf("open video %d: outcome %v err %v", v, outcome, err)
		}
		ids = append(ids, info.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		if srv.Close(id) {
			t.Fatalf("session %d still registered after its natural expiry", id)
		}
	}
	assertNoLeaks(t, srv)
}

// TestShardedAdmissionsRaceRebalance is the shard-boundary race drill the CI
// race job runs: admissions and closes race rebalancer LandReplica /
// EvictReplica calls targeting servers in every shard. The invariants: no
// operation deadlocks, a video never loses its last replica, pinned replicas
// survive, and after all sessions settle the accounting is exactly zero.
func TestShardedAdmissionsRaceRebalance(t *testing.T) {
	srv := newShardedServer(t, Config{Shards: 4})
	const workers = 8
	var stop atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var open []int64
			v := w % 8
			for !stop.Load() {
				info, outcome, err := srv.Open(v)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if outcome == OutcomeAccepted {
					open = append(open, info.ID)
				}
				if len(open) > 3 {
					srv.Close(open[0])
					open = open[1:]
				}
				v = (v + 1) % 8
			}
			for _, id := range open {
				srv.Close(id)
			}
		}(w)
	}

	// The rebalancer thread lands a third replica and evicts it again, on a
	// server two shards away from the video's birth replicas.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			v := i % 8
			b := (v + 2) % 8
			if err := srv.LandReplica(v, b); err != nil {
				continue // already holds it from a prior round: evict below
			}
			for srv.EvictReplica(v, b) == ErrReplicaPinned && !stop.Load() {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	c := srv.Cluster()
	for v := 0; v < 8; v++ {
		if n := len(c.Holders(v)); n < 2 {
			t.Errorf("video %d ended with %d replicas, want ≥ 2", v, n)
		}
	}
	assertNoLeaks(t, srv)
}

// TestShardedWholeShardDrain drains both servers of shard 0 while admissions
// race from other goroutines: every session on the drained shard must fail
// over to its cross-shard replica or be dropped, the drained servers must end
// with zero accounting, and new admissions must keep flowing to the live
// shards throughout.
func TestShardedWholeShardDrain(t *testing.T) {
	srv := newShardedServer(t, Config{Shards: 4})
	c := srv.Cluster()

	// Pin sessions onto shard 0's servers (0 and 1) by saturating their
	// videos: v0/v4 hold replicas on server 0, v1/v5 on server 1.
	var ids []int64
	for _, v := range []int{0, 4, 1, 5} {
		for i := 0; i < 3; i++ {
			info, outcome, err := srv.Open(v)
			if err != nil || outcome != OutcomeAccepted {
				t.Fatalf("open video %d: outcome %v err %v", v, outcome, err)
			}
			ids = append(ids, info.ID)
		}
	}
	before := srv.Active()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var open []int64
			for !stop.Load() {
				info, outcome, err := srv.Open((w + 2) % 8)
				if err != nil {
					t.Errorf("open during drain: %v", err)
					return
				}
				if outcome == OutcomeAccepted {
					open = append(open, info.ID)
				}
				if len(open) > 2 {
					srv.Close(open[0])
					open = open[1:]
				}
			}
			for _, id := range open {
				srv.Close(id)
			}
		}(w)
	}

	totalFailed, totalDropped := 0, 0
	for _, b := range []int{0, 1} {
		fo, dr, err := srv.DrainBackend(b)
		if err != nil {
			t.Fatalf("drain backend %d: %v", b, err)
		}
		totalFailed += fo
		totalDropped += dr
	}
	stop.Store(true)
	wg.Wait()

	if got := c.Used(0) + c.Used(1); got != 0 {
		t.Errorf("drained shard still carries %d bit/s", got)
	}
	if totalFailed+totalDropped == 0 {
		t.Error("draining a loaded shard moved nothing")
	}
	if got := srv.Active(); got != before-int64(totalDropped) {
		t.Errorf("Active() = %d after drain, want %d - %d dropped", got, before, totalDropped)
	}
	for _, id := range ids {
		srv.Close(id)
	}
	assertNoLeaks(t, srv)
}

// TestShardedCrossShardFailover crashes a backend while admissions race: the
// eviction scan collects sessions from every shard registry, fails them over
// across shard boundaries, and the survivors stay closable exactly once.
func TestShardedCrossShardFailover(t *testing.T) {
	srv := newShardedServer(t, Config{Shards: 4})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var open []int64
			for !stop.Load() {
				info, outcome, err := srv.Open(w % 8)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if outcome == OutcomeAccepted {
					open = append(open, info.ID)
				}
				if len(open) > 4 {
					if srv.Close(open[0]) {
						open = open[1:]
					} else {
						t.Error("Close lost a session the evict scan should have settled")
						return
					}
				}
			}
			for _, id := range open {
				srv.Close(id)
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	if _, _, err := srv.FailBackend(3); err != nil {
		t.Fatalf("fail backend 3: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := srv.RecoverBackend(3); err != nil {
		t.Fatalf("recover backend 3: %v", err)
	}
	if err := srv.RestoreBackend(3); err != nil {
		t.Fatalf("restore backend 3: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	assertNoLeaks(t, srv)
}

// TestShardedSnapshotVerify runs the sim: form of least-loaded — the
// snapshot-and-verify protocol — under racing admissions and rebalance
// landings. Version conflicts must only ever retry the decision: every
// admission settles exactly once and nothing oversubscribes.
func TestShardedSnapshotVerify(t *testing.T) {
	srv := newShardedServer(t, Config{Shards: 4, Policy: "sim:least-loaded"})
	if got := srv.PolicyName(); got != "sim:least-loaded" {
		t.Fatalf("PolicyName() = %q, want sim:least-loaded", got)
	}
	c := srv.Cluster()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var open []int64
			for !stop.Load() {
				info, outcome, err := srv.Open(w % 8)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if outcome == OutcomeAccepted {
					open = append(open, info.ID)
					if c.Used(info.Server) > c.Capacity(info.Server) {
						t.Errorf("server %d oversubscribed", info.Server)
					}
				}
				if len(open) > 3 {
					srv.Close(open[0])
					open = open[1:]
				}
			}
			for _, id := range open {
				srv.Close(id)
			}
		}(w)
	}
	// Concurrent directory churn bumps shard versions, forcing conflicts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			v, b := i%8, (i+3)%8
			if err := srv.LandReplica(v, b); err == nil {
				for srv.EvictReplica(v, b) == ErrReplicaPinned && !stop.Load() {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	t.Logf("snapshot conflicts retried: %d", srv.Metrics().SnapshotConflicts())
	assertNoLeaks(t, srv)
}

// TestShardedRepairLanding routes a repair-style landing through the shard
// owner: the first copy publishes, the duplicate is refused.
func TestShardedRepairLanding(t *testing.T) {
	srv := newShardedServer(t, Config{Shards: 4})
	if !srv.landRepair(0, 2) {
		t.Fatal("repair landing of a new replica refused")
	}
	if srv.landRepair(0, 2) {
		t.Fatal("duplicate repair landing accepted")
	}
	if !holds(srv.Cluster(), 0, 2) {
		t.Fatal("landed repair copy missing from the directory")
	}
}
