package serve

import (
	"fmt"

	"vodcluster/internal/obs"
)

// Rebalancer is the hook a live placement controller (internal/rebalance)
// implements. The serve layer defines the interface so the dependency points
// outward: nothing under serve imports the controller, and a daemon without
// one attached behaves bit-identically — the admission path pays one nil
// pointer load per request.
type Rebalancer interface {
	// Observe records one arriving request for the popularity estimator.
	// It must be cheap and non-blocking: it sits on the admission path.
	Observe(video int)
	// Trigger requests an immediate rebalance round (coalesced when one is
	// already pending); it reports whether the controller accepted the kick.
	Trigger() bool
	// Status returns a snapshot of the controller's state for GET /rebalance.
	Status() RebalanceStatus
	// Stop terminates the control loop and waits for in-flight copies.
	Stop()
}

// RebalanceAction is one journaled rebalancer decision, mirroring
// RepairAction so the two journals read alike.
type RebalanceAction struct {
	TimeNS int64  `json:"ts_ns"` // tracer-epoch nanoseconds
	Action string `json:"action"`
	Video  int    `json:"video"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Detail string `json:"detail,omitempty"`
}

// RebalanceStatus is the GET /rebalance snapshot.
type RebalanceStatus struct {
	Enabled         bool              `json:"enabled"`
	LayoutVersion   int64             `json:"layout_version"`
	Rounds          int64             `json:"rounds"`
	Migrations      int64             `json:"migrations"`
	Evictions       int64             `json:"evictions"`
	Deferred        int64             `json:"deferred"`
	Skipped         int64             `json:"skipped"`
	Inflight        int               `json:"inflight"`
	PendingMoves    int               `json:"pending_moves"`
	PeakCopyRateBps float64           `json:"peak_copy_rate_bps"`
	Journal         []RebalanceAction `json:"journal"`
}

// AttachRebalancer wires a placement controller into the daemon: every
// settled admission request is observed, and Shutdown stops the loop.
func (s *Server) AttachRebalancer(r Rebalancer) { s.reb.Store(&r) }

// Rebalancer returns the attached placement controller, or nil.
func (s *Server) Rebalancer() Rebalancer {
	if rp := s.reb.Load(); rp != nil {
		return *rp
	}
	return nil
}

// observeDemand feeds one validated request into the attached rebalancer's
// popularity estimator; a no-op (one atomic load) when none is attached.
func (s *Server) observeDemand(v int) {
	if rp := s.reb.Load(); rp != nil {
		(*rp).Observe(v)
	}
}

// LandReplica publishes a migrated replica of video v on backend b: the
// rebalancer's counterpart of the repairer's settle path. The holder list is
// republished atomically, the copy is mirrored into a sim-parity policy when
// one is active (divergence keeps the live directory authoritative, matching
// the repairer), and vod_migrations_total counts it.
func (s *Server) LandReplica(v, b int) error {
	if v < 0 || v >= s.c.Videos() {
		return ErrNoReplica
	}
	if b < 0 || b >= s.c.Servers() {
		return &BackendRangeError{Backend: b, Servers: s.c.Servers()}
	}
	if s.eng != nil {
		// Sharded dispatch: the landing routes through b's shard owner so it
		// serializes with that shard's admission stream.
		return s.eng.landReplica(v, b)
	}
	if s.c.State(b) == BackendDown {
		return ErrBackendDown
	}
	if !s.c.AddHolder(v, b) {
		return fmt.Errorf("serve: backend %d already holds video %d", b, v)
	}
	if m, ok := s.pol.(interface{ AddReplica(v, s int) error }); ok {
		if err := m.AddReplica(v, b); err != nil {
			s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindRepair,
				Video: v, Server: b, Detail: "migration mirror error: " + err.Error()})
		}
	}
	s.met.Migrated()
	s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindRepair,
		Video: v, Server: b, Detail: "replica migrated in"})
	return nil
}

// PinnedSessions counts live sessions pinned to video v's replica on backend
// b: sessions streaming v from b's outgoing link plus redirected sessions of
// v sourced from b's copy. A pinned replica must not be evicted.
func (s *Server) PinnedSessions(v, b int) int {
	if s.eng != nil {
		return s.eng.pinnedSessions(v, b)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sess := range s.sessions {
		if sess.video == v && (sess.grant.Server == b || sess.grant.Source == b) {
			n++
		}
	}
	return n
}

// EvictReplica removes video v's replica from backend b when it is safe: the
// copy must exist, must not be the video's last live copy, and must have no
// pinned sessions. The pinned check runs again after the holder list shrinks
// — a session admitted between check and removal rolls the eviction back, so
// an admission racing the eviction never loses its replica. On success the
// eviction is mirrored into a sim-parity policy when one is active.
func (s *Server) EvictReplica(v, b int) error {
	if v < 0 || v >= s.c.Videos() {
		return ErrNoReplica
	}
	if b < 0 || b >= s.c.Servers() {
		return &BackendRangeError{Backend: b, Servers: s.c.Servers()}
	}
	if s.eng != nil {
		// Sharded dispatch: the eviction runs on b's shard owner, exclusive
		// with every admission that could pin the replica on this shard.
		return s.eng.evictReplica(v, b)
	}
	if !holds(s.c, v, b) {
		return ErrNoReplica
	}
	// At least one other holder must remain readable or the video would
	// become unservable (constraint Eq. 7 on the live directory).
	live := 0
	for _, h := range s.c.Holders(v) {
		if h != b && s.c.State(h) != BackendDown {
			live++
		}
	}
	if live == 0 {
		return ErrLastReplica
	}
	if s.PinnedSessions(v, b) > 0 {
		return ErrReplicaPinned
	}
	if !s.c.RemoveHolder(v, b) {
		return ErrLastReplica // lost a race that shrank the list to one
	}
	// Re-check under the post-removal directory: an admission that pinned the
	// replica between our check and the removal saw the old holder list, so
	// put the copy back and let the caller retry after the session drains.
	if s.PinnedSessions(v, b) > 0 {
		s.c.AddHolder(v, b)
		return ErrReplicaPinned
	}
	if m, ok := s.pol.(interface{ RemoveReplica(v, s int) error }); ok {
		if err := m.RemoveReplica(v, b); err != nil {
			// The locked mirror disagrees (e.g. a sim-side stream still pins
			// the copy); restore the live directory so the two stay in step.
			s.c.AddHolder(v, b)
			return err
		}
	}
	s.met.Evicted()
	s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindRepair,
		Video: v, Server: b, Detail: "replica evicted"})
	return nil
}
