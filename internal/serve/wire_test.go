package serve

import (
	"bytes"
	"encoding/json"
	"testing"
)

// refOpen is the pure-stdlib reference decoder the fast parser must agree
// with byte for byte.
func refOpen(b []byte) (int, bool) {
	var req struct {
		Video *int `json:"video"`
	}
	if json.Unmarshal(b, &req) != nil || req.Video == nil {
		return 0, false
	}
	return *req.Video, true
}

func refBatch(b []byte) ([]int, bool) {
	var req struct {
		Videos *[]int `json:"videos"`
	}
	if json.Unmarshal(b, &req) != nil || req.Videos == nil {
		return nil, false
	}
	return *req.Videos, true
}

func refClose(b []byte) (int64, bool) {
	var req struct {
		ID *int64 `json:"id"`
	}
	if json.Unmarshal(b, &req) != nil || req.ID == nil {
		return 0, false
	}
	return *req.ID, true
}

func TestParseOpenBody(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    int
		wantErr bool
	}{
		{`{"video":0}`, 0, false},
		{`{"video":42}`, 42, false},
		{`{"video":-7}`, -7, false},
		{`{"video": 42}`, 42, false},      // whitespace: stdlib fallback
		{`{ "video" : 3 }`, 3, false},     // more whitespace
		{`{"video":42,"x":1}`, 42, false}, // extra key: fallback accepts
		{`{"video":007}`, 0, true},        // leading zeros are not JSON
		{`{"video":4.5}`, 0, true},        // float into int
		{`{"video":1e2}`, 0, true},        // exponent into int
		{`{"video":"3"}`, 0, true},
		{`{}`, 0, true},
		{`{"vid":3}`, 0, true},
		{``, 0, true},
		{`{"video":}`, 0, true},
		{`{"video":3`, 0, true},
		{`{"video":99999999999999999999}`, 0, true}, // overflows int64
	} {
		got, err := parseOpenBody([]byte(tc.in))
		if (err != nil) != tc.wantErr {
			t.Errorf("parseOpenBody(%q): err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("parseOpenBody(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestParseBatchBody(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{`{"videos":[]}`, []int{}, false},
		{`{"videos":[1]}`, []int{1}, false},
		{`{"videos":[3,1,4,1,5]}`, []int{3, 1, 4, 1, 5}, false},
		{`{"videos":[-2,0]}`, []int{-2, 0}, false},
		{`{"videos": [1, 2]}`, []int{1, 2}, false}, // whitespace: fallback
		{`{"videos":[1,]}`, nil, true},             // trailing comma
		{`{"videos":[1.5]}`, nil, true},
		{`{"videos":["a"]}`, nil, true},
		{`{"videos":1}`, nil, true},
		{`{}`, nil, true},
		{`{"videos":[01]}`, nil, true}, // leading zero
	} {
		got, err := parseBatchBody([]byte(tc.in), nil)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseBatchBody(%q): err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseBatchBody(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseBatchBody(%q)[%d] = %d, want %d", tc.in, i, got[i], tc.want[i])
			}
		}
	}

	// The destination is reused, not reallocated, when it has capacity.
	dst := make([]int, 0, 8)
	out, err := parseBatchBody([]byte(`{"videos":[9,8,7]}`), dst)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[:1][0] {
		t.Error("canonical parse reallocated a destination with spare capacity")
	}
}

func TestParseCloseBody(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{`{"id":1}`, 1, false},
		{`{"id":9223372036854775807}`, 9223372036854775807, false},
		{`{"id": 12}`, 12, false}, // whitespace: fallback
		{`{"id":"1"}`, 0, true},
		{`{}`, 0, true},
		{`{"id":1.0}`, 0, true},
	} {
		got, err := parseCloseBody([]byte(tc.in))
		if (err != nil) != tc.wantErr {
			t.Errorf("parseCloseBody(%q): err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("parseCloseBody(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestAppendersMatchEncodingJSON pins the wire contract of the hand-rolled
// encoders: the bytes they emit are exactly what encoding/json produces for
// the same values, so fast and mux routes are interchangeable on the wire.
func TestAppendersMatchEncodingJSON(t *testing.T) {
	infos := []SessionInfo{
		{},
		{ID: 42, Video: 3, Server: 1, Source: 0, RateBps: 4_000_000, Redirected: true, ExpiresInS: 5400},
		{ID: -1, Video: 0, Server: 0, Source: 2, RateBps: 1, Redirected: false, ExpiresInS: 0.125},
	}
	for _, info := range infos {
		want, err := json.Marshal(info)
		if err != nil {
			t.Fatal(err)
		}
		got := appendSessionInfo(nil, info)
		if !bytes.Equal(got, want) {
			t.Errorf("appendSessionInfo(%+v) = %s, want %s", info, got, want)
		}
	}

	for _, tc := range []struct {
		out Outcome
		msg string
	}{
		{OutcomeRejected, ""},
		{OutcomeDraining, ""},
		{"", "no such video"},
		{OutcomeRejected, `quote " backslash \ newline` + "\n" + "control \x01 done"},
	} {
		got := appendOutcome(nil, tc.out, tc.msg)
		var e errorBody
		if err := json.Unmarshal(got, &e); err != nil {
			t.Fatalf("appendOutcome(%q, %q) emitted invalid JSON %s: %v", tc.out, tc.msg, got, err)
		}
		if e.Outcome != tc.out || e.Error != tc.msg {
			t.Errorf("appendOutcome(%q, %q) round-tripped to (%q, %q)", tc.out, tc.msg, e.Outcome, e.Error)
		}
	}
}

// FuzzWireParse is the differential target: on every input, each fast parser
// must agree with a pure encoding/json reference — same accept/reject
// verdict, same value — and never panic. The corpus seeds both canonical
// shapes (exercising the hand-rolled scanner) and the deviations that must
// fall back to the stdlib.
func FuzzWireParse(f *testing.F) {
	for _, s := range []string{
		`{"video":0}`, `{"video":42}`, `{"video":-7}`, `{"video": 42}`,
		`{"video":007}`, `{"video":1e3}`, `{"video":4.5}`, `{"video":99999999999999999999}`,
		`{"videos":[]}`, `{"videos":[1]}`, `{"videos":[3,1,4]}`, `{"videos":[1,]}`,
		`{"videos":[01]}`, `{"videos": [1]}`, `{"videos":[1,2,`,
		`{"id":1}`, `{"id":9223372036854775807}`, `{"id":-9223372036854775808}`,
		``, `{`, `}`, `null`, `[]`, `"video"`, "\x00\xff", `{"video":`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		gotV, errV := parseOpenBody(b)
		refV, okV := refOpen(b)
		if (errV == nil) != okV {
			t.Fatalf("parseOpenBody(%q): err=%v but stdlib ok=%v", b, errV, okV)
		}
		if errV == nil && gotV != refV {
			t.Fatalf("parseOpenBody(%q) = %d, stdlib = %d", b, gotV, refV)
		}

		gotB, errB := parseBatchBody(b, nil)
		refB, okB := refBatch(b)
		if (errB == nil) != okB {
			t.Fatalf("parseBatchBody(%q): err=%v but stdlib ok=%v", b, errB, okB)
		}
		if errB == nil {
			if len(gotB) != len(refB) {
				t.Fatalf("parseBatchBody(%q) = %v, stdlib = %v", b, gotB, refB)
			}
			for i := range gotB {
				if gotB[i] != refB[i] {
					t.Fatalf("parseBatchBody(%q) = %v, stdlib = %v", b, gotB, refB)
				}
			}
		}

		gotC, errC := parseCloseBody(b)
		refC, okC := refClose(b)
		if (errC == nil) != okC {
			t.Fatalf("parseCloseBody(%q): err=%v but stdlib ok=%v", b, errC, okC)
		}
		if errC == nil && gotC != refC {
			t.Fatalf("parseCloseBody(%q) = %d, stdlib = %d", b, gotC, refC)
		}
	})
}
