// Package serve is the live serving layer: it turns the planner/simulator
// stack into a running cluster dispatch daemon. A Server loads a
// problem/layout pair (from the replicate/place pipeline or a persisted
// plan), tracks per-backend outgoing bandwidth with lock-free atomic
// accounting (Cluster), and admits, rejects, or redirects session requests
// through an admission Policy — either the lock-free concurrent policies or
// the locked sim-parity adapters over the exact cluster.Scheduler/redirect
// implementations the simulator uses.
//
// Every admitted session runs as its own goroutine holding a
// context.WithTimeout for the (time-compressed) video duration; ending the
// context — natural expiry, client cancel, backend drain without a failover
// target, or daemon shutdown — releases the session's bandwidth reservation
// exactly once. Backend drain marks a server ineligible for new placements
// and fails its active sessions over to surviving replica holders
// (resilience semantics); daemon drain stops admissions and waits for the
// active sessions to run out.
//
// The paper connection: this is §5's dispatch model made operational —
// admission control on per-server outgoing bandwidth, replica choice by the
// configured scheduling policy, rejection when every replica holder is
// saturated — so measured live rejection rates can be cross-validated
// against sim.Run on the same request trace (see cmd/vodload -validate).
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vodcluster/internal/core"
	"vodcluster/internal/faults"
	"vodcluster/internal/obs"
)

// Outcome classifies one admission decision.
type Outcome string

// Admission outcomes reported by Server.Open and the HTTP API.
const (
	OutcomeAccepted Outcome = "accepted"
	OutcomeRejected Outcome = "rejected"
	OutcomeDraining Outcome = "draining"
)

// SessionInfo is the public record of an admitted session.
type SessionInfo struct {
	ID         int64   `json:"id"`
	Video      int     `json:"video"`
	Server     int     `json:"server"`
	Source     int     `json:"source"`
	RateBps    int64   `json:"rate_bps"`
	Redirected bool    `json:"redirected"`
	ExpiresInS float64 `json:"expires_in_s"`
}

// session is the server-side record: the live grant plus the lifetime
// handle of whichever engine owns it — the cancel handle of the session
// goroutine's context on the single-shard path, the expiry deadline the
// owning shard's heap fires on under sharded dispatch.
type session struct {
	id       int64
	video    int
	grant    Grant
	cancel   context.CancelFunc
	deadline time.Time
}

// Config tunes a Server beyond the problem/layout pair.
type Config struct {
	// Policy names the admission policy (see PolicyNames); empty means
	// least-loaded.
	Policy string
	// Compress divides every session's wall-clock duration: at Compress C a
	// D-second video holds its bandwidth for D/C seconds of real time, so a
	// recorded trace replayed C× faster reproduces the simulator's
	// occupancy process in C× less wall time. 0 means 1 (real time).
	Compress float64
	// MaxSessionWall caps any single session's wall-clock lifetime
	// regardless of compression; 0 means no cap beyond the video duration.
	MaxSessionWall time.Duration
	// Tracer, when non-nil, records every session lifecycle transition
	// (arrive → admit/reject → end/tear/failover) into its ring buffer and
	// exposes GET /debug/trace on the HTTP API. Nil disables tracing at the
	// cost of one branch per event.
	Tracer *obs.Tracer
	// AdmitDelay inserts an artificial stall into every admission decision
	// before the policy runs. It exists for the perf-regression test
	// harness — a knob that provably slows the admit path so the vodperf
	// gate can be shown to catch it — and for latency chaos experiments.
	// Production configurations leave it zero.
	AdmitDelay time.Duration
	// Retry enables admission retry-with-backoff: a capacity-rejected
	// request waits (exponential backoff with jitter, in compressed virtual
	// time) and retries until admitted or its patience runs out, instead of
	// failing immediately. Nil disables retry; see RetryConfig for the
	// tunables, whose defaults mirror the simulator's resilience policy.
	Retry *RetryConfig
	// Shards partitions the cluster's servers into that many admission
	// shards, each owned by one dispatcher goroutine draining its queue in
	// batches and committing admissions onto its own servers (DESIGN.md
	// §15). 0 or 1 keeps the original single-shard engine — the
	// bit-identical code path the live-vs-sim smoke cross-checks validate.
	// Values above the server count are clamped to it.
	Shards int
}

// Server is the live dispatch engine. Create with New; all exported methods
// are safe for concurrent use.
type Server struct {
	c          *Cluster
	pol        Policy
	met        *Metrics
	tracer     *obs.Tracer
	admitDelay time.Duration
	compress   float64
	maxWall    time.Duration

	baseCtx  context.Context
	baseStop context.CancelFunc

	mu       sync.Mutex
	sessions map[int64]*session
	nextID   atomic.Int64
	activeN  atomic.Int64 // mirrors len(sessions) for lock-free depth reads
	draining atomic.Bool

	retry *retrier // nil unless Config.Retry enabled admission retry
	eng   *engine  // nil unless Config.Shards enabled sharded dispatch

	hc  atomic.Pointer[HealthChecker] // attached health-check loop, if any
	rep atomic.Pointer[Repairer]      // attached re-replication repairer, if any
	reb atomic.Pointer[Rebalancer]    // attached placement controller, if any
	inj atomic.Pointer[faults.Injector]

	wg sync.WaitGroup // live session goroutines
}

// New builds a Server for a validated problem/layout pair.
func New(p *core.Problem, layout *core.Layout, cfg Config) (*Server, error) {
	c, err := NewCluster(p, layout)
	if err != nil {
		return nil, err
	}
	var pol Policy
	if cfg.Shards <= 1 {
		// The sharded engine replaces the Policy object wholesale (rankers
		// plus owner-side commits), so it is only constructed on the
		// single-shard path.
		pol, err = NewPolicy(cfg.Policy, c)
		if err != nil {
			return nil, err
		}
	}
	compress := cfg.Compress
	if compress == 0 {
		compress = 1
	}
	if compress < 0 {
		return nil, fmt.Errorf("serve: compression factor must be positive, got %g", compress)
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		c:          c,
		pol:        pol,
		met:        NewMetrics(streamCeiling(p)),
		tracer:     cfg.Tracer,
		admitDelay: cfg.AdmitDelay,
		compress:   compress,
		maxWall:    cfg.MaxSessionWall,
		baseCtx:    ctx,
		baseStop:   stop,
		sessions:   make(map[int64]*session),
	}
	if cfg.Shards > 1 {
		eng, err := newEngine(s, cfg.Shards, cfg.Policy)
		if err != nil {
			stop()
			return nil, err
		}
		s.eng = eng
	}
	if cfg.Retry != nil {
		r, err := newRetrier(s, *cfg.Retry)
		if err != nil {
			stop()
			s.wg.Wait()
			if s.eng != nil {
				s.eng.wait()
			}
			return nil, err
		}
		s.retry = r
	}
	return s, nil
}

// streamCeiling bounds how many sessions the cluster can ever hold
// concurrently — total outgoing capacity over the cheapest encoding rate —
// which sizes the queue-depth histogram so its range covers exactly the
// reachable depths.
func streamCeiling(p *core.Problem) int {
	total := 0.0
	for s := 0; s < p.N(); s++ {
		total += p.BandwidthOf(s)
	}
	minRate := 0.0
	for _, v := range p.Catalog {
		if minRate == 0 || (v.BitRate > 0 && v.BitRate < minRate) {
			minRate = v.BitRate
		}
	}
	if minRate <= 0 {
		return 1024
	}
	n := int(total / minRate)
	if n < 16 {
		n = 16
	}
	return n
}

// Cluster exposes the concurrent accounting state (for metrics and tests).
func (s *Server) Cluster() *Cluster { return s.c }

// Metrics exposes the instrument panel.
func (s *Server) Metrics() *Metrics { return s.met }

// Tracer exposes the session-lifecycle tracer; nil when tracing is off.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// PolicyName reports the active admission policy.
func (s *Server) PolicyName() string {
	if s.eng != nil {
		return s.eng.name
	}
	return s.pol.Name()
}

// Compress reports the time-compression factor sessions run under.
func (s *Server) Compress() float64 { return s.compress }

// Active returns the number of live sessions.
func (s *Server) Active() int64 {
	if s.eng != nil {
		return s.activeN.Load()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.sessions))
}

// Draining reports whether the daemon refuses new sessions.
func (s *Server) Draining() bool { return s.draining.Load() }

// wallDuration returns the compressed wall-clock lifetime of video v.
func (s *Server) wallDuration(v int) time.Duration {
	d := time.Duration(s.c.Problem().Catalog[v].Duration / s.compress * float64(time.Second))
	if s.maxWall > 0 && d > s.maxWall {
		d = s.maxWall
	}
	return d
}

// Open runs one admission decision for video v. On acceptance the session
// goroutine is already running and will release the reservation when the
// session's context ends. The returned outcome distinguishes a capacity
// rejection from a drain refusal.
func (s *Server) Open(v int) (SessionInfo, Outcome, error) {
	arriveNS := s.tracer.NowNS()
	s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindArrive, Video: v})
	if v < 0 || v >= s.c.Videos() {
		s.met.BadVideo()
		return SessionInfo{}, OutcomeRejected, fmt.Errorf("serve: video %d outside catalog of %d", v, s.c.Videos())
	}
	s.observeDemand(v)
	info, outcome := s.attempt(v, arriveNS, true)
	return info, outcome, nil
}

// attempt runs one admission attempt against the policy. settleReject
// controls whether a capacity rejection is recorded as a settled decision:
// the retry path passes false for attempts it may later convert into an
// acceptance and records the one final outcome itself, so retries never
// inflate the request counters. Accepted and draining outcomes are always
// final and always recorded here.
func (s *Server) attempt(v int, arriveNS int64, settleReject bool) (SessionInfo, Outcome) {
	if s.eng != nil {
		return s.eng.attempt(v, arriveNS, settleReject)
	}
	start := time.Now()
	if s.admitDelay > 0 {
		time.Sleep(s.admitDelay)
	}
	s.met.ObserveQueueDepth(float64(s.activeN.Load()))
	if s.draining.Load() {
		s.met.Decision(false, false, true, time.Since(start))
		s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindDrain, Video: v,
			DurNS: s.tracer.NowNS() - arriveNS})
		return SessionInfo{}, OutcomeDraining
	}
	g, ok := s.pol.Admit(v)
	if !ok {
		if settleReject {
			s.met.Decision(false, false, false, time.Since(start))
			s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindReject, Video: v,
				DurNS: s.tracer.NowNS() - arriveNS})
		}
		return SessionInfo{}, OutcomeRejected
	}
	wall := s.wallDuration(v)
	ctx, cancel := context.WithTimeout(s.baseCtx, wall)
	sess := &session{id: s.nextID.Add(1), video: v, grant: g, cancel: cancel}
	s.mu.Lock()
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.activeN.Add(1)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-ctx.Done()
		cancel()
		s.finish(sess, ctx.Err() == context.DeadlineExceeded)
	}()

	s.met.Decision(true, g.Redirected, false, time.Since(start))
	s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindAdmit,
		Session: sess.id, Video: v, Server: g.Server,
		DurNS: s.tracer.NowNS() - arriveNS})
	return SessionInfo{
		ID:         sess.id,
		Video:      v,
		Server:     g.Server,
		Source:     g.Source,
		RateBps:    g.Rate,
		Redirected: g.Redirected,
		ExpiresInS: wall.Seconds(),
	}, OutcomeAccepted
}

// finish settles one ended session exactly once: it removes the registry
// entry (if a drain or close has not already done so) and returns the
// current grant's resources. natural reports whether the context ended by
// its own deadline (a completed playback) rather than a cancel.
func (s *Server) finish(sess *session, natural bool) {
	s.mu.Lock()
	cur, ok := s.sessions[sess.id]
	if ok {
		delete(s.sessions, sess.id)
	}
	s.mu.Unlock()
	if !ok {
		return // dropped by a drain; resources already settled there
	}
	s.activeN.Add(-1)
	s.pol.Release(cur.grant)
	if natural {
		s.met.Completed()
		s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindEnd,
			Session: sess.id, Video: sess.video, Server: cur.grant.Server})
	} else {
		s.met.Canceled()
		s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindTear,
			Session: sess.id, Video: sess.video, Server: cur.grant.Server, Detail: "canceled"})
	}
}

// Close ends session id early (the client hung up). It reports whether the
// session was live.
func (s *Server) Close(id int64) bool {
	if s.eng != nil {
		return s.eng.close(id)
	}
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	sess.cancel() // the session goroutine settles it via finish
	return true
}

// landRepair publishes a repaired replica of video v on backend dst; the
// sharded engine routes the landing through dst's shard owner so it
// serializes with that shard's admission stream. It reports whether the copy
// became a new replica (false: dst already held one).
func (s *Server) landRepair(v, dst int) bool {
	if s.eng != nil {
		return s.eng.landRepair(v, dst)
	}
	return s.c.AddHolder(v, dst)
}

// claimState moves backend b into target (BackendDraining or BackendDown)
// from whatever state it is in, returning the typed error for states the
// transition is not allowed from. The CAS loop makes exactly one of several
// racing claimants win, so every drain or crash is settled exactly once.
func (s *Server) claimState(b int, target BackendState) error {
	for {
		st := s.c.State(b)
		if st == BackendDown {
			return ErrBackendDown
		}
		if st == BackendDraining && target == BackendDraining {
			return ErrBackendDraining
		}
		if s.c.CASState(b, st, target) {
			return nil
		}
	}
}

// DrainBackend takes backend b out of service cooperatively: no new
// placements land on it and every session it was serving (or sourcing, for
// redirected streams) is failed over to a surviving replica holder where
// capacity allows. Sessions with no failover target are dropped. It returns
// the failed-over and dropped counts; the error is a *BackendRangeError for
// an index outside the cluster, ErrBackendDraining when the backend is
// already draining, or ErrBackendDown when it has crashed.
func (s *Server) DrainBackend(b int) (failedOver, dropped int, err error) {
	if b < 0 || b >= s.c.Servers() {
		return 0, 0, &BackendRangeError{Backend: b, Servers: s.c.Servers()}
	}
	if err := s.claimState(b, BackendDraining); err != nil {
		return 0, 0, err
	}
	if d, ok := s.pol.(interface{ DrainBackend(int) }); ok {
		d.DrainBackend(b) // sim-parity policies mirror the drain into their state
	}
	failedOver, dropped = s.evictSessions(b, "drained")
	return failedOver, dropped, nil
}

// FailBackend crashes backend b: it goes BackendDown immediately (unlike the
// cooperative drain there is no grace — its replicas become unreachable and
// count against live replication, which is what wakes the repairer), and
// every session it carried is failed over or torn. Concurrent FailBackend
// calls settle the crash exactly once: the losers get ErrBackendDown.
func (s *Server) FailBackend(b int) (failedOver, dropped int, err error) {
	if b < 0 || b >= s.c.Servers() {
		return 0, 0, &BackendRangeError{Backend: b, Servers: s.c.Servers()}
	}
	if err := s.claimState(b, BackendDown); err != nil {
		return 0, 0, err
	}
	s.met.BackendFailed()
	s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindHealth,
		Server: b, Detail: "down"})
	if d, ok := s.pol.(interface{ FailBackend(int) }); ok {
		d.FailBackend(b) // sim-parity policies mirror the crash into their state
	}
	failedOver, dropped = s.evictSessions(b, "failed")
	if r := s.rep.Load(); r != nil {
		r.Kick() // scan for under-replicated videos now, not at the next tick
	}
	return failedOver, dropped, nil
}

// evictSessions settles every session that ineligible backend b was serving
// or sourcing: failover onto a surviving replica holder where capacity
// allows, teardown otherwise. The registry lock makes each settlement
// exclusive with the session's own finish path, so every affected session's
// bandwidth is released exactly once however the eviction races against
// natural completions, client closes, or other backends' evictions. The
// snapshot-and-settle loop repeats until no session references b, catching
// sessions another backend's eviction concurrently failed over *onto* b
// after its reservation but before our snapshot.
func (s *Server) evictSessions(b int, cause string) (failedOver, dropped int) {
	if s.eng != nil {
		return s.eng.evictSessions(b, cause)
	}
	for {
		s.mu.Lock()
		var affected []*session
		for _, sess := range s.sessions {
			if sess.grant.Server == b || sess.grant.Source == b {
				affected = append(affected, sess)
			}
		}
		s.mu.Unlock()
		if len(affected) == 0 {
			return failedOver, dropped
		}
		for _, sess := range affected {
			ng, ok := s.pol.Failover(sess.video, b)
			s.mu.Lock()
			cur, live := s.sessions[sess.id]
			if !live || (cur.grant.Server != b && cur.grant.Source != b) {
				// Ended or moved concurrently; undo our failover reservation.
				s.mu.Unlock()
				if ok {
					s.pol.Release(ng)
				}
				continue
			}
			// The failover target can crash between our reservation and this
			// commit, and its own eviction scan may already have run and
			// missed us — so never commit a grant onto a Down server; drop
			// the session instead. (The state read happens under the same
			// lock the crashed backend's eviction scan uses, so one of the
			// two always sees the other.)
			targetDown := ok && s.c.State(ng.Server) == BackendDown
			old := cur.grant
			if ok && !targetDown {
				cur.grant = ng
			} else {
				delete(s.sessions, sess.id)
			}
			s.mu.Unlock()
			s.pol.Release(old)
			if ok && !targetDown {
				s.met.FailedOver()
				s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindFailover,
					Session: sess.id, Video: sess.video, Server: ng.Server,
					Detail: "from server " + fmt.Sprint(b)})
				failedOver++
				continue
			}
			if targetDown {
				s.pol.Release(ng)
			}
			s.activeN.Add(-1)
			sess.cancel()
			s.met.Dropped()
			s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindTear,
				Session: sess.id, Video: sess.video, Server: b, Detail: cause})
			dropped++
		}
	}
}

// RestoreBackend returns a drained backend to service. A crashed (Down)
// backend does not restore this way — recovery from a crash goes through
// RecoverBackend so re-replicated state is handled deliberately.
func (s *Server) RestoreBackend(b int) error {
	if b < 0 || b >= s.c.Servers() {
		return &BackendRangeError{Backend: b, Servers: s.c.Servers()}
	}
	if s.c.State(b) == BackendDown {
		return ErrBackendDown
	}
	s.c.SetState(b, BackendUp)
	if d, ok := s.pol.(interface{ RestoreBackend(int) }); ok {
		d.RestoreBackend(b)
	}
	return nil
}

// RecoverBackend brings a crashed backend back: Down → Recovering when a
// health checker is attached (it promotes the backend to Up after enough
// clean probes — flap damping), Down → Up directly otherwise. A backend
// that is not Down returns ErrBackendNotDown.
func (s *Server) RecoverBackend(b int) error {
	if b < 0 || b >= s.c.Servers() {
		return &BackendRangeError{Backend: b, Servers: s.c.Servers()}
	}
	target := BackendUp
	if s.hc.Load() != nil {
		target = BackendRecovering
	}
	if !s.c.CASState(b, BackendDown, target) {
		return ErrBackendNotDown
	}
	s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindHealth,
		Server: b, Detail: target.String()})
	if d, ok := s.pol.(interface{ RecoverBackend(int) }); ok {
		d.RecoverBackend(b)
	}
	return nil
}

// Drain gracefully stops the daemon: new sessions are refused with the
// draining outcome, and Drain waits until every active session ends or ctx
// expires, whichever is first. On ctx expiry the remaining sessions are
// force-canceled so their reservations still release before return.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if s.eng != nil {
		return s.eng.drain(ctx)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseStop() // cancel every session context
		<-done
		return fmt.Errorf("serve: drain timed out; %w", ctx.Err())
	}
}

// Shutdown force-cancels every session, stops any attached health-check and
// repair loops, and waits for their goroutines.
func (s *Server) Shutdown() {
	s.draining.Store(true)
	if h := s.hc.Load(); h != nil {
		h.Stop()
	}
	if r := s.rep.Load(); r != nil {
		r.Stop()
	}
	if rp := s.reb.Load(); rp != nil {
		(*rp).Stop()
	}
	s.baseStop()
	s.wg.Wait()
	if s.eng != nil {
		s.eng.wait()
	}
}
