// Package serve is the live serving layer: it turns the planner/simulator
// stack into a running cluster dispatch daemon. A Server loads a
// problem/layout pair (from the replicate/place pipeline or a persisted
// plan), tracks per-backend outgoing bandwidth with lock-free atomic
// accounting (Cluster), and admits, rejects, or redirects session requests
// through an admission Policy — either the lock-free concurrent policies or
// the locked sim-parity adapters over the exact cluster.Scheduler/redirect
// implementations the simulator uses.
//
// Every admitted session runs as its own goroutine holding a
// context.WithTimeout for the (time-compressed) video duration; ending the
// context — natural expiry, client cancel, backend drain without a failover
// target, or daemon shutdown — releases the session's bandwidth reservation
// exactly once. Backend drain marks a server ineligible for new placements
// and fails its active sessions over to surviving replica holders
// (resilience semantics); daemon drain stops admissions and waits for the
// active sessions to run out.
//
// The paper connection: this is §5's dispatch model made operational —
// admission control on per-server outgoing bandwidth, replica choice by the
// configured scheduling policy, rejection when every replica holder is
// saturated — so measured live rejection rates can be cross-validated
// against sim.Run on the same request trace (see cmd/vodload -validate).
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vodcluster/internal/core"
	"vodcluster/internal/obs"
)

// Outcome classifies one admission decision.
type Outcome string

// Admission outcomes reported by Server.Open and the HTTP API.
const (
	OutcomeAccepted Outcome = "accepted"
	OutcomeRejected Outcome = "rejected"
	OutcomeDraining Outcome = "draining"
)

// SessionInfo is the public record of an admitted session.
type SessionInfo struct {
	ID         int64   `json:"id"`
	Video      int     `json:"video"`
	Server     int     `json:"server"`
	Source     int     `json:"source"`
	RateBps    int64   `json:"rate_bps"`
	Redirected bool    `json:"redirected"`
	ExpiresInS float64 `json:"expires_in_s"`
}

// session is the server-side record: the live grant plus the cancel handle
// of the session goroutine's context.
type session struct {
	id     int64
	video  int
	grant  Grant
	cancel context.CancelFunc
}

// Config tunes a Server beyond the problem/layout pair.
type Config struct {
	// Policy names the admission policy (see PolicyNames); empty means
	// least-loaded.
	Policy string
	// Compress divides every session's wall-clock duration: at Compress C a
	// D-second video holds its bandwidth for D/C seconds of real time, so a
	// recorded trace replayed C× faster reproduces the simulator's
	// occupancy process in C× less wall time. 0 means 1 (real time).
	Compress float64
	// MaxSessionWall caps any single session's wall-clock lifetime
	// regardless of compression; 0 means no cap beyond the video duration.
	MaxSessionWall time.Duration
	// Tracer, when non-nil, records every session lifecycle transition
	// (arrive → admit/reject → end/tear/failover) into its ring buffer and
	// exposes GET /debug/trace on the HTTP API. Nil disables tracing at the
	// cost of one branch per event.
	Tracer *obs.Tracer
	// AdmitDelay inserts an artificial stall into every admission decision
	// before the policy runs. It exists for the perf-regression test
	// harness — a knob that provably slows the admit path so the vodperf
	// gate can be shown to catch it — and for latency chaos experiments.
	// Production configurations leave it zero.
	AdmitDelay time.Duration
}

// Server is the live dispatch engine. Create with New; all exported methods
// are safe for concurrent use.
type Server struct {
	c          *Cluster
	pol        Policy
	met        *Metrics
	tracer     *obs.Tracer
	admitDelay time.Duration
	compress   float64
	maxWall    time.Duration

	baseCtx  context.Context
	baseStop context.CancelFunc

	mu       sync.Mutex
	sessions map[int64]*session
	nextID   atomic.Int64
	activeN  atomic.Int64 // mirrors len(sessions) for lock-free depth reads
	draining atomic.Bool

	wg sync.WaitGroup // live session goroutines
}

// New builds a Server for a validated problem/layout pair.
func New(p *core.Problem, layout *core.Layout, cfg Config) (*Server, error) {
	c, err := NewCluster(p, layout)
	if err != nil {
		return nil, err
	}
	pol, err := NewPolicy(cfg.Policy, c)
	if err != nil {
		return nil, err
	}
	compress := cfg.Compress
	if compress == 0 {
		compress = 1
	}
	if compress < 0 {
		return nil, fmt.Errorf("serve: compression factor must be positive, got %g", compress)
	}
	ctx, stop := context.WithCancel(context.Background())
	return &Server{
		c:          c,
		pol:        pol,
		met:        NewMetrics(streamCeiling(p)),
		tracer:     cfg.Tracer,
		admitDelay: cfg.AdmitDelay,
		compress:   compress,
		maxWall:    cfg.MaxSessionWall,
		baseCtx:    ctx,
		baseStop:   stop,
		sessions:   make(map[int64]*session),
	}, nil
}

// streamCeiling bounds how many sessions the cluster can ever hold
// concurrently — total outgoing capacity over the cheapest encoding rate —
// which sizes the queue-depth histogram so its range covers exactly the
// reachable depths.
func streamCeiling(p *core.Problem) int {
	total := 0.0
	for s := 0; s < p.N(); s++ {
		total += p.BandwidthOf(s)
	}
	minRate := 0.0
	for _, v := range p.Catalog {
		if minRate == 0 || (v.BitRate > 0 && v.BitRate < minRate) {
			minRate = v.BitRate
		}
	}
	if minRate <= 0 {
		return 1024
	}
	n := int(total / minRate)
	if n < 16 {
		n = 16
	}
	return n
}

// Cluster exposes the concurrent accounting state (for metrics and tests).
func (s *Server) Cluster() *Cluster { return s.c }

// Metrics exposes the instrument panel.
func (s *Server) Metrics() *Metrics { return s.met }

// Tracer exposes the session-lifecycle tracer; nil when tracing is off.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// PolicyName reports the active admission policy.
func (s *Server) PolicyName() string { return s.pol.Name() }

// Compress reports the time-compression factor sessions run under.
func (s *Server) Compress() float64 { return s.compress }

// Active returns the number of live sessions.
func (s *Server) Active() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.sessions))
}

// Draining reports whether the daemon refuses new sessions.
func (s *Server) Draining() bool { return s.draining.Load() }

// wallDuration returns the compressed wall-clock lifetime of video v.
func (s *Server) wallDuration(v int) time.Duration {
	d := time.Duration(s.c.Problem().Catalog[v].Duration / s.compress * float64(time.Second))
	if s.maxWall > 0 && d > s.maxWall {
		d = s.maxWall
	}
	return d
}

// Open runs one admission decision for video v. On acceptance the session
// goroutine is already running and will release the reservation when the
// session's context ends. The returned outcome distinguishes a capacity
// rejection from a drain refusal.
func (s *Server) Open(v int) (SessionInfo, Outcome, error) {
	start := time.Now()
	arriveNS := s.tracer.NowNS()
	s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindArrive, Video: v})
	if v < 0 || v >= s.c.Videos() {
		s.met.BadVideo()
		return SessionInfo{}, OutcomeRejected, fmt.Errorf("serve: video %d outside catalog of %d", v, s.c.Videos())
	}
	if s.admitDelay > 0 {
		time.Sleep(s.admitDelay)
	}
	s.met.ObserveQueueDepth(float64(s.activeN.Load()))
	if s.draining.Load() {
		s.met.Decision(false, false, true, time.Since(start))
		s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindDrain, Video: v,
			DurNS: s.tracer.NowNS() - arriveNS})
		return SessionInfo{}, OutcomeDraining, nil
	}
	g, ok := s.pol.Admit(v)
	if !ok {
		s.met.Decision(false, false, false, time.Since(start))
		s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindReject, Video: v,
			DurNS: s.tracer.NowNS() - arriveNS})
		return SessionInfo{}, OutcomeRejected, nil
	}
	wall := s.wallDuration(v)
	ctx, cancel := context.WithTimeout(s.baseCtx, wall)
	sess := &session{id: s.nextID.Add(1), video: v, grant: g, cancel: cancel}
	s.mu.Lock()
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.activeN.Add(1)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-ctx.Done()
		cancel()
		s.finish(sess, ctx.Err() == context.DeadlineExceeded)
	}()

	s.met.Decision(true, g.Redirected, false, time.Since(start))
	s.tracer.Record(obs.Event{TS: arriveNS, Kind: obs.KindAdmit,
		Session: sess.id, Video: v, Server: g.Server,
		DurNS: s.tracer.NowNS() - arriveNS})
	return SessionInfo{
		ID:         sess.id,
		Video:      v,
		Server:     g.Server,
		Source:     g.Source,
		RateBps:    g.Rate,
		Redirected: g.Redirected,
		ExpiresInS: wall.Seconds(),
	}, OutcomeAccepted, nil
}

// finish settles one ended session exactly once: it removes the registry
// entry (if a drain or close has not already done so) and returns the
// current grant's resources. natural reports whether the context ended by
// its own deadline (a completed playback) rather than a cancel.
func (s *Server) finish(sess *session, natural bool) {
	s.mu.Lock()
	cur, ok := s.sessions[sess.id]
	if ok {
		delete(s.sessions, sess.id)
	}
	s.mu.Unlock()
	if !ok {
		return // dropped by a drain; resources already settled there
	}
	s.activeN.Add(-1)
	s.pol.Release(cur.grant)
	if natural {
		s.met.Completed()
		s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindEnd,
			Session: sess.id, Video: sess.video, Server: cur.grant.Server})
	} else {
		s.met.Canceled()
		s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindTear,
			Session: sess.id, Video: sess.video, Server: cur.grant.Server, Detail: "canceled"})
	}
}

// Close ends session id early (the client hung up). It reports whether the
// session was live.
func (s *Server) Close(id int64) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	sess.cancel() // the session goroutine settles it via finish
	return true
}

// DrainBackend takes backend b out of service: no new placements land on it
// and every session it was serving (or sourcing, for redirected streams) is
// failed over to a surviving replica holder where capacity allows. Sessions
// with no failover target are dropped. It returns the failed-over and
// dropped counts.
func (s *Server) DrainBackend(b int) (failedOver, dropped int, err error) {
	if b < 0 || b >= s.c.Servers() {
		return 0, 0, fmt.Errorf("serve: backend %d outside cluster of %d", b, s.c.Servers())
	}
	s.c.SetDraining(b, true)
	if d, ok := s.pol.(interface{ DrainBackend(int) }); ok {
		d.DrainBackend(b) // sim-parity policies mirror the drain into their state
	}
	// Snapshot the affected sessions, then settle each: swap the grant on
	// failover (the session goroutine keeps its original deadline — the
	// viewer's playback position does not reset), cancel on drop.
	s.mu.Lock()
	var affected []*session
	for _, sess := range s.sessions {
		if sess.grant.Server == b || sess.grant.Source == b {
			affected = append(affected, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range affected {
		ng, ok := s.pol.Failover(sess.video, b)
		s.mu.Lock()
		cur, live := s.sessions[sess.id]
		if !live { // ended concurrently; undo the failover reservation
			s.mu.Unlock()
			if ok {
				s.pol.Release(ng)
			}
			continue
		}
		old := cur.grant
		if ok {
			cur.grant = ng
		} else {
			delete(s.sessions, sess.id)
		}
		s.mu.Unlock()
		s.pol.Release(old)
		if ok {
			s.met.FailedOver()
			s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindFailover,
				Session: sess.id, Video: sess.video, Server: ng.Server,
				Detail: "from server " + fmt.Sprint(b)})
			failedOver++
		} else {
			s.activeN.Add(-1)
			sess.cancel()
			s.met.Dropped()
			s.tracer.Record(obs.Event{TS: s.tracer.NowNS(), Kind: obs.KindTear,
				Session: sess.id, Video: sess.video, Server: b, Detail: "drained"})
			dropped++
		}
	}
	return failedOver, dropped, nil
}

// RestoreBackend returns a drained backend to service.
func (s *Server) RestoreBackend(b int) error {
	if b < 0 || b >= s.c.Servers() {
		return fmt.Errorf("serve: backend %d outside cluster of %d", b, s.c.Servers())
	}
	s.c.SetDraining(b, false)
	if d, ok := s.pol.(interface{ RestoreBackend(int) }); ok {
		d.RestoreBackend(b)
	}
	return nil
}

// Drain gracefully stops the daemon: new sessions are refused with the
// draining outcome, and Drain waits until every active session ends or ctx
// expires, whichever is first. On ctx expiry the remaining sessions are
// force-canceled so their reservations still release before return.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseStop() // cancel every session context
		<-done
		return fmt.Errorf("serve: drain timed out; %w", ctx.Err())
	}
}

// Shutdown force-cancels every session and waits for their goroutines.
func (s *Server) Shutdown() {
	s.draining.Store(true)
	s.baseStop()
	s.wg.Wait()
}
