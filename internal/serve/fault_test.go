package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"vodcluster/internal/core"
	"vodcluster/internal/faults"
)

// TestBackendTypedErrors walks every refused backend transition and checks
// the typed error contract callers (and the HTTP layer's status mapping)
// dispatch on.
func TestBackendTypedErrors(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	var re *BackendRangeError
	if _, _, err := srv.DrainBackend(7); !errors.As(err, &re) || re.Backend != 7 {
		t.Fatalf("drain out of range: err %v, want *BackendRangeError for 7", err)
	}
	if _, _, err := srv.FailBackend(-1); !errors.As(err, &re) {
		t.Fatalf("fail out of range: err %v, want *BackendRangeError", err)
	}
	if err := srv.RestoreBackend(2); !errors.As(err, &re) {
		t.Fatalf("restore out of range: err %v, want *BackendRangeError", err)
	}
	if err := srv.RecoverBackend(2); !errors.As(err, &re) {
		t.Fatalf("recover out of range: err %v, want *BackendRangeError", err)
	}

	// Recovery is only for crashed backends.
	if err := srv.RecoverBackend(0); !errors.Is(err, ErrBackendNotDown) {
		t.Fatalf("recover of an up backend: err %v, want ErrBackendNotDown", err)
	}

	// A second drain of a draining backend is refused…
	if _, _, err := srv.DrainBackend(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.DrainBackend(0); !errors.Is(err, ErrBackendDraining) {
		t.Fatalf("double drain: err %v, want ErrBackendDraining", err)
	}
	// …but a crash overrides a drain: maintenance does not protect a backend
	// from actually dying.
	if _, _, err := srv.FailBackend(0); err != nil {
		t.Fatalf("crash of a draining backend refused: %v", err)
	}
	if got := srv.Cluster().State(0); got != BackendDown {
		t.Fatalf("state after crash = %v, want down", got)
	}

	// Down refuses everything except recovery.
	if _, _, err := srv.DrainBackend(0); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("drain of a down backend: err %v, want ErrBackendDown", err)
	}
	if _, _, err := srv.FailBackend(0); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("double crash: err %v, want ErrBackendDown", err)
	}
	if err := srv.RestoreBackend(0); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("restore of a down backend: err %v, want ErrBackendDown", err)
	}
	// With no health checker attached, recovery goes straight to Up.
	if err := srv.RecoverBackend(0); err != nil {
		t.Fatal(err)
	}
	if got := srv.Cluster().State(0); got != BackendUp {
		t.Fatalf("state after recover = %v, want up", got)
	}
}

// TestConcurrentFailDrainStorm races FailBackend against DrainBackend on the
// same backend, round after round, under a saturating admission storm — the
// single-settlement torture test the race detector runs alongside. Each
// round at least one racer must win the claim; losers get only the typed
// sentinels; and when the storm ends every session has ended through exactly
// one of the three terminal paths and every bandwidth gauge reads zero.
func TestConcurrentFailDrainStorm(t *testing.T) {
	p := testProblem(t, 0)
	p.BandwidthPerServer = 400 * core.Mbps // 100 slots per server
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(p, testLayout(t), Config{Compress: 2e5})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	stop := make(chan struct{})
	var storm sync.WaitGroup
	for w := 0; w < 8; w++ {
		storm.Add(1)
		go func(w int) {
			defer storm.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				info, outcome, err := srv.Open((w + i) % 3)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if outcome == OutcomeAccepted && i%2 == 0 {
					srv.Close(info.ID)
				}
			}
		}(w)
	}

	for round := 0; round < 30; round++ {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); _, _, errs[0] = srv.FailBackend(0) }()
		go func() { defer wg.Done(); _, _, errs[1] = srv.DrainBackend(0) }()
		wg.Wait()
		for i, err := range errs {
			if err != nil && !errors.Is(err, ErrBackendDown) && !errors.Is(err, ErrBackendDraining) {
				t.Fatalf("round %d racer %d: unexpected error %v", round, i, err)
			}
		}
		if errs[0] != nil && errs[1] != nil {
			t.Fatalf("round %d: both racers lost the claim (%v; %v)", round, errs[0], errs[1])
		}
		switch st := srv.Cluster().State(0); st {
		case BackendDown:
			if err := srv.RecoverBackend(0); err != nil {
				t.Fatalf("round %d recover: %v", round, err)
			}
		case BackendDraining:
			if err := srv.RestoreBackend(0); err != nil {
				t.Fatalf("round %d restore: %v", round, err)
			}
		default:
			t.Fatalf("round %d left backend 0 in state %v", round, st)
		}
	}

	close(stop)
	storm.Wait()
	waitUntil(t, 10*time.Second, "all sessions to end", func() bool { return srv.Active() == 0 })
	c := srv.Cluster()
	for s := 0; s < c.Servers(); s++ {
		if got := c.Used(s); got != 0 {
			t.Fatalf("server %d leaks %d bit/s after the storm", s, got)
		}
		if got := c.Active(s); got != 0 {
			t.Fatalf("server %d leaks %d active-stream counts after the storm", s, got)
		}
	}
	m := srv.Metrics()
	if ended := m.completed.Load() + m.canceled.Load() + m.dropped.Load(); ended != m.accepted.Load() {
		t.Fatalf("ended %d sessions (completed+canceled+dropped), accepted %d — some session settled zero or multiple times",
			ended, m.accepted.Load())
	}
}

// TestHealthCheckerStateMachine drives the probe loop by hand (the loop
// itself is started on an hour-long interval so only manual sweeps fire) and
// walks the full state machine against an injector:
//
//	up → suspect → down      (FailThreshold consecutive failures)
//	down → recovering → up   (RecoverThreshold consecutive successes)
//	recovering → down        (any failure during probation)
//	suspect → up             (recovery before the crash confirms)
//	draining                 (skipped entirely)
func TestHealthCheckerStateMachine(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.NewInjector()
	h := NewHealthChecker(srv, in, HealthConfig{Interval: time.Hour, FailThreshold: 3, RecoverThreshold: 2})
	h.Start()
	defer srv.Shutdown()
	c := srv.Cluster()
	m := srv.Metrics()

	if cfg := h.Config(); cfg.Timeout != 30*time.Minute {
		t.Fatalf("defaulted probe timeout = %s, want Interval/2", cfg.Timeout)
	}

	info, outcome, err := srv.Open(0) // least-loaded tie → server 0
	if err != nil || outcome != OutcomeAccepted || info.Server != 0 {
		t.Fatalf("open: outcome %q server %d, err %v", outcome, info.Server, err)
	}

	h.sweep() // all healthy
	if got := m.probeOK.Load(); got != 2 {
		t.Fatalf("probe_ok = %d after one clean sweep of 2 backends, want 2", got)
	}

	// up → suspect → down, with the confirmed crash evicting the session.
	in.Crash(0)
	h.sweep()
	if got := c.State(0); got != BackendSuspect {
		t.Fatalf("state after 1 failed probe = %v, want suspect", got)
	}
	if !c.Eligible(0) {
		t.Fatal("suspect backend refused placements; suspicion must not evict")
	}
	h.sweep()
	if got := c.State(0); got != BackendSuspect {
		t.Fatalf("state after 2 failed probes = %v, want suspect", got)
	}
	h.sweep()
	if got := c.State(0); got != BackendDown {
		t.Fatalf("state after FailThreshold probes = %v, want down", got)
	}
	if got := m.backendFailures.Load(); got != 1 {
		t.Fatalf("backend_failures = %d, want 1", got)
	}
	if got := m.failedOver.Load(); got != 1 {
		t.Fatalf("failovers = %d; the confirmed crash must evict through FailBackend", got)
	}
	if got := c.Used(0); got != 0 {
		t.Fatalf("down backend still charged %d", got)
	}
	h.sweep() // still down: no double settlement
	if got := m.backendFailures.Load(); got != 1 {
		t.Fatalf("backend_failures = %d after an extra down sweep, want 1", got)
	}

	// down → recovering (first clean probe) → up (threshold).
	in.Recover(0)
	h.sweep()
	if got := c.State(0); got != BackendRecovering {
		t.Fatalf("state after first clean probe = %v, want recovering (checker attached)", got)
	}
	h.sweep()
	if got := c.State(0); got != BackendUp {
		t.Fatalf("state after RecoverThreshold clean probes = %v, want up", got)
	}

	// recovering → down: a failure during probation confirms immediately.
	in.Crash(0)
	h.sweep()
	h.sweep()
	h.sweep()
	in.Recover(0)
	h.sweep()
	if got := c.State(0); got != BackendRecovering {
		t.Fatalf("state = %v, want recovering", got)
	}
	in.Crash(0)
	h.sweep()
	if got := c.State(0); got != BackendDown {
		t.Fatalf("state after probation failure = %v, want down without waiting out FailThreshold", got)
	}

	// suspect → up: a blip that clears before the threshold never evicts.
	in.Recover(0)
	h.sweep()
	h.sweep() // back to up
	failuresBefore := m.backendFailures.Load()
	in.Crash(0)
	h.sweep()
	in.Recover(0)
	h.sweep()
	h.sweep()
	if got := c.State(0); got != BackendUp {
		t.Fatalf("state after a cleared blip = %v, want up", got)
	}
	if got := m.backendFailures.Load(); got != failuresBefore {
		t.Fatalf("a sub-threshold blip confirmed a crash (%d → %d)", failuresBefore, got)
	}

	// Draining backends are operator-owned: never probed, never transitioned.
	if _, _, err := srv.DrainBackend(1); err != nil {
		t.Fatal(err)
	}
	in.Crash(1)
	probesBefore := m.probeOK.Load() + m.probeFail.Load()
	h.sweep()
	h.sweep()
	h.sweep()
	if got := c.State(1); got != BackendDraining {
		t.Fatalf("draining backend transitioned to %v under failed probes", got)
	}
	if got := m.probeOK.Load() + m.probeFail.Load(); got != probesBefore+3 {
		t.Fatalf("probe count rose by %d over 3 sweeps, want 3 (backend 0 only; draining skipped)", got-probesBefore)
	}
}

// repairScenario builds the smallest cluster where a crash leaves a
// restorable replica gap: 3 servers, 2 videos at 2 replicas, with s1 holding
// both (storage-full) and s0/s2 holding one each (one slot of storage free).
// Crashing s0 drops v0 to one live replica; the only viable repair is a copy
// from s1 onto s2.
func repairScenario(t *testing.T) (*core.Problem, *core.Layout) {
	t.Helper()
	c := core.Catalog{
		{ID: 0, Popularity: 0.5, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 1, Popularity: 0.5, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         3,
		StoragePerServer:   2 * c[0].SizeBytes(),
		BandwidthPerServer: 40 * core.Mbps,
		ArrivalRate:        1.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	l := core.NewLayout(2)
	l.Replicas = []int{2, 2}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 1}, {1, 2}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	return p, l
}

// TestRepairerRestoresReplica: a crash kicks the repairer, which copies the
// under-replicated video from its most-free surviving holder onto the
// eligible non-holder with storage room, journals the transfer, publishes
// the landed replica, and releases the copy bandwidth. A second crash that
// leaves no viable destination is skipped, not wedged.
func TestRepairerRestoresReplica(t *testing.T) {
	p, layout := repairScenario(t)
	srv, err := New(p, layout, Config{Compress: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	// Interval is huge in wall terms; only FailBackend's kick triggers scans.
	rep, err := NewRepairer(srv, RepairConfig{CopyRate: 20 * core.Mbps, Interval: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	defer srv.Shutdown()
	c := srv.Cluster()

	if _, _, err := srv.FailBackend(0); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "repair copy to land", func() bool { return rep.Completed() == 1 })
	if got := len(c.Holders(0)); got != 3 {
		t.Fatalf("v0 has %d placed replicas after repair, want 3 (crashed + 2 live)", got)
	}
	if got := c.LiveReplicas(0); got != 2 {
		t.Fatalf("v0 has %d live replicas after repair, want 2", got)
	}
	if got := srv.Metrics().rereplications.Load(); got != 1 {
		t.Fatalf("vod_rereplications_total = %d, want 1", got)
	}
	waitUntil(t, 2*time.Second, "copy bandwidth release", func() bool { return c.Used(1) == 0 })
	journal := rep.Journal()
	if len(journal) != 2 {
		t.Fatalf("journal has %d entries, want start+complete: %+v", len(journal), journal)
	}
	for i, action := range []string{"start", "complete"} {
		e := journal[i]
		if e.Action != action || e.Video != 0 || e.Src != 1 || e.Dst != 2 {
			t.Fatalf("journal[%d] = %+v, want %s of v0 from 1 to 2", i, e, action)
		}
	}

	// Crash the donor too: v0 and v1 still have a live copy on s2, but no
	// eligible destination remains — the scans must record skips and move on.
	if _, _, err := srv.FailBackend(1); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "destination-less repairs to be skipped", func() bool { return rep.Skipped() >= 1 })
	if got := rep.Completed(); got != 1 {
		t.Fatalf("completed copies = %d after the destination-less crash, want still 1", got)
	}
}

// TestRepairerAbortsWhenDestinationDies: a destination crashing mid-copy
// voids the landed bytes — the transfer aborts, no replica is published.
func TestRepairerAbortsWhenDestinationDies(t *testing.T) {
	p, layout := repairScenario(t)
	srv, err := New(p, layout, Config{Compress: 1e4}) // copy wall ≈ 108 ms
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewRepairer(srv, RepairConfig{CopyRate: 20 * core.Mbps, Interval: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	defer srv.Shutdown()

	if _, _, err := srv.FailBackend(0); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "repair copy to start", func() bool { return rep.Inflight() == 1 })
	if _, _, err := srv.FailBackend(2); err != nil { // the destination dies mid-copy
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "copy to abort", func() bool { return rep.Aborted() >= 1 })
	if got := rep.Completed(); got != 0 {
		t.Fatalf("completed = %d, want 0: a dead destination must not publish a replica", got)
	}
	if got := len(srv.Cluster().Holders(0)); got != 2 {
		t.Fatalf("v0 has %d placed replicas, want the original 2", got)
	}
}

// TestRepairerBudget: a budget below one copy's rate blocks every copy (the
// degenerate case that proves the budget gate runs before any reservation),
// and invalid configs are rejected at construction.
func TestRepairerBudget(t *testing.T) {
	p, layout := repairScenario(t)
	srv, err := New(p, layout, Config{Compress: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewRepairer(srv, RepairConfig{CopyRate: 20 * core.Mbps, Budget: 10 * core.Mbps, Interval: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	defer srv.Shutdown()
	if _, _, err := srv.FailBackend(0); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "budget-starved repair to be skipped", func() bool { return rep.Skipped() >= 1 })
	if got := rep.Started(); got != 0 {
		t.Fatalf("started = %d under an unmeetable budget, want 0", got)
	}

	for _, cfg := range []RepairConfig{
		{MinLive: -1},
		{Interval: -5},
		{CopyRate: -1},
		{MaxPerScan: -2},
		{Budget: -1},
	} {
		if _, err := NewRepairer(srv, cfg); err == nil {
			t.Fatalf("invalid repair config %+v accepted", cfg)
		}
	}
}

// TestOpenRetrySuccess: a capacity-rejected request waits in the retry queue
// and converts to an acceptance when a slot frees — with exactly one settled
// decision recorded for the whole attempt chain.
func TestOpenRetrySuccess(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{
		Compress: 1000,
		Retry:    &RetryConfig{Base: 1, Factor: 1, Patience: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ctx := context.Background()

	if _, _, err := srv.OpenRetry(ctx, 99); err == nil {
		t.Fatal("retry admitted an out-of-catalog video")
	}

	// v1 lives only on s0: two sessions saturate it.
	first, outcome, err := srv.Open(1)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("open: outcome %q, err %v", outcome, err)
	}
	if _, outcome, err = srv.Open(1); err != nil || outcome != OutcomeAccepted {
		t.Fatalf("open: outcome %q, err %v", outcome, err)
	}

	type result struct {
		outcome Outcome
		err     error
	}
	done := make(chan result, 1)
	go func() {
		_, o, err := srv.OpenRetry(ctx, 1)
		done <- result{o, err}
	}()
	waitUntil(t, 2*time.Second, "request to enter the retry queue", func() bool {
		pending, _ := srv.RetryPending()
		return pending == 1
	})
	if !srv.Close(first.ID) {
		t.Fatal("close failed")
	}
	res := <-done
	if res.err != nil || res.outcome != OutcomeAccepted {
		t.Fatalf("retried request: outcome %q, err %v, want accepted", res.outcome, res.err)
	}
	m := srv.Metrics()
	if got := m.retried.Load(); got < 1 {
		t.Fatalf("retries = %d, want at least 1", got)
	}
	if got := m.Accepted(); got != 3 {
		t.Fatalf("accepted = %d, want 3", got)
	}
	if got := m.Requests(); got != 3 {
		t.Fatalf("settled decisions = %d, want 3 — retries must not inflate the counters", got)
	}
}

// TestOpenRetryRenege: with nothing ever freeing, the request backs off
// until its patience runs out and settles as exactly one rejection.
func TestOpenRetryRenege(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{
		Compress: 1e4,
		Retry:    &RetryConfig{Base: 1, Factor: 1, Patience: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	for i := 0; i < 2; i++ {
		if _, outcome, err := srv.Open(1); err != nil || outcome != OutcomeAccepted {
			t.Fatalf("open %d: outcome %q, err %v", i, outcome, err)
		}
	}
	_, outcome, err := srv.OpenRetry(context.Background(), 1)
	if err != nil || outcome != OutcomeRejected {
		t.Fatalf("starved retry: outcome %q, err %v, want rejected", outcome, err)
	}
	m := srv.Metrics()
	if got := m.reneged.Load(); got != 1 {
		t.Fatalf("reneges = %d, want 1", got)
	}
	if got := m.retried.Load(); got < 1 {
		t.Fatalf("retries = %d, want at least 1 before reneging", got)
	}
	if got := m.Requests(); got != 3 {
		t.Fatalf("settled decisions = %d, want 3", got)
	}
}

// TestOpenRetryQueueFull: the bounded queue rejects overflow immediately
// (no renege — the request never waited), and a canceled waiter reneges.
func TestOpenRetryQueueFull(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{
		Compress: 1000,
		Retry:    &RetryConfig{Base: 1, Factor: 1, Patience: 1e5, Limit: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	for i := 0; i < 2; i++ {
		if _, outcome, err := srv.Open(1); err != nil || outcome != OutcomeAccepted {
			t.Fatalf("open %d: outcome %q, err %v", i, outcome, err)
		}
	}
	waiterCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan Outcome, 1)
	go func() {
		_, o, _ := srv.OpenRetry(waiterCtx, 1)
		done <- o
	}()
	waitUntil(t, 2*time.Second, "waiter to fill the queue", func() bool {
		pending, _ := srv.RetryPending()
		return pending == 1
	})

	_, outcome, err := srv.OpenRetry(context.Background(), 1)
	if err != nil || outcome != OutcomeRejected {
		t.Fatalf("overflow request: outcome %q, err %v, want immediate rejection", outcome, err)
	}
	m := srv.Metrics()
	if got := m.reneged.Load(); got != 0 {
		t.Fatalf("reneges = %d after a queue-full rejection, want 0", got)
	}

	cancel()
	if o := <-done; o != OutcomeRejected {
		t.Fatalf("canceled waiter: outcome %q, want rejected", o)
	}
	if got := m.reneged.Load(); got != 1 {
		t.Fatalf("reneges = %d after cancellation, want 1", got)
	}
	if _, peak := srv.RetryPending(); peak != 1 {
		t.Fatalf("peak queue depth = %d, want 1", peak)
	}
	if got := m.Requests(); got != 4 {
		t.Fatalf("settled decisions = %d, want 4", got)
	}
}

// TestRenderFailureFamilies: the failure-handling counters and the
// per-backend state gauge render in the exposition with the documented
// names, labels, and state encoding.
func TestRenderFailureFamilies(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if _, outcome, err := srv.Open(0); err != nil || outcome != OutcomeAccepted {
		t.Fatalf("open: outcome %q, err %v", outcome, err)
	}
	if _, _, err := srv.FailBackend(0); err != nil { // fails the session over to s1
		t.Fatal(err)
	}
	m := srv.Metrics()
	m.Probe(true)
	m.Probe(false)
	m.Retried()
	m.Reneged()
	m.ReReplicated()

	var sb strings.Builder
	m.Render(&sb, srv.Cluster(), srv.Active(), srv.PolicyName())
	out := sb.String()
	for sample, want := range map[string]float64{
		`vod_failovers_total`:                        1,
		`vod_backend_failures_total`:                 1,
		`vod_retries_total`:                          1,
		`vod_reneges_total`:                          1,
		`vod_rereplications_total`:                   1,
		`vod_health_probes_total{result="ok"}`:       1,
		`vod_health_probes_total{result="fail"}`:     1,
		`vod_backend_state{server="0",state="down"}`: 4,
		`vod_backend_state{server="1",state="up"}`:   0,
	} {
		if got := promValue(t, out, sample); got != want {
			t.Fatalf("%s = %g, want %g", sample, got, want)
		}
	}
}
