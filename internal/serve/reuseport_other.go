//go:build !linux || mips || mipsle || mips64 || mips64le

package serve

import "net"

// reusePortAvailable: without SO_REUSEPORT the ingress still runs, but with
// a single accept loop (IngressConfig.Listeners > 1 is rejected).
const reusePortAvailable = false

// listenReusePort falls back to a plain TCP listener on platforms without a
// known-safe SO_REUSEPORT constant.
func listenReusePort(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
