package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"vodcluster/internal/obs"
)

// TestServerTracesLifecycle drives one accept → close and one rejection
// through a traced daemon and checks the ring holds the matching lifecycle
// events with wall-clock timestamps and a decision span on the admit.
func TestServerTracesLifecycle(t *testing.T) {
	tr := obs.NewTracer(256)
	srv, hs := newTestServer(t, Config{Tracer: tr})
	client := NewClient(hs.URL)
	ctx := context.Background()

	info, outcome, _, err := client.Request(ctx, 0)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("request: outcome %q, err %v", outcome, err)
	}
	if err := client.CloseSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "session teardown", func() bool { return srv.Active() == 0 })

	// Saturate v1's single 2-slot holder, then one rejection.
	for i := 0; i < 2; i++ {
		if _, outcome, _, err := client.Request(ctx, 1); err != nil || outcome != OutcomeAccepted {
			t.Fatalf("fill %d: outcome %q, err %v", i, outcome, err)
		}
	}
	if _, outcome, _, err := client.Request(ctx, 1); err != nil || outcome != OutcomeRejected {
		t.Fatalf("overload request: outcome %q, err %v", outcome, err)
	}

	counts := map[obs.Kind]int{}
	for _, e := range tr.Snapshot() {
		counts[e.Kind]++
		switch e.Kind {
		case obs.KindAdmit:
			if e.Session == 0 || e.DurNS <= 0 {
				t.Fatalf("admit without session id or decision span: %+v", e)
			}
		case obs.KindTear:
			if e.Detail != "canceled" {
				t.Fatalf("client-closed session should tear as canceled: %+v", e)
			}
		}
	}
	if counts[obs.KindArrive] != 4 || counts[obs.KindAdmit] != 3 ||
		counts[obs.KindReject] != 1 || counts[obs.KindTear] != 1 {
		t.Fatalf("event counts = %v; want 4 arrive, 3 admit, 1 reject, 1 tear", counts)
	}
}

// TestTraceDumpEndpoint: GET /debug/trace serves the JSON dump, and
// ?format=chrome serves a trace_event envelope; without a tracer the route
// does not exist.
func TestTraceDumpEndpoint(t *testing.T) {
	tr := obs.NewTracer(256)
	_, hs := newTestServer(t, Config{Tracer: tr})
	client := NewClient(hs.URL)
	if _, outcome, _, err := client.Request(context.Background(), 0); err != nil || outcome != OutcomeAccepted {
		t.Fatalf("request: outcome %q, err %v", outcome, err)
	}

	resp, err := http.Get(hs.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var dump struct {
		Total  uint64            `json:"total_events"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, body)
	}
	if dump.Total < 2 || len(dump.Events) < 2 {
		t.Fatalf("dump too small: total %d, %d events", dump.Total, len(dump.Events))
	}

	resp, err = http.Get(hs.URL + "/debug/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome dump not valid JSON: %v\n%s", err, body)
	}
	if len(chrome.TraceEvents) < 2 {
		t.Fatalf("chrome dump has %d events", len(chrome.TraceEvents))
	}

	_, plain := newTestServer(t, Config{})
	resp, err = http.Get(plain.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced daemon served /debug/trace with %d, want 404", resp.StatusCode)
	}
}
