package serve

// Wire codecs of the HTTP admission hot path (DESIGN.md §16). The fast
// parsers accept exactly the canonical byte shapes the rebuilt client and
// load generator emit — `{"video":N}`, `{"videos":[a,b,…]}`, `{"id":N}`,
// no whitespace, no reordered or duplicate keys — and fall back to
// encoding/json for anything else. The fallback is what makes the fast path
// safe to hand-roll: any input the scanner is not absolutely sure about is
// decoded by the stdlib, so the pair agrees with encoding/json on every
// input by construction (the differential fuzz target in wire_test.go pins
// this). The encoders append into caller-owned buffers with strconv, so a
// settled admission decision serializes without touching the allocator.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

var (
	errMissingVideo  = errors.New("serve: request body has no \"video\" field")
	errMissingVideos = errors.New("serve: request body has no \"videos\" field")
	errMissingID     = errors.New("serve: request body has no \"id\" field")
)

// parseInt consumes a canonical JSON integer (-?(0|[1-9][0-9]*)) from b[i:]
// and returns its value and the index after it. ok is false when the bytes
// are not a canonical in-range integer — the caller must fall back to
// encoding/json rather than guess (the input may still be valid JSON, e.g.
// 1e2 or 007, which the stdlib rejects or errors on in its own way).
func parseInt(b []byte, i int) (v int64, next int, ok bool) {
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	start := i
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		if v > (math.MaxInt64-9)/10 {
			return 0, i, false // would overflow; let encoding/json report it
		}
		v = v*10 + int64(b[i]-'0')
		i++
	}
	if i == start {
		return 0, i, false
	}
	if b[start] == '0' && i-start > 1 {
		return 0, i, false // leading zero: not a JSON number
	}
	if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
		return 0, i, false // a float or exponent form; not canonical
	}
	if neg {
		v = -v
	}
	return v, i, true
}

// parseOpenBody decodes a POST /open body. Canonical {"video":N} parses
// inline; everything else goes through encoding/json.
func parseOpenBody(b []byte) (int, error) {
	const pre = `{"video":`
	if len(b) > len(pre)+1 && string(b[:len(pre)]) == pre && b[len(b)-1] == '}' {
		if v, next, ok := parseInt(b, len(pre)); ok && next == len(b)-1 {
			return int(v), nil
		}
	}
	var req struct {
		Video *int `json:"video"`
	}
	if err := json.Unmarshal(b, &req); err != nil {
		return 0, fmt.Errorf("serve: open body: %w", err)
	}
	if req.Video == nil {
		return 0, errMissingVideo
	}
	return *req.Video, nil
}

// parseBatchBody decodes a POST /open/batch body into dst (reused, so the
// hot path never reallocates once warm). Canonical {"videos":[a,b,…]}
// parses inline; everything else goes through encoding/json.
func parseBatchBody(b []byte, dst []int) ([]int, error) {
	const pre = `{"videos":[`
	if len(b) > len(pre)+1 && string(b[:len(pre)]) == pre &&
		b[len(b)-1] == '}' && b[len(b)-2] == ']' {
		i, end := len(pre), len(b)-2
		if i == end { // {"videos":[]}
			return dst, nil
		}
		out := dst
		for {
			v, next, ok := parseInt(b, i)
			if !ok {
				out = nil
				break
			}
			out = append(out, int(v))
			i = next
			if i == end {
				return out, nil
			}
			if i >= end || b[i] != ',' {
				out = nil
				break
			}
			i++
		}
		_ = out // fell off the canonical shape; defer to encoding/json
	}
	var req struct {
		Videos *[]int `json:"videos"`
	}
	if err := json.Unmarshal(b, &req); err != nil {
		return nil, fmt.Errorf("serve: batch body: %w", err)
	}
	if req.Videos == nil {
		return nil, errMissingVideos
	}
	return append(dst, *req.Videos...), nil
}

// parseCloseBody decodes a POST /close body. Canonical {"id":N} parses
// inline; everything else goes through encoding/json.
func parseCloseBody(b []byte) (int64, error) {
	const pre = `{"id":`
	if len(b) > len(pre)+1 && string(b[:len(pre)]) == pre && b[len(b)-1] == '}' {
		if v, next, ok := parseInt(b, len(pre)); ok && next == len(b)-1 {
			return v, nil
		}
	}
	var req struct {
		ID *int64 `json:"id"`
	}
	if err := json.Unmarshal(b, &req); err != nil {
		return 0, fmt.Errorf("serve: close body: %w", err)
	}
	if req.ID == nil {
		return 0, errMissingID
	}
	return *req.ID, nil
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters the grammar requires. Error strings are the only free-form text
// on the hot path, and only on already-failed requests, so clarity beats
// cleverness here.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for _, r := range s {
		switch {
		case r == '"':
			dst = append(dst, '\\', '"')
		case r == '\\':
			dst = append(dst, '\\', '\\')
		case r == '\n':
			dst = append(dst, '\\', 'n')
		case r == '\r':
			dst = append(dst, '\\', 'r')
		case r == '\t':
			dst = append(dst, '\\', 't')
		case r < 0x20:
			dst = append(dst, fmt.Sprintf(`\u%04x`, r)...)
		default:
			dst = utf8.AppendRune(dst, r)
		}
	}
	return append(dst, '"')
}

// appendSessionInfo appends the accepted-session response body — the same
// shape encoding/json produces for SessionInfo, so fast and mux routes are
// interchangeable on the wire.
func appendSessionInfo(dst []byte, info SessionInfo) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendInt(dst, info.ID, 10)
	dst = append(dst, `,"video":`...)
	dst = strconv.AppendInt(dst, int64(info.Video), 10)
	dst = append(dst, `,"server":`...)
	dst = strconv.AppendInt(dst, int64(info.Server), 10)
	dst = append(dst, `,"source":`...)
	dst = strconv.AppendInt(dst, int64(info.Source), 10)
	dst = append(dst, `,"rate_bps":`...)
	dst = strconv.AppendInt(dst, info.RateBps, 10)
	dst = append(dst, `,"redirected":`...)
	dst = strconv.AppendBool(dst, info.Redirected)
	dst = append(dst, `,"expires_in_s":`...)
	dst = strconv.AppendFloat(dst, info.ExpiresInS, 'g', -1, 64)
	return append(dst, '}')
}

// appendOutcome appends the refusal/error envelope ({"outcome":…} with an
// optional "error" key) — the errorBody shape without the reflection.
func appendOutcome(dst []byte, out Outcome, errMsg string) []byte {
	dst = append(dst, '{')
	if out != "" {
		dst = append(dst, `"outcome":`...)
		dst = appendJSONString(dst, string(out))
	}
	if errMsg != "" {
		if out != "" {
			dst = append(dst, ',')
		}
		dst = append(dst, `"error":`...)
		dst = appendJSONString(dst, errMsg)
	}
	return append(dst, '}')
}

// appendOpenResult appends one admission decision as a response body: the
// session info when accepted, the outcome envelope otherwise. It is the
// element encoder of the batch response and the whole body of /open.
func appendOpenResult(dst []byte, info SessionInfo, out Outcome, err error) []byte {
	if err != nil {
		return appendOutcome(dst, out, err.Error())
	}
	if out == OutcomeAccepted {
		return appendSessionInfo(dst, info)
	}
	return appendOutcome(dst, out, "")
}
