package serve

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// renderString renders the metrics against the micro test cluster.
func renderString(t *testing.T, m *Metrics, policy string) string {
	t.Helper()
	var sb strings.Builder
	m.Render(&sb, newTestCluster(t, 0), 0, policy)
	return sb.String()
}

// promValue extracts the value of an exactly-matching sample line.
func promValue(t *testing.T, exposition, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("exposition has no sample %q:\n%s", sample, exposition)
	return 0
}

// TestRenderEscapesLabels: label values render with %q, so quotes and
// backslashes in a policy name cannot corrupt the exposition.
func TestRenderEscapesLabels(t *testing.T) {
	out := renderString(t, NewMetrics(8), `po"li\cy`)
	want := `vod_policy_info{policy="po\"li\\cy"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("exposition lacks escaped label %s:\n%s", want, out)
	}
}

// TestRenderLatencyHistogram: the admission-latency histogram renders
// cumulatively — non-decreasing buckets, +Inf equal to _count, and _sum
// equal to the observed total.
func TestRenderLatencyHistogram(t *testing.T) {
	m := NewMetrics(8)
	lats := []time.Duration{
		50 * time.Microsecond, // below the first bucket edge
		3 * time.Millisecond,
		3 * time.Millisecond,
		40 * time.Millisecond,
		10 * time.Second, // beyond the last edge: only +Inf
	}
	for _, lat := range lats {
		m.Decision(true, false, false, lat)
	}
	out := renderString(t, m, "p")

	var prev float64 = -1
	buckets := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "vod_admission_latency_seconds_bucket{") {
			continue
		}
		buckets++
		_, val, ok := strings.Cut(line, "} ")
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("cumulative bucket decreased (%g after %g):\n%s", v, prev, out)
		}
		prev = v
	}
	if buckets != len(latencyBuckets)+1 {
		t.Fatalf("got %d bucket lines, want %d", buckets, len(latencyBuckets)+1)
	}
	count := promValue(t, out, "vod_admission_latency_seconds_count")
	if prev != count || count != float64(len(lats)) {
		t.Fatalf("+Inf bucket %g, _count %g, observations %d — all must agree", prev, count, len(lats))
	}
	var wantSum float64
	for _, lat := range lats {
		wantSum += lat.Seconds()
	}
	if got := promValue(t, out, "vod_admission_latency_seconds_sum"); got != wantSum {
		t.Fatalf("_sum = %g, want %g", got, wantSum)
	}
}

// TestRenderCountersMonotonic: outcome counters only grow across renders,
// and each decision lands in exactly one outcome.
func TestRenderCountersMonotonic(t *testing.T) {
	m := NewMetrics(8)
	m.Decision(true, false, false, time.Millisecond)
	m.Decision(false, false, false, time.Millisecond)
	first := renderString(t, m, "p")
	acc1 := promValue(t, first, `vod_requests_total{outcome="accepted"}`)
	rej1 := promValue(t, first, `vod_requests_total{outcome="rejected"}`)
	if acc1 != 1 || rej1 != 1 {
		t.Fatalf("after one accept + one reject: accepted=%g rejected=%g", acc1, rej1)
	}

	m.Decision(true, true, false, time.Millisecond)
	m.Decision(false, false, true, time.Millisecond)
	second := renderString(t, m, "p")
	for _, sample := range []string{
		`vod_requests_total{outcome="accepted"}`,
		`vod_requests_total{outcome="rejected"}`,
		"vod_rejected_draining_total",
		"vod_redirected_total",
		"vod_admission_latency_seconds_count",
	} {
		if promValue(t, second, sample) < promValue(t, first, sample) {
			t.Fatalf("%s decreased between renders", sample)
		}
	}
	if got := promValue(t, second, `vod_requests_total{outcome="accepted"}`); got != 2 {
		t.Fatalf("accepted = %g, want 2", got)
	}
	if got := promValue(t, second, "vod_redirected_total"); got != 1 {
		t.Fatalf("redirected = %g, want 1", got)
	}
	if got := promValue(t, second, "vod_rejected_draining_total"); got != 1 {
		t.Fatalf("draining = %g, want 1", got)
	}
}

// TestRenderQueueDepth: the queue-depth histogram renders when constructed
// via NewMetrics and reflects ObserveQueueDepth calls; the zero Metrics
// value renders without it (and without panicking).
func TestRenderQueueDepth(t *testing.T) {
	m := NewMetrics(8)
	m.ObserveQueueDepth(0)
	m.ObserveQueueDepth(3)
	out := renderString(t, m, "p")
	if !strings.Contains(out, "# TYPE vod_queue_depth histogram\n") {
		t.Fatalf("exposition lacks the queue-depth histogram:\n%s", out)
	}
	if got := promValue(t, out, "vod_queue_depth_count"); got != 2 {
		t.Fatalf("vod_queue_depth_count = %g, want 2", got)
	}
	if got := promValue(t, out, "vod_queue_depth_sum"); got != 3 {
		t.Fatalf("vod_queue_depth_sum = %g, want 3", got)
	}

	var zero Metrics
	zero.ObserveQueueDepth(1) // nil inner histogram: must be a no-op
	out = renderString(t, &zero, "p")
	if strings.Contains(out, "vod_queue_depth") {
		t.Fatalf("zero-value Metrics should skip the queue-depth family:\n%s", out)
	}
}
