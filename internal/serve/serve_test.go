package serve

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
)

// testProblem: 3 videos, 2 servers, 10 Mb/s links, 4 Mb/s videos — each
// server carries at most 2 concurrent streams, the same micro-cluster the
// cluster package tests use so behaviors stay comparable.
func testProblem(t testing.TB, backbone float64) *core.Problem {
	t.Helper()
	c := core.Catalog{
		{ID: 0, Popularity: 0.5, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 1, Popularity: 0.3, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 2, Popularity: 0.2, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         2,
		StoragePerServer:   2 * c[0].SizeBytes(),
		BandwidthPerServer: 10 * core.Mbps,
		ArrivalRate:        1.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
		BackboneBandwidth:  backbone,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// testLayout: v0 on both servers, v1 on s0 only, v2 on s1 only.
func testLayout(t testing.TB) *core.Layout {
	t.Helper()
	l := core.NewLayout(3)
	l.Replicas = []int{2, 1, 1}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 0}, {2, 1}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func newTestCluster(t testing.TB, backbone float64) *Cluster {
	t.Helper()
	c, err := NewCluster(testProblem(t, backbone), testLayout(t))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTryReserveNeverOversubscribes is the CAS invariant under contention:
// many goroutines race for a 2-slot link and exactly 2 win; releasing
// returns the accounting to zero.
func TestTryReserveNeverOversubscribes(t *testing.T) {
	c := newTestCluster(t, 0)
	rate := c.Rate(0)
	const racers = 64
	var wg sync.WaitGroup
	wins := make(chan struct{}, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.TryReserve(0, rate) {
				wins <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(wins)
	won := 0
	for range wins {
		won++
	}
	if won != 2 {
		t.Fatalf("%d reservations won on a 2-slot link", won)
	}
	if got := c.Used(0); got != 2*rate {
		t.Fatalf("used = %d, want %d", got, 2*rate)
	}
	c.Release(0, rate)
	c.Release(0, rate)
	if got := c.Used(0); got != 0 {
		t.Fatalf("used = %d after full release, want 0", got)
	}
	if got := c.Active(0); got != 0 {
		t.Fatalf("active = %d after full release, want 0", got)
	}
}

// TestPolicyAdmitUntilSaturated: every policy admits exactly the cluster's
// stream capacity for v0 (2 per holder), then rejects, and recovers a slot
// on release.
func TestPolicyAdmitUntilSaturated(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			c := newTestCluster(t, 0)
			pol, err := NewPolicy(name, c)
			if err != nil {
				t.Fatal(err)
			}
			var grants []Grant
			for i := 0; i < 4; i++ {
				g, ok := pol.Admit(0)
				if !ok {
					t.Fatalf("admission %d rejected below capacity", i)
				}
				grants = append(grants, g)
			}
			if _, ok := pol.Admit(0); ok {
				t.Fatal("admission beyond cluster capacity")
			}
			pol.Release(grants[0])
			// Static round-robin only tries the rotation's designated
			// holder, so the freed slot may take a full rotation to reach.
			var g Grant
			ok := false
			for i := 0; i < 2 && !ok; i++ {
				g, ok = pol.Admit(0)
			}
			if !ok {
				t.Fatal("admission after release rejected for a full rotation")
			}
			pol.Release(g)
			for _, g := range grants[1:] {
				pol.Release(g)
			}
			for s := 0; s < c.Servers(); s++ {
				if c.Used(s) != 0 {
					t.Fatalf("server %d used = %d after full release", s, c.Used(s))
				}
			}
		})
	}
	if _, err := NewPolicy("nope", newTestCluster(t, 0)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestStaticRRMatchesSimPolicy: the lock-free static round-robin makes the
// same sequential accept/reject and placement decisions as the locked
// adapter over the simulator's actual scheduler.
func TestStaticRRMatchesSimPolicy(t *testing.T) {
	fast, err := NewPolicy("static-rr", newTestCluster(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewPolicy("sim:static-rr", newTestCluster(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	videos := []int{0, 1, 0, 2, 0, 0, 1, 2, 0, 1, 2, 0}
	for i, v := range videos {
		fg, fok := fast.Admit(v)
		sg, sok := slow.Admit(v)
		if fok != sok {
			t.Fatalf("request %d (video %d): lock-free ok=%v, sim ok=%v", i, v, fok, sok)
		}
		if fok && fg.Server != sg.Server {
			t.Fatalf("request %d (video %d): lock-free server %d, sim server %d", i, v, fg.Server, sg.Server)
		}
	}
}

// TestServerSessionLifecycle: open → natural expiry under compression
// releases the reservation and counts a completion.
func TestServerSessionLifecycle(t *testing.T) {
	// 5400 s video at 100000× compression ≈ 54 ms of wall time.
	srv, err := New(testProblem(t, 0), testLayout(t), Config{Compress: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	info, outcome, err := srv.Open(0)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("open: outcome %q, err %v", outcome, err)
	}
	if info.ExpiresInS <= 0 || info.ExpiresInS > 1 {
		t.Fatalf("expires_in_s = %g, want ≈0.054", info.ExpiresInS)
	}
	if srv.Active() != 1 {
		t.Fatalf("active = %d, want 1", srv.Active())
	}
	waitUntil(t, 2*time.Second, "session expiry", func() bool { return srv.Active() == 0 })
	if got := srv.Metrics().completed.Load(); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
	if got := srv.Cluster().Used(info.Server); got != 0 {
		t.Fatalf("server %d used = %d after expiry", info.Server, got)
	}
}

// TestServerClose: an early client close cancels the session exactly once.
func TestServerClose(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	info, outcome, err := srv.Open(0)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("open: outcome %q, err %v", outcome, err)
	}
	if !srv.Close(info.ID) {
		t.Fatal("close reported no such session")
	}
	waitUntil(t, 2*time.Second, "session teardown", func() bool { return srv.Active() == 0 })
	if srv.Close(info.ID) {
		t.Fatal("second close found the session again")
	}
	if got := srv.Metrics().canceled.Load(); got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
	if got := srv.Cluster().Used(info.Server); got != 0 {
		t.Fatalf("used = %d after close", got)
	}
}

// TestOpenRejectsBadVideo: out-of-catalog ranks error without touching the
// admission counters.
func TestOpenRejectsBadVideo(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	for _, v := range []int{-1, 3, 1 << 20} {
		if _, _, err := srv.Open(v); err == nil {
			t.Fatalf("video %d admitted", v)
		}
	}
	if got := srv.Metrics().badVideo.Load(); got != 3 {
		t.Fatalf("bad_video = %d, want 3", got)
	}
	if got := srv.Metrics().Requests(); got != 0 {
		t.Fatalf("requests = %d, want 0", got)
	}
}

// TestDrainBackendFailover: draining a backend moves its sessions to the
// surviving replica holder when capacity allows and drops them otherwise.
func TestDrainBackendFailover(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	info, outcome, err := srv.Open(0) // least-loaded tie → server 0
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("open: outcome %q, err %v", outcome, err)
	}
	if info.Server != 0 {
		t.Fatalf("session landed on server %d, want 0", info.Server)
	}

	failedOver, dropped, err := srv.DrainBackend(0)
	if err != nil {
		t.Fatal(err)
	}
	if failedOver != 1 || dropped != 0 {
		t.Fatalf("drain: failedOver=%d dropped=%d, want 1,0", failedOver, dropped)
	}
	if got := srv.Cluster().Used(0); got != 0 {
		t.Fatalf("drained server still charged %d", got)
	}
	if got := srv.Cluster().Used(1); got != srv.Cluster().Rate(0) {
		t.Fatalf("survivor charged %d, want %d", got, srv.Cluster().Rate(0))
	}
	if srv.Active() != 1 {
		t.Fatalf("active = %d after failover, want 1", srv.Active())
	}

	// v1 lives only on the drained server: admission must now fail.
	if _, outcome, _ := srv.Open(1); outcome != OutcomeRejected {
		t.Fatalf("video on drained backend: outcome %q, want rejected", outcome)
	}

	// Draining the survivor leaves v0 nowhere to go: the session drops.
	failedOver, dropped, err = srv.DrainBackend(1)
	if err != nil {
		t.Fatal(err)
	}
	if failedOver != 0 || dropped != 1 {
		t.Fatalf("second drain: failedOver=%d dropped=%d, want 0,1", failedOver, dropped)
	}
	waitUntil(t, 2*time.Second, "dropped session teardown", func() bool { return srv.Active() == 0 })
	for s := 0; s < srv.Cluster().Servers(); s++ {
		if got := srv.Cluster().Used(s); got != 0 {
			t.Fatalf("server %d used = %d after drop", s, got)
		}
	}

	if err := srv.RestoreBackend(0); err != nil {
		t.Fatal(err)
	}
	if err := srv.RestoreBackend(1); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := srv.Open(1); err != nil || outcome != OutcomeAccepted {
		t.Fatalf("open after restore: outcome %q, err %v", outcome, err)
	}
	if _, _, err := srv.DrainBackend(7); err == nil {
		t.Fatal("drain of nonexistent backend accepted")
	}
}

// TestDrainBackendSimPolicy: the locked sim-parity policy mirrors drain and
// failover through the real cluster.State without leaking accounting.
func TestDrainBackendSimPolicy(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{Policy: "sim:least-loaded"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if _, outcome, err := srv.Open(0); err != nil || outcome != OutcomeAccepted {
		t.Fatalf("open: outcome %q, err %v", outcome, err)
	}
	failedOver, dropped, err := srv.DrainBackend(0)
	if err != nil {
		t.Fatal(err)
	}
	if failedOver+dropped != 1 {
		t.Fatalf("drain settled %d sessions, want 1", failedOver+dropped)
	}
	if got := srv.Cluster().Used(0); got != 0 {
		t.Fatalf("drained server still charged %d", got)
	}
	if failedOver == 1 {
		if got := srv.Cluster().Used(1); got != srv.Cluster().Rate(0) {
			t.Fatalf("survivor charged %d, want %d", got, srv.Cluster().Rate(0))
		}
	}
}

// TestServerDrainGraceful: daemon drain refuses new work, waits for active
// sessions, and a timed-out drain force-releases everything.
func TestServerDrainGraceful(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{Compress: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	for i := 0; i < 2; i++ {
		if _, outcome, err := srv.Open(0); err != nil || outcome != OutcomeAccepted {
			t.Fatalf("open %d: outcome %q, err %v", i, outcome, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if srv.Active() != 0 {
		t.Fatalf("active = %d after drain", srv.Active())
	}
	if _, outcome, _ := srv.Open(0); outcome != OutcomeDraining {
		t.Fatalf("open during drain: outcome %q, want draining", outcome)
	}
	if got := srv.Metrics().draining.Load(); got != 1 {
		t.Fatalf("draining rejections = %d, want 1", got)
	}
}

func TestServerDrainTimeout(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{}) // real-time: sessions outlive the test
	if err != nil {
		t.Fatal(err)
	}
	info, outcome, err := srv.Open(0)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("open: outcome %q, err %v", outcome, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("drain of an immortal session reported success")
	}
	if srv.Active() != 0 {
		t.Fatalf("active = %d after forced drain", srv.Active())
	}
	if got := srv.Cluster().Used(info.Server); got != 0 {
		t.Fatalf("used = %d after forced drain", got)
	}
}

// TestSimPolicyRedirect: with backbone bandwidth, the sim-parity policy
// serves an exhausted video's requests over the backbone like the
// simulator's redirect scheduler, and the backbone gauge tracks it.
func TestSimPolicyRedirect(t *testing.T) {
	srv, err := New(testProblem(t, 100*core.Mbps), testLayout(t), Config{Policy: "sim:least-loaded"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if name := srv.PolicyName(); !strings.Contains(name, "redirect") {
		t.Fatalf("policy %q lacks redirect with a backbone", name)
	}
	// v1 lives only on s0 (2 slots). The third request must cross the
	// backbone to s1.
	for i := 0; i < 2; i++ {
		info, outcome, err := srv.Open(1)
		if err != nil || outcome != OutcomeAccepted || info.Redirected {
			t.Fatalf("open %d: outcome %q, redirected=%v, err %v", i, outcome, info.Redirected, err)
		}
	}
	info, outcome, err := srv.Open(1)
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("redirect open: outcome %q, err %v", outcome, err)
	}
	if !info.Redirected {
		t.Fatal("third v1 session was not redirected")
	}
	if got := srv.Cluster().BackboneUsed(); got != srv.Cluster().Rate(1) {
		t.Fatalf("backbone used = %d, want %d", got, srv.Cluster().Rate(1))
	}
	if !srv.Close(info.ID) {
		t.Fatal("close failed")
	}
	waitUntil(t, 2*time.Second, "redirected session teardown", func() bool {
		return srv.Cluster().BackboneUsed() == 0
	})
}

// TestConcurrentOpenCloseStress drives many concurrent admissions, closes,
// and natural expiries; afterwards every gauge must read zero — the
// accounting audit the race detector runs alongside.
func TestConcurrentOpenCloseStress(t *testing.T) {
	p := testProblem(t, 0)
	p.BandwidthPerServer = 400 * core.Mbps // 100 slots per server
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"least-loaded", "static-rr", "sim:first-available"} {
		t.Run(policy, func(t *testing.T) {
			srv, err := New(p, testLayout(t), Config{Policy: policy, Compress: 2e5})
			if err != nil {
				t.Fatal(err)
			}
			const workers, perWorker = 8, 40
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						info, outcome, err := srv.Open((w + i) % 3)
						if err != nil {
							t.Errorf("open: %v", err)
							return
						}
						if outcome == OutcomeAccepted && i%2 == 0 {
							srv.Close(info.ID)
						}
					}
				}(w)
			}
			wg.Wait()
			waitUntil(t, 5*time.Second, "all sessions to end", func() bool { return srv.Active() == 0 })
			for s := 0; s < srv.Cluster().Servers(); s++ {
				if got := srv.Cluster().Used(s); got != 0 {
					t.Fatalf("server %d used = %d after all sessions ended", s, got)
				}
				if got := srv.Cluster().Active(s); got != 0 {
					t.Fatalf("server %d active = %d after all sessions ended", s, got)
				}
			}
			m := srv.Metrics()
			if m.completed.Load()+m.canceled.Load() != m.accepted.Load() {
				t.Fatalf("ended %d+%d sessions, accepted %d",
					m.completed.Load(), m.canceled.Load(), m.accepted.Load())
			}
			srv.Shutdown()
		})
	}
}

// TestConcurrentAdmissionAgainstSequentialCapacity: under full contention
// the admitted count can never exceed what the sequential cluster.State
// would admit, and with releases disabled both sides admit exactly the
// cluster's stream capacity.
func TestConcurrentAdmissionAgainstSequentialCapacity(t *testing.T) {
	c := newTestCluster(t, 0)
	pol, err := NewPolicy("least-loaded", c)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cluster.New(testProblem(t, 0), testLayout(t))
	if err != nil {
		t.Fatal(err)
	}
	seq := 0
	for {
		if _, ok := st.Admit(0, cluster.LeastLoaded{}); !ok {
			break
		}
		seq++
	}
	var wg sync.WaitGroup
	admitted := make(chan Grant, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if g, ok := pol.Admit(0); ok {
				admitted <- g
			}
		}()
	}
	wg.Wait()
	close(admitted)
	conc := 0
	for range admitted {
		conc++
	}
	if conc != seq {
		t.Fatalf("concurrent policy admitted %d, sequential state admits %d", conc, seq)
	}
}

func TestNewClusterRejectsInvalidLayout(t *testing.T) {
	p := testProblem(t, 0)
	if _, err := NewCluster(p, core.NewLayout(3)); err == nil {
		t.Fatal("layout with no placements accepted")
	}
}

func TestWallDurationCompression(t *testing.T) {
	srv, err := New(testProblem(t, 0), testLayout(t), Config{Compress: 5400})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if got := srv.wallDuration(0); got != time.Second {
		t.Fatalf("wall duration = %s, want 1s", got)
	}
	capped, err := New(testProblem(t, 0), testLayout(t), Config{MaxSessionWall: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer capped.Shutdown()
	if got := capped.wallDuration(0); got != 100*time.Millisecond {
		t.Fatalf("capped wall duration = %s, want 100ms", got)
	}
	if _, err := New(testProblem(t, 0), testLayout(t), Config{Compress: -1}); err == nil {
		t.Fatal("negative compression accepted")
	}
}

func TestPolicyNamesResolve(t *testing.T) {
	for _, name := range PolicyNames() {
		if _, err := NewPolicy(name, newTestCluster(t, 0)); err != nil {
			t.Fatalf("advertised policy %q does not resolve: %v", name, err)
		}
	}
}
