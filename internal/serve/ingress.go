package serve

// Sharded HTTP ingress (DESIGN.md §16): N SO_REUSEPORT listeners bound to
// one address, each running its own accept loop, so inbound connections
// spread across kernel accept queues instead of funneling through one
// listener goroutine. Each connection is served by one goroutine running a
// hand-rolled HTTP/1.1 loop: pooled read/write buffers, keep-alive with
// pipelining (responses accumulate while more requests are already
// buffered, and flush before the loop would block), and the wire.go codecs
// on the /open, /open/batch, and /close hot paths — no encoding/json, no
// net/http machinery, no per-request goroutine. Admissions route through
// Server.OpenRetry, which under sharded dispatch lands each decision in the
// owning shard's mailbox — shard-affine by construction. Every other route
// (admin, /metrics, /fault, …) is replayed into a net/http fallback handler
// and answered with Connection: close; admin traffic is rare enough that
// correctness beats reuse there.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

const (
	// defaultMaxBatch caps videos per POST /open/batch request.
	defaultMaxBatch = 256
	// defaultMaxBody caps a hot-path request body; larger bodies are
	// refused with 413 and the connection closed.
	defaultMaxBody = 1 << 20
	// flushBytes forces a flush mid-pipeline once this many response bytes
	// accumulate, bounding per-connection buffer growth under deep
	// pipelining.
	flushBytes = 32 << 10
)

// IngressConfig tunes the sharded ingress.
type IngressConfig struct {
	// Listeners is the number of SO_REUSEPORT accept loops; 0 means 1.
	// Values above 1 require a platform with SO_REUSEPORT support (Linux).
	Listeners int
	// MaxBatch caps videos per batch request; 0 means 256.
	MaxBatch int
	// MaxBody caps a hot-path request body in bytes; 0 means 1 MiB.
	MaxBody int
	// Fallback serves every request that is not a hot-path admission call.
	// Nil uses the server's own Handler(). The fallback response is sent
	// with Connection: close.
	Fallback http.Handler
}

// Ingress is the sharded, allocation-free HTTP front of a Server. Create
// with NewIngress, bind with Start, stop with Close.
type Ingress struct {
	s        *Server
	fallback http.Handler
	maxBatch int
	maxBody  int
	stats    *HTTPStats

	mu     sync.Mutex
	lns    []net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg      sync.WaitGroup
	bufPool sync.Pool // *connState
}

// connState is the pooled per-connection working set: the read buffer and
// the response, body, and batch scratch slices, so a warm connection serves
// requests without touching the allocator.
type connState struct {
	br   *bufio.Reader
	out  []byte // pending (possibly pipelined) response bytes
	body []byte // request-body scratch
	resp []byte // response-body scratch
	vids []int  // batch-video scratch
}

// NewIngress builds the ingress; Start binds and serves.
func NewIngress(s *Server, cfg IngressConfig) (*Ingress, error) {
	n := cfg.Listeners
	if n <= 0 {
		n = 1
	}
	if n > 1 && !reusePortAvailable {
		return nil, fmt.Errorf("serve: %d ingress listeners need SO_REUSEPORT, unavailable on this platform; run with 1", n)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	maxBody := cfg.MaxBody
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	fb := cfg.Fallback
	if fb == nil {
		fb = s.Handler()
	}
	return &Ingress{
		s: s, fallback: fb,
		maxBatch: maxBatch, maxBody: maxBody,
		stats: NewHTTPStats(n),
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Stats exposes the per-listener instrument panel.
func (g *Ingress) Stats() *HTTPStats { return g.stats }

// Start binds every listener to addr and starts the accept loops. With
// addr's port 0 the first bind picks the port and the remaining listeners
// join it, so "127.0.0.1:0" works for tests and benchmarks. The per-shard
// counters attach to the server's /metrics panel as vod_http_* families.
func (g *Ingress) Start(addr string) (net.Addr, error) {
	n := len(g.stats.ls)
	ln0, err := listenReusePort(addr)
	if err != nil {
		return nil, err
	}
	lns := []net.Listener{ln0}
	for i := 1; i < n; i++ {
		ln, err := listenReusePort(ln0.Addr().String())
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, fmt.Errorf("serve: ingress listener %d: %w", i, err)
		}
		lns = append(lns, ln)
	}
	g.mu.Lock()
	g.lns = lns
	g.mu.Unlock()
	g.s.met.AttachHTTP(g.stats)
	for i, ln := range lns {
		g.wg.Add(1)
		go g.acceptLoop(i, ln)
	}
	return ln0.Addr(), nil
}

// Addr returns the bound address (nil before Start).
func (g *Ingress) Addr() net.Addr {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.lns) == 0 {
		return nil
	}
	return g.lns[0].Addr()
}

// Close stops the accept loops, closes every live connection, and waits for
// the connection goroutines to exit.
func (g *Ingress) Close() {
	g.mu.Lock()
	g.closed = true
	lns := g.lns
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	g.wg.Wait()
}

// acceptLoop is one listener shard: accept, tune, hand the connection its
// serving goroutine.
func (g *Ingress) acceptLoop(li int, ln net.Listener) {
	defer g.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient accept error (e.g. EMFILE burst)
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.mu.Unlock()
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		g.stats.ls[li].conns.Add(1)
		g.wg.Add(1)
		go g.serveConn(li, conn)
	}
}

func (g *Ingress) getState(conn net.Conn) *connState {
	if v := g.bufPool.Get(); v != nil {
		cs := v.(*connState)
		cs.br.Reset(conn)
		cs.out, cs.body, cs.resp = cs.out[:0], cs.body[:0], cs.resp[:0]
		cs.vids = cs.vids[:0]
		return cs
	}
	return &connState{br: bufio.NewReaderSize(conn, 16<<10)}
}

// serveConn is the per-connection request loop. The flush rule is the
// pipelining contract: a pending response is written out whenever no
// further request bytes are already buffered (the next read would block on
// a client that is itself waiting for us) or the pending bytes passed the
// flush threshold.
func (g *Ingress) serveConn(li int, conn net.Conn) {
	defer g.wg.Done()
	cs := g.getState(conn)
	defer func() {
		g.bufPool.Put(cs)
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		conn.Close()
	}()
	for {
		if len(cs.out) > 0 && (cs.br.Buffered() == 0 || len(cs.out) >= flushBytes) {
			if _, err := conn.Write(cs.out); err != nil {
				return
			}
			cs.out = cs.out[:0]
		}
		if !g.serveOne(li, conn, cs) {
			if len(cs.out) > 0 {
				conn.Write(cs.out)
			}
			return
		}
	}
}

// hot-path routes.
type route uint8

const (
	routeNone route = iota
	routeOpen
	routeBatch
	routeClose
)

// serveOne reads and answers one request, appending the response to cs.out.
// It returns false when the connection must close (read error, protocol
// violation, Connection: close, or a fallback-handled request).
func (g *Ingress) serveOne(li int, conn net.Conn, cs *connState) bool {
	line, err := cs.br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			g.appendReply(cs, http.StatusRequestHeaderFieldsTooLarge,
				appendOutcome(cs.resp[:0], "", "request line too long"), true, false)
		}
		return false // EOF between requests is the normal end of keep-alive
	}
	start := time.Now()
	st := &g.stats.ls[li]
	method, path, ok := parseRequestLine(line)
	if !ok {
		st.parseErrors.Add(1)
		g.appendReply(cs, http.StatusBadRequest,
			appendOutcome(cs.resp[:0], "", "malformed request line"), true, false)
		return false
	}
	r := routeNone
	if string(method) == "POST" {
		switch string(path) {
		case "/open":
			r = routeOpen
		case "/open/batch":
			r = routeBatch
		case "/close":
			r = routeClose
		}
	}
	if r == routeNone {
		st.fallbacks.Add(1)
		g.serveFallback(conn, cs, line)
		return false
	}

	clen, connClose := 0, false
	for {
		h, err := cs.br.ReadSlice('\n')
		if err != nil {
			if err == bufio.ErrBufferFull {
				g.appendReply(cs, http.StatusRequestHeaderFieldsTooLarge,
					appendOutcome(cs.resp[:0], "", "header too long"), true, false)
			}
			return false
		}
		h = trimCRLF(h)
		if len(h) == 0 {
			break
		}
		if v, ok := headerValue(h, "content-length"); ok {
			n, nok := atoiBytes(trimSpaces(v))
			if !nok {
				st.parseErrors.Add(1)
				g.appendReply(cs, http.StatusBadRequest,
					appendOutcome(cs.resp[:0], "", "malformed content-length"), true, false)
				return false
			}
			clen = n
		} else if v, ok := headerValue(h, "connection"); ok {
			if asciiEqualFold(trimSpaces(v), "close") {
				connClose = true
			}
		} else if _, ok := headerValue(h, "transfer-encoding"); ok {
			g.appendReply(cs, http.StatusNotImplemented,
				appendOutcome(cs.resp[:0], "", "chunked bodies not supported on admission paths"), true, false)
			return false
		} else if _, ok := headerValue(h, "expect"); ok {
			g.appendReply(cs, http.StatusExpectationFailed,
				appendOutcome(cs.resp[:0], "", "expectations not supported on admission paths"), true, false)
			return false
		}
	}
	if clen > g.maxBody {
		st.parseErrors.Add(1)
		g.appendReply(cs, http.StatusRequestEntityTooLarge,
			appendOutcome(cs.resp[:0], "", "request body too large"), true, false)
		return false
	}
	if cap(cs.body) < clen {
		cs.body = make([]byte, clen)
	}
	body := cs.body[:clen]
	if _, err := io.ReadFull(cs.br, body); err != nil {
		return false
	}
	st.requests.Add(1)
	switch r {
	case routeOpen:
		g.fastOpen(cs, st, body, connClose)
	case routeBatch:
		g.fastBatch(cs, st, body, connClose)
	case routeClose:
		g.fastClose(cs, st, body, connClose)
	}
	st.latency.Observe(time.Since(start).Seconds())
	return !connClose
}

func (g *Ingress) fastOpen(cs *connState, st *listenerStats, body []byte, connClose bool) {
	v, err := parseOpenBody(body)
	if err != nil {
		st.parseErrors.Add(1)
		cs.resp = appendOutcome(cs.resp[:0], "", err.Error())
		g.appendReply(cs, http.StatusBadRequest, cs.resp, connClose, false)
		return
	}
	info, out, oerr := g.s.OpenRetry(context.Background(), v)
	st.decisions.Add(1)
	status, retry := http.StatusOK, false
	switch {
	case oerr != nil:
		status = http.StatusBadRequest
	case out != OutcomeAccepted:
		status, retry = http.StatusServiceUnavailable, true
	}
	cs.resp = appendOpenResult(cs.resp[:0], info, out, oerr)
	g.appendReply(cs, status, cs.resp, connClose, retry)
}

func (g *Ingress) fastBatch(cs *connState, st *listenerStats, body []byte, connClose bool) {
	vids, err := parseBatchBody(body, cs.vids[:0])
	if err != nil {
		st.parseErrors.Add(1)
		cs.resp = appendOutcome(cs.resp[:0], "", err.Error())
		g.appendReply(cs, http.StatusBadRequest, cs.resp, connClose, false)
		return
	}
	cs.vids = vids
	if len(vids) > g.maxBatch {
		st.parseErrors.Add(1)
		cs.resp = appendOutcome(cs.resp[:0], "",
			fmt.Sprintf("batch of %d exceeds the %d-video cap", len(vids), g.maxBatch))
		g.appendReply(cs, http.StatusBadRequest, cs.resp, connClose, false)
		return
	}
	resp := append(cs.resp[:0], '[')
	for i, v := range vids {
		if i > 0 {
			resp = append(resp, ',')
		}
		info, out, oerr := g.s.OpenRetry(context.Background(), v)
		resp = appendOpenResult(resp, info, out, oerr)
	}
	resp = append(resp, ']')
	cs.resp = resp
	st.decisions.Add(int64(len(vids)))
	st.batches.Add(1)
	g.appendReply(cs, http.StatusOK, resp, connClose, false)
}

func (g *Ingress) fastClose(cs *connState, st *listenerStats, body []byte, connClose bool) {
	id, err := parseCloseBody(body)
	if err != nil {
		st.parseErrors.Add(1)
		cs.resp = appendOutcome(cs.resp[:0], "", err.Error())
		g.appendReply(cs, http.StatusBadRequest, cs.resp, connClose, false)
		return
	}
	if g.s.Close(id) {
		cs.resp = appendOutcome(cs.resp[:0], "closed", "")
		g.appendReply(cs, http.StatusOK, cs.resp, connClose, false)
		return
	}
	cs.resp = appendOutcome(cs.resp[:0], "", "no such session")
	g.appendReply(cs, http.StatusNotFound, cs.resp, connClose, false)
}

// appendReply appends one full HTTP/1.1 response (head + body) to the
// connection's output buffer. body may alias cs.resp; it is copied into
// cs.out after the head.
func (g *Ingress) appendReply(cs *connState, status int, body []byte, connClose, retryAfter bool) {
	out := append(cs.out, "HTTP/1.1 "...)
	out = strconv.AppendInt(out, int64(status), 10)
	out = append(out, ' ')
	out = append(out, http.StatusText(status)...)
	out = append(out, "\r\nContent-Type: application/json\r\nContent-Length: "...)
	out = strconv.AppendInt(out, int64(len(body)), 10)
	out = append(out, '\r', '\n')
	if retryAfter {
		out = append(out, "Retry-After: 1\r\n"...)
	}
	if connClose {
		out = append(out, "Connection: close\r\n"...)
	}
	out = append(out, '\r', '\n')
	cs.out = append(out, body...)
}

// serveFallback replays a non-hot-path request into the net/http fallback
// handler: any pipelined responses flush first (ordering), the consumed
// request line is stitched back in front of the buffered reader, and the
// handler's response goes out with Connection: close.
func (g *Ingress) serveFallback(conn net.Conn, cs *connState, line []byte) {
	if len(cs.out) > 0 {
		if _, err := conn.Write(cs.out); err != nil {
			return
		}
		cs.out = cs.out[:0]
	}
	head := append([]byte(nil), line...)
	req, err := http.ReadRequest(bufio.NewReader(io.MultiReader(bytes.NewReader(head), cs.br)))
	if err != nil {
		body := appendOutcome(nil, "", "bad request")
		fmt.Fprintf(conn, "HTTP/1.1 400 Bad Request\r\nContent-Type: application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s", len(body), body)
		return
	}
	req.RemoteAddr = conn.RemoteAddr().String()
	fw := &fallbackWriter{hdr: make(http.Header)}
	g.fallback.ServeHTTP(fw, req)
	fw.finish(conn)
}

// fallbackWriter buffers a fallback response so it can be framed with an
// explicit Content-Length (the hand-rolled client has no chunked decoder)
// and a Connection: close.
type fallbackWriter struct {
	hdr    http.Header
	status int
	body   bytes.Buffer
}

func (w *fallbackWriter) Header() http.Header { return w.hdr }

func (w *fallbackWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

func (w *fallbackWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.body.Write(b)
}

func (w *fallbackWriter) finish(conn net.Conn) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "HTTP/1.1 %d %s\r\n", w.status, http.StatusText(w.status))
	w.hdr.Del("Content-Length")
	w.hdr.Del("Connection")
	w.hdr.Write(&buf)
	fmt.Fprintf(&buf, "Content-Length: %d\r\nConnection: close\r\n\r\n", w.body.Len())
	if _, err := conn.Write(buf.Bytes()); err != nil {
		return
	}
	conn.Write(w.body.Bytes())
}

// --- byte-level HTTP helpers (shared with the fast client) ---

// parseRequestLine splits "METHOD SP PATH SP HTTP/1.1\r\n". Only HTTP/1.1
// parses as hot-eligible; anything else (including HTTP/1.0) goes through
// the fallback, which handles legacy semantics correctly.
func parseRequestLine(line []byte) (method, path []byte, ok bool) {
	line = trimCRLF(line)
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 <= 0 {
		return nil, nil, false
	}
	rest := line[sp1+1:]
	sp2 := bytes.IndexByte(rest, ' ')
	if sp2 <= 0 {
		return nil, nil, false
	}
	if string(rest[sp2+1:]) != "HTTP/1.1" {
		return nil, nil, false
	}
	return line[:sp1], rest[:sp2], true
}

// trimCRLF strips one trailing \r\n or \n.
func trimCRLF(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// trimSpaces strips leading/trailing spaces and tabs (OWS).
func trimSpaces(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// headerValue matches "key: value" case-insensitively on the (lowercase)
// key and returns the raw value bytes.
func headerValue(h []byte, key string) ([]byte, bool) {
	if len(h) < len(key)+1 || h[len(key)] != ':' {
		return nil, false
	}
	if !asciiEqualFold(h[:len(key)], key) {
		return nil, false
	}
	return h[len(key)+1:], true
}

// asciiEqualFold compares b to the lowercase ASCII string s ignoring case.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}
