package serve

import (
	"context"
	"sync"
	"time"

	"vodcluster/internal/obs"
)

// Prober checks one backend's liveness. The faults.Injector is the standard
// implementation (probes observe injected crashes and slowness); production
// deployments would probe the real media servers.
type Prober interface {
	// Probe returns nil when backend b is healthy. It must honor ctx's
	// deadline: a probe outliving it counts as failed.
	Probe(ctx context.Context, b int) error
}

// HealthConfig tunes the health-check loop. Durations are wall-clock — the
// probe loop runs on real time regardless of the daemon's compression
// factor, like any external monitoring would.
type HealthConfig struct {
	// Interval is the probe cadence per backend (default 1 s).
	Interval time.Duration
	// Timeout bounds one probe (default Interval/2).
	Timeout time.Duration
	// FailThreshold is how many consecutive probe failures confirm a crash
	// (default 3). The first failure moves an Up backend to Suspect, so a
	// single dropped probe never evicts sessions.
	FailThreshold int
	// RecoverThreshold is how many consecutive clean probes promote a
	// Suspect or Recovering backend back to Up (default 2) — the flap
	// damping that keeps a blinking backend from oscillating in and out of
	// the placement set.
	RecoverThreshold int
}

// withDefaults fills zero-valued tunables.
func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval / 2
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RecoverThreshold <= 0 {
		c.RecoverThreshold = 2
	}
	return c
}

// HealthChecker is the heartbeat loop driving the backend state machine:
//
//	up → suspect       first failed probe
//	suspect → down     FailThreshold consecutive failures (evicts sessions)
//	suspect → up       RecoverThreshold consecutive successes
//	down → recovering  a probe succeeds again (RecoverBackend)
//	recovering → up    RecoverThreshold consecutive successes
//	recovering → down  any failed probe
//
// Operator-driven Draining backends are skipped entirely — drain is not a
// health condition. One goroutine probes every backend each Interval;
// transitions go through the Server so evictions, policy mirrors, and the
// repairer fire exactly as they do for manual FailBackend/RecoverBackend.
type HealthChecker struct {
	s      *Server
	prober Prober
	cfg    HealthConfig

	fails []int // consecutive probe failures per backend
	oks   []int // consecutive probe successes per backend

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHealthChecker attaches a health-check loop to srv. The checker is
// created stopped; call Start. Attaching a checker changes RecoverBackend's
// target state to Recovering, since the prober now owns the promotion to Up.
func NewHealthChecker(srv *Server, prober Prober, cfg HealthConfig) *HealthChecker {
	h := &HealthChecker{
		s:      srv,
		prober: prober,
		cfg:    cfg.withDefaults(),
		fails:  make([]int, srv.Cluster().Servers()),
		oks:    make([]int, srv.Cluster().Servers()),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	srv.hc.Store(h)
	return h
}

// Config returns the defaulted tuning the checker runs with.
func (h *HealthChecker) Config() HealthConfig { return h.cfg }

// Start launches the probe loop.
func (h *HealthChecker) Start() {
	go func() {
		defer close(h.done)
		tick := time.NewTicker(h.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				h.sweep()
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it.
func (h *HealthChecker) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// sweep probes every backend once and applies the state transitions.
func (h *HealthChecker) sweep() {
	c := h.s.Cluster()
	for b := 0; b < c.Servers(); b++ {
		if c.State(b) == BackendDraining {
			continue // operator-owned; not a health question
		}
		ctx, cancel := context.WithTimeout(context.Background(), h.cfg.Timeout)
		err := h.prober.Probe(ctx, b)
		cancel()
		h.s.met.Probe(err == nil)
		if err != nil {
			h.observeFailure(b, err)
		} else {
			h.observeSuccess(b)
		}
	}
}

func (h *HealthChecker) observeFailure(b int, err error) {
	h.oks[b] = 0
	h.fails[b]++
	c := h.s.Cluster()
	switch c.State(b) {
	case BackendUp:
		if h.fails[b] >= h.cfg.FailThreshold {
			h.confirmDown(b, err)
			return
		}
		if c.CASState(b, BackendUp, BackendSuspect) {
			h.s.tracer.Record(obs.Event{TS: h.s.tracer.NowNS(), Kind: obs.KindHealth,
				Server: b, Detail: "suspect: " + err.Error()})
		}
	case BackendSuspect:
		if h.fails[b] >= h.cfg.FailThreshold {
			h.confirmDown(b, err)
		}
	case BackendRecovering:
		// A backend failing probes during its probation goes straight back
		// down; it has already shown it cannot be trusted.
		h.confirmDown(b, err)
	case BackendDown:
		// Still down; keep counting so recovery needs fresh successes.
	}
}

func (h *HealthChecker) observeSuccess(b int) {
	h.fails[b] = 0
	h.oks[b]++
	c := h.s.Cluster()
	switch c.State(b) {
	case BackendSuspect:
		if h.oks[b] >= h.cfg.RecoverThreshold && c.CASState(b, BackendSuspect, BackendUp) {
			h.s.tracer.Record(obs.Event{TS: h.s.tracer.NowNS(), Kind: obs.KindHealth,
				Server: b, Detail: "up"})
		}
	case BackendRecovering:
		if h.oks[b] >= h.cfg.RecoverThreshold && c.CASState(b, BackendRecovering, BackendUp) {
			h.s.tracer.Record(obs.Event{TS: h.s.tracer.NowNS(), Kind: obs.KindHealth,
				Server: b, Detail: "up"})
		}
	case BackendDown:
		// The backend answers again: put it on probation. RecoverBackend
		// routes through the Server so policy mirrors stay in step; the
		// clean probe that triggered this counts toward the threshold.
		h.oks[b] = 1
		_ = h.s.RecoverBackend(b)
	}
}

// confirmDown settles a confirmed crash through the Server's failure path.
// Losing the race to a concurrent manual FailBackend is fine — the crash
// was settled exactly once either way.
func (h *HealthChecker) confirmDown(b int, err error) {
	h.oks[b] = 0
	if _, _, ferr := h.s.FailBackend(b); ferr == nil {
		h.s.tracer.Record(obs.Event{TS: h.s.tracer.NowNS(), Kind: obs.KindHealth,
			Server: b, Detail: "confirmed down: " + err.Error()})
	}
}
