// Package config defines the JSON scenario format consumed by the command
// line tools and the paper-default parameters reconstructed from the
// evaluation section (§5): 8 homogeneous servers with 1.8 Gb/s outgoing
// links, 100 videos of 90 minutes encoded at the MPEG-2 rate of 4 Mb/s
// (2.7 GB each), Zipf-like popularity, Poisson arrivals with a peak rate of
// 40 requests/minute (the rate that exactly consumes the cluster's
// 3600-stream capacity over the 90-minute peak period), and a simple
// bandwidth-only admission control.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"vodcluster/internal/core"
)

// Scenario is the serializable description of one experiment setup. Units
// are the human-friendly ones the paper uses; Problem() converts to the SI
// units of the core model.
type Scenario struct {
	// Servers is N.
	Servers int `json:"servers"`
	// StorageGB is each server's storage in gigabytes. Zero means "derive
	// from Degree": just enough cluster storage for Degree replicas per
	// video, the way the paper varies storage to sweep the replication
	// degree.
	StorageGB float64 `json:"storage_gb"`
	// BandwidthGbps is each server's outgoing bandwidth in Gb/s.
	BandwidthGbps float64 `json:"bandwidth_gbps"`
	// BackboneGbps is the cluster-internal backbone bandwidth for request
	// redirection; zero disables redirection.
	BackboneGbps float64 `json:"backbone_gbps,omitempty"`
	// ServerStorageGB and ServerBandwidthGbps optionally give per-server
	// capacities for heterogeneous clusters; when set they must have
	// Servers entries and override the scalar fields.
	ServerStorageGB     []float64 `json:"server_storage_gb,omitempty"`
	ServerBandwidthGbps []float64 `json:"server_bandwidth_gbps,omitempty"`

	// Videos is M and Theta the Zipf skew.
	Videos int     `json:"videos"`
	Theta  float64 `json:"theta"`
	// BitRateMbps is the fixed encoding rate in Mb/s.
	BitRateMbps float64 `json:"bitrate_mbps"`
	// DurationMin is the video length in minutes.
	DurationMin float64 `json:"duration_min"`

	// LambdaPerMin is the peak arrival rate in requests/minute; PeakMin
	// the peak-period length in minutes (zero means DurationMin).
	LambdaPerMin float64 `json:"lambda_per_min"`
	PeakMin      float64 `json:"peak_min,omitempty"`

	// Degree is the target replication degree (average replicas/video).
	Degree float64 `json:"degree"`
	// Replicator, Placer, Scheduler select algorithms by name:
	// adams | zipf | classification | uniform;
	// slf | roundrobin | greedy | random;
	// static-rr | first-available | least-loaded.
	Replicator string `json:"replicator"`
	Placer     string `json:"placer"`
	Scheduler  string `json:"scheduler,omitempty"`

	// Runs is the number of simulation replications; Seed the master seed.
	Runs int   `json:"runs"`
	Seed int64 `json:"seed"`
}

// Paper returns the reconstructed paper-default scenario. The figure axes in
// the available text are OCR-damaged; EXPERIMENTS.md records which values
// were reconstructed and how.
func Paper() Scenario {
	return Scenario{
		Servers:       8,
		BandwidthGbps: 1.8,
		Videos:        100,
		Theta:         0.75,
		BitRateMbps:   4,
		DurationMin:   90,
		LambdaPerMin:  40,
		Degree:        1.2,
		Replicator:    "zipf",
		Placer:        "slf",
		Scheduler:     "static-rr",
		Runs:          20,
		Seed:          42,
	}
}

// Problem converts the scenario into a core problem.
func (s Scenario) Problem() (*core.Problem, error) {
	if s.Videos <= 0 {
		return nil, fmt.Errorf("config: videos must be positive")
	}
	catalog, err := core.NewCatalog(s.Videos, s.Theta, s.BitRateMbps*core.Mbps, s.DurationMin*core.Minute)
	if err != nil {
		return nil, err
	}
	peak := s.PeakMin
	if peak == 0 {
		peak = s.DurationMin
	}
	storage := s.StorageGB * core.GB
	if storage == 0 {
		if s.Degree < 1 {
			return nil, fmt.Errorf("config: need StorageGB or Degree ≥ 1 to size storage")
		}
		// Smallest per-server storage (in whole replicas) that admits
		// Degree replicas per video across the cluster.
		videoSize := catalog[0].SizeBytes()
		perServer := math.Ceil(s.Degree * float64(s.Videos) / float64(s.Servers))
		storage = perServer * videoSize
	}
	p := &core.Problem{
		Catalog:            catalog,
		NumServers:         s.Servers,
		StoragePerServer:   storage,
		BandwidthPerServer: s.BandwidthGbps * core.Gbps,
		ArrivalRate:        s.LambdaPerMin / core.Minute,
		PeakPeriod:         peak * core.Minute,
		BackboneBandwidth:  s.BackboneGbps * core.Gbps,
	}
	if s.ServerStorageGB != nil {
		p.ServerStorage = make([]float64, len(s.ServerStorageGB))
		for i, g := range s.ServerStorageGB {
			p.ServerStorage[i] = g * core.GB
		}
	}
	if s.ServerBandwidthGbps != nil {
		p.ServerBandwidth = make([]float64, len(s.ServerBandwidthGbps))
		for i, g := range s.ServerBandwidthGbps {
			p.ServerBandwidth[i] = g * core.Gbps
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Save writes the scenario as indented JSON.
func (s Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Load parses a scenario from JSON, filling unset algorithm names with the
// paper defaults.
func Load(r io.Reader) (Scenario, error) {
	s := Scenario{}
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return s, fmt.Errorf("config: decoding scenario: %w", err)
	}
	def := Paper()
	if s.Replicator == "" {
		s.Replicator = def.Replicator
	}
	if s.Placer == "" {
		s.Placer = def.Placer
	}
	if s.Scheduler == "" {
		s.Scheduler = def.Scheduler
	}
	if s.Runs == 0 {
		s.Runs = def.Runs
	}
	return s, nil
}
