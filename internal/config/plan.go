package config

import (
	"encoding/json"
	"fmt"
	"io"

	"vodcluster/internal/core"
)

// Plan is a persisted replication+placement decision: the scenario it was
// computed for and the resulting layout. vodplace writes plans; vodsim can
// replay them, so an operator can audit or pin a layout instead of
// recomputing it every run.
type Plan struct {
	// Version guards the file format.
	Version int `json:"version"`
	// Scenario reproduces the problem the plan was computed for.
	Scenario Scenario `json:"scenario"`
	// Replicas and Servers mirror core.Layout.
	Replicas []int   `json:"replicas"`
	Servers  [][]int `json:"servers"`
}

// planVersion is the current plan file version.
const planVersion = 1

// NewPlan captures a layout computed for a scenario.
func NewPlan(s Scenario, layout *core.Layout) *Plan {
	p := &Plan{Version: planVersion, Scenario: s, Replicas: append([]int(nil), layout.Replicas...)}
	p.Servers = make([][]int, len(layout.Servers))
	for i, servers := range layout.Servers {
		p.Servers[i] = append([]int(nil), servers...)
	}
	return p
}

// Layout reconstructs and validates the layout against the plan's scenario.
func (p *Plan) Layout() (*core.Problem, *core.Layout, error) {
	if p.Version != planVersion {
		return nil, nil, fmt.Errorf("config: plan version %d; this build reads %d", p.Version, planVersion)
	}
	problem, err := p.Scenario.Problem()
	if err != nil {
		return nil, nil, fmt.Errorf("config: plan scenario: %w", err)
	}
	layout := &core.Layout{Replicas: append([]int(nil), p.Replicas...)}
	layout.Servers = make([][]int, len(p.Servers))
	for i, servers := range p.Servers {
		layout.Servers[i] = append([]int(nil), servers...)
	}
	if err := layout.Validate(problem); err != nil {
		return nil, nil, fmt.Errorf("config: plan layout: %w", err)
	}
	return problem, layout, nil
}

// Save writes the plan as indented JSON.
func (p *Plan) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadPlan parses a plan and validates it end to end.
func LoadPlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("config: decoding plan: %w", err)
	}
	if _, _, err := p.Layout(); err != nil {
		return nil, err
	}
	return &p, nil
}
