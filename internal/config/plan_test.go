package config

import (
	"bytes"
	"strings"
	"testing"

	"vodcluster/internal/core"
)

// planFixture computes a tiny valid layout by hand.
func planFixture(t *testing.T) (Scenario, *core.Layout) {
	t.Helper()
	s := Paper()
	s.Videos = 4
	s.Servers = 2
	s.LambdaPerMin = 10
	s.Degree = 1.5
	layout := core.NewLayout(4)
	layout.Replicas = []int{2, 2, 1, 1}
	for _, pl := range []struct{ v, sv int }{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {3, 1}} {
		if err := layout.Place(pl.v, pl.sv); err != nil {
			t.Fatal(err)
		}
	}
	return s, layout
}

func TestPlanRoundtrip(t *testing.T) {
	s, layout := planFixture(t)
	plan := NewPlan(s, layout)
	var buf bytes.Buffer
	if err := plan.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	problem, restored, err := got.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if problem.M() != 4 || restored.TotalReplicas() != 6 {
		t.Fatalf("restored M=%d replicas=%d", problem.M(), restored.TotalReplicas())
	}
	for v := range layout.Servers {
		for k := range layout.Servers[v] {
			if restored.Servers[v][k] != layout.Servers[v][k] {
				t.Fatal("placement corrupted in roundtrip")
			}
		}
	}
}

func TestPlanDeepCopies(t *testing.T) {
	s, layout := planFixture(t)
	plan := NewPlan(s, layout)
	plan.Replicas[0] = 99
	plan.Servers[0][0] = 99
	if layout.Replicas[0] == 99 || layout.Servers[0][0] == 99 {
		t.Fatal("NewPlan shares slices with the layout")
	}
}

func TestLoadPlanRejectsBadInput(t *testing.T) {
	if _, err := LoadPlan(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Wrong version.
	s, layout := planFixture(t)
	plan := NewPlan(s, layout)
	plan.Version = 99
	var buf bytes.Buffer
	if err := plan.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(&buf); err == nil {
		t.Fatal("future version accepted")
	}
	// Layout inconsistent with scenario (replica on a server that does not
	// exist in the declared cluster).
	plan = NewPlan(s, layout)
	plan.Servers[0] = []int{0, 7}
	buf.Reset()
	if err := plan.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(&buf); err == nil {
		t.Fatal("invalid placement accepted")
	}
}
