package config

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"vodcluster/internal/core"
)

func TestPaperScenarioProblem(t *testing.T) {
	p, err := Paper().Problem()
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 8 || p.M() != 100 {
		t.Fatalf("N=%d M=%d", p.N(), p.M())
	}
	// Saturation of the paper cluster: 40 requests/minute.
	sat, err := p.SaturationArrivalRate()
	if err != nil {
		t.Fatal(err)
	}
	if got := sat * core.Minute; math.Abs(got-40) > 1e-9 {
		t.Fatalf("saturation %g/min, want 40", got)
	}
	if math.Abs(p.ArrivalRate*core.Minute-40) > 1e-9 {
		t.Fatalf("arrival rate %g/min", p.ArrivalRate*core.Minute)
	}
	if p.PeakPeriod != 90*core.Minute {
		t.Fatalf("peak %g", p.PeakPeriod)
	}
}

func TestStorageDerivedFromDegree(t *testing.T) {
	s := Paper()
	s.Degree = 1.2
	p, err := s.Problem()
	if err != nil {
		t.Fatal(err)
	}
	capPer, err := p.ReplicaCapacityPerServer()
	if err != nil {
		t.Fatal(err)
	}
	// 1.2 × 100 / 8 = 15 replicas per server.
	if capPer != 15 {
		t.Fatalf("derived capacity %d, want 15", capPer)
	}
	total, err := p.TargetTotalReplicas(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if total != 120 {
		t.Fatalf("target %d, want 120", total)
	}
}

func TestExplicitStorageWins(t *testing.T) {
	s := Paper()
	s.StorageGB = 67.5
	p, err := s.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.StoragePerServer-67.5*core.GB) > 1 {
		t.Fatalf("storage %g", p.StoragePerServer)
	}
}

func TestScenarioValidationErrors(t *testing.T) {
	s := Paper()
	s.Videos = 0
	if _, err := s.Problem(); err == nil {
		t.Fatal("zero videos accepted")
	}
	s = Paper()
	s.Degree = 0
	s.StorageGB = 0
	if _, err := s.Problem(); err == nil {
		t.Fatal("no storage and no degree accepted")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s := Paper()
	s.BackboneGbps = 2
	s.Degree = 1.6
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("roundtrip changed scenario:\n%+v\n%+v", s, got)
	}
}

func TestHeterogeneousScenario(t *testing.T) {
	s := Paper()
	s.Servers = 4
	s.LambdaPerMin = 20
	s.ServerStorageGB = []float64{67.5, 67.5, 33.75, 33.75}
	s.ServerBandwidthGbps = []float64{2.4, 2.4, 1.2, 1.2}
	p, err := s.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if p.Homogeneous() {
		t.Fatal("heterogeneous scenario produced homogeneous problem")
	}
	if p.BandwidthOf(0) != 2.4*core.Gbps || p.BandwidthOf(3) != 1.2*core.Gbps {
		t.Fatal("per-server bandwidth lost in conversion")
	}
	if p.StorageOf(2) != 33.75*core.GB {
		t.Fatal("per-server storage lost in conversion")
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("heterogeneous roundtrip lost data")
	}
	// Mismatched lengths must be rejected by problem validation.
	s.ServerStorageGB = []float64{67.5}
	if _, err := s.Problem(); err == nil {
		t.Fatal("mismatched ServerStorageGB accepted")
	}
}

func TestLoadFillsDefaults(t *testing.T) {
	got, err := Load(strings.NewReader(`{"servers":4,"videos":50,"theta":0.5,
		"bitrate_mbps":4,"duration_min":90,"lambda_per_min":20,"degree":1.2}`))
	if err != nil {
		t.Fatal(err)
	}
	def := Paper()
	if got.Replicator != def.Replicator || got.Placer != def.Placer ||
		got.Scheduler != def.Scheduler || got.Runs != def.Runs {
		t.Fatalf("defaults not filled: %+v", got)
	}
	if got.Servers != 4 || got.Videos != 50 {
		t.Fatal("explicit values overridden")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPeakDefaultsToDuration(t *testing.T) {
	s := Paper()
	s.PeakMin = 0
	p, err := s.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if p.PeakPeriod != p.Catalog[0].Duration {
		t.Fatal("peak did not default to the video duration")
	}
	s.PeakMin = 60
	p, err = s.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if p.PeakPeriod != 60*core.Minute {
		t.Fatal("explicit peak ignored")
	}
}
