package config

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad: arbitrary bytes must never panic the scenario parser, and any
// scenario that parses and converts must produce a validated problem.
func FuzzLoad(f *testing.F) {
	var seed bytes.Buffer
	if err := Paper().Save(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"servers":-1}`)
	f.Add(`{"servers":8,"videos":100,"theta":0.75,"bitrate_mbps":4,"duration_min":90,"lambda_per_min":40,"degree":1.2}`)
	f.Add(`{"server_storage_gb":[1,2],"server_bandwidth_gbps":[0.5]}`)
	f.Fuzz(func(t *testing.T, raw string) {
		s, err := Load(strings.NewReader(raw))
		if err != nil {
			return
		}
		p, err := s.Problem()
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Problem() returned an invalid problem: %v", err)
		}
	})
}
