package core

import (
	"fmt"

	"vodcluster/internal/zipf"
)

// Video describes one title in the catalog. Videos are identified by their
// popularity rank: ID 0 is the most popular title. Popularities across a
// catalog sum to 1.
type Video struct {
	// ID is the popularity rank, 0-based.
	ID int
	// Popularity is the probability that an incoming request targets this
	// video.
	Popularity float64
	// BitRate is the encoding bit rate in bits/s. Every replica of a video
	// is encoded at the same rate (paper §3.2); the scalable-bit-rate
	// optimizer changes this field per video.
	BitRate float64
	// Duration is the playback length in seconds.
	Duration float64
}

// SizeBytes returns the storage required by one replica of the video:
// BitRate × Duration, converted from bits to bytes.
func (v Video) SizeBytes() float64 { return v.SizeAtRate(v.BitRate) }

// SizeAtRate returns the storage required by one replica of the video if it
// were encoded at rate bits/s instead of its catalog rate. The
// scalable-bit-rate optimizer prices every (video, rate) cell with it.
func (v Video) SizeAtRate(rate float64) float64 { return rate * v.Duration / 8 }

// Catalog is an ordered set of videos, most popular first.
type Catalog []Video

// NewCatalog builds a catalog of m videos with Zipf-like popularity skew
// theta, all encoded at bitRate bits/s with the given duration in seconds.
// This matches the paper's synthetic workload setup (§5).
func NewCatalog(m int, theta, bitRate, duration float64) (Catalog, error) {
	if bitRate <= 0 {
		return nil, fmt.Errorf("core: bit rate must be positive, got %g", bitRate)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("core: duration must be positive, got %g", duration)
	}
	d, err := zipf.New(m, theta)
	if err != nil {
		return nil, fmt.Errorf("core: building catalog: %w", err)
	}
	c := make(Catalog, m)
	for i := 0; i < m; i++ {
		c[i] = Video{ID: i, Popularity: d.Prob(i), BitRate: bitRate, Duration: duration}
	}
	return c, nil
}

// Popularities returns the popularity vector of the catalog, most popular
// first.
func (c Catalog) Popularities() []float64 {
	p := make([]float64, len(c))
	for i, v := range c {
		p[i] = v.Popularity
	}
	return p
}

// TotalSizeBytes returns the storage needed to hold one replica of every
// video.
func (c Catalog) TotalSizeBytes() float64 {
	sum := 0.0
	for _, v := range c {
		sum += v.SizeBytes()
	}
	return sum
}

// FixedBitRate reports whether every video shares one encoding bit rate and,
// if so, returns it. An empty catalog reports false.
func (c Catalog) FixedBitRate() (rate float64, ok bool) {
	if len(c) == 0 {
		return 0, false
	}
	rate = c[0].BitRate
	for _, v := range c[1:] {
		if v.BitRate != rate {
			return 0, false
		}
	}
	return rate, true
}

// FixedDuration reports whether every video shares one playback duration
// and, if so, returns it. The fixed-rate capacity helpers require it, since
// "storage capacity in replicas" (paper §4.1) only makes sense when replicas
// share a size.
func (c Catalog) FixedDuration() (duration float64, ok bool) {
	if len(c) == 0 {
		return 0, false
	}
	duration = c[0].Duration
	for _, v := range c[1:] {
		if v.Duration != duration {
			return 0, false
		}
	}
	return duration, true
}

// Validate checks internal consistency: IDs are 0..M-1 in order,
// popularities are positive, non-increasing, and sum to 1 (within tolerance),
// and rates/durations are positive.
func (c Catalog) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("core: catalog is empty")
	}
	sum := 0.0
	for i, v := range c {
		if v.ID != i {
			return fmt.Errorf("core: video at position %d has ID %d; want rank order", i, v.ID)
		}
		if v.Popularity <= 0 {
			return fmt.Errorf("core: video %d has non-positive popularity %g", i, v.Popularity)
		}
		if i > 0 && v.Popularity > c[i-1].Popularity+1e-12 {
			return fmt.Errorf("core: popularity of video %d (%g) exceeds that of video %d (%g); catalog must be sorted most popular first",
				i, v.Popularity, i-1, c[i-1].Popularity)
		}
		if v.BitRate <= 0 {
			return fmt.Errorf("core: video %d has non-positive bit rate %g", i, v.BitRate)
		}
		if v.Duration <= 0 {
			return fmt.Errorf("core: video %d has non-positive duration %g", i, v.Duration)
		}
		sum += v.Popularity
	}
	if sum < 1-1e-6 || sum > 1+1e-6 {
		return fmt.Errorf("core: catalog popularities sum to %g; want 1", sum)
	}
	return nil
}
