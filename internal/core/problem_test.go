package core

import (
	"math"
	"strings"
	"testing"
)

// paperProblem builds the evaluation cluster: 8 servers, 1.8 Gb/s out,
// storage for `cap` replicas each, 100 videos at 4 Mb/s / 90 min, peak
// λ = 40/min.
func paperProblem(t testing.TB, capReplicas int) *Problem {
	t.Helper()
	c, err := NewCatalog(100, 0.75, 4*Mbps, 90*Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Catalog:            c,
		NumServers:         8,
		StoragePerServer:   float64(capReplicas) * c[0].SizeBytes(),
		BandwidthPerServer: 1.8 * Gbps,
		ArrivalRate:        40.0 / Minute,
		PeakPeriod:         90 * Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProblemDerivedQuantities(t *testing.T) {
	p := paperProblem(t, 15)
	if p.M() != 100 || p.N() != 8 {
		t.Fatalf("M=%d N=%d", p.M(), p.N())
	}
	capPer, err := p.ReplicaCapacityPerServer()
	if err != nil || capPer != 15 {
		t.Fatalf("replica capacity = %d, %v", capPer, err)
	}
	total, err := p.ClusterReplicaCapacity()
	if err != nil || total != 120 {
		t.Fatalf("cluster capacity = %d, %v", total, err)
	}
	streams, err := p.StreamCapacityPerServer()
	if err != nil || streams != 450 {
		t.Fatalf("stream capacity = %d, %v (1.8 Gb/s / 4 Mb/s = 450)", streams, err)
	}
	// Saturation: 8 × 450 streams over 90 min = 40 requests/minute.
	sat, err := p.SaturationArrivalRate()
	if err != nil {
		t.Fatal(err)
	}
	if got := sat * Minute; math.Abs(got-40) > 1e-9 {
		t.Fatalf("saturation rate = %g/min, want 40", got)
	}
	if got := p.PeakRequests(); math.Abs(got-3600) > 1e-9 {
		t.Fatalf("peak requests = %g, want 3600", got)
	}
}

func TestProblemValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Problem)
		want   string
	}{
		{"no servers", func(p *Problem) { p.NumServers = 0 }, "server"},
		{"no storage", func(p *Problem) { p.StoragePerServer = 0 }, "storage"},
		{"no bandwidth", func(p *Problem) { p.BandwidthPerServer = 0 }, "bandwidth"},
		{"negative arrivals", func(p *Problem) { p.ArrivalRate = -1 }, "arrival"},
		{"no peak", func(p *Problem) { p.PeakPeriod = 0 }, "peak"},
		{"negative backbone", func(p *Problem) { p.BackboneBandwidth = -1 }, "backbone"},
		{"video too large", func(p *Problem) { p.StoragePerServer = GB }, "bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := paperProblem(t, 15)
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestReplicaCapacityMixedRates(t *testing.T) {
	p := paperProblem(t, 15)
	p.Catalog[0].BitRate = 8 * Mbps
	if _, err := p.ReplicaCapacityPerServer(); err == nil {
		t.Fatal("mixed-rate catalog must not have a replica capacity")
	}
	if _, err := p.StreamCapacityPerServer(); err == nil {
		t.Fatal("mixed-rate catalog must not have a stream capacity")
	}
	if _, err := p.SaturationArrivalRate(); err == nil {
		t.Fatal("mixed-rate catalog must not have a saturation rate")
	}
}

func TestTargetTotalReplicas(t *testing.T) {
	p := paperProblem(t, 15) // capacity 120
	cases := []struct {
		degree float64
		want   int
	}{
		{1.0, 100},
		{1.2, 120},
		{1.5, 120}, // clamped by storage capacity
		{9.0, 120}, // clamped by capacity before N·M
	}
	for _, tc := range cases {
		got, err := p.TargetTotalReplicas(tc.degree)
		if err != nil {
			t.Fatalf("degree %g: %v", tc.degree, err)
		}
		if got != tc.want {
			t.Fatalf("degree %g: got %d replicas, want %d", tc.degree, got, tc.want)
		}
	}
	if _, err := p.TargetTotalReplicas(0.5); err == nil {
		t.Fatal("degree < 1 accepted")
	}
	// Clamp by N·M: a big cluster with 2 videos.
	q := paperProblem(t, 15)
	q.Catalog = q.Catalog[:2]
	q.Catalog[0].Popularity = 0.6
	q.Catalog[1].Popularity = 0.4
	got, err := q.TargetTotalReplicas(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*q.NumServers {
		t.Fatalf("degree 100 with M=2: got %d, want N·M = %d", got, 2*q.NumServers)
	}
}

func TestTargetTotalReplicasInsufficientStorage(t *testing.T) {
	c, _ := NewCatalog(10, 0.5, 4*Mbps, 90*Minute)
	p := &Problem{
		Catalog:            c,
		NumServers:         2,
		StoragePerServer:   3 * c[0].SizeBytes(), // cluster holds 6 < 10
		BandwidthPerServer: Gbps,
		ArrivalRate:        1.0 / Minute,
		PeakPeriod:         90 * Minute,
	}
	if _, err := p.TargetTotalReplicas(1); err == nil {
		t.Fatal("cluster smaller than catalog accepted")
	}
}

func TestProblemClone(t *testing.T) {
	p := paperProblem(t, 15)
	q := p.Clone()
	q.ArrivalRate = 99
	q.Catalog[0].Popularity = 0.5
	if p.ArrivalRate == 99 {
		t.Fatal("Clone shares scalar fields")
	}
	if p.Catalog[0].Popularity == 0.5 {
		t.Fatal("Clone shares the catalog")
	}
}

func TestHeterogeneousAccessors(t *testing.T) {
	p := paperProblem(t, 15)
	if !p.Homogeneous() {
		t.Fatal("scalar problem must be homogeneous")
	}
	if p.StorageOf(3) != p.StoragePerServer || p.BandwidthOf(5) != p.BandwidthPerServer {
		t.Fatal("accessors must fall back to scalars")
	}
	if got, want := p.TotalBandwidth(), 8*1.8*Gbps; math.Abs(got-want) > 1 {
		t.Fatalf("total bandwidth %g, want %g", got, want)
	}

	p.ServerBandwidth = []float64{2.4 * Gbps, 2.4 * Gbps, 2.4 * Gbps, 2.4 * Gbps, 1.2 * Gbps, 1.2 * Gbps, 1.2 * Gbps, 1.2 * Gbps}
	if p.Homogeneous() {
		t.Fatal("per-server bandwidth vector not detected")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.BandwidthOf(0) != 2.4*Gbps || p.BandwidthOf(7) != 1.2*Gbps {
		t.Fatal("per-server bandwidth not honored")
	}
	// Per-server stream capacity helpers refuse heterogeneous clusters...
	if _, err := p.StreamCapacityPerServer(); err == nil {
		t.Fatal("StreamCapacityPerServer must fail on heterogeneous clusters")
	}
	// ...but the aggregate saturation rate still works: (4·600 + 4·300)/90min.
	sat, err := p.SaturationArrivalRate()
	if err != nil {
		t.Fatal(err)
	}
	if got := sat * Minute; math.Abs(got-40) > 1e-9 {
		t.Fatalf("hetero saturation %g/min, want 40", got)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	p := paperProblem(t, 15)
	p.ServerBandwidth = []float64{Gbps} // wrong length
	if err := p.Validate(); err == nil {
		t.Fatal("wrong-length bandwidth vector accepted")
	}
	p = paperProblem(t, 15)
	p.ServerStorage = make([]float64, 8)
	if err := p.Validate(); err == nil {
		t.Fatal("zero per-server storage accepted")
	}
	p = paperProblem(t, 15)
	p.ServerStorage = []float64{GB, GB, GB, GB, GB, GB, GB, 100 * GB}
	// Videos are 2.7 GB: only the last server can host one, which is fine.
	if err := p.Validate(); err != nil {
		t.Fatalf("video fits on one server; validation should pass: %v", err)
	}
	for i := range p.ServerStorage {
		p.ServerStorage[i] = GB
	}
	if err := p.Validate(); err == nil {
		t.Fatal("video fitting nowhere accepted")
	}
}

func TestHeterogeneousCapacities(t *testing.T) {
	p := paperProblem(t, 15)
	size := p.Catalog[0].SizeBytes()
	p.ServerStorage = []float64{20 * size, 20 * size, 10 * size, 10 * size, 10 * size, 10 * size, 10 * size, 10 * size}
	c0, err := p.ReplicaCapacityOf(0)
	if err != nil || c0 != 20 {
		t.Fatalf("capacity of big server = %d, %v", c0, err)
	}
	total, err := p.ClusterReplicaCapacity()
	if err != nil || total != 100 {
		t.Fatalf("cluster capacity = %d, %v; want 100", total, err)
	}
	if _, err := p.ReplicaCapacityPerServer(); err == nil {
		t.Fatal("per-server capacity must fail on heterogeneous clusters")
	}
	q := p.Clone()
	q.ServerStorage[0] = size
	if p.ServerStorage[0] == size {
		t.Fatal("Clone shares per-server capacity slices")
	}
}

func TestReplicaCapacityMixedDurations(t *testing.T) {
	p := paperProblem(t, 15)
	p.Catalog[0].Duration = 60 * Minute
	if _, err := p.ReplicaCapacityPerServer(); err == nil {
		t.Fatal("mixed-duration catalog must not have a replica capacity")
	}
	if _, err := p.TargetTotalReplicas(1.2); err == nil {
		t.Fatal("replica budgeting must refuse mixed durations")
	}
	// The saturation rate only depends on bit rates and still works.
	if _, err := p.SaturationArrivalRate(); err != nil {
		t.Fatalf("saturation should be duration-independent: %v", err)
	}
}
