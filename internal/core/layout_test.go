package core

import (
	"math"
	"strings"
	"testing"
)

// tinyProblem: 3 videos on 2 servers, 2 replicas of storage each, easy
// numbers: popularities 0.5, 0.3, 0.2, peak requests 100.
func tinyProblem(t testing.TB) *Problem {
	t.Helper()
	c := Catalog{
		{ID: 0, Popularity: 0.5, BitRate: 4 * Mbps, Duration: 90 * Minute},
		{ID: 1, Popularity: 0.3, BitRate: 4 * Mbps, Duration: 90 * Minute},
		{ID: 2, Popularity: 0.2, BitRate: 4 * Mbps, Duration: 90 * Minute},
	}
	p := &Problem{
		Catalog:            c,
		NumServers:         2,
		StoragePerServer:   2 * c[0].SizeBytes(),
		BandwidthPerServer: Gbps,
		ArrivalRate:        100.0 / (90 * Minute),
		PeakPeriod:         90 * Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// tinyLayout: v0 on both servers, v1 on s0, v2 on s1.
func tinyLayout(t testing.TB) *Layout {
	t.Helper()
	l := NewLayout(3)
	l.Replicas = []int{2, 1, 1}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 0}, {2, 1}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestLayoutPlaceAndHolds(t *testing.T) {
	l := NewLayout(2)
	if l.Holds(0, 1) {
		t.Fatal("empty layout holds something")
	}
	if err := l.Place(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Place(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Place(0, 1); err == nil {
		t.Fatal("duplicate placement accepted (Eq. 6)")
	}
	if got := l.Servers[0]; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("server list not sorted: %v", got)
	}
	if !l.Holds(0, 3) || !l.Holds(0, 1) || l.Holds(0, 2) {
		t.Fatal("Holds inconsistent")
	}
}

func TestLayoutTotalsAndDegree(t *testing.T) {
	l := tinyLayout(t)
	if l.TotalReplicas() != 4 {
		t.Fatalf("total = %d", l.TotalReplicas())
	}
	if got := l.ReplicationDegree(); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("degree = %g", got)
	}
	var empty Layout
	if empty.ReplicationDegree() != 0 {
		t.Fatal("empty layout degree must be 0")
	}
}

func TestLayoutWeights(t *testing.T) {
	p := tinyProblem(t)
	l := tinyLayout(t)
	w := l.Weights(p)
	// Peak requests = 100: w0 = 0.5·100/2 = 25, w1 = 30, w2 = 20.
	want := []float64{25, 30, 20}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-9 {
			t.Fatalf("w[%d] = %g, want %g", i, w[i], want[i])
		}
	}
}

func TestLayoutServerLoads(t *testing.T) {
	p := tinyProblem(t)
	l := tinyLayout(t)
	loads := l.ServerLoads(p)
	// s0: w0 + w1 = 55; s1: w0 + w2 = 45.
	if math.Abs(loads[0]-55) > 1e-9 || math.Abs(loads[1]-45) > 1e-9 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestLayoutBandwidthDemandAndStorage(t *testing.T) {
	p := tinyProblem(t)
	l := tinyLayout(t)
	demand := l.ServerBandwidthDemand(p)
	// Expected concurrent bandwidth = load × 4 Mb/s (duration == peak).
	if math.Abs(demand[0]-55*4*Mbps) > 1 || math.Abs(demand[1]-45*4*Mbps) > 1 {
		t.Fatalf("demand = %v", demand)
	}
	worst, ok := l.BandwidthFeasible(p)
	if !ok {
		t.Fatalf("demand %v within 1 Gb/s links must be feasible", demand)
	}
	if math.Abs(worst-55*4*Mbps/Gbps) > 1e-9 {
		t.Fatalf("worst utilization = %g", worst)
	}
	used := l.ServerStorageUsed(p)
	size := p.Catalog[0].SizeBytes()
	if math.Abs(used[0]-2*size) > 1 || math.Abs(used[1]-2*size) > 1 {
		t.Fatalf("storage used = %v", used)
	}
}

func TestLayoutBandwidthInfeasible(t *testing.T) {
	p := tinyProblem(t)
	p.BandwidthPerServer = 100 * Mbps // 55 × 4 Mb/s = 220 Mb/s demand
	l := tinyLayout(t)
	if _, ok := l.BandwidthFeasible(p); ok {
		t.Fatal("overloaded link reported feasible")
	}
}

func TestLayoutOverlapCappedAtPeak(t *testing.T) {
	// A video longer than the peak period must not multiply demand past w·b.
	p := tinyProblem(t)
	for i := range p.Catalog {
		p.Catalog[i].Duration = 2 * p.PeakPeriod
	}
	p.StoragePerServer = 2 * p.Catalog[0].SizeBytes()
	l := tinyLayout(t)
	demand := l.ServerBandwidthDemand(p)
	if math.Abs(demand[0]-55*4*Mbps) > 1 {
		t.Fatalf("overlap not capped: %v", demand)
	}
}

func TestLayoutValidate(t *testing.T) {
	p := tinyProblem(t)
	if err := tinyLayout(t).Validate(p); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Layout)
		want   string
	}{
		{"wrong length", func(l *Layout) { l.Replicas = l.Replicas[:2]; l.Servers = l.Servers[:2] }, "covers"},
		{"zero replicas", func(l *Layout) { l.Replicas[1] = 0 }, "Eq. 7"},
		{"too many replicas", func(l *Layout) { l.Replicas[0] = 3 }, "Eq. 7"},
		{"count mismatch", func(l *Layout) { l.Servers[1] = nil }, "lists"},
		{"bad server", func(l *Layout) { l.Servers[1][0] = 9 }, "invalid server"},
		{"duplicate server", func(l *Layout) { l.Servers[0] = []int{1, 1} }, "Eq. 6"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := tinyLayout(t)
			tc.mutate(l)
			err := l.Validate(p)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLayoutValidateStorage(t *testing.T) {
	p := tinyProblem(t)
	p.StoragePerServer = 1.5 * p.Catalog[0].SizeBytes() // fits one replica
	l := tinyLayout(t)                                  // two replicas per server
	err := l.Validate(p)
	if err == nil || !strings.Contains(err.Error(), "Eq. 4") {
		t.Fatalf("storage violation not caught: %v", err)
	}
}

func TestLayoutClone(t *testing.T) {
	l := tinyLayout(t)
	c := l.Clone()
	c.Replicas[0] = 9
	c.Servers[0][0] = 9
	if l.Replicas[0] == 9 || l.Servers[0][0] == 9 {
		t.Fatal("Clone shares state")
	}
}

func TestFromReplicaVector(t *testing.T) {
	l := FromReplicaVector([]int{1, 2, 3})
	if l.TotalReplicas() != 6 {
		t.Fatalf("total = %d", l.TotalReplicas())
	}
	for _, s := range l.Servers {
		if len(s) != 0 {
			t.Fatal("FromReplicaVector must not pre-place")
		}
	}
}

func TestZeroReplicaWeightIsZero(t *testing.T) {
	p := tinyProblem(t)
	l := NewLayout(3)
	l.Replicas = []int{0, 1, 1}
	w := l.Weights(p)
	if w[0] != 0 {
		t.Fatalf("weight of unplaced video = %g", w[0])
	}
}
