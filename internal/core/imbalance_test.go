package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImbalanceMaxKnownValues(t *testing.T) {
	cases := []struct {
		loads []float64
		want  float64
	}{
		{nil, 0},
		{[]float64{5, 5, 5}, 0},
		{[]float64{0, 0, 0}, 0},
		{[]float64{2, 0}, 1},       // mean 1, max 2 → (2-1)/1
		{[]float64{4, 0, 0, 0}, 3}, // one server carries all → N−1
		{[]float64{3, 2, 1}, 0.5},  // mean 2, max 3
		{[]float64{10, 10, 10, 2}, 10.0/8 - 1},
	}
	for _, tc := range cases {
		if got := ImbalanceMax(tc.loads); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("ImbalanceMax(%v) = %g, want %g", tc.loads, got, tc.want)
		}
	}
}

func TestImbalanceStdKnownValues(t *testing.T) {
	if got := ImbalanceStd([]float64{1, 1, 1, 1}); got != 0 {
		t.Fatalf("std of equal loads = %g", got)
	}
	// Loads {2, 4}: mean 3, population std = 1.
	if got := ImbalanceStd([]float64{2, 4}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ImbalanceStd({2,4}) = %g, want 1", got)
	}
	if got := ImbalanceStd(nil); got != 0 {
		t.Fatalf("empty = %g", got)
	}
}

func TestImbalanceCV(t *testing.T) {
	if got := ImbalanceCV([]float64{2, 4}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("CV({2,4}) = %g, want 1/3", got)
	}
	if got := ImbalanceCV([]float64{0, 0}); got != 0 {
		t.Fatalf("CV of zero loads = %g", got)
	}
	if got := ImbalanceCV(nil); got != 0 {
		t.Fatalf("CV(nil) = %g", got)
	}
}

// TestImbalanceMaxProperties: non-negative, zero for uniform vectors,
// invariant under positive scaling (it is a relative measure), and bounded by
// N−1.
func TestImbalanceMaxProperties(t *testing.T) {
	f := func(raw []uint8, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return ImbalanceMax(nil) == 0
		}
		loads := make([]float64, len(raw))
		allZero := true
		for i, r := range raw {
			loads[i] = float64(r)
			if r != 0 {
				allZero = false
			}
		}
		l := ImbalanceMax(loads)
		if l < 0 {
			return false
		}
		if allZero && l != 0 {
			return false
		}
		if l > float64(len(loads)-1)+1e-9 {
			return false
		}
		scale := float64(scaleRaw%10) + 1
		scaled := make([]float64, len(loads))
		for i := range loads {
			scaled[i] = loads[i] * scale
		}
		return math.Abs(ImbalanceMax(scaled)-l) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestImbalanceOrderInvariance: both definitions must not depend on server
// order.
func TestImbalanceOrderInvariance(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		loads := make([]float64, len(raw))
		for i, r := range raw {
			loads[i] = float64(r)
		}
		rev := make([]float64, len(loads))
		for i := range loads {
			rev[i] = loads[len(loads)-1-i]
		}
		return math.Abs(ImbalanceMax(loads)-ImbalanceMax(rev)) < 1e-12 &&
			math.Abs(ImbalanceStd(loads)-ImbalanceStd(rev)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveEvaluate(t *testing.T) {
	p := tinyProblem(t)
	l := tinyLayout(t)
	o := Objective{Alpha: 2, Beta: 3}
	c := o.Evaluate(p, l)
	if math.Abs(c.MeanBitRateMbps-4) > 1e-12 {
		t.Fatalf("mean rate = %g, want 4 Mb/s", c.MeanBitRateMbps)
	}
	if math.Abs(c.ReplicationDegree-4.0/3) > 1e-12 {
		t.Fatalf("degree = %g", c.ReplicationDegree)
	}
	// Loads 55/45: mean 50, Eq.2 L = 0.1.
	if math.Abs(c.Imbalance-0.1) > 1e-12 {
		t.Fatalf("imbalance = %g, want 0.1", c.Imbalance)
	}
	want := 4 + 2*4.0/3 - 3*0.1
	if math.Abs(c.Value-want) > 1e-12 {
		t.Fatalf("objective = %g, want %g", c.Value, want)
	}
}

func TestObjectiveStdVariant(t *testing.T) {
	p := tinyProblem(t)
	l := tinyLayout(t)
	o := Objective{Alpha: 1, Beta: 1, UseStdImbalance: true}
	c := o.Evaluate(p, l)
	// Loads 55/45: mean 50, population std 5, CV 0.1.
	if math.Abs(c.Imbalance-0.1) > 1e-12 {
		t.Fatalf("CV imbalance = %g, want 0.1", c.Imbalance)
	}
}

func TestDefaultObjective(t *testing.T) {
	o := DefaultObjective()
	if o.Alpha != 1 || o.Beta != 1 || o.UseStdImbalance {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}

func TestObjectiveMonotoneInReplication(t *testing.T) {
	// With balanced placements, adding replicas must not lower the
	// objective: degree term grows, imbalance cannot grow past its bound.
	p := tinyProblem(t)
	low := tinyLayout(t)
	high := NewLayout(3)
	high.Replicas = []int{2, 2, 2}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}} {
		if err := high.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	p.StoragePerServer = 3 * p.Catalog[0].SizeBytes()
	o := DefaultObjective()
	if o.Evaluate(p, high).Value <= o.Evaluate(p, low).Value {
		t.Fatal("full replication scored below partial replication on a balanced instance")
	}
}
