package core

// Objective is the combinatorial optimization objective of the paper (Eq. 1):
//
//	O = (1/M) Σ_i b_i  +  α (1/M) Σ_i r_i  −  β L
//
// maximize average encoding bit rate plus α times the replication degree
// minus β times the load imbalance degree. Alpha and Beta are the paper's
// relative weighting factors. Bit rates enter in Mb/s so that the three terms
// have comparable magnitudes (a 4 Mb/s catalog contributes 4.0, a replication
// degree contributes 1–N, and L is typically below 1 under Eq. 2).
type Objective struct {
	// Alpha weights the replication-degree term.
	Alpha float64
	// Beta weights the load-imbalance penalty.
	Beta float64
	// UseStdImbalance selects Eq. 3 (population std-dev, normalized by the
	// mean load so the penalty stays scale-free) instead of the default
	// Eq. 2 (relative max excess).
	UseStdImbalance bool
}

// DefaultObjective returns the weighting used throughout the evaluation:
// equal unit weights on quality and availability and a unit imbalance
// penalty.
func DefaultObjective() Objective { return Objective{Alpha: 1, Beta: 1} }

// Components breaks an objective value into its three terms.
type Components struct {
	// MeanBitRateMbps is (1/M) Σ b_i in Mb/s.
	MeanBitRateMbps float64
	// ReplicationDegree is (1/M) Σ r_i.
	ReplicationDegree float64
	// Imbalance is L under the selected definition.
	Imbalance float64
	// Value is the combined objective.
	Value float64
}

// Evaluate scores a layout against problem p.
func (o Objective) Evaluate(p *Problem, l *Layout) Components {
	var c Components
	m := float64(p.M())
	for _, v := range p.Catalog {
		c.MeanBitRateMbps += v.BitRate / Mbps
	}
	c.MeanBitRateMbps /= m
	c.ReplicationDegree = l.ReplicationDegree()
	loads := l.ServerLoads(p)
	if o.UseStdImbalance {
		c.Imbalance = ImbalanceCV(loads)
	} else {
		c.Imbalance = ImbalanceMax(loads)
	}
	c.Value = c.MeanBitRateMbps + o.Alpha*c.ReplicationDegree - o.Beta*c.Imbalance
	return c
}
