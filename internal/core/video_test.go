package core

import (
	"math"
	"strings"
	"testing"
)

func TestNewCatalogPaperNumbers(t *testing.T) {
	// The paper's example: a 90-minute MPEG-2 video at 4 Mb/s needs 2.7 GB.
	c, err := NewCatalog(100, 0.75, 4*Mbps, 90*Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c[0].SizeBytes(), 2.7*GB; math.Abs(got-want) > 1e-3 {
		t.Fatalf("video size = %g bytes, want %g", got, want)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("paper catalog invalid: %v", err)
	}
	if rate, ok := c.FixedBitRate(); !ok || rate != 4*Mbps {
		t.Fatalf("FixedBitRate = %g, %v", rate, ok)
	}
	if got, want := c.TotalSizeBytes(), 270*GB; math.Abs(got-want) > 1 {
		t.Fatalf("total catalog size = %g, want %g", got, want)
	}
}

func TestNewCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(10, 0.5, 0, 90*Minute); err == nil {
		t.Fatal("zero bit rate accepted")
	}
	if _, err := NewCatalog(10, 0.5, Mbps, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := NewCatalog(0, 0.5, Mbps, Minute); err == nil {
		t.Fatal("empty catalog accepted")
	}
	if _, err := NewCatalog(10, -1, Mbps, Minute); err == nil {
		t.Fatal("negative skew accepted")
	}
}

func TestCatalogPopularities(t *testing.T) {
	c, _ := NewCatalog(5, 1, Mbps, Minute)
	p := c.Popularities()
	sum := 0.0
	for i, v := range p {
		if v != c[i].Popularity {
			t.Fatal("Popularities mismatch")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("popularities sum to %g", sum)
	}
	p[0] = 0.9
	if c[0].Popularity == 0.9 {
		t.Fatal("Popularities exposed internal state")
	}
}

func TestCatalogValidateErrors(t *testing.T) {
	base := func() Catalog {
		c, _ := NewCatalog(3, 0.5, Mbps, Minute)
		return c
	}
	cases := []struct {
		name   string
		mutate func(Catalog) Catalog
		want   string
	}{
		{"empty", func(Catalog) Catalog { return nil }, "empty"},
		{"bad id", func(c Catalog) Catalog { c[1].ID = 5; return c }, "ID"},
		{"zero popularity", func(c Catalog) Catalog { c[2].Popularity = 0; return c }, "popularity"},
		{"unsorted", func(c Catalog) Catalog {
			c[0].Popularity, c[1].Popularity = c[1].Popularity, c[0].Popularity
			return c
		}, "sorted"},
		{"zero rate", func(c Catalog) Catalog { c[0].BitRate = 0; return c }, "bit rate"},
		{"zero duration", func(c Catalog) Catalog { c[0].Duration = 0; return c }, "duration"},
		{"not normalized", func(c Catalog) Catalog { c[0].Popularity *= 3; return c }, "sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.mutate(base()).Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFixedBitRateMixed(t *testing.T) {
	c, _ := NewCatalog(3, 0.5, Mbps, Minute)
	c[1].BitRate = 2 * Mbps
	if _, ok := c.FixedBitRate(); ok {
		t.Fatal("mixed catalog reported a fixed rate")
	}
	var empty Catalog
	if _, ok := empty.FixedBitRate(); ok {
		t.Fatal("empty catalog reported a fixed rate")
	}
}

func TestFixedDuration(t *testing.T) {
	c, _ := NewCatalog(3, 0.5, Mbps, 90*Minute)
	if d, ok := c.FixedDuration(); !ok || d != 90*Minute {
		t.Fatalf("FixedDuration = %g, %v", d, ok)
	}
	c[1].Duration = 60 * Minute
	if _, ok := c.FixedDuration(); ok {
		t.Fatal("mixed durations reported fixed")
	}
	var empty Catalog
	if _, ok := empty.FixedDuration(); ok {
		t.Fatal("empty catalog reported a fixed duration")
	}
}
