package core

import (
	"fmt"
	"math"
)

// Problem is one instance of the video replication and placement problem
// (paper §3.1): a homogeneous cluster, a catalog, and the peak-period
// workload intensity. The replication and placement algorithms in
// internal/replicate and internal/place consume a Problem and produce a
// Layout.
type Problem struct {
	// Catalog holds the M videos, most popular first.
	Catalog Catalog
	// NumServers is N, the number of back-end servers.
	NumServers int
	// StoragePerServer is each server's disk capacity in bytes.
	StoragePerServer float64
	// BandwidthPerServer is each server's outgoing network bandwidth in
	// bits/s — the paper's primary bottleneck resource.
	BandwidthPerServer float64
	// ServerStorage and ServerBandwidth optionally override the scalar
	// capacities per server (heterogeneous clusters — the generalization
	// the paper's homogeneous model invites). When non-nil they must have
	// NumServers entries; the scalars are then ignored except as
	// documentation. Use StorageOf/BandwidthOf to read capacities.
	ServerStorage   []float64
	ServerBandwidth []float64
	// ArrivalRate is λ, the mean request arrival rate during the peak
	// period, in requests per second.
	ArrivalRate float64
	// PeakPeriod is T, the length of the peak period in seconds. The paper
	// sets it equal to the video duration (90 min), so every request
	// admitted during the peak is still streaming at its end.
	PeakPeriod float64
	// BackboneBandwidth is the aggregate internal backbone bandwidth in
	// bits/s available for runtime request redirection (paper §6 / [29]).
	// Zero disables redirection.
	BackboneBandwidth float64
}

// M returns the number of videos in the catalog.
func (p *Problem) M() int { return len(p.Catalog) }

// N returns the number of servers.
func (p *Problem) N() int { return p.NumServers }

// Homogeneous reports whether every server has identical capacities.
func (p *Problem) Homogeneous() bool {
	for s := 1; s < p.NumServers; s++ {
		if p.StorageOf(s) != p.StorageOf(0) || p.BandwidthOf(s) != p.BandwidthOf(0) {
			return false
		}
	}
	return true
}

// StorageOf returns server s's storage capacity in bytes.
func (p *Problem) StorageOf(s int) float64 {
	if p.ServerStorage != nil {
		return p.ServerStorage[s]
	}
	return p.StoragePerServer
}

// BandwidthOf returns server s's outgoing bandwidth in bits/s.
func (p *Problem) BandwidthOf(s int) float64 {
	if p.ServerBandwidth != nil {
		return p.ServerBandwidth[s]
	}
	return p.BandwidthPerServer
}

// TotalStorage returns the cluster's aggregate storage in bytes.
func (p *Problem) TotalStorage() float64 {
	sum := 0.0
	for s := 0; s < p.NumServers; s++ {
		sum += p.StorageOf(s)
	}
	return sum
}

// TotalBandwidth returns the cluster's aggregate outgoing bandwidth.
func (p *Problem) TotalBandwidth() float64 {
	sum := 0.0
	for s := 0; s < p.NumServers; s++ {
		sum += p.BandwidthOf(s)
	}
	return sum
}

// Validate checks that the problem is well formed: a valid catalog, at least
// one server, positive resources, and a sane workload description.
func (p *Problem) Validate() error {
	if err := p.Catalog.Validate(); err != nil {
		return err
	}
	if p.NumServers <= 0 {
		return fmt.Errorf("core: need at least one server, got %d", p.NumServers)
	}
	if p.ServerStorage == nil && p.StoragePerServer <= 0 {
		return fmt.Errorf("core: storage per server must be positive, got %g", p.StoragePerServer)
	}
	if p.ServerBandwidth == nil && p.BandwidthPerServer <= 0 {
		return fmt.Errorf("core: bandwidth per server must be positive, got %g", p.BandwidthPerServer)
	}
	if p.ServerStorage != nil {
		if len(p.ServerStorage) != p.NumServers {
			return fmt.Errorf("core: ServerStorage has %d entries for %d servers", len(p.ServerStorage), p.NumServers)
		}
		for s, v := range p.ServerStorage {
			if v <= 0 {
				return fmt.Errorf("core: server %d storage must be positive, got %g", s, v)
			}
		}
	}
	if p.ServerBandwidth != nil {
		if len(p.ServerBandwidth) != p.NumServers {
			return fmt.Errorf("core: ServerBandwidth has %d entries for %d servers", len(p.ServerBandwidth), p.NumServers)
		}
		for s, v := range p.ServerBandwidth {
			if v <= 0 {
				return fmt.Errorf("core: server %d bandwidth must be positive, got %g", s, v)
			}
		}
	}
	if p.ArrivalRate < 0 {
		return fmt.Errorf("core: arrival rate must be non-negative, got %g", p.ArrivalRate)
	}
	if p.PeakPeriod <= 0 {
		return fmt.Errorf("core: peak period must be positive, got %g", p.PeakPeriod)
	}
	if p.BackboneBandwidth < 0 {
		return fmt.Errorf("core: backbone bandwidth must be non-negative, got %g", p.BackboneBandwidth)
	}
	// Every video must individually fit on at least one server, or no
	// layout exists.
	maxStorage := 0.0
	for s := 0; s < p.NumServers; s++ {
		if st := p.StorageOf(s); st > maxStorage {
			maxStorage = st
		}
	}
	for _, v := range p.Catalog {
		if v.SizeBytes() > maxStorage {
			return fmt.Errorf("core: video %d needs %.0f bytes but the largest server holds only %.0f",
				v.ID, v.SizeBytes(), maxStorage)
		}
	}
	return nil
}

// ReplicaCapacityPerServer returns C, the number of replicas one server can
// hold, for a fixed-bit-rate catalog (paper §4.1 re-defines storage capacity
// in replica units). It returns an error if bit rates differ across videos
// or the cluster is heterogeneous (use ReplicaCapacityOf then).
func (p *Problem) ReplicaCapacityPerServer() (int, error) {
	if !p.Homogeneous() {
		return 0, fmt.Errorf("core: per-server replica capacity undefined for a heterogeneous cluster")
	}
	return p.ReplicaCapacityOf(0)
}

// ReplicaCapacityOf returns the number of fixed-rate replicas server s can
// hold.
func (p *Problem) ReplicaCapacityOf(s int) (int, error) {
	rate, ok := p.Catalog.FixedBitRate()
	if !ok {
		return 0, fmt.Errorf("core: replica capacity undefined for mixed bit rates")
	}
	duration, ok := p.Catalog.FixedDuration()
	if !ok {
		return 0, fmt.Errorf("core: replica capacity undefined for mixed durations")
	}
	size := rate * duration / 8
	if size <= 0 {
		return 0, fmt.Errorf("core: non-positive video size")
	}
	return int(p.StorageOf(s) / size), nil
}

// ClusterReplicaCapacity returns the total number of fixed-rate replicas the
// cluster can hold: Σ_s ⌊storage_s / size⌋ (N·C when homogeneous).
func (p *Problem) ClusterReplicaCapacity() (int, error) {
	total := 0
	for s := 0; s < p.NumServers; s++ {
		c, err := p.ReplicaCapacityOf(s)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// StreamCapacityPerServer returns the number of concurrent fixed-rate streams
// one server's outgoing link supports; it requires a homogeneous cluster.
func (p *Problem) StreamCapacityPerServer() (int, error) {
	if !p.Homogeneous() {
		return 0, fmt.Errorf("core: per-server stream capacity undefined for a heterogeneous cluster")
	}
	rate, ok := p.Catalog.FixedBitRate()
	if !ok {
		return 0, fmt.Errorf("core: stream capacity undefined for mixed bit rates")
	}
	return int(p.BandwidthOf(0) / rate), nil
}

// PeakRequests returns λ·T, the expected number of requests during the peak
// period.
func (p *Problem) PeakRequests() float64 { return p.ArrivalRate * p.PeakPeriod }

// PeakWeight returns p_v·λ·T, video v's expected number of peak-period
// requests. Divided by the video's copy count it is the per-copy
// communication weight w_i the bandwidth-demand terms are built from; the
// scalable-bit-rate delta cache precomputes it per video.
func (p *Problem) PeakWeight(v int) float64 {
	return p.Catalog[v].Popularity * p.PeakRequests()
}

// SaturationArrivalRate returns the arrival rate (requests/s) at which the
// cluster's aggregate outgoing bandwidth is exactly consumed for a fixed-rate
// catalog, assuming perfectly balanced traffic: Σ_s ⌊B_s/b⌋ / T. The paper's
// example: 8 servers × 1.8 Gb/s at 4 Mb/s and 90 min gives 3600 streams, a
// peak rate of 40 requests/min.
func (p *Problem) SaturationArrivalRate() (float64, error) {
	rate, ok := p.Catalog.FixedBitRate()
	if !ok {
		return 0, fmt.Errorf("core: saturation rate undefined for mixed bit rates")
	}
	streams := 0
	for s := 0; s < p.NumServers; s++ {
		streams += int(p.BandwidthOf(s) / rate)
	}
	return float64(streams) / p.PeakPeriod, nil
}

// TargetTotalReplicas converts a replication degree (average replicas per
// video, ≥ 1) into a total replica budget, clamped to what the constraints
// allow: at least M (one replica each), at most min(N·M, cluster capacity).
func (p *Problem) TargetTotalReplicas(degree float64) (int, error) {
	if degree < 1 {
		return 0, fmt.Errorf("core: replication degree must be ≥ 1, got %g", degree)
	}
	cap, err := p.ClusterReplicaCapacity()
	if err != nil {
		return 0, err
	}
	m := p.M()
	if cap < m {
		return 0, fmt.Errorf("core: cluster holds only %d replicas but catalog has %d videos", cap, m)
	}
	total := int(math.Round(degree * float64(m)))
	if total < m {
		total = m
	}
	if max := p.NumServers * m; total > max {
		total = max
	}
	if total > cap {
		total = cap
	}
	return total, nil
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := *p
	q.Catalog = append(Catalog(nil), p.Catalog...)
	if p.ServerStorage != nil {
		q.ServerStorage = append([]float64(nil), p.ServerStorage...)
	}
	if p.ServerBandwidth != nil {
		q.ServerBandwidth = append([]float64(nil), p.ServerBandwidth...)
	}
	return &q
}
