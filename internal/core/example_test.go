package core_test

import (
	"fmt"
	"log"

	"vodcluster/internal/core"
)

// The paper's evaluation cluster in code: the saturation arrival rate works
// out to exactly 40 requests/minute — 3600 concurrent 4 Mb/s streams over a
// 90-minute peak.
func ExampleProblem_SaturationArrivalRate() {
	catalog, err := core.NewCatalog(100, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		log.Fatal(err)
	}
	problem := &core.Problem{
		Catalog:            catalog,
		NumServers:         8,
		StoragePerServer:   15 * catalog[0].SizeBytes(),
		BandwidthPerServer: 1.8 * core.Gbps,
		ArrivalRate:        40.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	sat, err := problem.SaturationArrivalRate()
	if err != nil {
		log.Fatal(err)
	}
	streams, _ := problem.StreamCapacityPerServer()
	fmt.Printf("%d streams/server, saturation %.0f requests/minute\n", streams, sat*core.Minute)
	// Output: 450 streams/server, saturation 40 requests/minute
}

// The two load-imbalance definitions of the paper on the same loads:
// Eq. 2 is the relative excess of the peak server, Eq. 3 the population
// standard deviation.
func ExampleImbalanceMax() {
	loads := []float64{55, 45}
	fmt.Printf("Eq.2 L = %.2f, Eq.3 L = %.0f\n", core.ImbalanceMax(loads), core.ImbalanceStd(loads))
	// Output: Eq.2 L = 0.10, Eq.3 L = 5
}
