// Package core models the video replication and placement problem of
// Zhou & Xu (ICPP 2002): a cluster of N homogeneous distributed-storage VoD
// servers, a catalog of M videos with Zipf-like popularities, and layouts
// that assign each video a number of whole-video replicas placed on distinct
// servers, subject to per-server storage and outgoing-bandwidth constraints.
//
// The package provides the problem description (Problem), candidate solutions
// (Layout), constraint validation (Eqs. 4–7 of the paper), communication
// weights, the two load-imbalance definitions (Eqs. 2 and 3), and the
// combinatorial objective (Eq. 1).
package core

// Unit helpers. All bandwidths and encoding rates in this repository are in
// bits per second, storage in bytes, and time in seconds; these constants
// keep call sites readable.
const (
	// Kbps is one kilobit per second.
	Kbps = 1e3
	// Mbps is one megabit per second.
	Mbps = 1e6
	// Gbps is one gigabit per second.
	Gbps = 1e9

	// KB, MB, GB are decimal storage units in bytes.
	KB = 1e3
	MB = 1e6
	GB = 1e9

	// Minute and Hour are durations in seconds.
	Minute = 60.0
	Hour   = 3600.0
)
