package core

import (
	"fmt"
	"sort"
)

// Layout is a candidate solution: how many replicas each video has and which
// servers hold them. Layouts returned by the placement algorithms always
// satisfy the hard constraints (storage Eq. 4, distinct servers Eq. 6, replica
// bounds Eq. 7); Validate re-checks them.
type Layout struct {
	// Replicas[i] is r_i, the number of replicas of video i.
	Replicas []int
	// Servers[i] lists the servers holding video i, sorted ascending;
	// len(Servers[i]) == Replicas[i].
	Servers [][]int
}

// NewLayout allocates an empty layout for m videos: one slot per video, no
// placements yet, Replicas all zero.
func NewLayout(m int) *Layout {
	return &Layout{Replicas: make([]int, m), Servers: make([][]int, m)}
}

// FromReplicaVector builds a layout shell with the given replica counts and
// no server assignments (placement algorithms fill Servers).
func FromReplicaVector(replicas []int) *Layout {
	l := NewLayout(len(replicas))
	copy(l.Replicas, replicas)
	return l
}

// Clone returns a deep copy of the layout.
func (l *Layout) Clone() *Layout {
	c := &Layout{
		Replicas: append([]int(nil), l.Replicas...),
		Servers:  make([][]int, len(l.Servers)),
	}
	for i, s := range l.Servers {
		c.Servers[i] = append([]int(nil), s...)
	}
	return c
}

// TotalReplicas returns Σ r_i.
func (l *Layout) TotalReplicas() int {
	sum := 0
	for _, r := range l.Replicas {
		sum += r
	}
	return sum
}

// ReplicationDegree returns the average number of replicas per video.
func (l *Layout) ReplicationDegree() float64 {
	if len(l.Replicas) == 0 {
		return 0
	}
	return float64(l.TotalReplicas()) / float64(len(l.Replicas))
}

// Place records that server s holds a replica of video v, keeping Servers[v]
// sorted. It returns an error if the server already holds the video
// (constraint Eq. 6).
func (l *Layout) Place(v, s int) error {
	list := l.Servers[v]
	i := sort.SearchInts(list, s)
	if i < len(list) && list[i] == s {
		return fmt.Errorf("core: server %d already holds video %d", s, v)
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = s
	l.Servers[v] = list
	return nil
}

// Holds reports whether server s holds a replica of video v.
func (l *Layout) Holds(v, s int) bool {
	list := l.Servers[v]
	i := sort.SearchInts(list, s)
	return i < len(list) && list[i] == s
}

// Weights returns the communication weight of each video's replicas under
// problem p: w_i = p_i · λ · T / r_i, the expected number of peak-period
// requests each replica serves with static round-robin scheduling (paper
// §3.2). Videos with zero replicas get weight 0 (they serve nothing; such
// layouts fail Validate anyway).
func (l *Layout) Weights(p *Problem) []float64 {
	peak := p.PeakRequests()
	w := make([]float64, len(l.Replicas))
	for i, r := range l.Replicas {
		if r > 0 {
			w[i] = p.Catalog[i].Popularity * peak / float64(r)
		}
	}
	return w
}

// ServerLoads returns l_j for each server: the expected number of peak-period
// requests it serves, i.e. the sum of the communication weights of the
// replicas it holds.
func (l *Layout) ServerLoads(p *Problem) []float64 {
	loads := make([]float64, p.NumServers)
	w := l.Weights(p)
	for v, servers := range l.Servers {
		for _, s := range servers {
			loads[s] += w[v]
		}
	}
	return loads
}

// ServerBandwidthDemand returns the expected concurrent outgoing bandwidth on
// each server in bits/s: Σ over its replicas of w_i · b_i · (duration/peak).
// With duration == peak period (the paper's conservative model) this is
// simply Σ w_i · b_i.
func (l *Layout) ServerBandwidthDemand(p *Problem) []float64 {
	demand := make([]float64, p.NumServers)
	w := l.Weights(p)
	for v, servers := range l.Servers {
		overlap := p.Catalog[v].Duration / p.PeakPeriod
		if overlap > 1 {
			overlap = 1
		}
		for _, s := range servers {
			demand[s] += w[v] * p.Catalog[v].BitRate * overlap
		}
	}
	return demand
}

// ServerStorageUsed returns the bytes of storage each server uses.
func (l *Layout) ServerStorageUsed(p *Problem) []float64 {
	used := make([]float64, p.NumServers)
	for v, servers := range l.Servers {
		size := p.Catalog[v].SizeBytes()
		for _, s := range servers {
			used[s] += size
		}
	}
	return used
}

// Validate checks the hard constraints of the formulation against problem p:
//
//   - every video has 1 ≤ r_i ≤ N replicas (Eq. 7),
//   - Servers[i] lists exactly r_i distinct servers in range (Eq. 6),
//   - no server's storage capacity is exceeded (Eq. 4).
//
// The outgoing-bandwidth constraint (Eq. 5) is soft under a fixed encoding
// bit rate — the paper notes it may be violated when offered load exceeds
// cluster bandwidth — so it is checked separately by BandwidthFeasible.
func (l *Layout) Validate(p *Problem) error {
	if err := l.ValidateStructure(p); err != nil {
		return err
	}
	used := l.ServerStorageUsed(p)
	for s, u := range used {
		if u > p.StorageOf(s)*(1+1e-9) {
			return fmt.Errorf("core: server %d uses %.0f bytes of %.0f available (Eq. 4)", s, u, p.StorageOf(s))
		}
	}
	return nil
}

// ValidateStructure checks every hard constraint except storage (Eqs. 6–7
// and shape). Callers that account storage with per-copy sizes — the
// scalable-bit-rate runtime, where copies of one video differ in size — use
// this and perform their own Eq. 4 check.
func (l *Layout) ValidateStructure(p *Problem) error {
	if len(l.Replicas) != p.M() {
		return fmt.Errorf("core: layout covers %d videos; problem has %d", len(l.Replicas), p.M())
	}
	for v, r := range l.Replicas {
		if r < 1 || r > p.NumServers {
			return fmt.Errorf("core: video %d has %d replicas; want 1..%d (Eq. 7)", v, r, p.NumServers)
		}
		servers := l.Servers[v]
		if len(servers) != r {
			return fmt.Errorf("core: video %d declares %d replicas but lists %d servers", v, r, len(servers))
		}
		for k, s := range servers {
			if s < 0 || s >= p.NumServers {
				return fmt.Errorf("core: video %d placed on invalid server %d", v, s)
			}
			if k > 0 && servers[k-1] >= s {
				return fmt.Errorf("core: video %d server list not strictly increasing (duplicate placement violates Eq. 6)", v)
			}
		}
	}
	return nil
}

// BandwidthFeasible reports whether the expected peak bandwidth demand of
// every server fits within its outgoing link (Eq. 5), and returns the
// worst-case utilization (demand / capacity).
func (l *Layout) BandwidthFeasible(p *Problem) (worst float64, ok bool) {
	demand := l.ServerBandwidthDemand(p)
	for s, d := range demand {
		u := d / p.BandwidthOf(s)
		if u > worst {
			worst = u
		}
	}
	return worst, worst <= 1+1e-9
}
