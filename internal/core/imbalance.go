package core

import "math"

// ImbalanceMax computes the paper's Eq. 2 load imbalance degree:
//
//	L = max_j (l_j − l̄) / l̄
//
// the relative excess of the most loaded server over the mean. It is 0 for
// perfectly balanced loads and for an all-zero load vector, and grows toward
// N−1 when one server carries everything.
func ImbalanceMax(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	mean := 0.0
	for _, l := range loads {
		mean += l
	}
	mean /= float64(len(loads))
	if mean == 0 {
		return 0
	}
	max := loads[0]
	for _, l := range loads[1:] {
		if l > max {
			max = l
		}
	}
	return (max - mean) / mean
}

// ImbalanceStd computes the paper's Eq. 3 load imbalance degree:
//
//	L = sqrt( Σ_j (l_j − l̄)² / N )
//
// the population standard deviation of the server loads. Unlike Eq. 2 it is
// not scale-free; ImbalanceCV divides it by the mean when a relative figure
// is needed.
func ImbalanceStd(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	mean := 0.0
	for _, l := range loads {
		mean += l
	}
	mean /= float64(len(loads))
	sum := 0.0
	for _, l := range loads {
		d := l - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(loads)))
}

// ImbalanceCV returns the coefficient of variation of the loads — Eq. 3
// normalized by the mean — or 0 for an all-zero vector.
func ImbalanceCV(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	mean := 0.0
	for _, l := range loads {
		mean += l
	}
	mean /= float64(len(loads))
	if mean == 0 {
		return 0
	}
	return ImbalanceStd(loads) / mean
}
