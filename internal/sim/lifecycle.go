package sim

import (
	"fmt"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/metrics"
	"vodcluster/internal/resilience"
	"vodcluster/internal/stats"
	"vodcluster/internal/workload"
	"vodcluster/internal/zipf"
)

// run is the per-execution state of one simulation: the event engine, the
// cluster, and the registered lifecycle hooks. Run (vod.go) builds it,
// schedules the initial events, and drains the queue; every transition of
// the session lifecycle — admit → serve → (end | tear | salvage) — flows
// through the fire* methods so hooks observe a consistent event stream.
type run struct {
	p        *core.Problem
	st       *cluster.State
	eng      *Engine
	sched    cluster.Scheduler
	col      *metrics.Collector
	rng      *stats.RNG
	duration float64
	warmup   float64
	pol      resilience.Policy
	degrader *resilience.Degrader

	// sessions tracks every live stream's lifecycle record, so failover can
	// re-schedule a salvaged stream's departure at its original end time and
	// later outcomes adjust statistics only for measured sessions.
	sessions map[cluster.StreamID]*Session

	hooks     []Hook
	rejectors []RejectInterceptor
	tearers   []TearInterceptor
	tickers   []Ticker
	deciders  []DecisionObserver

	// decSeq numbers decisions per kind. KindArrival sequence numbers are
	// policy-independent (one per arriving request, in arrival order), so
	// journals from different policies over the same trace align on them.
	decSeq [numDecisionKinds]int
	// seeded is the run's scheduler when it (or a policy under its
	// decorators) wants per-decision RNG streams; decRNG is the base
	// stream those are derived from — split from the run seed by decision
	// index, so common random numbers hold across policies even after
	// their states diverge.
	seeded cluster.SeededScheduler
	decRNG *stats.RNG
}

// register adds a hook and wires up any optional interfaces it implements.
func (r *run) register(h Hook) {
	r.hooks = append(r.hooks, h)
	if ic, ok := h.(RejectInterceptor); ok {
		r.rejectors = append(r.rejectors, ic)
	}
	if ic, ok := h.(TearInterceptor); ok {
		r.tearers = append(r.tearers, ic)
	}
	if tk, ok := h.(Ticker); ok {
		r.tickers = append(r.tickers, tk)
	}
	if ob, ok := h.(DecisionObserver); ok {
		r.deciders = append(r.deciders, ob)
	}
}

func (r *run) warm(now float64) bool { return now >= r.warmup }

// mustAfter schedules a callback from within an event handler, where a
// scheduling failure is a programming error (delays are non-negative).
func (r *run) mustAfter(delay float64, fn Handler) {
	if err := r.eng.ScheduleAfter(delay, fn); err != nil {
		panic(err)
	}
}

func (r *run) fireArrival(now float64, video int) {
	for _, h := range r.hooks {
		h.OnArrival(now, video)
	}
}

func (r *run) fireAdmit(now float64, s *Session) {
	for _, h := range r.hooks {
		h.OnAdmit(now, s)
	}
}

func (r *run) fireReject(now float64, video int, measured bool) {
	for _, h := range r.hooks {
		h.OnReject(now, video, measured)
	}
}

func (r *run) fireRetryQueued(now float64, video int, measured bool) {
	for _, h := range r.hooks {
		h.OnRetryQueued(now, video, measured)
	}
}

func (r *run) fireRetryOutcome(now float64, video int, admitted, measured bool) {
	for _, h := range r.hooks {
		h.OnRetryOutcome(now, video, admitted, measured)
	}
}

func (r *run) fireEnd(now float64, s *Session) {
	for _, h := range r.hooks {
		h.OnEnd(now, s)
	}
}

func (r *run) fireTear(now float64, s *Session) {
	for _, h := range r.hooks {
		h.OnTear(now, s)
	}
}

func (r *run) fireSalvage(now float64, old, s *Session) {
	for _, h := range r.hooks {
		h.OnSalvage(now, old, s)
	}
}

func (r *run) fireSample(now float64) {
	for _, h := range r.hooks {
		h.OnSample(now, r.st)
	}
}

func (r *run) fireDone(now float64) {
	for _, h := range r.hooks {
		h.OnDone(now, r.col)
	}
}

// departAfter schedules the session's normal departure. A server failure may
// tear the stream down first; a missing stream at departure time is expected
// then and the event is a no-op.
func (r *run) departAfter(id cluster.StreamID, delay float64) {
	if delay < 0 {
		delay = 0
	}
	r.mustAfter(delay, func(now float64) {
		if _, ok := r.st.Lookup(id); ok {
			if err := r.st.Release(id); err != nil {
				panic(err) // release of a live stream cannot fail
			}
			if s := r.sessions[id]; s != nil {
				r.fireEnd(now, s)
			}
		}
		delete(r.sessions, id)
	})
}

// startSession runs one admission attempt and, on success, registers the
// session and schedules its departure. measured is fixed at arrival time, so
// a retry that settles after the warmup boundary stays unmeasured. Callers
// fire OnAdmit; startSession itself stays silent so the retry path can order
// its own events around the admission.
func (r *run) startSession(now float64, video int, measured bool) (*Session, bool) {
	id, ok := r.st.Admit(video, r.sched)
	if !ok {
		return nil, false
	}
	st, _ := r.st.Lookup(id)
	s := &Session{
		ID:         id,
		Video:      video,
		Server:     st.Server,
		Rate:       st.Rate,
		Redirected: st.Redirected,
		Measured:   measured,
		End:        now + r.p.Catalog[video].Duration,
	}
	if r.degrader != nil && r.degrader.LastDegraded() {
		s.Degraded = true
	}
	r.sessions[id] = s
	r.departAfter(id, r.p.Catalog[video].Duration)
	return s, true
}

// claimDecision hands out the next sequence number of the given kind.
func (r *run) claimDecision(kind DecisionKind) int {
	seq := r.decSeq[kind]
	r.decSeq[kind]++
	return seq
}

// seedDecision installs the (kind, seq) decision-scoped RNG stream on the
// run's seeded scheduler, immediately before the scheduler runs. Deriving
// by decision index rather than drawing from one shared stream is what
// keeps randomized policies paired under common random numbers: decision k
// sees the same stream in every run at this seed, no matter how much
// randomness earlier decisions consumed.
func (r *run) seedDecision(kind DecisionKind, seq int) {
	if r.seeded == nil {
		return
	}
	r.seeded.SeedDecision(r.decRNG.Derive(int64(seq)*int64(numDecisionKinds) + int64(kind)))
}

// feasibleSet returns the servers that could serve video directly right
// now — the choice set a decision record documents. It returns nil without
// scanning when no decision observer is registered, keeping the default
// admission path cost-free.
func (r *run) feasibleSet(video int) []int {
	if len(r.deciders) == 0 {
		return nil
	}
	holders := r.st.Holders(video)
	feasible := make([]int, 0, len(holders))
	for _, s := range holders {
		if r.st.CanServe(s, video) {
			feasible = append(feasible, s)
		}
	}
	return feasible
}

// settleDecision builds and fires the decision record for one settled
// admission attempt; s is nil unless the outcome is Admitted. Observers run
// after the lifecycle events of the settlement (OnAdmit/OnReject/...).
func (r *run) settleDecision(kind DecisionKind, seq int, now float64, video int, s *Session, out Outcome, measured bool, feasible []int) {
	if len(r.deciders) == 0 {
		return
	}
	d := Decision{
		Kind: kind, Seq: seq, Time: now, Video: video,
		Outcome: out, Server: -1, Source: -1, Measured: measured, Feasible: feasible,
	}
	if s != nil {
		d.Server = s.Server
		d.Source = s.Server
		d.Redirected = s.Redirected
		if str, ok := r.st.Lookup(s.ID); ok {
			d.Source = str.Source
		}
	}
	for _, ob := range r.deciders {
		ob.OnDecision(d)
	}
}

// admit settles one arrival: admission, a reject interceptor taking
// ownership (retry queue), or a rejection. Every arrival produces exactly
// one KindArrival decision record, so journals align across policies.
func (r *run) admit(now float64, video int) {
	r.fireArrival(now, video)
	measured := r.warm(now)
	seq := r.claimDecision(KindArrival)
	r.seedDecision(KindArrival, seq)
	feasible := r.feasibleSet(video)
	if s, ok := r.startSession(now, video, measured); ok {
		r.fireAdmit(now, s)
		r.settleDecision(KindArrival, seq, now, video, s, Admitted, measured, feasible)
		return
	}
	for _, ic := range r.rejectors {
		if ic.InterceptReject(now, video, measured) {
			r.settleDecision(KindArrival, seq, now, video, nil, Deferred, measured, feasible)
			return
		}
	}
	r.fireReject(now, video, measured)
	r.settleDecision(KindArrival, seq, now, video, nil, Rejected, measured, feasible)
}

// failServer tears down one server and settles every interrupted stream: a
// tear interceptor may salvage it (session failover), a tear-for-good
// otherwise. Shared by the stochastic and the scripted failure paths.
func (r *run) failServer(now float64, srv int) {
	for _, t := range r.st.FailServer(srv) {
		old := r.sessions[t.ID]
		if old == nil {
			// Unreachable for streams admitted through startSession; keep
			// the zero-value semantics of the pre-hook bookkeeping maps.
			old = &Session{ID: t.ID, Video: t.Video, Server: t.Server}
		}
		delete(r.sessions, t.ID)
		seq := r.claimDecision(KindFailover)
		feasible := r.feasibleSet(old.Video)
		salvaged := false
		for _, ic := range r.tearers {
			s, ok := ic.InterceptTear(now, old)
			if !ok {
				continue
			}
			r.sessions[s.ID] = s
			r.fireSalvage(now, old, s)
			r.departAfter(s.ID, s.End-now)
			r.settleDecision(KindFailover, seq, now, old.Video, s, Admitted, old.Measured, feasible)
			salvaged = true
			break
		}
		if !salvaged {
			r.fireTear(now, old)
			r.settleDecision(KindFailover, seq, now, old.Video, nil, Rejected, old.Measured, feasible)
		}
	}
}

// scheduleTicker registers tk's periodic ticks across the arrival window:
// the first at t = interval, then every interval while the next tick still
// falls inside the window.
func (r *run) scheduleTicker(tk Ticker) error {
	interval := tk.Interval()
	if interval <= 0 {
		return fmt.Errorf("sim: controller interval must be positive, got %g", interval)
	}
	schedule := func(delay float64, fn func(now float64)) {
		r.mustAfter(delay, fn)
	}
	var tick func(now float64)
	tick = func(now float64) {
		tk.Tick(now, r.st, schedule)
		if now+interval <= r.duration {
			r.mustAfter(interval, tick)
		}
	}
	return r.eng.Schedule(interval, tick)
}

// scheduleTrace replays a materialized request trace.
func (r *run) scheduleTrace(tr *workload.Trace) error {
	for _, req := range tr.Requests {
		req := req
		if req.Video >= r.p.M() {
			return fmt.Errorf("sim: trace request targets video %d outside catalog of %d", req.Video, r.p.M())
		}
		if err := r.eng.Schedule(req.Time, func(now float64) { r.admit(now, req.Video) }); err != nil {
			return err
		}
	}
	return nil
}

// scheduleArrivals generates online arrivals from the given process with
// Zipf-like video selection, one event ahead of itself.
func (r *run) scheduleArrivals(arrivals workload.ArrivalProcess) error {
	// Derived substreams: arrival gaps and video choices must not interact
	// with any other randomness of the run.
	arrRNG := r.rng.Derive(1)
	vidRNG := r.rng.Derive(2)
	sampler, err := zipf.NewWeightedSampler(r.p.Catalog.Popularities())
	if err != nil {
		return fmt.Errorf("sim: building video sampler: %w", err)
	}
	var nextArrival func(now float64)
	nextArrival = func(now float64) {
		gap := arrivals.Next(arrRNG)
		t := now + gap
		if t > r.duration {
			return
		}
		if err := r.eng.Schedule(t, func(tt float64) {
			r.admit(tt, sampler.Sample(vidRNG))
			nextArrival(tt)
		}); err != nil {
			panic(err)
		}
	}
	nextArrival(0)
	return nil
}

// retryHook is the retry-with-backoff admission mechanism as a lifecycle
// hook: it intercepts rejections, re-attempts admission on the backed-off
// schedule, and settles each queued arrival as a success or a renege.
type retryHook struct {
	BaseHook
	r       *run
	retrier *resilience.Retrier
}

func (h *retryHook) InterceptReject(now float64, video int, measured bool) bool {
	if !h.retrier.TryEnqueue() {
		return false
	}
	h.r.fireRetryQueued(now, video, measured)
	h.retryLater(now, video, 0, 0, measured)
	return true
}

// retryLater re-queues one rejected arrival: wait the backed-off delay,
// attempt again, renege once the next delay would exhaust the patience.
// Each re-attempt settles one KindRetry decision — Admitted on success,
// Deferred when it re-queues, Rejected at the renege — so the decision
// journal carries the full settlement history of a deferred arrival.
func (h *retryHook) retryLater(now float64, video, attempt int, waited float64, measured bool) {
	delay, ok := h.retrier.Delay(attempt, waited)
	if !ok {
		h.retrier.Resolve()
		h.r.fireRetryOutcome(now, video, false, measured)
		seq := h.r.claimDecision(KindRetry)
		h.r.settleDecision(KindRetry, seq, now, video, nil, Rejected, measured, h.r.feasibleSet(video))
		return
	}
	h.r.mustAfter(delay, func(tt float64) {
		seq := h.r.claimDecision(KindRetry)
		h.r.seedDecision(KindRetry, seq)
		feasible := h.r.feasibleSet(video)
		if s, ok := h.r.startSession(tt, video, measured); ok {
			h.retrier.Resolve()
			h.r.fireAdmit(tt, s)
			h.r.fireRetryOutcome(tt, video, true, measured)
			h.r.settleDecision(KindRetry, seq, tt, video, s, Admitted, measured, feasible)
			return
		}
		h.r.settleDecision(KindRetry, seq, tt, video, nil, Deferred, measured, feasible)
		h.retryLater(tt, video, attempt+1, waited+delay, measured)
	})
}

// failoverHook is the session-failover mechanism as a lifecycle hook: it
// salvages torn sessions onto surviving replicas, preserving the original
// departure time and measurement status.
type failoverHook struct {
	BaseHook
	r *run
}

func (h *failoverHook) InterceptTear(now float64, old *Session) (*Session, bool) {
	nid, ok := resilience.TryFailover(h.r.st, old.Video, h.r.pol.DegradeFloor)
	if !ok {
		return nil, false
	}
	ns, _ := h.r.st.Lookup(nid)
	return &Session{
		ID:         nid,
		Video:      old.Video,
		Server:     ns.Server,
		Rate:       ns.Rate,
		Redirected: ns.Redirected,
		Measured:   old.Measured,
		End:        old.End,
	}, true
}

// repairHook runs the re-replication repairer as a ticker and reports its
// completed copies into the collector when the run finishes.
type repairHook struct {
	BaseHook
	repairer *resilience.Repairer
}

func (h *repairHook) Interval() float64 { return h.repairer.Interval() }

func (h *repairHook) Tick(now float64, st *cluster.State, schedule func(delay float64, fn func(now float64))) {
	h.repairer.Tick(now, st, schedule)
}

func (h *repairHook) OnDone(now float64, col *metrics.Collector) {
	col.ReReplications(h.repairer.Completed())
}

// samplerHook is the periodic load sampler as a ticker: inside the
// measurement window it fires OnSample for every hook (the metrics hook
// records the snapshot).
type samplerHook struct {
	BaseHook
	r        *run
	interval float64
}

func (h *samplerHook) Interval() float64 { return h.interval }

func (h *samplerHook) Tick(now float64, st *cluster.State, schedule func(delay float64, fn func(now float64))) {
	if h.r.warm(now) {
		h.r.fireSample(now)
	}
}
