package sim

import "fmt"

// DecisionKind classifies when in a request's lifecycle a decision settled.
type DecisionKind uint8

const (
	// KindArrival is the admission attempt made the moment a request
	// arrives. Exactly one KindArrival decision exists per arriving
	// request, in arrival order, so two runs over the same trace align
	// decision-for-decision by (KindArrival, Seq) — the invariant the
	// counterfactual lockstep harness is built on.
	KindArrival DecisionKind = iota
	// KindRetry is a queued retry settling (re-attempt or renege).
	KindRetry
	// KindFailover is the re-admission attempt for a session torn down by
	// a server failure (settled as Admitted on salvage, Rejected on a
	// tear-for-good).
	KindFailover

	numDecisionKinds
)

func (k DecisionKind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindRetry:
		return "retry"
	case KindFailover:
		return "failover"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Outcome is how one admission decision settled.
type Outcome uint8

const (
	// Admitted means the request got a stream.
	Admitted Outcome = iota
	// Rejected means the request left the system unserved.
	Rejected
	// Deferred means a reject interceptor (the retry queue) took
	// ownership; a later KindRetry decision settles the request for good.
	Deferred
)

func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case Rejected:
		return "rejected"
	case Deferred:
		return "deferred"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Decision is one first-class, replayable admission decision: which request
// it settled, what the policy could have done (the feasible set), and what
// it did. Every admit/reject/failover in a run flows through exactly one
// Decision, delivered to every registered DecisionObserver in event order;
// journaling a run's decisions and replaying another policy over the same
// trace is what turns end-of-run aggregates into per-decision comparisons.
type Decision struct {
	// Kind says which lifecycle stage settled the decision.
	Kind DecisionKind `json:"kind"`
	// Seq is the decision's index within its kind. For KindArrival it is
	// the arrival index in the run's request sequence — identical across
	// policies replaying the same trace.
	Seq int `json:"seq"`
	// Time is the decision's virtual time in seconds.
	Time float64 `json:"t"`
	// Video is the requested catalog rank.
	Video int `json:"video"`
	// Outcome is how the decision settled.
	Outcome Outcome `json:"outcome"`
	// Server is the server whose outgoing link carries the admitted
	// stream; -1 unless Outcome is Admitted.
	Server int `json:"server"`
	// Source is the replica holder feeding the stream (== Server for
	// direct service); -1 unless Outcome is Admitted.
	Source int `json:"source"`
	// Redirected reports an admission that crosses the backbone.
	Redirected bool `json:"redirected,omitempty"`
	// Measured reports whether the request falls inside the measurement
	// window (after warmup).
	Measured bool `json:"measured"`
	// Feasible lists the servers that could have served the request
	// directly at decision time (up, holding a replica, with bandwidth and
	// stream-slot room) — the choice set the policy decided over, recorded
	// before the decision charged any resources. A redirecting policy may
	// admit via the backbone even when Feasible is empty.
	Feasible []int `json:"feasible"`
}

// Loss is the per-decision loss the regret machinery accumulates: 1 for a
// request that left unserved, 0 for an admission. A Deferred decision has
// no loss yet; its KindRetry settlement carries it.
func (d Decision) Loss() float64 {
	if d.Outcome == Rejected {
		return 1
	}
	return 0
}

// Divergent reports whether two decisions for the same request settled
// differently, and classifies why ("" when identical). It compares what a
// counterfactual cares about — outcome, chosen server, and route — not
// bookkeeping like Feasible or Measured.
func (d Decision) Divergent(o Decision) string {
	switch {
	case d.Outcome != o.Outcome:
		return fmt.Sprintf("outcome: %s vs %s", d.Outcome, o.Outcome)
	case d.Outcome != Admitted:
		return ""
	case d.Server != o.Server:
		return fmt.Sprintf("server: %d vs %d", d.Server, o.Server)
	case d.Source != o.Source || d.Redirected != o.Redirected:
		return fmt.Sprintf("route: source %d (redirected=%t) vs source %d (redirected=%t)",
			d.Source, d.Redirected, o.Source, o.Redirected)
	}
	return ""
}

// DecisionObserver is an optional interface a Hook may implement to receive
// every settled admission decision of the run. Observers run synchronously
// in registration order, after the lifecycle events of the decision (e.g.
// OnAdmit/OnReject) have fired. The feasible set is only computed when at
// least one observer is registered, so runs without observers pay nothing.
type DecisionObserver interface {
	OnDecision(d Decision)
}

// DecisionJournal is a Hook that records every decision of one run in event
// order — the journal the counterfactual harness aligns and diffs. Journals
// are per-run state: parallel replications must not share one (use
// Config.NewHooks).
type DecisionJournal struct {
	BaseHook
	// Decisions accumulate in event order.
	Decisions []Decision
}

// OnDecision implements DecisionObserver.
func (j *DecisionJournal) OnDecision(d Decision) {
	j.Decisions = append(j.Decisions, d)
}

// Arrivals returns the journal's KindArrival decisions in arrival order —
// the policy-independent spine two journals align on.
func (j *DecisionJournal) Arrivals() []Decision {
	out := make([]Decision, 0, len(j.Decisions))
	for _, d := range j.Decisions {
		if d.Kind == KindArrival {
			out = append(out, d)
		}
	}
	return out
}
