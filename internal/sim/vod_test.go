package sim

import (
	"math"
	"testing"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
	"vodcluster/internal/workload"
)

// buildScenario returns the paper cluster (scaled down to keep tests fast)
// with a Zipf+SLF layout at the given degree.
func buildScenario(t testing.TB, lambdaPerMin, degree float64) (*core.Problem, *core.Layout) {
	t.Helper()
	c, err := core.NewCatalog(50, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	capPer := int(math.Ceil(degree * 50 / 4))
	p := &core.Problem{
		Catalog:            c,
		NumServers:         4,
		StoragePerServer:   float64(capPer) * c[0].SizeBytes(),
		BandwidthPerServer: 0.9 * core.Gbps, // 225 streams/server, saturation 10/min
		ArrivalRate:        lambdaPerMin / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	budget, err := p.TargetTotalReplicas(degree)
	if err != nil {
		t.Fatal(err)
	}
	replicas, err := replicate.ZipfInterval{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return p, layout
}

func TestRunRequiresProblemAndLayout(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	p, _ := buildScenario(t, 5, 1.2)
	if _, err := Run(Config{Problem: p}); err == nil {
		t.Fatal("missing layout accepted")
	}
}

func TestRunLightLoadNoRejections(t *testing.T) {
	p, layout := buildScenario(t, 2, 1.2) // 20% of saturation
	res, err := Run(Config{Problem: p, Layout: layout, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no arrivals generated")
	}
	if res.Rejected != 0 {
		t.Fatalf("light load rejected %d of %d", res.Rejected, res.Requests)
	}
	if res.Accepted != res.Requests {
		t.Fatal("accepted+rejected != requests")
	}
	// Expected arrivals: 2/min × 90 min = 180 ± statistical noise.
	if res.Requests < 120 || res.Requests > 260 {
		t.Fatalf("arrival count %d implausible for λ=2/min over 90 min", res.Requests)
	}
}

func TestRunOverloadRejects(t *testing.T) {
	p, layout := buildScenario(t, 20, 1.2) // 2× saturation
	res, err := Run(Config{Problem: p, Layout: layout, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectionRate < 0.2 {
		t.Fatalf("2× overload rejected only %.1f%%", 100*res.RejectionRate)
	}
	if res.PeakConcurrent > 900 {
		t.Fatalf("peak concurrent %d exceeds cluster stream capacity 900", res.PeakConcurrent)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	p, layout := buildScenario(t, 9, 1.2)
	a, err := Run(Config{Problem: p, Layout: layout, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Problem: p, Layout: layout, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.Rejected != b.Rejected || a.ImbalanceAvg != b.ImbalanceAvg {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Run(Config{Problem: p, Layout: layout, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests == c.Requests && a.Rejected == c.Rejected && a.ImbalanceAvg == c.ImbalanceAvg {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestRunServedPerServerSumsToAccepted(t *testing.T) {
	p, layout := buildScenario(t, 9, 1.5)
	res, err := Run(Config{Problem: p, Layout: layout, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range res.ServedPerServer {
		sum += c
	}
	if sum != res.Accepted {
		t.Fatalf("per-server served sums to %d, accepted %d", sum, res.Accepted)
	}
}

func TestRunTraceReplay(t *testing.T) {
	p, layout := buildScenario(t, 5, 1.2)
	gen, err := workload.NewGenerator(workload.NewPoissonPerMinute(5), p.M(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(p.PeakPeriod, 9)
	res, err := Run(Config{Problem: p, Layout: layout, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(tr.Requests) {
		t.Fatalf("replayed %d of %d trace requests", res.Requests, len(tr.Requests))
	}
	// Replaying the same trace must be fully deterministic regardless of
	// the seed (no online randomness remains).
	res2, err := Run(Config{Problem: p, Layout: layout, Trace: tr, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != res2.Rejected || res.ImbalanceAvg != res2.ImbalanceAvg {
		t.Fatal("trace replay depends on the seed")
	}
}

func TestRunTraceRejectsForeignVideos(t *testing.T) {
	p, layout := buildScenario(t, 5, 1.2)
	tr := &workload.Trace{Requests: []workload.Request{{Time: 1, Video: p.M() + 3}}}
	if _, err := Run(Config{Problem: p, Layout: layout, Trace: tr}); err == nil {
		t.Fatal("trace with out-of-catalog video accepted")
	}
}

func TestRunCustomSchedulerFactory(t *testing.T) {
	p, layout := buildScenario(t, 12, 1.2)
	resRR, err := Run(Config{Problem: p, Layout: layout, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resLL, err := Run(Config{
		Problem: p, Layout: layout, Seed: 3,
		NewScheduler: func() cluster.Scheduler { return cluster.LeastLoaded{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Least-loaded dominates static RR at moderate overload.
	if resLL.RejectionRate > resRR.RejectionRate+1e-9 {
		t.Fatalf("least-loaded (%.3f) worse than static RR (%.3f)",
			resLL.RejectionRate, resRR.RejectionRate)
	}
}

func TestRunNoArrivalRateFails(t *testing.T) {
	p, layout := buildScenario(t, 5, 1.2)
	q := p.Clone()
	q.ArrivalRate = 0
	if _, err := Run(Config{Problem: q, Layout: layout}); err == nil {
		t.Fatal("zero arrival rate with no trace accepted")
	}
}

func TestRunManyAggregates(t *testing.T) {
	p, layout := buildScenario(t, 9, 1.2)
	agg, results, err := RunMany(Config{Problem: p, Layout: layout, Seed: 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs() != 6 || len(results) != 6 {
		t.Fatalf("runs = %d, results = %d", agg.Runs(), len(results))
	}
	// Runs must differ (different derived seeds).
	allSame := true
	for _, r := range results[1:] {
		if r.Requests != results[0].Requests {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("replications look identical; seed derivation broken")
	}
}

func TestRunManyDeterministicAggregate(t *testing.T) {
	p, layout := buildScenario(t, 9, 1.2)
	a, _, err := RunMany(Config{Problem: p, Layout: layout, Seed: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunMany(Config{Problem: p, Layout: layout, Seed: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.RejectionRate.Mean() != b.RejectionRate.Mean() ||
		a.ImbalanceAvg.Mean() != b.ImbalanceAvg.Mean() {
		t.Fatal("parallel RunMany not deterministic")
	}
}

func TestRunManyValidation(t *testing.T) {
	p, layout := buildScenario(t, 9, 1.2)
	if _, _, err := RunMany(Config{Problem: p, Layout: layout}, 0); err == nil {
		t.Fatal("zero runs accepted")
	}
	if _, _, err := RunMany(Config{}, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func BenchmarkSimPeakPeriod(b *testing.B) {
	p, layout := buildScenario(b, 10, 1.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Problem: p, Layout: layout, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWarmupDiscardsTransient(t *testing.T) {
	p, layout := buildScenario(t, 9, 1.2)
	full, err := Run(Config{Problem: p, Layout: layout, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	warmed, err := Run(Config{Problem: p, Layout: layout, Seed: 4, Warmup: 30 * core.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if warmed.Requests >= full.Requests {
		t.Fatalf("warmup did not discard early arrivals: %d vs %d", warmed.Requests, full.Requests)
	}
	if warmed.Requests == 0 {
		t.Fatal("warmup discarded everything")
	}
	// The empty-cluster transient keeps mean utilization low in the full
	// measurement; discarding it must raise the reported figure.
	if warmed.MeanUtilization <= full.MeanUtilization {
		t.Fatalf("warmed utilization %g not above full-window %g",
			warmed.MeanUtilization, full.MeanUtilization)
	}
	if _, err := Run(Config{Problem: p, Layout: layout, Warmup: -1}); err == nil {
		t.Fatal("negative warmup accepted")
	}
}
