package sim

import (
	"math"
	"testing"

	"vodcluster/internal/anneal"
	"vodcluster/internal/core"
)

// scalableScenario anneals a small scalable-bit-rate layout and converts it
// for the runtime.
func scalableScenario(t testing.TB) (*anneal.BitRateProblem, *core.Layout, [][]float64) {
	t.Helper()
	c, err := core.NewCatalog(20, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         4,
		StoragePerServer:   20 * core.GB,
		BandwidthPerServer: 0.4 * core.Gbps,
		ArrivalRate:        3.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bp := &anneal.BitRateProblem{
		P:       p,
		RateSet: []float64{2 * core.Mbps, 4 * core.Mbps, 6 * core.Mbps, 8 * core.Mbps},
	}
	opts := anneal.DefaultOptions()
	opts.Seed = 12
	opts.MaxSteps = 20000
	best, _, err := bp.Optimize(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, rates, err := bp.Runtime(best)
	if err != nil {
		t.Fatal(err)
	}
	return bp, layout, rates
}

func TestCopyRatesSimulation(t *testing.T) {
	bp, layout, rates := scalableScenario(t)
	res, err := Run(Config{Problem: bp.P, Layout: layout, CopyRates: rates, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no arrivals")
	}
	// The annealer raises rates above the 2 Mb/s floor, and the measured
	// session quality must reflect the copies actually served: strictly
	// above the floor, at most the ceiling.
	if res.MeanSessionRateMbps <= 2 || res.MeanSessionRateMbps > 8 {
		t.Fatalf("mean session rate %.2f Mb/s outside (2, 8]", res.MeanSessionRateMbps)
	}
	// Analytic mean rate (weighted by copies, not popularity) and measured
	// (popularity-weighted) differ, but both live between the set's ends.
	e := bp.Evaluate(mustLayout(t, bp, layout, rates))
	if e.MeanRateMbps <= 2 {
		t.Fatalf("annealed analytic mean rate %.2f did not move off the floor", e.MeanRateMbps)
	}
}

// mustLayout reconstructs the BitRateLayout from runtime form for
// re-evaluation; it keeps the test honest about the conversion being
// lossless.
func mustLayout(t *testing.T, bp *anneal.BitRateProblem, layout *core.Layout, rates [][]float64) *anneal.BitRateLayout {
	t.Helper()
	l := anneal.NewBitRateLayout(bp.P.M(), bp.P.N())
	for v := range rates {
		for s, r := range rates[v] {
			if r == 0 {
				continue
			}
			idx := -1
			for i, setRate := range bp.RateSet {
				if math.Abs(setRate-r) < 1 {
					idx = i
				}
			}
			if idx == -1 {
				t.Fatalf("rate %g not in the set", r)
			}
			l.RateIdx[v][s] = int16(idx)
		}
	}
	return l
}

func TestCopyRatesFixedSetMatchesPlainRun(t *testing.T) {
	// Copy rates equal to the catalog rate must reproduce the plain run
	// exactly: same admissions, same metrics.
	p, layout := buildScenario(t, 9, 1.2)
	rates := make([][]float64, p.M())
	for v := range rates {
		rates[v] = make([]float64, p.N())
		for _, s := range layout.Servers[v] {
			rates[v][s] = p.Catalog[v].BitRate
		}
	}
	plain, err := Run(Config{Problem: p, Layout: layout, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	withRates, err := Run(Config{Problem: p, Layout: layout, CopyRates: rates, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rejected != withRates.Rejected || plain.Accepted != withRates.Accepted {
		t.Fatalf("uniform copy rates changed the outcome: %+v vs %+v", plain, withRates)
	}
	if math.Abs(withRates.MeanSessionRateMbps-4) > 1e-9 {
		t.Fatalf("session rate %.3f, want exactly 4", withRates.MeanSessionRateMbps)
	}
}

func TestCopyRatesValidation(t *testing.T) {
	p, layout := buildScenario(t, 9, 1.2)
	// Wrong shape.
	if _, err := Run(Config{Problem: p, Layout: layout, CopyRates: make([][]float64, 3)}); err == nil {
		t.Fatal("wrong-shape copy rates accepted")
	}
	// Missing rate for a held copy.
	rates := make([][]float64, p.M())
	for v := range rates {
		rates[v] = make([]float64, p.N())
	}
	if _, err := Run(Config{Problem: p, Layout: layout, CopyRates: rates}); err == nil {
		t.Fatal("held copies without rates accepted")
	}
	// Storage blow-up: every copy at a rate whose size exceeds the server.
	for v := range rates {
		for _, s := range layout.Servers[v] {
			rates[v][s] = 100 * core.Mbps
		}
	}
	if _, err := Run(Config{Problem: p, Layout: layout, CopyRates: rates}); err == nil {
		t.Fatal("oversized copies accepted")
	}
}
