package sim

import (
	"math"
	"reflect"
	"testing"

	"vodcluster/internal/avail"
	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/resilience"
	"vodcluster/internal/workload"
)

// resilienceScenario builds a deterministic two-server cluster for scripted
// failure tests: 12 Mb/s links (three 4 Mb/s streams each), v0 on both
// servers, v1 on server 1 only. Video duration is the given number of
// seconds so session lifetimes are easy to script around.
func resilienceScenario(t testing.TB, duration float64) (*core.Problem, *core.Layout) {
	t.Helper()
	c := core.Catalog{
		{ID: 0, Popularity: 0.6, BitRate: 4 * core.Mbps, Duration: duration},
		{ID: 1, Popularity: 0.4, BitRate: 4 * core.Mbps, Duration: duration},
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         2,
		StoragePerServer:   4 * c[0].SizeBytes(),
		BandwidthPerServer: 12 * core.Mbps,
		ArrivalRate:        1.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	l := core.NewLayout(2)
	l.Replicas = []int{2, 1}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 1}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	return p, l
}

func traceOf(reqs ...workload.Request) *workload.Trace {
	return &workload.Trace{Requests: reqs}
}

func firstAvailable() cluster.Scheduler { return cluster.FirstAvailable{} }

// TestResilienceAllOffMatchesBaseline is the bit-for-bit guarantee: a policy
// with every mechanism disabled must reproduce the nil-policy run exactly,
// including under stochastic failures.
func TestResilienceAllOffMatchesBaseline(t *testing.T) {
	p, layout := buildScenario(t, 9, 1.2)
	f := &avail.FailureModel{MTBF: 30 * core.Minute, MTTR: 10 * core.Minute}
	for _, withFailures := range []bool{false, true} {
		cfg := Config{Problem: p, Layout: layout, Seed: 3}
		if withFailures {
			cfg.Failures = f
		}
		base, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Resilience = &resilience.Policy{}
		off, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, off) {
			t.Fatalf("all-off policy diverged from baseline (failures=%v):\n%+v\nvs\n%+v",
				withFailures, base, off)
		}
	}
}

// TestScriptedFailoverExactCounts tears one server down under a replayed
// trace and asserts the exact failover/drop split. The rotation lands v0's
// streams alternately: server 0 gets streams 1 and 3, server 1 gets stream 2
// plus the v1 stream (8 of 12 Mb/s used). Failing server 0 tears two
// streams; the surviving replica has room for exactly one.
func TestScriptedFailoverExactCounts(t *testing.T) {
	p, layout := resilienceScenario(t, 3600)
	tr := traceOf(
		workload.Request{Time: 1, Video: 0}, // rotation → server 0
		workload.Request{Time: 2, Video: 0}, // rotation → server 1
		workload.Request{Time: 3, Video: 0}, // rotation → server 0
		workload.Request{Time: 4, Video: 1}, // → server 1
	)
	fail := []avail.FailureEvent{{At: 100, Server: 0}}

	off, err := Run(Config{Problem: p, Layout: layout, Trace: tr, FailAt: fail,
		NewScheduler: firstAvailable})
	if err != nil {
		t.Fatal(err)
	}
	if off.Dropped != 2 || off.FailedOver != 0 {
		t.Fatalf("baseline dropped %d failed-over %d, want 2/0", off.Dropped, off.FailedOver)
	}

	on, err := Run(Config{Problem: p, Layout: layout, Trace: tr, FailAt: fail,
		NewScheduler: firstAvailable, Resilience: &resilience.Policy{Failover: true}})
	if err != nil {
		t.Fatal(err)
	}
	if on.FailedOver != 1 || on.Dropped != 1 {
		t.Fatalf("failed over %d dropped %d, want 1/1", on.FailedOver, on.Dropped)
	}
	if on.Requests != 4 || on.Accepted != 4 {
		t.Fatalf("requests %d accepted %d, want 4/4", on.Requests, on.Accepted)
	}
	if math.Abs(on.FailureRate-0.25) > 1e-12 {
		t.Fatalf("failure rate %g, want 1/4", on.FailureRate)
	}
}

// TestScriptedRetryExactCounts saturates the cluster, replays one more
// arrival, and checks both retry outcomes. The counts hold for any jitter
// draw: attempt times stay inside windows that force the same outcome.
func TestScriptedRetryExactCounts(t *testing.T) {
	p, layout := resilienceScenario(t, 100)
	reqs := make([]workload.Request, 0, 7)
	for i := 0; i < 6; i++ { // fill both servers: streams end at t=101..106
		reqs = append(reqs, workload.Request{Time: float64(i + 1), Video: 0})
	}
	reqs = append(reqs, workload.Request{Time: 10, Video: 0})
	tr := traceOf(reqs...)

	// Patient client: backoff walks past the stream departures and succeeds.
	patient := &resilience.Policy{Retry: true, RetryPatience: 1000}
	res, err := Run(Config{Problem: p, Layout: layout, Trace: tr, Seed: 1,
		NewScheduler: firstAvailable, Resilience: patient})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried != 1 || res.RetrySucceeded != 1 || res.Reneged != 0 {
		t.Fatalf("retry counters %d/%d/%d, want 1/1/0",
			res.Retried, res.RetrySucceeded, res.Reneged)
	}
	if res.Requests != 7 || res.Accepted != 7 || res.Rejected != 0 {
		t.Fatalf("requests %d accepted %d rejected %d, want 7/7/0",
			res.Requests, res.Accepted, res.Rejected)
	}

	// Impatient client: the second delay always exceeds the patience
	// (first two delays sum to at least 11.25 s even at minimum jitter).
	impatient := &resilience.Policy{Retry: true, RetryPatience: 10}
	res, err = Run(Config{Problem: p, Layout: layout, Trace: tr, Seed: 1,
		NewScheduler: firstAvailable, Resilience: impatient})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried != 1 || res.RetrySucceeded != 0 || res.Reneged != 1 {
		t.Fatalf("retry counters %d/%d/%d, want 1/0/1",
			res.Retried, res.RetrySucceeded, res.Reneged)
	}
	if res.Requests != 7 || res.Accepted != 6 {
		t.Fatalf("requests %d accepted %d, want 7/6", res.Requests, res.Accepted)
	}
	if res.Rejected != 0 {
		t.Fatal("a renege was miscounted as an instant reject")
	}
	if math.Abs(res.FailureRate-1.0/7) > 1e-12 {
		t.Fatalf("failure rate %g, want 1/7", res.FailureRate)
	}
}

// TestScriptedDegradationExactCounts serves a saturated full-rate video from
// its half-rate copy and checks the delivered-quality accounting.
func TestScriptedDegradationExactCounts(t *testing.T) {
	p, l := resilienceScenario(t, 100)
	// Reverse the layout sense: v0 at 4 Mb/s on server 0 and 2 Mb/s on
	// server 1; v1 full-rate on server 0 only.
	l = core.NewLayout(2)
	l.Replicas = []int{2, 1}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 0}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	rates := [][]float64{
		{4 * core.Mbps, 2 * core.Mbps},
		{4 * core.Mbps, 0},
	}
	// Three v1 streams fill server 0; the v0 arrival finds its designated
	// full-rate copy saturated.
	tr := traceOf(
		workload.Request{Time: 1, Video: 1},
		workload.Request{Time: 2, Video: 1},
		workload.Request{Time: 3, Video: 1},
		workload.Request{Time: 10, Video: 0},
	)

	off, err := Run(Config{Problem: p, Layout: l, Trace: tr, CopyRates: rates})
	if err != nil {
		t.Fatal(err)
	}
	if off.Rejected != 1 || off.Degraded != 0 {
		t.Fatalf("baseline rejected %d degraded %d, want 1/0", off.Rejected, off.Degraded)
	}

	on, err := Run(Config{Problem: p, Layout: l, Trace: tr, CopyRates: rates,
		Resilience: &resilience.Policy{Degrade: true}})
	if err != nil {
		t.Fatal(err)
	}
	if on.Degraded != 1 || on.Rejected != 0 || on.Accepted != 4 {
		t.Fatalf("degraded %d rejected %d accepted %d, want 1/0/4",
			on.Degraded, on.Rejected, on.Accepted)
	}
	if math.Abs(on.DegradationRatio-0.5) > 1e-12 {
		t.Fatalf("degradation ratio %g, want 0.5", on.DegradationRatio)
	}
	// Session quality: (4+4+4+2)/4 = 3.5 Mb/s.
	if math.Abs(on.MeanSessionRateMbps-3.5) > 1e-9 {
		t.Fatalf("mean session rate %g, want 3.5", on.MeanSessionRateMbps)
	}
}

// TestRetryQueueDrains is the conservation property under stochastic load:
// every queued retry settles as a success or a renege, and every arrival
// settles exactly once.
func TestRetryQueueDrains(t *testing.T) {
	p, layout := buildScenario(t, 20, 1.2) // 2× saturation: retries abound
	f := &avail.FailureModel{MTBF: 30 * core.Minute, MTTR: 10 * core.Minute}
	for seed := int64(1); seed <= 3; seed++ {
		res, err := Run(Config{Problem: p, Layout: layout, Seed: seed, Failures: f,
			Resilience: &resilience.Policy{Retry: true}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Retried == 0 {
			t.Fatalf("seed %d: overload exercised no retries", seed)
		}
		if res.Retried != res.RetrySucceeded+res.Reneged {
			t.Fatalf("seed %d: retry queue leaked: %d queued, %d succeeded + %d reneged",
				seed, res.Retried, res.RetrySucceeded, res.Reneged)
		}
		if res.Accepted+res.Rejected+res.Reneged != res.Requests {
			t.Fatalf("seed %d: arrivals not conserved: %d+%d+%d != %d",
				seed, res.Accepted, res.Rejected, res.Reneged, res.Requests)
		}
	}
}

// TestWarmupDropAccounting is the warmup-asymmetry regression test: a stream
// admitted before the warmup boundary is unmeasured, so a post-warmup
// failure tearing it down must not count against FailureRate.
func TestWarmupDropAccounting(t *testing.T) {
	p, layout := resilienceScenario(t, 3600)
	tr := traceOf(
		workload.Request{Time: 10, Video: 0},  // pre-warmup → server 0
		workload.Request{Time: 150, Video: 1}, // post-warmup → server 1
	)
	fail := []avail.FailureEvent{{At: 200, Server: 0}}
	cfg := Config{Problem: p, Layout: layout, Trace: tr, FailAt: fail,
		NewScheduler: firstAvailable, Warmup: 100}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 || res.Accepted != 1 {
		t.Fatalf("measured %d requests, want only the post-warmup arrival", res.Requests)
	}
	if res.Dropped != 0 || res.FailureRate != 0 {
		t.Fatalf("unmeasured pre-warmup stream counted: dropped %d failure rate %g",
			res.Dropped, res.FailureRate)
	}
	// Control: without warmup the same failure is a measured drop.
	cfg.Warmup = 0
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2 || res.Dropped != 1 {
		t.Fatalf("control run: requests %d dropped %d, want 2/1", res.Requests, res.Dropped)
	}
	if math.Abs(res.FailureRate-0.5) > 1e-12 {
		t.Fatalf("control failure rate %g, want 0.5", res.FailureRate)
	}
}

// TestResilienceReducesFailures is the headline off-vs-on comparison: under
// the same stochastic failure process, enabling the recovery mechanisms must
// strictly reduce both dropped streams and the overall failure rate, while
// exercising every new counter.
func TestResilienceReducesFailures(t *testing.T) {
	p, layout := buildScenario(t, 8, 1.2)
	// buildScenario sizes storage to the layout exactly; repair needs spare
	// room on the destination to land a new copy.
	p = p.Clone()
	p.StoragePerServer *= 1.5
	f := &avail.FailureModel{MTBF: 30 * core.Minute, MTTR: 10 * core.Minute}
	const runs = 8

	offAgg, _, err := RunMany(Config{Problem: p, Layout: layout, Seed: 3, Failures: f}, runs)
	if err != nil {
		t.Fatal(err)
	}

	pol := resilience.All()
	// The scenario's links run near saturation, so a repair copy at the
	// default 200 Mb/s rarely finds headroom on the source link; a slower
	// copy stream always fits and still completes well within a downtime.
	pol.RepairRate = 50 * core.Mbps
	onAgg, onRuns, err := RunMany(Config{Problem: p, Layout: layout, Seed: 3, Failures: f,
		Resilience: &pol}, runs)
	if err != nil {
		t.Fatal(err)
	}

	if on, off := onAgg.Dropped.Mean(), offAgg.Dropped.Mean(); on >= off {
		t.Fatalf("resilience did not reduce drops: %.2f vs %.2f", on, off)
	}
	if on, off := onAgg.FailureRate.Mean(), offAgg.FailureRate.Mean(); on >= off {
		t.Fatalf("resilience did not reduce the failure rate: %.4f vs %.4f", on, off)
	}
	var failedOver, retried, succeeded, rereps int
	for _, r := range onRuns {
		failedOver += r.FailedOver
		retried += r.Retried
		succeeded += r.RetrySucceeded
		rereps += r.ReReplications
		if r.Retried != r.RetrySucceeded+r.Reneged {
			t.Fatal("retry queue leaked")
		}
	}
	if failedOver == 0 {
		t.Fatal("failover never exercised")
	}
	if retried == 0 || succeeded == 0 {
		t.Fatalf("retry path barely exercised: %d queued, %d succeeded", retried, succeeded)
	}
	if rereps == 0 {
		t.Fatal("re-replication repair never completed a copy")
	}
}
