package sim

import (
	"testing"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var fired []int
	for i, at := range []float64{5, 1, 3, 2, 4} {
		i, at := i, at
		if err := e.Schedule(at, func(float64) { fired = append(fired, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	want := []int{1, 3, 2, 4, 0}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired order %v, want %v", fired, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %g, want 5", e.Now())
	}
}

func TestEngineFIFOTies(t *testing.T) {
	e := NewEngine()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(1, func(float64) { fired = append(fired, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	for i := range fired {
		if fired[i] != i {
			t.Fatalf("ties not FIFO: %v", fired)
		}
	}
}

func TestEngineRejectsPast(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(2, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if err := e.Schedule(1, func(float64) {}); err == nil {
		t.Fatal("scheduling in the past accepted")
	}
}

func TestEngineScheduleAfter(t *testing.T) {
	e := NewEngine()
	var at float64
	if err := e.Schedule(3, func(now float64) {
		if err := e.ScheduleAfter(2, func(now2 float64) { at = now2 }); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if at != 5 {
		t.Fatalf("chained event fired at %g, want 5", at)
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		if err := e.Schedule(at, func(now float64) { fired = append(fired, now) }); err != nil {
			t.Fatal(err)
		}
	}
	n := e.Run(2.5)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("Run(2.5) fired %d events", n)
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock after horizon = %g, want 2.5", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	// Events exactly at the horizon fire.
	n = e.Run(4)
	if n != 2 || e.Now() != 4 {
		t.Fatalf("Run(4) fired %d, clock %g", n, e.Now())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	if e.RunAll() != 0 {
		t.Fatal("RunAll on empty queue fired something")
	}
}

func TestEngineHandlersCanSchedule(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(now float64)
	tick = func(now float64) {
		count++
		if count < 5 {
			if err := e.ScheduleAfter(1, tick); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Schedule(0, tick); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if count != 5 {
		t.Fatalf("recursive scheduling fired %d times", count)
	}
	if e.Now() != 4 {
		t.Fatalf("clock = %g", e.Now())
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			_ = e.Schedule(float64(j%37), func(float64) {})
		}
		e.RunAll()
	}
}
