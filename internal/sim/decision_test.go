package sim

import (
	"reflect"
	"testing"

	"vodcluster/internal/avail"
	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/resilience"
)

// decisionProblem builds a small, saturable cluster: 3 servers, 4 videos,
// hot video on every server, the rest on one each.
func decisionProblem(t *testing.T) (*core.Problem, *core.Layout) {
	t.Helper()
	catalog, err := core.NewCatalog(4, 0.75, 4e6, 600)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            catalog,
		NumServers:         3,
		StoragePerServer:   1e12,
		BandwidthPerServer: 20e6, // 5 concurrent streams per server
		ArrivalRate:        0.2,  // 120 arrivals over a 600 s window
		PeakPeriod:         600,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	layout := &core.Layout{
		Replicas: []int{3, 1, 1, 1},
		Servers:  [][]int{{0, 1, 2}, {0}, {1}, {2}},
	}
	return p, layout
}

func TestDecisionJournalAlignsWithArrivals(t *testing.T) {
	p, layout := decisionProblem(t)
	j := &DecisionJournal{}
	res, err := Run(Config{
		Problem: p, Layout: layout, Seed: 7,
		Hooks: []Hook{j},
	})
	if err != nil {
		t.Fatal(err)
	}
	arr := j.Arrivals()
	if len(arr) != res.Arrivals {
		t.Fatalf("journal has %d arrival decisions, result counted %d arrivals", len(arr), res.Arrivals)
	}
	if len(arr) == 0 {
		t.Fatal("no arrivals in the run")
	}
	admitted, rejected := 0, 0
	lastTime := 0.0
	for i, d := range arr {
		if d.Seq != i {
			t.Fatalf("arrival %d has seq %d", i, d.Seq)
		}
		if d.Time < lastTime {
			t.Fatalf("arrival %d at t=%g before previous t=%g", i, d.Time, lastTime)
		}
		lastTime = d.Time
		if d.Feasible == nil {
			t.Fatalf("arrival %d has no feasible set", i)
		}
		switch d.Outcome {
		case Admitted:
			admitted++
			if d.Server < 0 || d.Source < 0 {
				t.Fatalf("admitted decision %d has server %d source %d", i, d.Server, d.Source)
			}
			found := false
			for _, s := range d.Feasible {
				if s == d.Server {
					found = true
				}
			}
			if !found && !d.Redirected {
				t.Fatalf("decision %d admitted on server %d outside feasible set %v", i, d.Server, d.Feasible)
			}
		case Rejected:
			rejected++
			if d.Server != -1 || d.Source != -1 {
				t.Fatalf("rejected decision %d carries server %d", i, d.Server)
			}
		default:
			t.Fatalf("arrival %d settled %v with no retry mechanism", i, d.Outcome)
		}
	}
	if admitted != res.Accepted || rejected != res.Rejected {
		t.Fatalf("journal admitted/rejected = %d/%d, result = %d/%d",
			admitted, rejected, res.Accepted, res.Rejected)
	}
}

func TestDecisionJournalDeterministic(t *testing.T) {
	p, layout := decisionProblem(t)
	run := func() []Decision {
		j := &DecisionJournal{}
		if _, err := Run(Config{Problem: p, Layout: layout, Seed: 11, Hooks: []Hook{j}}); err != nil {
			t.Fatal(err)
		}
		return j.Decisions
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs at the same seed produced different journals")
	}
}

func TestSeededSchedulerJournalDeterministic(t *testing.T) {
	p, layout := decisionProblem(t)
	run := func() []Decision {
		j := &DecisionJournal{}
		cfg := Config{
			Problem: p, Layout: layout, Seed: 13,
			NewScheduler: func() cluster.Scheduler { return cluster.NewRandomHolder(0) },
			Hooks:        []Hook{j},
		}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return j.Decisions
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("random policy diverged across runs at the same seed")
	}
	spread := map[int]bool{}
	for _, d := range a {
		if d.Outcome == Admitted {
			spread[d.Server] = true
		}
	}
	if len(spread) < 2 {
		t.Fatalf("random policy used %d servers, expected spread", len(spread))
	}
}

func TestRetryDecisionsSettleDeferredArrivals(t *testing.T) {
	p, layout := decisionProblem(t)
	q := p.Clone()
	q.ArrivalRate = 2 // heavily saturating, forces rejections into the queue
	j := &DecisionJournal{}
	res, err := Run(Config{
		Problem: q, Layout: layout, Seed: 3,
		Resilience: &resilience.Policy{Retry: true},
		Hooks:      []Hook{j},
	})
	if err != nil {
		t.Fatal(err)
	}
	deferred, retries := 0, 0
	for _, d := range j.Decisions {
		switch {
		case d.Kind == KindArrival && d.Outcome == Deferred:
			deferred++
		case d.Kind == KindRetry:
			retries++
		}
	}
	if deferred == 0 {
		t.Fatal("saturating run with retry enabled deferred no arrivals")
	}
	if retries == 0 {
		t.Fatal("deferred arrivals produced no retry decisions")
	}
	// Every queued arrival settles exactly once: admissions + reneges.
	settledAdmit, settledRenege := 0, 0
	for _, d := range j.Decisions {
		if d.Kind != KindRetry {
			continue
		}
		switch d.Outcome {
		case Admitted:
			settledAdmit++
		case Rejected:
			settledRenege++
		}
	}
	if settledAdmit+settledRenege != deferred {
		t.Fatalf("%d deferred arrivals settled as %d admits + %d reneges",
			deferred, settledAdmit, settledRenege)
	}
	if res.Reneged != 0 && settledRenege == 0 {
		t.Fatal("result counts reneges the journal missed")
	}
}

func TestFailoverDecisionsRecorded(t *testing.T) {
	p, layout := decisionProblem(t)
	j := &DecisionJournal{}
	res, err := Run(Config{
		Problem: p, Layout: layout, Seed: 5,
		FailAt:     []avail.FailureEvent{{Server: 0, At: 300}},
		Resilience: &resilience.Policy{Failover: true},
		Hooks:      []Hook{j},
	})
	if err != nil {
		t.Fatal(err)
	}
	fo := 0
	salvaged := 0
	for _, d := range j.Decisions {
		if d.Kind != KindFailover {
			continue
		}
		fo++
		if d.Outcome == Admitted {
			salvaged++
			if d.Server == 0 {
				t.Fatal("failover decision re-admitted onto the failed server")
			}
		}
	}
	if fo == 0 {
		t.Fatal("server failure produced no failover decisions")
	}
	if salvaged != res.FailedOver {
		t.Fatalf("journal salvaged %d, result counted %d", salvaged, res.FailedOver)
	}
}

func TestDivergentClassifiesDifferences(t *testing.T) {
	base := Decision{Outcome: Admitted, Server: 1, Source: 1}
	if why := base.Divergent(base); why != "" {
		t.Fatalf("identical decisions diverge: %q", why)
	}
	cases := []struct {
		alt  Decision
		want string
	}{
		{Decision{Outcome: Rejected, Server: -1, Source: -1}, "outcome"},
		{Decision{Outcome: Admitted, Server: 2, Source: 2}, "server"},
		{Decision{Outcome: Admitted, Server: 1, Source: 2, Redirected: true}, "route"},
	}
	for _, c := range cases {
		why := base.Divergent(c.alt)
		if why == "" {
			t.Fatalf("no divergence against %+v", c.alt)
		}
		if got := why[:len(c.want)]; got != c.want {
			t.Fatalf("divergence %q, want prefix %q", why, c.want)
		}
	}
	rejA := Decision{Outcome: Rejected, Server: -1, Source: -1}
	if why := rejA.Divergent(rejA); why != "" {
		t.Fatalf("two rejections diverge: %q", why)
	}
}
