package sim

import (
	"math"
	"testing"

	"vodcluster/internal/avail"
	"vodcluster/internal/core"
)

func TestFailuresDropStreams(t *testing.T) {
	p, layout := buildScenario(t, 8, 1.2)
	// Aggressive failures: MTBF 30 min, MTTR 10 min, over a 90-minute run:
	// each of the 4 servers fails ~2-3 times.
	f := &avail.FailureModel{MTBF: 30 * core.Minute, MTTR: 10 * core.Minute}
	res, err := Run(Config{Problem: p, Layout: layout, Seed: 3, Failures: f})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("aggressive failure model dropped nothing")
	}
	if res.FailureRate <= res.RejectionRate {
		t.Fatal("failure rate must exceed rejection rate when streams drop")
	}
	if res.FailureRate > 1 {
		t.Fatalf("failure rate %g out of range", res.FailureRate)
	}
	// Without failures the same seed drops nothing.
	clean, err := Run(Config{Problem: p, Layout: layout, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Dropped != 0 {
		t.Fatal("failure-free run dropped streams")
	}
	if clean.FailureRate != clean.RejectionRate {
		t.Fatal("failure-free rates must coincide")
	}
}

func TestFailuresValidated(t *testing.T) {
	p, layout := buildScenario(t, 8, 1.2)
	bad := &avail.FailureModel{MTBF: 0, MTTR: 10}
	if _, err := Run(Config{Problem: p, Layout: layout, Failures: bad}); err == nil {
		t.Fatal("invalid failure model accepted")
	}
}

func TestFailuresDeterministic(t *testing.T) {
	p, layout := buildScenario(t, 8, 1.2)
	f := &avail.FailureModel{MTBF: 45 * core.Minute, MTTR: 10 * core.Minute}
	a, err := Run(Config{Problem: p, Layout: layout, Seed: 11, Failures: f})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Problem: p, Layout: layout, Seed: 11, Failures: f})
	if err != nil {
		t.Fatal(err)
	}
	if a.Dropped != b.Dropped || a.Rejected != b.Rejected {
		t.Fatal("failure injection not deterministic")
	}
}

// TestReplicationImprovesAvailability is the paper's reliability claim made
// quantitative: under the same failure process, a degree-2 layout fails
// fewer sessions than a degree-1 layout.
func TestReplicationImprovesAvailability(t *testing.T) {
	f := &avail.FailureModel{MTBF: 60 * core.Minute, MTTR: 20 * core.Minute}
	rate := func(degree float64) float64 {
		p, layout := buildScenario(t, 6, degree)
		agg, _, err := RunMany(Config{Problem: p, Layout: layout, Seed: 5, Failures: f}, 12)
		if err != nil {
			t.Fatal(err)
		}
		return agg.FailureRate.Mean()
	}
	low := rate(1.0)
	high := rate(2.0)
	if high >= low {
		t.Fatalf("degree 2.0 failure rate %.4f not below degree 1.0's %.4f", high, low)
	}
}

// TestAnalyticUnavailabilityTracksSimulation compares the closed-form
// unavailable-request mass against the measured rejection excess under
// light load, where bandwidth plays no role and only failures reject
// requests.
func TestAnalyticUnavailabilityTracksSimulation(t *testing.T) {
	p, layout := buildScenario(t, 1, 1.2) // 10% of saturation: no bw rejections
	f := &avail.FailureModel{MTBF: 40 * core.Minute, MTTR: 20 * core.Minute}
	agg, _, err := RunMany(Config{Problem: p, Layout: layout, Seed: 9, Failures: f}, 30)
	if err != nil {
		t.Fatal(err)
	}
	analytic := avail.UnavailableRequestMass(p, layout, f.Unavailability())
	measured := agg.RejectionRate.Mean()
	// The transient (all servers start up) biases measured below the
	// steady state; require the same order of magnitude.
	if measured <= 0 {
		t.Fatal("no failure-induced rejections measured")
	}
	if ratio := measured / analytic; ratio < 0.2 || ratio > 2.5 {
		t.Fatalf("measured %.4f vs analytic %.4f (ratio %.2f)", measured, analytic, ratio)
	}
}

func TestStreamLimitBindsAdmission(t *testing.T) {
	p, layout := buildScenario(t, 9, 1.2)
	unlimited, err := Run(Config{Problem: p, Layout: layout, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Cap each server at half its network stream capacity (225 → 100).
	capped, err := Run(Config{Problem: p, Layout: layout, Seed: 2, StreamLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if capped.RejectionRate <= unlimited.RejectionRate {
		t.Fatalf("disk cap did not bind: %.4f vs %.4f",
			capped.RejectionRate, unlimited.RejectionRate)
	}
	if capped.PeakConcurrent > 4*100 {
		t.Fatalf("peak concurrent %d exceeds 4 servers × limit 100", capped.PeakConcurrent)
	}
	// A cap far above network capacity changes nothing.
	loose, err := Run(Config{Problem: p, Layout: layout, Seed: 2, StreamLimit: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loose.RejectionRate-unlimited.RejectionRate) > 1e-12 {
		t.Fatal("ineffective cap changed the outcome")
	}
}
