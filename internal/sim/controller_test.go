package sim

import (
	"testing"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/dynrep"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
	"vodcluster/internal/workload"
)

// countingController verifies the hook wiring: Observe per arrival, Tick at
// the cadence.
type countingController struct {
	interval float64
	observed int
	ticks    int
}

func (c *countingController) Observe(int) { c.observed++ }

func (c *countingController) Interval() float64 { return c.interval }

func (c *countingController) Tick(float64, *cluster.State, func(float64, func(float64))) {
	c.ticks++
}

func TestControllerHookWiring(t *testing.T) {
	p, layout := buildScenario(t, 5, 1.2)
	ctrl := &countingController{interval: 600}
	res, err := Run(Config{
		Problem: p, Layout: layout, Seed: 1,
		NewController: func() Controller { return ctrl },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.observed != res.Requests {
		t.Fatalf("observed %d of %d requests", ctrl.observed, res.Requests)
	}
	// 90-minute run, 600 s cadence → 9 ticks.
	if ctrl.ticks != 9 {
		t.Fatalf("ticks = %d, want 9", ctrl.ticks)
	}
}

func TestControllerBadIntervalRejected(t *testing.T) {
	p, layout := buildScenario(t, 5, 1.2)
	_, err := Run(Config{
		Problem: p, Layout: layout, Seed: 1,
		NewController: func() Controller { return &countingController{interval: 0} },
	})
	if err == nil {
		t.Fatal("zero controller interval accepted")
	}
}

// buildShiftScenario plans a layout for the *initial* popularity ranking and
// returns a trace whose popularity rotates halfway through — the workload
// dynamic replication exists for.
func buildShiftScenario(t testing.TB, backbone float64) (*core.Problem, *core.Layout, *workload.Trace) {
	t.Helper()
	const m = 40
	c, err := core.NewCatalog(m, 0.9, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         4,
		StoragePerServer:   14 * c[0].SizeBytes(),
		BandwidthPerServer: 0.36 * core.Gbps, // 90 streams/server, saturation 4/min
		ArrivalRate:        3.6 / core.Minute,
		PeakPeriod:         90 * core.Minute,
		BackboneBandwidth:  backbone,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	budget, err := p.TargetTotalReplicas(1.4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Poisson{Lambda: p.ArrivalRate}, m, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(p.PeakPeriod, 31)
	shifted, err := tr.Remap(workload.RotationMapping(m, m/2), p.PeakPeriod/2)
	if err != nil {
		t.Fatal(err)
	}
	return p, layout, shifted
}

// TestDynamicReplicationAdaptsToShift: under a mid-trace popularity rotation
// the dynamic manager must not hurt, and it must actually move replicas
// toward the new hot set.
func TestDynamicReplicationAdaptsToShift(t *testing.T) {
	p, layout, trace := buildShiftScenario(t, core.Gbps)

	static, err := Run(Config{Problem: p, Layout: layout, Trace: trace, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	var mgr *dynrep.Manager
	dynamic, err := Run(Config{
		Problem: p, Layout: layout, Trace: trace, Seed: 1,
		NewController: func() Controller {
			m, err := dynrep.New(p, dynrep.Options{IntervalSec: 300, MaxPerTick: 4})
			if err != nil {
				t.Fatal(err)
			}
			mgr = m
			return m
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Migrations() == 0 {
		t.Fatal("dynamic manager never migrated despite the popularity shift")
	}
	if dynamic.RejectionRate > static.RejectionRate+0.01 {
		t.Fatalf("dynamic replication hurt: %.4f vs static %.4f",
			dynamic.RejectionRate, static.RejectionRate)
	}
}

// TestDynamicReplicationNeverLosesVideos: after a full simulated run with
// aggressive migration, every video still has at least one replica.
func TestDynamicReplicationNeverLosesVideos(t *testing.T) {
	p, layout, trace := buildShiftScenario(t, core.Gbps)
	var mgr *dynrep.Manager
	if _, err := Run(Config{
		Problem: p, Layout: layout, Trace: trace, Seed: 2,
		NewController: func() Controller {
			m, err := dynrep.New(p, dynrep.Options{IntervalSec: 120, MaxPerTick: 8})
			if err != nil {
				t.Fatal(err)
			}
			mgr = m
			return m
		},
	}); err != nil {
		t.Fatal(err)
	}
	_ = mgr
	// The invariant is enforced inside cluster.RemoveReplica; reaching here
	// without a panic or error means no last replica was dropped. Exercise
	// the counters for coverage.
	if mgr.Skipped() < 0 || mgr.Evictions() < 0 {
		t.Fatal("counters invalid")
	}
}
