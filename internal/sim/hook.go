package sim

import (
	"vodcluster/internal/cluster"
	"vodcluster/internal/metrics"
)

// Session is the lifecycle record of one admitted stream. Hooks receive the
// same *Session across the session's lifecycle events, so pointer identity
// can be used to correlate an admission with its later end, tear, or salvage.
type Session struct {
	// ID is the stream handle within the run's cluster.State.
	ID cluster.StreamID
	// Video is the catalog rank being streamed.
	Video int
	// Server is the server whose outgoing link carries the stream.
	Server int
	// Rate is the delivered encoding rate in bits/s.
	Rate float64
	// Redirected reports whether the stream crosses the backbone.
	Redirected bool
	// Degraded reports an admission served from a lower-rate copy by the
	// graceful-degradation mechanism.
	Degraded bool
	// Measured reports whether the admission fell inside the measurement
	// window (after warmup). Outcomes of unmeasured sessions must not be
	// counted; hooks that collect statistics check this flag.
	Measured bool
	// End is the session's scheduled departure in virtual seconds.
	End float64
}

// Hook observes the session lifecycle of one simulation run. The engine
// drives the lifecycle admit → serve → (end | tear | salvage) and notifies
// every registered hook at each transition; metrics collection, resilience
// accounting, and runtime controllers are all implemented as hooks rather
// than being wired into the event loop. Hooks run synchronously on the
// simulation goroutine in registration order and must not retain the cluster
// state beyond the call.
//
// Embed BaseHook to implement only the events of interest.
type Hook interface {
	// OnArrival fires for every arriving request before admission.
	OnArrival(now float64, video int)
	// OnAdmit fires when a session is admitted — at first attempt or after
	// queued retries (an OnRetryOutcome with admitted=true follows then).
	OnAdmit(now float64, s *Session)
	// OnReject fires when an arrival leaves the system unserved with no
	// mechanism (retry queue) taking ownership of it.
	OnReject(now float64, video int, measured bool)
	// OnRetryQueued fires when a rejected arrival enters the retry queue
	// instead of counting as a rejection.
	OnRetryQueued(now float64, video int, measured bool)
	// OnRetryOutcome settles a queued retry: admitted=true after a
	// successful re-attempt (OnAdmit has already fired for the session),
	// admitted=false when the request reneged.
	OnRetryOutcome(now float64, video int, admitted, measured bool)
	// OnEnd fires at a session's normal departure.
	OnEnd(now float64, s *Session)
	// OnTear fires when a server failure tears a session down for good
	// (failover either disabled or out of capacity).
	OnTear(now float64, s *Session)
	// OnSalvage fires when a torn session is failed over onto a surviving
	// replica; old is the torn session, s its salvaged continuation.
	OnSalvage(now float64, old, s *Session)
	// OnSample fires at every load-sampling tick inside the measurement
	// window, before any state mutation the tick may cause.
	OnSample(now float64, st *cluster.State)
	// OnDone fires once after the event queue drains; hooks contribute
	// their final counters to the run's collector here.
	OnDone(now float64, col *metrics.Collector)
}

// BaseHook is a no-op Hook; embed it to implement a subset of the events.
type BaseHook struct{}

func (BaseHook) OnArrival(float64, int)                  {}
func (BaseHook) OnAdmit(float64, *Session)               {}
func (BaseHook) OnReject(float64, int, bool)             {}
func (BaseHook) OnRetryQueued(float64, int, bool)        {}
func (BaseHook) OnRetryOutcome(float64, int, bool, bool) {}
func (BaseHook) OnEnd(float64, *Session)                 {}
func (BaseHook) OnTear(float64, *Session)                {}
func (BaseHook) OnSalvage(float64, *Session, *Session)   {}
func (BaseHook) OnSample(float64, *cluster.State)        {}
func (BaseHook) OnDone(float64, *metrics.Collector)      {}

// RejectInterceptor is an optional interface a Hook may implement to take
// ownership of rejected arrivals before they count as rejections — the
// retry-with-backoff admission mechanism is one. Interceptors are consulted
// in registration order; the first to return true consumes the arrival and
// becomes responsible for eventually settling it (OnRetryOutcome or OnAdmit).
type RejectInterceptor interface {
	InterceptReject(now float64, video int, measured bool) bool
}

// TearInterceptor is an optional interface a Hook may implement to salvage
// sessions torn down by a server failure — session failover is one. The
// first interceptor to return a replacement session wins; returning nil,
// false passes the torn session down the chain (and ultimately to OnTear).
type TearInterceptor interface {
	InterceptTear(now float64, old *Session) (*Session, bool)
}

// Ticker is a periodic hook: Tick fires every Interval() virtual seconds
// across the arrival window, in registration order at equal instants.
// Runtime controllers (dynamic replication), the re-replication repairer,
// and the load sampler all run as tickers. schedule registers a follow-up
// callback after the given delay — e.g. the completion of a replica copy.
type Ticker interface {
	Interval() float64
	Tick(now float64, st *cluster.State, schedule func(delay float64, fn func(now float64)))
}

// metricsHook translates lifecycle events into the run's metrics.Collector,
// honouring the measurement window via Session.Measured.
type metricsHook struct {
	BaseHook
	col *metrics.Collector
	st  *cluster.State
}

func (h *metricsHook) OnArrival(now float64, video int) {
	h.col.Arrival()
}

func (h *metricsHook) OnAdmit(now float64, s *Session) {
	if !s.Measured {
		return
	}
	h.col.Request(s.Server, true, s.Redirected)
	h.col.ObserveSessionRate(s.Rate)
	if s.Degraded {
		h.col.Degrade(s.Rate, h.st.NominalRate(s.Video))
	}
}

func (h *metricsHook) OnReject(now float64, video int, measured bool) {
	if measured {
		h.col.Request(-1, false, false)
	}
}

func (h *metricsHook) OnRetryQueued(now float64, video int, measured bool) {
	if measured {
		h.col.RetryEnqueued()
	}
}

func (h *metricsHook) OnRetryOutcome(now float64, video int, admitted, measured bool) {
	if !measured {
		return
	}
	if admitted {
		h.col.RetrySuccess()
	} else {
		h.col.Renege()
	}
}

func (h *metricsHook) OnTear(now float64, s *Session) {
	if s.Measured {
		h.col.Drop(1)
	}
}

func (h *metricsHook) OnSalvage(now float64, old, s *Session) {
	if s.Measured {
		h.col.FailOver(1)
	}
}

func (h *metricsHook) OnSample(now float64, st *cluster.State) {
	h.col.SampleLoads(st.UsedBandwidths(), st.TotalActive())
}

// controllerHook adapts a runtime Controller to the hook interfaces: the
// arrival stream feeds Observe, and the controller's periodic side runs as
// a Ticker.
type controllerHook struct {
	BaseHook
	c Controller
}

func (h *controllerHook) OnArrival(now float64, video int) { h.c.Observe(video) }

func (h *controllerHook) Interval() float64 { return h.c.Interval() }

func (h *controllerHook) Tick(now float64, st *cluster.State, schedule func(delay float64, fn func(now float64))) {
	h.c.Tick(now, st, schedule)
}
