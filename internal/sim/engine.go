// Package sim provides a small discrete-event simulation engine and, on top
// of it, the VoD cluster simulation the paper's evaluation is built on:
// Poisson request arrivals over a peak period, Zipf-like video selection,
// bandwidth-only admission control, and fixed-duration streaming sessions.
package sim

import (
	"container/heap"
	"fmt"
)

// Handler is invoked when an event fires; now is the event's virtual time in
// seconds.
type Handler func(now float64)

// Engine is a minimal discrete-event executor with a virtual clock. Events
// scheduled for the same instant fire in scheduling order (FIFO), which keeps
// runs deterministic. Engine is not safe for concurrent use.
type Engine struct {
	now   float64
	queue eventQueue
	seq   uint64
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule registers h to fire at absolute virtual time t. Scheduling in the
// past (t < Now) is an error.
func (e *Engine) Schedule(t float64, h Handler) error {
	if t < e.now {
		return fmt.Errorf("sim: scheduling event at %g before current time %g", t, e.now)
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: h})
	return nil
}

// ScheduleAfter registers h to fire delay seconds from now.
func (e *Engine) ScheduleAfter(delay float64, h Handler) error {
	return e.Schedule(e.now+delay, h)
}

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return e.queue.Len() }

// Step fires the earliest pending event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn(e.now)
	return true
}

// Run fires events until the queue is empty or the clock would pass horizon.
// Events scheduled at exactly horizon still fire. It returns the number of
// events executed.
func (e *Engine) Run(horizon float64) int {
	n := 0
	for e.queue.Len() > 0 && e.queue[0].at <= horizon {
		e.Step()
		n++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return n
}

// RunAll fires every pending event (including ones new handlers schedule)
// and returns the count.
func (e *Engine) RunAll() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

type event struct {
	at  float64
	seq uint64
	fn  Handler
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
