package sim

import (
	"fmt"
	"runtime"
	"sync"

	"vodcluster/internal/metrics"
	"vodcluster/internal/stats"
)

// RunMany executes runs independent replications of cfg with derived seeds
// and aggregates the results. Replications execute in parallel, bounded by
// GOMAXPROCS; each gets its own scheduler instance via cfg.NewScheduler and
// its own cluster state, so runs never share mutable data. Results are
// aggregated in run order, so the aggregate is deterministic for a given
// (cfg, runs) pair.
func RunMany(cfg Config, runs int) (*metrics.Aggregate, []metrics.Result, error) {
	if runs <= 0 {
		return nil, nil, fmt.Errorf("sim: need at least one run, got %d", runs)
	}
	results := make([]metrics.Result, runs)
	errs := make([]error, runs)
	root := stats.NewRNG(cfg.Seed)

	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runCfg := cfg
				runCfg.Seed = root.Derive(int64(i)).Seed()
				results[i], errs[i] = Run(runCfg)
			}
		}()
	}
	for i := 0; i < runs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("sim: run %d: %w", i, err)
		}
	}
	agg := &metrics.Aggregate{}
	for _, r := range results {
		agg.Add(r)
	}
	return agg, results, nil
}
