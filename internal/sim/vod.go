package sim

import (
	"fmt"

	"vodcluster/internal/avail"
	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/metrics"
	"vodcluster/internal/resilience"
	"vodcluster/internal/stats"
	"vodcluster/internal/workload"
)

// Config describes one VoD simulation run. Zero-value optional fields take
// the paper's defaults.
type Config struct {
	// Problem and Layout define the cluster and the data layout under test.
	Problem *core.Problem
	Layout  *core.Layout
	// NewScheduler constructs the replica scheduling policy for the run.
	// Nil means the paper's static round-robin. A factory (rather than an
	// instance) lets replicated runs execute in parallel with independent
	// policy state.
	NewScheduler func() cluster.Scheduler
	// Arrivals overrides the arrival process; nil means a Poisson process
	// at Problem.ArrivalRate.
	Arrivals workload.ArrivalProcess
	// Duration is how long arrivals are generated, in seconds; 0 means
	// Problem.PeakPeriod. Already-admitted streams run to completion after
	// arrivals stop.
	Duration float64
	// SampleInterval is the load-imbalance sampling period in seconds;
	// 0 means 60 s (once per simulated minute, the paper's natural grain).
	SampleInterval float64
	// Warmup discards measurements before this time (seconds): arrivals
	// still happen and consume resources, but they are not counted and
	// loads are not sampled. Sessions admitted before the warmup boundary
	// stay unmeasured for their whole lifetime — a post-warmup failure
	// dropping one does not count against FailureRate. The paper measures
	// the whole peak period (default 0); a warm-up removes the
	// empty-cluster transient when steady-state figures are wanted.
	Warmup float64
	// Seed drives all randomness of the run.
	Seed int64
	// Trace, when non-nil, replays a materialized request trace instead of
	// generating arrivals online; Arrivals and Duration describe it then.
	Trace *workload.Trace
	// Failures, when non-nil, injects server failures: each server follows
	// an independent alternating exponential up/down process. A failing
	// server tears down its active streams (counted as dropped unless
	// failover salvages them) and its replicas become unreachable until
	// repair. Failures are injected during the arrival window.
	Failures *avail.FailureModel
	// FailAt schedules deterministic, scripted server failures in addition
	// to (or instead of) the stochastic Failures model — the trace-replay
	// analogue for failure injection. Events may target any virtual time;
	// a non-positive Down leaves the server down for the rest of the run.
	FailAt []avail.FailureEvent
	// Resilience, when non-nil, enables the recovery mechanisms of
	// internal/resilience: session failover, retry-with-backoff admission,
	// graceful bitrate degradation, and re-replication repair. Each is
	// individually toggleable; a policy with every toggle off (or a nil
	// pointer) reproduces the paper-faithful baseline bit for bit. The
	// mechanisms register as lifecycle hooks (see Hook).
	Resilience *resilience.Policy
	// StreamLimit caps concurrent streams per server (disk-I/O bound
	// derived from internal/disk); 0 means network-only admission, the
	// paper's model.
	StreamLimit int
	// CopyRates, when non-nil, gives every placed copy its own encoding
	// rate (cluster.WithCopyRates) — the §4.3 scalable-bit-rate runtime.
	// rates[v][s] must be positive exactly where Layout places v on s.
	CopyRates [][]float64
	// NewController, when non-nil, constructs a runtime controller for the
	// run (a factory for the same reason as NewScheduler). The controller
	// observes every arrival and ticks at its own cadence, and may mutate
	// the cluster state — the hook dynamic replication plugs into. The
	// repair mechanism runs its own tick loop, so a dynamic-replication
	// controller and Resilience.Repair can coexist.
	NewController func() Controller
	// Hooks registers additional session-lifecycle observers after the
	// built-in ones (metrics, controller, resilience, sampler). A hook that
	// also implements RejectInterceptor, TearInterceptor, or Ticker joins
	// the respective chain. Hooks are per-run; like NewScheduler, parallel
	// replications must not share stateful hooks — use NewHooks for those.
	Hooks []Hook
	// NewHooks, when non-nil, constructs per-run hooks (a factory for the
	// same reason as NewScheduler); the result is appended after Hooks.
	NewHooks func() []Hook
}

// Controller is a runtime policy that observes the workload and adjusts the
// cluster while the simulation runs (e.g. dynamic replication).
type Controller interface {
	// Observe is called for every arriving request with the video rank.
	Observe(video int)
	// Interval returns the cadence of Tick calls in seconds.
	Interval() float64
	// Tick runs one adjustment round. schedule registers a follow-up
	// callback after the given delay (virtual seconds), e.g. the
	// completion of a replica migration.
	Tick(now float64, st *cluster.State, schedule func(delay float64, fn func(now float64)))
}

// Run executes one simulation and returns its measurements.
//
// The run is organized as an explicit session lifecycle —
// admit → serve → (end | tear | salvage) — driven by the discrete-event
// engine. Everything that observes or bends that lifecycle registers as a
// Hook: metrics collection, the resilience mechanisms, runtime controllers,
// and the periodic load sampler. With no hooks beyond the defaults the run
// reproduces the paper's model bit for bit.
func Run(cfg Config) (metrics.Result, error) {
	var zero metrics.Result
	r, err := newRun(cfg)
	if err != nil {
		return zero, err
	}
	if err := r.schedule(cfg); err != nil {
		return zero, err
	}
	events := r.eng.RunAll()
	r.fireDone(r.eng.Now())
	res := r.col.Result()
	res.Events = events
	return res, nil
}

// newRun validates the configuration and assembles the run: cluster state,
// scheduler, collector, and the hook chain.
func newRun(cfg Config) (*run, error) {
	if cfg.Problem == nil || cfg.Layout == nil {
		return nil, fmt.Errorf("sim: Problem and Layout are required")
	}
	p := cfg.Problem
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var opts []cluster.Option
	if cfg.StreamLimit > 0 {
		opts = append(opts, cluster.WithStreamLimit(cfg.StreamLimit))
	}
	if cfg.CopyRates != nil {
		opts = append(opts, cluster.WithCopyRates(cfg.CopyRates))
	}
	st, err := cluster.New(p, cfg.Layout, opts...)
	if err != nil {
		return nil, err
	}
	sched := cluster.Scheduler(cluster.StaticRoundRobin{})
	if cfg.NewScheduler != nil {
		sched = cfg.NewScheduler()
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = p.PeakPeriod
	}
	sample := cfg.SampleInterval
	if sample <= 0 {
		sample = 60
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("sim: warmup must be non-negative, got %g", cfg.Warmup)
	}

	var pol resilience.Policy
	if cfg.Resilience != nil {
		pol = cfg.Resilience.WithDefaults()
		if err := pol.Validate(); err != nil {
			return nil, err
		}
	}
	var degrader *resilience.Degrader
	if pol.Degrade {
		degrader = resilience.NewDegrader(sched, pol.DegradeFloor)
		sched = degrader
	}

	capacities := make([]float64, p.N())
	for s := range capacities {
		capacities[s] = p.BandwidthOf(s)
	}
	rng := stats.NewRNG(cfg.Seed)

	r := &run{
		p:        p,
		st:       st,
		eng:      NewEngine(),
		sched:    sched,
		col:      metrics.NewCollector(capacities),
		rng:      rng,
		duration: duration,
		warmup:   cfg.Warmup,
		pol:      pol,
		degrader: degrader,
		sessions: make(map[cluster.StreamID]*Session),
	}
	// Randomized policies (cluster.SeededScheduler, possibly under the
	// degrade/redirect decorators) draw per-decision RNG streams derived
	// from their own substream of the run seed — split from the arrival,
	// video, retry, and failure streams, so enabling them shifts no other
	// randomness of the run.
	if r.seeded = seededScheduler(r.sched); r.seeded != nil {
		r.decRNG = rng.Derive(4)
	}

	// Hook registration order fixes both the event order hooks observe and
	// the scheduling order of tickers (ties at one instant fire FIFO):
	// metrics first, then the controller, the resilience mechanisms, the
	// repairer, the load sampler, and finally any caller-supplied hooks.
	r.register(&metricsHook{col: r.col, st: st})
	if cfg.NewController != nil {
		r.register(&controllerHook{c: cfg.NewController()})
	}
	if pol.Retry {
		// A derived substream: enabling retry must not shift the arrival or
		// failure randomness of the run.
		r.register(&retryHook{r: r, retrier: resilience.NewRetrier(pol, rng.Derive(3))})
	}
	if pol.Failover {
		r.register(&failoverHook{r: r})
	}
	if pol.Repair {
		repairer, err := resilience.NewRepairer(p, pol)
		if err != nil {
			return nil, err
		}
		r.register(&repairHook{repairer: repairer})
	}
	r.register(&samplerHook{r: r, interval: sample})
	for _, h := range cfg.Hooks {
		r.register(h)
	}
	if cfg.NewHooks != nil {
		for _, h := range cfg.NewHooks() {
			r.register(h)
		}
	}
	return r, nil
}

// seededScheduler walks a scheduler's decorator chain (redirect,
// degradation — anything exposing Unwrap) looking for a policy that wants
// per-decision RNG streams.
func seededScheduler(s cluster.Scheduler) cluster.SeededScheduler {
	for s != nil {
		if ss, ok := s.(cluster.SeededScheduler); ok {
			return ss
		}
		u, ok := s.(interface{ Unwrap() cluster.Scheduler })
		if !ok {
			return nil
		}
		s = u.Unwrap()
	}
	return nil
}

// schedule seeds the event queue: arrivals (trace replay or generated),
// failure injection, and every registered ticker.
func (r *run) schedule(cfg Config) error {
	if cfg.Trace != nil {
		if err := r.scheduleTrace(cfg.Trace); err != nil {
			return err
		}
	} else {
		arrivals := cfg.Arrivals
		if arrivals == nil {
			if r.p.ArrivalRate <= 0 {
				return fmt.Errorf("sim: problem has no arrival rate and no trace/process was supplied")
			}
			arrivals = workload.Poisson{Lambda: r.p.ArrivalRate}
		}
		if err := r.scheduleArrivals(arrivals); err != nil {
			return err
		}
	}

	// Stochastic failure injection: one alternating up/down process per
	// server, active during the arrival window.
	if cfg.Failures != nil {
		f := *cfg.Failures
		if err := f.Validate(); err != nil {
			return err
		}
		for s := 0; s < r.p.N(); s++ {
			s := s
			failRNG := r.rng.Derive(100 + int64(s))
			var scheduleFailure func(now float64)
			scheduleFailure = func(now float64) {
				at := now + f.NextUptime(failRNG)
				if at > r.duration {
					return
				}
				if err := r.eng.Schedule(at, func(tt float64) {
					r.failServer(tt, s)
					repairAt := tt + f.NextDowntime(failRNG)
					if err := r.eng.Schedule(repairAt, func(rt float64) {
						r.st.RestoreServer(s)
						scheduleFailure(rt)
					}); err != nil {
						panic(err)
					}
				}); err != nil {
					panic(err)
				}
			}
			scheduleFailure(0)
		}
	}

	// Scripted failure injection.
	for _, ev := range cfg.FailAt {
		ev := ev
		if err := ev.Validate(r.p.N()); err != nil {
			return err
		}
		if err := r.eng.Schedule(ev.At, func(tt float64) {
			r.failServer(tt, ev.Server)
			if ev.Down > 0 {
				r.mustAfter(ev.Down, func(float64) {
					r.st.RestoreServer(ev.Server)
				})
			}
		}); err != nil {
			return err
		}
	}

	for _, tk := range r.tickers {
		if err := r.scheduleTicker(tk); err != nil {
			return err
		}
	}
	return nil
}
