package sim

import (
	"fmt"

	"vodcluster/internal/avail"
	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/metrics"
	"vodcluster/internal/resilience"
	"vodcluster/internal/stats"
	"vodcluster/internal/workload"
	"vodcluster/internal/zipf"
)

// Config describes one VoD simulation run. Zero-value optional fields take
// the paper's defaults.
type Config struct {
	// Problem and Layout define the cluster and the data layout under test.
	Problem *core.Problem
	Layout  *core.Layout
	// NewScheduler constructs the replica scheduling policy for the run.
	// Nil means the paper's static round-robin. A factory (rather than an
	// instance) lets replicated runs execute in parallel with independent
	// policy state.
	NewScheduler func() cluster.Scheduler
	// Arrivals overrides the arrival process; nil means a Poisson process
	// at Problem.ArrivalRate.
	Arrivals workload.ArrivalProcess
	// Duration is how long arrivals are generated, in seconds; 0 means
	// Problem.PeakPeriod. Already-admitted streams run to completion after
	// arrivals stop.
	Duration float64
	// SampleInterval is the load-imbalance sampling period in seconds;
	// 0 means 60 s (once per simulated minute, the paper's natural grain).
	SampleInterval float64
	// Warmup discards measurements before this time (seconds): arrivals
	// still happen and consume resources, but they are not counted and
	// loads are not sampled. Sessions admitted before the warmup boundary
	// stay unmeasured for their whole lifetime — a post-warmup failure
	// dropping one does not count against FailureRate. The paper measures
	// the whole peak period (default 0); a warm-up removes the
	// empty-cluster transient when steady-state figures are wanted.
	Warmup float64
	// Seed drives all randomness of the run.
	Seed int64
	// Trace, when non-nil, replays a materialized request trace instead of
	// generating arrivals online; Arrivals and Duration describe it then.
	Trace *workload.Trace
	// Failures, when non-nil, injects server failures: each server follows
	// an independent alternating exponential up/down process. A failing
	// server tears down its active streams (counted as dropped unless
	// failover salvages them) and its replicas become unreachable until
	// repair. Failures are injected during the arrival window.
	Failures *avail.FailureModel
	// FailAt schedules deterministic, scripted server failures in addition
	// to (or instead of) the stochastic Failures model — the trace-replay
	// analogue for failure injection. Events may target any virtual time;
	// a non-positive Down leaves the server down for the rest of the run.
	FailAt []avail.FailureEvent
	// Resilience, when non-nil, enables the recovery mechanisms of
	// internal/resilience: session failover, retry-with-backoff admission,
	// graceful bitrate degradation, and re-replication repair. Each is
	// individually toggleable; a policy with every toggle off (or a nil
	// pointer) reproduces the paper-faithful baseline bit for bit.
	Resilience *resilience.Policy
	// StreamLimit caps concurrent streams per server (disk-I/O bound
	// derived from internal/disk); 0 means network-only admission, the
	// paper's model.
	StreamLimit int
	// CopyRates, when non-nil, gives every placed copy its own encoding
	// rate (cluster.WithCopyRates) — the §4.3 scalable-bit-rate runtime.
	// rates[v][s] must be positive exactly where Layout places v on s.
	CopyRates [][]float64
	// NewController, when non-nil, constructs a runtime controller for the
	// run (a factory for the same reason as NewScheduler). The controller
	// observes every arrival and ticks at its own cadence, and may mutate
	// the cluster state — the hook dynamic replication plugs into. The
	// repair mechanism runs its own tick loop, so a dynamic-replication
	// controller and Resilience.Repair can coexist.
	NewController func() Controller
}

// Controller is a runtime policy that observes the workload and adjusts the
// cluster while the simulation runs (e.g. dynamic replication).
type Controller interface {
	// Observe is called for every arriving request with the video rank.
	Observe(video int)
	// Interval returns the cadence of Tick calls in seconds.
	Interval() float64
	// Tick runs one adjustment round. schedule registers a follow-up
	// callback after the given delay (virtual seconds), e.g. the
	// completion of a replica migration.
	Tick(now float64, st *cluster.State, schedule func(delay float64, fn func(now float64)))
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (metrics.Result, error) {
	var zero metrics.Result
	if cfg.Problem == nil || cfg.Layout == nil {
		return zero, fmt.Errorf("sim: Problem and Layout are required")
	}
	p := cfg.Problem
	if err := p.Validate(); err != nil {
		return zero, err
	}
	var opts []cluster.Option
	if cfg.StreamLimit > 0 {
		opts = append(opts, cluster.WithStreamLimit(cfg.StreamLimit))
	}
	if cfg.CopyRates != nil {
		opts = append(opts, cluster.WithCopyRates(cfg.CopyRates))
	}
	st, err := cluster.New(p, cfg.Layout, opts...)
	if err != nil {
		return zero, err
	}
	sched := cluster.Scheduler(cluster.StaticRoundRobin{})
	if cfg.NewScheduler != nil {
		sched = cfg.NewScheduler()
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = p.PeakPeriod
	}
	sample := cfg.SampleInterval
	if sample <= 0 {
		sample = 60
	}

	var pol resilience.Policy
	if cfg.Resilience != nil {
		pol = cfg.Resilience.WithDefaults()
		if err := pol.Validate(); err != nil {
			return zero, err
		}
	}
	var degrader *resilience.Degrader
	if pol.Degrade {
		degrader = resilience.NewDegrader(sched, pol.DegradeFloor)
		sched = degrader
	}

	eng := NewEngine()
	capacities := make([]float64, p.N())
	for s := range capacities {
		capacities[s] = p.BandwidthOf(s)
	}
	col := metrics.NewCollector(capacities)
	rng := stats.NewRNG(cfg.Seed)

	var retrier *resilience.Retrier
	if pol.Retry {
		// A derived substream: enabling retry must not shift the arrival or
		// failure randomness of the run.
		retrier = resilience.NewRetrier(pol, rng.Derive(3))
	}

	var controller Controller
	if cfg.NewController != nil {
		controller = cfg.NewController()
	}

	if cfg.Warmup < 0 {
		return zero, fmt.Errorf("sim: warmup must be non-negative, got %g", cfg.Warmup)
	}
	warm := func(now float64) bool { return now >= cfg.Warmup }

	// Per-session bookkeeping. endAt lets failover re-schedule a salvaged
	// stream's departure at its original end time; measured marks sessions
	// whose admission was counted, so later outcomes (drops, failovers)
	// adjust the statistics only for sessions the statistics know about.
	endAt := make(map[cluster.StreamID]float64)
	measured := make(map[cluster.StreamID]bool)

	departAfter := func(id cluster.StreamID, delay float64) {
		if delay < 0 {
			delay = 0
		}
		if err := eng.ScheduleAfter(delay, func(float64) {
			// A server failure may already have torn the stream down; a
			// missing stream at departure time is expected then.
			if _, ok := st.Lookup(id); ok {
				if err := st.Release(id); err != nil {
					panic(err) // release of a live stream cannot fail
				}
			}
			delete(endAt, id)
			delete(measured, id)
		}); err != nil {
			panic(err)
		}
	}

	// startSession runs one admission attempt. counted tells whether this
	// arrival belongs to the measurement window — fixed at arrival time, so
	// a retry that settles after the warmup boundary stays unmeasured.
	startSession := func(now float64, video int, counted bool) bool {
		id, ok := st.Admit(video, sched)
		if !ok {
			return false
		}
		s, _ := st.Lookup(id)
		if counted {
			measured[id] = true
			col.Request(s.Server, true, s.Redirected)
			col.ObserveSessionRate(s.Rate)
			if degrader != nil && degrader.LastDegraded() {
				col.Degrade(s.Rate, st.NominalRate(video))
			}
		}
		endAt[id] = now + p.Catalog[video].Duration
		departAfter(id, p.Catalog[video].Duration)
		return true
	}

	// retryLater re-queues one rejected arrival: wait the backed-off delay,
	// attempt again, renege once the next delay would exhaust the patience.
	var retryLater func(now float64, video, attempt int, waited float64, counted bool)
	retryLater = func(now float64, video, attempt int, waited float64, counted bool) {
		delay, ok := retrier.Delay(attempt, waited)
		if !ok {
			retrier.Resolve()
			if counted {
				col.Renege()
			}
			return
		}
		if err := eng.ScheduleAfter(delay, func(tt float64) {
			if startSession(tt, video, counted) {
				retrier.Resolve()
				if counted {
					col.RetrySuccess()
				}
				return
			}
			retryLater(tt, video, attempt+1, waited+delay, counted)
		}); err != nil {
			panic(err)
		}
	}

	admit := func(now float64, video int) {
		if controller != nil {
			controller.Observe(video)
		}
		counted := warm(now)
		if startSession(now, video, counted) {
			return
		}
		if retrier != nil && retrier.TryEnqueue() {
			if counted {
				col.RetryEnqueued()
			}
			retryLater(now, video, 0, 0, counted)
			return
		}
		if counted {
			col.Request(-1, false, false)
		}
	}

	// failServer tears down one server and settles every interrupted stream:
	// failover onto a surviving replica when enabled and possible, a drop
	// otherwise. Shared by the stochastic and the scripted failure paths.
	failServer := func(now float64, s int) {
		for _, t := range st.FailServer(s) {
			end, wasMeasured := endAt[t.ID], measured[t.ID]
			delete(endAt, t.ID)
			delete(measured, t.ID)
			if pol.Failover {
				if nid, ok := resilience.TryFailover(st, t.Video, pol.DegradeFloor); ok {
					endAt[nid] = end
					if wasMeasured {
						measured[nid] = true
						col.FailOver(1)
					}
					departAfter(nid, end-now)
					continue
				}
			}
			if wasMeasured {
				col.Drop(1)
			}
		}
	}

	if cfg.Trace != nil {
		for _, r := range cfg.Trace.Requests {
			req := r
			if req.Video >= p.M() {
				return zero, fmt.Errorf("sim: trace request targets video %d outside catalog of %d", req.Video, p.M())
			}
			if err := eng.Schedule(req.Time, func(now float64) { admit(now, req.Video) }); err != nil {
				return zero, err
			}
		}
	} else {
		arrivals := cfg.Arrivals
		if arrivals == nil {
			if p.ArrivalRate <= 0 {
				return zero, fmt.Errorf("sim: problem has no arrival rate and no trace/process was supplied")
			}
			arrivals = workload.Poisson{Lambda: p.ArrivalRate}
		}
		arrRNG := rng.Derive(1)
		vidRNG := rng.Derive(2)
		sampler, err := zipf.NewWeightedSampler(p.Catalog.Popularities())
		if err != nil {
			return zero, fmt.Errorf("sim: building video sampler: %w", err)
		}
		var nextArrival func(now float64)
		nextArrival = func(now float64) {
			gap := arrivals.Next(arrRNG)
			t := now + gap
			if t > duration {
				return
			}
			if err := eng.Schedule(t, func(tt float64) {
				admit(tt, sampler.Sample(vidRNG))
				nextArrival(tt)
			}); err != nil {
				panic(err)
			}
		}
		nextArrival(0)
	}

	// Stochastic failure injection: one alternating up/down process per
	// server, active during the arrival window.
	if cfg.Failures != nil {
		f := *cfg.Failures
		if err := f.Validate(); err != nil {
			return zero, err
		}
		for s := 0; s < p.N(); s++ {
			s := s
			failRNG := rng.Derive(100 + int64(s))
			var scheduleFailure func(now float64)
			scheduleFailure = func(now float64) {
				at := now + f.NextUptime(failRNG)
				if at > duration {
					return
				}
				if err := eng.Schedule(at, func(tt float64) {
					failServer(tt, s)
					repairAt := tt + f.NextDowntime(failRNG)
					if err := eng.Schedule(repairAt, func(rt float64) {
						st.RestoreServer(s)
						scheduleFailure(rt)
					}); err != nil {
						panic(err)
					}
				}); err != nil {
					panic(err)
				}
			}
			scheduleFailure(0)
		}
	}

	// Scripted failure injection.
	for _, ev := range cfg.FailAt {
		ev := ev
		if err := ev.Validate(p.N()); err != nil {
			return zero, err
		}
		if err := eng.Schedule(ev.At, func(tt float64) {
			failServer(tt, ev.Server)
			if ev.Down > 0 {
				if err := eng.ScheduleAfter(ev.Down, func(float64) {
					st.RestoreServer(ev.Server)
				}); err != nil {
					panic(err)
				}
			}
		}); err != nil {
			return zero, err
		}
	}

	// Controller ticks across the arrival window.
	if controller != nil {
		interval := controller.Interval()
		if interval <= 0 {
			return zero, fmt.Errorf("sim: controller interval must be positive, got %g", interval)
		}
		schedule := func(delay float64, fn func(now float64)) {
			if err := eng.ScheduleAfter(delay, fn); err != nil {
				panic(err)
			}
		}
		var tick func(now float64)
		tick = func(now float64) {
			controller.Tick(now, st, schedule)
			if now+interval <= duration {
				if err := eng.ScheduleAfter(interval, tick); err != nil {
					panic(err)
				}
			}
		}
		if err := eng.Schedule(interval, tick); err != nil {
			return zero, err
		}
	}

	// Re-replication repair runs its own tick loop so it composes with any
	// NewController (e.g. dynamic replication).
	var repairer *resilience.Repairer
	if pol.Repair {
		repairer, err = resilience.NewRepairer(p, pol)
		if err != nil {
			return zero, err
		}
		interval := repairer.Interval()
		schedule := func(delay float64, fn func(now float64)) {
			if err := eng.ScheduleAfter(delay, fn); err != nil {
				panic(err)
			}
		}
		var repairTick func(now float64)
		repairTick = func(now float64) {
			repairer.Tick(now, st, schedule)
			if now+interval <= duration {
				if err := eng.ScheduleAfter(interval, repairTick); err != nil {
					panic(err)
				}
			}
		}
		if err := eng.Schedule(interval, repairTick); err != nil {
			return zero, err
		}
	}

	// Periodic load sampling across the arrival window.
	var sampleTick func(now float64)
	sampleTick = func(now float64) {
		if warm(now) {
			col.SampleLoads(st.UsedBandwidths(), st.TotalActive())
		}
		if now+sample <= duration {
			if err := eng.ScheduleAfter(sample, sampleTick); err != nil {
				panic(err)
			}
		}
	}
	if err := eng.Schedule(sample, sampleTick); err != nil {
		return zero, err
	}

	eng.RunAll()
	if repairer != nil {
		col.ReReplications(repairer.Completed())
	}
	return col.Result(), nil
}
