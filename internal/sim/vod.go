package sim

import (
	"fmt"

	"vodcluster/internal/avail"
	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/metrics"
	"vodcluster/internal/stats"
	"vodcluster/internal/workload"
	"vodcluster/internal/zipf"
)

// Config describes one VoD simulation run. Zero-value optional fields take
// the paper's defaults.
type Config struct {
	// Problem and Layout define the cluster and the data layout under test.
	Problem *core.Problem
	Layout  *core.Layout
	// NewScheduler constructs the replica scheduling policy for the run.
	// Nil means the paper's static round-robin. A factory (rather than an
	// instance) lets replicated runs execute in parallel with independent
	// policy state.
	NewScheduler func() cluster.Scheduler
	// Arrivals overrides the arrival process; nil means a Poisson process
	// at Problem.ArrivalRate.
	Arrivals workload.ArrivalProcess
	// Duration is how long arrivals are generated, in seconds; 0 means
	// Problem.PeakPeriod. Already-admitted streams run to completion after
	// arrivals stop.
	Duration float64
	// SampleInterval is the load-imbalance sampling period in seconds;
	// 0 means 60 s (once per simulated minute, the paper's natural grain).
	SampleInterval float64
	// Warmup discards measurements before this time (seconds): arrivals
	// still happen and consume resources, but they are not counted and
	// loads are not sampled. The paper measures the whole peak period
	// (default 0); a warm-up removes the empty-cluster transient when
	// steady-state figures are wanted.
	Warmup float64
	// Seed drives all randomness of the run.
	Seed int64
	// Trace, when non-nil, replays a materialized request trace instead of
	// generating arrivals online; Arrivals and Duration describe it then.
	Trace *workload.Trace
	// Failures, when non-nil, injects server failures: each server follows
	// an independent alternating exponential up/down process. A failing
	// server tears down its active streams (counted as dropped) and its
	// replicas become unreachable until repair. Failures are injected
	// during the arrival window.
	Failures *avail.FailureModel
	// StreamLimit caps concurrent streams per server (disk-I/O bound
	// derived from internal/disk); 0 means network-only admission, the
	// paper's model.
	StreamLimit int
	// CopyRates, when non-nil, gives every placed copy its own encoding
	// rate (cluster.WithCopyRates) — the §4.3 scalable-bit-rate runtime.
	// rates[v][s] must be positive exactly where Layout places v on s.
	CopyRates [][]float64
	// NewController, when non-nil, constructs a runtime controller for the
	// run (a factory for the same reason as NewScheduler). The controller
	// observes every arrival and ticks at its own cadence, and may mutate
	// the cluster state — the hook dynamic replication plugs into.
	NewController func() Controller
}

// Controller is a runtime policy that observes the workload and adjusts the
// cluster while the simulation runs (e.g. dynamic replication).
type Controller interface {
	// Observe is called for every arriving request with the video rank.
	Observe(video int)
	// Interval returns the cadence of Tick calls in seconds.
	Interval() float64
	// Tick runs one adjustment round. schedule registers a follow-up
	// callback after the given delay (virtual seconds), e.g. the
	// completion of a replica migration.
	Tick(now float64, st *cluster.State, schedule func(delay float64, fn func(now float64)))
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (metrics.Result, error) {
	var zero metrics.Result
	if cfg.Problem == nil || cfg.Layout == nil {
		return zero, fmt.Errorf("sim: Problem and Layout are required")
	}
	p := cfg.Problem
	if err := p.Validate(); err != nil {
		return zero, err
	}
	var opts []cluster.Option
	if cfg.StreamLimit > 0 {
		opts = append(opts, cluster.WithStreamLimit(cfg.StreamLimit))
	}
	if cfg.CopyRates != nil {
		opts = append(opts, cluster.WithCopyRates(cfg.CopyRates))
	}
	st, err := cluster.New(p, cfg.Layout, opts...)
	if err != nil {
		return zero, err
	}
	sched := cluster.Scheduler(cluster.StaticRoundRobin{})
	if cfg.NewScheduler != nil {
		sched = cfg.NewScheduler()
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = p.PeakPeriod
	}
	sample := cfg.SampleInterval
	if sample <= 0 {
		sample = 60
	}

	eng := NewEngine()
	capacities := make([]float64, p.N())
	for s := range capacities {
		capacities[s] = p.BandwidthOf(s)
	}
	col := metrics.NewCollector(capacities)
	rng := stats.NewRNG(cfg.Seed)

	var controller Controller
	if cfg.NewController != nil {
		controller = cfg.NewController()
	}

	if cfg.Warmup < 0 {
		return zero, fmt.Errorf("sim: warmup must be non-negative, got %g", cfg.Warmup)
	}
	warm := func(now float64) bool { return now >= cfg.Warmup }

	admit := func(now float64, video int) {
		if controller != nil {
			controller.Observe(video)
		}
		id, ok := st.Admit(video, sched)
		if !ok {
			if warm(now) {
				col.Request(-1, false, false)
			}
			return
		}
		s, _ := st.Lookup(id)
		if warm(now) {
			col.Request(s.Server, true, s.Redirected)
			col.ObserveSessionRate(s.Rate)
		}
		if err := eng.ScheduleAfter(p.Catalog[video].Duration, func(float64) {
			// A server failure may already have torn the stream down; a
			// missing stream at departure time is expected then.
			if _, ok := st.Lookup(id); ok {
				if err := st.Release(id); err != nil {
					panic(err) // release of a live stream cannot fail
				}
			}
		}); err != nil {
			panic(err)
		}
	}

	if cfg.Trace != nil {
		for _, r := range cfg.Trace.Requests {
			req := r
			if req.Video >= p.M() {
				return zero, fmt.Errorf("sim: trace request targets video %d outside catalog of %d", req.Video, p.M())
			}
			if err := eng.Schedule(req.Time, func(now float64) { admit(now, req.Video) }); err != nil {
				return zero, err
			}
		}
	} else {
		arrivals := cfg.Arrivals
		if arrivals == nil {
			if p.ArrivalRate <= 0 {
				return zero, fmt.Errorf("sim: problem has no arrival rate and no trace/process was supplied")
			}
			arrivals = workload.Poisson{Lambda: p.ArrivalRate}
		}
		arrRNG := rng.Derive(1)
		vidRNG := rng.Derive(2)
		sampler, err := zipf.NewWeightedSampler(p.Catalog.Popularities())
		if err != nil {
			return zero, fmt.Errorf("sim: building video sampler: %w", err)
		}
		var nextArrival func(now float64)
		nextArrival = func(now float64) {
			gap := arrivals.Next(arrRNG)
			t := now + gap
			if t > duration {
				return
			}
			if err := eng.Schedule(t, func(tt float64) {
				admit(tt, sampler.Sample(vidRNG))
				nextArrival(tt)
			}); err != nil {
				panic(err)
			}
		}
		nextArrival(0)
	}

	// Failure injection: one alternating up/down process per server, active
	// during the arrival window.
	if cfg.Failures != nil {
		f := *cfg.Failures
		if err := f.Validate(); err != nil {
			return zero, err
		}
		for s := 0; s < p.N(); s++ {
			s := s
			failRNG := rng.Derive(100 + int64(s))
			var scheduleFailure func(now float64)
			scheduleFailure = func(now float64) {
				at := now + f.NextUptime(failRNG)
				if at > duration {
					return
				}
				if err := eng.Schedule(at, func(tt float64) {
					dropped := st.FailServer(s)
					if warm(tt) {
						col.Drop(dropped)
					}
					repairAt := tt + f.NextDowntime(failRNG)
					if err := eng.Schedule(repairAt, func(rt float64) {
						st.RestoreServer(s)
						scheduleFailure(rt)
					}); err != nil {
						panic(err)
					}
				}); err != nil {
					panic(err)
				}
			}
			scheduleFailure(0)
		}
	}

	// Controller ticks across the arrival window.
	if controller != nil {
		interval := controller.Interval()
		if interval <= 0 {
			return zero, fmt.Errorf("sim: controller interval must be positive, got %g", interval)
		}
		schedule := func(delay float64, fn func(now float64)) {
			if err := eng.ScheduleAfter(delay, fn); err != nil {
				panic(err)
			}
		}
		var tick func(now float64)
		tick = func(now float64) {
			controller.Tick(now, st, schedule)
			if now+interval <= duration {
				if err := eng.ScheduleAfter(interval, tick); err != nil {
					panic(err)
				}
			}
		}
		if err := eng.Schedule(interval, tick); err != nil {
			return zero, err
		}
	}

	// Periodic load sampling across the arrival window.
	var sampleTick func(now float64)
	sampleTick = func(now float64) {
		if warm(now) {
			col.SampleLoads(st.UsedBandwidths(), st.TotalActive())
		}
		if now+sample <= duration {
			if err := eng.ScheduleAfter(sample, sampleTick); err != nil {
				panic(err)
			}
		}
	}
	if err := eng.Schedule(sample, sampleTick); err != nil {
		return zero, err
	}

	eng.RunAll()
	return col.Result(), nil
}
