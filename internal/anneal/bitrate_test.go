package anneal

import (
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// bitrateProblem builds a small scalable-rate instance.
func bitrateProblem(t testing.TB, m, n int, storageGB float64) *BitRateProblem {
	t.Helper()
	c, err := core.NewCatalog(m, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         n,
		StoragePerServer:   storageGB * core.GB,
		BandwidthPerServer: core.Gbps,
		ArrivalRate:        10.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return &BitRateProblem{
		P:       p,
		RateSet: []float64{2 * core.Mbps, 4 * core.Mbps, 6 * core.Mbps, 8 * core.Mbps},
	}
}

func TestBitRateProblemValidate(t *testing.T) {
	bp := bitrateProblem(t, 12, 3, 30)
	if err := bp.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *bp
	bad.RateSet = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty rate set accepted")
	}
	bad.RateSet = []float64{4 * core.Mbps, 2 * core.Mbps}
	if err := bad.Validate(); err == nil {
		t.Fatal("descending rate set accepted")
	}
	bad.RateSet = []float64{0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rate accepted")
	}
	var nilP BitRateProblem
	if err := nilP.Validate(); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestInitialSolutionFeasible(t *testing.T) {
	bp := bitrateProblem(t, 12, 3, 30)
	init, err := bp.InitialSolution()
	if err != nil {
		t.Fatal(err)
	}
	e := bp.Evaluate(init)
	if !e.Feasible() {
		t.Fatalf("initial solution infeasible: %+v", e)
	}
	if e.Degree != 1 {
		t.Fatalf("initial degree %g, want 1", e.Degree)
	}
	if e.MeanRateMbps != 2 {
		t.Fatalf("initial mean rate %g, want the lowest rate 2", e.MeanRateMbps)
	}
	if init.TotalCopies() != 12 {
		t.Fatalf("copies %d", init.TotalCopies())
	}
}

func TestInitialSolutionDoesNotFit(t *testing.T) {
	// 12 videos at 2 Mb/s × 90 min = 1.35 GB each; 4 per server on 3
	// servers needs 5.4 GB — give less.
	bp := bitrateProblem(t, 12, 3, 4)
	if _, err := bp.InitialSolution(); err == nil {
		t.Fatal("impossible initial solution accepted")
	}
}

func TestEvaluateOrphans(t *testing.T) {
	bp := bitrateProblem(t, 6, 3, 30)
	l := NewBitRateLayout(6, 3)
	// Only video 0 placed.
	l.RateIdx[0][0] = 0
	e := bp.Evaluate(l)
	if e.Orphans != 5 {
		t.Fatalf("orphans = %d", e.Orphans)
	}
	if e.Feasible() {
		t.Fatal("layout with orphans reported feasible")
	}
	if bp.Cost(l) < 1e6 {
		t.Fatal("orphan penalty missing")
	}
}

func TestEvaluateViolationAccounting(t *testing.T) {
	bp := bitrateProblem(t, 4, 2, 3) // 3 GB per server
	l := NewBitRateLayout(4, 2)
	// Stuff server 0 with all four videos at the top rate:
	// 8 Mb/s × 90 min = 5.4 GB each, 21.6 GB total on a 3 GB server.
	for v := 0; v < 4; v++ {
		l.RateIdx[v][0] = 3
	}
	e := bp.Evaluate(l)
	if e.StorageViolation <= 0 {
		t.Fatal("storage violation not detected")
	}
	if e.Feasible() {
		t.Fatal("violating layout reported feasible")
	}
}

// TestNeighborPreservesFeasibility is the core repair property: starting
// from the feasible initial solution, thousands of random neighborhood moves
// must never leave the feasible region (orphans aside, which repair forbids).
func TestNeighborPreservesFeasibility(t *testing.T) {
	bp := bitrateProblem(t, 15, 4, 20)
	cur, err := bp.InitialSolution()
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(42)
	for step := 0; step < 3000; step++ {
		cur = bp.Neighbor(cur, rng)
		e := bp.Evaluate(cur)
		if !e.Feasible() {
			t.Fatalf("step %d: infeasible state: %+v", step, e)
		}
		for v := 0; v < bp.P.M(); v++ {
			if cur.Copies(v) < 1 {
				t.Fatalf("step %d: video %d lost its last copy", step, v)
			}
		}
	}
}

func TestNeighborDoesNotMutateArgument(t *testing.T) {
	bp := bitrateProblem(t, 10, 3, 20)
	cur, err := bp.InitialSolution()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := bp.Clone(cur)
	rng := stats.NewRNG(7)
	for i := 0; i < 200; i++ {
		bp.Neighbor(cur, rng)
	}
	for v := range cur.RateIdx {
		for s := range cur.RateIdx[v] {
			if cur.RateIdx[v][s] != snapshot.RateIdx[v][s] {
				t.Fatal("Neighbor mutated its argument")
			}
		}
	}
}

func TestOptimizeImprovesObjective(t *testing.T) {
	bp := bitrateProblem(t, 15, 4, 25)
	init, err := bp.InitialSolution()
	if err != nil {
		t.Fatal(err)
	}
	before := bp.Evaluate(init)
	opts := DefaultOptions()
	opts.Seed = 9
	opts.MaxSteps = 30000
	best, after, err := bp.Optimize(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Feasible() {
		t.Fatalf("annealed state infeasible: %+v", after)
	}
	if after.Objective <= before.Objective {
		t.Fatalf("annealing did not improve: %g → %g", before.Objective, after.Objective)
	}
	if best.TotalCopies() < bp.P.M() {
		t.Fatal("annealed layout lost videos")
	}
}

func TestOptimizeParallelChains(t *testing.T) {
	bp := bitrateProblem(t, 10, 3, 15)
	opts := DefaultOptions()
	opts.Seed = 4
	opts.MaxSteps = 8000
	_, e, err := bp.Optimize(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Feasible() {
		t.Fatal("parallel optimize produced infeasible state")
	}
}

func TestBitRateLayoutClone(t *testing.T) {
	l := NewBitRateLayout(3, 2)
	l.RateIdx[1][1] = 2
	c := l.clone()
	c.RateIdx[1][1] = 0
	if l.RateIdx[1][1] != 2 {
		t.Fatal("clone shares storage")
	}
	if l.Copies(1) != 1 || l.Copies(0) != 0 {
		t.Fatal("Copies miscounts")
	}
	if l.TotalCopies() != 1 {
		t.Fatal("TotalCopies miscounts")
	}
}

func TestQualityFollowsPopularity(t *testing.T) {
	// After annealing a tight instance, the hottest tier should end up with
	// at least as many copies as the coldest tier (availability follows
	// popularity through the load term).
	bp := bitrateProblem(t, 20, 4, 15)
	opts := DefaultOptions()
	opts.Seed = 21
	opts.MaxSteps = 40000
	best, _, err := bp.Optimize(opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	cold := 0
	for v := 0; v < 5; v++ {
		hot += best.Copies(v)
	}
	for v := 15; v < 20; v++ {
		cold += best.Copies(v)
	}
	if hot < cold {
		t.Fatalf("hot tier has %d copies, cold tier %d", hot, cold)
	}
}

func TestRuntimeConversion(t *testing.T) {
	bp := bitrateProblem(t, 12, 3, 30)
	opts := DefaultOptions()
	opts.Seed = 6
	opts.MaxSteps = 10000
	best, _, err := bp.Optimize(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	layout, rates, err := bp.Runtime(best)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.ValidateStructure(bp.P); err != nil {
		t.Fatal(err)
	}
	for v := range rates {
		for s, r := range rates[v] {
			holds := layout.Holds(v, s)
			if holds && r <= 0 {
				t.Fatalf("copy (%d,%d) has no rate", v, s)
			}
			if !holds && r != 0 {
				t.Fatalf("phantom rate at (%d,%d)", v, s)
			}
		}
	}
	// The conversion must preserve the copy count.
	if layout.TotalReplicas() != best.TotalCopies() {
		t.Fatalf("conversion changed copies: %d vs %d", layout.TotalReplicas(), best.TotalCopies())
	}
}

func TestRuntimeRejectsOrphans(t *testing.T) {
	bp := bitrateProblem(t, 4, 2, 30)
	l := NewBitRateLayout(4, 2)
	l.RateIdx[0][0] = 0 // videos 1..3 have no copy
	if _, _, err := bp.Runtime(l); err == nil {
		t.Fatal("orphaned videos accepted")
	}
}
