package anneal

import (
	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// rebuildEvery bounds floating-point drift in the cached accumulators: after
// this many committed moves the cache is recomputed from the layout. The
// rebuild is O(M·N) but amortizes to well under one cell visit per proposal.
const rebuildEvery = 1 << 16

// brCell records one cell's pre-change rate index so a move can be undone.
type brCell struct {
	v, s int32
	old  int16
}

// brMove is the delta path's move log: every cell the proposal (including
// its repair actions) touched, in application order, plus the cached cost
// before the proposal. It is a single scratch buffer per cache — the engine
// never holds two outstanding moves.
type brMove struct {
	cells   []brCell
	preCost float64
}

// brCache is the incremental evaluation state of one BitRateLayout under one
// BitRateProblem. It mirrors everything Evaluate rescans — per-server
// storage and expected peak bandwidth demand, per-video copy counts and rate
// sums, the Eq. 1 quality accumulator — and keeps all of it current in O(1)
// per touched cell (plus the O(copies) demand ripple when a video's copy
// count changes, since w_i = p_i·λ·T/r_i shifts on every server holding it).
//
// Storage accumulators are exact for integer-valued copy sizes (adds and
// removes of exactly representable byte counts below 2⁵³ round-trip without
// error); demand and quality accumulators carry rounding-level drift that
// the periodic rebuild resets and the differential tests bound at 1e-9
// relative. Feasibility bookkeeping (isViol/violCount) compares current
// loads against capacities directly — never accumulated excess sums — so it
// cannot drift across a raise/repair cycle.
type brCache struct {
	bp *BitRateProblem

	// Immutable per-video precomputation.
	popPeak []float64 // p_v · λ · T

	// Per-server loads and feasibility.
	storage   []float64 // bytes used
	demand    []float64 // expected peak bandwidth demand, bits/s
	isViol    []bool    // storage or demand over capacity
	violCount int

	// Per-video aggregates.
	copies  []int32
	rateSum []float64 // Σ rates of v's copies, bits/s

	// Eq. 1 accumulators.
	qualitySum  float64 // Σ_v rateSum_v / copies_v over videos with copies
	totalCopies int
	orphans     int

	// Membership lists per server: on[s] holds the videos with a copy on s,
	// off[s] the rest; pos[s][v] is v's index in whichever list it is in.
	// They make "pick a uniform random (non-)resident video" O(1) instead
	// of the O(M) classification scan Neighbor pays per proposal.
	on  [][]int32
	off [][]int32
	pos [][]int32

	// Scratch buffers.
	mv        brMove
	lowerable []int32
	evictable []int32
	applies   int     // committed moves since the last rebuild
	cost      float64 // cached cost of the current layout
}

// newBRCache builds the cache for l from scratch.
func newBRCache(bp *BitRateProblem, l *BitRateLayout) *brCache {
	m, n := bp.P.M(), bp.P.N()
	c := &brCache{
		bp:      bp,
		popPeak: make([]float64, m),
		storage: make([]float64, n),
		demand:  make([]float64, n),
		isViol:  make([]bool, n),
		copies:  make([]int32, m),
		rateSum: make([]float64, m),
		on:      make([][]int32, n),
		off:     make([][]int32, n),
		pos:     make([][]int32, n),
	}
	for v := 0; v < m; v++ {
		c.popPeak[v] = bp.P.PeakWeight(v)
	}
	for s := 0; s < n; s++ {
		c.pos[s] = make([]int32, m)
	}
	c.rebuild(l)
	return c
}

// rebuild recomputes every accumulator from the layout, resetting drift.
func (c *brCache) rebuild(l *BitRateLayout) {
	bp := c.bp
	m, n := bp.P.M(), bp.P.N()
	for s := 0; s < n; s++ {
		c.storage[s] = 0
		c.demand[s] = 0
		c.on[s] = c.on[s][:0]
		c.off[s] = c.off[s][:0]
	}
	c.qualitySum = 0
	c.totalCopies = 0
	c.orphans = 0
	for v := 0; v < m; v++ {
		copies := int32(0)
		rateSum := 0.0
		for s := 0; s < n; s++ {
			if ri := l.RateIdx[v][s]; ri >= 0 {
				copies++
				rateSum += bp.RateSet[ri]
				c.pos[s][v] = int32(len(c.on[s]))
				c.on[s] = append(c.on[s], int32(v))
			} else {
				c.pos[s][v] = int32(len(c.off[s]))
				c.off[s] = append(c.off[s], int32(v))
			}
		}
		c.copies[v] = copies
		c.rateSum[v] = rateSum
		if copies == 0 {
			c.orphans++
			continue
		}
		c.totalCopies += int(copies)
		c.qualitySum += rateSum / float64(copies)
		w := c.popPeak[v] / float64(copies)
		for s := 0; s < n; s++ {
			if ri := l.RateIdx[v][s]; ri >= 0 {
				c.storage[s] += bp.copySizeBytes(v, ri)
				c.demand[s] += w * bp.RateSet[ri]
			}
		}
	}
	c.violCount = 0
	for s := 0; s < n; s++ {
		c.isViol[s] = c.storage[s] > bp.P.StorageOf(s) || c.demand[s] > bp.P.BandwidthOf(s)
		if c.isViol[s] {
			c.violCount++
		}
	}
	c.applies = 0
	c.cost = bp.costOf(c.eval())
}

// maybeRebuild resets accumulated float drift once enough moves committed.
// It must only run between proposals (Propose calls it first), never while
// a move is outstanding.
func (c *brCache) maybeRebuild(l *BitRateLayout) {
	if c.applies >= rebuildEvery {
		c.rebuild(l)
	}
}

// setCell changes one (video, server) cell to the given rate index (-1 =
// no copy), updating every accumulator. With record set the pre-change
// value is appended to the move log so Revert can undo it. Cost: O(1) for
// rate-only changes; O(copies of v) when the copy count changes, for the
// cross-server demand ripple.
func (c *brCache) setCell(l *BitRateLayout, v, s int, newRI int16, record bool) {
	old := l.RateIdx[v][s]
	if old == newRI {
		return
	}
	if record {
		c.mv.cells = append(c.mv.cells, brCell{v: int32(v), s: int32(s), old: old})
	}
	bp := c.bp
	n := bp.P.N()

	var oldSize, oldRate, newSize, newRate float64
	if old >= 0 {
		oldSize = bp.copySizeBytes(v, old)
		oldRate = bp.RateSet[old]
	}
	if newRI >= 0 {
		newSize = bp.copySizeBytes(v, newRI)
		newRate = bp.RateSet[newRI]
	}
	if d := newSize - oldSize; d != 0 {
		c.storage[s] += d
	}

	cOld := int(c.copies[v])
	cNew := cOld
	if old < 0 {
		cNew++
	}
	if newRI < 0 {
		cNew--
	}
	rOld := c.rateSum[v]
	rNew := rOld - oldRate + newRate

	if cNew == cOld {
		// Rate change on an existing copy: only server s's demand moves.
		w := c.popPeak[v] / float64(cOld)
		c.demand[s] += w * (newRate - oldRate)
		c.refreshViol(s)
	} else {
		// Copy count changed: w_v shifts on every server holding v.
		wOld, wNew := 0.0, 0.0
		if cOld > 0 {
			wOld = c.popPeak[v] / float64(cOld)
		}
		if cNew > 0 {
			wNew = c.popPeak[v] / float64(cNew)
		}
		for i := 0; i < n; i++ {
			ri := l.RateIdx[v][i]
			if i == s {
				c.demand[i] += wNew*newRate - wOld*oldRate
				c.refreshViol(i)
				continue
			}
			if ri < 0 {
				continue
			}
			c.demand[i] += bp.RateSet[ri] * (wNew - wOld)
			c.refreshViol(i)
		}
		if old < 0 {
			c.listMove(c.off, c.on, s, v)
			c.totalCopies++
		} else {
			c.listMove(c.on, c.off, s, v)
			c.totalCopies--
		}
	}
	l.RateIdx[v][s] = newRI
	c.copies[v] = int32(cNew)
	c.rateSum[v] = rNew

	oldQ, newQ := 0.0, 0.0
	if cOld > 0 {
		oldQ = rOld / float64(cOld)
	}
	if cNew > 0 {
		newQ = rNew / float64(cNew)
	}
	c.qualitySum += newQ - oldQ
	if cOld == 0 && cNew > 0 {
		c.orphans--
	}
	if cOld > 0 && cNew == 0 {
		c.orphans++
	}
}

// refreshViol re-derives server s's feasibility flag from its current loads
// — an exact comparison, immune to accumulated-excess drift — and keeps the
// violated-server count in step.
func (c *brCache) refreshViol(s int) {
	viol := c.storage[s] > c.bp.P.StorageOf(s) || c.demand[s] > c.bp.P.BandwidthOf(s)
	if viol == c.isViol[s] {
		return
	}
	c.isViol[s] = viol
	if viol {
		c.violCount++
	} else {
		c.violCount--
	}
}

// listMove transfers v from from[s] to to[s] with a swap-remove, keeping
// pos consistent. O(1).
func (c *brCache) listMove(from, to [][]int32, s, v int) {
	fl := from[s]
	i := c.pos[s][v]
	last := fl[len(fl)-1]
	fl[i] = last
	c.pos[s][last] = i
	from[s] = fl[:len(fl)-1]
	c.pos[s][v] = int32(len(to[s]))
	to[s] = append(to[s], int32(v))
}

// eval assembles an Eval from the cached accumulators. O(N): the per-server
// violation and imbalance terms scan the server vector; everything per-video
// is already aggregated.
func (c *brCache) eval() Eval {
	bp := c.bp
	p := bp.P
	m, n := p.M(), p.N()
	var e Eval
	e.Orphans = c.orphans
	e.MeanRateMbps = c.qualitySum / core.Mbps / float64(m)
	e.Degree = float64(c.totalCopies) / float64(m)
	for s := 0; s < n; s++ {
		if over := c.storage[s] - p.StorageOf(s); over > 0 {
			e.StorageViolation += over
		}
		if over := c.demand[s] - p.BandwidthOf(s); over > 0 {
			e.BandwidthViolation += over
		}
	}
	e.Imbalance = core.ImbalanceMax(c.demand)
	obj := bp.objective()
	e.Objective = e.MeanRateMbps + obj.Alpha*e.Degree - obj.Beta*e.Imbalance
	return e
}

// repair is the delta path's feasibility restoration: the same randomized
// reduction policy as BitRateProblem.repair, but driven by the cached
// per-server loads and the incrementally tracked violated-server count, so
// one action costs O(copies on the violated server) instead of a full
// serverLoad rescan of every server.
func (c *brCache) repair(l *BitRateLayout, rng *stats.RNG) {
	bp := c.bp
	m, n := bp.P.M(), bp.P.N()
	maxActions := m*n*len(bp.RateSet) + m*n
	for action := 0; action < maxActions && c.violCount > 0; action++ {
		violated := -1
		for s := 0; s < n; s++ {
			if c.isViol[s] {
				violated = s
				break
			}
		}
		c.lowerable = c.lowerable[:0]
		c.evictable = c.evictable[:0]
		for _, v := range c.on[violated] {
			ri := l.RateIdx[v][violated]
			if ri > 0 {
				c.lowerable = append(c.lowerable, v)
			} else if c.copies[v] > 1 {
				c.evictable = append(c.evictable, v)
			}
		}
		total := len(c.lowerable) + len(c.evictable)
		if total == 0 {
			return // nothing reducible; the cost penalty handles the rest
		}
		k := rng.Intn(total)
		if k < len(c.lowerable) {
			v := int(c.lowerable[k])
			c.setCell(l, v, violated, l.RateIdx[v][violated]-1, true)
		} else {
			c.setCell(l, int(c.evictable[k-len(c.lowerable)]), violated, -1, true)
		}
	}
}
