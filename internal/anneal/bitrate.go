package anneal

import (
	"fmt"
	"math"

	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// BitRateLayout is the simulated-annealing state for the scalable-bit-rate
// problem (§4.3): which servers hold a copy of each video and at which
// encoding rate. Unlike the fixed-rate Layout, different copies of one video
// may be encoded at different rates — the flexibility the paper's conclusion
// highlights for serving heterogeneous clients.
type BitRateLayout struct {
	// RateIdx[v][s] is the index into the problem's RateSet of the copy of
	// video v on server s, or -1 when s holds no copy of v.
	RateIdx [][]int16

	// cache is the delta-evaluation state the DeltaProblem fast path
	// maintains alongside the layout; it is built lazily on the first
	// Propose and dropped by clone, so every annealing chain owns exactly
	// one. Mutating RateIdx directly invalidates it — external code must
	// treat layouts handed to the delta engine as opaque.
	cache *brCache
}

// NewBitRateLayout returns an empty layout for m videos and n servers.
func NewBitRateLayout(m, n int) *BitRateLayout {
	l := &BitRateLayout{RateIdx: make([][]int16, m)}
	for v := range l.RateIdx {
		l.RateIdx[v] = make([]int16, n)
		for s := range l.RateIdx[v] {
			l.RateIdx[v][s] = -1
		}
	}
	return l
}

// Copies returns how many servers hold video v.
func (l *BitRateLayout) Copies(v int) int {
	c := 0
	for _, ri := range l.RateIdx[v] {
		if ri >= 0 {
			c++
		}
	}
	return c
}

// TotalCopies returns the number of (video, server) placements.
func (l *BitRateLayout) TotalCopies() int {
	total := 0
	for v := range l.RateIdx {
		total += l.Copies(v)
	}
	return total
}

// clone deep-copies the layout.
func (l *BitRateLayout) clone() *BitRateLayout {
	c := &BitRateLayout{RateIdx: make([][]int16, len(l.RateIdx))}
	for v := range l.RateIdx {
		c.RateIdx[v] = append([]int16(nil), l.RateIdx[v]...)
	}
	return c
}

// BitRateProblem is the §4.3 optimization: choose copies and their discrete
// encoding rates to maximize the Eq. 1 objective under storage and outgoing
// bandwidth constraints. It implements Problem[*BitRateLayout] with
// Cost = −O plus a large penalty for any constraint violation (the
// neighborhood keeps states feasible by repair, so the penalty only guards
// against misuse).
type BitRateProblem struct {
	// P supplies the cluster, catalog popularities, durations, and
	// workload; the catalog's own BitRate fields are ignored.
	P *core.Problem
	// RateSet lists the admissible encoding rates in bits/s, ascending.
	// The paper's example set for MPEG-2 material is {2, 4, 6, 8} Mb/s.
	RateSet []float64
	// Obj weights the objective terms; the zero value means
	// core.DefaultObjective.
	Obj core.Objective
}

// Validate checks the problem parameters.
func (bp *BitRateProblem) Validate() error {
	if bp.P == nil {
		return fmt.Errorf("anneal: BitRateProblem needs a core problem")
	}
	if err := bp.P.Validate(); err != nil {
		return err
	}
	if len(bp.RateSet) == 0 {
		return fmt.Errorf("anneal: empty rate set")
	}
	for i, r := range bp.RateSet {
		if r <= 0 {
			return fmt.Errorf("anneal: rate %d is non-positive (%g)", i, r)
		}
		if i > 0 && r <= bp.RateSet[i-1] {
			return fmt.Errorf("anneal: rate set must be strictly ascending")
		}
	}
	return nil
}

func (bp *BitRateProblem) objective() core.Objective {
	if bp.Obj == (core.Objective{}) {
		return core.DefaultObjective()
	}
	return bp.Obj
}

// copySizeBytes returns the storage of one copy of video v at rate index ri.
func (bp *BitRateProblem) copySizeBytes(v int, ri int16) float64 {
	return bp.P.Catalog[v].SizeAtRate(bp.RateSet[ri])
}

// InitialSolution implements the paper's starting point: every video gets one
// copy at the lowest rate, dealt round-robin across servers. It returns an
// error if even that does not fit.
func (bp *BitRateProblem) InitialSolution() (*BitRateLayout, error) {
	if err := bp.Validate(); err != nil {
		return nil, err
	}
	m, n := bp.P.M(), bp.P.N()
	l := NewBitRateLayout(m, n)
	used := make([]float64, n)
	for v := 0; v < m; v++ {
		s := v % n
		size := bp.copySizeBytes(v, 0)
		if used[s]+size > bp.P.StorageOf(s) {
			return nil, fmt.Errorf("anneal: initial solution does not fit: server %d full at video %d", s, v)
		}
		l.RateIdx[v][s] = 0
		used[s] += size
	}
	return l, nil
}

// Eval describes a state's objective components and feasibility.
type Eval struct {
	// MeanRateMbps is the catalog-average of each video's mean copy rate.
	MeanRateMbps float64
	// Degree is the average number of copies per video.
	Degree float64
	// Imbalance is the Eq. 2 load imbalance of expected bandwidth demand.
	Imbalance float64
	// Objective is the Eq. 1 value (higher is better).
	Objective float64
	// StorageViolation and BandwidthViolation are the total capacity
	// excesses in bytes and bits/s; both are 0 for feasible states.
	StorageViolation   float64
	BandwidthViolation float64
	// Orphans counts videos with no copy at all (always infeasible).
	Orphans int
}

// Feasible reports whether the state satisfies every constraint.
func (e Eval) Feasible() bool {
	return e.StorageViolation == 0 && e.BandwidthViolation == 0 && e.Orphans == 0
}

// Evaluate scores a state.
func (bp *BitRateProblem) Evaluate(l *BitRateLayout) Eval {
	var e Eval
	p := bp.P
	m, n := p.M(), p.N()
	peak := p.PeakRequests()
	storage := make([]float64, n)
	demand := make([]float64, n)
	totalCopies := 0
	for v := 0; v < m; v++ {
		copies := 0
		rateSum := 0.0
		for s := 0; s < n; s++ {
			if l.RateIdx[v][s] >= 0 {
				copies++
				rateSum += bp.RateSet[l.RateIdx[v][s]]
			}
		}
		if copies == 0 {
			e.Orphans++
			continue
		}
		totalCopies += copies
		e.MeanRateMbps += rateSum / float64(copies) / core.Mbps
		w := p.Catalog[v].Popularity * peak / float64(copies)
		for s := 0; s < n; s++ {
			ri := l.RateIdx[v][s]
			if ri < 0 {
				continue
			}
			storage[s] += bp.copySizeBytes(v, ri)
			demand[s] += w * bp.RateSet[ri]
		}
	}
	e.MeanRateMbps /= float64(m)
	e.Degree = float64(totalCopies) / float64(m)
	for s := 0; s < n; s++ {
		if over := storage[s] - p.StorageOf(s); over > 0 {
			e.StorageViolation += over
		}
		if over := demand[s] - p.BandwidthOf(s); over > 0 {
			e.BandwidthViolation += over
		}
	}
	e.Imbalance = core.ImbalanceMax(demand)
	obj := bp.objective()
	e.Objective = e.MeanRateMbps + obj.Alpha*e.Degree - obj.Beta*e.Imbalance
	return e
}

// Cost implements Problem: the negated objective plus severe penalties for
// violated constraints. It always evaluates from scratch — the delta fast
// path keeps it as its cross-check.
func (bp *BitRateProblem) Cost(l *BitRateLayout) float64 {
	return bp.costOf(bp.Evaluate(l))
}

// costOf folds an evaluation into the annealing cost. The scratch Cost and
// the delta cache share it so the two paths price states identically.
func (bp *BitRateProblem) costOf(e Eval) float64 {
	penalty := 0.0
	if !e.Feasible() {
		n := float64(bp.P.N())
		penalty = 1e6 +
			e.StorageViolation/(bp.P.TotalStorage()/n) +
			e.BandwidthViolation/(bp.P.TotalBandwidth()/n) +
			float64(e.Orphans)
	}
	return -e.Objective + penalty
}

// Clone implements Problem.
func (bp *BitRateProblem) Clone(l *BitRateLayout) *BitRateLayout { return l.clone() }

// Neighbor implements Problem with the paper's move structure: pick a random
// server; either raise the rate of one of its copies or add a new video copy
// at the lowest rate; then, while the server violates storage or bandwidth,
// lower the rates of its copies and finally evict lowest-rate copies — never
// a video's cluster-wide last copy. When the chosen server admits no move at
// all (fully packed with every rate at the maximum), Neighbor returns l
// itself — the no-op signal Unchanged recognizes — instead of an identical
// clone the engine would re-evaluate and count as accepted.
func (bp *BitRateProblem) Neighbor(l *BitRateLayout, rng *stats.RNG) *BitRateLayout {
	p := bp.P
	m, n := p.M(), p.N()
	s := rng.Intn(n)

	onServer := make([]int, 0, m)
	offServer := make([]int, 0, m)
	for v := 0; v < m; v++ {
		if l.RateIdx[v][s] >= 0 {
			onServer = append(onServer, v)
		} else {
			offServer = append(offServer, v)
		}
	}

	// Decide the move against l, clone only once one exists.
	mutV, mutRI := -1, int16(0)
	grow := rng.Bernoulli(0.5)
	switch {
	case (grow || len(onServer) == 0) && len(offServer) > 0:
		mutV = offServer[rng.Intn(len(offServer))]
	case len(onServer) > 0:
		v := onServer[rng.Intn(len(onServer))]
		if int(l.RateIdx[v][s]) < len(bp.RateSet)-1 {
			mutV, mutRI = v, l.RateIdx[v][s]+1
		} else if len(offServer) > 0 { // already at max: add instead
			mutV = offServer[rng.Intn(len(offServer))]
		}
	}
	if mutV < 0 {
		return l // no move on this server: recognized no-op
	}

	nl := l.clone()
	nl.RateIdx[mutV][s] = mutRI
	bp.repair(nl, rng)
	return nl
}

// Unchanged implements NoopDetector: Neighbor signals a no-op by returning
// its argument itself.
func (bp *BitRateProblem) Unchanged(prev, cand *BitRateLayout) bool { return prev == cand }

// serverLoad computes server s's storage use and expected peak bandwidth
// demand under layout l.
func (bp *BitRateProblem) serverLoad(l *BitRateLayout, s int) (storage, demand float64) {
	p := bp.P
	peak := p.PeakRequests()
	for v := 0; v < p.M(); v++ {
		ri := l.RateIdx[v][s]
		if ri < 0 {
			continue
		}
		storage += bp.copySizeBytes(v, ri)
		w := p.Catalog[v].Popularity * peak / float64(l.Copies(v))
		demand += w * bp.RateSet[ri]
	}
	return storage, demand
}

// repair restores feasibility after a move by repeatedly applying one
// reduction action — lowering a raised copy's rate or evicting a lowest-rate
// copy that is not its video's last — on a violated server. The action is
// chosen uniformly at random so annealing can trade replicas for quality and
// vice versa; a deterministic highest-rate-first policy locks the search
// into all-copies states. Repair is global, not per-server: evicting a copy
// raises the communication weight of the video's remaining copies and can
// push *other* servers over their bandwidth limit, so the scan loops until
// no server is violated. Every action strictly reduces Σ(rate indices) +
// Σ(copies), so the loop terminates; in the rare state where a violated
// server has nothing reducible, the cost penalty takes over.
func (bp *BitRateProblem) repair(l *BitRateLayout, rng *stats.RNG) {
	p := bp.P
	m, n := p.M(), p.N()
	lowerable := make([]int, 0, m)
	evictable := make([]int, 0, m)
	// Upper bound on reduction actions: every copy can be lowered through
	// the whole rate ladder and then evicted once.
	maxActions := m*n*len(bp.RateSet) + m*n
	for action := 0; action < maxActions; action++ {
		violated := -1
		for s := 0; s < n; s++ {
			storage, demand := bp.serverLoad(l, s)
			if storage > p.StorageOf(s) || demand > p.BandwidthOf(s) {
				violated = s
				break
			}
		}
		if violated == -1 {
			return
		}
		lowerable = lowerable[:0]
		evictable = evictable[:0]
		for v := 0; v < m; v++ {
			ri := l.RateIdx[v][violated]
			if ri < 0 {
				continue
			}
			if ri > 0 {
				lowerable = append(lowerable, v)
			} else if l.Copies(v) > 1 {
				evictable = append(evictable, v)
			}
		}
		total := len(lowerable) + len(evictable)
		if total == 0 {
			return // nothing reducible; Cost's penalty handles the rest
		}
		k := rng.Intn(total)
		if k < len(lowerable) {
			l.RateIdx[lowerable[k]][violated]--
		} else {
			l.RateIdx[evictable[k-len(lowerable)]][violated] = -1
		}
	}
}

var (
	_ Problem[*BitRateLayout]           = (*BitRateProblem)(nil)
	_ NoopDetector[*BitRateLayout]      = (*BitRateProblem)(nil)
	_ DeltaProblem[*BitRateLayout, any] = (*BitRateProblem)(nil)
)

// Propose implements DeltaProblem: the same move structure as Neighbor, but
// executed in place against the layout's cached evaluation state, so the
// cost delta comes out in O(changed cells) instead of an M×N rescan. The
// returned move is a reused scratch buffer owned by the layout's cache —
// valid only until the next Propose, per the DeltaProblem contract.
func (bp *BitRateProblem) Propose(l *BitRateLayout, rng *stats.RNG) (any, float64) {
	c := bp.ensureCache(l)
	c.maybeRebuild(l)
	mv := &c.mv
	mv.cells = mv.cells[:0]
	mv.preCost = c.cost

	s := rng.Intn(bp.P.N())
	onS, offS := c.on[s], c.off[s]
	grow := rng.Bernoulli(0.5)
	switch {
	case (grow || len(onS) == 0) && len(offS) > 0:
		v := int(offS[rng.Intn(len(offS))])
		c.setCell(l, v, s, 0, true)
	case len(onS) > 0:
		v := int(onS[rng.Intn(len(onS))])
		if int(l.RateIdx[v][s]) < len(bp.RateSet)-1 {
			c.setCell(l, v, s, l.RateIdx[v][s]+1, true)
		} else if len(offS) > 0 { // already at max: add instead
			v = int(offS[rng.Intn(len(offS))])
			c.setCell(l, v, s, 0, true)
		} else {
			return mv, 0 // no move on this server
		}
	default:
		return mv, 0 // fully packed server with every rate at max
	}

	c.repair(l, rng)
	c.cost = bp.costOf(c.eval())
	return mv, c.cost - mv.preCost
}

// Apply implements DeltaProblem: Propose already mutated the state, so
// committing only advances the rebuild counter that bounds float drift.
func (bp *BitRateProblem) Apply(l *BitRateLayout, move any) {
	l.cache.applies++
}

// Revert implements DeltaProblem: undo the proposal's cell changes in
// reverse order, restoring the cached accumulators alongside the layout.
func (bp *BitRateProblem) Revert(l *BitRateLayout, move any) {
	mv := move.(*brMove)
	c := l.cache
	for i := len(mv.cells) - 1; i >= 0; i-- {
		cell := mv.cells[i]
		c.setCell(l, int(cell.v), int(cell.s), cell.old, false)
	}
	c.cost = mv.preCost
}

// IsNoop implements DeltaProblem: a proposal that found no move carries no
// cell changes.
func (bp *BitRateProblem) IsNoop(move any) bool { return len(move.(*brMove).cells) == 0 }

// ensureCache returns the layout's delta-evaluation cache, building it on
// first use or after the layout was handed over from a different problem.
func (bp *BitRateProblem) ensureCache(l *BitRateLayout) *brCache {
	if l.cache == nil || l.cache.bp != bp {
		l.cache = newBRCache(bp, l)
	}
	return l.cache
}

// Optimize runs the full §4.3 pipeline: initial solution, annealing, and a
// final evaluation. chains > 1 runs parallel independent searches.
func (bp *BitRateProblem) Optimize(opts Options, chains int) (*BitRateLayout, Eval, error) {
	init, err := bp.InitialSolution()
	if err != nil {
		return nil, Eval{}, err
	}
	var res Result[*BitRateLayout]
	if chains <= 1 {
		res, err = Minimize[*BitRateLayout](bp, init, opts)
	} else {
		res, err = MinimizeParallel[*BitRateLayout](bp, init, opts, chains)
	}
	if err != nil {
		return nil, Eval{}, err
	}
	e := bp.Evaluate(res.Best)
	if math.IsNaN(e.Objective) {
		return nil, Eval{}, fmt.Errorf("anneal: objective is NaN")
	}
	return res.Best, e, nil
}

// Runtime converts an annealed scalable-bit-rate layout into the simulator's
// inputs: a core.Layout listing where copies live and the per-copy rate
// matrix for cluster.WithCopyRates. The §4.3 result can then be simulated
// end to end instead of only evaluated analytically.
func (bp *BitRateProblem) Runtime(l *BitRateLayout) (*core.Layout, [][]float64, error) {
	if err := bp.Validate(); err != nil {
		return nil, nil, err
	}
	m, n := bp.P.M(), bp.P.N()
	if len(l.RateIdx) != m {
		return nil, nil, fmt.Errorf("anneal: layout covers %d videos; problem has %d", len(l.RateIdx), m)
	}
	layout := core.NewLayout(m)
	rates := make([][]float64, m)
	for v := 0; v < m; v++ {
		if len(l.RateIdx[v]) != n {
			return nil, nil, fmt.Errorf("anneal: video %d covers %d servers; want %d", v, len(l.RateIdx[v]), n)
		}
		rates[v] = make([]float64, n)
		for s := 0; s < n; s++ {
			ri := l.RateIdx[v][s]
			if ri < 0 {
				continue
			}
			if int(ri) >= len(bp.RateSet) {
				return nil, nil, fmt.Errorf("anneal: video %d on server %d has rate index %d of %d", v, s, ri, len(bp.RateSet))
			}
			if err := layout.Place(v, s); err != nil {
				return nil, nil, err
			}
			layout.Replicas[v]++
			rates[v][s] = bp.RateSet[ri]
		}
		if layout.Replicas[v] == 0 {
			return nil, nil, fmt.Errorf("anneal: video %d has no copy", v)
		}
	}
	return layout, rates, nil
}
