// Package anneal provides a generic simulated-annealing minimizer and the
// paper's scalable-bit-rate replication/placement optimizer built on it
// (§4.3). The paper used the closed-source parsa library for the annealing
// engine; this package substitutes a stdlib-only engine with a geometric
// cooling schedule and optional parallel independent chains, exposing the
// same three problem-specific hooks the paper lists: cost function, initial
// solution, and neighborhood structure.
package anneal

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"vodcluster/internal/stats"
)

// Problem supplies the problem-specific decisions of a simulated annealing
// search over states of type S. Implementations must treat states as values:
// Neighbor must not mutate its argument (use Clone).
type Problem[S any] interface {
	// Cost returns the value to minimize.
	Cost(s S) float64
	// Neighbor returns a random neighboring state.
	Neighbor(s S, rng *stats.RNG) S
	// Clone returns an independent deep copy of s.
	Clone(s S) S
}

// Options tunes the annealing schedule. The zero value is replaced by
// DefaultOptions.
type Options struct {
	// InitialTemp is the starting temperature; it should be on the order
	// of typical cost differences between neighbors.
	InitialTemp float64
	// Cooling is the geometric cooling factor in (0, 1); the temperature
	// is multiplied by it after every plateau.
	Cooling float64
	// PlateauSteps is the number of proposals evaluated per temperature.
	PlateauSteps int
	// MinTemp ends the search once the temperature falls below it.
	MinTemp float64
	// MaxSteps caps the total number of proposals regardless of
	// temperature (0 = no cap).
	MaxSteps int
	// Seed drives the proposal and acceptance randomness.
	Seed int64
}

// DefaultOptions returns a schedule that converges well on paper-sized
// instances (hundreds of videos, up to tens of servers).
func DefaultOptions() Options {
	return Options{
		InitialTemp:  1.0,
		Cooling:      0.95,
		PlateauSteps: 200,
		MinTemp:      1e-4,
		MaxSteps:     200_000,
	}
}

func (o Options) normalized() (Options, error) {
	if o.InitialTemp == 0 && o.Cooling == 0 && o.PlateauSteps == 0 {
		def := DefaultOptions()
		def.Seed = o.Seed
		return def, nil
	}
	if o.InitialTemp <= 0 {
		return o, fmt.Errorf("anneal: InitialTemp must be positive, got %g", o.InitialTemp)
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		return o, fmt.Errorf("anneal: Cooling must be in (0,1), got %g", o.Cooling)
	}
	if o.PlateauSteps <= 0 {
		return o, fmt.Errorf("anneal: PlateauSteps must be positive, got %d", o.PlateauSteps)
	}
	if o.MinTemp <= 0 {
		return o, fmt.Errorf("anneal: MinTemp must be positive, got %g", o.MinTemp)
	}
	return o, nil
}

// Result reports the outcome of one annealing run.
type Result[S any] struct {
	// Best is the lowest-cost state seen and BestCost its cost.
	Best     S
	BestCost float64
	// Steps is the number of proposals evaluated and Accepted how many
	// were taken.
	Steps    int
	Accepted int
	// CostTrace samples the current cost once per plateau, for convergence
	// plots.
	CostTrace []float64
}

// Minimize runs simulated annealing from the given initial state.
func Minimize[S any](p Problem[S], initial S, opts Options) (Result[S], error) {
	var zero Result[S]
	o, err := opts.normalized()
	if err != nil {
		return zero, err
	}
	rng := stats.NewRNG(o.Seed)
	cur := p.Clone(initial)
	curCost := p.Cost(cur)
	res := Result[S]{Best: p.Clone(cur), BestCost: curCost}

	temp := o.InitialTemp
	for temp >= o.MinTemp {
		for i := 0; i < o.PlateauSteps; i++ {
			if o.MaxSteps > 0 && res.Steps >= o.MaxSteps {
				return res, nil
			}
			res.Steps++
			cand := p.Neighbor(cur, rng)
			candCost := p.Cost(cand)
			if accept(curCost, candCost, temp, rng) {
				cur, curCost = cand, candCost
				res.Accepted++
				if curCost < res.BestCost {
					res.Best, res.BestCost = p.Clone(cur), curCost
				}
			}
		}
		res.CostTrace = append(res.CostTrace, curCost)
		temp *= o.Cooling
	}
	return res, nil
}

// accept implements the Metropolis criterion.
func accept(cur, cand, temp float64, rng *stats.RNG) bool {
	if cand <= cur {
		return true
	}
	return rng.Float64() < math.Exp((cur-cand)/temp)
}

// MinimizeParallel runs chains independent annealing searches with derived
// seeds in parallel and returns the best result. It replaces the parsa
// library's parallelism with the simplest strategy that preserves the
// paper's semantics: independent restarts.
func MinimizeParallel[S any](p Problem[S], initial S, opts Options, chains int) (Result[S], error) {
	var zero Result[S]
	if chains <= 0 {
		return zero, fmt.Errorf("anneal: need at least one chain, got %d", chains)
	}
	o, err := opts.normalized()
	if err != nil {
		return zero, err
	}
	results := make([]Result[S], chains)
	errs := make([]error, chains)
	root := stats.NewRNG(o.Seed)

	workers := runtime.GOMAXPROCS(0)
	if workers > chains {
		workers = chains
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				co := o
				co.Seed = root.Derive(int64(i)).Seed()
				results[i], errs[i] = Minimize(p, p.Clone(initial), co)
			}
		}()
	}
	for i := 0; i < chains; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return zero, fmt.Errorf("anneal: chain %d: %w", i, err)
		}
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.BestCost < best.BestCost {
			best = r
		}
	}
	return best, nil
}
