// Package anneal provides a generic simulated-annealing minimizer and the
// paper's scalable-bit-rate replication/placement optimizer built on it
// (§4.3). The paper used the closed-source parsa library for the annealing
// engine; this package substitutes a stdlib-only engine with a geometric
// cooling schedule and optional parallel independent chains, exposing the
// same three problem-specific hooks the paper lists: cost function, initial
// solution, and neighborhood structure.
package anneal

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"vodcluster/internal/stats"
)

// Problem supplies the problem-specific decisions of a simulated annealing
// search over states of type S. Implementations must treat states as values:
// Neighbor must not mutate its argument (use Clone). Neighbor may return its
// argument itself to signal a no-op proposal; implement NoopDetector so the
// engine can keep such proposals out of the acceptance statistics.
type Problem[S any] interface {
	// Cost returns the value to minimize.
	Cost(s S) float64
	// Neighbor returns a random neighboring state.
	Neighbor(s S, rng *stats.RNG) S
	// Clone returns an independent deep copy of s.
	Clone(s S) S
}

// NoopDetector optionally extends Problem for the clone-and-rescan path:
// when implemented, the engine asks it whether a candidate returned by
// Neighbor is the unchanged input (e.g. a fully-packed server with every
// rate at the maximum has no move to make). No-op proposals count as steps
// but are neither re-evaluated nor recorded as accepted.
type NoopDetector[S any] interface {
	// Unchanged reports whether cand is prev unmodified.
	Unchanged(prev, cand S) bool
}

// DeltaProblem extends Problem with an in-place, delta-evaluated move
// protocol: instead of cloning the whole state and rescanning it, Propose
// mutates s directly into a candidate neighbor and returns the exact cost
// difference, computed from cached evaluation state in O(changed cells).
// The engine then either keeps the candidate (Apply) or rolls it back
// (Revert); rejected proposals cost an undo instead of a full clone.
//
// Contract: the engine strictly alternates Propose with exactly one of
// Apply or Revert (never two outstanding moves), so implementations may
// return a reused scratch move value. After Revert, s must be restored to
// its pre-Propose state (bit-identical layout; cached floats may carry
// rounding-level drift). Cost must remain a from-scratch evaluation — it is
// the cross-check the differential tests run against the cache, and the
// engine uses it once to seed the running cost.
//
// Minimize and MinimizeParallel detect the M = any instantiation
// automatically and route to MinimizeDelta; problems with a concrete move
// type call MinimizeDelta directly. Result, Options, and seed-derivation
// semantics are identical on both paths.
type DeltaProblem[S, M any] interface {
	Problem[S]
	// Propose mutates s into a random neighbor and returns an opaque move
	// handle plus the cost delta of the candidate relative to s before the
	// call. A proposal with no move available returns a move for which
	// IsNoop reports true (and must leave s untouched).
	Propose(s S, rng *stats.RNG) (move M, dCost float64)
	// Apply commits the outstanding proposal.
	Apply(s S, move M)
	// Revert rolls the outstanding proposal back.
	Revert(s S, move M)
	// IsNoop reports whether the move changed nothing; no-ops are counted
	// as steps but never accepted, applied, or reverted.
	IsNoop(move M) bool
}

// Options tunes the annealing schedule. The zero value is replaced by
// DefaultOptions.
type Options struct {
	// InitialTemp is the starting temperature; it should be on the order
	// of typical cost differences between neighbors.
	InitialTemp float64
	// Cooling is the geometric cooling factor in (0, 1); the temperature
	// is multiplied by it after every plateau.
	Cooling float64
	// PlateauSteps is the number of proposals evaluated per temperature.
	PlateauSteps int
	// MinTemp ends the search once the temperature falls below it.
	MinTemp float64
	// MaxSteps caps the total number of proposals regardless of
	// temperature (0 = no cap).
	MaxSteps int
	// Seed drives the proposal and acceptance randomness.
	Seed int64
}

// DefaultOptions returns a schedule that converges well on paper-sized
// instances (hundreds of videos, up to tens of servers).
func DefaultOptions() Options {
	return Options{
		InitialTemp:  1.0,
		Cooling:      0.95,
		PlateauSteps: 200,
		MinTemp:      1e-4,
		MaxSteps:     200_000,
	}
}

func (o Options) normalized() (Options, error) {
	def := DefaultOptions()
	if o == (Options{Seed: o.Seed}) {
		// The fully-zero schedule is the documented "use the defaults"
		// request, including the default step cap.
		def.Seed = o.Seed
		return def, nil
	}
	// Fill only the unset fields, preserving everything the caller chose
	// explicitly (a caller setting just MinTemp or MaxSteps keeps them).
	// MaxSteps stays as given: once any field is set, 0 means "no cap".
	if o.InitialTemp == 0 {
		o.InitialTemp = def.InitialTemp
	}
	if o.Cooling == 0 {
		o.Cooling = def.Cooling
	}
	if o.PlateauSteps == 0 {
		o.PlateauSteps = def.PlateauSteps
	}
	if o.MinTemp == 0 {
		o.MinTemp = def.MinTemp
	}
	if o.InitialTemp <= 0 {
		return o, fmt.Errorf("anneal: InitialTemp must be positive, got %g", o.InitialTemp)
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		return o, fmt.Errorf("anneal: Cooling must be in (0,1), got %g", o.Cooling)
	}
	if o.PlateauSteps <= 0 {
		return o, fmt.Errorf("anneal: PlateauSteps must be positive, got %d", o.PlateauSteps)
	}
	if o.MinTemp <= 0 {
		return o, fmt.Errorf("anneal: MinTemp must be positive, got %g", o.MinTemp)
	}
	return o, nil
}

// Result reports the outcome of one annealing run.
type Result[S any] struct {
	// Best is the lowest-cost state seen and BestCost its cost.
	Best     S
	BestCost float64
	// Steps is the number of proposals evaluated and Accepted how many
	// were taken.
	Steps    int
	Accepted int
	// CostTrace samples the current cost once per plateau, for convergence
	// plots.
	CostTrace []float64
}

// Minimize runs simulated annealing from the given initial state. Problems
// implementing DeltaProblem[S, any] are routed to the delta-evaluated
// MinimizeDelta loop automatically; wrap the problem with Scratch to force
// the clone-and-rescan path.
func Minimize[S any](p Problem[S], initial S, opts Options) (Result[S], error) {
	if dp, ok := p.(DeltaProblem[S, any]); ok {
		return MinimizeDelta[S, any](dp, initial, opts)
	}
	var zero Result[S]
	o, err := opts.normalized()
	if err != nil {
		return zero, err
	}
	rng := stats.NewRNG(o.Seed)
	cur := p.Clone(initial)
	curCost := p.Cost(cur)
	res := Result[S]{Best: p.Clone(cur), BestCost: curCost}
	nd, hasNoop := p.(NoopDetector[S])

	temp := o.InitialTemp
	for temp >= o.MinTemp {
		for i := 0; i < o.PlateauSteps; i++ {
			if o.MaxSteps > 0 && res.Steps >= o.MaxSteps {
				return res, nil
			}
			res.Steps++
			cand := p.Neighbor(cur, rng)
			if hasNoop && nd.Unchanged(cur, cand) {
				continue
			}
			candCost := p.Cost(cand)
			if accept(curCost, candCost, temp, rng) {
				cur, curCost = cand, candCost
				res.Accepted++
				if curCost < res.BestCost {
					res.Best, res.BestCost = p.Clone(cur), curCost
				}
			}
		}
		res.CostTrace = append(res.CostTrace, curCost)
		temp *= o.Cooling
	}
	return res, nil
}

// MinimizeDelta runs simulated annealing over a delta-evaluated problem.
// The current state is mutated in place by Propose and either kept (Apply)
// or rolled back (Revert); the running cost is maintained by summing the
// returned deltas, so a proposal costs O(changed cells) instead of a full
// clone plus rescan. Result, Options, and seed semantics match Minimize.
func MinimizeDelta[S, M any](p DeltaProblem[S, M], initial S, opts Options) (Result[S], error) {
	var zero Result[S]
	o, err := opts.normalized()
	if err != nil {
		return zero, err
	}
	rng := stats.NewRNG(o.Seed)
	cur := p.Clone(initial)
	curCost := p.Cost(cur)
	res := Result[S]{Best: p.Clone(cur), BestCost: curCost}

	temp := o.InitialTemp
	for temp >= o.MinTemp {
		for i := 0; i < o.PlateauSteps; i++ {
			if o.MaxSteps > 0 && res.Steps >= o.MaxSteps {
				return res, nil
			}
			res.Steps++
			move, d := p.Propose(cur, rng)
			if p.IsNoop(move) {
				continue
			}
			if accept(curCost, curCost+d, temp, rng) {
				p.Apply(cur, move)
				curCost += d
				res.Accepted++
				if curCost < res.BestCost {
					res.Best, res.BestCost = p.Clone(cur), curCost
				}
			} else {
				p.Revert(cur, move)
			}
		}
		res.CostTrace = append(res.CostTrace, curCost)
		temp *= o.Cooling
	}
	return res, nil
}

// Scratch hides any delta fast path of p, forcing Minimize and
// MinimizeParallel onto the clone-and-rescan Problem loop. Benchmarks and
// differential tests use it to run both engines over one problem.
func Scratch[S any](p Problem[S]) Problem[S] { return scratchOnly[S]{p} }

type scratchOnly[S any] struct{ p Problem[S] }

func (w scratchOnly[S]) Cost(s S) float64               { return w.p.Cost(s) }
func (w scratchOnly[S]) Neighbor(s S, rng *stats.RNG) S { return w.p.Neighbor(s, rng) }
func (w scratchOnly[S]) Clone(s S) S                    { return w.p.Clone(s) }
func (w scratchOnly[S]) Unchanged(prev, cand S) bool {
	if nd, ok := w.p.(NoopDetector[S]); ok {
		return nd.Unchanged(prev, cand)
	}
	return false
}

// accept implements the Metropolis criterion.
func accept(cur, cand, temp float64, rng *stats.RNG) bool {
	if cand <= cur {
		return true
	}
	return rng.Float64() < math.Exp((cur-cand)/temp)
}

// MinimizeParallel runs chains independent annealing searches with derived
// seeds in parallel and returns the best result. It replaces the parsa
// library's parallelism with the simplest strategy that preserves the
// paper's semantics: independent restarts.
func MinimizeParallel[S any](p Problem[S], initial S, opts Options, chains int) (Result[S], error) {
	var zero Result[S]
	if chains <= 0 {
		return zero, fmt.Errorf("anneal: need at least one chain, got %d", chains)
	}
	o, err := opts.normalized()
	if err != nil {
		return zero, err
	}
	results := make([]Result[S], chains)
	errs := make([]error, chains)
	root := stats.NewRNG(o.Seed)

	workers := runtime.GOMAXPROCS(0)
	if workers > chains {
		workers = chains
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				co := o
				co.Seed = root.Derive(int64(i)).Seed()
				results[i], errs[i] = Minimize(p, p.Clone(initial), co)
			}
		}()
	}
	for i := 0; i < chains; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return zero, fmt.Errorf("anneal: chain %d: %w", i, err)
		}
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.BestCost < best.BestCost {
			best = r
		}
	}
	return best, nil
}
