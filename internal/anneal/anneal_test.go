package anneal

import (
	"math"
	"testing"

	"vodcluster/internal/stats"
)

// quadratic is a toy 1-D problem: minimize (x − 7)² over integer steps.
type quadratic struct{}

func (quadratic) Cost(x float64) float64 { return (x - 7) * (x - 7) }

func (quadratic) Neighbor(x float64, rng *stats.RNG) float64 {
	if rng.Bernoulli(0.5) {
		return x + 1
	}
	return x - 1
}

func (quadratic) Clone(x float64) float64 { return x }

func TestMinimizeConvergesOnToyProblem(t *testing.T) {
	opts := Options{InitialTemp: 10, Cooling: 0.9, PlateauSteps: 50, MinTemp: 1e-3, Seed: 1}
	res, err := Minimize[float64](quadratic{}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best-7) > 1 {
		t.Fatalf("annealer ended at %g, want ≈ 7", res.Best)
	}
	if res.BestCost > 1 {
		t.Fatalf("best cost %g", res.BestCost)
	}
	if res.Steps == 0 || res.Accepted == 0 || len(res.CostTrace) == 0 {
		t.Fatalf("bookkeeping empty: %+v", res)
	}
	if res.Accepted > res.Steps {
		t.Fatal("accepted more proposals than evaluated")
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	opts := Options{InitialTemp: 5, Cooling: 0.9, PlateauSteps: 20, MinTemp: 1e-2, Seed: 3}
	a, err := Minimize[float64](quadratic{}, 50, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Minimize[float64](quadratic{}, 50, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || a.Steps != b.Steps || a.Accepted != b.Accepted {
		t.Fatal("same seed diverged")
	}
}

func TestMinimizeMaxStepsCap(t *testing.T) {
	opts := Options{InitialTemp: 10, Cooling: 0.999, PlateauSteps: 100, MinTemp: 1e-9, MaxSteps: 500, Seed: 1}
	res, err := Minimize[float64](quadratic{}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 500 {
		t.Fatalf("steps = %d, want exactly the cap", res.Steps)
	}
}

func TestOptionsValidation(t *testing.T) {
	// Zero fields mean "unset, fill the default"; only genuinely invalid
	// values are rejected.
	bad := []Options{
		{InitialTemp: -1, Cooling: 0.9, PlateauSteps: 10, MinTemp: 1e-3},
		{InitialTemp: 1, Cooling: -0.5, PlateauSteps: 10, MinTemp: 1e-3},
		{InitialTemp: 1, Cooling: 1, PlateauSteps: 10, MinTemp: 1e-3},
		{InitialTemp: 1, Cooling: 0.9, PlateauSteps: -1, MinTemp: 1e-3},
		{InitialTemp: 1, Cooling: 0.9, PlateauSteps: 10, MinTemp: -1e-3},
	}
	for i, o := range bad {
		if _, err := Minimize[float64](quadratic{}, 0, o); err == nil {
			t.Fatalf("bad options %d accepted", i)
		}
	}
	// Zero value falls back to defaults.
	if _, err := Minimize[float64](quadratic{}, 0, Options{Seed: 2}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

// TestNormalizedPreservesExplicitFields is the regression test for the
// default-filling bug: setting only MinTemp, MaxSteps, or Seed used to have
// MinTemp and MaxSteps silently replaced by DefaultOptions.
func TestNormalizedPreservesExplicitFields(t *testing.T) {
	def := DefaultOptions()

	o, err := Options{MaxSteps: 123}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxSteps != 123 {
		t.Fatalf("explicit MaxSteps overwritten: got %d", o.MaxSteps)
	}
	if o.InitialTemp != def.InitialTemp || o.Cooling != def.Cooling ||
		o.PlateauSteps != def.PlateauSteps || o.MinTemp != def.MinTemp {
		t.Fatalf("unset fields not defaulted: %+v", o)
	}

	o, err = Options{MinTemp: 0.25}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if o.MinTemp != 0.25 {
		t.Fatalf("explicit MinTemp overwritten: got %g", o.MinTemp)
	}
	// Once any schedule field is set, MaxSteps 0 keeps meaning "no cap".
	if o.MaxSteps != 0 {
		t.Fatalf("MaxSteps defaulted alongside an explicit MinTemp: got %d", o.MaxSteps)
	}

	// Seed alone still selects the full default schedule.
	o, err = Options{Seed: 7}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	want := def
	want.Seed = 7
	if o != want {
		t.Fatalf("seed-only options: got %+v, want %+v", o, want)
	}

	// The explicit MaxSteps must actually cap the run.
	res, err := Minimize[float64](quadratic{}, 100, Options{MaxSteps: 123, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 123 {
		t.Fatalf("steps = %d, want the explicit cap 123", res.Steps)
	}
}

func TestDefaultOptionsValid(t *testing.T) {
	if _, err := DefaultOptions().normalized(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestMinimizeParallelPicksBest(t *testing.T) {
	opts := Options{InitialTemp: 10, Cooling: 0.9, PlateauSteps: 30, MinTemp: 1e-3, Seed: 5}
	res, err := MinimizeParallel[float64](quadratic{}, 200, opts, 6)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Minimize[float64](quadratic{}, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > single.BestCost+1e-9 {
		t.Fatalf("best-of-6 (%g) worse than single chain (%g)", res.BestCost, single.BestCost)
	}
	if _, err := MinimizeParallel[float64](quadratic{}, 0, opts, 0); err == nil {
		t.Fatal("zero chains accepted")
	}
}

func TestMinimizeParallelDeterministic(t *testing.T) {
	opts := Options{InitialTemp: 10, Cooling: 0.9, PlateauSteps: 30, MinTemp: 1e-3, Seed: 5}
	a, err := MinimizeParallel[float64](quadratic{}, 200, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinimizeParallel[float64](quadratic{}, 200, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost {
		t.Fatal("parallel chains not deterministic")
	}
}

// plateauProblem has a flat cost, so every proposal is accepted; used to
// check acceptance bookkeeping.
type plateauProblem struct{}

func (plateauProblem) Cost(float64) float64 { return 1 }
func (plateauProblem) Neighbor(x float64, rng *stats.RNG) float64 {
	return x + 1
}
func (plateauProblem) Clone(x float64) float64 { return x }

func TestFlatCostAcceptsEverything(t *testing.T) {
	opts := Options{InitialTemp: 1, Cooling: 0.5, PlateauSteps: 10, MinTemp: 0.4, Seed: 1}
	res, err := Minimize[float64](plateauProblem{}, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != res.Steps {
		t.Fatalf("flat landscape: accepted %d of %d", res.Accepted, res.Steps)
	}
}

// deltaQuadratic is the delta-evaluated twin of the quadratic toy problem:
// states are mutable pointers, Propose steps in place, and the counters
// record which engine path ran.
type deltaQuadratic struct {
	proposes  *int
	neighbors *int
}

func (d deltaQuadratic) cost(x float64) float64 { return (x - 7) * (x - 7) }

func (d deltaQuadratic) Cost(x *float64) float64 { return d.cost(*x) }

func (d deltaQuadratic) Neighbor(x *float64, rng *stats.RNG) *float64 {
	*d.neighbors++
	y := *x - 1
	if rng.Bernoulli(0.5) {
		y = *x + 1
	}
	return &y
}

func (d deltaQuadratic) Clone(x *float64) *float64 { y := *x; return &y }

func (d deltaQuadratic) Propose(x *float64, rng *stats.RNG) (any, float64) {
	*d.proposes++
	old := *x
	if rng.Bernoulli(0.5) {
		*x = old + 1
	} else {
		*x = old - 1
	}
	return old, d.cost(*x) - d.cost(old)
}

func (d deltaQuadratic) Apply(x *float64, move any) {}

func (d deltaQuadratic) Revert(x *float64, move any) { *x = move.(float64) }

func (d deltaQuadratic) IsNoop(move any) bool { return false }

func TestMinimizeRoutesDeltaProblems(t *testing.T) {
	proposes, neighbors := 0, 0
	d := deltaQuadratic{proposes: &proposes, neighbors: &neighbors}
	opts := Options{InitialTemp: 10, Cooling: 0.9, PlateauSteps: 50, MinTemp: 1e-3, Seed: 1}
	start := 100.0
	res, err := Minimize[*float64](d, &start, opts)
	if err != nil {
		t.Fatal(err)
	}
	if proposes == 0 || neighbors != 0 {
		t.Fatalf("delta problem not routed to the delta path: %d proposes, %d neighbors", proposes, neighbors)
	}
	if math.Abs(*res.Best-7) > 1 || res.BestCost > 1 {
		t.Fatalf("delta path ended at %g (cost %g), want ≈ 7", *res.Best, res.BestCost)
	}
	if res.Accepted == 0 || res.Accepted > res.Steps {
		t.Fatalf("bookkeeping wrong: %+v", res)
	}
	if start != 100 {
		t.Fatalf("Minimize mutated the caller's initial state to %g", start)
	}

	// Scratch forces the clone-and-rescan path over the same problem.
	proposes, neighbors = 0, 0
	sres, err := Minimize[*float64](Scratch[*float64](d), &start, opts)
	if err != nil {
		t.Fatal(err)
	}
	if neighbors == 0 || proposes != 0 {
		t.Fatalf("Scratch wrapper still used the delta path: %d proposes, %d neighbors", proposes, neighbors)
	}
	if math.Abs(*sres.Best-7) > 1 {
		t.Fatalf("scratch path ended at %g, want ≈ 7", *sres.Best)
	}
}

func TestMinimizeDeltaDeterministic(t *testing.T) {
	opts := Options{InitialTemp: 5, Cooling: 0.9, PlateauSteps: 20, MinTemp: 1e-2, Seed: 3}
	run := func() Result[*float64] {
		p, n := 0, 0
		start := 50.0
		res, err := Minimize[*float64](deltaQuadratic{proposes: &p, neighbors: &n}, &start, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *a.Best != *b.Best || a.Steps != b.Steps || a.Accepted != b.Accepted || a.BestCost != b.BestCost {
		t.Fatal("delta path not deterministic for one seed")
	}
}

// noopProblem proposes nothing, ever, on both paths.
type noopProblem struct{}

func (noopProblem) Cost(x *float64) float64 { return *x }
func (noopProblem) Neighbor(x *float64, rng *stats.RNG) *float64 {
	rng.Float64() // consume randomness like a real proposal would
	return x
}
func (noopProblem) Clone(x *float64) *float64          { y := *x; return &y }
func (noopProblem) Unchanged(prev, cand *float64) bool { return prev == cand }
func (noopProblem) Propose(x *float64, rng *stats.RNG) (any, float64) {
	rng.Float64()
	return nil, 0
}
func (noopProblem) Apply(x *float64, move any)  {}
func (noopProblem) Revert(x *float64, move any) {}
func (noopProblem) IsNoop(move any) bool        { return move == nil }

func TestNoopProposalsNotCountedAccepted(t *testing.T) {
	opts := Options{InitialTemp: 1, Cooling: 0.5, PlateauSteps: 10, MinTemp: 0.4, Seed: 1}
	x := 1.0

	res, err := Minimize[*float64](noopProblem{}, &x, opts) // delta path
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 20 || res.Accepted != 0 {
		t.Fatalf("delta path: steps %d accepted %d, want 20 and 0", res.Steps, res.Accepted)
	}

	res, err = Minimize[*float64](Scratch[*float64](noopProblem{}), &x, opts) // scratch path
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 20 || res.Accepted != 0 {
		t.Fatalf("scratch path: steps %d accepted %d, want 20 and 0", res.Steps, res.Accepted)
	}
}
