package anneal

import (
	"math"
	"testing"

	"vodcluster/internal/stats"
)

// quadratic is a toy 1-D problem: minimize (x − 7)² over integer steps.
type quadratic struct{}

func (quadratic) Cost(x float64) float64 { return (x - 7) * (x - 7) }

func (quadratic) Neighbor(x float64, rng *stats.RNG) float64 {
	if rng.Bernoulli(0.5) {
		return x + 1
	}
	return x - 1
}

func (quadratic) Clone(x float64) float64 { return x }

func TestMinimizeConvergesOnToyProblem(t *testing.T) {
	opts := Options{InitialTemp: 10, Cooling: 0.9, PlateauSteps: 50, MinTemp: 1e-3, Seed: 1}
	res, err := Minimize[float64](quadratic{}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best-7) > 1 {
		t.Fatalf("annealer ended at %g, want ≈ 7", res.Best)
	}
	if res.BestCost > 1 {
		t.Fatalf("best cost %g", res.BestCost)
	}
	if res.Steps == 0 || res.Accepted == 0 || len(res.CostTrace) == 0 {
		t.Fatalf("bookkeeping empty: %+v", res)
	}
	if res.Accepted > res.Steps {
		t.Fatal("accepted more proposals than evaluated")
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	opts := Options{InitialTemp: 5, Cooling: 0.9, PlateauSteps: 20, MinTemp: 1e-2, Seed: 3}
	a, err := Minimize[float64](quadratic{}, 50, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Minimize[float64](quadratic{}, 50, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || a.Steps != b.Steps || a.Accepted != b.Accepted {
		t.Fatal("same seed diverged")
	}
}

func TestMinimizeMaxStepsCap(t *testing.T) {
	opts := Options{InitialTemp: 10, Cooling: 0.999, PlateauSteps: 100, MinTemp: 1e-9, MaxSteps: 500, Seed: 1}
	res, err := Minimize[float64](quadratic{}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 500 {
		t.Fatalf("steps = %d, want exactly the cap", res.Steps)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{InitialTemp: -1, Cooling: 0.9, PlateauSteps: 10, MinTemp: 1e-3},
		{InitialTemp: 1, Cooling: 0, PlateauSteps: 10, MinTemp: 1e-3},
		{InitialTemp: 1, Cooling: 1, PlateauSteps: 10, MinTemp: 1e-3},
		{InitialTemp: 1, Cooling: 0.9, PlateauSteps: 0, MinTemp: 1e-3},
		{InitialTemp: 1, Cooling: 0.9, PlateauSteps: 10, MinTemp: 0},
	}
	for i, o := range bad {
		if _, err := Minimize[float64](quadratic{}, 0, o); err == nil {
			t.Fatalf("bad options %d accepted", i)
		}
	}
	// Zero value falls back to defaults.
	if _, err := Minimize[float64](quadratic{}, 0, Options{Seed: 2}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

func TestDefaultOptionsValid(t *testing.T) {
	if _, err := DefaultOptions().normalized(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestMinimizeParallelPicksBest(t *testing.T) {
	opts := Options{InitialTemp: 10, Cooling: 0.9, PlateauSteps: 30, MinTemp: 1e-3, Seed: 5}
	res, err := MinimizeParallel[float64](quadratic{}, 200, opts, 6)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Minimize[float64](quadratic{}, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > single.BestCost+1e-9 {
		t.Fatalf("best-of-6 (%g) worse than single chain (%g)", res.BestCost, single.BestCost)
	}
	if _, err := MinimizeParallel[float64](quadratic{}, 0, opts, 0); err == nil {
		t.Fatal("zero chains accepted")
	}
}

func TestMinimizeParallelDeterministic(t *testing.T) {
	opts := Options{InitialTemp: 10, Cooling: 0.9, PlateauSteps: 30, MinTemp: 1e-3, Seed: 5}
	a, err := MinimizeParallel[float64](quadratic{}, 200, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinimizeParallel[float64](quadratic{}, 200, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost {
		t.Fatal("parallel chains not deterministic")
	}
}

// plateauProblem has a flat cost, so every proposal is accepted; used to
// check acceptance bookkeeping.
type plateauProblem struct{}

func (plateauProblem) Cost(float64) float64 { return 1 }
func (plateauProblem) Neighbor(x float64, rng *stats.RNG) float64 {
	return x + 1
}
func (plateauProblem) Clone(x float64) float64 { return x }

func TestFlatCostAcceptsEverything(t *testing.T) {
	opts := Options{InitialTemp: 1, Cooling: 0.5, PlateauSteps: 10, MinTemp: 0.4, Seed: 1}
	res, err := Minimize[float64](plateauProblem{}, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != res.Steps {
		t.Fatalf("flat landscape: accepted %d of %d", res.Accepted, res.Steps)
	}
}
