package anneal

import (
	"fmt"
	"math"
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// relClose reports whether a and b agree within tol relative to their
// magnitude (with an absolute floor of tol for values near zero).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// checkEvalAgainstScratch cross-checks every cached component and the cached
// cost of l against the from-scratch Evaluate/Cost, failing with the given
// context label.
func checkEvalAgainstScratch(t *testing.T, bp *BitRateProblem, l *BitRateLayout, ctx string) {
	t.Helper()
	const tol = 1e-9
	c := l.cache
	got := c.eval()
	want := bp.Evaluate(l)
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"MeanRateMbps", got.MeanRateMbps, want.MeanRateMbps},
		{"Degree", got.Degree, want.Degree},
		{"Imbalance", got.Imbalance, want.Imbalance},
		{"Objective", got.Objective, want.Objective},
		{"StorageViolation", got.StorageViolation, want.StorageViolation},
		{"BandwidthViolation", got.BandwidthViolation, want.BandwidthViolation},
		{"Orphans", float64(got.Orphans), float64(want.Orphans)},
		{"cost", c.cost, bp.Cost(l)},
	}
	for _, p := range pairs {
		if !relClose(p.got, p.want, tol) {
			t.Fatalf("%s: cached %s = %.17g, scratch = %.17g (Δ %g)",
				ctx, p.name, p.got, p.want, p.got-p.want)
		}
	}
	// Feasibility bookkeeping must agree exactly, not just within tolerance:
	// a drifting flag would flip the 1e6 penalty cliff.
	feasible := c.violCount == 0 && c.orphans == 0
	if feasible != want.Feasible() {
		t.Fatalf("%s: cached feasibility %v, scratch %v", ctx, feasible, want.Feasible())
	}
}

// snapshotRateIdx copies the raw layout matrix for bit-exact comparison.
func snapshotRateIdx(l *BitRateLayout) [][]int16 {
	s := make([][]int16, len(l.RateIdx))
	for v := range l.RateIdx {
		s[v] = append([]int16(nil), l.RateIdx[v]...)
	}
	return s
}

func sameRateIdx(a [][]int16, l *BitRateLayout) bool {
	for v := range a {
		for s := range a[v] {
			if a[v][s] != l.RateIdx[v][s] {
				return false
			}
		}
	}
	return true
}

// deltaShapes are the instance shapes the differential harness sweeps: a
// small tight cluster, a mid-size one, and a heterogeneous cluster where
// per-server capacities differ (exercising StorageOf/BandwidthOf per server).
func deltaShapes(t testing.TB) []*BitRateProblem {
	t.Helper()
	small := bitrateProblem(t, 8, 2, 12)
	mid := bitrateProblem(t, 15, 4, 20)
	het := bitrateProblem(t, 24, 6, 30)
	het.P.ServerStorage = []float64{
		18 * core.GB, 24 * core.GB, 30 * core.GB, 36 * core.GB, 42 * core.GB, 48 * core.GB,
	}
	het.P.ServerBandwidth = []float64{
		0.6 * core.Gbps, 0.8 * core.Gbps, core.Gbps, 1.2 * core.Gbps, 1.4 * core.Gbps, 1.6 * core.Gbps,
	}
	if err := het.P.Validate(); err != nil {
		t.Fatal(err)
	}
	return []*BitRateProblem{small, mid, het}
}

// TestDeltaMatchesScratchEvaluate is the differential harness the delta fast
// path is gated on: it drives Propose/Apply/Revert over thousands of
// randomized moves per instance shape and asserts after every single step
// that the cached evaluation components match the from-scratch Evaluate
// within 1e-9 relative, and that Revert restores the layout bit-exactly.
func TestDeltaMatchesScratchEvaluate(t *testing.T) {
	const wantAccepted = 5000
	for shape, bp := range deltaShapes(t) {
		l, err := bp.InitialSolution()
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(int64(1000 + shape))
		accepted, reverted, noops := 0, 0, 0
		for step := 0; accepted < wantAccepted; step++ {
			if step > 50*wantAccepted {
				t.Fatalf("shape %d: only %d accepted moves after %d proposals", shape, accepted, step)
			}
			pre := snapshotRateIdx(l)
			move, d := bp.Propose(l, rng)
			if bp.IsNoop(move) {
				noops++
				if !sameRateIdx(pre, l) {
					t.Fatalf("shape %d step %d: no-op proposal mutated the layout", shape, step)
				}
				continue
			}
			// Bias toward accepting so the walk wanders far from the initial
			// solution, but keep a steady diet of reverts.
			if rng.Bernoulli(0.7) {
				bp.Apply(l, move)
				accepted++
				// The returned delta must price the transition exactly.
				if !relClose(l.cache.cost, bp.Cost(l), 1e-9) {
					t.Fatalf("shape %d step %d: cached cost diverged", shape, step)
				}
				_ = d
			} else {
				bp.Revert(l, move)
				reverted++
				if !sameRateIdx(pre, l) {
					t.Fatalf("shape %d step %d: Revert did not restore the layout", shape, step)
				}
			}
			checkEvalAgainstScratch(t, bp, l, fmt.Sprintf("shape %d step %d", shape, step))
		}
		if reverted == 0 {
			t.Fatalf("shape %d: walk never reverted", shape)
		}
		t.Logf("shape %d: %d accepted, %d reverted, %d no-ops", shape, accepted, reverted, noops)
	}
}

// TestDeltaDemandRipple pins the w_i = p_i·λ·T/r_i cross-server ripple: when
// a video gains or loses a copy, the cached demand of *other* servers holding
// it must shift too. A rebuilt cache is the oracle.
func TestDeltaDemandRipple(t *testing.T) {
	bp := bitrateProblem(t, 10, 4, 30)
	l, err := bp.InitialSolution()
	if err != nil {
		t.Fatal(err)
	}
	c := bp.ensureCache(l)
	// Give video 0 a second copy on a server it is not on; its first copy's
	// server must see its demand drop (w halves) without being touched.
	home := -1
	for s := 0; s < bp.P.N(); s++ {
		if l.RateIdx[0][s] >= 0 {
			home = s
			break
		}
	}
	other := (home + 1) % bp.P.N()
	before := c.demand[home]
	c.setCell(l, 0, other, 0, false)
	if c.demand[home] >= before {
		t.Fatalf("adding a copy elsewhere did not reduce the home server's demand: %g → %g",
			before, c.demand[home])
	}
	fresh := newBRCache(bp, l)
	for s := 0; s < bp.P.N(); s++ {
		if !relClose(c.demand[s], fresh.demand[s], 1e-9) {
			t.Fatalf("server %d demand drifted from oracle: %g vs %g", s, c.demand[s], fresh.demand[s])
		}
	}
}

// perturb pushes a feasible layout toward infeasibility the same way a
// proposal does — raise one random cell or add one copy — returning false if
// the instance admits no perturbation.
func perturb(bp *BitRateProblem, l *BitRateLayout, c *brCache, rng *stats.RNG) bool {
	m, n := bp.P.M(), bp.P.N()
	for try := 0; try < 4*m*n; try++ {
		v, s := rng.Intn(m), rng.Intn(n)
		ri := l.RateIdx[v][s]
		switch {
		case ri < 0:
			c.setCell(l, v, s, 0, true)
			return true
		case int(ri) < len(bp.RateSet)-1:
			c.setCell(l, v, s, ri+1, true)
			return true
		}
	}
	return false
}

// repairInstance builds a random feasible instance for the repair property
// tests; shapes span m∈[2,40], n∈[1,8]. Returns nil when the random draw
// cannot fit even the initial solution.
func repairInstance(t testing.TB, rng *stats.RNG) *BitRateProblem {
	t.Helper()
	m := 2 + rng.Intn(39)
	n := 1 + rng.Intn(8)
	// Enough room for the one-copy-per-video start plus some slack; the
	// additive floor keeps the largest single video (2.7 GB at the catalog's
	// 4 Mb/s) fitting on one server, which Validate requires.
	perServer := float64(m)/float64(n)*1.35 + 2.7
	storageGB := perServer * (1 + rng.Float64()*2)
	c, err := core.NewCatalog(m, 0.5+rng.Float64(), 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         n,
		StoragePerServer:   storageGB * core.GB,
		BandwidthPerServer: (0.5 + rng.Float64()) * core.Gbps,
		ArrivalRate:        (2 + 8*rng.Float64()) / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return &BitRateProblem{
		P:       p,
		RateSet: []float64{2 * core.Mbps, 4 * core.Mbps, 6 * core.Mbps, 8 * core.Mbps},
	}
}

// checkRepairProperties runs one seeded repair scenario through both the
// scratch and the delta repair and asserts the shared invariants: repair
// terminates, never evicts a video's cluster-wide last copy, and restores
// full feasibility whenever a feasible reduction sequence exists (it always
// does here — the perturbation itself can be undone).
func checkRepairProperties(t *testing.T, seed int64) {
	t.Helper()
	rng := stats.NewRNG(seed)
	bp := repairInstance(t, rng)
	init, err := bp.InitialSolution()
	if err != nil {
		t.Skipf("seed %d: initial solution does not fit: %v", seed, err)
	}
	if !bp.Evaluate(init).Feasible() {
		// The random draw produced an instance that is infeasible even at one
		// minimum-rate copy per video; a feasible reduction sequence cannot
		// exist, so the repair guarantee does not apply.
		t.Skipf("seed %d: instance infeasible at the initial solution", seed)
	}

	// Delta path: perturb through the cache, repair through the cache.
	dl := init.clone()
	c := bp.ensureCache(dl)
	c.mv.cells = c.mv.cells[:0]
	drng := rng.Derive(1)
	if !perturb(bp, dl, c, drng) {
		t.Skipf("seed %d: instance admits no perturbation", seed)
	}
	c.repair(dl, drng)
	c.cost = bp.costOf(c.eval()) // Propose refreshes the cached cost after repair
	if c.violCount != 0 {
		t.Fatalf("seed %d: delta repair left %d violated servers", seed, c.violCount)
	}
	e := bp.Evaluate(dl)
	if !e.Feasible() {
		t.Fatalf("seed %d: delta repair left infeasible state: %+v", seed, e)
	}
	for v := 0; v < bp.P.M(); v++ {
		if dl.Copies(v) == 0 {
			t.Fatalf("seed %d: delta repair evicted video %d's last copy", seed, v)
		}
	}
	checkEvalAgainstScratch(t, bp, dl, fmt.Sprintf("seed %d post-repair", seed))

	// Scratch path: the same class of perturbation, repaired by the original
	// full-rescan repair.
	sl := init.clone()
	srng := rng.Derive(2)
	sc := newBRCache(bp, sl) // only used to reuse perturb's cell mechanics
	if perturb(bp, sl, sc, srng) {
		sl.cache = nil // force the scratch repair to rescan honestly
		bp.repair(sl, srng)
		se := bp.Evaluate(sl)
		if !se.Feasible() {
			t.Fatalf("seed %d: scratch repair left infeasible state: %+v", seed, se)
		}
		for v := 0; v < bp.P.M(); v++ {
			if sl.Copies(v) == 0 {
				t.Fatalf("seed %d: scratch repair evicted video %d's last copy", seed, v)
			}
		}
	}
}

// TestRepairProperties sweeps seeded random instances through both repair
// implementations.
func TestRepairProperties(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		checkRepairProperties(t, seed)
	}
}

// FuzzBitRateRepair lets the fuzzer hunt for instance shapes where either
// repair path diverges from its invariants.
func FuzzBitRateRepair(f *testing.F) {
	for _, s := range []int64{1, 7, 42, 1234, 99999} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkRepairProperties(t, seed)
	})
}

// fullyPackedProblem builds the regression instance for the no-op
// accounting fix: one server holding every video at the maximum rate with no
// storage left, so no move exists at all. The arrival rate is tiny so the
// packed state is genuinely feasible.
func fullyPackedProblem(t *testing.T) (*BitRateProblem, *BitRateLayout) {
	t.Helper()
	c, err := core.NewCatalog(2, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Two videos at 8 Mb/s × 90 min = 5.4 GB each; 11 GB holds both with no
	// room for anything else.
	p := &core.Problem{
		Catalog:            c,
		NumServers:         1,
		StoragePerServer:   11 * core.GB,
		BandwidthPerServer: core.Gbps,
		ArrivalRate:        0.01 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bp := &BitRateProblem{
		P:       p,
		RateSet: []float64{2 * core.Mbps, 4 * core.Mbps, 6 * core.Mbps, 8 * core.Mbps},
	}
	l := NewBitRateLayout(2, 1)
	l.RateIdx[0][0] = 3
	l.RateIdx[1][0] = 3
	if e := bp.Evaluate(l); !e.Feasible() {
		t.Fatalf("packed regression state infeasible: %+v", e)
	}
	return bp, l
}

// TestFullyPackedInstanceNeverAccepts is the regression test for the
// inflated-Accepted bug: a fully packed server admits no move, so every
// proposal must be a recognized no-op on both engine paths.
func TestFullyPackedInstanceNeverAccepts(t *testing.T) {
	bp, l := fullyPackedProblem(t)
	opts := Options{InitialTemp: 1, Cooling: 0.9, PlateauSteps: 50, MinTemp: 0.5, Seed: 3}

	res, err := Minimize[*BitRateLayout](bp, l, opts) // delta path
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.Accepted != 0 {
		t.Fatalf("delta path: steps %d accepted %d, want >0 and 0", res.Steps, res.Accepted)
	}

	res, err = Minimize[*BitRateLayout](Scratch[*BitRateLayout](bp), l, opts) // scratch path
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.Accepted != 0 {
		t.Fatalf("scratch path: steps %d accepted %d, want >0 and 0", res.Steps, res.Accepted)
	}
}

// TestDeltaPathFindsFeasibleOptimum mirrors TestOptimizeImprovesObjective
// explicitly on both paths: the delta engine must land at least as good a
// feasible objective as the scratch engine started from.
func TestDeltaPathFindsFeasibleOptimum(t *testing.T) {
	bp := bitrateProblem(t, 15, 4, 25)
	init, err := bp.InitialSolution()
	if err != nil {
		t.Fatal(err)
	}
	before := bp.Evaluate(init)
	opts := DefaultOptions()
	opts.Seed = 11
	opts.MaxSteps = 30000

	res, err := Minimize[*BitRateLayout](bp, init, opts)
	if err != nil {
		t.Fatal(err)
	}
	after := bp.Evaluate(res.Best)
	if !after.Feasible() {
		t.Fatalf("delta path best infeasible: %+v", after)
	}
	if after.Objective <= before.Objective {
		t.Fatalf("delta path did not improve: %g → %g", before.Objective, after.Objective)
	}
	// The engine's bookkept best cost must price Best exactly like Cost.
	if !relClose(res.BestCost, bp.Cost(res.Best), 1e-9) {
		t.Fatalf("BestCost %g disagrees with Cost(Best) %g", res.BestCost, bp.Cost(res.Best))
	}
}

// BenchmarkAnnealBitRate compares raw proposal throughput of the scratch
// clone-and-rescan path against the delta fast path at three catalog sizes.
// The ≥20× acceptance target for M=500 is enforced end to end by
// cmd/vodperf's gated anneal_steps_per_sec metric; this benchmark is the
// developer-facing view of the same number.
func BenchmarkAnnealBitRate(b *testing.B) {
	for _, m := range []int{100, 500, 2000} {
		n := 8
		storageGB := 4 * 1.35 * float64(m) / float64(n)
		bp := bitrateProblem(b, m, n, storageGB)
		init, err := bp.InitialSolution()
		if err != nil {
			b.Fatal(err)
		}
		for _, path := range []string{"scratch", "delta"} {
			var prob Problem[*BitRateLayout] = bp
			if path == "scratch" {
				prob = Scratch[*BitRateLayout](bp)
			}
			b.Run(fmt.Sprintf("path=%s/M=%d", path, m), func(b *testing.B) {
				opts := DefaultOptions()
				opts.Seed = 1
				opts.MaxSteps = b.N
				opts.PlateauSteps = b.N // one plateau; MaxSteps terminates the run
				b.ResetTimer()
				res, err := Minimize[*BitRateLayout](prob, init, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if res.Steps != b.N {
					b.Fatalf("ran %d steps, want %d", res.Steps, b.N)
				}
				b.ReportMetric(float64(res.Steps)/b.Elapsed().Seconds(), "proposals/s")
			})
		}
	}
}
