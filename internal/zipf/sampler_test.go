package zipf

import (
	"math"
	"testing"

	"vodcluster/internal/stats"
)

func TestSamplerMatchesDistribution(t *testing.T) {
	d := MustNew(20, 0.75)
	s := NewSampler(d)
	rng := stats.NewRNG(3)
	const n = 500000
	counts := make([]int, d.M())
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	for i := 0; i < d.M(); i++ {
		emp := float64(counts[i]) / n
		want := d.Prob(i)
		// Binomial standard error is sqrt(p(1-p)/n); allow 5 sigma.
		tol := 5 * math.Sqrt(want*(1-want)/n)
		if math.Abs(emp-want) > tol {
			t.Fatalf("rank %d: empirical %g vs %g (tol %g)", i, emp, want, tol)
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	d := MustNew(10, 0.5)
	s := NewSampler(d)
	a := stats.NewRNG(8)
	b := stats.NewRNG(8)
	for i := 0; i < 100; i++ {
		if s.Sample(a) != s.Sample(b) {
			t.Fatal("sampler not deterministic for equal rng state")
		}
	}
}

func TestWeightedSamplerValidation(t *testing.T) {
	if _, err := NewWeightedSampler(nil); err == nil {
		t.Fatal("empty weights must fail")
	}
	if _, err := NewWeightedSampler([]float64{1, -1}); err == nil {
		t.Fatal("negative weight must fail")
	}
	if _, err := NewWeightedSampler([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights must fail")
	}
}

func TestWeightedSamplerNormalizes(t *testing.T) {
	s, err := NewWeightedSampler([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 2 {
		t.Fatalf("M = %d", s.M())
	}
	if math.Abs(s.Prob(0)-0.75) > 1e-12 || math.Abs(s.Prob(1)-0.25) > 1e-12 {
		t.Fatalf("normalized probs = %g, %g", s.Prob(0), s.Prob(1))
	}
	rng := stats.NewRNG(4)
	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if s.Sample(rng) == 0 {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.75) > 0.01 {
		t.Fatalf("item 0 sampled with frequency %g, want ≈ 0.75", p)
	}
}

func TestWeightedSamplerZeroWeightItemNeverDrawn(t *testing.T) {
	s, err := NewWeightedSampler([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	for i := 0; i < 100000; i++ {
		if s.Sample(rng) == 1 {
			t.Fatal("zero-weight item was sampled")
		}
	}
}

func TestSamplerSingleItem(t *testing.T) {
	s, err := NewWeightedSampler([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(6)
	for i := 0; i < 100; i++ {
		if s.Sample(rng) != 0 {
			t.Fatal("single-item sampler returned nonzero index")
		}
	}
}

func BenchmarkSamplerSample(b *testing.B) {
	s := NewSampler(MustNew(1000, 0.75))
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng)
	}
}

func BenchmarkNewWeightedSampler(b *testing.B) {
	d := MustNew(1000, 0.75)
	probs := d.Probs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewWeightedSampler(probs); err != nil {
			b.Fatal(err)
		}
	}
}
