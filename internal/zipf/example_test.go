package zipf_test

import (
	"fmt"

	"vodcluster/internal/zipf"
)

// With the classical skew θ = 1, the head of a 100-title catalog dominates:
// the top ten titles draw more than half of all requests.
func ExampleDistribution_TopMass() {
	d := zipf.MustNew(100, 1)
	fmt.Printf("top-1: %.3f, top-10: %.3f\n", d.TopMass(1), d.TopMass(10))
	// Output: top-1: 0.193, top-10: 0.565
}

// Partition splits a popularity range into intervals whose widths follow a
// Zipf law — the geometry behind the paper's Zipf-interval replication.
func ExamplePartition() {
	bounds := zipf.Partition(1, 4, 1)
	for _, z := range bounds {
		fmt.Printf("%.2f ", z)
	}
	fmt.Println()
	// Output: 1.00 0.52 0.28 0.12 0.00
}
