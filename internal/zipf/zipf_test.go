package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.5); err == nil {
		t.Fatal("New(0, .) must fail")
	}
	if _, err := New(-3, 0.5); err == nil {
		t.Fatal("New(-3, .) must fail")
	}
	if _, err := New(10, -0.1); err == nil {
		t.Fatal("negative skew must fail")
	}
	if _, err := New(10, 0.75); err != nil {
		t.Fatalf("valid parameters rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad args did not panic")
		}
	}()
	MustNew(0, 1)
}

func TestProbabilitiesNormalizedAndSorted(t *testing.T) {
	for _, theta := range []float64{0, 0.271, 0.75, 1, 2} {
		d := MustNew(50, theta)
		sum := 0.0
		for i := 0; i < d.M(); i++ {
			p := d.Prob(i)
			if p <= 0 {
				t.Fatalf("θ=%g: p_%d = %g not positive", theta, i, p)
			}
			if i > 0 && p > d.Prob(i-1)+1e-15 {
				t.Fatalf("θ=%g: probabilities not non-increasing at %d", theta, i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("θ=%g: probabilities sum to %g", theta, sum)
		}
	}
}

func TestUniformWhenThetaZero(t *testing.T) {
	d := MustNew(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(d.Prob(i)-0.1) > 1e-12 {
			t.Fatalf("θ=0 not uniform: p_%d = %g", i, d.Prob(i))
		}
	}
}

func TestClassicZipfRatios(t *testing.T) {
	d := MustNew(100, 1)
	// With θ = 1, p_1 / p_k = k.
	for _, k := range []int{2, 5, 10} {
		if got, want := d.Prob(0)/d.Prob(k-1), float64(k); math.Abs(got-want) > 1e-9 {
			t.Fatalf("p1/p%d = %g, want %g", k, got, want)
		}
	}
}

func TestCDFAndTopMass(t *testing.T) {
	d := MustNew(20, 0.75)
	run := 0.0
	for i := 0; i < d.M(); i++ {
		run += d.Prob(i)
		if math.Abs(d.CDF(i)-run) > 1e-9 {
			t.Fatalf("CDF(%d) = %g, want %g", i, d.CDF(i), run)
		}
	}
	if d.CDF(d.M()-1) != 1 {
		t.Fatalf("CDF(M-1) = %g, want exactly 1", d.CDF(d.M()-1))
	}
	if d.TopMass(0) != 0 {
		t.Fatal("TopMass(0) must be 0")
	}
	if d.TopMass(d.M()) != 1 || d.TopMass(d.M()+5) != 1 {
		t.Fatal("TopMass(≥M) must be 1")
	}
	if got := d.TopMass(1); got != d.Prob(0) {
		t.Fatalf("TopMass(1) = %g, want %g", got, d.Prob(0))
	}
}

func TestSkewConcentratesMass(t *testing.T) {
	lo := MustNew(100, 0.25)
	hi := MustNew(100, 1)
	if lo.TopMass(10) >= hi.TopMass(10) {
		t.Fatalf("higher skew should concentrate more mass in the head: %g vs %g",
			lo.TopMass(10), hi.TopMass(10))
	}
}

func TestProbsCopy(t *testing.T) {
	d := MustNew(5, 0.5)
	p := d.Probs()
	p[0] = 99
	if d.Prob(0) == 99 {
		t.Fatal("Probs() exposed internal state")
	}
}

func TestHarmonic(t *testing.T) {
	if got := Harmonic(4, 0); got != 4 {
		t.Fatalf("H_{4,0} = %g, want 4", got)
	}
	if got, want := Harmonic(3, 1), 1+0.5+1.0/3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("H_{3,1} = %g, want %g", got, want)
	}
}

func TestPartitionBoundaries(t *testing.T) {
	bounds := Partition(1, 4, 0.8)
	if len(bounds) != 5 {
		t.Fatalf("want 5 boundaries, got %d", len(bounds))
	}
	if bounds[0] != 1 || bounds[4] != 0 {
		t.Fatalf("boundaries must span [total, 0]: %v", bounds)
	}
	for j := 1; j < len(bounds); j++ {
		if bounds[j] > bounds[j-1]+1e-12 {
			t.Fatalf("boundaries not non-increasing: %v", bounds)
		}
	}
	// Interval widths follow 1/j^u: width_1 ≥ width_2 ≥ ... for u > 0.
	for j := 1; j < 4; j++ {
		w1 := bounds[j-1] - bounds[j]
		w2 := bounds[j] - bounds[j+1]
		if w1 < w2-1e-12 {
			t.Fatalf("u>0 interval widths must be non-increasing: %v", bounds)
		}
	}
}

func TestPartitionNegativeSkewReverses(t *testing.T) {
	bounds := Partition(1, 3, -1)
	w1 := bounds[0] - bounds[1]
	w3 := bounds[2] - bounds[3]
	if w1 >= w3 {
		t.Fatalf("u<0 should widen later intervals: widths %g .. %g", w1, w3)
	}
}

func TestPartitionUniformAtZero(t *testing.T) {
	bounds := Partition(2, 4, 0)
	for j := 0; j < 4; j++ {
		if w := bounds[j] - bounds[j+1]; math.Abs(w-0.5) > 1e-12 {
			t.Fatalf("u=0 intervals not uniform: %v", bounds)
		}
	}
}

func TestPartitionPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition with n=0 did not panic")
		}
	}()
	Partition(1, 0, 1)
}

// TestPartitionProperty: for arbitrary u and n, the boundaries are a
// monotone partition of [0, total].
func TestPartitionProperty(t *testing.T) {
	f := func(uRaw int8, nRaw uint8) bool {
		u := float64(uRaw) / 16
		n := int(nRaw%16) + 1
		bounds := Partition(10, n, u)
		if len(bounds) != n+1 || bounds[0] != 10 || bounds[n] != 0 {
			return false
		}
		for j := 1; j <= n; j++ {
			if bounds[j] > bounds[j-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
