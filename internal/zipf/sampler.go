package zipf

import (
	"fmt"

	"vodcluster/internal/stats"
)

// Sampler draws item indices from a fixed discrete distribution in O(1) per
// sample using the Walker/Vose alias method. Construction is O(M).
type Sampler struct {
	probs []float64
	prob  []float64
	alias []int
}

// NewSampler builds an alias-method sampler for a Zipf-like distribution.
func NewSampler(d *Distribution) *Sampler {
	s, err := NewWeightedSampler(d.Probs())
	if err != nil {
		panic(err) // a Distribution's probabilities are always valid
	}
	return s
}

// NewWeightedSampler builds an alias-method sampler over an arbitrary
// probability vector. The weights must be non-negative and sum to a positive
// value; they are normalized internally.
func NewWeightedSampler(weights []float64) (*Sampler, error) {
	m := len(weights)
	if m == 0 {
		return nil, fmt.Errorf("zipf: sampler needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("zipf: weight %d is negative (%g)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("zipf: weights sum to zero")
	}
	s := &Sampler{probs: make([]float64, m), prob: make([]float64, m), alias: make([]int, m)}
	scaled := make([]float64, m)
	small := make([]int, 0, m)
	large := make([]int, 0, m)
	for i, w := range weights {
		s.probs[i] = w / total
		scaled[i] = s.probs[i] * float64(m)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		s.prob[g] = 1
		s.alias[g] = g
	}
	for _, l := range small { // numerical leftovers
		s.prob[l] = 1
		s.alias[l] = l
	}
	return s, nil
}

// M returns the number of items the sampler draws from.
func (s *Sampler) M() int { return len(s.prob) }

// Prob returns the normalized probability of item i.
func (s *Sampler) Prob(i int) float64 { return s.probs[i] }

// Sample returns an index in [0, M) distributed according to the underlying
// probabilities, using randomness from rng.
func (s *Sampler) Sample(rng *stats.RNG) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}
