// Package zipf implements the Zipf-like video popularity distributions used
// by the paper: the probability of choosing the i-th most popular of M videos
// is p_i = (1/i^θ) / Σ_{k=1..M} 1/k^θ, with skew parameter θ.
//
// θ = 0 degenerates to the uniform distribution; θ = 1 is the classical Zipf
// law. The paper reports that measured VoD popularity skews fall in
// 0.271 ≤ θ ≤ 1.
package zipf

import (
	"fmt"
	"math"
)

// Distribution is a Zipf-like popularity distribution over M ranked items.
// Index 0 is the most popular item.
type Distribution struct {
	m     int
	theta float64
	probs []float64
	cdf   []float64
}

// New returns the Zipf-like distribution with m items and skew theta.
// It returns an error if m <= 0 or theta < 0.
func New(m int, theta float64) (*Distribution, error) {
	if m <= 0 {
		return nil, fmt.Errorf("zipf: number of items must be positive, got %d", m)
	}
	if theta < 0 {
		return nil, fmt.Errorf("zipf: skew must be non-negative, got %g", theta)
	}
	d := &Distribution{m: m, theta: theta, probs: make([]float64, m), cdf: make([]float64, m)}
	sum := 0.0
	for i := 0; i < m; i++ {
		d.probs[i] = 1 / math.Pow(float64(i+1), theta)
		sum += d.probs[i]
	}
	run := 0.0
	for i := 0; i < m; i++ {
		d.probs[i] /= sum
		run += d.probs[i]
		d.cdf[i] = run
	}
	d.cdf[m-1] = 1 // absorb rounding error
	return d, nil
}

// MustNew is like New but panics on error. Use for compile-time-known
// parameters.
func MustNew(m int, theta float64) *Distribution {
	d, err := New(m, theta)
	if err != nil {
		panic(err)
	}
	return d
}

// M returns the number of items.
func (d *Distribution) M() int { return d.m }

// Theta returns the skew parameter.
func (d *Distribution) Theta() float64 { return d.theta }

// Prob returns the probability of the item with rank i (0-based, 0 = most
// popular). It panics if i is out of range.
func (d *Distribution) Prob(i int) float64 { return d.probs[i] }

// Probs returns a copy of the full probability vector, most popular first.
func (d *Distribution) Probs() []float64 {
	return append([]float64(nil), d.probs...)
}

// CDF returns the cumulative probability of ranks 0..i.
func (d *Distribution) CDF(i int) float64 { return d.cdf[i] }

// TopMass returns the total probability mass of the k most popular items.
// k is clamped to [0, M].
func (d *Distribution) TopMass(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= d.m {
		return 1
	}
	return d.cdf[k-1]
}

// Harmonic returns the generalized harmonic number H_{n,θ} = Σ_{k=1..n} k^-θ.
func Harmonic(n int, theta float64) float64 {
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), theta)
	}
	return sum
}

// Partition splits the interval [0, total] into n sub-intervals whose widths
// follow a Zipf-like law with skew u: width of interval j (1-based) is
// proportional to 1/j^u. It returns the n+1 boundaries z_0 = total ≥ z_1 ≥
// ... ≥ z_n = 0, ordered from the top of the range downward. This is the
// interval-generation function of the paper's Zipf-interval replication
// (§4.1.2): interval 1 — the widest for u > 0 — covers the highest
// popularities.
//
// Negative u is allowed (widths then grow with j), which the replication
// binary search uses to shrink the top interval below uniform.
func Partition(total float64, n int, u float64) []float64 {
	if n <= 0 {
		panic("zipf: Partition needs at least one interval")
	}
	weights := make([]float64, n)
	sum := 0.0
	for j := 0; j < n; j++ {
		weights[j] = math.Pow(float64(j+1), -u)
		sum += weights[j]
	}
	bounds := make([]float64, n+1)
	bounds[0] = total
	acc := 0.0
	for j := 0; j < n; j++ {
		acc += weights[j] / sum
		bounds[j+1] = total * (1 - acc)
	}
	bounds[n] = 0 // absorb rounding error
	return bounds
}
