package resilience

import (
	"fmt"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
)

// Repairer is a runtime controller (it satisfies sim.Controller structurally,
// like internal/dynrep's Manager) that watches for videos whose live replica
// count fell below Policy.RepairMinLive — typically after a server failure —
// and re-replicates them onto the least-loaded up server. Copy bandwidth is
// modelled as a temporary load the way dynrep models migrations: one
// in-flight copy reserves Policy.RepairRate bits/s on the cluster backbone
// when the problem defines one, otherwise on the source server's outgoing
// link, for size·8/rate seconds. Repairer is not safe for concurrent use;
// create one per run.
type Repairer struct {
	p   *core.Problem
	pol Policy

	inflight map[int]bool // videos with a copy in flight

	started   int
	completed int
	aborted   int
	skipped   int
}

// NewRepairer builds a repairer for the given problem. The policy must
// already be defaulted and validated.
func NewRepairer(p *core.Problem, pol Policy) (*Repairer, error) {
	if p == nil {
		return nil, fmt.Errorf("resilience: nil problem")
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &Repairer{p: p, pol: pol, inflight: make(map[int]bool)}, nil
}

// Started returns the number of repair copies begun.
func (r *Repairer) Started() int { return r.started }

// Completed returns the number of repair copies that landed as replicas.
func (r *Repairer) Completed() int { return r.completed }

// Aborted returns copies whose source died or destination filled mid-copy.
func (r *Repairer) Aborted() int { return r.aborted }

// Skipped returns repair opportunities abandoned for lack of bandwidth,
// storage, or eligible servers.
func (r *Repairer) Skipped() int { return r.skipped }

// Observe implements the controller hook; repair ignores the request stream.
func (r *Repairer) Observe(int) {}

// Interval implements the controller hook.
func (r *Repairer) Interval() float64 { return r.pol.RepairInterval }

// Tick implements the controller hook: scan for videos whose live replica
// count fell below the repair threshold (hottest — lowest rank — first,
// since the catalog is popularity-ordered) and start up to RepairMaxPerTick
// copies. The threshold for a video is min(RepairMinLive, its placed
// replica count), so failures trigger repair but thinly-replicated videos
// on a healthy cluster do not.
func (r *Repairer) Tick(now float64, st *cluster.State, schedule func(delay float64, fn func(now float64))) {
	started := 0
	for v := 0; v < r.p.M() && started < r.pol.RepairMaxPerTick; v++ {
		if r.inflight[v] {
			continue
		}
		threshold := r.pol.RepairMinLive
		if placed := st.Replicas(v); placed < threshold {
			threshold = placed
		}
		if r.liveReplicas(st, v) >= threshold {
			continue
		}
		if r.startCopy(v, st, schedule) {
			started++
		} else {
			r.skipped++
		}
	}
}

// liveReplicas counts the replicas of v sitting on up servers.
func (r *Repairer) liveReplicas(st *cluster.State, v int) int {
	n := 0
	for _, s := range st.Holders(v) {
		if st.Up(s) {
			n++
		}
	}
	return n
}

// startCopy begins re-replicating v from its best surviving holder onto the
// least-loaded eligible server; it reports whether a copy is in flight.
func (r *Repairer) startCopy(v int, st *cluster.State, schedule func(delay float64, fn func(now float64))) bool {
	src := -1
	srcFree := 0.0
	for _, s := range st.Holders(v) {
		if !st.Up(s) {
			continue
		}
		if free := st.FreeBandwidth(s); src == -1 || free > srcFree {
			src, srcFree = s, free
		}
	}
	if src == -1 {
		return false // every replica is down: nothing to copy from
	}
	rate := st.RateOf(v, src) // the new copy inherits the source's quality
	size := r.p.Catalog[v].SizeBytes()
	if st.HasCopyRates() {
		size = rate * r.p.Catalog[v].Duration / 8
	}
	dst := -1
	dstFree := 0.0
	for s := 0; s < r.p.N(); s++ {
		if !st.Up(s) || s == src {
			continue
		}
		if holds(st, v, s) {
			continue
		}
		if st.StorageFree(s) < size-1e-6 {
			continue
		}
		if free := st.FreeBandwidth(s); dst == -1 || free > dstFree {
			dst, dstFree = s, free
		}
	}
	if dst == -1 {
		return false
	}
	overBackbone := r.p.BackboneBandwidth > 0
	if overBackbone {
		if !st.ReserveBackbone(r.pol.RepairRate) {
			return false
		}
	} else if !st.ReserveOutgoing(src, r.pol.RepairRate) {
		return false
	}
	delay := size * 8 / r.pol.RepairRate
	r.inflight[v] = true
	r.started++
	schedule(delay, func(float64) {
		if overBackbone {
			st.ReleaseBackbone(r.pol.RepairRate)
		} else {
			st.ReleaseOutgoing(src, r.pol.RepairRate)
		}
		delete(r.inflight, v)
		// The source may have died mid-copy, or the destination may have
		// died or filled up; dropping the unfinished copy is the faithful
		// outcome then.
		if !st.Up(src) {
			r.aborted++
			return
		}
		var err error
		if st.HasCopyRates() {
			err = st.AddReplicaRate(v, dst, rate)
		} else {
			err = st.AddReplica(v, dst)
		}
		if err != nil {
			r.aborted++
			return
		}
		r.completed++
	})
	return true
}

// holds reports whether server s currently holds a replica of v.
func holds(st *cluster.State, v, s int) bool {
	for _, h := range st.Holders(v) {
		if h == s {
			return true
		}
	}
	return false
}
