package resilience

import (
	"testing"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
)

// runScheduler collects scheduled callbacks and fires them in delay order —
// a miniature stand-in for the simulator's event engine.
type fakeSchedule struct {
	fns []func(now float64)
}

func (f *fakeSchedule) schedule(delay float64, fn func(now float64)) {
	f.fns = append(f.fns, fn)
}

func (f *fakeSchedule) fireAll() {
	for len(f.fns) > 0 {
		fn := f.fns[0]
		f.fns = f.fns[1:]
		fn(0)
	}
}

func repairPolicy() Policy {
	return (Policy{Repair: true, RepairRate: 4 * core.Mbps}).WithDefaults()
}

func TestRepairerReplicatesAfterFailure(t *testing.T) {
	st := newState(t, 0) // no backbone: copies load the source's outgoing link
	p := st.Problem()
	r, err := NewRepairer(p, repairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if r.Interval() != 60 {
		t.Fatalf("interval %g", r.Interval())
	}
	r.Observe(0) // no-op, must not panic

	// Server 1 dies: v0 drops to one live replica (server 0), v2 to zero.
	st.FailServer(1)
	fs := &fakeSchedule{}
	r.Tick(60, st, fs.schedule)
	// v0 can be repaired (copy 0 → 2); v2 has no live source and is skipped.
	if r.Started() != 1 {
		t.Fatalf("started %d copies, want 1 (v0)", r.Started())
	}
	if r.Skipped() == 0 {
		t.Fatal("fully-down v2 not recorded as skipped")
	}
	// The in-flight copy loads the source's outgoing link.
	if st.UsedBandwidth(0) != 4*core.Mbps {
		t.Fatalf("source link carries %g during the copy", st.UsedBandwidth(0))
	}
	fs.fireAll()
	if r.Completed() != 1 {
		t.Fatalf("completed %d copies, want 1", r.Completed())
	}
	if st.UsedBandwidth(0) != 0 {
		t.Fatal("copy bandwidth not released")
	}
	if st.Replicas(0) != 3 || !holds(st, 0, 2) {
		t.Fatalf("v0 replicas %d on %v, want a new copy on server 2", st.Replicas(0), st.Holders(0))
	}
	// Once every video is back at (or can't reach) the threshold, a tick
	// starts nothing new.
	fs2 := &fakeSchedule{}
	r.Tick(120, st, fs2.schedule)
	if r.Started() != 1 {
		t.Fatalf("repair re-copied a healthy video: started %d", r.Started())
	}
}

func TestRepairerUsesBackboneWhenAvailable(t *testing.T) {
	st := newState(t, 100*core.Mbps)
	r, err := NewRepairer(st.Problem(), repairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	st.FailServer(1)
	fs := &fakeSchedule{}
	r.Tick(60, st, fs.schedule)
	if r.Started() != 1 {
		t.Fatalf("started %d", r.Started())
	}
	if st.BackboneFree() != 96*core.Mbps {
		t.Fatalf("backbone free %g during the copy", st.BackboneFree())
	}
	if st.UsedBandwidth(0) != 0 {
		t.Fatal("backbone copy charged the outgoing link")
	}
	fs.fireAll()
	if st.BackboneFree() != 100*core.Mbps {
		t.Fatal("backbone not released")
	}
	if r.Completed() != 1 {
		t.Fatalf("completed %d", r.Completed())
	}
}

func TestRepairerAbortsWhenSourceDies(t *testing.T) {
	st := newState(t, 0)
	r, err := NewRepairer(st.Problem(), repairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	st.FailServer(1)
	fs := &fakeSchedule{}
	r.Tick(60, st, fs.schedule)
	if r.Started() != 1 {
		t.Fatalf("started %d", r.Started())
	}
	st.FailServer(0) // the copy's source dies mid-transfer
	fs.fireAll()
	if r.Completed() != 0 || r.Aborted() != 1 {
		t.Fatalf("completed %d aborted %d, want 0/1", r.Completed(), r.Aborted())
	}
	if st.Replicas(0) != 2 {
		t.Fatal("aborted copy still landed")
	}
}

func TestRepairerCopyRates(t *testing.T) {
	p, l := testProblem(t, 0), testLayout(t)
	rates := [][]float64{
		{4 * core.Mbps, 2 * core.Mbps, 0},
		{4 * core.Mbps, 0, 4 * core.Mbps},
		{0, 4 * core.Mbps, 0},
		{0, 0, 4 * core.Mbps},
	}
	st, err := cluster.New(p, l, cluster.WithCopyRates(rates))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRepairer(p, repairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	st.FailServer(0)
	fs := &fakeSchedule{}
	r.Tick(60, st, fs.schedule)
	fs.fireAll()
	// v0's surviving copy is the 2 Mb/s one on server 1; the repair clone
	// inherits that rate on server 2.
	if !holds(st, 0, 2) {
		t.Fatalf("no repaired copy of v0: holders %v", st.Holders(0))
	}
	if got := st.RateOf(0, 2); got != 2*core.Mbps {
		t.Fatalf("repaired copy rate %g, want the source's 2 Mb/s", got)
	}
}

func TestRepairerValidation(t *testing.T) {
	if _, err := NewRepairer(nil, repairPolicy()); err == nil {
		t.Fatal("nil problem accepted")
	}
	p := testProblem(t, 0)
	bad := repairPolicy()
	bad.RepairInterval = -1
	if _, err := NewRepairer(p, bad); err == nil {
		t.Fatal("invalid policy accepted")
	}
}
