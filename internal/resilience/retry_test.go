package resilience

import (
	"math"
	"testing"

	"vodcluster/internal/stats"
)

func TestRetrierBackoffGrowsExponentially(t *testing.T) {
	pol := (Policy{Retry: true}).WithDefaults()
	pol.RetryJitter = 0 // pure exponential, no jitter draw
	pol.RetryPatience = 1e9
	r := NewRetrier(pol, stats.NewRNG(1))
	prev := 0.0
	for attempt := 0; attempt < 6; attempt++ {
		d, ok := r.Delay(attempt, 0)
		if !ok {
			t.Fatalf("attempt %d reneged with infinite patience", attempt)
		}
		want := pol.RetryBase * math.Pow(pol.RetryFactor, float64(attempt))
		if math.Abs(d-want) > 1e-9 {
			t.Fatalf("attempt %d delay %g, want %g", attempt, d, want)
		}
		if d <= prev {
			t.Fatalf("backoff not growing: %g after %g", d, prev)
		}
		prev = d
	}
}

func TestRetrierJitterBoundsAndDeterminism(t *testing.T) {
	pol := (Policy{Retry: true}).WithDefaults() // jitter 0.5
	pol.RetryPatience = 1e9
	a := NewRetrier(pol, stats.NewRNG(7))
	b := NewRetrier(pol, stats.NewRNG(7))
	for attempt := 0; attempt < 8; attempt++ {
		da, _ := a.Delay(attempt, 0)
		db, _ := b.Delay(attempt, 0)
		if da != db {
			t.Fatalf("same seed diverged: %g vs %g", da, db)
		}
		mid := pol.RetryBase * math.Pow(pol.RetryFactor, float64(attempt))
		if da < 0.75*mid-1e-9 || da > 1.25*mid+1e-9 {
			t.Fatalf("attempt %d delay %g outside ±25%% of %g", attempt, da, mid)
		}
	}
}

func TestRetrierPatienceReneges(t *testing.T) {
	pol := (Policy{Retry: true}).WithDefaults() // base 5, factor 2, patience 120
	r := NewRetrier(pol, stats.NewRNG(3))
	// Having already waited just under the patience, any delay reneges.
	if _, ok := r.Delay(0, 119.9); ok {
		t.Fatal("delay past patience accepted")
	}
	// Fresh request: the first delay fits easily.
	if _, ok := r.Delay(0, 0); !ok {
		t.Fatal("first retry reneged immediately")
	}
	// Exponential growth exhausts the patience in a bounded number of
	// attempts even with zero waited time.
	reneged := false
	for attempt := 0; attempt < 64; attempt++ {
		if _, ok := r.Delay(attempt, 0); !ok {
			reneged = true
			break
		}
	}
	if !reneged {
		t.Fatal("backoff never exceeded patience")
	}
}

func TestRetrierQueueBound(t *testing.T) {
	pol := (Policy{Retry: true, RetryLimit: 3}).WithDefaults()
	r := NewRetrier(pol, stats.NewRNG(5))
	for i := 0; i < 3; i++ {
		if !r.TryEnqueue() {
			t.Fatalf("enqueue %d refused below the limit", i)
		}
	}
	if r.TryEnqueue() {
		t.Fatal("queue bound not enforced")
	}
	if r.Pending() != 3 || r.PeakPending() != 3 {
		t.Fatalf("pending %d peak %d, want 3/3", r.Pending(), r.PeakPending())
	}
	r.Resolve()
	if !r.TryEnqueue() {
		t.Fatal("slot not reusable after resolve")
	}
	for i := 0; i < 10; i++ {
		r.Resolve() // over-resolving clamps at zero
	}
	if r.Pending() != 0 {
		t.Fatalf("pending %d after draining", r.Pending())
	}
}
