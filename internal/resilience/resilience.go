// Package resilience turns the simulator's hard failures into graceful
// degradation. The paper motivates replication with "high availability …
// low rejection rate" (§1, §3.2) but its evaluation only injects failures;
// this package supplies the recovery side, four mechanisms deep:
//
//   - session failover: streams torn down by a server failure are re-admitted
//     onto a surviving replica of the same video instead of counting dropped;
//   - retry admission: rejected requests wait in a bounded virtual-time queue
//     and retry with exponential backoff + jitter until admitted or their
//     patience runs out (reneging);
//   - bitrate degradation: when full-rate admission fails, a lower-rate copy
//     (the §4.3 scalable-bit-rate substrate) above a quality floor is served;
//   - re-replication repair: videos whose live replica count fell below a
//     threshold are re-copied onto the least-loaded up server, modelling copy
//     bandwidth as a temporary load the way internal/dynrep does.
//
// Every mechanism is individually toggleable through Policy; with all of
// them off the paper-faithful baseline behaviour is bit-for-bit untouched.
package resilience

import (
	"fmt"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
)

// Policy selects and tunes the resilience mechanisms for one simulation run.
// The zero value disables everything; zero-valued tunables of an enabled
// mechanism take the defaults documented per field (apply with WithDefaults).
type Policy struct {
	// Failover re-admits streams torn down by a server failure onto a
	// surviving replica of the same video, at full rate or any copy rate
	// at or above DegradeFloor × nominal.
	Failover bool

	// Retry queues rejected requests for re-admission with exponential
	// backoff instead of insta-rejecting them.
	Retry bool
	// RetryBase is the delay before the first retry, seconds (default 5).
	RetryBase float64
	// RetryFactor multiplies the delay on each further attempt (default 2).
	RetryFactor float64
	// RetryJitter spreads each delay uniformly over ±Jitter/2 of itself,
	// in [0, 1] (default 0.5). Zero jitter is valid and fully periodic.
	RetryJitter float64
	// RetryPatience is how long a client keeps retrying before reneging,
	// seconds (default 120).
	RetryPatience float64
	// RetryLimit bounds the number of requests queued for retry at once;
	// arrivals rejected while the queue is full are insta-rejected
	// (default 256).
	RetryLimit int

	// Degrade serves a lower-rate copy when full-rate admission fails —
	// meaningful under per-copy rates (cluster.WithCopyRates), where it
	// trades delivered quality for admission.
	Degrade bool
	// DegradeFloor is the minimum acceptable fraction of the nominal rate
	// for degraded service and failover, in (0, 1] (default 0.5).
	DegradeFloor float64

	// Repair re-replicates videos whose live replica count fell below
	// RepairMinLive onto the least-loaded up server.
	Repair bool
	// RepairMinLive is the live-replica threshold that triggers a repair
	// copy (default 2).
	RepairMinLive int
	// RepairInterval is the repair scan cadence, seconds (default 60).
	RepairInterval float64
	// RepairRate is the bandwidth one in-flight repair copy consumes, in
	// bits/s (default 200 Mb/s) — reserved on the cluster backbone when one
	// exists, otherwise on the source server's outgoing link.
	RepairRate float64
	// RepairMaxPerTick caps copies started per scan (default 2).
	RepairMaxPerTick int
}

// All returns a policy with every mechanism enabled at default tuning.
func All() Policy {
	return Policy{Failover: true, Retry: true, Degrade: true, Repair: true}.WithDefaults()
}

// Enabled reports whether any mechanism is switched on.
func (p Policy) Enabled() bool {
	return p.Failover || p.Retry || p.Degrade || p.Repair
}

// WithDefaults returns p with zero-valued tunables replaced by the defaults.
func (p Policy) WithDefaults() Policy {
	if p.RetryBase == 0 {
		p.RetryBase = 5
	}
	if p.RetryFactor == 0 {
		p.RetryFactor = 2
	}
	if p.RetryJitter == 0 {
		p.RetryJitter = 0.5
	}
	if p.RetryPatience == 0 {
		p.RetryPatience = 120
	}
	if p.RetryLimit == 0 {
		p.RetryLimit = 256
	}
	if p.DegradeFloor == 0 {
		p.DegradeFloor = 0.5
	}
	if p.RepairMinLive == 0 {
		p.RepairMinLive = 2
	}
	if p.RepairInterval == 0 {
		p.RepairInterval = 60
	}
	if p.RepairRate == 0 {
		p.RepairRate = 200 * core.Mbps
	}
	if p.RepairMaxPerTick == 0 {
		p.RepairMaxPerTick = 2
	}
	return p
}

// Validate checks the tunables (apply WithDefaults first).
func (p Policy) Validate() error {
	if p.RetryBase <= 0 {
		return fmt.Errorf("resilience: retry base delay must be positive, got %g", p.RetryBase)
	}
	if p.RetryFactor < 1 {
		return fmt.Errorf("resilience: retry factor must be >= 1, got %g", p.RetryFactor)
	}
	if p.RetryJitter < 0 || p.RetryJitter > 1 {
		return fmt.Errorf("resilience: retry jitter must be in [0,1], got %g", p.RetryJitter)
	}
	if p.RetryPatience <= 0 {
		return fmt.Errorf("resilience: retry patience must be positive, got %g", p.RetryPatience)
	}
	if p.RetryLimit < 1 {
		return fmt.Errorf("resilience: retry limit must be positive, got %d", p.RetryLimit)
	}
	if p.DegradeFloor <= 0 || p.DegradeFloor > 1 {
		return fmt.Errorf("resilience: degradation floor must be in (0,1], got %g", p.DegradeFloor)
	}
	if p.RepairMinLive < 1 {
		return fmt.Errorf("resilience: repair threshold must be positive, got %d", p.RepairMinLive)
	}
	if p.RepairInterval <= 0 {
		return fmt.Errorf("resilience: repair interval must be positive, got %g", p.RepairInterval)
	}
	if p.RepairRate <= 0 {
		return fmt.Errorf("resilience: repair copy rate must be positive, got %g", p.RepairRate)
	}
	if p.RepairMaxPerTick < 1 {
		return fmt.Errorf("resilience: repair copies per tick must be positive, got %d", p.RepairMaxPerTick)
	}
	return nil
}

// bestCopy picks the server to serve one stream of v at a copy rate of at
// least floorRate: the up holder with admission headroom whose copy rate is
// highest, ties broken by most free outgoing bandwidth, then lowest index
// for determinism. It returns -1 when no copy qualifies.
func bestCopy(st *cluster.State, v int, floorRate float64) int {
	best := -1
	bestRate, bestFree := 0.0, 0.0
	for _, s := range st.Holders(v) {
		if !st.CanServe(s, v) {
			continue
		}
		rate := st.RateOf(v, s)
		if rate < floorRate-1e-9 {
			continue
		}
		free := st.FreeBandwidth(s)
		if best == -1 || rate > bestRate+1e-9 ||
			(rate > bestRate-1e-9 && free > bestFree+1e-9) {
			best, bestRate, bestFree = s, rate, free
		}
	}
	return best
}

// TryFailover re-admits one torn-down stream of video v onto a surviving
// replica at the highest copy rate available, refusing copies below
// floor × the video's nominal rate. It reports the new stream handle.
func TryFailover(st *cluster.State, v int, floor float64) (cluster.StreamID, bool) {
	s := bestCopy(st, v, floor*st.NominalRate(v))
	if s < 0 {
		return 0, false
	}
	return st.AdmitDirect(v, s)
}

// Degrader is a scheduler decorator: when the base policy rejects a request
// it serves the best copy at or above Floor × nominal rate instead — the
// graceful-degradation admission path of the §4.3 scalable-bit-rate model.
// LastDegraded reports whether the most recent decision delivered below the
// nominal rate, so the caller can account delivered-vs-nominal quality.
// Degrader keeps per-decision state; create one per simulation run.
type Degrader struct {
	base     cluster.Scheduler
	floor    float64
	degraded bool
}

// NewDegrader wraps base with degradation down to floor × nominal rate.
func NewDegrader(base cluster.Scheduler, floor float64) *Degrader {
	return &Degrader{base: base, floor: floor}
}

// Name implements cluster.Scheduler.
func (d *Degrader) Name() string { return d.base.Name() + "+degrade" }

// Unwrap exposes the base policy, so the simulator can find a
// cluster.SeededScheduler through the decorator chain.
func (d *Degrader) Unwrap() cluster.Scheduler { return d.base }

// Schedule implements cluster.Scheduler.
func (d *Degrader) Schedule(st *cluster.State, v int) cluster.Decision {
	d.degraded = false
	dec := d.base.Schedule(st, v)
	if dec.Accept {
		return dec
	}
	nominal := st.NominalRate(v)
	s := bestCopy(st, v, d.floor*nominal)
	if s < 0 {
		return cluster.Reject
	}
	// A full-rate rescue (the base policy simply missed a free replica) is
	// not a quality degradation.
	d.degraded = st.RateOf(v, s) < nominal-1e-9
	return cluster.Direct(s)
}

// LastDegraded reports whether the most recent Schedule call admitted below
// the nominal rate.
func (d *Degrader) LastDegraded() bool { return d.degraded }
