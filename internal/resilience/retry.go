package resilience

import (
	"math"

	"vodcluster/internal/stats"
)

// Retrier tracks the bounded retry queue of one simulation run and computes
// backoff delays; scheduling the retries on the virtual clock stays with
// the caller. All randomness (the jitter) is drawn from the RNG supplied at
// construction, so runs remain deterministic per seed. Retrier is not safe
// for concurrent use; create one per run.
type Retrier struct {
	pol     Policy
	rng     *stats.RNG
	pending int
	peak    int
}

// NewRetrier builds a retrier for a defaulted, validated policy.
func NewRetrier(pol Policy, rng *stats.RNG) *Retrier {
	return &Retrier{pol: pol, rng: rng}
}

// TryEnqueue admits one rejected request into the retry queue; false means
// the queue is full and the request must be insta-rejected.
func (r *Retrier) TryEnqueue() bool {
	if r.pending >= r.pol.RetryLimit {
		return false
	}
	r.pending++
	if r.pending > r.peak {
		r.peak = r.pending
	}
	return true
}

// Resolve removes one queued request: it was either admitted on a retry or
// reneged. Every TryEnqueue must be paired with exactly one Resolve.
func (r *Retrier) Resolve() {
	if r.pending > 0 {
		r.pending--
	}
}

// Pending returns the number of requests currently queued for retry.
func (r *Retrier) Pending() int { return r.pending }

// PeakPending returns the largest queue depth seen.
func (r *Retrier) PeakPending() int { return r.peak }

// Delay returns the backoff before retry number attempt (0-based) for a
// request that has already waited `waited` seconds since its arrival:
//
//	delay = base · factor^attempt · (1 + jitter·(U − ½)),  U ~ Uniform[0,1)
//
// ok is false when waiting that long would exceed the client's patience —
// the request reneges instead of retrying again.
func (r *Retrier) Delay(attempt int, waited float64) (float64, bool) {
	// Draw even when the patience check below will renege, so the RNG
	// stream position depends only on the number of Delay calls.
	d := BackoffDelay(r.pol, attempt, r.rng.Float64())
	if waited+d > r.pol.RetryPatience {
		return 0, false
	}
	return d, true
}

// BackoffDelay is the pure backoff formula shared by the simulator's Retrier
// and the live serving daemon's admission retry:
//
//	delay = base · factor^attempt · (1 + jitter·(u − ½))
//
// u is the caller's uniform [0,1) draw, so each side keeps its own
// randomness source (the sim's deterministic RNG stream, the daemon's
// math/rand) while the delay schedule itself stays identical.
func BackoffDelay(pol Policy, attempt int, u float64) float64 {
	d := pol.RetryBase * math.Pow(pol.RetryFactor, float64(attempt))
	if j := pol.RetryJitter; j > 0 {
		d *= 1 + j*(u-0.5)
	}
	return d
}
