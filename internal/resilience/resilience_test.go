package resilience

import (
	"testing"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// testProblem: 4 videos, 3 servers, 12 Mb/s links, 4 Mb/s videos — each
// server carries at most 3 concurrent full-rate streams.
func testProblem(t testing.TB, backbone float64) *core.Problem {
	t.Helper()
	c := core.Catalog{
		{ID: 0, Popularity: 0.4, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 1, Popularity: 0.3, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 2, Popularity: 0.2, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 3, Popularity: 0.1, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         3,
		StoragePerServer:   3 * c[0].SizeBytes(),
		BandwidthPerServer: 12 * core.Mbps,
		ArrivalRate:        1.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
		BackboneBandwidth:  backbone,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// testLayout: v0 on {0,1}, v1 on {0,2}, v2 on {1}, v3 on {2}.
func testLayout(t testing.TB) *core.Layout {
	t.Helper()
	l := core.NewLayout(4)
	l.Replicas = []int{2, 2, 1, 1}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 0}, {1, 2}, {2, 1}, {3, 2}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func newState(t testing.TB, backbone float64, opts ...cluster.Option) *cluster.State {
	t.Helper()
	st, err := cluster.New(testProblem(t, backbone), testLayout(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPolicyDefaultsAndValidation(t *testing.T) {
	var zero Policy
	if zero.Enabled() {
		t.Fatal("zero policy reports enabled")
	}
	def := zero.WithDefaults()
	if err := def.Validate(); err != nil {
		t.Fatalf("defaulted policy invalid: %v", err)
	}
	if def.RetryBase != 5 || def.RetryFactor != 2 || def.RetryPatience != 120 ||
		def.RetryLimit != 256 || def.DegradeFloor != 0.5 || def.RepairMinLive != 2 {
		t.Fatalf("unexpected defaults: %+v", def)
	}
	all := All()
	if !all.Failover || !all.Retry || !all.Degrade || !all.Repair || !all.Enabled() {
		t.Fatalf("All() left something off: %+v", all)
	}
	bad := []Policy{
		(Policy{RetryBase: -1}).WithDefaults(),
		func() Policy { p := All(); p.RetryFactor = 0.5; return p }(),
		func() Policy { p := All(); p.RetryJitter = 2; return p }(),
		func() Policy { p := All(); p.DegradeFloor = 1.5; return p }(),
		func() Policy { p := All(); p.RepairMinLive = -3; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad policy %d accepted: %+v", i, p)
		}
	}
}

func TestTryFailoverPicksSurvivingReplica(t *testing.T) {
	st := newState(t, 0)
	torn := st.FailServer(0)
	if len(torn) != 0 {
		t.Fatalf("idle failure tore down %d streams", len(torn))
	}
	// v0 has a surviving replica on server 1, v1 on server 2.
	id, ok := TryFailover(st, 0, 1.0)
	if !ok {
		t.Fatal("failover missed the surviving replica")
	}
	if s, _ := st.Lookup(id); s.Server != 1 {
		t.Fatalf("failover landed on server %d, want 1", s.Server)
	}
	// A video whose replicas are all down cannot fail over.
	st.FailServer(2)
	if _, ok := TryFailover(st, 3, 1.0); ok {
		t.Fatal("failover invented a replica for a fully-down video")
	}
}

func TestTryFailoverHonorsFloor(t *testing.T) {
	p, l := testProblem(t, 0), testLayout(t)
	// v0's copies: 4 Mb/s on server 0, 2 Mb/s on server 1 (half quality).
	rates := [][]float64{
		{4 * core.Mbps, 2 * core.Mbps, 0},
		{4 * core.Mbps, 0, 4 * core.Mbps},
		{0, 4 * core.Mbps, 0},
		{0, 0, 4 * core.Mbps},
	}
	st, err := cluster.New(p, l, cluster.WithCopyRates(rates))
	if err != nil {
		t.Fatal(err)
	}
	st.FailServer(0)
	// Floor 0.75: the surviving 2 Mb/s copy (ratio 0.5) is below the bar.
	if _, ok := TryFailover(st, 0, 0.75); ok {
		t.Fatal("failover accepted a copy below the quality floor")
	}
	// Floor 0.5 admits it.
	id, ok := TryFailover(st, 0, 0.5)
	if !ok {
		t.Fatal("failover refused a copy at the floor")
	}
	if s, _ := st.Lookup(id); s.Rate != 2*core.Mbps || s.Server != 1 {
		t.Fatalf("failover stream %+v, want 2 Mb/s on server 1", s)
	}
}

func TestDegraderServesLowerRateCopy(t *testing.T) {
	p, l := testProblem(t, 0), testLayout(t)
	rates := [][]float64{
		{4 * core.Mbps, 2 * core.Mbps, 0},
		{4 * core.Mbps, 0, 4 * core.Mbps},
		{0, 4 * core.Mbps, 0},
		{0, 0, 4 * core.Mbps},
	}
	st, err := cluster.New(p, l, cluster.WithCopyRates(rates))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDegrader(cluster.StaticRoundRobin{}, 0.5)
	if d.Name() != "static-rr+degrade" {
		t.Fatalf("decorator name %q", d.Name())
	}
	// Saturate server 0 (12 Mb/s: three 4 Mb/s streams of v1).
	for i := 0; i < 3; i++ {
		if _, ok := st.AdmitDirect(1, 0); !ok {
			t.Fatalf("setup admit %d failed", i)
		}
	}
	// v0's rotation designates the saturated full-rate copy on server 0;
	// the degrader serves the 2 Mb/s copy on server 1 instead.
	id, ok := st.Admit(0, d)
	if !ok {
		t.Fatal("degraded admission failed")
	}
	if !d.LastDegraded() {
		t.Fatal("degraded admission not flagged")
	}
	if s, _ := st.Lookup(id); s.Rate != 2*core.Mbps || s.Server != 1 {
		t.Fatalf("degraded stream %+v, want 2 Mb/s on server 1", s)
	}
	// A later full-rate admission must not be flagged degraded.
	if _, ok := st.Admit(2, d); !ok {
		t.Fatal("full-rate admission failed")
	}
	if d.LastDegraded() {
		t.Fatal("full-rate admission flagged degraded")
	}
}

func TestDegraderFullRateRescueNotDegraded(t *testing.T) {
	// Uniform rates: static-rr rejects when its designated replica is
	// saturated; the degrader rescues at full rate, which must not count
	// as a degradation.
	st := newState(t, 0)
	d := NewDegrader(cluster.StaticRoundRobin{}, 0.5)
	// Saturate server 0; v0's rotation starts there.
	for i := 0; i < 3; i++ {
		if _, ok := st.AdmitDirect(1, 0); !ok {
			t.Fatal("setup failed")
		}
	}
	id, ok := st.Admit(0, d)
	if !ok {
		t.Fatal("rescue admission failed")
	}
	if d.LastDegraded() {
		t.Fatal("full-rate rescue flagged as degradation")
	}
	if s, _ := st.Lookup(id); s.Server != 1 {
		t.Fatalf("rescue landed on %d, want 1", s.Server)
	}
}

// TestRecoveryNeverTouchesDownServers is the safety property behind every
// mechanism: across randomized load, failure, and repair histories, neither
// failover nor degraded admission ever lands a stream on a down server.
func TestRecoveryNeverTouchesDownServers(t *testing.T) {
	rng := stats.NewRNG(71)
	for trial := 0; trial < 200; trial++ {
		st := newState(t, 0)
		d := NewDegrader(cluster.FirstAvailable{}, 0.5)
		var live []cluster.StreamID
		for step := 0; step < 60; step++ {
			switch rng.Intn(5) {
			case 0: // fail a random server
				st.FailServer(rng.Intn(3))
			case 1: // repair a random server
				st.RestoreServer(rng.Intn(3))
			case 2: // release a random stream
				if len(live) > 0 {
					i := rng.Intn(len(live))
					if _, ok := st.Lookup(live[i]); ok {
						if err := st.Release(live[i]); err != nil {
							t.Fatal(err)
						}
					}
					live = append(live[:i], live[i+1:]...)
				}
			case 3: // degraded admission
				v := rng.Intn(4)
				if id, ok := st.Admit(v, d); ok {
					s, _ := st.Lookup(id)
					if !st.Up(s.Server) {
						t.Fatalf("trial %d: degrader admitted onto down server %d", trial, s.Server)
					}
					live = append(live, id)
				}
			case 4: // failover attempt
				v := rng.Intn(4)
				if id, ok := TryFailover(st, v, 0.5); ok {
					s, _ := st.Lookup(id)
					if !st.Up(s.Server) {
						t.Fatalf("trial %d: failover admitted onto down server %d", trial, s.Server)
					}
					live = append(live, id)
				}
			}
		}
	}
}
