// Package demand is the single decayed-demand estimator shared by the
// sim-side dynamic-replication manager (internal/dynrep) and the live
// placement controller (internal/rebalance), so the two control loops rank
// videos identically from identical observations. It sits below both — it
// must import neither the simulator nor the serving stack.
package demand

import (
	"fmt"
	"sort"
	"sync"
)

// Estimator maintains exponentially decayed per-video demand counts: each
// observation adds one to its video's counter, and Decay multiplies every
// counter by the decay factor — an exponential sliding window over the
// request stream. All methods are safe for concurrent use; the sim-side
// manager pays one uncontended lock per call, the live admission path one
// per observed request.
type Estimator struct {
	decay float64

	mu     sync.Mutex
	counts []float64
}

// NewEstimator builds an estimator over m videos with the given per-round
// decay factor in [0, 1).
func NewEstimator(m int, decay float64) (*Estimator, error) {
	if m <= 0 {
		return nil, fmt.Errorf("demand: estimator needs at least one video, got %d", m)
	}
	if decay < 0 || decay >= 1 {
		return nil, fmt.Errorf("demand: decay must be in [0,1), got %g", decay)
	}
	return &Estimator{decay: decay, counts: make([]float64, m)}, nil
}

// Videos returns the catalog size the estimator was built for.
func (e *Estimator) Videos() int { return len(e.counts) }

// Observe records one request for video. Out-of-range videos are ignored —
// the caller's request validation owns that error.
func (e *Estimator) Observe(video int) {
	if video < 0 || video >= len(e.counts) {
		return
	}
	e.mu.Lock()
	e.counts[video]++
	e.mu.Unlock()
}

// Decay multiplies every counter by the decay factor, aging out history.
// Control loops call it once per adjustment round, after reading the
// counters the round's decision used.
func (e *Estimator) Decay() {
	e.mu.Lock()
	for i := range e.counts {
		e.counts[i] *= e.decay
	}
	e.mu.Unlock()
}

// Count returns video v's current decayed count (0 for out-of-range v).
func (e *Estimator) Count(v int) float64 {
	if v < 0 || v >= len(e.counts) {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counts[v]
}

// Total returns the sum of all decayed counts.
func (e *Estimator) Total() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := 0.0
	for _, c := range e.counts {
		t += c
	}
	return t
}

// Snapshot returns a copy of the per-video counts, consistent at one instant.
func (e *Estimator) Snapshot() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]float64(nil), e.counts...)
}

// SmoothedPopularity returns the empirical popularity of every video with
// add-one smoothing — (count+1)/(total+M) — so cold videos keep a positive
// floor (the catalog constraint p > 0 holds on any shadow problem built
// from it), plus the raw total the smoothing was computed over. A total
// below one observation means there is nothing to go on yet.
func (e *Estimator) SmoothedPopularity() (pops []float64, total float64) {
	counts := e.Snapshot()
	for _, c := range counts {
		total += c
	}
	denom := total + float64(len(counts))
	pops = make([]float64, len(counts))
	for v, c := range counts {
		pops[v] = (c + 1) / denom
	}
	return pops, total
}

// Ranked pairs a video with its empirical popularity for rank ordering.
type Ranked struct {
	Video int
	Pop   float64
}

// RankByPopularity orders videos most-popular-first, breaking ties by
// video index — the deterministic ranking both control loops build their
// shadow (rank-space) problems from, where the catalog's sorted-popularity
// invariant must hold.
func RankByPopularity(pops []float64) []Ranked {
	ranked := make([]Ranked, len(pops))
	for v, p := range pops {
		ranked[v] = Ranked{Video: v, Pop: p}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Pop != ranked[j].Pop {
			return ranked[i].Pop > ranked[j].Pop
		}
		return ranked[i].Video < ranked[j].Video
	})
	return ranked
}
