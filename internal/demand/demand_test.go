package demand

import (
	"math"
	"sync"
	"testing"
)

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(0, 0.5); err == nil {
		t.Fatal("zero videos accepted")
	}
	if _, err := NewEstimator(4, 1.0); err == nil {
		t.Fatal("decay = 1 accepted")
	}
	if _, err := NewEstimator(4, -0.1); err == nil {
		t.Fatal("negative decay accepted")
	}
	if _, err := NewEstimator(4, 0); err != nil {
		t.Fatalf("decay 0 (no memory) rejected: %v", err)
	}
}

func TestObserveCountAndDecay(t *testing.T) {
	e, err := NewEstimator(3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(0)
	e.Observe(0)
	e.Observe(2)
	e.Observe(-1) // ignored
	e.Observe(3)  // ignored
	if got := e.Count(0); got != 2 {
		t.Fatalf("Count(0) = %g, want 2", got)
	}
	if got := e.Total(); got != 3 {
		t.Fatalf("Total = %g, want 3", got)
	}
	e.Decay()
	if got := e.Count(0); got != 0.5 {
		t.Fatalf("Count(0) after decay = %g, want 0.5", got)
	}
	if got := e.Count(2); got != 0.25 {
		t.Fatalf("Count(2) after decay = %g, want 0.25", got)
	}
	if got := e.Count(1); got != 0 {
		t.Fatalf("Count(1) = %g, want 0", got)
	}
}

func TestSmoothedPopularitySumsToOne(t *testing.T) {
	e, err := NewEstimator(5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		e.Observe(1)
	}
	e.Observe(4)
	pops, total := e.SmoothedPopularity()
	if total != 8 {
		t.Fatalf("total = %g, want 8", total)
	}
	sum := 0.0
	for _, p := range pops {
		if p <= 0 {
			t.Fatalf("popularity floor violated: %v", pops)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("popularities sum to %g, want 1", sum)
	}
	// Add-one smoothing: (7+1)/(8+5) for the hot video.
	if want := 8.0 / 13.0; math.Abs(pops[1]-want) > 1e-12 {
		t.Fatalf("pops[1] = %g, want %g", pops[1], want)
	}
}

func TestRankByPopularityDeterministicTieBreak(t *testing.T) {
	ranked := RankByPopularity([]float64{0.2, 0.4, 0.2, 0.2})
	if ranked[0].Video != 1 {
		t.Fatalf("hottest video ranked %d", ranked[0].Video)
	}
	// Ties resolve by ascending video index.
	for i, want := range []int{1, 0, 2, 3} {
		if ranked[i].Video != want {
			t.Fatalf("rank %d = video %d, want %d", i, ranked[i].Video, want)
		}
	}
}

func TestEstimatorConcurrentObserve(t *testing.T) {
	e, err := NewEstimator(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Observe(g)
				if i%100 == 0 {
					_ = e.Snapshot()
					_, _ = e.SmoothedPopularity()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := e.Total(); got != 8000 {
		t.Fatalf("Total = %g after concurrent observes, want 8000", got)
	}
}
