// Package metrics collects the performance measures the paper evaluates:
// rejection rate, the load imbalance degree L under both of the paper's
// definitions, per-server utilization, and cross-run aggregates with
// confidence intervals.
package metrics

import (
	"fmt"

	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// Collector accumulates measurements during one simulation run.
// Create with NewCollector; all methods are single-goroutine.
type Collector struct {
	numServers int
	capacities []float64 // outgoing bits/s per server

	arrivals  int
	requests  int
	accepted  int
	rejected  int
	redirects int
	dropped   int

	failedOver     int
	retried        int
	retrySucceeded int
	reneged        int
	degraded       int
	rereplications int
	degradeRatio   stats.Summary // delivered/nominal over degraded admissions

	servedPerServer []int

	imbMax  stats.Summary // Eq. 2 on sampled outgoing bandwidth
	imbCV   stats.Summary // Eq. 3 normalized by mean
	imbCap  stats.Summary // capacity-normalized spread (max−mean)/capacity
	peakImb float64

	utilization    stats.Summary // mean server utilization per sample
	peakConcurrent int
	sessionRate    stats.Summary // encoding rate of accepted sessions (bits/s)
}

// NewCollector builds a collector for servers with the given outgoing
// capacities in bits/s (one entry per server; heterogeneous clusters pass
// their per-server values).
func NewCollector(capacities []float64) *Collector {
	n := len(capacities)
	return &Collector{
		numServers:      n,
		capacities:      append([]float64(nil), capacities...),
		servedPerServer: make([]int, n),
	}
}

// NewUniformCollector builds a collector for n servers sharing one capacity.
func NewUniformCollector(n int, capacity float64) *Collector {
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = capacity
	}
	return NewCollector(caps)
}

// Arrival records one arriving request, measured or not. It counts every
// request the run settled an admission decision for — the length of the
// run's KindArrival decision stream — so decision journals can be checked
// against results. Requests, by contrast, counts only measured arrivals.
func (c *Collector) Arrival() {
	c.arrivals++
}

// Request records an arrival and its outcome. server is the outgoing server
// for accepted requests and ignored otherwise.
func (c *Collector) Request(acceptedBy int, accepted, redirected bool) {
	c.requests++
	if !accepted {
		c.rejected++
		return
	}
	c.accepted++
	if redirected {
		c.redirects++
	}
	if acceptedBy >= 0 && acceptedBy < c.numServers {
		c.servedPerServer[acceptedBy]++
	}
}

// Drop records n streams torn down mid-playback by a server failure.
func (c *Collector) Drop(n int) {
	c.dropped += n
}

// FailOver records n interrupted streams salvaged onto a surviving replica.
// Failed-over streams are not dropped and not re-counted as requests.
func (c *Collector) FailOver(n int) {
	c.failedOver += n
}

// RetryEnqueued records a rejected arrival entering the retry queue instead
// of counting as a rejection. The arrival is not yet a settled request: it
// is counted in Requests when it resolves — by Request on eventual
// admission, or by Renege on giving up — so each arrival counts exactly once.
func (c *Collector) RetryEnqueued() {
	c.retried++
}

// RetrySuccess records a queued retry finally admitted; the admission itself
// is reported through Request by the caller, so this only counts the
// retry-path outcome.
func (c *Collector) RetrySuccess() {
	c.retrySucceeded++
}

// Renege records a queued retry abandoning the system after exhausting its
// patience — a user-visible service failure distinct from an instant reject.
// It settles the arrival deferred by RetryEnqueued, so it counts a request.
func (c *Collector) Renege() {
	c.requests++
	c.reneged++
}

// Degrade records an admission served from a lower-rate copy: delivered and
// nominal are the served and full-quality encoding rates in bits/s.
func (c *Collector) Degrade(delivered, nominal float64) {
	c.degraded++
	if nominal > 0 {
		c.degradeRatio.Add(delivered / nominal)
	}
}

// ReReplications records n repair copies that completed during the run.
func (c *Collector) ReReplications(n int) {
	c.rereplications += n
}

// ObserveSessionRate records the encoding rate (bits/s) of an accepted
// session — the delivered-quality metric of the scalable-bit-rate runtime.
func (c *Collector) ObserveSessionRate(bps float64) {
	c.sessionRate.Add(bps)
}

// SampleLoads records one snapshot of per-server outgoing bandwidth usage
// (bits/s) and the number of concurrent streams.
func (c *Collector) SampleLoads(usedBW []float64, concurrent int) {
	l := core.ImbalanceMax(usedBW)
	c.imbMax.Add(l)
	if l > c.peakImb {
		c.peakImb = l
	}
	c.imbCV.Add(core.ImbalanceCV(usedBW))
	// Utilization-space spread: u_s = load_s / capacity_s; the
	// capacity-normalized imbalance is max u − mean u, which reduces to
	// (max l − l̄)/B on homogeneous clusters.
	meanU := 0.0
	maxU := 0.0
	for s, l := range usedBW {
		u := l / c.capacities[s]
		meanU += u
		if u > maxU {
			maxU = u
		}
	}
	meanU /= float64(len(usedBW))
	c.imbCap.Add(maxU - meanU)
	c.utilization.Add(meanU)
	if concurrent > c.peakConcurrent {
		c.peakConcurrent = concurrent
	}
}

// Result freezes the collector into the per-run result record.
func (c *Collector) Result() Result {
	r := Result{
		Arrivals:        c.arrivals,
		Requests:        c.requests,
		Accepted:        c.accepted,
		Rejected:        c.rejected,
		Redirected:      c.redirects,
		Dropped:         c.dropped,
		ServedPerServer: append([]int(nil), c.servedPerServer...),
		ImbalanceAvg:    c.imbMax.Mean(),
		ImbalancePeak:   c.peakImb,
		ImbalanceCVAvg:  c.imbCV.Mean(),
		ImbalanceCapAvg: c.imbCap.Mean(),
		MeanUtilization: c.utilization.Mean(),
		PeakConcurrent:  c.peakConcurrent,
	}
	r.FailedOver = c.failedOver
	r.Retried = c.retried
	r.RetrySucceeded = c.retrySucceeded
	r.Reneged = c.reneged
	r.Degraded = c.degraded
	r.ReReplications = c.rereplications
	r.DegradationRatio = 1.0
	if c.degradeRatio.N() > 0 {
		r.DegradationRatio = c.degradeRatio.Mean()
	}
	r.MeanSessionRateMbps = c.sessionRate.Mean() / 1e6
	if c.requests > 0 {
		r.RejectionRate = float64(c.rejected) / float64(c.requests)
		// Failure rate counts turned-away, reneged, and torn-down sessions —
		// every user-visible service failure.
		r.FailureRate = float64(c.rejected+c.reneged+c.dropped) / float64(c.requests)
	}
	return r
}

// Result is the outcome of one simulation run.
type Result struct {
	// Arrivals counts every arriving request, measured or not — the
	// length of the run's arrival-decision stream (warmup arrivals
	// included), so a decision journal of the same run has exactly this
	// many KindArrival records.
	Arrivals int
	// Requests, Accepted, Rejected count measured arrivals and their
	// outcomes.
	Requests, Accepted, Rejected int
	// Redirected counts streams admitted over the backbone.
	Redirected int
	// Dropped counts streams torn down mid-playback by server failures.
	Dropped int
	// FailedOver counts interrupted streams salvaged onto surviving replicas;
	// Retried counts rejected arrivals that entered the retry queue, of which
	// RetrySucceeded were eventually admitted and Reneged gave up.
	FailedOver, Retried, RetrySucceeded, Reneged int
	// Degraded counts admissions served from a lower-rate copy;
	// DegradationRatio is the mean delivered/nominal encoding-rate ratio over
	// those admissions (1 when nothing was degraded).
	Degraded         int
	DegradationRatio float64
	// ReReplications counts repair copies completed during the run.
	ReReplications int
	// RejectionRate is Rejected / Requests.
	RejectionRate float64
	// FailureRate is (Rejected + Reneged + Dropped) / Requests — every way a
	// client fails to receive its full video.
	FailureRate float64
	// ServedPerServer counts accepted requests per outgoing server.
	ServedPerServer []int
	// ImbalanceAvg is the time-average of the Eq. 2 load imbalance degree
	// sampled on outgoing bandwidth; ImbalancePeak its maximum sample.
	ImbalanceAvg, ImbalancePeak float64
	// ImbalanceCVAvg is the time-average of the Eq. 3 (std-dev) imbalance,
	// normalized by the mean load.
	ImbalanceCVAvg float64
	// ImbalanceCapAvg is the time-average of the capacity-normalized load
	// spread (max_j l_j − l̄) / capacity. Unlike the mean-relative Eq. 2, it
	// is small both at light load (tiny absolute spread) and past
	// saturation (every link pegged), peaking at mid load — the shape the
	// paper's measured Figure 6 curves trace.
	ImbalanceCapAvg float64
	// MeanUtilization is the time-average of mean outgoing-link
	// utilization across servers, in [0, 1].
	MeanUtilization float64
	// PeakConcurrent is the largest number of simultaneous streams seen.
	PeakConcurrent int
	// MeanSessionRateMbps is the average encoding rate of accepted
	// sessions in Mb/s — constant under the paper's fixed-rate model,
	// informative for scalable-bit-rate layouts where the served copy
	// decides the quality.
	MeanSessionRateMbps float64
	// Events counts the discrete events the engine executed during the
	// run. It is deterministic for a given configuration and seed (so it
	// survives the bit-identical replay tests), and dividing it by a
	// measured wall clock gives the simulator's events/s throughput — the
	// raw-speed metric the perf-regression gate tracks.
	Events int
}

// String summarizes the run; resilience counters appear only when exercised.
func (r Result) String() string {
	s := fmt.Sprintf("requests=%d rejected=%d (%.2f%%) redirected=%d L_avg=%.3f L_peak=%.3f util=%.2f",
		r.Requests, r.Rejected, 100*r.RejectionRate, r.Redirected, r.ImbalanceAvg, r.ImbalancePeak, r.MeanUtilization)
	if r.FailedOver > 0 || r.Retried > 0 || r.Degraded > 0 || r.ReReplications > 0 {
		s += fmt.Sprintf(" failover=%d retried=%d/%d reneged=%d degraded=%d (ratio %.2f) rerepl=%d",
			r.FailedOver, r.RetrySucceeded, r.Retried, r.Reneged, r.Degraded, r.DegradationRatio, r.ReReplications)
	}
	return s
}

// Aggregate summarizes the same metric across replicated runs.
type Aggregate struct {
	// RejectionRate, ImbalanceAvg, ImbalancePeak, MeanUtilization, and
	// Redirected aggregate the per-run values of the same name.
	RejectionRate    stats.Summary
	FailureRate      stats.Summary
	Dropped          stats.Summary
	FailedOver       stats.Summary
	Reneged          stats.Summary
	Degraded         stats.Summary
	DegradationRatio stats.Summary
	ReReplications   stats.Summary
	SessionRateMbps  stats.Summary
	ImbalanceAvg     stats.Summary
	ImbalancePeak    stats.Summary
	ImbalanceCVAvg   stats.Summary
	ImbalanceCapAvg  stats.Summary
	MeanUtilization  stats.Summary
	Redirected       stats.Summary
}

// Add folds one run's result into the aggregate.
func (a *Aggregate) Add(r Result) {
	a.RejectionRate.Add(r.RejectionRate)
	a.FailureRate.Add(r.FailureRate)
	a.Dropped.Add(float64(r.Dropped))
	a.FailedOver.Add(float64(r.FailedOver))
	a.Reneged.Add(float64(r.Reneged))
	a.Degraded.Add(float64(r.Degraded))
	a.DegradationRatio.Add(r.DegradationRatio)
	a.ReReplications.Add(float64(r.ReReplications))
	a.SessionRateMbps.Add(r.MeanSessionRateMbps)
	a.ImbalanceAvg.Add(r.ImbalanceAvg)
	a.ImbalancePeak.Add(r.ImbalancePeak)
	a.ImbalanceCVAvg.Add(r.ImbalanceCVAvg)
	a.ImbalanceCapAvg.Add(r.ImbalanceCapAvg)
	a.MeanUtilization.Add(r.MeanUtilization)
	a.Redirected.Add(float64(r.Redirected))
}

// Runs returns the number of results aggregated.
func (a *Aggregate) Runs() int { return a.RejectionRate.N() }

// String reports mean rejection rate and imbalance with 95% CIs.
func (a *Aggregate) String() string {
	return fmt.Sprintf("runs=%d reject=%.3f%%±%.3f L=%.3f±%.3f util=%.3f",
		a.Runs(),
		100*a.RejectionRate.Mean(), 100*a.RejectionRate.CI95(),
		a.ImbalanceAvg.Mean(), a.ImbalanceAvg.CI95(),
		a.MeanUtilization.Mean())
}
