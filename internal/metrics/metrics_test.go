package metrics

import (
	"math"
	"strings"
	"testing"

	"vodcluster/internal/core"
)

func TestCollectorCountsOutcomes(t *testing.T) {
	c := NewUniformCollector(2, core.Gbps)
	c.Request(0, true, false)
	c.Request(1, true, true)
	c.Request(-1, false, false)
	c.Request(0, true, false)
	r := c.Result()
	if r.Requests != 4 || r.Accepted != 3 || r.Rejected != 1 || r.Redirected != 1 {
		t.Fatalf("result %+v", r)
	}
	if math.Abs(r.RejectionRate-0.25) > 1e-12 {
		t.Fatalf("rejection rate %g", r.RejectionRate)
	}
	if r.ServedPerServer[0] != 2 || r.ServedPerServer[1] != 1 {
		t.Fatalf("served %v", r.ServedPerServer)
	}
}

func TestCollectorEmptyResult(t *testing.T) {
	r := NewUniformCollector(3, core.Gbps).Result()
	if r.RejectionRate != 0 || r.Requests != 0 {
		t.Fatalf("empty result %+v", r)
	}
}

func TestCollectorOutOfRangeServerIgnored(t *testing.T) {
	c := NewUniformCollector(2, core.Gbps)
	c.Request(7, true, false) // accepted but server index is bogus
	r := c.Result()
	if r.Accepted != 1 {
		t.Fatal("accept lost")
	}
	if r.ServedPerServer[0] != 0 && r.ServedPerServer[1] != 0 {
		t.Fatal("bogus server credited")
	}
}

func TestCollectorSamples(t *testing.T) {
	c := NewUniformCollector(2, 10)
	c.SampleLoads([]float64{10, 0}, 3) // Eq.2 L = 1, mean util 0.5
	c.SampleLoads([]float64{5, 5}, 7)  // L = 0, util 0.5
	r := c.Result()
	if math.Abs(r.ImbalanceAvg-0.5) > 1e-12 {
		t.Fatalf("imbalance avg %g, want 0.5", r.ImbalanceAvg)
	}
	if r.ImbalancePeak != 1 {
		t.Fatalf("imbalance peak %g", r.ImbalancePeak)
	}
	if math.Abs(r.MeanUtilization-0.5) > 1e-12 {
		t.Fatalf("utilization %g", r.MeanUtilization)
	}
	if r.PeakConcurrent != 7 {
		t.Fatalf("peak concurrent %d", r.PeakConcurrent)
	}
	// The CV average: CV of (10,0) = 1, of (5,5) = 0.
	if math.Abs(r.ImbalanceCVAvg-0.5) > 1e-12 {
		t.Fatalf("CV avg %g", r.ImbalanceCVAvg)
	}
	// Capacity-normalized spread: (10−5)/10 = 0.5, then (5−5)/10 = 0.
	if math.Abs(r.ImbalanceCapAvg-0.25) > 1e-12 {
		t.Fatalf("capacity-normalized avg %g", r.ImbalanceCapAvg)
	}
}

func TestResultString(t *testing.T) {
	c := NewUniformCollector(1, 10)
	c.Request(0, true, false)
	c.Request(-1, false, false)
	s := c.Result().String()
	for _, frag := range []string{"requests=2", "rejected=1", "50.00%"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func TestCollectorResilienceCounters(t *testing.T) {
	c := NewUniformCollector(2, core.Gbps)
	// Two plain accepts, one instant reject.
	c.Request(0, true, false)
	c.Request(1, true, false)
	c.Request(-1, false, false)
	// Two arrivals enter the retry queue: one is eventually admitted, one
	// reneges. Only the settled outcomes count as requests.
	c.RetryEnqueued()
	c.RetryEnqueued()
	c.RetrySuccess()
	c.Request(0, true, false)
	c.Renege()
	// A failure drops one measured stream and fails over two more.
	c.Drop(1)
	c.FailOver(2)
	// One admission is served at half rate; two repair copies complete.
	c.Degrade(2e6, 4e6)
	c.ReReplications(2)

	r := c.Result()
	if r.Requests != 5 {
		t.Fatalf("requests %d, want 5 (each arrival settles once)", r.Requests)
	}
	if r.Accepted+r.Rejected+r.Reneged != r.Requests {
		t.Fatalf("accounting leak: accepted %d + rejected %d + reneged %d != requests %d",
			r.Accepted, r.Rejected, r.Reneged, r.Requests)
	}
	if r.Retried != 2 || r.RetrySucceeded != 1 || r.Reneged != 1 {
		t.Fatalf("retry counters %d/%d/%d, want 2/1/1", r.Retried, r.RetrySucceeded, r.Reneged)
	}
	if r.Retried != r.RetrySucceeded+r.Reneged {
		t.Fatal("retry queue did not drain")
	}
	if r.FailedOver != 2 || r.Dropped != 1 {
		t.Fatalf("failover %d dropped %d, want 2/1", r.FailedOver, r.Dropped)
	}
	if r.Degraded != 1 || math.Abs(r.DegradationRatio-0.5) > 1e-12 {
		t.Fatalf("degraded %d ratio %g, want 1/0.5", r.Degraded, r.DegradationRatio)
	}
	if r.ReReplications != 2 {
		t.Fatalf("re-replications %d", r.ReReplications)
	}
	// FailureRate = (rejected 1 + reneged 1 + dropped 1) / 5.
	if math.Abs(r.FailureRate-0.6) > 1e-12 {
		t.Fatalf("failure rate %g, want 0.6", r.FailureRate)
	}
	// RejectionRate counts only instant rejects.
	if math.Abs(r.RejectionRate-0.2) > 1e-12 {
		t.Fatalf("rejection rate %g, want 0.2", r.RejectionRate)
	}
	s := r.String()
	for _, frag := range []string{"failover=2", "retried=1/2", "reneged=1", "degraded=1", "rerepl=2"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func TestResultDegradationRatioDefaultsToOne(t *testing.T) {
	c := NewUniformCollector(1, core.Gbps)
	c.Request(0, true, false)
	r := c.Result()
	if r.DegradationRatio != 1 {
		t.Fatalf("ratio %g with nothing degraded, want 1", r.DegradationRatio)
	}
	if strings.Contains(r.String(), "failover=") {
		t.Fatalf("quiet run printed resilience counters: %q", r.String())
	}
}

func TestAggregate(t *testing.T) {
	var a Aggregate
	a.Add(Result{RejectionRate: 0.1, ImbalanceAvg: 0.2, MeanUtilization: 0.5, Redirected: 3})
	a.Add(Result{RejectionRate: 0.3, ImbalanceAvg: 0.4, MeanUtilization: 0.7, Redirected: 5})
	if a.Runs() != 2 {
		t.Fatalf("runs %d", a.Runs())
	}
	if math.Abs(a.RejectionRate.Mean()-0.2) > 1e-12 {
		t.Fatalf("mean rejection %g", a.RejectionRate.Mean())
	}
	if math.Abs(a.Redirected.Mean()-4) > 1e-12 {
		t.Fatalf("mean redirected %g", a.Redirected.Mean())
	}
	if !strings.Contains(a.String(), "runs=2") {
		t.Fatalf("String() = %q", a.String())
	}
}
