package policy

import (
	"strings"
	"testing"

	"vodcluster/internal/cluster"
)

func TestNamesAndEntries(t *testing.T) {
	names := Names()
	want := []string{"static-rr", "first-available", "least-loaded", "random"}
	if len(names) < len(want) {
		t.Fatalf("registry has %d policies, want at least %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
	for _, e := range Entries() {
		if e.Description == "" {
			t.Errorf("policy %q has no description", e.Name)
		}
		if e.NewScheduler == nil {
			t.Errorf("policy %q has no constructor", e.Name)
			continue
		}
		if got := e.NewScheduler().Name(); got != e.Name {
			t.Errorf("policy %q constructs a scheduler named %q", e.Name, got)
		}
	}
}

func TestLookupDefaultAndUnknown(t *testing.T) {
	e, err := Lookup("")
	if err != nil {
		t.Fatalf("Lookup(\"\"): %v", err)
	}
	if e.Name != Default {
		t.Fatalf("empty name resolved to %q, want %q", e.Name, Default)
	}
	_, err = Lookup("no-such-policy")
	if err == nil {
		t.Fatal("Lookup of unknown policy succeeded")
	}
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-policy error %q does not list %q", err, n)
		}
	}
}

func TestSchedulerFactory(t *testing.T) {
	for _, n := range Names() {
		newSched, err := SchedulerFactory(n, false)
		if err != nil {
			t.Fatalf("SchedulerFactory(%q): %v", n, err)
		}
		if newSched() == nil {
			t.Fatalf("SchedulerFactory(%q) built a nil scheduler", n)
		}
		withRedirect, err := SchedulerFactory(n, true)
		if err != nil {
			t.Fatalf("SchedulerFactory(%q, redirect): %v", n, err)
		}
		if got := withRedirect().Name(); !strings.HasSuffix(got, "+redirect") {
			t.Errorf("redirecting factory for %q built %q", n, got)
		}
	}
	if _, err := SchedulerFactory("bogus", false); err == nil {
		t.Fatal("SchedulerFactory accepted an unknown name")
	}
}

func TestServeNames(t *testing.T) {
	names := ServeNames()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate serve name %q", n)
		}
		seen[n] = true
		if !IsServeName(n) {
			t.Errorf("IsServeName(%q) = false for a listed name", n)
		}
	}
	for _, n := range []string{"least-loaded", "sim:static-rr", "sim:random"} {
		if !seen[n] {
			t.Errorf("serve names missing %q (got %v)", n, names)
		}
	}
	// random has no lock-free serve implementation, only the sim adapter.
	if seen["random"] {
		t.Error("serve names list bare \"random\", which serve does not implement")
	}
	if IsServeName("random") {
		t.Error("IsServeName(\"random\") = true")
	}
	if !IsServeName("") {
		t.Error("IsServeName(\"\") = false; empty must mean the default")
	}
	err := UnknownServeError("bogus")
	if err == nil || !strings.Contains(err.Error(), "sim:least-loaded") {
		t.Errorf("UnknownServeError does not list the adapters: %v", err)
	}
}

func TestRegister(t *testing.T) {
	if err := Register(Entry{Name: "static-rr", NewScheduler: func() cluster.Scheduler { return cluster.StaticRoundRobin{} }}); err == nil {
		t.Fatal("Register accepted a duplicate name")
	}
	if err := Register(Entry{Name: "x"}); err == nil {
		t.Fatal("Register accepted a nil constructor")
	}
	if err := Register(Entry{Name: "sim:x", NewScheduler: func() cluster.Scheduler { return cluster.StaticRoundRobin{} }}); err == nil {
		t.Fatal("Register accepted a sim:-prefixed name")
	}
	if err := Register(Entry{
		Name:         "test-policy",
		Description:  "registered by the test",
		NewScheduler: func() cluster.Scheduler { return cluster.LeastLoaded{} },
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(func() {
		registry = registry[:len(registry)-1]
		byName = buildIndex()
	})
	if _, err := Lookup("test-policy"); err != nil {
		t.Fatalf("registered policy not found: %v", err)
	}
	if !strings.Contains(List(), "test-policy") {
		t.Error("List() does not mention the registered policy")
	}
	found := false
	for _, n := range ServeNames() {
		if n == "sim:test-policy" {
			found = true
		}
	}
	if !found {
		t.Error("registered policy has no sim: serve adapter")
	}
}

func TestListFormatting(t *testing.T) {
	l := List()
	for _, n := range Names() {
		if !strings.Contains(l, n) {
			t.Errorf("List() missing %q", n)
		}
	}
	sl := ServeList()
	if !strings.Contains(sl, "lock-free") || !strings.Contains(sl, "sim-parity") {
		t.Errorf("ServeList() lacks layer annotations:\n%s", sl)
	}
}
