// Package policy is the single name table of replica-scheduling policies.
// Every layer that resolves a policy by name — the simulator pipeline
// (vodcluster.SchedulerFactory), the live dispatch daemon (serve.NewPolicy),
// the sweep harness (vodsim -sweep -series), and the counterfactual
// lockstep runner (internal/exp, cmd/vodab) — resolves it here, so adding a
// policy in one place makes it available, listable, and comparable
// everywhere at once.
//
// The registry holds the simulator-side constructors (cluster.Scheduler);
// the serve layer keeps its lock-free concurrent implementations in
// internal/serve but advertises and validates their names through this
// table (Entry.Serve), so the two layers can never drift apart on what a
// name means.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"vodcluster/internal/cluster"
	"vodcluster/internal/redirect"
)

// Entry describes one named scheduling policy.
type Entry struct {
	// Name is the canonical policy name used on every command line.
	Name string
	// Description is the one-line summary -list-policies prints.
	Description string
	// NewScheduler constructs a fresh simulator-side policy instance per
	// run (instances may keep per-run state, so they are never shared).
	NewScheduler func() cluster.Scheduler
	// Serve reports that internal/serve ships a lock-free concurrent
	// implementation under the same name (the registry only advertises it;
	// serve.NewPolicy constructs it).
	Serve bool
}

// registry is the ordered policy table; order is presentation order in
// listings and error messages. Guarded by nothing: registration happens at
// init time, lookups after.
var registry = []Entry{
	{
		Name:         "static-rr",
		Description:  "paper §3.2 static round-robin: requests rotate over a video's replicas in fixed order, no load awareness",
		NewScheduler: func() cluster.Scheduler { return cluster.StaticRoundRobin{} },
		Serve:        true,
	},
	{
		Name:         "first-available",
		Description:  "static rotation, but probes the remaining replicas before rejecting when the designated server is full",
		NewScheduler: func() cluster.Scheduler { return cluster.FirstAvailable{} },
		Serve:        true,
	},
	{
		Name:         "least-loaded",
		Description:  "serve from the replica holder with the most free outgoing bandwidth (strongest non-redirecting policy)",
		NewScheduler: func() cluster.Scheduler { return cluster.LeastLoaded{} },
		Serve:        true,
	},
	{
		Name:         "random",
		Description:  "uniformly random feasible replica holder; draws per-decision RNG streams so counterfactual runs stay paired",
		NewScheduler: func() cluster.Scheduler { return cluster.NewRandomHolder(0) },
		Serve:        false,
	},
}

// byName indexes the registry; rebuilt by Register.
var byName = buildIndex()

func buildIndex() map[string]int {
	idx := make(map[string]int, len(registry))
	for i, e := range registry {
		idx[e.Name] = i
	}
	return idx
}

// Register adds a policy to the registry. It is meant to be called from
// init functions of future policy packages (sharded, prefix-aware,
// federated dispatch); duplicate names and nil constructors are programming
// errors.
func Register(e Entry) error {
	if e.Name == "" || e.NewScheduler == nil {
		return fmt.Errorf("policy: entry needs a name and a constructor")
	}
	if _, ok := byName[e.Name]; ok {
		return fmt.Errorf("policy: %q is already registered", e.Name)
	}
	if strings.HasPrefix(e.Name, simPrefix) {
		return fmt.Errorf("policy: name %q collides with the %q serve-adapter prefix", e.Name, simPrefix)
	}
	registry = append(registry, e)
	byName[e.Name] = len(registry) - 1
	return nil
}

// Entries returns the registry in presentation order (a copy).
func Entries() []Entry {
	return append([]Entry(nil), registry...)
}

// Names returns every registered policy name in presentation order.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// Default is the policy an empty name resolves to — the paper's own
// dispatch model.
const Default = "static-rr"

// simPrefix marks the serve layer's locked sim-parity adapters.
const simPrefix = "sim:"

// Lookup resolves a policy name; the empty name resolves to Default. An
// unknown name yields an error listing every registered name.
func Lookup(name string) (Entry, error) {
	if name == "" {
		name = Default
	}
	if i, ok := byName[name]; ok {
		return registry[i], nil
	}
	return Entry{}, fmt.Errorf("policy: unknown policy %q (available: %s)", name, strings.Join(Names(), ", "))
}

// SchedulerFactory resolves a policy name to a per-run simulator
// constructor. withRedirect wraps the base policy with backbone request
// redirection (meaningful only when the problem defines backbone
// bandwidth).
func SchedulerFactory(name string, withRedirect bool) (func() cluster.Scheduler, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if !withRedirect {
		return e.NewScheduler, nil
	}
	return func() cluster.Scheduler { return redirect.New(e.NewScheduler()) }, nil
}

// ServeNames lists the names serve.NewPolicy accepts: the lock-free
// concurrent policies first, then one "sim:" locked sim-parity adapter per
// registry entry.
func ServeNames() []string {
	names := make([]string, 0, 2*len(registry))
	for _, e := range registry {
		if e.Serve {
			names = append(names, e.Name)
		}
	}
	for _, e := range registry {
		names = append(names, simPrefix+e.Name)
	}
	return names
}

// IsServeName reports whether name is accepted by serve.NewPolicy: a
// lock-free serve policy, a "sim:" adapter over a registered scheduler, or
// the empty default.
func IsServeName(name string) bool {
	if name == "" {
		return true
	}
	if base, ok := strings.CutPrefix(name, simPrefix); ok {
		_, err := Lookup(base)
		return err == nil
	}
	i, ok := byName[name]
	return ok && registry[i].Serve
}

// UnknownServeError is the error serve.NewPolicy returns for a name outside
// ServeNames, listing the accepted names from the registry.
func UnknownServeError(name string) error {
	return fmt.Errorf("policy: unknown serve policy %q (available: %s)", name, strings.Join(ServeNames(), ", "))
}

// List renders the simulator-side registry with one-line descriptions —
// the body of every -list-policies flag.
func List() string {
	var b strings.Builder
	w := 0
	for _, e := range registry {
		if len(e.Name) > w {
			w = len(e.Name)
		}
	}
	for _, e := range registry {
		layers := "sim"
		if e.Serve {
			layers = "sim+serve"
		}
		fmt.Fprintf(&b, "  %-*s  [%s]  %s\n", w, e.Name, layers, e.Description)
	}
	return b.String()
}

// ServeList renders the serve-layer name table with one-line descriptions:
// the lock-free policies, then the locked sim-parity adapters.
func ServeList() string {
	var b strings.Builder
	names := ServeNames()
	w := 0
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	for _, n := range names {
		if base, ok := strings.CutPrefix(n, simPrefix); ok {
			e, _ := Lookup(base)
			fmt.Fprintf(&b, "  %-*s  locked sim-parity adapter: %s\n", w, n, e.Description)
			continue
		}
		e, _ := Lookup(n)
		fmt.Fprintf(&b, "  %-*s  lock-free: %s\n", w, n, e.Description)
	}
	return b.String()
}

// SortedNames returns the registered names sorted alphabetically — stable
// input for tests and docs that must not depend on registration order.
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
