// Package striped models the architectural alternative the paper argues
// against (§1): wide data striping across the cluster's servers, as in
// shared-storage designs and the striping side of Chou et al.'s
// striping-vs-replication comparison. Every video is striped over all N
// servers, so every stream draws 1/N of its bit rate from each server.
//
// Two consequences follow, and this package makes both measurable:
//
//   - Perfect load balance by construction: the cluster behaves as a single
//     pooled link of N·B bits/s, so no request is ever rejected for
//     imbalance — striping beats replication on the rejection metric while
//     everything is healthy.
//   - Catastrophic failures: without parity a single server failure takes
//     every video offline; with parity (RAID-5 across servers) one failure
//     is survived in degraded mode at reconstruction cost, and the usable
//     capacity shrinks by one server's worth.
//
// The simulator mirrors internal/sim's model (Poisson arrivals, fixed
// session lengths, failure injection) on the pooled-capacity cluster, so the
// two architectures can be compared run for run.
package striped

import (
	"fmt"

	"vodcluster/internal/avail"
	"vodcluster/internal/core"
	"vodcluster/internal/metrics"
	"vodcluster/internal/sim"
	"vodcluster/internal/stats"
	"vodcluster/internal/workload"
	"vodcluster/internal/zipf"
)

// Scheme selects the cross-server striping organization.
type Scheme int

const (
	// Plain striping (RAID-0 across servers): full pooled bandwidth and
	// storage, any server failure takes the whole catalog offline.
	Plain Scheme = iota
	// Parity striping (RAID-5 across servers): one server's worth of
	// storage goes to parity, a single failure is survived with the pooled
	// bandwidth halved (reconstruction reads), a second concurrent failure
	// loses the catalog.
	Parity
)

// String names the scheme.
func (s Scheme) String() string {
	if s == Parity {
		return "parity"
	}
	return "plain"
}

// Config describes one striped-cluster simulation run.
type Config struct {
	// Problem supplies the cluster and workload; layouts are meaningless
	// under striping and are not used.
	Problem *core.Problem
	// Scheme selects plain or parity striping.
	Scheme Scheme
	// Failures optionally injects server failures as in sim.Config.
	Failures *avail.FailureModel
	// Duration and Seed as in sim.Config.
	Duration float64
	Seed     int64
}

// Run simulates one peak period on the striped cluster.
func Run(cfg Config) (metrics.Result, error) {
	var zero metrics.Result
	if cfg.Problem == nil {
		return zero, fmt.Errorf("striped: Problem is required")
	}
	p := cfg.Problem
	if err := p.Validate(); err != nil {
		return zero, err
	}
	if p.M() == 0 {
		return zero, fmt.Errorf("striped: empty catalog")
	}
	// Storage feasibility: the pooled (data) storage must hold the catalog.
	dataStorage := p.TotalStorage()
	if cfg.Scheme == Parity {
		dataStorage -= p.TotalStorage() / float64(p.N())
	}
	if p.Catalog.TotalSizeBytes() > dataStorage {
		return zero, fmt.Errorf("striped: catalog needs %.0f bytes; %s striping leaves %.0f",
			p.Catalog.TotalSizeBytes(), cfg.Scheme, dataStorage)
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = p.PeakPeriod
	}
	if p.ArrivalRate <= 0 {
		return zero, fmt.Errorf("striped: problem has no arrival rate")
	}

	eng := sim.NewEngine()
	capacities := make([]float64, p.N())
	for s := range capacities {
		capacities[s] = p.BandwidthOf(s)
	}
	col := metrics.NewCollector(capacities)
	rng := stats.NewRNG(cfg.Seed)
	arrRNG := rng.Derive(1)
	vidRNG := rng.Derive(2)
	sampler, err := zipf.NewWeightedSampler(p.Catalog.Popularities())
	if err != nil {
		return zero, err
	}
	arrivals := workload.Poisson{Lambda: p.ArrivalRate}

	st := newPoolState(p, cfg.Scheme)

	active := map[int]session{}
	nextID := 0

	admit := func(video int) {
		rate := p.Catalog[video].BitRate
		if !st.admit(rate) {
			col.Request(-1, false, false)
			return
		}
		col.Request(0, true, false)
		nextID++
		id := nextID
		active[id] = session{rate: rate}
		if err := eng.ScheduleAfter(p.Catalog[video].Duration, func(float64) {
			if s, ok := active[id]; ok {
				st.release(s.rate)
				delete(active, id)
			}
		}); err != nil {
			panic(err)
		}
	}

	var nextArrival func(now float64)
	nextArrival = func(now float64) {
		t := now + arrivals.Next(arrRNG)
		if t > duration {
			return
		}
		if err := eng.Schedule(t, func(tt float64) {
			admit(sampler.Sample(vidRNG))
			nextArrival(tt)
		}); err != nil {
			panic(err)
		}
	}
	nextArrival(0)

	if cfg.Failures != nil {
		f := *cfg.Failures
		if err := f.Validate(); err != nil {
			return zero, err
		}
		for s := 0; s < p.N(); s++ {
			s := s
			failRNG := rng.Derive(100 + int64(s))
			var scheduleFailure func(now float64)
			scheduleFailure = func(now float64) {
				at := now + f.NextUptime(failRNG)
				if at > duration {
					return
				}
				if err := eng.Schedule(at, func(tt float64) {
					dropped := st.fail(s, active, func(id int) {
						delete(active, id)
					})
					col.Drop(dropped)
					repairAt := tt + f.NextDowntime(failRNG)
					if err := eng.Schedule(repairAt, func(rt float64) {
						st.restore(s)
						scheduleFailure(rt)
					}); err != nil {
						panic(err)
					}
				}); err != nil {
					panic(err)
				}
			}
			scheduleFailure(0)
		}
	}

	sample := 60.0
	var sampleTick func(now float64)
	sampleTick = func(now float64) {
		col.SampleLoads(st.perServerLoads(), len(active))
		if now+sample <= duration {
			if err := eng.ScheduleAfter(sample, sampleTick); err != nil {
				panic(err)
			}
		}
	}
	if err := eng.Schedule(sample, sampleTick); err != nil {
		return zero, err
	}

	eng.RunAll()
	return col.Result(), nil
}

// poolState tracks the pooled bandwidth of a striped cluster.
type poolState struct {
	p      *core.Problem
	scheme Scheme
	usedBW float64 // total client bandwidth in service
	down   int     // failed servers
}

func newPoolState(p *core.Problem, scheme Scheme) *poolState {
	return &poolState{p: p, scheme: scheme}
}

// capacity returns the currently usable pooled bandwidth.
func (st *poolState) capacity() float64 {
	switch {
	case st.down == 0:
		return st.p.TotalBandwidth()
	case st.scheme == Parity && st.down == 1:
		// Degraded reads reconstruct from all survivors: half the
		// survivors' bandwidth is effective (the classic RAID-5 model).
		return (st.p.TotalBandwidth() - st.p.TotalBandwidth()/float64(st.p.N())) / 2
	default:
		return 0 // plain striping with any failure, or a second failure
	}
}

func (st *poolState) admit(rate float64) bool {
	if st.usedBW+rate > st.capacity()+1e-6 {
		return false
	}
	st.usedBW += rate
	return true
}

func (st *poolState) release(rate float64) {
	st.usedBW -= rate
	if st.usedBW < 0 {
		st.usedBW = 0
	}
}

// fail marks a server down. When capacity collapses below the load — always,
// for plain striping — every active session dies; degraded parity mode
// sheds just enough sessions to fit the reduced pool. dropFn removes a
// session from the caller's table.
func (st *poolState) fail(_ int, active map[int]session, dropFn func(id int)) int {
	st.down++
	capacity := st.capacity()
	dropped := 0
	for id, s := range active {
		if st.usedBW <= capacity+1e-6 {
			break
		}
		st.release(s.rate)
		dropFn(id)
		dropped++
	}
	return dropped
}

func (st *poolState) restore(int) {
	if st.down > 0 {
		st.down--
	}
}

// session is one active stream; only its rate matters for accounting.
type session struct{ rate float64 }

// perServerLoads spreads the pooled usage evenly — the defining property of
// striping — for the imbalance metrics (which will report ~0).
func (st *poolState) perServerLoads() []float64 {
	loads := make([]float64, st.p.N())
	per := st.usedBW / float64(st.p.N())
	for i := range loads {
		loads[i] = per
	}
	return loads
}
