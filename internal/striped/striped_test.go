package striped

import (
	"testing"

	"vodcluster/internal/avail"
	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
	"vodcluster/internal/sim"
)

// stripedProblem: 4 servers, saturation 10 req/min, catalog fits easily.
func stripedProblem(t testing.TB, lambdaPerMin float64) *core.Problem {
	t.Helper()
	c, err := core.NewCatalog(50, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         4,
		StoragePerServer:   20 * c[0].SizeBytes(),
		BandwidthPerServer: 0.9 * core.Gbps,
		ArrivalRate:        lambdaPerMin / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSchemeString(t *testing.T) {
	if Plain.String() != "plain" || Parity.String() != "parity" {
		t.Fatal("scheme names changed")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing problem accepted")
	}
	p := stripedProblem(t, 5)
	q := p.Clone()
	q.ArrivalRate = 0
	if _, err := Run(Config{Problem: q}); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
	// Catalog barely fits plain striping but not after parity overhead.
	tight := p.Clone()
	tight.StoragePerServer = 50 * p.Catalog[0].SizeBytes() / 4 // exactly the catalog
	if _, err := Run(Config{Problem: tight, Scheme: Plain, Seed: 1}); err != nil {
		t.Fatalf("plain striping should fit: %v", err)
	}
	if _, err := Run(Config{Problem: tight, Scheme: Parity, Seed: 1}); err == nil {
		t.Fatal("parity overhead ignored")
	}
	bad := &avail.FailureModel{MTBF: 0, MTTR: 1}
	if _, err := Run(Config{Problem: p, Failures: bad}); err == nil {
		t.Fatal("invalid failure model accepted")
	}
}

func TestHealthyStripingIsPerfectlyBalanced(t *testing.T) {
	p := stripedProblem(t, 9) // 90% of saturation
	res, err := Run(Config{Problem: p, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no arrivals")
	}
	if res.Rejected != 0 {
		t.Fatalf("healthy striped cluster rejected %d below capacity", res.Rejected)
	}
	if res.ImbalanceAvg > 1e-9 {
		t.Fatalf("striping must be perfectly balanced, L = %g", res.ImbalanceAvg)
	}
}

func TestStripingRejectsOnlyPastPooledCapacity(t *testing.T) {
	p := stripedProblem(t, 15) // 150% of saturation
	res, err := Run(Config{Problem: p, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectionRate < 0.1 {
		t.Fatalf("overload barely rejected: %.3f", res.RejectionRate)
	}
	// The pool never exceeds its capacity.
	cap := int(p.TotalBandwidth() / (4 * core.Mbps))
	if res.PeakConcurrent > cap {
		t.Fatalf("peak concurrent %d exceeds pooled capacity %d", res.PeakConcurrent, cap)
	}
}

func TestStripingBeatsReplicationWhenHealthy(t *testing.T) {
	// The §1 tradeoff, side 1: near saturation, pooled striping rejects
	// less than a replicated layout under static RR (no imbalance at all).
	p := stripedProblem(t, 10) // exactly saturation
	sres, err := Run(Config{Problem: p, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	budget, err := p.TargetTotalReplicas(1.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := replicate.ZipfInterval{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := sim.Run(sim.Config{Problem: p, Layout: layout, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sres.RejectionRate > rres.RejectionRate+1e-9 {
		t.Fatalf("healthy striping (%.4f) rejected more than replication (%.4f)",
			sres.RejectionRate, rres.RejectionRate)
	}
}

func TestPlainStripingFailsCatastrophically(t *testing.T) {
	// The §1 tradeoff, side 2: with failures, plain striping's whole
	// catalog goes dark while the replicated cluster degrades gracefully.
	p := stripedProblem(t, 8)
	f := &avail.FailureModel{MTBF: 60 * core.Minute, MTTR: 30 * core.Minute}

	sres, err := Run(Config{Problem: p, Scheme: Plain, Failures: f, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	budget, err := p.TargetTotalReplicas(1.5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := replicate.ZipfInterval{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := sim.Run(sim.Config{Problem: p, Layout: layout, Failures: f, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sres.FailureRate <= rres.FailureRate {
		t.Fatalf("plain striping (%.4f) should fail more sessions than replication (%.4f) under failures",
			sres.FailureRate, rres.FailureRate)
	}
	// And a failure while loaded drops *everything* active.
	if sres.Dropped == 0 {
		t.Fatal("no drops despite aggressive failures")
	}
}

func TestParitySurvivesOneFailure(t *testing.T) {
	p := stripedProblem(t, 4) // light load fits even the degraded pool
	f := &avail.FailureModel{MTBF: 45 * core.Minute, MTTR: 45 * core.Minute}
	plain, err := Run(Config{Problem: p, Scheme: Plain, Failures: f, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	parity, err := Run(Config{Problem: p, Scheme: Parity, Failures: f, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if parity.FailureRate >= plain.FailureRate {
		t.Fatalf("parity striping (%.4f) should beat plain (%.4f) under failures",
			parity.FailureRate, plain.FailureRate)
	}
}

func TestDeterministic(t *testing.T) {
	p := stripedProblem(t, 9)
	a, err := Run(Config{Problem: p, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Problem: p, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.Rejected != b.Rejected {
		t.Fatal("striped run not deterministic")
	}
}
