// Package report renders experiment results as fixed-width text tables,
// ASCII line charts, and CSV — the three formats the benchmark harness uses
// to reproduce the paper's figures on a terminal.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v unless it is a float64, which renders with %.4g.
func (t *Table) AddRowf(cells ...any) {
	str := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			str[i] = fmt.Sprintf("%.4g", v)
		default:
			str[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(str...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (cells containing commas or
// quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
