package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders several series as an ASCII scatter/line chart — enough to
// eyeball whether the reproduced curves have the paper's shape without
// leaving the terminal.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns; 0 means 64
	Height int // plot rows; 0 means 16
	series []Series
}

// Add appends a series. Points with NaN coordinates are skipped at render
// time.
func (c *Chart) Add(s Series) { c.series = append(c.series, s) }

// markers cycles per-series plot glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Fprint renders the chart to w.
func (c *Chart) Fprint(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if !any {
		_, err := fmt.Fprintln(w, c.Title+" (no data)")
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if ymin > 0 && ymin < 0.25*(ymax-ymin) {
		ymin = 0 // anchor near-zero baselines at zero for readability
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1)))
			row = height - 1 - row
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	for r, rowBytes := range grid {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%10.3g |%s\n", yv, string(rowBytes)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s  %-*.3g%*.3g\n", "", width/2, xmin, width-width/2, xmax); err != nil {
		return err
	}
	legend := make([]string, 0, len(c.series))
	for si, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if len(legend) > 0 {
		if _, err := fmt.Fprintln(w, "  legend: "+strings.Join(legend, " | ")); err != nil {
			return err
		}
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "  x: %s  y: %s\n", c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	return nil
}

// String renders the chart.
func (c *Chart) String() string {
	var b strings.Builder
	_ = c.Fprint(&b)
	return b.String()
}
