package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-longer", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+rule+2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("rule missing: %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset in each row.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") || !strings.HasPrefix(lines[3][idx:], "22") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows() = %d", tb.Rows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("1")                // short row: padded
	tb.AddRow("1", "2", "3", "4") // long row: truncated
	out := tb.String()
	if strings.Contains(out, "4") {
		t.Fatalf("extra cell not dropped:\n%s", out)
	}
}

func TestTableAddRowfFormatting(t *testing.T) {
	tb := NewTable("x", "y", "z")
	tb.AddRowf(3, 0.123456789, "s")
	out := tb.String()
	if !strings.Contains(out, "0.1235") {
		t.Fatalf("float not %%.4g formatted:\n%s", out)
	}
	if !strings.Contains(out, "3") || !strings.Contains(out, "s") {
		t.Fatalf("cells missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("name", "note")
	tb.AddRow("plain", "ok")
	tb.AddRow("with,comma", `say "hi"`)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "name,note\n") {
		t.Fatalf("header wrong: %q", got)
	}
	if !strings.Contains(got, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %q", got)
	}
	if !strings.Contains(got, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %q", got)
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := &Chart{Title: "demo", XLabel: "x", YLabel: "y", Width: 20, Height: 5}
	c.Add(Series{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 5, 10}})
	c.Add(Series{Name: "down", X: []float64{0, 1, 2}, Y: []float64{10, 5, 0}})
	out := c.String()
	if !strings.Contains(out, "demo") {
		t.Fatalf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "x: x  y: y") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("marks missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "void"}
	out := c.String()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output: %q", out)
	}
	c.Add(Series{Name: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}})
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("all-NaN series should render as no data")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{Width: 10, Height: 4}
	c.Add(Series{Name: "flat", X: []float64{1, 2}, Y: []float64{3, 3}})
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series lost:\n%s", out)
	}
}

func TestChartSkipsNaNPoints(t *testing.T) {
	c := &Chart{Width: 10, Height: 4}
	c.Add(Series{Name: "holes", X: []float64{0, math.NaN(), 2}, Y: []float64{1, 5, 3}})
	out := c.String()
	if strings.Contains(out, "no data") {
		t.Fatalf("valid points dropped:\n%s", out)
	}
}

func TestChartDefaults(t *testing.T) {
	c := &Chart{}
	c.Add(Series{Name: "d", X: []float64{0, 1}, Y: []float64{0, 1}})
	lines := strings.Split(c.String(), "\n")
	// Default height 16 plot rows plus axis and footer lines.
	plotRows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotRows++
		}
	}
	if plotRows != 16 {
		t.Fatalf("default height produced %d plot rows", plotRows)
	}
}
