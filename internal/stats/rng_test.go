package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("same seed diverged at draw %d: %g vs %g", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 coincided on %d of 100 draws", same)
	}
}

func TestDeriveDeterministicAndIndependent(t *testing.T) {
	root := NewRNG(7)
	a1 := NewRNG(7).Derive(3)
	a2 := root.Derive(3)
	for i := 0; i < 50; i++ {
		if a1.Float64() != a2.Float64() {
			t.Fatal("Derive is not deterministic")
		}
	}
	// Different streams must differ from each other and the parent.
	b := NewRNG(7).Derive(4)
	c := NewRNG(7)
	differs := false
	for i := 0; i < 20; i++ {
		if b.Float64() != c.Float64() {
			differs = true
		}
	}
	if !differs {
		t.Fatal("derived stream tracks its parent")
	}
}

func TestDeriveNearbySeedsDecorrelated(t *testing.T) {
	// SplitMix64 mixing should make streams from adjacent labels disagree.
	root := NewRNG(100)
	s1 := root.Derive(1)
	s2 := root.Derive(2)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Float64() == s2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent derived streams coincide on %d of 100 draws", same)
	}
}

func TestSeedAccessor(t *testing.T) {
	if got := NewRNG(123).Seed(); got != 123 {
		t.Fatalf("Seed() = %d, want 123", got)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRNG(5)
	const rate = 2.0
	var sum Summary
	for i := 0; i < 200000; i++ {
		sum.Add(rng.Exponential(rate))
	}
	if got, want := sum.Mean(), 1/rate; math.Abs(got-want) > 0.01 {
		t.Fatalf("exponential mean = %g, want ≈ %g", got, want)
	}
	if sum.Min() < 0 {
		t.Fatalf("exponential produced negative value %g", sum.Min())
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestNormalMoments(t *testing.T) {
	rng := NewRNG(9)
	var sum Summary
	for i := 0; i < 200000; i++ {
		sum.Add(rng.Normal(10, 3))
	}
	if math.Abs(sum.Mean()-10) > 0.05 {
		t.Fatalf("normal mean = %g, want ≈ 10", sum.Mean())
	}
	if math.Abs(sum.StdDev()-3) > 0.05 {
		t.Fatalf("normal sd = %g, want ≈ 3", sum.StdDev())
	}
}

func TestBernoulli(t *testing.T) {
	rng := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if rng.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) hit rate %g", p)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := NewRNG(13)
	for _, mean := range []float64{0.5, 3, 40, 700} {
		var sum Summary
		for i := 0; i < 20000; i++ {
			sum.Add(float64(rng.Poisson(mean)))
		}
		if math.Abs(sum.Mean()-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%g) sample mean %g", mean, sum.Mean())
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	rng := NewRNG(17)
	if got := rng.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := rng.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", got)
	}
	for i := 0; i < 1000; i++ {
		if rng.Poisson(600) < 0 {
			t.Fatal("Poisson normal approximation went negative")
		}
	}
}

func TestPermAndShuffle(t *testing.T) {
	rng := NewRNG(19)
	perm := rng.Perm(10)
	seen := make([]bool, 10)
	for _, v := range perm {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", perm)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestIntnRange(t *testing.T) {
	rng := NewRNG(23)
	for i := 0; i < 1000; i++ {
		if v := rng.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}
