package stats

import (
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99} {
		h.Add(x)
	}
	wantBins := []int{2, 1, 1, 0, 1}
	for i, want := range wantBins {
		if got := h.Count(i); got != want {
			t.Fatalf("bin %d = %d, want %d", i, got, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Bins() != 5 {
		t.Fatalf("bins = %d", h.Bins())
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-0.5)
	h.Add(1.0) // hi is exclusive
	h.Add(2)
	h.Add(0.5)
	if h.Underflow() != 1 {
		t.Fatalf("underflow = %d", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	s := h.String()
	if !strings.Contains(s, "underflow: 1") || !strings.Contains(s, "overflow: 2") {
		t.Fatalf("String() missing flow counts: %q", s)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("center of bin 0 = %g, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("center of bin 4 = %g, want 9", got)
	}
}

func TestHistogramEdgeNearHi(t *testing.T) {
	// A value a hair below Hi must land in the last bin, not panic.
	h := NewHistogram(0, 1, 3)
	h.Add(0.9999999999999999)
	if h.Count(2)+h.Overflow() != 1 {
		t.Fatal("value near Hi lost")
	}
}

func TestHistogramConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
		func() { NewHistogram(2, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
