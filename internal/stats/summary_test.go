package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero Summary not empty")
	}
	s.AddN(2, 4, 4, 4, 5, 5, 7, 9)
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %g, want 5", got)
	}
	// Population variance is 4; the unbiased sample variance is 32/7.
	if got, want := s.Variance(), 32.0/7; !almostEqual(got, want, 1e-12) {
		t.Fatalf("variance = %g, want %g", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	if got := s.Sum(); got != 40 {
		t.Fatalf("sum = %g", got)
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestSummarySingleValue(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatal("variance of single observation must be 0")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("min/max of single observation wrong")
	}
	if s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("stderr of single observation must be 0")
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	rng := NewRNG(31)
	xs := make([]float64, 500)
	var s Summary
	for i := range xs {
		xs[i] = rng.Normal(100, 15)
		s.Add(xs[i])
	}
	if !almostEqual(s.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("welford mean %g vs naive %g", s.Mean(), Mean(xs))
	}
	if !almostEqual(s.Variance(), Variance(xs), 1e-10) {
		t.Fatalf("welford variance %g vs naive %g", s.Variance(), Variance(xs))
	}
	if !almostEqual(s.StdDev(), StdDev(xs), 1e-10) {
		t.Fatalf("welford sd %g vs naive %g", s.StdDev(), StdDev(xs))
	}
}

// TestSummaryMergeProperty: merging two summaries must equal summarizing the
// concatenation, for arbitrary inputs.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var sa, sb, sab Summary
		for _, x := range a {
			sa.Add(x)
			sab.Add(x)
		}
		for _, x := range b {
			sb.Add(x)
			sab.Add(x)
		}
		sa.Merge(&sb)
		if sa.N() != sab.N() {
			return false
		}
		if sa.N() == 0 {
			return true
		}
		return almostEqual(sa.Mean(), sab.Mean(), 1e-9) &&
			almostEqual(sa.Variance(), sab.Variance(), 1e-6) &&
			sa.Min() == sab.Min() && sa.Max() == sab.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.AddN(1, 2, 3)
	before := a
	a.Merge(&b)
	if a != before {
		t.Fatal("merging an empty summary changed the receiver")
	}
	b.Merge(&a)
	if b.N() != 3 || b.Mean() != 2 {
		t.Fatal("merging into an empty summary did not copy")
	}
}

func TestCI95(t *testing.T) {
	var s Summary
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 2)) // mean 0.5, sd ≈ 0.5025
	}
	ci := s.CI95()
	if ci <= 0 || ci > 0.2 {
		t.Fatalf("CI95 = %g, want small positive", ci)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated median = %g, want 1.5", got)
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single-element quantile = %g", got)
	}
	// Quantile must not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %g, %g", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestSliceHelpersEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice helpers must return 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("variance of one element must be 0")
	}
}
