package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into fixed-width bins over [Lo, Hi).
// Values below Lo land in an underflow bucket and values at or above Hi in an
// overflow bucket, so no observation is ever silently dropped.
type Histogram struct {
	Lo, Hi    float64
	bins      []int
	underflow int
	overflow  int
	total     int
	sum       float64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.bins) { // guard against floating-point edge
			i--
		}
		h.bins[i]++
	}
}

// Count returns the number of observations in bin i.
func (h *Histogram) Count(i int) int { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Total returns the total number of observations, including under/overflow.
func (h *Histogram) Total() int { return h.total }

// Underflow returns the count of observations below Lo.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow returns the count of observations at or above Hi.
func (h *Histogram) Overflow() int { return h.overflow }

// Sum returns the sum of all observations, including under/overflow.
func (h *Histogram) Sum() float64 { return h.sum }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.bins))
	return h.Lo + w*(float64(i)+0.5)
}

// BinUpper returns the exclusive upper edge of bin i — the `le` bound a
// cumulative (Prometheus-style) rendering labels the bucket with.
func (h *Histogram) BinUpper(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.bins))
	return h.Lo + w*float64(i+1)
}

// String renders a compact ASCII bar chart of the histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	peak := 0
	for _, c := range h.bins {
		if c > peak {
			peak = c
		}
	}
	const width = 40
	for i, c := range h.bins {
		bar := 0
		if peak > 0 {
			bar = int(math.Round(float64(c) / float64(peak) * width))
		}
		fmt.Fprintf(&b, "%10.4g | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "underflow: %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow: %d\n", h.overflow)
	}
	return b.String()
}
