// Package stats provides deterministic random-number utilities and summary
// statistics used throughout the VoD cluster simulator.
//
// All stochastic components in this repository draw from an explicitly seeded
// *RNG so that every simulation run is reproducible bit-for-bit. Independent
// substreams (e.g. one per simulation replication) are derived with Derive,
// which mixes the parent seed with a stream label using SplitMix64 so that
// nearby seeds do not produce correlated streams.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a seeded source of randomness. It wraps math/rand.Rand and adds the
// distribution samplers the simulator needs. RNG is not safe for concurrent
// use; derive one RNG per goroutine instead.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(mix64(uint64(seed))))}
}

// Seed returns the seed this RNG was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Derive returns a new independent RNG for the given stream label.
// Deriving the same (seed, stream) pair always yields the same stream.
func (g *RNG) Derive(stream int64) *RNG {
	mixed := mix64(uint64(g.seed)*0x9E3779B97F4A7C15 + uint64(stream) + 1)
	return &RNG{seed: int64(mixed), r: rand.New(rand.NewSource(int64(mixed & math.MaxInt64)))}
}

// mix64 is the SplitMix64 finalizer; it decorrelates sequential seeds.
func mix64(z uint64) int64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & math.MaxInt64)
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Exponential returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential rate must be positive")
	}
	return g.r.ExpFloat64() / rate
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 500.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		n := int(math.Round(g.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
