package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming summary statistics using Welford's online
// algorithm, so mean and variance are numerically stable even for long runs.
// The zero value is an empty Summary ready for use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddN incorporates every value of xs.
func (s *Summary) AddN(xs ...float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Sum returns n * mean.
func (s *Summary) Sum() float64 { return float64(s.n) * s.mean }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Merge combines another summary into s (parallel Welford merge).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// String reports the summary in a compact human-readable form.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g", s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest elements of xs.
// It panics on an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice or a
// q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile q out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
