package exp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
)

// lockstepProblem is a small saturable cluster where least-loaded and static
// round-robin genuinely disagree: 3 servers, 4 videos, hot title everywhere.
func lockstepProblem(t *testing.T) (*core.Problem, *core.Layout) {
	t.Helper()
	catalog, err := core.NewCatalog(4, 0.75, 4e6, 600)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            catalog,
		NumServers:         3,
		StoragePerServer:   1e12,
		BandwidthPerServer: 20e6,
		ArrivalRate:        0.5, // saturating: rejections happen, policies matter
		PeakPeriod:         600,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	layout := &core.Layout{
		Replicas: []int{3, 1, 1, 1},
		Servers:  [][]int{{0, 1, 2}, {0}, {1}, {2}},
	}
	return p, layout
}

func lockstepCandidates() []Candidate {
	return []Candidate{
		{Name: "static-rr", NewScheduler: func() cluster.Scheduler { return cluster.StaticRoundRobin{} }},
		{Name: "least-loaded", NewScheduler: func() cluster.Scheduler { return cluster.LeastLoaded{} }},
	}
}

func TestLockstepReferenceSelfRegretIsZero(t *testing.T) {
	p, layout := lockstepProblem(t)
	ls := &Lockstep{
		Problem: p, Layout: layout,
		Candidates: []Candidate{
			{Name: "ref", NewScheduler: func() cluster.Scheduler { return cluster.StaticRoundRobin{} }},
			{Name: "self", NewScheduler: func() cluster.Scheduler { return cluster.StaticRoundRobin{} }},
		},
		Reference: "ref",
		Runs:      3, Seed: 42,
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if len(c.Divergences) != 0 {
			t.Fatalf("candidate %q diverged %d times from an identical policy", c.Name, len(c.Divergences))
		}
		for rep, total := range c.RepRegret {
			if total != 0 {
				t.Fatalf("candidate %q has regret %g at replication %d", c.Name, total, rep)
			}
		}
		for rep, curve := range c.Curves {
			for k, v := range curve {
				if v != 0 {
					t.Fatalf("candidate %q curve nonzero (%g) at rep %d seq %d", c.Name, v, rep, k)
				}
			}
		}
	}
	if res.Ref().Regret.Mean() != 0 || res.Ref().Regret.CI95() != 0 {
		t.Fatal("reference self-regret summary is not exactly zero")
	}
}

func TestLockstepFindsDivergences(t *testing.T) {
	p, layout := lockstepProblem(t)
	ls := &Lockstep{
		Problem: p, Layout: layout,
		Candidates: lockstepCandidates(),
		Reference:  "static-rr",
		Runs:       2, Seed: 7,
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	cand := &res.Candidates[1]
	if len(cand.Divergences) == 0 {
		t.Fatal("least-loaded never diverged from static round-robin on a saturating workload")
	}
	first := cand.FirstDivergence()
	if first == nil || first.Why == "" {
		t.Fatal("first divergence carries no explanation")
	}
	// Divergences are ordered by (replication, sequence).
	prevRep, prevSeq := -1, -1
	for _, d := range cand.Divergences {
		if d.Rep < prevRep || (d.Rep == prevRep && d.Seq <= prevSeq) {
			t.Fatalf("divergences out of order: (%d,%d) after (%d,%d)", d.Rep, d.Seq, prevRep, prevSeq)
		}
		prevRep, prevSeq = d.Rep, d.Seq
		if d.Ref.Seq != d.Got.Seq {
			t.Fatalf("divergence pairs misaligned decisions: ref seq %d vs got seq %d", d.Ref.Seq, d.Got.Seq)
		}
	}
	// The reference candidate itself must be divergence-free with zero regret.
	ref := res.Ref()
	if len(ref.Divergences) != 0 || ref.Regret.Mean() != 0 {
		t.Fatalf("reference vs itself: %d divergences, regret %g", len(ref.Divergences), ref.Regret.Mean())
	}
	// Curves end at the per-replication totals.
	for rep, curve := range cand.Curves {
		if len(curve) != res.Arrivals[rep] {
			t.Fatalf("rep %d curve has %d points for %d arrivals", rep, len(curve), res.Arrivals[rep])
		}
		if got := curve[len(curve)-1]; got != cand.RepRegret[rep] {
			t.Fatalf("rep %d curve ends at %g, total regret %g", rep, got, cand.RepRegret[rep])
		}
	}
}

func TestLockstepWorkerCountIndependent(t *testing.T) {
	p, layout := lockstepProblem(t)
	run := func(workers int) *LockstepResult {
		ls := &Lockstep{
			Problem: p, Layout: layout,
			Candidates: lockstepCandidates(),
			Runs:       3, Seed: 11, Workers: workers,
		}
		res, err := ls.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{4, 16} {
		got := run(workers)
		for ci := range base.Candidates {
			b, g := &base.Candidates[ci], &got.Candidates[ci]
			if !reflect.DeepEqual(b.Journals, g.Journals) {
				t.Fatalf("candidate %q journals differ between 1 and %d workers", b.Name, workers)
			}
			if !reflect.DeepEqual(b.Curves, g.Curves) {
				t.Fatalf("candidate %q regret curves differ between 1 and %d workers", b.Name, workers)
			}
			if !reflect.DeepEqual(b.Divergences, g.Divergences) {
				t.Fatalf("candidate %q divergences differ between 1 and %d workers", b.Name, workers)
			}
		}
	}
}

func TestLockstepRepeatedRunsIdentical(t *testing.T) {
	p, layout := lockstepProblem(t)
	run := func() *LockstepResult {
		ls := &Lockstep{
			Problem: p, Layout: layout,
			Candidates: lockstepCandidates(),
			Runs:       2, Seed: 5,
		}
		res, err := ls.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for ci := range a.Candidates {
		if !reflect.DeepEqual(a.Candidates[ci].Journals, b.Candidates[ci].Journals) {
			t.Fatalf("candidate %q journals differ across repeated runs", a.Candidates[ci].Name)
		}
	}
}

func TestLockstepSharedTraceAcrossCandidates(t *testing.T) {
	p, layout := lockstepProblem(t)
	ls := &Lockstep{
		Problem: p, Layout: layout,
		Candidates: lockstepCandidates(),
		Runs:       2, Seed: 3,
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Journals align: same length, same (time, video) stream per replication.
	for rep := 0; rep < 2; rep++ {
		a := res.Candidates[0].Journals[rep]
		b := res.Candidates[1].Journals[rep]
		if len(a) != len(b) || len(a) != res.Arrivals[rep] {
			t.Fatalf("rep %d journal lengths %d vs %d (arrivals %d)", rep, len(a), len(b), res.Arrivals[rep])
		}
		for k := range a {
			if a[k].Time != b[k].Time || a[k].Video != b[k].Video || a[k].Seq != b[k].Seq {
				t.Fatalf("rep %d decision %d requests differ across candidates", rep, k)
			}
		}
	}
}

func TestLockstepUnknownReference(t *testing.T) {
	p, layout := lockstepProblem(t)
	ls := &Lockstep{
		Problem: p, Layout: layout,
		Candidates: lockstepCandidates(),
		Reference:  "no-such-policy",
		Runs:       1, Seed: 1,
	}
	if _, err := ls.Run(); err == nil {
		t.Fatal("unknown reference accepted")
	}
}

func TestLockstepReportAndJournal(t *testing.T) {
	p, layout := lockstepProblem(t)
	ls := &Lockstep{
		Problem: p, Layout: layout,
		Candidates: lockstepCandidates(),
		Runs:       2, Seed: 9,
	}
	res, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	em := &Emitter{Out: &out, CSVDir: t.TempDir()}
	if err := res.Report(em, 50); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static-rr (ref)", "least-loaded", "regret_mean", "divergences"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("report output missing %q:\n%s", want, out.String())
		}
	}

	var buf bytes.Buffer
	if err := res.WriteJournal(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reference  string `json:"reference"`
		Candidates []struct {
			Name        string `json:"name"`
			Divergences []struct {
				Why string `json:"why"`
			} `json:"divergences"`
		} `json:"candidates"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("journal is not valid JSON: %v", err)
	}
	if doc.Reference != "static-rr" {
		t.Fatalf("journal reference %q", doc.Reference)
	}
	if len(doc.Candidates) != 2 {
		t.Fatalf("journal has %d candidates", len(doc.Candidates))
	}
	if len(doc.Candidates[0].Divergences) != 0 {
		t.Fatal("reference candidate journals divergences against itself")
	}
	if len(doc.Candidates[1].Divergences) == 0 {
		t.Fatal("candidate journals no divergences")
	}
}
