// Package exp is the shared experiment harness: every figure, CLI sweep,
// example, and benchmark in this repository is a sweep — over arrival rate,
// replication degree, popularity skew, or a policy combination — evaluated
// at several points with replicated simulation runs per point. exp owns that
// loop once: a Sweep evaluates a grid of Series × points in parallel with
// bounded workers and per-point derived seeds, aggregates through
// internal/metrics, and renders through one table/CSV/chart emitter.
//
// Determinism: the result grid depends only on (Series, Xs, Runs, Seed) —
// never on Workers or goroutine scheduling. Every (point, replication) cell
// derives its seed from the point's base seed exactly the way sim.RunMany
// derives replication seeds, so a harness sweep reproduces the sequential
// loops it replaced bit for bit.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"vodcluster/internal/metrics"
	"vodcluster/internal/sim"
	"vodcluster/internal/stats"
)

// pointSeedStride spaces the default per-point base seeds so neighbouring
// points draw visibly unrelated randomness even before SplitMix64 mixing.
const pointSeedStride = 1000003

// Series is one curve of a sweep: a name (the legend and table-column
// label) and a constructor that materializes the simulation for one swept
// x-value. Config runs on the coordinating goroutine, so it may capture
// shared state (a pre-built problem/layout) without synchronization; the
// returned sim.Config must be self-contained the way sim.RunMany requires
// (factories for scheduler and controller, no shared mutable instances).
type Series struct {
	Name   string
	Config func(x float64) (sim.Config, error)
}

// Point is one evaluated cell of a sweep: the swept value, the base seed
// the cell's replications derived from, and the aggregated results.
type Point struct {
	// X is the swept value (e.g. arrival rate in requests/minute).
	X float64
	// Seed is the point's base seed; replication r ran with the seed
	// stats.NewRNG(Seed).Derive(r).Seed().
	Seed int64
	// Agg aggregates the replicated runs at this point in run order.
	Agg *metrics.Aggregate
	// Results holds the per-replication results in run order.
	Results []metrics.Result
}

// Sweep evaluates |Series| × |Xs| points with Runs replications each.
type Sweep struct {
	// Xs are the swept values, one table row / chart x-position each.
	Xs []float64
	// Series are the curves; every series is evaluated at every x.
	Series []Series
	// Runs is the number of simulation replications per point.
	Runs int
	// Seed is the master seed. Points at the same x share base seeds
	// across series (common random numbers), so series compare under
	// identical workloads — the convention the paper's figures use.
	Seed int64
	// Workers bounds the parallel simulations across the whole grid —
	// points and series evaluate concurrently, not just within-point
	// replications. 0 means GOMAXPROCS; 1 forces sequential evaluation.
	Workers int
	// PointSeed overrides the base seed for x-index i; nil means
	// Seed + i*1000003 (the historical sweep convention). Experiments
	// whose points must share one seed (e.g. a degree sweep at fixed
	// workload) supply func(int) int64 { return seed }.
	PointSeed func(i int) int64
}

// RunError reports the first failed simulation of a sweep, identifying the
// cell — in deterministic (series, x, replication) order, independent of
// worker scheduling. Callers that wrap sweep errors with their own context
// recover the failing point via errors.As.
type RunError struct {
	// Series is the failing series' name.
	Series string
	// X is the swept value the failure occurred at.
	X float64
	// Rep is the failing replication index at that point.
	Rep int
	// Err is the underlying simulation error.
	Err error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("exp: series %q at x=%g run %d: %v", e.Series, e.X, e.Rep, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// Run evaluates the grid and returns it as [series][x]Point.
func (s *Sweep) Run() ([][]Point, error) {
	if len(s.Xs) == 0 {
		return nil, fmt.Errorf("exp: sweep has no points")
	}
	if len(s.Series) == 0 {
		return nil, fmt.Errorf("exp: sweep has no series")
	}
	if s.Runs <= 0 {
		return nil, fmt.Errorf("exp: need at least one run per point, got %d", s.Runs)
	}

	pointSeed := s.PointSeed
	if pointSeed == nil {
		pointSeed = func(i int) int64 { return s.Seed + int64(i)*pointSeedStride }
	}

	// Materialize every cell's configuration up front, on this goroutine:
	// construction errors surface before any simulation starts, and workers
	// never run caller code concurrently.
	type cell struct {
		cfg  sim.Config
		seed int64 // base seed; replications derive from it
	}
	cells := make([][]cell, len(s.Series))
	for si, ser := range s.Series {
		if ser.Config == nil {
			return nil, fmt.Errorf("exp: series %q has no Config", ser.Name)
		}
		cells[si] = make([]cell, len(s.Xs))
		for xi, x := range s.Xs {
			cfg, err := ser.Config(x)
			if err != nil {
				return nil, fmt.Errorf("exp: series %q at x=%g: %w", ser.Name, x, err)
			}
			cells[si][xi] = cell{cfg: cfg, seed: pointSeed(xi)}
		}
	}

	// One flat job per (series, x, replication); results land in a dense
	// grid indexed by the job's coordinates, so aggregation order — and
	// therefore the result — is independent of worker scheduling.
	type job struct{ si, xi, rep int }
	jobs := make([]job, 0, len(s.Series)*len(s.Xs)*s.Runs)
	for si := range s.Series {
		for xi := range s.Xs {
			for rep := 0; rep < s.Runs; rep++ {
				jobs = append(jobs, job{si, xi, rep})
			}
		}
	}
	results := make([][][]metrics.Result, len(s.Series))
	errs := make([][][]error, len(s.Series))
	for si := range s.Series {
		results[si] = make([][]metrics.Result, len(s.Xs))
		errs[si] = make([][]error, len(s.Xs))
		for xi := range s.Xs {
			results[si][xi] = make([]metrics.Result, s.Runs)
			errs[si][xi] = make([]error, s.Runs)
		}
	}

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				c := cells[j.si][j.xi]
				runCfg := c.cfg
				runCfg.Seed = stats.NewRNG(c.seed).Derive(int64(j.rep)).Seed()
				results[j.si][j.xi][j.rep], errs[j.si][j.xi][j.rep] = sim.Run(runCfg)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	grid := make([][]Point, len(s.Series))
	for si := range s.Series {
		grid[si] = make([]Point, len(s.Xs))
		for xi := range s.Xs {
			for rep, err := range errs[si][xi] {
				if err != nil {
					return nil, &RunError{Series: s.Series[si].Name, X: s.Xs[xi], Rep: rep, Err: err}
				}
			}
			agg := &metrics.Aggregate{}
			for _, res := range results[si][xi] {
				agg.Add(res)
			}
			grid[si][xi] = Point{
				X:       s.Xs[xi],
				Seed:    cells[si][xi].seed,
				Agg:     agg,
				Results: results[si][xi],
			}
		}
	}
	return grid, nil
}

// Metric extracts one plotted value from an evaluated point.
type Metric func(Point) float64

// RejectionPct is the mean rejection rate in percent — Figures 4 and 5.
func RejectionPct(p Point) float64 { return 100 * p.Agg.RejectionRate.Mean() }

// FailurePct is the mean session failure rate in percent.
func FailurePct(p Point) float64 { return 100 * p.Agg.FailureRate.Mean() }

// ImbalanceCapPct is the mean capacity-normalized load imbalance in
// percent — Figure 6's L.
func ImbalanceCapPct(p Point) float64 { return 100 * p.Agg.ImbalanceCapAvg.Mean() }
