package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/metrics"
	"vodcluster/internal/report"
	"vodcluster/internal/sim"
	"vodcluster/internal/stats"
	"vodcluster/internal/workload"
	"vodcluster/internal/zipf"
)

// Candidate is one policy under counterfactual comparison: a name and a
// scheduler factory, the same self-containment contract as sim.Config's
// NewScheduler.
type Candidate struct {
	Name         string
	NewScheduler func() cluster.Scheduler
}

// Lockstep replays the same arrival trace through several scheduling
// policies and scores every candidate decision-by-decision against a
// reference policy. All candidates at replication r run under the same seed
// (common random numbers): identical arrivals, identical retry/failure
// randomness, and — for randomized policies — identical per-decision RNG
// streams, so any difference between two journals is attributable to the
// policies alone. Decision journals from different policies align on the
// KindArrival sequence number, which the simulator assigns one per arriving
// request in arrival order regardless of policy.
type Lockstep struct {
	// Problem and Layout define the cluster every candidate runs on.
	Problem *core.Problem
	Layout  *core.Layout
	// Candidates are the compared policies; at least two distinct entries
	// (or one compared against itself) make a meaningful comparison.
	Candidates []Candidate
	// Reference names the candidate regret is measured against; "" means
	// the first candidate. The reference's regret against itself is
	// identically zero — a harness self-check.
	Reference string
	// Trace, when non-nil, is replayed for every replication (seeds still
	// vary the retry/failure/decision randomness). Nil generates one trace
	// per replication from the replication seed, mirroring the simulator's
	// own arrival streams exactly.
	Trace *workload.Trace
	// Duration bounds generated traces in seconds; 0 means
	// Problem.PeakPeriod.
	Duration float64
	// Runs is the number of replications. Runs > 1 gives the paired
	// regret summary a confidence interval.
	Runs int
	// Seed is the master seed; replication r runs under
	// stats.NewRNG(Seed).Derive(r).Seed(), the sim.RunMany convention.
	Seed int64
	// Workers bounds concurrent simulations across the (candidate,
	// replication) grid. 0 means GOMAXPROCS; the result is bit-identical
	// for every worker count.
	Workers int
	// Base is an optional base simulation configuration (resilience
	// policy, stream limit, warmup, sampling) applied identically to every
	// candidate. The harness overrides Problem, Layout, NewScheduler,
	// Trace, Duration, Seed, and NewHooks.
	Base sim.Config
}

// Divergence is one decision where a candidate chose differently from the
// reference over the same trace and seed.
type Divergence struct {
	// Rep is the replication the divergence occurred in.
	Rep int `json:"rep"`
	// Seq is the arrival-decision sequence number both journals align on.
	Seq int `json:"seq"`
	// Time and Video locate the request.
	Time  float64 `json:"t"`
	Video int     `json:"video"`
	// Why classifies the difference: "outcome: ...", "server: ...", or
	// "route: ..." (see sim.Decision.Divergent).
	Why string `json:"why"`
	// Ref and Got are the reference's and the candidate's decisions.
	Ref sim.Decision `json:"ref"`
	Got sim.Decision `json:"got"`
}

// CandidateRun is one candidate's evaluated side of a lockstep comparison.
type CandidateRun struct {
	// Name is the candidate's name.
	Name string
	// Results are the per-replication simulation results in run order.
	Results []metrics.Result
	// Journals are the per-replication arrival-decision journals, aligned
	// by Seq with every other candidate's journal of the same replication.
	Journals [][]sim.Decision
	// Divergences lists every decision where this candidate differed from
	// the reference, in (replication, sequence) order.
	Divergences []Divergence
	// Curves are the per-replication cumulative regret curves: Curves[r][k]
	// is the candidate's regret against the reference summed over arrival
	// decisions 0..k of replication r.
	Curves [][]float64
	// RepRegret is the total regret per replication — the paired
	// differences the summary is built from.
	RepRegret []float64
	// Regret summarizes RepRegret; Mean() ± CI95() is the paired-difference
	// estimate of how many more requests this candidate rejects than the
	// reference per replication.
	Regret stats.Summary
}

// FirstDivergence returns the earliest divergence in (replication, sequence)
// order, or nil when the candidate decided identically to the reference.
func (c *CandidateRun) FirstDivergence() *Divergence {
	if len(c.Divergences) == 0 {
		return nil
	}
	return &c.Divergences[0]
}

// LockstepResult is the full outcome of a lockstep comparison.
type LockstepResult struct {
	// Candidates are the evaluated sides, in Lockstep.Candidates order.
	Candidates []CandidateRun
	// Reference indexes the reference candidate within Candidates.
	Reference int
	// Arrivals is the per-replication arrival count, identical across
	// candidates by construction.
	Arrivals []int
	// Seed echoes the master seed for self-describing output.
	Seed int64
}

// Ref returns the reference candidate's run.
func (r *LockstepResult) Ref() *CandidateRun { return &r.Candidates[r.Reference] }

// generateTrace materializes the arrival trace replication rep would see if
// the simulator generated arrivals online at repSeed: the same substreams
// (1 = gaps, 2 = video choice), the same Poisson process, the same
// popularity-weighted sampler. Replaying it under repSeed therefore
// reproduces an online run of the same seed bit for bit.
func (ls *Lockstep) generateTrace(repSeed int64, duration float64) (*workload.Trace, error) {
	if ls.Problem.ArrivalRate <= 0 {
		return nil, fmt.Errorf("exp: lockstep needs a trace or a problem arrival rate")
	}
	arrivals := workload.Poisson{Lambda: ls.Problem.ArrivalRate}
	sampler, err := zipf.NewWeightedSampler(ls.Problem.Catalog.Popularities())
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(repSeed)
	arrRNG := rng.Derive(1)
	vidRNG := rng.Derive(2)
	tr := &workload.Trace{Meta: workload.TraceMeta{
		Videos:   ls.Problem.M(),
		Process:  arrivals.Name(),
		MeanRate: arrivals.Rate(),
		Duration: duration,
		Seed:     repSeed,
	}}
	t := 0.0
	for {
		t += arrivals.Next(arrRNG)
		if t > duration {
			break
		}
		tr.Requests = append(tr.Requests, workload.Request{Time: t, Video: sampler.Sample(vidRNG)})
	}
	return tr, nil
}

// Run evaluates every candidate over every replication and scores the
// journals. The (candidate, replication) grid runs in parallel under
// Workers; all scoring is sequential post-processing over dense result
// grids, so the outcome is independent of worker scheduling.
func (ls *Lockstep) Run() (*LockstepResult, error) {
	if ls.Problem == nil || ls.Layout == nil {
		return nil, fmt.Errorf("exp: lockstep needs a problem and a layout")
	}
	if len(ls.Candidates) == 0 {
		return nil, fmt.Errorf("exp: lockstep has no candidates")
	}
	if ls.Runs <= 0 {
		return nil, fmt.Errorf("exp: need at least one replication, got %d", ls.Runs)
	}
	refIdx := 0
	if ls.Reference != "" {
		refIdx = -1
		for i, c := range ls.Candidates {
			if c.Name == ls.Reference {
				refIdx = i
				break
			}
		}
		if refIdx < 0 {
			return nil, fmt.Errorf("exp: reference policy %q is not among the candidates", ls.Reference)
		}
	}
	duration := ls.Duration
	if duration <= 0 {
		duration = ls.Problem.PeakPeriod
	}

	// Per-replication seeds and traces, materialized up front on this
	// goroutine: every candidate at replication r shares both.
	seeds := make([]int64, ls.Runs)
	traces := make([]*workload.Trace, ls.Runs)
	master := stats.NewRNG(ls.Seed)
	for rep := 0; rep < ls.Runs; rep++ {
		seeds[rep] = master.Derive(int64(rep)).Seed()
		if ls.Trace != nil {
			traces[rep] = ls.Trace
		} else {
			tr, err := ls.generateTrace(seeds[rep], duration)
			if err != nil {
				return nil, err
			}
			traces[rep] = tr
		}
	}

	// One flat job per (candidate, replication); results land in dense
	// grids indexed by the job's coordinates.
	type job struct{ ci, rep int }
	jobs := make([]job, 0, len(ls.Candidates)*ls.Runs)
	for ci := range ls.Candidates {
		for rep := 0; rep < ls.Runs; rep++ {
			jobs = append(jobs, job{ci, rep})
		}
	}
	results := make([][]metrics.Result, len(ls.Candidates))
	journals := make([][][]sim.Decision, len(ls.Candidates))
	errs := make([][]error, len(ls.Candidates))
	for ci := range ls.Candidates {
		results[ci] = make([]metrics.Result, ls.Runs)
		journals[ci] = make([][]sim.Decision, ls.Runs)
		errs[ci] = make([]error, ls.Runs)
	}

	workers := ls.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				cand := ls.Candidates[j.ci]
				jr := &sim.DecisionJournal{}
				cfg := ls.Base
				cfg.Problem = ls.Problem
				cfg.Layout = ls.Layout
				cfg.NewScheduler = cand.NewScheduler
				cfg.Trace = traces[j.rep]
				cfg.Duration = duration
				cfg.Seed = seeds[j.rep]
				cfg.NewHooks = func() []sim.Hook { return []sim.Hook{jr} }
				res, err := sim.Run(cfg)
				if err != nil {
					errs[j.ci][j.rep] = err
					continue
				}
				results[j.ci][j.rep] = res
				journals[j.ci][j.rep] = jr.Arrivals()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	for ci, cand := range ls.Candidates {
		for rep, err := range errs[ci] {
			if err != nil {
				return nil, fmt.Errorf("exp: candidate %q replication %d: %w", cand.Name, rep, err)
			}
		}
	}

	// Score sequentially: per-decision regret against the reference journal
	// of the same replication, cumulative curves, and divergence records.
	out := &LockstepResult{
		Candidates: make([]CandidateRun, len(ls.Candidates)),
		Reference:  refIdx,
		Arrivals:   make([]int, ls.Runs),
		Seed:       ls.Seed,
	}
	for rep := 0; rep < ls.Runs; rep++ {
		out.Arrivals[rep] = len(journals[refIdx][rep])
	}
	for ci, cand := range ls.Candidates {
		cr := CandidateRun{
			Name:     cand.Name,
			Results:  results[ci],
			Journals: journals[ci],
			Curves:   make([][]float64, ls.Runs),
		}
		for rep := 0; rep < ls.Runs; rep++ {
			ref := journals[refIdx][rep]
			got := journals[ci][rep]
			if len(got) != len(ref) {
				// Unreachable: one KindArrival decision per request of a
				// shared trace, whatever the policy.
				return nil, fmt.Errorf("exp: candidate %q replication %d journaled %d arrivals, reference %d",
					cand.Name, rep, len(got), len(ref))
			}
			curve := make([]float64, len(got))
			total := 0.0
			for k := range got {
				total += got[k].Loss() - ref[k].Loss()
				curve[k] = total
				if why := ref[k].Divergent(got[k]); why != "" {
					cr.Divergences = append(cr.Divergences, Divergence{
						Rep: rep, Seq: got[k].Seq, Time: got[k].Time, Video: got[k].Video,
						Why: why, Ref: ref[k], Got: got[k],
					})
				}
			}
			cr.Curves[rep] = curve
			cr.RepRegret = append(cr.RepRegret, total)
			cr.Regret.Add(total)
		}
		out.Candidates[ci] = cr
	}
	return out, nil
}

// SummaryTable renders the paired comparison: one row per candidate with
// its mean regret ± 95% CI against the reference, divergence counts, and
// the first divergence point.
func (r *LockstepResult) SummaryTable() *report.Table {
	t := report.NewTable("policy", "regret_mean", "regret_ci95", "divergences", "first_div_seq", "first_div_t", "reject_pct")
	for i := range r.Candidates {
		c := &r.Candidates[i]
		tag := c.Name
		if i == r.Reference {
			tag += " (ref)"
		}
		firstSeq, firstT := -1, 0.0
		if d := c.FirstDivergence(); d != nil {
			firstSeq, firstT = d.Seq, d.Time
		}
		var rej stats.Summary
		for _, res := range c.Results {
			rej.Add(100 * res.RejectionRate)
		}
		t.AddRowf(tag, c.Regret.Mean(), c.Regret.CI95(), len(c.Divergences), firstSeq, firstT, rej.Mean())
	}
	return t
}

// CurveTable renders the cumulative regret curves averaged over
// replications, sampled every stride arrival decisions (stride <= 1 means
// every decision). Rows stop at the shortest replication so every sampled
// point averages the same number of curves.
func (r *LockstepResult) CurveTable(stride int) *report.Table {
	if stride <= 1 {
		stride = 1
	}
	minLen := 0
	for rep, n := range r.Arrivals {
		if rep == 0 || n < minLen {
			minLen = n
		}
	}
	headers := make([]string, 0, len(r.Candidates)+1)
	headers = append(headers, "seq")
	for _, c := range r.Candidates {
		headers = append(headers, c.Name)
	}
	t := report.NewTable(headers...)
	for k := stride - 1; k < minLen; k += stride {
		row := make([]any, 0, len(r.Candidates)+1)
		row = append(row, k)
		for i := range r.Candidates {
			c := &r.Candidates[i]
			mean := 0.0
			for rep := range c.Curves {
				mean += c.Curves[rep][k]
			}
			row = append(row, mean/float64(len(c.Curves)))
		}
		t.AddRowf(row...)
	}
	return t
}

// Report emits the paired summary and the stride-sampled regret curves
// through the shared emitter — stdout tables plus CSV mirrors when the
// emitter has a CSV directory.
func (r *LockstepResult) Report(em *Emitter, stride int) error {
	em.Printf("Lockstep comparison: %d candidates, %d replications, reference %s (seed %d)\n\n",
		len(r.Candidates), len(r.Arrivals), r.Candidates[r.Reference].Name, r.Seed)
	if err := em.Table("lockstep_summary", r.SummaryTable()); err != nil {
		return err
	}
	em.Printf("\nCumulative regret vs %s (mean over replications):\n\n", r.Candidates[r.Reference].Name)
	return em.Table("lockstep_regret_curve", r.CurveTable(stride))
}

// journalDoc is the JSON shape WriteJournal emits: enough to replay the
// analysis without the raw simulation (reference, per-candidate divergences,
// and per-replication regret totals).
type journalDoc struct {
	Seed       int64               `json:"seed"`
	Runs       int                 `json:"runs"`
	Reference  string              `json:"reference"`
	Arrivals   []int               `json:"arrivals_per_rep"`
	Candidates []journalCandidates `json:"candidates"`
}

type journalCandidates struct {
	Name        string       `json:"name"`
	RepRegret   []float64    `json:"rep_regret"`
	Divergences []Divergence `json:"divergences"`
}

// WriteJournal writes the divergence journal as indented JSON.
func (r *LockstepResult) WriteJournal(w io.Writer) error {
	doc := journalDoc{
		Seed:      r.Seed,
		Runs:      len(r.Arrivals),
		Reference: r.Candidates[r.Reference].Name,
		Arrivals:  r.Arrivals,
	}
	for i := range r.Candidates {
		c := &r.Candidates[i]
		divs := c.Divergences
		if divs == nil {
			divs = []Divergence{}
		}
		doc.Candidates = append(doc.Candidates, journalCandidates{
			Name: c.Name, RepRegret: c.RepRegret, Divergences: divs,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
