package exp

import (
	"errors"
	"testing"
)

func TestTimed(t *testing.T) {
	var calls []int
	secs, err := Timed(3, func(i int) error {
		calls = append(calls, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 3 {
		t.Fatalf("got %d timings, want 3", len(secs))
	}
	for i, s := range secs {
		if s < 0 {
			t.Fatalf("timing %d negative: %g", i, s)
		}
	}
	if len(calls) != 3 || calls[0] != 0 || calls[2] != 2 {
		t.Fatalf("run indices = %v", calls)
	}
}

func TestTimedStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	secs, err := Timed(5, func(i int) error {
		n++
		if i == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 2 || len(secs) != 1 {
		t.Fatalf("ran %d times with %d timings; want the error to stop the loop", n, len(secs))
	}
}
