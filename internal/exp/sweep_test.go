package exp

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
	"vodcluster/internal/sim"
)

// buildScenario returns a scaled-down paper cluster with a Zipf+SLF layout,
// mirroring the sim package's test fixture.
func buildScenario(t testing.TB, lambdaPerMin, degree float64) (*core.Problem, *core.Layout) {
	t.Helper()
	c, err := core.NewCatalog(50, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	capPer := int(math.Ceil(degree * 50 / 4))
	p := &core.Problem{
		Catalog:            c,
		NumServers:         4,
		StoragePerServer:   float64(capPer) * c[0].SizeBytes(),
		BandwidthPerServer: 0.9 * core.Gbps,
		ArrivalRate:        lambdaPerMin / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	budget, err := p.TargetTotalReplicas(degree)
	if err != nil {
		t.Fatal(err)
	}
	replicas, err := replicate.ZipfInterval{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return p, layout
}

// testSweep is a small two-series sweep over arrival rate, loaded enough
// that at least one point rejects (so metrics differ across cells).
func testSweep(t testing.TB, workers int) *Sweep {
	t.Helper()
	mkSeries := func(name string, degree float64) Series {
		return Series{
			Name: name,
			Config: func(x float64) (sim.Config, error) {
				p, layout := buildScenario(t, x, degree)
				return sim.Config{Problem: p, Layout: layout}, nil
			},
		}
	}
	return &Sweep{
		Xs:      []float64{8, 40},
		Series:  []Series{mkSeries("deg 1.0", 1.0), mkSeries("deg 1.4", 1.4)},
		Runs:    3,
		Seed:    42,
		Workers: workers,
	}
}

// TestSweepDeterministicAcrossWorkers pins the harness's core guarantee: the
// result grid depends only on (Series, Xs, Runs, Seed), never on Workers.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	seq, err := testSweep(t, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	par, err := testSweep(t, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel sweep diverged from sequential sweep at the same seed")
	}
}

// TestSweepMatchesRunMany pins seed compatibility with the sequential loops
// the harness replaced: each point's replications must equal sim.RunMany of
// the same config at the point's base seed, element for element.
func TestSweepMatchesRunMany(t *testing.T) {
	s := testSweep(t, 0)
	grid, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for si, ser := range s.Series {
		for xi, x := range s.Xs {
			cfg, err := ser.Config(x)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Seed = grid[si][xi].Seed
			agg, results, err := sim.RunMany(cfg, s.Runs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(results, grid[si][xi].Results) {
				t.Fatalf("series %q x=%g: per-run results diverge from sim.RunMany", ser.Name, x)
			}
			if !reflect.DeepEqual(agg, grid[si][xi].Agg) {
				t.Fatalf("series %q x=%g: aggregate diverges from sim.RunMany", ser.Name, x)
			}
		}
	}
}

// TestSweepDefaultPointSeeds pins the historical per-point seed convention
// (seed + i*1000003) and the PointSeed override.
func TestSweepDefaultPointSeeds(t *testing.T) {
	s := testSweep(t, 1)
	grid, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for xi := range s.Xs {
		want := s.Seed + int64(xi)*pointSeedStride
		for si := range s.Series {
			if got := grid[si][xi].Seed; got != want {
				t.Fatalf("series %d x-index %d: seed %d, want %d", si, xi, got, want)
			}
		}
	}

	s = testSweep(t, 1)
	s.PointSeed = func(int) int64 { return 7 }
	grid, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for si := range grid {
		for xi := range grid[si] {
			if grid[si][xi].Seed != 7 {
				t.Fatalf("PointSeed override ignored at [%d][%d]", si, xi)
			}
		}
	}
}

func TestSweepValidation(t *testing.T) {
	ok := Series{Name: "ok", Config: func(float64) (sim.Config, error) {
		return sim.Config{}, nil
	}}
	cases := []struct {
		name string
		s    Sweep
	}{
		{"no points", Sweep{Series: []Series{ok}, Runs: 1}},
		{"no series", Sweep{Xs: []float64{1}, Runs: 1}},
		{"no runs", Sweep{Xs: []float64{1}, Series: []Series{ok}}},
		{"nil config", Sweep{Xs: []float64{1}, Series: []Series{{Name: "bad"}}, Runs: 1}},
	}
	for _, tc := range cases {
		if _, err := tc.s.Run(); err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
}

// TestSweepConfigErrorStopsBeforeSimulation verifies construction errors
// surface with series/x context and prevent any simulation from starting.
func TestSweepConfigErrorStopsBeforeSimulation(t *testing.T) {
	ran := false
	s := &Sweep{
		Xs:   []float64{1, 2},
		Runs: 1,
		Series: []Series{
			{Name: "first", Config: func(x float64) (sim.Config, error) {
				ran = true
				return sim.Config{}, nil
			}},
			{Name: "broken", Config: func(x float64) (sim.Config, error) {
				return sim.Config{}, os.ErrInvalid
			}},
		},
	}
	_, err := s.Run()
	if err == nil {
		t.Fatal("construction error swallowed")
	}
	if !strings.Contains(err.Error(), `"broken"`) || !strings.Contains(err.Error(), "x=1") {
		t.Fatalf("error lacks series/x context: %v", err)
	}
	if !ran {
		t.Fatal("earlier series' Config never ran")
	}
}

// TestSweepRunErrorHasContext verifies a failing simulation reports which
// cell failed. An invalid sim.Config (no Problem/Layout) fails inside Run.
func TestSweepRunErrorHasContext(t *testing.T) {
	s := &Sweep{
		Xs:   []float64{3},
		Runs: 2,
		Series: []Series{{Name: "empty", Config: func(float64) (sim.Config, error) {
			return sim.Config{}, nil
		}}},
	}
	_, err := s.Run()
	if err == nil {
		t.Fatal("invalid config simulated successfully")
	}
	if !strings.Contains(err.Error(), `"empty"`) || !strings.Contains(err.Error(), "x=3") {
		t.Fatalf("error lacks series/x context: %v", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is not a *RunError: %v", err)
	}
	if re.Series != "empty" || re.X != 3 || re.Rep != 0 || re.Err == nil {
		t.Fatalf("RunError fields wrong: %+v", re)
	}
}

func TestSweepTableAndChart(t *testing.T) {
	s := testSweep(t, 0)
	grid, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	tbl := s.Table(grid, "λ (req/min)", RejectionPct, nil)
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"λ (req/min)", "deg 1.0", "deg 1.4", "8", "40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}

	tbl = s.Table(grid, "", RejectionPct, []string{"x", "a (%)", "b (%)"})
	buf.Reset()
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a (%)") {
		t.Fatalf("custom headers ignored:\n%s", buf.String())
	}

	c := s.Chart(grid, "rejection", "λ", "%", RejectionPct)
	buf.Reset()
	if err := c.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rejection") {
		t.Fatalf("chart output missing title:\n%s", buf.String())
	}
}

func TestEmitterWritesCSV(t *testing.T) {
	s := testSweep(t, 0)
	grid, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	e := &Emitter{Out: &buf, CSVDir: filepath.Join(dir, "nested")}
	if err := e.Table("fig_test", s.Table(grid, "λ (req/min)", RejectionPct, nil)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("nothing printed to Out")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "nested", "fig_test.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "deg 1.0") {
		t.Fatalf("CSV missing series column:\n%s", csv)
	}
}
