package exp

import "time"

// Timed runs f n times and returns the wall-clock seconds of each run, in
// run order. It is the measurement loop of the perf harness (cmd/vodperf):
// the harness times whole sweeps externally because per-run wall time must
// stay out of metrics.Result, whose values are compared bit-for-bit by the
// determinism tests. f receives the run index so callers can vary seeds or
// labels per repetition.
func Timed(n int, f func(i int) error) ([]float64, error) {
	secs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := f(i); err != nil {
			return secs, err
		}
		secs = append(secs, time.Since(start).Seconds())
	}
	return secs, nil
}
