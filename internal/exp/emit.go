package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vodcluster/internal/report"
)

// Emitter is the single output path for experiment results: tables print to
// Out and, when CSVDir is set, every table also lands as <CSVDir>/<name>.csv
// — uniformly, for every figure that goes through it.
type Emitter struct {
	// Out receives rendered tables and charts; nil means os.Stdout.
	Out io.Writer
	// CSVDir, when non-empty, mirrors every emitted table as CSV there.
	CSVDir string
}

func (e *Emitter) out() io.Writer {
	if e.Out == nil {
		return os.Stdout
	}
	return e.Out
}

// Printf writes free-form commentary to the emitter's output stream.
func (e *Emitter) Printf(format string, args ...any) {
	fmt.Fprintf(e.out(), format, args...)
}

// Table prints t and, when CSVDir is set, writes it as <name>.csv too.
func (e *Emitter) Table(name string, t *report.Table) error {
	if err := t.Fprint(e.out()); err != nil {
		return err
	}
	if e.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(e.CSVDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(e.CSVDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}

// Chart prints c to the emitter's output stream.
func (e *Emitter) Chart(c *report.Chart) error {
	return c.Fprint(e.out())
}

// Table renders the evaluated grid as a table with one row per x and one
// metric column per series: the layout every figure table in this
// repository uses. headers overrides the column titles when non-nil
// (len(s.Series)+1 entries: the x column first); nil derives them from the
// series names.
func (s *Sweep) Table(grid [][]Point, xHeader string, metric Metric, headers []string) *report.Table {
	if headers == nil {
		headers = make([]string, 0, len(s.Series)+1)
		headers = append(headers, xHeader)
		for _, ser := range s.Series {
			headers = append(headers, ser.Name)
		}
	}
	t := report.NewTable(headers...)
	for xi, x := range s.Xs {
		row := make([]any, 0, len(grid)+1)
		row = append(row, x)
		for si := range grid {
			row = append(row, metric(grid[si][xi]))
		}
		t.AddRowf(row...)
	}
	return t
}

// Chart renders the evaluated grid as an ASCII chart with one series per
// sweep series.
func (s *Sweep) Chart(grid [][]Point, title, xLabel, yLabel string, metric Metric) *report.Chart {
	c := &report.Chart{Title: title, XLabel: xLabel, YLabel: yLabel}
	for si := range grid {
		ys := make([]float64, len(s.Xs))
		for xi := range grid[si] {
			ys[xi] = metric(grid[si][xi])
		}
		c.Add(report.Series{Name: s.Series[si].Name, X: s.Xs, Y: ys})
	}
	return c
}
