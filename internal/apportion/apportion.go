// Package apportion implements classical apportionment methods — dividing a
// fixed number of indivisible seats among parties in proportion to their
// weights. The paper observes that assigning replica counts in proportion to
// video popularity "is close to a classical apportionment problem" and builds
// its optimal replication scheme on Adams' monotone divisor method; this
// package provides that method together with the other standard divisor
// methods (Jefferson, Webster, Hill) and Hamilton's largest-remainder method
// for comparison and testing.
//
// A divisor method with rank function d(k) repeatedly awards the next seat to
// the party maximizing weight/d(seats already held). Adams' method uses
// d(k) = k, which awards each additional seat to the party whose current
// per-seat share weight/k is greatest — exactly the paper's rule of
// duplicating the video whose replicas carry the greatest communication
// weight.
package apportion

import (
	"container/heap"
	"fmt"
	"math"
)

// Method selects an apportionment rule.
type Method int

const (
	// Adams is the divisor method with d(k) = k (smallest divisors).
	// It is house-monotone and favors small parties; every party with
	// positive weight receives at least one seat.
	Adams Method = iota
	// Jefferson is the divisor method with d(k) = k + 1 (greatest
	// divisors, a.k.a. D'Hondt). It favors large parties.
	Jefferson
	// Webster is the divisor method with d(k) = k + 1/2 (major fractions,
	// a.k.a. Sainte-Laguë).
	Webster
	// Hill is the divisor method with d(k) = sqrt(k(k+1)) (equal
	// proportions), used by the US House since 1941.
	Hill
	// Hamilton is the largest-remainder method: floor the exact quotas,
	// then hand leftover seats to the largest fractional remainders.
	Hamilton
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Adams:
		return "adams"
	case Jefferson:
		return "jefferson"
	case Webster:
		return "webster"
	case Hill:
		return "hill"
	case Hamilton:
		return "hamilton"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// rank returns the divisor d(k) for a party currently holding k seats; the
// next seat goes to the party maximizing weight/d(k).
func (m Method) rank(k int) float64 {
	switch m {
	case Adams:
		if k == 0 {
			return 0 // infinite priority: every party gets a first seat
		}
		return float64(k)
	case Jefferson:
		return float64(k + 1)
	case Webster:
		return float64(k) + 0.5
	case Hill:
		return math.Sqrt(float64(k) * float64(k+1))
	}
	panic("apportion: rank undefined for " + m.String())
}

// Apportion distributes seats among parties with the given positive weights.
// For divisor methods it runs the seat-by-seat priority formulation with a
// max-heap, O(seats·log n). Ties are broken toward the lower index, making
// the result deterministic.
//
// Adams' method requires seats ≥ len(weights) because it gives every party a
// seat; Hamilton and the other divisor methods accept any seats ≥ 0.
func Apportion(weights []float64, seats int, method Method) ([]int, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("apportion: no parties")
	}
	if seats < 0 {
		return nil, fmt.Errorf("apportion: negative seat count %d", seats)
	}
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("apportion: weight %d must be positive and finite, got %g", i, w)
		}
	}
	if method == Hamilton {
		return hamilton(weights, seats), nil
	}
	if method == Adams && seats < n {
		return nil, fmt.Errorf("apportion: Adams needs at least %d seats for %d parties, got %d", n, n, seats)
	}
	return BoundedDivisor(weights, seats, method, nil)
}

// BoundedDivisor runs a divisor method where party i may hold at most
// maxSeats[i] seats (nil means unbounded). This is the paper's "bounded Adams
// monotone divisor" generalization: replica counts are capped by the number
// of servers (Eq. 7). It returns an error if the caps make the target
// unreachable.
func BoundedDivisor(weights []float64, seats int, method Method, maxSeats []int) ([]int, error) {
	n := len(weights)
	if method == Hamilton {
		return nil, fmt.Errorf("apportion: Hamilton is not a divisor method")
	}
	if maxSeats != nil {
		if len(maxSeats) != n {
			return nil, fmt.Errorf("apportion: maxSeats has %d entries for %d parties", len(maxSeats), n)
		}
		totalCap := 0
		for i, c := range maxSeats {
			if c < 0 {
				return nil, fmt.Errorf("apportion: negative cap for party %d", i)
			}
			totalCap += c
		}
		if totalCap < seats {
			return nil, fmt.Errorf("apportion: caps sum to %d, below target %d", totalCap, seats)
		}
	}
	out := make([]int, n)
	h := &priorityHeap{}
	h.items = make([]priorityItem, 0, n)
	for i, w := range weights {
		if maxSeats != nil && maxSeats[i] == 0 {
			continue
		}
		h.items = append(h.items, priorityItem{party: i, priority: priority(w, method.rank(0))})
	}
	heap.Init(h)
	for s := 0; s < seats; s++ {
		if h.Len() == 0 {
			return nil, fmt.Errorf("apportion: ran out of eligible parties after %d of %d seats", s, seats)
		}
		top := h.items[0]
		i := top.party
		out[i]++
		if maxSeats != nil && out[i] >= maxSeats[i] {
			heap.Pop(h)
			continue
		}
		h.items[0].priority = priority(weights[i], method.rank(out[i]))
		heap.Fix(h, 0)
	}
	return out, nil
}

// priority computes w/d with d(0)=0 treated as infinite priority.
func priority(w, d float64) float64 {
	if d == 0 {
		return math.Inf(1)
	}
	return w / d
}

func hamilton(weights []float64, seats int) []int {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	out := make([]int, n)
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i, w := range weights {
		quota := w / total * float64(seats)
		out[i] = int(math.Floor(quota))
		assigned += out[i]
		rems[i] = rem{i: i, frac: quota - math.Floor(quota)}
	}
	// Largest remainders first; ties toward lower index.
	for assigned < seats {
		best := -1
		for j := range rems {
			if best == -1 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		out[rems[best].i]++
		rems[best].frac = -1
		assigned++
	}
	return out
}

// priorityItem and priorityHeap implement the max-heap over party priorities
// with deterministic lower-index tie-breaking.
type priorityItem struct {
	party    int
	priority float64
}

type priorityHeap struct {
	items []priorityItem
}

func (h *priorityHeap) Len() int { return len(h.items) }

func (h *priorityHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.party < b.party
}

func (h *priorityHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *priorityHeap) Push(x any) { h.items = append(h.items, x.(priorityItem)) }

func (h *priorityHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
