package apportion_test

import (
	"fmt"
	"log"

	"vodcluster/internal/apportion"
)

// Adams' method (divisor d(k) = k) gives every party a seat before any party
// gets a second one and then awards seats to the largest weight-per-seat —
// exactly the rule the paper's optimal replication uses, with videos as
// parties and replicas as seats.
func ExampleApportion() {
	weights := []float64{0.5, 0.25, 0.15, 0.1}
	for _, method := range []apportion.Method{apportion.Adams, apportion.Jefferson, apportion.Hamilton} {
		seats, err := apportion.Apportion(weights, 8, method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %v\n", method, seats)
	}
	// Output:
	// adams     [4 2 1 1]
	// jefferson [5 2 1 0]
	// hamilton  [4 2 1 1]
}
