package apportion

import (
	"math"
	"testing"
	"testing/quick"

	"vodcluster/internal/stats"
)

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestMethodStrings(t *testing.T) {
	cases := map[Method]string{
		Adams: "adams", Jefferson: "jefferson", Webster: "webster",
		Hill: "hill", Hamilton: "hamilton", Method(99): "method(99)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestApportionValidation(t *testing.T) {
	if _, err := Apportion(nil, 3, Adams); err == nil {
		t.Fatal("no parties accepted")
	}
	if _, err := Apportion([]float64{1, 2}, -1, Webster); err == nil {
		t.Fatal("negative seats accepted")
	}
	if _, err := Apportion([]float64{1, 0}, 2, Webster); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := Apportion([]float64{1, math.NaN()}, 2, Webster); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := Apportion([]float64{1, math.Inf(1)}, 2, Webster); err == nil {
		t.Fatal("infinite weight accepted")
	}
	if _, err := Apportion([]float64{1, 2, 3}, 2, Adams); err == nil {
		t.Fatal("Adams with seats < parties accepted")
	}
}

func TestAdamsGivesEveryoneASeat(t *testing.T) {
	got, err := Apportion([]float64{1000, 1, 1, 1}, 4, Adams)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range got {
		if s < 1 {
			t.Fatalf("party %d got %d seats under Adams", i, s)
		}
	}
	if sum(got) != 4 {
		t.Fatalf("seats sum to %d", sum(got))
	}
}

func TestAdamsMinimizesMaxShare(t *testing.T) {
	// Adams awards seats to the party with the greatest weight/seats, so it
	// minimizes max_i w_i/s_i. Check against exhaustive search.
	weights := []float64{0.5, 0.25, 0.15, 0.1}
	for seats := 4; seats <= 10; seats++ {
		got, err := Apportion(weights, seats, Adams)
		if err != nil {
			t.Fatal(err)
		}
		bestVal := math.Inf(1)
		var rec func(i, left int, cur []int)
		rec = func(i, left int, cur []int) {
			if i == len(weights) {
				if left != 0 {
					return
				}
				v := 0.0
				for j, s := range cur {
					v = math.Max(v, weights[j]/float64(s))
				}
				bestVal = math.Min(bestVal, v)
				return
			}
			for s := 1; s <= left-(len(weights)-i-1); s++ {
				cur[i] = s
				rec(i+1, left-s, cur)
			}
		}
		rec(0, seats, make([]int, len(weights)))
		gotVal := 0.0
		for j, s := range got {
			gotVal = math.Max(gotVal, weights[j]/float64(s))
		}
		if math.Abs(gotVal-bestVal) > 1e-12 {
			t.Fatalf("seats=%d: Adams max share %g, optimal %g (alloc %v)", seats, gotVal, bestVal, got)
		}
	}
}

func TestJeffersonFavorsLarge(t *testing.T) {
	// D'Hondt with weights 6:1 over 7 seats: large party takes 6.
	got, err := Apportion([]float64{6, 1}, 7, Jefferson)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 1 {
		t.Fatalf("Jefferson 6:1 over 7 = %v, want [6 1]", got)
	}
}

func TestWebsterKnownCase(t *testing.T) {
	// Sainte-Laguë with 53:24:23 over 10 seats gives 5:3:2... verify quota
	// adherence instead of memorized numbers: each allocation within 1 of
	// exact quota for this benign instance.
	weights := []float64{53, 24, 23}
	got, err := Apportion(weights, 10, Webster)
	if err != nil {
		t.Fatal(err)
	}
	if sum(got) != 10 {
		t.Fatalf("sum = %d", sum(got))
	}
	for i, w := range weights {
		quota := w / 100 * 10
		if math.Abs(float64(got[i])-quota) > 1 {
			t.Fatalf("Webster seat %d = %d, quota %g", i, got[i], quota)
		}
	}
}

func TestHillRankFunction(t *testing.T) {
	// d(k) = sqrt(k(k+1)): first seat priority infinite, so everyone seated
	// first when seats ≥ parties.
	got, err := Apportion([]float64{10, 1}, 2, Hill)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("Hill must seat both parties first: %v", got)
	}
}

func TestHamiltonQuotaRule(t *testing.T) {
	// Hamilton satisfies quota: each allocation is floor(q) or ceil(q).
	f := func(raw []uint16, seatsRaw uint8) bool {
		weights := make([]float64, 0, len(raw))
		for _, r := range raw {
			if r > 0 {
				weights = append(weights, float64(r))
			}
		}
		if len(weights) == 0 {
			return true
		}
		seats := int(seatsRaw)
		got, err := Apportion(weights, seats, Hamilton)
		if err != nil {
			return false
		}
		if sum(got) != seats {
			return false
		}
		total := 0.0
		for _, w := range weights {
			total += w
		}
		for i, w := range weights {
			q := w / total * float64(seats)
			if float64(got[i]) < math.Floor(q)-1e-9 || float64(got[i]) > math.Ceil(q)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDivisorHouseMonotone: divisor methods never take a seat away when the
// house grows — the property that makes Adams usable for incremental
// replication (no replica is ever "un-created" as storage grows).
func TestDivisorHouseMonotone(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() + 0.01
		}
		for _, m := range []Method{Adams, Jefferson, Webster, Hill} {
			start := 0
			if m == Adams {
				start = n
			}
			prev, err := Apportion(weights, start, m)
			if err != nil {
				t.Fatal(err)
			}
			for seats := start + 1; seats <= start+12; seats++ {
				next, err := Apportion(weights, seats, m)
				if err != nil {
					t.Fatal(err)
				}
				for i := range next {
					if next[i] < prev[i] {
						t.Fatalf("%s not house-monotone: seats %d→%d shrank party %d (%v → %v)",
							m, seats-1, seats, i, prev, next)
					}
				}
				prev = next
			}
		}
	}
}

func TestBoundedDivisorCaps(t *testing.T) {
	weights := []float64{100, 1, 1}
	caps := []int{2, 5, 5}
	got, err := BoundedDivisor(weights, 6, Adams, caps)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("cap violated: %v", got)
	}
	if sum(got) != 6 {
		t.Fatalf("sum = %d", sum(got))
	}
}

func TestBoundedDivisorValidation(t *testing.T) {
	if _, err := BoundedDivisor([]float64{1, 2}, 2, Hamilton, nil); err == nil {
		t.Fatal("Hamilton accepted as divisor method")
	}
	if _, err := BoundedDivisor([]float64{1, 2}, 2, Adams, []int{1}); err == nil {
		t.Fatal("wrong caps length accepted")
	}
	if _, err := BoundedDivisor([]float64{1, 2}, 2, Adams, []int{-1, 3}); err == nil {
		t.Fatal("negative cap accepted")
	}
	if _, err := BoundedDivisor([]float64{1, 2}, 5, Adams, []int{2, 2}); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestBoundedDivisorZeroCapParty(t *testing.T) {
	got, err := BoundedDivisor([]float64{5, 5}, 3, Jefferson, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 3 {
		t.Fatalf("zero-cap party seated: %v", got)
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	// Equal weights: ties must resolve toward the lower index, every time.
	for trial := 0; trial < 10; trial++ {
		got, err := Apportion([]float64{1, 1, 1}, 4, Webster)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 2 || got[1] != 1 || got[2] != 1 {
			t.Fatalf("tie-break changed: %v", got)
		}
	}
}

func BenchmarkBoundedAdams1000x10000(b *testing.B) {
	rng := stats.NewRNG(1)
	weights := make([]float64, 1000)
	for i := range weights {
		weights[i] = rng.Float64() + 0.001
	}
	caps := make([]int, len(weights))
	for i := range caps {
		caps[i] = 16
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BoundedDivisor(weights, 10000, Adams, caps); err != nil {
			b.Fatal(err)
		}
	}
}
