package apportion

import (
	"testing"
)

// FuzzApportion: for arbitrary weights and seat counts, no method may panic,
// and every successful apportionment distributes exactly the requested seats
// with non-negative allocations.
func FuzzApportion(f *testing.F) {
	f.Add(uint16(3), uint8(10), uint8(0))
	f.Add(uint16(1), uint8(0), uint8(4))
	f.Add(uint16(8), uint8(200), uint8(2))
	f.Fuzz(func(t *testing.T, nRaw uint16, seatsRaw, methodRaw uint8) {
		n := int(nRaw%64) + 1
		seats := int(seatsRaw)
		method := Method(methodRaw % 5)
		weights := make([]float64, n)
		for i := range weights {
			// Deterministic spread of weights, including near-ties.
			weights[i] = 1 + float64((i*2654435761)%1000)/100
		}
		got, err := Apportion(weights, seats, method)
		if err != nil {
			return // Adams with seats < n, for example
		}
		total := 0
		for i, s := range got {
			if s < 0 {
				t.Fatalf("%v: negative seats for party %d", method, i)
			}
			total += s
		}
		if total != seats {
			t.Fatalf("%v: distributed %d of %d seats", method, total, seats)
		}
	})
}
