// Package redirect implements the request redirection strategy the paper's
// conclusion points to (ref. [29]): when the scheduled replica's server has
// no outgoing bandwidth left, a server with spare outgoing capacity fetches
// the video over the cluster's internal backbone from a replica holder and
// streams it to the client itself. Redirection trades backbone bandwidth for
// outgoing-traffic balance at runtime, complementing the conservative
// placement computed for the peak period.
package redirect

import (
	"vodcluster/internal/cluster"
)

// Scheduler decorates a base scheduler with backbone redirection. If the base
// policy rejects a request, Scheduler looks for a (proxy, source) pair: the
// source is a replica holder, the proxy is the server with the most free
// outgoing bandwidth (possibly a holder itself), and the stream crosses the
// backbone from source to proxy. The request is still rejected when no proxy
// has room or the backbone itself is saturated.
type Scheduler struct {
	// Base makes the primary decision; StaticRoundRobin reproduces the
	// paper's setup.
	Base cluster.Scheduler
	// redirected counts streams admitted via the backbone, for reporting.
	redirected int64
}

// New returns a redirecting scheduler over base.
func New(base cluster.Scheduler) *Scheduler { return &Scheduler{Base: base} }

// Name implements cluster.Scheduler.
func (r *Scheduler) Name() string { return r.Base.Name() + "+redirect" }

// Unwrap exposes the base policy, so the simulator can find a
// cluster.SeededScheduler through the decorator chain.
func (r *Scheduler) Unwrap() cluster.Scheduler { return r.Base }

// Redirected returns how many requests this scheduler admitted via the
// backbone since creation.
func (r *Scheduler) Redirected() int64 { return r.redirected }

// Schedule implements cluster.Scheduler.
func (r *Scheduler) Schedule(st *cluster.State, v int) cluster.Decision {
	if d := r.Base.Schedule(st, v); d.Accept {
		return d
	}
	p := st.Problem()
	if p.BackboneBandwidth <= 0 {
		return cluster.Reject
	}
	rate := p.Catalog[v].BitRate
	if st.BackboneFree() < rate {
		return cluster.Reject
	}
	holders := st.Holders(v)
	if len(holders) == 0 {
		return cluster.Reject
	}
	// Proxy: any server with the most free outgoing bandwidth. Prefer a
	// holder with room (no backbone needed) if one exists — that is a free
	// win the static base policy missed.
	for _, s := range holders {
		if st.CanServe(s, v) {
			return cluster.Direct(s)
		}
	}
	proxy := -1
	bestFree := rate
	for s := 0; s < p.N(); s++ {
		if free := st.FreeBandwidth(s); free >= bestFree {
			proxy, bestFree = s, free
		}
	}
	if proxy == -1 {
		return cluster.Reject
	}
	r.redirected++
	return cluster.Decision{Accept: true, Server: proxy, Source: holders[0]}
}

var _ cluster.Scheduler = (*Scheduler)(nil)
