package redirect

import (
	"testing"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
)

// setup: 3 videos on 2 servers with 10 Mb/s links (2 streams each at
// 4 Mb/s), optional backbone.
func setup(t testing.TB, backbone float64) *cluster.State {
	t.Helper()
	c := core.Catalog{
		{ID: 0, Popularity: 0.5, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 1, Popularity: 0.3, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 2, Popularity: 0.2, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         2,
		StoragePerServer:   2 * c[0].SizeBytes(),
		BandwidthPerServer: 10 * core.Mbps,
		ArrivalRate:        1.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
		BackboneBandwidth:  backbone,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	l := core.NewLayout(3)
	l.Replicas = []int{2, 1, 1}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 0}, {2, 1}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cluster.New(p, l)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func fillServer(t testing.TB, st *cluster.State, video, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, ok := st.Admit(video, cluster.FirstAvailable{}); !ok {
			t.Fatalf("setup admission %d of video %d failed", i, video)
		}
	}
}

func TestPassThroughWhenBaseAccepts(t *testing.T) {
	st := setup(t, 8*core.Mbps)
	sched := New(cluster.StaticRoundRobin{})
	id, ok := st.Admit(1, sched)
	if !ok {
		t.Fatal("admission failed")
	}
	s, _ := st.Lookup(id)
	if s.Redirected {
		t.Fatal("base acceptance should not redirect")
	}
	if sched.Redirected() != 0 {
		t.Fatal("counter moved on direct admission")
	}
	if got, want := sched.Name(), "static-rr+redirect"; got != want {
		t.Fatalf("name = %q", got)
	}
}

func TestPrefersFreeHolderBeforeBackbone(t *testing.T) {
	st := setup(t, 8*core.Mbps)
	sched := New(cluster.StaticRoundRobin{})
	// Fill server 0; v0's static-RR cursor points at server 0 first.
	fillServer(t, st, 1, 2)
	id, ok := st.Admit(0, sched)
	if !ok {
		t.Fatal("admission failed")
	}
	s, _ := st.Lookup(id)
	if s.Redirected {
		t.Fatal("should have used the free holder (server 1) directly")
	}
	if s.Server != 1 {
		t.Fatalf("served by %d, want holder 1", s.Server)
	}
}

func TestRedirectsViaBackboneWhenHoldersFull(t *testing.T) {
	st := setup(t, 8*core.Mbps)
	sched := New(cluster.StaticRoundRobin{})
	// v1 is held only by server 0; fill server 0 completely.
	fillServer(t, st, 1, 2)
	// Server 1 has spare outgoing bandwidth: the request for v1 must be
	// proxied through it.
	id, ok := st.Admit(1, sched)
	if !ok {
		t.Fatal("redirection failed")
	}
	s, _ := st.Lookup(id)
	if !s.Redirected || s.Server != 1 || s.Source != 0 {
		t.Fatalf("stream %+v, want redirect 0→1", s)
	}
	if sched.Redirected() != 1 {
		t.Fatalf("redirect counter = %d", sched.Redirected())
	}
}

func TestRejectsWithoutBackbone(t *testing.T) {
	st := setup(t, 0)
	sched := New(cluster.StaticRoundRobin{})
	fillServer(t, st, 1, 2)
	if _, ok := st.Admit(1, sched); ok {
		t.Fatal("redirected without backbone bandwidth")
	}
}

func TestRejectsWhenBackboneExhausted(t *testing.T) {
	st := setup(t, 4*core.Mbps) // room for exactly one redirected stream
	sched := New(cluster.StaticRoundRobin{})
	fillServer(t, st, 1, 2)
	if _, ok := st.Admit(1, sched); !ok {
		t.Fatal("first redirection failed")
	}
	if _, ok := st.Admit(1, sched); ok {
		t.Fatal("second redirection exceeded backbone capacity")
	}
}

func TestRejectsWhenNoProxyHasRoom(t *testing.T) {
	st := setup(t, 100*core.Mbps)
	sched := New(cluster.StaticRoundRobin{})
	// Fill both servers completely: 2 streams each.
	fillServer(t, st, 1, 2)
	fillServer(t, st, 2, 2)
	if _, ok := st.Admit(1, sched); ok {
		t.Fatal("redirected with no outgoing capacity anywhere")
	}
}
