package disk

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// seagate is a plausible early-2000s streaming disk: 36 GB, 8 ms positioning,
// 40 MB/s sustained.
var seagate = Disk{CapacityBytes: 36e9, SeekMs: 8, TransferMBps: 40}

func TestDiskValidate(t *testing.T) {
	if err := seagate.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Disk{
		{CapacityBytes: 0, SeekMs: 8, TransferMBps: 40},
		{CapacityBytes: 1e9, SeekMs: -1, TransferMBps: 40},
		{CapacityBytes: 1e9, SeekMs: 8, TransferMBps: 0},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("bad disk %d accepted", i)
		}
	}
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(seagate, 0, RAID0); err == nil {
		t.Fatal("empty array accepted")
	}
	if _, err := NewArray(seagate, 2, RAID5); err == nil {
		t.Fatal("RAID5 with 2 disks accepted")
	}
	if _, err := NewArray(seagate, 3, Mirrored); err == nil {
		t.Fatal("odd mirrored array accepted")
	}
	if _, err := NewArray(seagate, 4, Scheme(9)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := NewArray(Disk{}, 4, RAID0); err == nil {
		t.Fatal("invalid disk accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if RAID0.String() != "raid0" || RAID5.String() != "raid5" || Mirrored.String() != "mirrored" {
		t.Fatal("scheme names changed")
	}
	if !strings.Contains(Scheme(7).String(), "7") {
		t.Fatal("unknown scheme string")
	}
}

func TestUsableBytesPerScheme(t *testing.T) {
	cases := []struct {
		scheme Scheme
		n      int
		want   float64
	}{
		{RAID0, 8, 8 * 36e9},
		{RAID5, 8, 7 * 36e9},
		{Mirrored, 8, 4 * 36e9},
	}
	for _, c := range cases {
		a, err := NewArray(seagate, c.n, c.scheme)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.UsableBytes(); got != c.want {
			t.Fatalf("%v usable = %g, want %g", c.scheme, got, c.want)
		}
	}
}

func TestStreamCapacityArithmetic(t *testing.T) {
	// One disk, RAID0, 4 Mb/s streams, 1 s rounds: chunk = 0.5 MB,
	// transfer = 0.0125 s, +8 ms seek = 0.0205 s → 48 streams.
	a, err := NewArray(seagate, 1, RAID0)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.StreamCapacity(4e6, 1); got != 48 {
		t.Fatalf("capacity = %d, want 48", got)
	}
	// Larger rounds amortize seeks: capacity per disk grows toward
	// transfer-bound 80 streams.
	big := a.StreamCapacity(4e6, 10)
	if big <= 48 {
		t.Fatalf("longer rounds should amortize seeks: %d", big)
	}
	if limit := int(40e6 * 8 / 4e6); big > limit {
		t.Fatalf("capacity %d exceeds transfer bound %d", big, limit)
	}
}

func TestCoarseStripingScalesLinearly(t *testing.T) {
	one, _ := NewArray(seagate, 1, RAID0)
	eight, _ := NewArray(seagate, 8, RAID0)
	c1 := one.StreamCapacity(4e6, 1)
	c8 := eight.StreamCapacity(4e6, 1)
	if c8 != 8*c1 {
		t.Fatalf("coarse striping must scale linearly: %d vs 8×%d", c8, c1)
	}
}

func TestFineStripingSaturates(t *testing.T) {
	// "Striping doesn't scale": fine-grained capacity is capped by
	// round/seek no matter how many disks join the array.
	round := 1.0
	seekBound := int(round / (seagate.SeekMs / 1e3)) // 125
	prev := 0
	for _, n := range []int{2, 8, 32, 128} {
		a, err := NewArray(seagate, n, RAID0)
		if err != nil {
			t.Fatal(err)
		}
		a.SetGranularity(FineGrained)
		c := a.StreamCapacity(4e6, round)
		if c > seekBound {
			t.Fatalf("n=%d: fine-grained capacity %d exceeds seek bound %d", n, c, seekBound)
		}
		if c < prev {
			t.Fatalf("n=%d: capacity fell from %d to %d", n, prev, c)
		}
		prev = c
	}
	// And the asymptote is approached: at 128 disks, within 20% of it.
	if prev < seekBound*4/5 {
		t.Fatalf("fine-grained capacity %d far from seek bound %d", prev, seekBound)
	}
	// Coarse-grained with the same 128 disks blows far past the bound.
	coarse, _ := NewArray(seagate, 128, RAID0)
	if coarse.StreamCapacity(4e6, round) <= seekBound {
		t.Fatal("coarse striping unexpectedly seek-bound")
	}
}

func TestGranularityString(t *testing.T) {
	if CoarseGrained.String() != "coarse" || FineGrained.String() != "fine" {
		t.Fatal("granularity names changed")
	}
	a, _ := NewArray(seagate, 4, RAID0)
	if a.Granularity() != CoarseGrained {
		t.Fatal("default granularity must be coarse")
	}
	a.SetGranularity(FineGrained)
	if a.Granularity() != FineGrained {
		t.Fatal("SetGranularity ignored")
	}
}

func TestStreamCapacityEdgeCases(t *testing.T) {
	a, _ := NewArray(seagate, 4, RAID0)
	if a.StreamCapacity(0, 1) != 0 || a.StreamCapacity(4e6, 0) != 0 {
		t.Fatal("degenerate inputs must yield zero capacity")
	}
}

func TestFailureSemantics(t *testing.T) {
	r0, _ := NewArray(seagate, 4, RAID0)
	r5, _ := NewArray(seagate, 4, RAID5)
	mir, _ := NewArray(seagate, 4, Mirrored)

	if err := r0.Fail(9); err == nil {
		t.Fatal("failing a non-existent disk accepted")
	}
	for _, a := range []*Array{r0, r5, mir} {
		if a.Degraded() {
			t.Fatal("fresh array degraded")
		}
		if err := a.Fail(1); err != nil {
			t.Fatal(err)
		}
		if !a.Degraded() {
			t.Fatal("Fail did not degrade")
		}
		if err := a.Fail(2); err == nil {
			t.Fatal("double failure accepted")
		}
	}
	if r0.Online() {
		t.Fatal("RAID0 survived a disk failure")
	}
	if !r5.Online() || !mir.Online() {
		t.Fatal("redundant scheme went offline on single failure")
	}
	if r0.StreamCapacity(4e6, 1) != 0 {
		t.Fatal("offline RAID0 still serves")
	}

	healthy, _ := NewArray(seagate, 4, RAID5)
	if r5.StreamCapacity(4e6, 1) != healthy.StreamCapacity(4e6, 1)/2 {
		t.Fatalf("degraded RAID5 capacity %d, healthy %d: want half",
			r5.StreamCapacity(4e6, 1), healthy.StreamCapacity(4e6, 1))
	}

	r5.Repair()
	if r5.Degraded() {
		t.Fatal("Repair did not clear the failure")
	}
	if r5.StreamCapacity(4e6, 1) != healthy.StreamCapacity(4e6, 1) {
		t.Fatal("capacity not restored after repair")
	}
}

func TestRebuildSeconds(t *testing.T) {
	r5, _ := NewArray(seagate, 4, RAID5)
	secs, err := r5.RebuildSeconds(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 36 GB at 20 MB/s = 1800 s.
	if math.Abs(secs-1800) > 1e-9 {
		t.Fatalf("rebuild = %g s, want 1800", secs)
	}
	if _, err := r5.RebuildSeconds(0); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := r5.RebuildSeconds(1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	r0, _ := NewArray(seagate, 4, RAID0)
	if _, err := r0.RebuildSeconds(0.5); err == nil {
		t.Fatal("RAID0 rebuild accepted")
	}
}

func TestBottleneckStreams(t *testing.T) {
	// The paper's server: 1.8 Gb/s out. A big healthy array outruns the
	// link, so the network binds — the paper's modeling assumption.
	a, _ := NewArray(seagate, 16, RAID5)
	streams, diskBound := BottleneckStreams(a, 1.8e9, 4e6, 2)
	if diskBound {
		t.Fatalf("16-disk array should outrun a 1.8 Gb/s link (disk cap %d)",
			a.StreamCapacity(4e6, 2))
	}
	if streams != 450 {
		t.Fatalf("network-bound streams = %d, want 450", streams)
	}
	// A tiny array flips the bottleneck.
	small, _ := NewArray(seagate, 1, RAID0)
	streams, diskBound = BottleneckStreams(small, 1.8e9, 4e6, 1)
	if !diskBound {
		t.Fatal("single disk should bind before a 1.8 Gb/s link")
	}
	if streams != small.StreamCapacity(4e6, 1) {
		t.Fatal("bottleneck stream count wrong")
	}
}

// TestCapacityMonotonicity: stream capacity never increases with bit rate
// and never decreases with round length (seek amortization), for arbitrary
// parameters.
func TestCapacityMonotonicity(t *testing.T) {
	f := func(rateRaw, roundRaw uint8) bool {
		a, err := NewArray(seagate, 4, RAID5)
		if err != nil {
			return false
		}
		rate := 1e6 + float64(rateRaw)*1e5
		round := 0.5 + float64(roundRaw)/64
		c1 := a.StreamCapacity(rate, round)
		c2 := a.StreamCapacity(rate+1e6, round)
		c3 := a.StreamCapacity(rate, round*2)
		return c2 <= c1 && c3 >= c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStreamCapacity(b *testing.B) {
	a, _ := NewArray(seagate, 8, RAID5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.StreamCapacity(4e6, 2)
	}
}
