// Package disk models the storage subsystem inside each VoD server: a disk
// array with a striping scheme, round-based stream retrieval, and failure /
// degraded-mode behavior.
//
// The paper's cluster places whole-video replicas per server and notes that
// "data striping and recovery schemes can be employed within the servers to
// enhance availability" (§1), citing the classic streaming-RAID literature
// (Tobagi et al., Berson et al.). This package supplies that substrate: it
// answers how many concurrent streams a server's array can sustain, how much
// usable storage a scheme leaves, and what happens when a disk dies. The
// cluster runtime consumes it as an optional per-server concurrent-stream
// limit, which lets the simulator check the paper's modeling assumption that
// the outgoing network link — not disk I/O — is the binding resource.
//
// The retrieval model is the standard round-based one: time is divided into
// rounds of length T and each active stream consumes bitRate·T bits per
// round. How that chunk maps to disks depends on the striping granularity:
//
//   - Coarse-grained striping reads the whole round-chunk from a single
//     disk, rotating across disks round by round. Each disk pays one
//     seek+transfer per stream it serves that round, so the array capacity
//     is dataDisks × floor(T / (overhead + chunkBits/transferRate)) —
//     linear in the disk count.
//   - Fine-grained striping splits every chunk across all data disks, which
//     operate in lockstep: every stream costs every disk a seek each round.
//     Capacity is floor(T / (overhead + chunkBits/dataDisks/transferRate)),
//     which saturates at T/overhead no matter how many disks are added —
//     the "striping doesn't scale" effect of Chou et al. that motivates the
//     paper's whole-video replication across servers.
package disk

import (
	"fmt"
	"math"
)

// Disk describes one mechanical disk.
type Disk struct {
	// CapacityBytes is the formatted capacity.
	CapacityBytes float64
	// SeekMs is the average positioning overhead (seek + rotational
	// latency) paid once per chunk retrieval, in milliseconds.
	SeekMs float64
	// TransferMBps is the sustained sequential transfer rate in
	// megabytes per second.
	TransferMBps float64
}

// Validate checks the disk parameters.
func (d Disk) Validate() error {
	if d.CapacityBytes <= 0 {
		return fmt.Errorf("disk: capacity must be positive, got %g", d.CapacityBytes)
	}
	if d.SeekMs < 0 {
		return fmt.Errorf("disk: seek must be non-negative, got %g", d.SeekMs)
	}
	if d.TransferMBps <= 0 {
		return fmt.Errorf("disk: transfer rate must be positive, got %g", d.TransferMBps)
	}
	return nil
}

// Scheme is the array's striping / redundancy organization.
type Scheme int

const (
	// RAID0 stripes data across all disks with no redundancy: full
	// capacity and bandwidth, but a single disk failure takes the whole
	// array (and so the server's content) offline.
	RAID0 Scheme = iota
	// RAID5 stripes data with one rotating parity disk's worth of
	// capacity: usable capacity (n−1)/n, and a single failure is survived
	// in degraded mode, where every read of the failed disk's data costs a
	// full-stripe reconstruction.
	RAID5
	// Mirrored pairs disks (RAID-1): half the capacity, failures survived
	// by the twin, read bandwidth halved while a twin rebuilds.
	Mirrored
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case RAID0:
		return "raid0"
	case RAID5:
		return "raid5"
	case Mirrored:
		return "mirrored"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Granularity selects how stream chunks are striped across the data disks.
type Granularity int

const (
	// CoarseGrained reads each stream's whole per-round chunk from one
	// disk, rotating across disks: seeks are amortized over large
	// transfers and capacity scales linearly with disks.
	CoarseGrained Granularity = iota
	// FineGrained splits every chunk across all data disks: per-stream
	// seek cost is paid on every disk, so capacity saturates at
	// round/overhead regardless of the disk count.
	FineGrained
)

// String names the granularity.
func (g Granularity) String() string {
	if g == FineGrained {
		return "fine"
	}
	return "coarse"
}

// Array is a homogeneous disk array with a striping scheme. The zero value
// is not usable; construct with NewArray.
type Array struct {
	disk   Disk
	n      int
	scheme Scheme
	gran   Granularity
	failed int // index of the failed disk, or -1
}

// SetGranularity selects the striping granularity (default CoarseGrained).
func (a *Array) SetGranularity(g Granularity) { a.gran = g }

// Granularity returns the striping granularity.
func (a *Array) Granularity() Granularity { return a.gran }

// NewArray builds an array of n identical disks under the given scheme with
// coarse-grained striping.
func NewArray(d Disk, n int, scheme Scheme) (*Array, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("disk: array needs at least one disk, got %d", n)
	}
	switch scheme {
	case RAID0:
	case RAID5:
		if n < 3 {
			return nil, fmt.Errorf("disk: RAID5 needs at least 3 disks, got %d", n)
		}
	case Mirrored:
		if n < 2 || n%2 != 0 {
			return nil, fmt.Errorf("disk: mirroring needs an even disk count ≥ 2, got %d", n)
		}
	default:
		return nil, fmt.Errorf("disk: unknown scheme %v", scheme)
	}
	return &Array{disk: d, n: n, scheme: scheme, failed: -1}, nil
}

// Disks returns the number of disks in the array.
func (a *Array) Disks() int { return a.n }

// Scheme returns the striping scheme.
func (a *Array) Scheme() Scheme { return a.scheme }

// Degraded reports whether a disk is currently failed.
func (a *Array) Degraded() bool { return a.failed >= 0 }

// Fail marks disk i failed. Only a single simultaneous failure is modeled;
// failing a second disk is an error (for RAID5 and RAID0 it would mean data
// loss anyway).
func (a *Array) Fail(i int) error {
	if i < 0 || i >= a.n {
		return fmt.Errorf("disk: no disk %d in a %d-disk array", i, a.n)
	}
	if a.failed >= 0 {
		return fmt.Errorf("disk: disk %d already failed", a.failed)
	}
	a.failed = i
	return nil
}

// Repair restores the failed disk.
func (a *Array) Repair() {
	a.failed = -1
}

// DataDisks returns the number of disks holding (non-redundant) data.
func (a *Array) DataDisks() int {
	switch a.scheme {
	case RAID0:
		return a.n
	case RAID5:
		return a.n - 1
	case Mirrored:
		return a.n / 2
	}
	return 0
}

// UsableBytes returns the array's usable storage capacity under its scheme.
func (a *Array) UsableBytes() float64 {
	return float64(a.DataDisks()) * a.disk.CapacityBytes
}

// Online reports whether the array can serve data at all. RAID0 goes offline
// on any failure; the redundant schemes survive one.
func (a *Array) Online() bool {
	return !a.Degraded() || a.scheme != RAID0
}

// perChunkSeconds returns the disk time to retrieve one stream's per-round
// share from one disk under the array's striping granularity.
func (a *Array) perChunkSeconds(bitRate, roundSeconds float64) float64 {
	chunkBytes := bitRate * roundSeconds / 8
	if a.gran == FineGrained {
		chunkBytes /= float64(a.DataDisks())
	}
	transfer := chunkBytes / (a.disk.TransferMBps * 1e6)
	return a.disk.SeekMs/1e3 + transfer
}

// StreamCapacity returns the number of concurrent streams of the given bit
// rate (bits/s) the array sustains with retrieval rounds of roundSeconds,
// accounting for striping granularity and degraded mode:
//
//   - Coarse-grained: dataDisks × perDisk streams; fine-grained: every
//     stream occupies every data disk, so the per-disk count IS the array
//     capacity.
//   - RAID0: zero when failed.
//   - RAID5 degraded: every chunk that would have come from the failed disk
//     is reconstructed by reading all n−1 survivors, which effectively
//     doubles the survivors' load for that share; the standard capacity
//     model halves the array's sustained rate.
//   - Mirrored degraded: the failed twin's reads all land on its partner,
//     halving capacity.
func (a *Array) StreamCapacity(bitRate, roundSeconds float64) int {
	if bitRate <= 0 || roundSeconds <= 0 {
		return 0
	}
	if !a.Online() {
		return 0
	}
	perDisk := int(roundSeconds / a.perChunkSeconds(bitRate, roundSeconds))
	capacity := perDisk
	if a.gran == CoarseGrained {
		capacity *= a.DataDisks()
	}
	if a.Degraded() {
		capacity /= 2
	}
	return capacity
}

// RebuildSeconds estimates the time to rebuild a replaced disk at the given
// fraction (0..1] of its sequential bandwidth — reading the survivors and
// writing the replacement proceed at the replacement's write rate.
func (a *Array) RebuildSeconds(bandwidthFraction float64) (float64, error) {
	if bandwidthFraction <= 0 || bandwidthFraction > 1 {
		return 0, fmt.Errorf("disk: rebuild bandwidth fraction must be in (0,1], got %g", bandwidthFraction)
	}
	if a.scheme == RAID0 {
		return 0, fmt.Errorf("disk: RAID0 cannot rebuild; contents are lost")
	}
	rate := a.disk.TransferMBps * 1e6 * bandwidthFraction
	return a.disk.CapacityBytes / rate, nil
}

// BottleneckStreams compares the array's stream capacity against an outgoing
// network link for the same bit rate and reports the binding constraint:
// the sustainable stream count and whether the disk (true) or the network
// (false) limits it.
func BottleneckStreams(a *Array, networkBps, bitRate, roundSeconds float64) (streams int, diskBound bool) {
	diskCap := a.StreamCapacity(bitRate, roundSeconds)
	netCap := int(math.Floor(networkBps / bitRate))
	if diskCap < netCap {
		return diskCap, true
	}
	return netCap, false
}
