package dynrep

import (
	"math/rand"
	"sort"
	"testing"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/replicate"
)

// referenceTarget re-implements the Manager's pre-refactor private target
// computation — its own counts array, add-one smoothing, pop-desc/video-asc
// ranking, shadow problem, budget clamp — so the regression test can prove
// the shared-estimator refactor changed no decision.
func referenceTarget(counts []float64, p *core.Problem, rep replicate.Replicator) []int {
	totalObs := 0.0
	for _, c := range counts {
		totalObs += c
	}
	if totalObs < 1 {
		return nil
	}
	m := p.M()
	type ranked struct {
		video int
		pop   float64
	}
	rankedVideos := make([]ranked, m)
	denom := totalObs + float64(m)
	for v := 0; v < m; v++ {
		rankedVideos[v] = ranked{video: v, pop: (counts[v] + 1) / denom}
	}
	sort.Slice(rankedVideos, func(i, j int) bool {
		if rankedVideos[i].pop != rankedVideos[j].pop {
			return rankedVideos[i].pop > rankedVideos[j].pop
		}
		return rankedVideos[i].video < rankedVideos[j].video
	})
	shadow := p.Clone()
	for rank := range shadow.Catalog {
		shadow.Catalog[rank].ID = rank
		shadow.Catalog[rank].Popularity = rankedVideos[rank].pop
	}
	budget, err := shadow.ClusterReplicaCapacity()
	if err != nil {
		return nil
	}
	if max := shadow.M() * shadow.N(); budget > max {
		budget = max
	}
	if budget < shadow.M() {
		return nil
	}
	byRank, err := rep.Replicate(shadow, budget)
	if err != nil {
		return nil
	}
	target := make([]int, m)
	for rank, r := range byRank {
		target[rankedVideos[rank].video] = r
	}
	return target
}

// TestTargetVectorUnchangedByEstimatorRefactor drives a Manager and a
// bitwise reference of the old private-counter logic through the same
// randomized observation stream, comparing the decayed counters and the
// target replica vector after every round. Identical targets mean identical
// deficits, and the counters feeding heat ordering and eviction coldness
// match exactly, so the Manager's decisions are unchanged.
func TestTargetVectorUnchangedByEstimatorRefactor(t *testing.T) {
	p, layout := shiftProblem(t)
	st, err := cluster.New(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	const decay = 0.5
	m, err := New(p, Options{Decay: decay})
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, p.M())
	rng := rand.New(rand.NewSource(7))

	for round := 0; round < 12; round++ {
		// A drifting hot spot plus background noise, identical on both sides.
		hot := (round / 3) % p.M()
		for i := 0; i < 200; i++ {
			v := hot
			if rng.Float64() < 0.3 {
				v = rng.Intn(p.M())
			}
			m.Observe(v)
			ref[v]++
		}
		got := m.targetVector(st)
		want := referenceTarget(ref, p, m.opts.Replicator)
		if len(got) != len(want) {
			t.Fatalf("round %d: target length %d vs reference %d", round, len(got), len(want))
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("round %d: target[%d] = %d, reference says %d", round, v, got[v], want[v])
			}
		}
		// Decay both sides the way Tick does, and require bitwise-equal
		// counters (same adds, same multiplies, same order).
		m.est.Decay()
		for i := range ref {
			ref[i] *= decay
		}
		for v := 0; v < p.M(); v++ {
			if c := m.est.Count(v); c != ref[v] {
				t.Fatalf("round %d: counts[%d] = %g, reference %g", round, v, c, ref[v])
			}
		}
	}
}
