// Package dynrep implements runtime dynamic replication: the paper notes
// that its replication algorithms "can be applied for dynamic replication
// during run-time" (§4.1.2), and its conclusion pairs the conservative
// offline placement with runtime strategies over the cluster backbone.
//
// The Manager watches the request stream, maintains an exponentially decayed
// per-video demand estimate, and periodically recomputes the target replica
// vector by running one of the §4.1 replication algorithms on the empirical
// popularity ranking. Deviations are repaired by migrating replicas over the
// internal backbone — each in-flight copy reserves backbone bandwidth for
// size/rate seconds — evicting surplus replicas when the destination server
// is out of storage. Active streams are never disturbed.
//
// Manager implements the simulator's Controller hook (sim.Controller)
// structurally, so the packages stay decoupled.
package dynrep

import (
	"fmt"
	"sort"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/demand"
	"vodcluster/internal/replicate"
)

// Options configures a Manager. The zero value of optional fields gets
// sensible defaults from New.
type Options struct {
	// Replicator recomputes target replica counts from empirical
	// popularity; nil means the Zipf-interval scheme (the paper's choice
	// for runtime use, being O(M log M)).
	Replicator replicate.Replicator
	// IntervalSec is the adjustment cadence; default 300 s.
	IntervalSec float64
	// Decay multiplies the demand counters each tick, implementing an
	// exponential sliding window; default 0.5, must be in [0, 1).
	Decay float64
	// MigrationRate is the backbone bandwidth one in-flight copy consumes,
	// in bits/s; default 200 Mb/s (a 2.7 GB video then moves in ~108 s).
	MigrationRate float64
	// MaxPerTick caps replica copies started per adjustment round;
	// default 2.
	MaxPerTick int
}

// Manager is a runtime dynamic-replication controller for one simulation
// run. It is not safe for concurrent use; create one per run.
type Manager struct {
	p    *core.Problem
	opts Options

	est      *demand.Estimator // shared decayed-demand estimator
	inflight map[int]bool      // videos currently being copied

	migrations int
	evictions  int
	skipped    int
}

// withDefaults validates opts against the problem and fills in defaults.
func (opts Options) withDefaults(p *core.Problem) (Options, error) {
	var zero Options
	if p == nil {
		return zero, fmt.Errorf("dynrep: nil problem")
	}
	if err := p.Validate(); err != nil {
		return zero, err
	}
	if opts.Replicator == nil {
		opts.Replicator = replicate.ZipfInterval{}
	}
	if opts.IntervalSec == 0 {
		opts.IntervalSec = 300
	}
	if opts.IntervalSec < 0 {
		return zero, fmt.Errorf("dynrep: interval must be positive, got %g", opts.IntervalSec)
	}
	if opts.Decay == 0 {
		opts.Decay = 0.5
	}
	if opts.Decay < 0 || opts.Decay >= 1 {
		return zero, fmt.Errorf("dynrep: decay must be in [0,1), got %g", opts.Decay)
	}
	if opts.MigrationRate == 0 {
		opts.MigrationRate = 200 * core.Mbps
	}
	if opts.MigrationRate < 0 {
		return zero, fmt.Errorf("dynrep: migration rate must be positive, got %g", opts.MigrationRate)
	}
	if opts.MaxPerTick == 0 {
		opts.MaxPerTick = 2
	}
	if opts.MaxPerTick < 0 {
		return zero, fmt.Errorf("dynrep: MaxPerTick must be positive, got %d", opts.MaxPerTick)
	}
	return opts, nil
}

// newManager builds a Manager from already-validated options.
func newManager(p *core.Problem, opts Options) *Manager {
	est, err := demand.NewEstimator(p.M(), opts.Decay)
	if err != nil {
		// withDefaults already validated the problem and decay range.
		panic(err)
	}
	return &Manager{
		p:        p,
		opts:     opts,
		est:      est,
		inflight: make(map[int]bool),
	}
}

// New builds a Manager for the given problem.
func New(p *core.Problem, opts Options) (*Manager, error) {
	opts, err := opts.withDefaults(p)
	if err != nil {
		return nil, err
	}
	return newManager(p, opts), nil
}

// NewFactory validates (p, opts) once, up front, and returns a constructor
// producing a fresh Manager per call. A Manager holds per-run state, so
// replicated simulation runs need one each — sim.Config.NewController takes
// a factory for exactly that reason, but its signature has no error return.
// NewFactory moves the validation failure before the runs start instead of
// panicking inside one.
func NewFactory(p *core.Problem, opts Options) (func() *Manager, error) {
	opts, err := opts.withDefaults(p)
	if err != nil {
		return nil, err
	}
	return func() *Manager { return newManager(p, opts) }, nil
}

// Migrations returns the number of replica copies completed.
func (m *Manager) Migrations() int { return m.migrations }

// Evictions returns the number of surplus replicas removed.
func (m *Manager) Evictions() int { return m.evictions }

// Skipped returns adjustment opportunities abandoned for lack of backbone
// bandwidth or eligible servers.
func (m *Manager) Skipped() int { return m.skipped }

// Observe implements the controller hook: record one request.
func (m *Manager) Observe(video int) { m.est.Observe(video) }

// Interval implements the controller hook.
func (m *Manager) Interval() float64 { return m.opts.IntervalSec }

// Tick implements the controller hook: one adjustment round.
func (m *Manager) Tick(now float64, st *cluster.State, schedule func(delay float64, fn func(now float64))) {
	defer m.est.Decay()
	if m.p.BackboneBandwidth <= 0 {
		return // migrations need the backbone
	}
	counts := m.est.Snapshot()
	target := m.targetVector(st)
	if target == nil {
		return
	}
	// Deficit videos, hottest first.
	type deficit struct {
		video int
		want  int
		heat  float64
	}
	var deficits []deficit
	for v := 0; v < m.p.M(); v++ {
		if m.inflight[v] {
			continue
		}
		if have := st.Replicas(v); target[v] > have {
			deficits = append(deficits, deficit{video: v, want: target[v], heat: counts[v]})
		}
	}
	sort.Slice(deficits, func(i, j int) bool {
		if deficits[i].heat != deficits[j].heat {
			return deficits[i].heat > deficits[j].heat
		}
		return deficits[i].video < deficits[j].video
	})

	started := 0
	for _, d := range deficits {
		if started >= m.opts.MaxPerTick {
			break
		}
		if m.startMigration(d.video, target, st, schedule) {
			started++
		} else {
			m.skipped++
		}
	}
}

// targetVector recomputes the desired replica counts from the empirical
// demand ranking. It returns nil when there is nothing to go on yet.
func (m *Manager) targetVector(st *cluster.State) []int {
	// Empirical popularity with add-one smoothing so cold videos keep a
	// floor (and the catalog constraint p > 0 holds).
	pops, totalObs := m.est.SmoothedPopularity()
	if totalObs < 1 {
		return nil
	}
	rankedVideos := demand.RankByPopularity(pops)
	// Shadow problem with the empirical ranking.
	shadow := m.p.Clone()
	for rank := range shadow.Catalog {
		shadow.Catalog[rank].ID = rank
		shadow.Catalog[rank].Popularity = rankedVideos[rank].Pop
	}
	budget, err := shadow.ClusterReplicaCapacity()
	if err != nil {
		return nil
	}
	if max := shadow.M() * shadow.N(); budget > max {
		budget = max
	}
	if budget < shadow.M() {
		return nil
	}
	byRank, err := m.opts.Replicator.Replicate(shadow, budget)
	if err != nil {
		return nil
	}
	target := make([]int, m.p.M())
	for rank, r := range byRank {
		target[rankedVideos[rank].Video] = r
	}
	return target
}

// startMigration tries to begin copying one new replica of video v; it
// reports whether a copy started.
func (m *Manager) startMigration(v int, target []int, st *cluster.State, schedule func(delay float64, fn func(now float64))) bool {
	dst := m.pickDestination(v, target, st)
	if dst < 0 {
		return false
	}
	if !st.ReserveBackbone(m.opts.MigrationRate) {
		return false
	}
	size := m.p.Catalog[v].SizeBytes()
	delay := size * 8 / m.opts.MigrationRate
	m.inflight[v] = true
	schedule(delay, func(now float64) {
		st.ReleaseBackbone(m.opts.MigrationRate)
		delete(m.inflight, v)
		// The destination may have died or filled up during the copy;
		// dropping the finished copy then is the faithful outcome.
		if err := st.AddReplica(v, dst); err == nil {
			m.migrations++
		}
	})
	return true
}

// pickDestination chooses the server to receive a new replica of v: an up
// server not holding v with the most free outgoing bandwidth, evicting a
// surplus replica if storage demands it. It returns -1 when no server is
// eligible.
func (m *Manager) pickDestination(v int, target []int, st *cluster.State) int {
	size := m.p.Catalog[v].SizeBytes()
	best := -1
	bestFree := -1.0
	for s := 0; s < m.p.N(); s++ {
		if !st.Up(s) {
			continue
		}
		holders := st.Holders(v)
		if contains(holders, s) {
			continue
		}
		if st.StorageFree(s) < size && !m.canEvictOn(s, target, st) {
			continue
		}
		if free := st.FreeBandwidth(s); free > bestFree {
			best, bestFree = s, free
		}
	}
	if best == -1 {
		return -1
	}
	// Make room if needed.
	for st.StorageFree(best) < size {
		if !m.evictOne(best, target, st) {
			return -1
		}
	}
	return best
}

// canEvictOn reports whether server s holds at least one surplus replica.
func (m *Manager) canEvictOn(s int, target []int, st *cluster.State) bool {
	for v := 0; v < m.p.M(); v++ {
		if st.Replicas(v) > target[v] && st.Replicas(v) > 1 && contains(st.Holders(v), s) {
			return true
		}
	}
	return false
}

// evictOne removes the coldest surplus replica from server s.
func (m *Manager) evictOne(s int, target []int, st *cluster.State) bool {
	victim := -1
	for v := 0; v < m.p.M(); v++ {
		if st.Replicas(v) > target[v] && st.Replicas(v) > 1 && contains(st.Holders(v), s) {
			if victim == -1 || m.est.Count(v) < m.est.Count(victim) {
				victim = v
			}
		}
	}
	if victim == -1 {
		return false
	}
	if err := st.RemoveReplica(victim, s); err != nil {
		return false
	}
	m.evictions++
	return true
}

func contains(xs []int, x int) bool {
	i := sort.SearchInts(xs, x)
	return i < len(xs) && xs[i] == x
}
