package dynrep

import (
	"testing"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
)

// shiftProblem builds a small cluster with backbone bandwidth for
// migrations.
func shiftProblem(t testing.TB) (*core.Problem, *core.Layout) {
	t.Helper()
	c, err := core.NewCatalog(20, 0.9, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         4,
		StoragePerServer:   7 * c[0].SizeBytes(),
		BandwidthPerServer: 0.5 * core.Gbps,
		ArrivalRate:        5.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
		BackboneBandwidth:  core.Gbps,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	budget, err := p.TargetTotalReplicas(1.4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	return p, layout
}

// fakeScheduler collects scheduled callbacks so tests can fire them at will.
type fakeScheduler struct {
	fns []func(now float64)
}

func (f *fakeScheduler) schedule(delay float64, fn func(now float64)) {
	f.fns = append(f.fns, fn)
}

func (f *fakeScheduler) fireAll(now float64) {
	fns := f.fns
	f.fns = nil
	for _, fn := range fns {
		fn(now)
	}
}

func TestNewValidation(t *testing.T) {
	p, _ := shiftProblem(t)
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := New(p, Options{Decay: 1.5}); err == nil {
		t.Fatal("decay ≥ 1 accepted")
	}
	if _, err := New(p, Options{IntervalSec: -5}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := New(p, Options{MigrationRate: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := New(p, Options{MaxPerTick: -1}); err == nil {
		t.Fatal("negative MaxPerTick accepted")
	}
	m, err := New(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Interval() != 300 {
		t.Fatalf("default interval %g", m.Interval())
	}
}

func TestNewFactoryValidatesUpFrontAndBuildsFreshManagers(t *testing.T) {
	p, _ := shiftProblem(t)
	if _, err := NewFactory(nil, Options{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	if _, err := NewFactory(p, Options{Decay: 1.5}); err == nil {
		t.Fatal("decay ≥ 1 accepted")
	}
	newManager, err := NewFactory(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := newManager(), newManager()
	if a == b {
		t.Fatal("factory returned a shared Manager; replicated runs need one each")
	}
	if a.Interval() != 300 {
		t.Fatalf("default interval %g", a.Interval())
	}
	// Per-run state must not leak between the factory's products.
	a.Observe(0)
	if b.est.Count(0) != 0 {
		t.Fatal("observation leaked into a sibling Manager")
	}
}

func TestNoObservationsNoAction(t *testing.T) {
	p, layout := shiftProblem(t)
	st, err := cluster.New(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fs fakeScheduler
	m.Tick(0, st, fs.schedule)
	if len(fs.fns) != 0 || m.Migrations() != 0 {
		t.Fatal("manager acted without demand data")
	}
}

func TestShiftTriggersMigrationTowardNewHotVideo(t *testing.T) {
	p, layout := shiftProblem(t)
	st, err := cluster.New(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Options{MaxPerTick: 8, IntervalSec: 60})
	if err != nil {
		t.Fatal(err)
	}
	// The coldest video suddenly takes all the traffic.
	hot := p.M() - 1
	before := st.Replicas(hot)
	for i := 0; i < 500; i++ {
		m.Observe(hot)
	}
	var fs fakeScheduler
	for round := 0; round < 6 && st.Replicas(hot) <= before; round++ {
		// Re-observe each round: decay would otherwise wash the signal out.
		for i := 0; i < 500; i++ {
			m.Observe(hot)
		}
		m.Tick(float64(round)*60, st, fs.schedule)
		fs.fireAll(float64(round)*60 + 30)
	}
	if st.Replicas(hot) <= before {
		t.Fatalf("hot video still has %d replicas after sustained demand", st.Replicas(hot))
	}
	if m.Migrations() == 0 {
		t.Fatal("migration counter did not move")
	}
}

func TestMigrationRespectsBackbone(t *testing.T) {
	p, layout := shiftProblem(t)
	q := p.Clone()
	q.BackboneBandwidth = 0 // no backbone: the manager must stand down
	st, err := cluster.New(q, layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(q, Options{MaxPerTick: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		m.Observe(q.M() - 1)
	}
	var fs fakeScheduler
	m.Tick(0, st, fs.schedule)
	if len(fs.fns) != 0 {
		t.Fatal("manager scheduled migrations without a backbone")
	}
}

func TestBackboneReservedDuringCopy(t *testing.T) {
	p, layout := shiftProblem(t)
	st, err := cluster.New(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	rate := 100 * core.Mbps
	m, err := New(p, Options{MaxPerTick: 1, MigrationRate: rate})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		m.Observe(p.M() - 1)
	}
	var fs fakeScheduler
	m.Tick(0, st, fs.schedule)
	if len(fs.fns) != 1 {
		t.Fatalf("expected exactly one migration, got %d", len(fs.fns))
	}
	if got := st.BackboneFree(); got != p.BackboneBandwidth-rate {
		t.Fatalf("backbone free %g during copy, want %g", got, p.BackboneBandwidth-rate)
	}
	fs.fireAll(100)
	if got := st.BackboneFree(); got != p.BackboneBandwidth {
		t.Fatalf("backbone not released after copy: %g", got)
	}
	if m.Migrations() != 1 {
		t.Fatalf("migrations %d", m.Migrations())
	}
}

func TestEvictionMakesRoom(t *testing.T) {
	// Fill storage completely so a new replica requires an eviction.
	c, err := core.NewCatalog(8, 0.9, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         2,
		StoragePerServer:   8 * c[0].SizeBytes(),
		BandwidthPerServer: 0.5 * core.Gbps,
		ArrivalRate:        5.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
		BackboneBandwidth:  core.Gbps,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, 16) // saturate: every video everywhere
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cluster.New(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Options{MaxPerTick: 4})
	if err != nil {
		t.Fatal(err)
	}
	// With storage saturated and every video fully replicated there are no
	// deficits: the manager must do nothing rather than thrash.
	for i := 0; i < 300; i++ {
		m.Observe(7)
	}
	var fs fakeScheduler
	m.Tick(0, st, fs.schedule)
	fs.fireAll(120)
	if m.Migrations() != 0 {
		t.Fatal("fully replicated cluster still migrated")
	}
	for v := 0; v < p.M(); v++ {
		if st.Replicas(v) < 1 {
			t.Fatal("a video lost its last replica")
		}
	}
}

func TestCountersAndDecay(t *testing.T) {
	p, layout := shiftProblem(t)
	st, err := cluster.New(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Options{Decay: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(0)
	m.Observe(0)
	m.Observe(-5)        // out of range: ignored
	m.Observe(p.M() + 3) // out of range: ignored
	if got := m.est.Count(0); got != 2 {
		t.Fatalf("counts[0] = %g", got)
	}
	var fs fakeScheduler
	m.Tick(0, st, fs.schedule)
	if got := m.est.Count(0); got != 0.5 {
		t.Fatalf("decay not applied: %g", got)
	}
}
