package obs

import (
	"testing"
	"time"
)

// TestNewManifest: the manifest pins every environment field a perf-delta
// investigation starts from.
func TestNewManifest(t *testing.T) {
	m := NewManifest()
	if _, err := time.Parse(time.RFC3339, m.Generated); err != nil {
		t.Fatalf("Generated %q is not RFC3339: %v", m.Generated, err)
	}
	if m.GitSHA == "" {
		t.Fatal("GitSHA empty; want a revision or \"unknown\"")
	}
	if m.GoVersion == "" || m.OS == "" || m.Arch == "" || m.CPUModel == "" {
		t.Fatalf("incomplete manifest: %+v", m)
	}
	if m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Fatalf("cpu counts: NumCPU=%d GOMAXPROCS=%d", m.NumCPU, m.GOMAXPROCS)
	}
	if m.Seed != 0 || m.Flags != nil {
		t.Fatalf("Seed/Flags are the caller's to fill, got %d / %v", m.Seed, m.Flags)
	}
}
