package obs

import (
	"reflect"
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/sim"
)

// simProblem: the micro-cluster the cluster/serve tests use — 3 videos,
// 2 servers, 2 concurrent streams per server — loaded hard enough that a
// run produces both admissions and rejections.
func simProblem(t *testing.T) (*core.Problem, *core.Layout) {
	t.Helper()
	c := core.Catalog{
		{ID: 0, Popularity: 0.5, BitRate: 4 * core.Mbps, Duration: 30 * core.Minute},
		{ID: 1, Popularity: 0.3, BitRate: 4 * core.Mbps, Duration: 30 * core.Minute},
		{ID: 2, Popularity: 0.2, BitRate: 4 * core.Mbps, Duration: 30 * core.Minute},
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         2,
		StoragePerServer:   2 * c[0].SizeBytes(),
		BandwidthPerServer: 10 * core.Mbps,
		ArrivalRate:        1.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	l := core.NewLayout(3)
	l.Replicas = []int{2, 1, 1}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 0}, {2, 1}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	return p, l
}

// TestSimHookTracesLifecycle runs a small simulation with the trace hook
// registered and checks the ring agrees with the run's own accounting:
// one arrive per request, one admit per acceptance, one reject per
// rejection, one end per admitted session — in non-decreasing virtual time.
func TestSimHookTracesLifecycle(t *testing.T) {
	p, layout := simProblem(t)
	tr := NewTracer(4096)
	res, err := sim.Run(sim.Config{
		Problem: p, Layout: layout, Seed: 7,
		Hooks: []sim.Hook{NewSimHook(tr)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Accepted == 0 || res.Rejected == 0 {
		t.Fatalf("run not loaded as intended: %+v", res)
	}
	snap := tr.Snapshot()
	if uint64(len(snap)) != tr.Total() {
		t.Fatalf("ring wrapped (%d resident of %d total); enlarge the test tracer", len(snap), tr.Total())
	}

	counts := map[Kind]int{}
	lastTS := int64(-1)
	sessions := map[int64]Kind{}
	for _, e := range snap {
		counts[e.Kind]++
		if e.TS < lastTS {
			t.Fatalf("event %d went back in time: %d after %d", e.Seq, e.TS, lastTS)
		}
		lastTS = e.TS
		switch e.Kind {
		case KindAdmit:
			if _, dup := sessions[e.Session]; dup {
				t.Fatalf("session %d admitted twice", e.Session)
			}
			sessions[e.Session] = KindAdmit
		case KindEnd, KindTear:
			if sessions[e.Session] != KindAdmit {
				t.Fatalf("session %d ended without an admit in the window", e.Session)
			}
			sessions[e.Session] = e.Kind
		}
	}
	if counts[KindArrive] != res.Requests {
		t.Fatalf("arrive events = %d, run saw %d requests", counts[KindArrive], res.Requests)
	}
	if counts[KindAdmit] != res.Accepted {
		t.Fatalf("admit events = %d, run accepted %d", counts[KindAdmit], res.Accepted)
	}
	if counts[KindReject] != res.Rejected {
		t.Fatalf("reject events = %d, run rejected %d", counts[KindReject], res.Rejected)
	}
	if counts[KindEnd] != counts[KindAdmit] {
		t.Fatalf("end events = %d, admit events = %d; every admitted session should end naturally here",
			counts[KindEnd], counts[KindAdmit])
	}
}

// TestSimHookDeterministic: registering the tracer must not perturb the
// simulation — the run's results with and without the hook are identical.
func TestSimHookDeterministic(t *testing.T) {
	p, layout := simProblem(t)
	bare, err := sim.Run(sim.Config{Problem: p, Layout: layout, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := sim.Run(sim.Config{
		Problem: p, Layout: layout, Seed: 7,
		Hooks: []sim.Hook{NewSimHook(NewTracer(4096))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, traced) {
		t.Fatalf("tracing changed the run:\nbare   %+v\ntraced %+v", bare, traced)
	}
}
