package obs

import (
	"net/http"
	"strconv"
)

// statusWriter captures the response status for the traced span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Middleware wraps an HTTP handler so every served request lands in the
// tracer as one KindHTTP span: TS is the arrival instant, DurNS the handling
// time, Detail "METHOD /path -> status". With a nil tracer the handler is
// returned unwrapped, so wiring is unconditional and free when disabled.
func Middleware(t *Tracer, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := t.NowNS()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		t.Record(Event{
			TS:     start,
			Kind:   KindHTTP,
			DurNS:  t.NowNS() - start,
			Detail: r.Method + " " + r.URL.Path + " -> " + strconv.Itoa(sw.status),
		})
	})
}
