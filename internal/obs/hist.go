package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"vodcluster/internal/stats"
)

// Hist is a concurrency-safe histogram built on stats.Histogram that
// renders itself in the Prometheus text exposition format. Unlike the
// serving daemon's atomic admission-latency histogram (whose bucket set is
// fixed at compile time), Hist takes its range and resolution at
// construction, which is what run-specific instruments — queue depth,
// per-phase latencies — need. A nil *Hist is a valid no-op, mirroring the
// nil-Tracer convention.
type Hist struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// NewHist builds a histogram with n bins spanning [lo, hi).
func NewHist(lo, hi float64, n int) *Hist {
	return &Hist{h: stats.NewHistogram(lo, hi, n)}
}

// Observe records one observation; a no-op on a nil Hist.
func (h *Hist) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(x)
	h.mu.Unlock()
}

// WriteProm renders the histogram as one Prometheus histogram family:
// cumulative buckets at each bin's upper edge plus +Inf, then _sum and
// _count. Observations below the range count into every bucket (they are
// ≤ every edge); observations at or above it only into +Inf. A nil Hist
// writes nothing, so callers render optional instruments unconditionally.
func (h *Hist) WriteProm(w io.Writer, name, help string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := h.h.Underflow()
	for i := 0; i < h.h.Bins(); i++ {
		cum += h.h.Count(i)
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, h.h.BinUpper(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.h.Total())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.h.Total())
}

// ExpHist is a lock-free histogram with exponentially growing bucket upper
// bounds (each bound doubles the previous one), built for hot-path latency
// instruments: Observe is a bucket search over a small fixed table plus two
// atomic adds, so a per-request recording never serializes goroutines the
// way the mutexed Hist would. The sum is accumulated in integer billionths,
// which keeps it an atomic add at nanosecond precision for seconds-valued
// observations. A nil *ExpHist is a valid no-op.
type ExpHist struct {
	bounds []float64
	bins   []atomic.Int64 // len(bounds)+1; the last bin is the +Inf overflow
	count  atomic.Int64
	sumE9  atomic.Int64 // sum of observations, in billionths (1e-9 units)
}

// NewExpHist builds a histogram whose n finite bucket bounds start at lo and
// double: lo, 2lo, 4lo, … — e.g. lo=1e-5, n=18 spans 10µs to ~1.3s.
func NewExpHist(lo float64, n int) *ExpHist {
	if lo <= 0 || n < 1 {
		panic(fmt.Sprintf("obs: NewExpHist(%g, %d): need lo > 0 and n >= 1", lo, n))
	}
	h := &ExpHist{bounds: make([]float64, n), bins: make([]atomic.Int64, n+1)}
	for i := range h.bounds {
		h.bounds[i] = lo
		lo *= 2
	}
	return h
}

// Observe records one observation; a no-op on a nil ExpHist.
func (h *ExpHist) Observe(x float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.bins[i].Add(1)
	h.count.Add(1)
	h.sumE9.Add(int64(x * 1e9))
}

// Count returns the number of observations so far.
func (h *ExpHist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// WriteProm renders the cumulative bucket, _sum, and _count lines of one
// Prometheus histogram series. Unlike Hist.WriteProm it does NOT write the
// # HELP / # TYPE headers: ExpHist instruments are typically labeled (one
// series per listener shard under a shared family name), so the caller
// prints the headers once and then renders each series with its own labels
// string (e.g. `listener="0"`; empty for an unlabeled series).
func (h *ExpHist) WriteProm(w io.Writer, name, labels string) {
	if h == nil {
		return
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, ub := range h.bounds {
		cum += h.bins[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, ub, cum)
	}
	cum += h.bins[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumE9.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumE9.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
	}
}
