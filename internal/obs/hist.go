package obs

import (
	"fmt"
	"io"
	"sync"

	"vodcluster/internal/stats"
)

// Hist is a concurrency-safe histogram built on stats.Histogram that
// renders itself in the Prometheus text exposition format. Unlike the
// serving daemon's atomic admission-latency histogram (whose bucket set is
// fixed at compile time), Hist takes its range and resolution at
// construction, which is what run-specific instruments — queue depth,
// per-phase latencies — need. A nil *Hist is a valid no-op, mirroring the
// nil-Tracer convention.
type Hist struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// NewHist builds a histogram with n bins spanning [lo, hi).
func NewHist(lo, hi float64, n int) *Hist {
	return &Hist{h: stats.NewHistogram(lo, hi, n)}
}

// Observe records one observation; a no-op on a nil Hist.
func (h *Hist) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(x)
	h.mu.Unlock()
}

// WriteProm renders the histogram as one Prometheus histogram family:
// cumulative buckets at each bin's upper edge plus +Inf, then _sum and
// _count. Observations below the range count into every bucket (they are
// ≤ every edge); observations at or above it only into +Inf. A nil Hist
// writes nothing, so callers render optional instruments unconditionally.
func (h *Hist) WriteProm(w io.Writer, name, help string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := h.h.Underflow()
	for i := 0; i < h.h.Bins(); i++ {
		cum += h.h.Count(i)
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, h.h.BinUpper(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.h.Total())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.h.Total())
}
