package obs

import (
	"strconv"

	"vodcluster/internal/sim"
)

// SimHook adapts a Tracer to the simulator's session lifecycle: every
// arrive → admit/reject → end/tear/failover transition of a run lands in
// the ring with its virtual timestamp (1 simulated second = 1e9 ns), so a
// dumped trace of a simulation renders on the same viewers as a live one.
// Register it via sim.Config.Hooks (or NewHooks for parallel replications —
// the tracer itself is concurrency-safe, so one tracer may serve them all).
type SimHook struct {
	sim.BaseHook
	t *Tracer
}

// NewSimHook wraps a tracer as a simulation lifecycle hook.
func NewSimHook(t *Tracer) *SimHook { return &SimHook{t: t} }

// virtualNS converts virtual seconds to the trace's nanosecond domain.
func virtualNS(now float64) int64 { return int64(now * 1e9) }

func (h *SimHook) OnArrival(now float64, video int) {
	h.t.Record(Event{TS: virtualNS(now), Kind: KindArrive, Video: video})
}

func (h *SimHook) OnAdmit(now float64, s *sim.Session) {
	h.t.Record(Event{TS: virtualNS(now), Kind: KindAdmit,
		Session: int64(s.ID), Video: s.Video, Server: s.Server})
}

func (h *SimHook) OnReject(now float64, video int, measured bool) {
	h.t.Record(Event{TS: virtualNS(now), Kind: KindReject, Video: video})
}

func (h *SimHook) OnRetryQueued(now float64, video int, measured bool) {
	h.t.Record(Event{TS: virtualNS(now), Kind: KindRetry, Video: video})
}

func (h *SimHook) OnRetryOutcome(now float64, video int, admitted, measured bool) {
	// A successful retry already produced its OnAdmit event; only the
	// abandonment is a distinct outcome.
	if !admitted {
		h.t.Record(Event{TS: virtualNS(now), Kind: KindRenege, Video: video})
	}
}

func (h *SimHook) OnEnd(now float64, s *sim.Session) {
	h.t.Record(Event{TS: virtualNS(now), Kind: KindEnd,
		Session: int64(s.ID), Video: s.Video, Server: s.Server})
}

func (h *SimHook) OnTear(now float64, s *sim.Session) {
	h.t.Record(Event{TS: virtualNS(now), Kind: KindTear,
		Session: int64(s.ID), Video: s.Video, Server: s.Server})
}

func (h *SimHook) OnSalvage(now float64, old, s *sim.Session) {
	h.t.Record(Event{TS: virtualNS(now), Kind: KindFailover,
		Session: int64(s.ID), Video: s.Video, Server: s.Server,
		Detail: "from server " + strconv.Itoa(old.Server)})
}
