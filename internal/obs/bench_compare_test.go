package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func metric(name string, higher, gate bool, samples ...float64) BenchMetric {
	return NewBenchMetric(name, "u", higher, gate, samples)
}

func record(ms ...BenchMetric) *BenchRecord {
	return &BenchRecord{Manifest: NewManifest(), Benchmarks: ms}
}

// TestCompareBenchIdentical: a record against itself never regresses.
func TestCompareBenchIdentical(t *testing.T) {
	r := record(
		metric("throughput", true, true, 100, 102, 98),
		metric("latency", false, true, 5, 5.2, 4.9),
	)
	deltas, failed := CompareBench(r, r, 0.10)
	if failed {
		t.Fatalf("self-comparison failed: %+v", deltas)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
}

// TestCompareBenchDirections: the signed delta counts a drop in a
// higher-is-better metric and a rise in a lower-is-better metric both as
// worse — and the symmetric improvements never fail.
func TestCompareBenchDirections(t *testing.T) {
	oldRec := record(
		metric("throughput", true, true, 100, 100, 100),
		metric("latency", false, true, 10, 10, 10),
	)
	worse := record(
		metric("throughput", true, true, 50, 50, 50),
		metric("latency", false, true, 20, 20, 20),
	)
	deltas, failed := CompareBench(oldRec, worse, 0.10)
	if !failed {
		t.Fatal("halved throughput and doubled latency passed the gate")
	}
	for _, d := range deltas {
		if !d.Regressed {
			t.Fatalf("%s should have regressed: %+v", d.Name, d)
		}
		if d.Pct < 0.45 {
			t.Fatalf("%s Pct = %g, want ~+0.5/+1.0 (positive = worse)", d.Name, d.Pct)
		}
	}
	better := record(
		metric("throughput", true, true, 200, 200, 200),
		metric("latency", false, true, 5, 5, 5),
	)
	if _, failed := CompareBench(oldRec, better, 0.10); failed {
		t.Fatal("improvements tripped the gate")
	}
}

// TestCompareBenchTolerance: a gated metric just inside tolerance + margin
// passes; just outside fails. Three identical samples per side pin the noise
// margin at its 2% floor, so the boundary sits at exactly 12%.
func TestCompareBenchTolerance(t *testing.T) {
	oldRec := record(metric("wall", false, true, 10, 10, 10))
	within := record(metric("wall", false, true, 11.1, 11.1, 11.1)) // +11% < 12%
	if _, failed := CompareBench(oldRec, within, 0.10); failed {
		t.Fatal("+11% failed a 10%+2% gate")
	}
	outside := record(metric("wall", false, true, 11.3, 11.3, 11.3)) // +13% > 12%
	if _, failed := CompareBench(oldRec, outside, 0.10); !failed {
		t.Fatal("+13% passed a 10%+2% gate")
	}
}

// TestCompareBenchNoiseMargin: noisy samples widen the allowance — the same
// +20% mean delta that fails with tight samples passes when the measured
// run-to-run scatter explains it.
func TestCompareBenchNoiseMargin(t *testing.T) {
	tight := record(metric("wall", false, true, 10, 10.01, 9.99))
	noisy := record(metric("wall", false, true, 6, 10, 14))
	newRec := record(metric("wall", false, true, 12, 12.01, 11.99))
	if _, failed := CompareBench(tight, newRec, 0.10); !failed {
		t.Fatal("+20% with tight samples passed")
	}
	if _, failed := CompareBench(noisy, newRec, 0.10); failed {
		t.Fatal("+20% within the measured noise failed")
	}
}

// TestCompareBenchSingleSample: one sample on either side falls back to the
// fixed 5% allowance instead of a measured margin.
func TestCompareBenchSingleSample(t *testing.T) {
	oldRec := record(metric("dps", true, true, 100))
	ok := record(metric("dps", true, true, 86)) // -14% < 10%+5%
	if _, failed := CompareBench(oldRec, ok, 0.10); failed {
		t.Fatal("-14% failed the single-sample 15% allowance")
	}
	bad := record(metric("dps", true, true, 80)) // -20% > 15%
	if _, failed := CompareBench(oldRec, bad, 0.10); !failed {
		t.Fatal("-20% passed the single-sample 15% allowance")
	}
}

// TestCompareBenchMissing: a gated baseline metric absent from the new
// record fails (a benchmark cannot be silently dropped); an ungated one is
// only reported.
func TestCompareBenchMissing(t *testing.T) {
	oldRec := record(
		metric("gated", false, true, 10),
		metric("info", false, false, 10),
	)
	newRec := record(metric("gated", false, true, 10))
	deltas, failed := CompareBench(oldRec, newRec, 0.10)
	if failed {
		t.Fatal("missing ungated metric failed the gate")
	}
	if !deltas[1].MissingNew {
		t.Fatalf("info delta should be MissingNew: %+v", deltas[1])
	}
	if _, failed := CompareBench(oldRec, record(metric("info", false, false, 10)), 0.10); !failed {
		t.Fatal("missing gated metric passed the gate")
	}
}

// TestLoadBenchFileFlat: the flat single-run records (BENCH_serve.json
// shape) load with only throughput-type keys gated, under the serve_*
// names vodperf's own records use, so the two formats cross-compare.
func TestLoadBenchFileFlat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flat.json")
	flat := `{
  "generated": "2026-08-05T00:00:00Z",
  "policy": "least-loaded",
  "decisions_per_sec": 8087.2,
  "latency_p50_ms": 1.96,
  "latency_p99_ms": 67.3,
  "wall_seconds": 1.0004
}`
	if err := os.WriteFile(path, []byte(flat), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]BenchMetric, len(rec.Benchmarks))
	for _, m := range rec.Benchmarks {
		got[m.Name] = m
	}
	dps, ok := got["serve_decisions_per_sec"]
	if !ok || !dps.Gate || !dps.HigherIsBetter || dps.Mean != 8087.2 {
		t.Fatalf("serve_decisions_per_sec = %+v", dps)
	}
	p50, ok := got["serve_latency_p50_ms"]
	if !ok || p50.Gate || p50.HigherIsBetter {
		t.Fatalf("serve_latency_p50_ms should load ungated: %+v", p50)
	}
	if _, ok := got["wall_seconds"]; ok {
		t.Fatal("wall_seconds is not a recognized metric key and must not load")
	}
}

// TestLoadBenchFileRoundTrip: a written BenchRecord loads back intact.
func TestLoadBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.json")
	r := record(metric("fig4_wall_sec", false, true, 0.07, 0.068))
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != 1 || back.Benchmarks[0].Name != "fig4_wall_sec" ||
		len(back.Benchmarks[0].Samples) != 2 {
		t.Fatalf("round trip lost data: %+v", back.Benchmarks)
	}
	if _, failed := CompareBench(r, back, 0.10); failed {
		t.Fatal("round-tripped record failed self-comparison")
	}
}

// TestLoadBenchFileRejectsGarbage: a file with no recognizable metrics is an
// error, not an empty record that would vacuously pass comparisons.
func TestLoadBenchFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte(`{"hello": "world"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchFile(path); err == nil {
		t.Fatal("metric-free file loaded without error")
	}
}
