package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestTracerNil: a nil tracer is a fully valid no-op, so call sites wire
// tracing unconditionally.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: KindAdmit})
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}
	if tr.Total() != 0 || tr.Cap() != 0 || tr.NowNS() != 0 {
		t.Fatalf("nil tracer leaked state: total=%d cap=%d now=%d", tr.Total(), tr.Cap(), tr.NowNS())
	}
}

// TestTracerCapacityRounding: capacities round up to the next power of two,
// and 0 gets the default.
func TestTracerCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultTraceEvents}, {1, 1}, {3, 4}, {16, 16}, {100, 128},
	} {
		if got := NewTracer(tc.in).Cap(); got != tc.want {
			t.Errorf("NewTracer(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestTracerWraparound: once the ring is full the oldest events are
// overwritten — a 16-slot ring after 100 records holds exactly seqs 84..99.
func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 100; i++ {
		tr.Record(Event{Kind: KindArrive, Video: i})
	}
	if tr.Total() != 100 {
		t.Fatalf("Total = %d, want 100", tr.Total())
	}
	snap := tr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("resident events = %d, want 16", len(snap))
	}
	for i, e := range snap {
		wantSeq := uint64(84 + i)
		if e.Seq != wantSeq {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Video != int(wantSeq) {
			t.Fatalf("snapshot[%d].Video = %d, want %d (payload must travel with its seq)", i, e.Video, wantSeq)
		}
	}
}

// TestTracerConcurrentWriters drives the ring from many goroutines; under
// -race this doubles as the data-race check for the lock-free publication
// path. The snapshot taken after the fact must be the last Cap() sequences,
// each exactly once.
func TestTracerConcurrentWriters(t *testing.T) {
	const (
		writers   = 8
		perWriter = 10_000
	)
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(Event{Kind: KindAdmit, Server: w, Video: i})
			}
		}(w)
	}
	wg.Wait()
	const total = writers * perWriter
	if tr.Total() != total {
		t.Fatalf("Total = %d, want %d", tr.Total(), total)
	}
	snap := tr.Snapshot()
	if len(snap) != 1024 {
		t.Fatalf("resident events = %d, want 1024", len(snap))
	}
	seen := make(map[uint64]bool, len(snap))
	for _, e := range snap {
		if e.Seq < total-1024 || e.Seq >= total {
			t.Fatalf("seq %d outside the final window [%d, %d)", e.Seq, total-1024, total)
		}
		if seen[e.Seq] {
			t.Fatalf("seq %d resident twice", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestWriteJSON: the dump is valid JSON carrying the envelope counters and
// the events with their wire-format kind names.
func TestWriteJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{TS: 10, Kind: KindArrive, Video: 3})
	tr.Record(Event{TS: 20, Kind: KindAdmit, Session: 7, Video: 3, Server: 1})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Total    uint64 `json:"total_events"`
		Capacity int    `json:"capacity"`
		Events   []struct {
			Seq     uint64 `json:"seq"`
			Kind    string `json:"kind"`
			Session int64  `json:"session"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.Total != 2 || dump.Capacity != 8 || len(dump.Events) != 2 {
		t.Fatalf("envelope = %+v, want total 2, capacity 8, 2 events", dump)
	}
	if dump.Events[0].Kind != "arrive" || dump.Events[1].Kind != "admit" {
		t.Fatalf("kinds = %q, %q; want arrive, admit", dump.Events[0].Kind, dump.Events[1].Kind)
	}
	if dump.Events[1].Session != 7 {
		t.Fatalf("session = %d, want 7", dump.Events[1].Session)
	}
}

// TestWriteChromeTrace: every event renders as an instant mark, and an
// admit+end pair for one session renders an extra complete ("X") span with
// microsecond timestamps.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{TS: 1_000_000_000, Kind: KindAdmit, Session: 7, Video: 2, Server: 1})
	tr.Record(Event{TS: 3_000_000_000, Kind: KindEnd, Session: 7, Video: 2, Server: 1})
	tr.Record(Event{TS: 4_000_000_000, Kind: KindReject, Video: 5})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	instants, spans := 0, 0
	for _, e := range out.TraceEvents {
		switch e.Phase {
		case "i":
			instants++
		case "X":
			spans++
			if e.TS != 1e6 || e.Dur != 2e6 {
				t.Fatalf("span ts/dur = %g/%g µs, want 1e6/2e6", e.TS, e.Dur)
			}
			if e.TID != 1 {
				t.Fatalf("span tid = %d, want server 1", e.TID)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if instants != 3 || spans != 1 {
		t.Fatalf("got %d instants and %d spans, want 3 and 1", instants, spans)
	}
}

// TestKindString covers the wire names and the out-of-range fallback.
func TestKindString(t *testing.T) {
	if KindFailover.String() != "failover" {
		t.Fatalf("KindFailover = %q", KindFailover.String())
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("Kind(200) = %q", got)
	}
}
