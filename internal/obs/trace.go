// Package obs is the observability layer shared by the simulator and the
// live serving daemon: a low-overhead ring-buffer event tracer for
// per-session lifecycle spans, concurrent histograms built on
// internal/stats rendered in the Prometheus text format, a run manifest
// identifying the code and hardware a benchmark ran on, and the
// noise-adjusted benchmark comparison cmd/vodperf gates CI with.
//
// The tracer is deliberately minimal: a fixed-size ring of atomically
// published event records. Recording is lock-free (one atomic fetch-add for
// the sequence number, one atomic pointer store into the ring), so it can
// sit on the serving daemon's admission hot path and inside the simulator's
// event loop without serializing either. Old events are overwritten once
// the ring wraps; a trace is a window onto the recent past, not an archive.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Kind classifies one traced lifecycle event.
type Kind uint8

// Lifecycle event kinds, following the session state machine
// arrive → admit/reject → serve → end/tear/failover and the serving
// daemon's HTTP surface.
const (
	// KindArrive is a request arriving, before the admission decision.
	KindArrive Kind = iota
	// KindAdmit is a successful admission: the session starts serving.
	KindAdmit
	// KindReject is a capacity rejection with no mechanism taking ownership.
	KindReject
	// KindRetry is a rejected arrival entering the retry queue.
	KindRetry
	// KindRenege is a queued retry giving up after exhausting its patience.
	KindRenege
	// KindEnd is a session's natural departure.
	KindEnd
	// KindTear is a session torn down for good by a failure or drain.
	KindTear
	// KindFailover is a torn session salvaged onto a surviving replica.
	KindFailover
	// KindDrain is an admission refused because the daemon was draining.
	KindDrain
	// KindHTTP is one served HTTP request (recorded by Middleware).
	KindHTTP
	// KindHealth is a backend health-state transition driven by the prober.
	KindHealth
	// KindRepair is a re-replication action (copy started, landed, aborted).
	KindRepair
)

var kindNames = [...]string{
	KindArrive:   "arrive",
	KindAdmit:    "admit",
	KindReject:   "reject",
	KindRetry:    "retry",
	KindRenege:   "renege",
	KindEnd:      "end",
	KindTear:     "tear",
	KindFailover: "failover",
	KindDrain:    "drain",
	KindHTTP:     "http",
	KindHealth:   "health",
	KindRepair:   "repair",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one traced lifecycle record. TS is nanoseconds in the trace's
// time domain: wall nanoseconds since the tracer's epoch for the serving
// daemon, virtual-time nanoseconds (1 simulated second = 1e9) for the
// simulator. Session correlates the events of one stream; Server is the
// backend carrying it; DurNS is a span length for events that close one
// (end, tear, http).
type Event struct {
	Seq     uint64 `json:"seq"`
	TS      int64  `json:"ts_ns"`
	Kind    Kind   `json:"kind"`
	Session int64  `json:"session,omitempty"`
	Video   int    `json:"video,omitempty"`
	Server  int    `json:"server,omitempty"`
	DurNS   int64  `json:"dur_ns,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Tracer is the fixed-size lock-free event ring. A nil *Tracer is a valid
// no-op tracer: Record on nil returns immediately, so callers wire tracing
// unconditionally and enable it by constructing one. All methods are safe
// for concurrent use.
type Tracer struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	next  atomic.Uint64
	epoch time.Time
}

// DefaultTraceEvents is the ring capacity NewTracer(0) provides.
const DefaultTraceEvents = 1 << 16

// NewTracer builds a tracer whose ring holds at least capacity events
// (rounded up to a power of two so the hot path masks instead of dividing).
// capacity <= 0 gets DefaultTraceEvents.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Tracer{
		slots: make([]atomic.Pointer[Event], size),
		mask:  uint64(size - 1),
		epoch: time.Now(),
	}
}

// Cap returns the ring capacity in events; 0 for a nil tracer.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Total returns how many events were ever recorded, including overwritten
// ones; 0 for a nil tracer.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// NowNS returns nanoseconds since the tracer's epoch — the wall-clock time
// domain serve-side events record their TS in. 0 for a nil tracer.
func (t *Tracer) NowNS() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Record publishes one event into the ring, assigning its sequence number.
// The oldest resident event is overwritten once the ring is full. Record on
// a nil tracer is a no-op, so disabled tracing costs one predictable branch.
// The event is copied into a fresh heap cell only after the nil check —
// taking the parameter's own address would force the copy in the function
// prologue and charge one allocation per event even with tracing off (the
// ingress alloc guard pins this at zero).
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	ev := new(Event)
	*ev = e
	ev.Seq = t.next.Add(1) - 1
	t.slots[ev.Seq&t.mask].Store(ev)
}

// Snapshot returns the resident events in sequence order. Taken while
// writers are active it is a consistent set of individually-complete
// events, but the window boundaries are approximate — each slot holds
// whichever of its events was published last.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		if p := t.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// traceDump is the JSON envelope WriteJSON produces.
type traceDump struct {
	Total    uint64  `json:"total_events"`
	Capacity int     `json:"capacity"`
	Events   []Event `json:"events"`
}

// WriteJSON dumps the resident window as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceDump{Total: t.Total(), Capacity: t.Cap(), Events: t.Snapshot()})
}

// chromeEvent is one record of the Chrome trace_event format (the JSON
// chrome://tracing and Perfetto load). Timestamps and durations are in
// microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace dumps the resident window in Chrome trace_event format:
// every event as an instant mark on its server's track, plus one complete
// ("X") span per session whose admit and end/tear both sit in the window,
// so session lifetimes render as bars in chrome://tracing or Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Snapshot()
	out := make([]chromeEvent, 0, len(events)+len(events)/2)
	admits := make(map[int64]Event)
	for _, e := range events {
		args := map[string]any{"video": e.Video}
		if e.Session != 0 {
			args["session"] = e.Session
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		out = append(out, chromeEvent{
			Name: e.Kind.String(), Phase: "i", Scope: "t",
			TS: float64(e.TS) / 1e3, PID: 1, TID: e.Server, Args: args,
		})
		switch e.Kind {
		case KindAdmit, KindFailover:
			if e.Session != 0 {
				admits[e.Session] = e
			}
		case KindEnd, KindTear:
			if a, ok := admits[e.Session]; ok && e.TS >= a.TS {
				out = append(out, chromeEvent{
					Name:  fmt.Sprintf("session %d (video %d)", e.Session, a.Video),
					Phase: "X", TS: float64(a.TS) / 1e3, Dur: float64(e.TS-a.TS) / 1e3,
					PID: 1, TID: a.Server,
					Args: map[string]any{"video": a.Video, "outcome": e.Kind.String()},
				})
				delete(admits, e.Session)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out})
}
