package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestMiddlewareRecords: each served request lands in the ring as one
// KindHTTP event carrying method, path, status, and a span duration.
func TestMiddlewareRecords(t *testing.T) {
	tr := NewTracer(16)
	h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/session?video=3", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("middleware altered the response: %d", rec.Code)
	}
	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("recorded %d events, want 1", len(snap))
	}
	e := snap[0]
	if e.Kind != KindHTTP {
		t.Fatalf("kind = %v, want http", e.Kind)
	}
	if e.Detail != "POST /session -> 418" {
		t.Fatalf("detail = %q", e.Detail)
	}
	if e.DurNS < 0 {
		t.Fatalf("negative span duration %d", e.DurNS)
	}
}

// TestMiddlewareNilTracer: a nil tracer returns the handler unwrapped — no
// per-request overhead when tracing is off.
func TestMiddlewareNilTracer(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := Middleware(nil, inner); got == nil {
		t.Fatal("nil tracer returned nil handler")
	}
	rec := httptest.NewRecorder()
	Middleware(nil, inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}

// TestMiddlewareImplicitOK: a handler that never calls WriteHeader records
// the implicit 200.
func TestMiddlewareImplicitOK(t *testing.T) {
	tr := NewTracer(16)
	h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/metrics", nil))
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Detail != "GET /metrics -> 200" {
		t.Fatalf("events = %+v", snap)
	}
}
