package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestHistWriteProm checks the Prometheus exposition invariants: cumulative
// non-decreasing buckets, underflow counted into every bucket, overflow only
// into +Inf, and _sum/_count matching the observations.
func TestHistWriteProm(t *testing.T) {
	h := NewHist(0, 10, 5) // bins of width 2: edges 2,4,6,8,10
	for _, x := range []float64{-1, 0.5, 9.5, 100} {
		h.Observe(x)
	}
	var buf bytes.Buffer
	h.WriteProm(&buf, "test_depth", "help text")
	out := buf.String()

	if !strings.Contains(out, "# HELP test_depth help text\n") ||
		!strings.Contains(out, "# TYPE test_depth histogram\n") {
		t.Fatalf("missing HELP/TYPE headers:\n%s", out)
	}

	var prev, bucketCount int64 = -1, 0
	for _, line := range strings.Split(out, "\n") {
		rest, ok := strings.CutPrefix(line, "test_depth_bucket{le=\"")
		if !ok {
			continue
		}
		bucketCount++
		_, val, ok := strings.Cut(rest, "\"} ")
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("bucket value in %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("cumulative buckets decreased (%d after %d):\n%s", n, prev, out)
		}
		prev = n
	}
	if bucketCount != 6 { // 5 edges + +Inf
		t.Fatalf("got %d bucket lines, want 6:\n%s", bucketCount, out)
	}
	// The -1 underflow is ≤ every edge, so the first bucket already holds
	// it plus the 0.5 observation; 100 only reaches +Inf.
	if !strings.Contains(out, "test_depth_bucket{le=\"2\"} 2\n") {
		t.Fatalf("first bucket should hold underflow + 0.5:\n%s", out)
	}
	if !strings.Contains(out, "test_depth_bucket{le=\"10\"} 3\n") {
		t.Fatalf("last finite bucket should exclude the overflow:\n%s", out)
	}
	if !strings.Contains(out, "test_depth_bucket{le=\"+Inf\"} 4\n") {
		t.Fatalf("+Inf bucket should hold everything:\n%s", out)
	}
	if !strings.Contains(out, "test_depth_sum 109\n") {
		t.Fatalf("_sum should be 109:\n%s", out)
	}
	if !strings.Contains(out, "test_depth_count 4\n") {
		t.Fatalf("_count should be 4:\n%s", out)
	}
}

// TestHistNil: the nil histogram observes and renders as a no-op.
func TestHistNil(t *testing.T) {
	var h *Hist
	h.Observe(3)
	var buf bytes.Buffer
	h.WriteProm(&buf, "x", "y")
	if buf.Len() != 0 {
		t.Fatalf("nil hist wrote %q", buf.String())
	}
}

// TestExpHistWriteProm: doubling bounds, bucket placement at and across the
// bound (Observe buckets x ≤ bound inclusively), cumulative rendering with a
// labels string, and the billionths-resolution sum.
func TestExpHistWriteProm(t *testing.T) {
	h := NewExpHist(1e-3, 4) // bounds 0.001, 0.002, 0.004, 0.008
	for _, x := range []float64{0.0005, 0.002, 0.003, 0.1} {
		h.Observe(x)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var buf bytes.Buffer
	h.WriteProm(&buf, "test_lat", `listener="3"`)
	out := buf.String()
	for _, want := range []string{
		`test_lat_bucket{listener="3",le="0.001"} 1` + "\n", // 0.0005
		`test_lat_bucket{listener="3",le="0.002"} 2` + "\n", // + 0.002 (inclusive)
		`test_lat_bucket{listener="3",le="0.004"} 3` + "\n", // + 0.003
		`test_lat_bucket{listener="3",le="0.008"} 3` + "\n",
		`test_lat_bucket{listener="3",le="+Inf"} 4` + "\n", // + 0.1 overflow
		`test_lat_sum{listener="3"} 0.1055` + "\n",
		`test_lat_count{listener="3"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# HELP") || strings.Contains(out, "# TYPE") {
		t.Fatalf("labeled series must not write family headers:\n%s", out)
	}

	// Unlabeled series render without the empty label braces on _sum/_count.
	buf.Reset()
	h.WriteProm(&buf, "plain", "")
	if !strings.Contains(buf.String(), "plain_sum 0.1055\n") ||
		!strings.Contains(buf.String(), `plain_bucket{le="0.001"} 1`+"\n") {
		t.Fatalf("unlabeled rendering:\n%s", buf.String())
	}
}

// TestExpHistNil: the nil exponential histogram is a no-op too.
func TestExpHistNil(t *testing.T) {
	var h *ExpHist
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil ExpHist counted")
	}
	var buf bytes.Buffer
	h.WriteProm(&buf, "x", "")
	if buf.Len() != 0 {
		t.Fatalf("nil ExpHist wrote %q", buf.String())
	}
}
