package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"vodcluster/internal/stats"
)

// BenchMetric is one measured quantity of a benchmark record: its samples
// (one per repetition) plus the direction a change must move in to count as
// a regression. Gate marks metrics the CI comparison fails on; ungated
// metrics are reported for context only — single-shot tail percentiles, for
// example, are too noise-dominated to block a merge on.
type BenchMetric struct {
	Name           string    `json:"name"`
	Unit           string    `json:"unit"`
	HigherIsBetter bool      `json:"higher_is_better"`
	Gate           bool      `json:"gate"`
	Samples        []float64 `json:"samples"`
	Mean           float64   `json:"mean"`
	Stddev         float64   `json:"stddev"`
	// Gomaxprocs is part of the comparison key: the GOMAXPROCS the samples
	// were measured at. CompareBench refuses to compare two metrics measured
	// at different core counts — throughput recorded on one core is not a
	// baseline for a four-core runner. Zero (records predating the field)
	// matches anything.
	Gomaxprocs int `json:"gomaxprocs,omitempty"`
}

// NewBenchMetric summarizes samples into a metric.
func NewBenchMetric(name, unit string, higherIsBetter, gate bool, samples []float64) BenchMetric {
	var s stats.Summary
	s.AddN(samples...)
	return BenchMetric{
		Name: name, Unit: unit,
		HigherIsBetter: higherIsBetter, Gate: gate,
		Samples: samples, Mean: s.Mean(), Stddev: s.StdDev(),
	}
}

// BenchRecord is the manifest-stamped multi-sample benchmark artifact
// cmd/vodperf writes and compares.
type BenchRecord struct {
	Manifest   Manifest      `json:"manifest"`
	Benchmarks []BenchMetric `json:"benchmarks"`
}

// ScalingLevel is one GOMAXPROCS point of the sharded-dispatch scaling sweep
// (cmd/vodperf -bench scale): closed-loop admission throughput at that core
// count, the speedup over the 1-core level, and parallel efficiency
// (speedup / cores). HwCapped marks levels above the recording host's CPU
// count: the number is measured but meaningless as a scaling claim, so it
// never gates.
type ScalingLevel struct {
	Gomaxprocs      int     `json:"gomaxprocs"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	Speedup         float64 `json:"speedup"`
	Efficiency      float64 `json:"efficiency"`
	HwCapped        bool    `json:"hw_capped,omitempty"`
}

// Scaling is the `scaling` section of BENCH_serve.json: the GOMAXPROCS sweep
// of the sharded dispatch engine.
type Scaling struct {
	Shards int            `json:"shards"`
	Levels []ScalingLevel `json:"levels"`
}

// ScalingMetrics converts a scaling section into comparable metrics: one
// gated throughput metric per non-capped level (keyed by its core count) plus
// a report-only efficiency metric. The loader and cmd/vodperf share this so a
// flat BENCH_serve.json and a fresh sweep compare against each other.
func ScalingMetrics(sc Scaling) []BenchMetric {
	ms := make([]BenchMetric, 0, 2*len(sc.Levels))
	for _, l := range sc.Levels {
		m := NewBenchMetric(fmt.Sprintf("scale_decisions_per_sec_g%d", l.Gomaxprocs),
			"decisions/s", true, !l.HwCapped, []float64{l.DecisionsPerSec})
		m.Gomaxprocs = l.Gomaxprocs
		e := NewBenchMetric(fmt.Sprintf("scale_efficiency_g%d", l.Gomaxprocs),
			"", true, false, []float64{l.Efficiency})
		e.Gomaxprocs = l.Gomaxprocs
		ms = append(ms, m, e)
	}
	return ms
}

// HTTPBench is the `http` section of BENCH_serve.json: the closed-loop
// throughput of the sharded HTTP ingress (cmd/vodperf -bench http), measured
// through real TCP connections with the batched admission endpoint and with
// single-shot requests.
type HTTPBench struct {
	Listeners  int `json:"listeners"`
	Shards     int `json:"shards"`
	Batch      int `json:"batch"`
	Gomaxprocs int `json:"gomaxprocs"`
	// DecisionsPerSec is admission decisions settled per wall second over
	// keep-alive connections driving POST /open/batch at the Batch size.
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	// SingleDecisionsPerSec is the same closed loop issuing one POST /open
	// per round trip — the unbatched per-request ceiling.
	SingleDecisionsPerSec float64 `json:"single_decisions_per_sec"`
}

// HTTPMetrics converts an http section into comparable metrics: the batched
// throughput gates, the single-shot throughput is report-only (it measures
// round-trip cost, which batching exists to amortize; gating both would
// double-count the same regression). The loader and cmd/vodperf share this
// so a flat BENCH_serve.json and a fresh -bench http record compare.
func HTTPMetrics(hb HTTPBench) []BenchMetric {
	m := NewBenchMetric("http_decisions_per_sec", "decisions/s", true, true,
		[]float64{hb.DecisionsPerSec})
	m.Gomaxprocs = hb.Gomaxprocs
	s := NewBenchMetric("http_single_decisions_per_sec", "decisions/s", true, false,
		[]float64{hb.SingleDecisionsPerSec})
	s.Gomaxprocs = hb.Gomaxprocs
	return []BenchMetric{m, s}
}

// WriteFile persists the record as indented JSON.
func (r *BenchRecord) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// flatMetrics maps the keys of the single-run BENCH_serve.json /
// BENCH_sweep.json artifacts onto metric definitions, so vodperf -compare
// accepts those records directly. Only rate- and wall-clock-type keys gate:
// a single run's latency percentiles carry no noise estimate, so they are
// extracted for the report but never fail the comparison (vodperf's own
// multi-run records gate latency with a measured noise margin instead).
// The serve keys load under vodperf's serve_* metric names, so a flat
// serve-smoke artifact and a multi-run vodperf record compare against each
// other directly; gating always follows the baseline (old) side.
var flatMetrics = []struct {
	key, name, unit string
	higherIsBetter  bool
	gate            bool
}{
	{"decisions_per_sec", "serve_decisions_per_sec", "decisions/s", true, true},
	{"post_failure_decisions_per_sec", "post_failure_decisions_per_sec", "decisions/s", true, true},
	{"wall_clock_sec", "wall_clock_sec", "s", false, true},
	{"latency_p50_ms", "serve_latency_p50_ms", "ms", false, false},
	{"latency_p90_ms", "serve_latency_p90_ms", "ms", false, false},
	{"latency_p99_ms", "serve_latency_p99_ms", "ms", false, false},
	{"latency_max_ms", "serve_latency_max_ms", "ms", false, false},
}

// LoadBenchFile reads a benchmark artifact: a vodperf BenchRecord, or one
// of the flat single-run records (BENCH_serve.json, BENCH_sweep.json) whose
// known numeric keys become single-sample metrics.
func LoadBenchFile(path string) (*BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec BenchRecord
	if err := json.Unmarshal(data, &rec); err == nil && len(rec.Benchmarks) > 0 {
		return &rec, nil
	}
	var flat map[string]any
	if err := json.Unmarshal(data, &flat); err != nil {
		return nil, fmt.Errorf("obs: %s is neither a vodperf record nor a flat benchmark record: %w", path, err)
	}
	for _, def := range flatMetrics {
		if v, ok := flat[def.key].(float64); ok {
			m := NewBenchMetric(def.name, def.unit, def.higherIsBetter, def.gate, []float64{v})
			// The recording manifest pins the core count the flat numbers
			// came from; stamping it onto each metric makes the comparison
			// refuse cross-core-count baselines instead of silently passing.
			m.Gomaxprocs = rec.Manifest.GOMAXPROCS
			rec.Benchmarks = append(rec.Benchmarks, m)
		}
	}
	if raw, ok := flat["scaling"]; ok {
		var sc Scaling
		buf, err := json.Marshal(raw)
		if err == nil {
			err = json.Unmarshal(buf, &sc)
		}
		if err != nil {
			return nil, fmt.Errorf("obs: %s has a malformed scaling section: %w", path, err)
		}
		rec.Benchmarks = append(rec.Benchmarks, ScalingMetrics(sc)...)
	}
	if raw, ok := flat["http"]; ok {
		var hb HTTPBench
		buf, err := json.Marshal(raw)
		if err == nil {
			err = json.Unmarshal(buf, &hb)
		}
		if err != nil {
			return nil, fmt.Errorf("obs: %s has a malformed http section: %w", path, err)
		}
		rec.Benchmarks = append(rec.Benchmarks, HTTPMetrics(hb)...)
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("obs: %s holds no recognized benchmark metrics", path)
	}
	return &rec, nil
}

// Noise-margin bounds for the regression decision, as relative fractions of
// the old mean: singleSampleMargin stands in when either side has no
// repetitions to estimate noise from; marginFloor keeps a lucky pair of
// tight sample sets from tripping the gate on sub-percent jitter.
const (
	singleSampleMargin = 0.05
	marginFloor        = 0.02
)

// Delta is one compared metric of a benchmark comparison.
type Delta struct {
	Name string
	Unit string
	// Old and New are the two records' means.
	Old, New float64
	// Pct is the relative change signed so positive is worse, regardless of
	// the metric's direction.
	Pct float64
	// Margin is the noise allowance added to the tolerance: two standard
	// errors of the difference when both sides carry samples, a fixed
	// allowance otherwise.
	Margin float64
	// Gate reports whether this metric can fail the comparison.
	Gate bool
	// Regressed reports Pct > tolerance + Margin on a gated metric.
	Regressed bool
	// MissingNew marks a gated metric present in the baseline but absent
	// from the new record — treated as a failure so a benchmark cannot be
	// silently dropped.
	MissingNew bool
	// CoreMismatch marks the two sides as measured at different GOMAXPROCS —
	// the comparison is refused (a gated metric fails) rather than scored,
	// because a throughput delta across core counts measures the runner, not
	// the code.
	CoreMismatch bool
}

// CompareBench compares a new record against a baseline at the given
// relative tolerance (0.10 = a gated metric may be up to 10% worse plus the
// noise margin). It returns one Delta per baseline metric and whether any
// gated metric regressed, went missing, or was measured at a different core
// count than its baseline.
func CompareBench(old, new *BenchRecord, tolerance float64) ([]Delta, bool) {
	byName := make(map[string]BenchMetric, len(new.Benchmarks))
	for _, m := range new.Benchmarks {
		byName[m.Name] = m
	}
	deltas := make([]Delta, 0, len(old.Benchmarks))
	failed := false
	for _, om := range old.Benchmarks {
		d := Delta{Name: om.Name, Unit: om.Unit, Old: om.Mean, Gate: om.Gate}
		nm, ok := byName[om.Name]
		if !ok {
			d.MissingNew = true
			if om.Gate {
				failed = true
			}
			deltas = append(deltas, d)
			continue
		}
		d.New = nm.Mean
		if om.Gomaxprocs != 0 && nm.Gomaxprocs != 0 && om.Gomaxprocs != nm.Gomaxprocs {
			d.CoreMismatch = true
			if om.Gate {
				failed = true
			}
			deltas = append(deltas, d)
			continue
		}
		if om.Mean != 0 {
			d.Pct = (nm.Mean - om.Mean) / math.Abs(om.Mean)
			if om.HigherIsBetter {
				d.Pct = -d.Pct
			}
		}
		d.Margin = noiseMargin(om, nm)
		if om.Gate && d.Pct > tolerance+d.Margin {
			d.Regressed = true
			failed = true
		}
		deltas = append(deltas, d)
	}
	return deltas, failed
}

// noiseMargin estimates how much of a relative delta is attributable to
// run-to-run noise: two standard errors of the difference of means,
// relative to the baseline mean. Either side lacking repetitions falls back
// to the fixed single-sample allowance.
func noiseMargin(old, new BenchMetric) float64 {
	nOld, nNew := len(old.Samples), len(new.Samples)
	if nOld < 2 || nNew < 2 {
		return singleSampleMargin
	}
	se := 2 * math.Sqrt(old.Stddev*old.Stddev/float64(nOld)+new.Stddev*new.Stddev/float64(nNew))
	margin := se / math.Abs(old.Mean)
	if margin < marginFloor {
		margin = marginFloor
	}
	return margin
}
