package obs

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Manifest identifies the code revision and hardware a benchmark record was
// produced on. Every BENCH_*.json artifact carries one, so a regression
// comparison can tell "the code got slower" apart from "the runner changed"
// — the first question anyone asks of a perf delta.
type Manifest struct {
	Generated  string            `json:"generated"`
	GitSHA     string            `json:"git_sha"`
	GoVersion  string            `json:"go_version"`
	OS         string            `json:"os"`
	Arch       string            `json:"arch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	CPUModel   string            `json:"cpu_model"`
	Host       string            `json:"host"`
	Seed       int64             `json:"seed,omitempty"`
	Flags      map[string]string `json:"flags,omitempty"`
}

// NewManifest collects the environment of the current process. Seed and
// Flags are the caller's to fill: they describe the workload, not the host.
func NewManifest() Manifest {
	host, _ := os.Hostname()
	return Manifest{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Host:       host,
	}
}

// gitSHA returns the working tree's HEAD (short form), with a "-dirty"
// suffix when uncommitted changes exist; "unknown" outside a repository.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		sha += "-dirty"
	}
	return sha
}

// cpuModel reads the CPU model name from /proc/cpuinfo where available and
// falls back to the architecture elsewhere.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return runtime.GOARCH
}
