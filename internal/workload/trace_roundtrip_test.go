package workload

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// TestTraceRoundTrip is the save→load property: for traces across the
// generator's parameter space — including time-compressed ones, whose
// fractional timestamps and rescaled meta exercise the float path — the
// JSON round trip must reproduce the trace exactly (encoding/json emits the
// shortest representation that parses back to the same float64, so
// DeepEqual is the right bar, not approximate equality).
func TestTraceRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		videos   int
		theta    float64
		perMin   float64
		duration float64
		seed     int64
		compress float64 // 0 = no compression
	}{
		{name: "paper-point", videos: 100, theta: 0.75, perMin: 40, duration: 5400, seed: 42},
		{name: "single-video", videos: 1, theta: 0, perMin: 5, duration: 60, seed: 1},
		{name: "deep-catalog", videos: 500, theta: 1.0, perMin: 120, duration: 600, seed: 7},
		{name: "compressed", videos: 100, theta: 0.75, perMin: 40, duration: 5400, seed: 42, compress: 3600},
		{name: "expanded", videos: 20, theta: 0.271, perMin: 15, duration: 900, seed: 3, compress: 0.25},
		{name: "compressed-odd-factor", videos: 12, theta: 0.6, perMin: 33, duration: 777, seed: 9, compress: 7.3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gen, err := NewGenerator(NewPoissonPerMinute(tc.perMin), tc.videos, tc.theta)
			if err != nil {
				t.Fatal(err)
			}
			tr := gen.Generate(tc.duration, tc.seed)
			if tc.compress != 0 {
				if tr, err = tr.Compress(tc.compress); err != nil {
					t.Fatal(err)
				}
			}
			if len(tr.Requests) == 0 {
				t.Fatal("generated trace is empty; the case exercises nothing")
			}
			var buf bytes.Buffer
			if err := tr.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Fatalf("round trip changed the trace:\n got %+v\nwant %+v", got, tr)
			}
		})
	}

	t.Run("empty", func(t *testing.T) {
		tr := &Trace{Meta: TraceMeta{Videos: 3, Process: "poisson"}}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("empty trace round trip: got %+v, want %+v", got, tr)
		}
	})
}

// TestTraceCompress pins the compression transform: timestamps divide by the
// factor, meta rescales (duration shrinks, rate grows), the original is
// untouched, and compress∘expand is the identity up to float rounding.
func TestTraceCompress(t *testing.T) {
	gen, err := NewGenerator(NewPoissonPerMinute(40), 50, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(600, 11)
	orig := make([]Request, len(tr.Requests))
	copy(orig, tr.Requests)

	c, err := tr.Compress(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Requests) != len(tr.Requests) {
		t.Fatalf("compression changed the request count: %d → %d", len(tr.Requests), len(c.Requests))
	}
	for i, r := range c.Requests {
		if want := tr.Requests[i].Time / 60; r.Time != want {
			t.Fatalf("request %d: time %g, want %g", i, r.Time, want)
		}
		if r.Video != tr.Requests[i].Video {
			t.Fatalf("request %d: compression changed the video", i)
		}
	}
	if c.Meta.Duration != tr.Meta.Duration/60 {
		t.Fatalf("meta duration %g, want %g", c.Meta.Duration, tr.Meta.Duration/60)
	}
	if c.Meta.MeanRate != tr.Meta.MeanRate*60 {
		t.Fatalf("meta rate %g, want %g", c.Meta.MeanRate, tr.Meta.MeanRate*60)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("compressed trace fails validation: %v", err)
	}
	if !reflect.DeepEqual(tr.Requests, orig) {
		t.Fatal("Compress mutated the original trace")
	}

	back, err := c.Compress(1.0 / 60)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range back.Requests {
		if math.Abs(r.Time-tr.Requests[i].Time) > 1e-9 {
			t.Fatalf("request %d: expand(compress(t)) = %g, want %g", i, r.Time, tr.Requests[i].Time)
		}
	}

	for _, bad := range []float64{0, -1} {
		if _, err := tr.Compress(bad); err == nil {
			t.Fatalf("Compress(%g) must fail", bad)
		}
	}
}
