package workload

import (
	"fmt"

	"vodcluster/internal/stats"
)

// Drift is a mid-trace popularity shock: at virtual time At every later
// request is remapped through a rank permutation, so content that was cold
// when the layout was planned suddenly carries the traffic. It composes with
// any arrival shape (Poisson, MMPP, flash crowds) because it rewrites an
// already-generated trace rather than the generator — the drill the online
// rebalancer exists for.
type Drift struct {
	// At is the shock time in the trace's virtual seconds; <= 0 disables.
	At float64
	// Rotate is the rank-rotation distance; 0 defaults to half the catalog
	// (hottest titles become mid-pack and vice versa). Ignored under Shuffle.
	Rotate int
	// Shuffle replaces the rotation with a seeded random permutation.
	Shuffle bool
	// Seed drives the Shuffle permutation (default 1).
	Seed int64
}

// Enabled reports whether the drift does anything.
func (d Drift) Enabled() bool { return d.At > 0 }

// Mapping returns the deterministic rank permutation the drift applies to a
// catalog of m videos.
func (d Drift) Mapping(m int) []int {
	if d.Shuffle {
		seed := d.Seed
		if seed == 0 {
			seed = 1
		}
		return stats.NewRNG(seed).Perm(m)
	}
	k := d.Rotate
	if k == 0 {
		k = m / 2
	}
	return RotationMapping(m, k)
}

// Apply returns the drifted copy of tr (or tr itself when disabled).
func (d Drift) Apply(tr *Trace) (*Trace, error) {
	if !d.Enabled() {
		return tr, nil
	}
	if tr.Meta.Videos <= 0 {
		return nil, fmt.Errorf("workload: drift needs a trace with a declared catalog size")
	}
	return tr.Remap(d.Mapping(tr.Meta.Videos), d.At)
}
