package workload

import (
	"testing"
)

func driftTrace(t *testing.T) *Trace {
	t.Helper()
	gen, err := NewGenerator(NewPoissonPerMinute(60), 10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate(600, 11)
}

func TestDriftDisabledIsIdentity(t *testing.T) {
	tr := driftTrace(t)
	out, err := Drift{}.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out != tr {
		t.Fatal("disabled drift rewrote the trace")
	}
}

func TestDriftRotationShiftsOnlyAfterShock(t *testing.T) {
	tr := driftTrace(t)
	d := Drift{At: 300, Rotate: 3}
	out, err := d.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(out.Requests) != len(tr.Requests) {
		t.Fatalf("request count changed: %d -> %d", len(tr.Requests), len(out.Requests))
	}
	for i, r := range tr.Requests {
		got := out.Requests[i]
		if got.Time != r.Time {
			t.Fatalf("request %d time moved: %g -> %g", i, r.Time, got.Time)
		}
		want := r.Video
		if r.Time >= 300 {
			want = (r.Video + 3) % 10
		}
		if got.Video != want {
			t.Fatalf("request %d (t=%g): video %d -> %d, want %d", i, r.Time, r.Video, got.Video, want)
		}
	}
}

func TestDriftDefaultRotationIsHalfCatalog(t *testing.T) {
	m := Drift{At: 1}.Mapping(10)
	for i, v := range m {
		if v != (i+5)%10 {
			t.Fatalf("default mapping[%d] = %d, want %d", i, v, (i+5)%10)
		}
	}
}

func TestDriftShuffleIsASeededPermutation(t *testing.T) {
	d := Drift{At: 1, Shuffle: true, Seed: 9}
	m1 := d.Mapping(16)
	m2 := d.Mapping(16)
	seen := make([]bool, 16)
	for _, v := range m1 {
		if v < 0 || v >= 16 || seen[v] {
			t.Fatalf("not a permutation: %v", m1)
		}
		seen[v] = true
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
	m3 := Drift{At: 1, Shuffle: true, Seed: 10}.Mapping(16)
	same := true
	for i := range m1 {
		if m1[i] != m3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations")
	}
}
