// Package workload generates the synthetic request workloads of the paper's
// evaluation: Poisson arrivals during a peak period, with the requested video
// chosen from a Zipf-like popularity distribution. A two-state MMPP process
// is included for burstiness sensitivity studies, and traces can be
// materialized, saved, and replayed for reproducible cross-algorithm
// comparisons.
package workload

import (
	"fmt"

	"vodcluster/internal/stats"
)

// ArrivalProcess produces successive interarrival times.
type ArrivalProcess interface {
	// Next returns the time until the next arrival, in seconds.
	Next(rng *stats.RNG) float64
	// Rate returns the long-run mean arrival rate in requests/second.
	Rate() float64
	// Name identifies the process in reports.
	Name() string
}

// Poisson is a homogeneous Poisson arrival process — the paper's model:
// exponential interarrival times with the given rate (requests/second).
type Poisson struct {
	// Lambda is the arrival rate in requests per second.
	Lambda float64
}

// NewPoissonPerMinute builds a Poisson process from a rate expressed in
// requests per minute, the unit the paper's figures use.
func NewPoissonPerMinute(perMinute float64) Poisson {
	return Poisson{Lambda: perMinute / 60}
}

// Next implements ArrivalProcess.
func (p Poisson) Next(rng *stats.RNG) float64 {
	if p.Lambda <= 0 {
		panic("workload: Poisson rate must be positive")
	}
	return rng.Exponential(p.Lambda)
}

// Rate implements ArrivalProcess.
func (p Poisson) Rate() float64 { return p.Lambda }

// Name implements ArrivalProcess.
func (p Poisson) Name() string { return "poisson" }

// MMPP is a two-state Markov-modulated Poisson process for bursty-workload
// sensitivity studies: arrivals follow rate Lambda1 or Lambda2 depending on a
// hidden state that flips after exponentially distributed sojourns.
type MMPP struct {
	// Lambda1, Lambda2 are the arrival rates (requests/s) in the two states.
	Lambda1, Lambda2 float64
	// Sojourn1, Sojourn2 are the mean sojourn times (s) in each state.
	Sojourn1, Sojourn2 float64

	state     int
	remaining float64
	primed    bool
}

// Validate checks the process parameters.
func (m *MMPP) Validate() error {
	if m.Lambda1 <= 0 || m.Lambda2 <= 0 {
		return fmt.Errorf("workload: MMPP rates must be positive")
	}
	if m.Sojourn1 <= 0 || m.Sojourn2 <= 0 {
		return fmt.Errorf("workload: MMPP sojourns must be positive")
	}
	return nil
}

// Next implements ArrivalProcess. The hidden state evolves as virtual time
// advances with each returned interarrival.
func (m *MMPP) Next(rng *stats.RNG) float64 {
	if !m.primed {
		m.remaining = rng.Exponential(1 / m.Sojourn1)
		m.primed = true
	}
	elapsed := 0.0
	for {
		rate := m.Lambda1
		if m.state == 1 {
			rate = m.Lambda2
		}
		gap := rng.Exponential(rate)
		if gap <= m.remaining {
			m.remaining -= gap
			return elapsed + gap
		}
		// State flips before the tentative arrival; discard it and continue
		// from the flip (memorylessness makes this exact).
		elapsed += m.remaining
		m.state = 1 - m.state
		sojourn := m.Sojourn1
		if m.state == 1 {
			sojourn = m.Sojourn2
		}
		m.remaining = rng.Exponential(1 / sojourn)
	}
}

// Rate implements ArrivalProcess: the stationary mean arrival rate.
func (m *MMPP) Rate() float64 {
	w1 := m.Sojourn1 / (m.Sojourn1 + m.Sojourn2)
	return w1*m.Lambda1 + (1-w1)*m.Lambda2
}

// Name implements ArrivalProcess.
func (m *MMPP) Name() string { return "mmpp2" }
