package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTraceLoad: arbitrary bytes must never panic the trace parser, and any
// trace that loads must satisfy its own Validate.
func FuzzTraceLoad(f *testing.F) {
	gen, err := NewGenerator(NewPoissonPerMinute(10), 5, 0.5)
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := gen.Generate(300, 1).Save(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	// The compressed-timestamp path: fractional sub-second arrival times and
	// rescaled meta, the shape live replay feeds back through Save/Load.
	compressed, err := gen.Generate(300, 1).Compress(60)
	if err != nil {
		f.Fatal(err)
	}
	var cseed bytes.Buffer
	if err := compressed.Save(&cseed); err != nil {
		f.Fatal(err)
	}
	f.Add(cseed.String())
	f.Add(`{"requests":[],"meta":{}}`)
	f.Add(`{"requests":[{"t":1,"v":0}],"meta":{"videos":1}}`)
	f.Add(`{"requests":[{"t":-1,"v":0}]}`)
	f.Fuzz(func(t *testing.T, raw string) {
		tr, err := Load(strings.NewReader(raw))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Load returned a trace failing its own validation: %v", err)
		}
		// Derived operations must not panic on any loaded trace.
		_ = tr.VideoCounts()
	})
}

// FuzzRemap: remapping with arbitrary rotations must preserve request count
// and produce only valid videos or an error.
func FuzzRemap(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(10))
	f.Add(int64(2), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, kRaw, mRaw uint8) {
		m := int(mRaw%32) + 1
		k := int(kRaw) % (2 * m)
		gen, err := NewGenerator(NewPoissonPerMinute(30), m, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		tr := gen.Generate(600, seed)
		out, err := tr.Remap(RotationMapping(m, k), 300)
		if err != nil {
			t.Fatalf("rotation mapping must always be valid: %v", err)
		}
		if len(out.Requests) != len(tr.Requests) {
			t.Fatal("remap changed the request count")
		}
		if err := out.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
