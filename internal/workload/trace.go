package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"vodcluster/internal/stats"
	"vodcluster/internal/zipf"
)

// Request is one client request in a trace.
type Request struct {
	// Time is the arrival time in seconds from the trace start.
	Time float64 `json:"t"`
	// Video is the catalog rank of the requested title.
	Video int `json:"v"`
}

// Trace is a time-ordered request sequence plus the parameters that produced
// it, so saved traces are self-describing.
type Trace struct {
	// Requests are in non-decreasing Time order.
	Requests []Request `json:"requests"`
	// Meta records how the trace was generated.
	Meta TraceMeta `json:"meta"`
}

// TraceMeta describes a generated trace.
type TraceMeta struct {
	Videos   int     `json:"videos"`
	Theta    float64 `json:"theta"`
	Process  string  `json:"process"`
	MeanRate float64 `json:"mean_rate_per_s"`
	Duration float64 `json:"duration_s"`
	Seed     int64   `json:"seed"`
}

// Generator couples an arrival process with a Zipf-like video chooser.
type Generator struct {
	Arrivals ArrivalProcess
	Sampler  *zipf.Sampler

	videos int
	theta  float64
}

// NewGenerator builds a generator for m videos with skew theta and the given
// arrival process.
func NewGenerator(arrivals ArrivalProcess, m int, theta float64) (*Generator, error) {
	d, err := zipf.New(m, theta)
	if err != nil {
		return nil, err
	}
	return &Generator{Arrivals: arrivals, Sampler: zipf.NewSampler(d), videos: m, theta: theta}, nil
}

// Generate materializes a trace of the given duration (seconds) using the
// seed for all randomness. The same (generator parameters, seed) pair always
// yields the same trace.
func (g *Generator) Generate(duration float64, seed int64) *Trace {
	rng := stats.NewRNG(seed)
	arrRNG := rng.Derive(1)
	vidRNG := rng.Derive(2)
	tr := &Trace{Meta: TraceMeta{
		Videos:   g.videos,
		Theta:    g.theta,
		Process:  g.Arrivals.Name(),
		MeanRate: g.Arrivals.Rate(),
		Duration: duration,
		Seed:     seed,
	}}
	t := 0.0
	for {
		t += g.Arrivals.Next(arrRNG)
		if t > duration {
			break
		}
		tr.Requests = append(tr.Requests, Request{Time: t, Video: g.Sampler.Sample(vidRNG)})
	}
	return tr
}

// Validate checks trace invariants: ordered times and video ranks within the
// declared catalog size.
func (tr *Trace) Validate() error {
	if !sort.SliceIsSorted(tr.Requests, func(i, j int) bool {
		return tr.Requests[i].Time < tr.Requests[j].Time
	}) {
		return fmt.Errorf("workload: trace times out of order")
	}
	for i, r := range tr.Requests {
		if r.Time < 0 {
			return fmt.Errorf("workload: request %d has negative time %g", i, r.Time)
		}
		if r.Video < 0 || (tr.Meta.Videos > 0 && r.Video >= tr.Meta.Videos) {
			return fmt.Errorf("workload: request %d targets video %d outside catalog of %d", i, r.Video, tr.Meta.Videos)
		}
	}
	return nil
}

// Save writes the trace as JSON.
func (tr *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// Load reads a JSON trace and validates it.
func Load(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Compress returns a copy of the trace with every timestamp divided by
// factor — the time-compression transform live trace replay uses: a trace
// compressed by C and replayed in real time reproduces the original virtual
// timeline C× faster. Meta is rescaled to stay self-describing (duration
// shrinks, the mean rate grows), so a compressed trace still validates and
// round-trips like any other.
func (tr *Trace) Compress(factor float64) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("workload: compression factor must be positive, got %g", factor)
	}
	out := &Trace{Meta: tr.Meta}
	out.Meta.Duration = tr.Meta.Duration / factor
	out.Meta.MeanRate = tr.Meta.MeanRate * factor
	if len(tr.Requests) > 0 {
		out.Requests = make([]Request, len(tr.Requests))
		for i, r := range tr.Requests {
			out.Requests[i] = Request{Time: r.Time / factor, Video: r.Video}
		}
	}
	return out, nil
}

// VideoCounts tallies how many requests target each video rank.
func (tr *Trace) VideoCounts() []int {
	m := tr.Meta.Videos
	for _, r := range tr.Requests {
		if r.Video >= m {
			m = r.Video + 1
		}
	}
	counts := make([]int, m)
	for _, r := range tr.Requests {
		counts[r.Video]++
	}
	return counts
}

// Remap returns a copy of the trace in which every request arriving at or
// after the switch time has its video remapped through mapping (a
// permutation of catalog ranks). It models a popularity shift mid-trace —
// the scenario runtime dynamic replication exists for: content that was cold
// when the layout was planned becomes hot.
func (tr *Trace) Remap(mapping []int, from float64) (*Trace, error) {
	if tr.Meta.Videos > 0 && len(mapping) != tr.Meta.Videos {
		return nil, fmt.Errorf("workload: mapping covers %d videos; trace has %d", len(mapping), tr.Meta.Videos)
	}
	out := &Trace{Meta: tr.Meta, Requests: make([]Request, len(tr.Requests))}
	copy(out.Requests, tr.Requests)
	for i := range out.Requests {
		if out.Requests[i].Time < from {
			continue
		}
		v := out.Requests[i].Video
		if v < 0 || v >= len(mapping) {
			return nil, fmt.Errorf("workload: request %d targets video %d outside the mapping", i, v)
		}
		nv := mapping[v]
		if nv < 0 || (tr.Meta.Videos > 0 && nv >= tr.Meta.Videos) {
			return nil, fmt.Errorf("workload: mapping sends video %d to invalid %d", v, nv)
		}
		out.Requests[i].Video = nv
	}
	return out, nil
}

// RotationMapping returns the permutation i → (i + k) mod m: rank i's
// requests land on the video k ranks away, shifting the entire popularity
// curve. With k ≈ m/2 the hottest titles become mid-pack and vice versa.
func RotationMapping(m, k int) []int {
	mapping := make([]int, m)
	for i := range mapping {
		mapping[i] = ((i+k)%m + m) % m
	}
	return mapping
}

// EstimateTheta fits a Zipf-like skew to observed per-video request counts
// by least-squares regression of log(frequency) on log(rank) over the videos
// that received any requests. It closes the loop on the paper's assumption
// that popularities are known a priori: a measured trace yields the θ to
// plan the next layout with. The fit ignores zero-count videos (their rank
// is unknowable from the trace) and returns an error when fewer than three
// distinct ranks remain.
func EstimateTheta(counts []int) (float64, error) {
	nonzero := make([]int, 0, len(counts))
	for _, n := range counts {
		if n > 0 {
			nonzero = append(nonzero, n)
		}
	}
	if len(nonzero) < 3 {
		return 0, fmt.Errorf("workload: need at least 3 videos with requests, got %d", len(nonzero))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(nonzero)))
	// Regress log n_k = c − θ·log k.
	var sx, sy, sxx, sxy float64
	m := float64(len(nonzero))
	for i, n := range nonzero {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(n))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := m*sxx - sx*sx
	if denom == 0 {
		return 0, fmt.Errorf("workload: degenerate rank spread")
	}
	slope := (m*sxy - sx*sy) / denom
	theta := -slope
	if theta < 0 {
		theta = 0
	}
	return theta, nil
}
