package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vodcluster/internal/stats"
)

func TestPoissonInterarrivalMean(t *testing.T) {
	p := Poisson{Lambda: 0.5} // mean gap 2 s
	rng := stats.NewRNG(1)
	var sum stats.Summary
	for i := 0; i < 100000; i++ {
		sum.Add(p.Next(rng))
	}
	if math.Abs(sum.Mean()-2) > 0.05 {
		t.Fatalf("mean interarrival %g, want ≈ 2", sum.Mean())
	}
	if p.Rate() != 0.5 || p.Name() != "poisson" {
		t.Fatal("accessors wrong")
	}
}

func TestNewPoissonPerMinute(t *testing.T) {
	p := NewPoissonPerMinute(40)
	if math.Abs(p.Lambda-40.0/60) > 1e-12 {
		t.Fatalf("λ = %g/s, want 40/min", p.Lambda)
	}
}

func TestPoissonPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate Poisson did not panic")
		}
	}()
	Poisson{}.Next(stats.NewRNG(1))
}

func TestMMPPValidate(t *testing.T) {
	good := &MMPP{Lambda1: 1, Lambda2: 2, Sojourn1: 10, Sojourn2: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*MMPP{
		{Lambda1: 0, Lambda2: 2, Sojourn1: 10, Sojourn2: 10},
		{Lambda1: 1, Lambda2: 2, Sojourn1: 0, Sojourn2: 10},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid MMPP %+v accepted", bad)
		}
	}
}

func TestMMPPStationaryRate(t *testing.T) {
	m := &MMPP{Lambda1: 0.2, Lambda2: 1.0, Sojourn1: 300, Sojourn2: 100}
	// Stationary rate: (300·0.2 + 100·1.0)/400 = 0.4.
	if math.Abs(m.Rate()-0.4) > 1e-12 {
		t.Fatalf("stationary rate %g, want 0.4", m.Rate())
	}
	rng := stats.NewRNG(2)
	n := 0
	elapsed := 0.0
	for elapsed < 2e6 { // ~5000 regime cycles, so the estimate settles
		elapsed += m.Next(rng)
		n++
	}
	emp := float64(n) / elapsed
	if math.Abs(emp-0.4) > 0.02 {
		t.Fatalf("empirical MMPP rate %g, want ≈ 0.4", emp)
	}
	if m.Name() != "mmpp2" {
		t.Fatal("name wrong")
	}
}

func TestMMPPBurstierThanPoisson(t *testing.T) {
	// The MMPP's interarrival coefficient of variation must exceed the
	// Poisson's (which is 1).
	m := &MMPP{Lambda1: 0.05, Lambda2: 2.0, Sojourn1: 500, Sojourn2: 500}
	rng := stats.NewRNG(3)
	var sum stats.Summary
	for i := 0; i < 200000; i++ {
		sum.Add(m.Next(rng))
	}
	cv := sum.StdDev() / sum.Mean()
	if cv < 1.2 {
		t.Fatalf("MMPP CV = %g, want clearly above 1", cv)
	}
}

func TestGeneratorDeterministicTraces(t *testing.T) {
	gen, err := NewGenerator(NewPoissonPerMinute(30), 50, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	a := gen.Generate(3600, 7)
	b := gen.Generate(3600, 7)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed gave different trace lengths")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("same seed gave different traces")
		}
	}
	c := gen.Generate(3600, 8)
	if len(a.Requests) == len(c.Requests) {
		same := true
		for i := range a.Requests {
			if a.Requests[i] != c.Requests[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical traces")
		}
	}
}

func TestGeneratorRateAndMeta(t *testing.T) {
	gen, err := NewGenerator(NewPoissonPerMinute(30), 40, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(2*3600, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expect ≈ 3600 requests over 2 h at 30/min.
	if len(tr.Requests) < 3200 || len(tr.Requests) > 4000 {
		t.Fatalf("trace has %d requests, want ≈ 3600", len(tr.Requests))
	}
	if tr.Meta.Videos != 40 || tr.Meta.Theta != 0.6 || tr.Meta.Seed != 1 ||
		tr.Meta.Process != "poisson" || tr.Meta.Duration != 2*3600 {
		t.Fatalf("meta %+v", tr.Meta)
	}
	counts := tr.VideoCounts()
	if len(counts) != 40 {
		t.Fatalf("video counts length %d", len(counts))
	}
	if counts[0] <= counts[39] {
		t.Fatal("Zipf head not hotter than tail")
	}
}

func TestGeneratorRejectsBadParams(t *testing.T) {
	if _, err := NewGenerator(NewPoissonPerMinute(30), 0, 0.6); err == nil {
		t.Fatal("zero videos accepted")
	}
	if _, err := NewGenerator(NewPoissonPerMinute(30), 5, -1); err == nil {
		t.Fatal("negative skew accepted")
	}
}

func TestTraceSaveLoadRoundtrip(t *testing.T) {
	gen, err := NewGenerator(NewPoissonPerMinute(10), 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(600, 3)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(tr.Requests) || got.Meta != tr.Meta {
		t.Fatal("roundtrip lost data")
	}
	for i := range got.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatal("roundtrip corrupted requests")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"requests":[{"t":5,"v":0},{"t":1,"v":0}],"meta":{"videos":2}}`)); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	if _, err := Load(strings.NewReader(`{"requests":[{"t":1,"v":9}],"meta":{"videos":2}}`)); err == nil {
		t.Fatal("out-of-catalog video accepted")
	}
	if _, err := Load(strings.NewReader(`{"requests":[{"t":-1,"v":0}],"meta":{"videos":2}}`)); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestVideoCountsExpandsBeyondMeta(t *testing.T) {
	tr := &Trace{Requests: []Request{{Time: 1, Video: 7}}, Meta: TraceMeta{Videos: 3}}
	counts := tr.VideoCounts()
	if len(counts) != 8 || counts[7] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestEstimateThetaRecoversSkew(t *testing.T) {
	for _, theta := range []float64{0.25, 0.5, 0.75, 1.0} {
		gen, err := NewGenerator(NewPoissonPerMinute(2000), 100, theta)
		if err != nil {
			t.Fatal(err)
		}
		tr := gen.Generate(3600, 5) // ~120k requests: tight empirical ranks
		got, err := EstimateTheta(tr.VideoCounts())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-theta) > 0.1 {
			t.Fatalf("θ=%g estimated as %g", theta, got)
		}
	}
}

func TestEstimateThetaUniform(t *testing.T) {
	counts := make([]int, 50)
	for i := range counts {
		counts[i] = 100
	}
	got, err := EstimateTheta(counts)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.02 {
		t.Fatalf("uniform counts estimated as θ=%g", got)
	}
}

func TestEstimateThetaValidation(t *testing.T) {
	if _, err := EstimateTheta([]int{5, 3}); err == nil {
		t.Fatal("two videos accepted")
	}
	if _, err := EstimateTheta([]int{0, 0, 0}); err == nil {
		t.Fatal("all-zero counts accepted")
	}
	if _, err := EstimateTheta([]int{9, 0, 5, 0, 2}); err != nil {
		t.Fatalf("zero-count holes must be tolerated: %v", err)
	}
}
