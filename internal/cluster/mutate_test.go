package cluster

import (
	"testing"

	"vodcluster/internal/core"
)

func TestAddReplicaRuntime(t *testing.T) {
	st := newState(t, 0)
	// Layout: v0 on {0,1}, v1 on {0}, v2 on {1}; each server holds 2 of 2.
	if err := st.AddReplica(1, 1); err == nil {
		t.Fatal("add beyond storage capacity accepted")
	}
	// Free a slot first.
	if err := st.RemoveReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if st.Replicas(0) != 1 {
		t.Fatalf("replicas of v0 = %d", st.Replicas(0))
	}
	if err := st.AddReplica(1, 1); err != nil {
		t.Fatalf("add after eviction failed: %v", err)
	}
	if st.Replicas(1) != 2 {
		t.Fatalf("replicas of v1 = %d", st.Replicas(1))
	}
	holders := st.Holders(1)
	if len(holders) != 2 || holders[0] != 0 || holders[1] != 1 {
		t.Fatalf("holders of v1 = %v", holders)
	}
	// Round-robin over the grown holder set reaches the new replica.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		if id, ok := st.Admit(1, StaticRoundRobin{}); ok {
			s, _ := st.Lookup(id)
			seen[s.Server] = true
			if err := st.Release(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("scheduler never used the new replica: %v", seen)
	}
}

func TestAddReplicaValidation(t *testing.T) {
	st := newState(t, 0)
	if err := st.AddReplica(-1, 0); err == nil {
		t.Fatal("negative video accepted")
	}
	if err := st.AddReplica(0, 9); err == nil {
		t.Fatal("bad server accepted")
	}
	if err := st.AddReplica(0, 0); err == nil {
		t.Fatal("duplicate replica accepted (Eq. 6)")
	}
	st.FailServer(1)
	if err := st.AddReplica(1, 1); err == nil {
		t.Fatal("add to down server accepted")
	}
}

func TestRemoveReplicaValidation(t *testing.T) {
	st := newState(t, 0)
	if err := st.RemoveReplica(1, 1); err == nil {
		t.Fatal("removing a replica the server lacks accepted")
	}
	if err := st.RemoveReplica(1, 0); err == nil {
		t.Fatal("removing the last replica accepted (Eq. 7)")
	}
	if err := st.RemoveReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveReplica(9, 0); err == nil {
		t.Fatal("bad video accepted")
	}
}

func TestStorageAccounting(t *testing.T) {
	st := newState(t, 0)
	size := st.Problem().Catalog[0].SizeBytes()
	if st.StorageFree(0) > 1e-6 {
		t.Fatalf("full server reports %g bytes free", st.StorageFree(0))
	}
	if err := st.RemoveReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := st.StorageFree(0); got < size-1e-6 {
		t.Fatalf("free after eviction %g, want %g", got, size)
	}
	if got := st.StorageUsed(0); got < size-1e-6 || got > size+1e-6 {
		t.Fatalf("used after eviction %g, want %g", got, size)
	}
}

func TestOutgoingReservation(t *testing.T) {
	st := newState(t, 0)
	if st.ReserveOutgoing(0, 0) || st.ReserveOutgoing(-1, core.Mbps) || st.ReserveOutgoing(9, core.Mbps) {
		t.Fatal("degenerate reservation accepted")
	}
	if !st.ReserveOutgoing(0, 8*core.Mbps) {
		t.Fatal("reservation within the link refused")
	}
	// 2 Mb/s left on the 10 Mb/s link: a 4 Mb/s stream no longer fits.
	if _, ok := st.Admit(1, FirstAvailable{}); ok {
		t.Fatal("admission ignored the outgoing reservation")
	}
	if st.ReserveOutgoing(0, 4*core.Mbps) {
		t.Fatal("over-reservation accepted")
	}
	st.ReleaseOutgoing(0, 8*core.Mbps)
	if st.UsedBandwidth(0) != 0 {
		t.Fatalf("used bandwidth %g after release", st.UsedBandwidth(0))
	}
	st.ReleaseOutgoing(0, core.Gbps) // over-release clamps
	if st.UsedBandwidth(0) != 0 {
		t.Fatal("over-release corrupted accounting")
	}
	st.FailServer(0)
	if st.ReserveOutgoing(0, core.Mbps) {
		t.Fatal("reservation on a down server accepted")
	}
}

func TestAdmitDirect(t *testing.T) {
	st := newState(t, 0)
	// Server 1 holds no copy of v1.
	if _, ok := st.AdmitDirect(1, 1); ok {
		t.Fatal("admitted onto a non-holder")
	}
	if _, ok := st.AdmitDirect(-1, 0); ok {
		t.Fatal("bad video accepted")
	}
	if _, ok := st.AdmitDirect(0, 9); ok {
		t.Fatal("bad server accepted")
	}
	id, ok := st.AdmitDirect(1, 0)
	if !ok {
		t.Fatal("direct admission onto the holder failed")
	}
	if s, _ := st.Lookup(id); s.Server != 0 || s.Redirected {
		t.Fatalf("direct admission produced %+v", s)
	}
	st.FailServer(0)
	if _, ok := st.AdmitDirect(1, 0); ok {
		t.Fatal("admitted onto a down server")
	}
}

func TestNominalRate(t *testing.T) {
	st := newState(t, 0)
	if got := st.NominalRate(0); got != 4*core.Mbps {
		t.Fatalf("nominal rate %g, want the catalog's 4 Mb/s", got)
	}
	// Per-copy rates: the nominal rate is the best copy's.
	p, l := testProblem(t, 0), testLayout(t)
	rates := [][]float64{
		{2 * core.Mbps, 6 * core.Mbps},
		{4 * core.Mbps, 0},
		{0, 2 * core.Mbps},
	}
	rs, err := New(p, l, WithCopyRates(rates))
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.NominalRate(0); got != 6*core.Mbps {
		t.Fatalf("copy-rate nominal %g, want 6 Mb/s", got)
	}
}

func TestAddReplicaRate(t *testing.T) {
	p, l := testProblem(t, 0), testLayout(t)
	rates := [][]float64{
		{2 * core.Mbps, 2 * core.Mbps},
		{4 * core.Mbps, 0},
		{0, 4 * core.Mbps},
	}
	shared := make([][]float64, len(rates))
	for v := range rates {
		shared[v] = append([]float64(nil), rates[v]...)
	}
	st, err := New(p, l, WithCopyRates(shared))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddReplica(1, 1); err == nil {
		t.Fatal("AddReplica accepted on a copy-rate state")
	}
	if err := st.AddReplicaRate(1, 1, 0); err == nil {
		t.Fatal("non-positive rate accepted")
	}
	// Evict v0's 2 Mb/s copy from server 1 and add v1 there at 2 Mb/s.
	if err := st.RemoveReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.AddReplicaRate(1, 1, 2*core.Mbps); err != nil {
		t.Fatal(err)
	}
	if got := st.RateOf(1, 1); got != 2*core.Mbps {
		t.Fatalf("new copy's rate %g, want 2 Mb/s", got)
	}
	// The caller's matrix must be untouched (states deep-copy the rates).
	if shared[1][1] != 0 || shared[0][1] != 2*core.Mbps {
		t.Fatal("state mutation leaked into the caller's rate matrix")
	}
	// Plain states reject the rate-carrying variant.
	plain := newState(t, 0)
	if err := plain.AddReplicaRate(1, 1, 2*core.Mbps); err == nil {
		t.Fatal("AddReplicaRate accepted without per-copy rates")
	}
}

func TestBackboneReservation(t *testing.T) {
	st := newState(t, 10*core.Mbps)
	if st.ReserveBackbone(0) {
		t.Fatal("zero reservation accepted")
	}
	if !st.ReserveBackbone(6 * core.Mbps) {
		t.Fatal("reservation within capacity refused")
	}
	if st.ReserveBackbone(6 * core.Mbps) {
		t.Fatal("over-reservation accepted")
	}
	st.ReleaseBackbone(6 * core.Mbps)
	if st.BackboneFree() != 10*core.Mbps {
		t.Fatalf("backbone free %g after release", st.BackboneFree())
	}
	st.ReleaseBackbone(100 * core.Mbps) // over-release clamps to zero usage
	if st.BackboneFree() != 10*core.Mbps {
		t.Fatal("over-release corrupted accounting")
	}
}
