package cluster

import (
	"testing"

	"vodcluster/internal/core"
)

func TestAddReplicaRuntime(t *testing.T) {
	st := newState(t, 0)
	// Layout: v0 on {0,1}, v1 on {0}, v2 on {1}; each server holds 2 of 2.
	if err := st.AddReplica(1, 1); err == nil {
		t.Fatal("add beyond storage capacity accepted")
	}
	// Free a slot first.
	if err := st.RemoveReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if st.Replicas(0) != 1 {
		t.Fatalf("replicas of v0 = %d", st.Replicas(0))
	}
	if err := st.AddReplica(1, 1); err != nil {
		t.Fatalf("add after eviction failed: %v", err)
	}
	if st.Replicas(1) != 2 {
		t.Fatalf("replicas of v1 = %d", st.Replicas(1))
	}
	holders := st.Holders(1)
	if len(holders) != 2 || holders[0] != 0 || holders[1] != 1 {
		t.Fatalf("holders of v1 = %v", holders)
	}
	// Round-robin over the grown holder set reaches the new replica.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		if id, ok := st.Admit(1, StaticRoundRobin{}); ok {
			s, _ := st.Lookup(id)
			seen[s.Server] = true
			if err := st.Release(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("scheduler never used the new replica: %v", seen)
	}
}

func TestAddReplicaValidation(t *testing.T) {
	st := newState(t, 0)
	if err := st.AddReplica(-1, 0); err == nil {
		t.Fatal("negative video accepted")
	}
	if err := st.AddReplica(0, 9); err == nil {
		t.Fatal("bad server accepted")
	}
	if err := st.AddReplica(0, 0); err == nil {
		t.Fatal("duplicate replica accepted (Eq. 6)")
	}
	st.FailServer(1)
	if err := st.AddReplica(1, 1); err == nil {
		t.Fatal("add to down server accepted")
	}
}

func TestRemoveReplicaValidation(t *testing.T) {
	st := newState(t, 0)
	if err := st.RemoveReplica(1, 1); err == nil {
		t.Fatal("removing a replica the server lacks accepted")
	}
	if err := st.RemoveReplica(1, 0); err == nil {
		t.Fatal("removing the last replica accepted (Eq. 7)")
	}
	if err := st.RemoveReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveReplica(9, 0); err == nil {
		t.Fatal("bad video accepted")
	}
}

func TestStorageAccounting(t *testing.T) {
	st := newState(t, 0)
	size := st.Problem().Catalog[0].SizeBytes()
	if st.StorageFree(0) > 1e-6 {
		t.Fatalf("full server reports %g bytes free", st.StorageFree(0))
	}
	if err := st.RemoveReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := st.StorageFree(0); got < size-1e-6 {
		t.Fatalf("free after eviction %g, want %g", got, size)
	}
	if got := st.StorageUsed(0); got < size-1e-6 || got > size+1e-6 {
		t.Fatalf("used after eviction %g, want %g", got, size)
	}
}

func TestBackboneReservation(t *testing.T) {
	st := newState(t, 10*core.Mbps)
	if st.ReserveBackbone(0) {
		t.Fatal("zero reservation accepted")
	}
	if !st.ReserveBackbone(6 * core.Mbps) {
		t.Fatal("reservation within capacity refused")
	}
	if st.ReserveBackbone(6 * core.Mbps) {
		t.Fatal("over-reservation accepted")
	}
	st.ReleaseBackbone(6 * core.Mbps)
	if st.BackboneFree() != 10*core.Mbps {
		t.Fatalf("backbone free %g after release", st.BackboneFree())
	}
	st.ReleaseBackbone(100 * core.Mbps) // over-release clamps to zero usage
	if st.BackboneFree() != 10*core.Mbps {
		t.Fatal("over-release corrupted accounting")
	}
}
