package cluster

import (
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// randomTestState builds a 3-server state with one video replicated
// everywhere, so every server is a feasible holder.
func randomTestState(t *testing.T) *State {
	t.Helper()
	catalog, err := core.NewCatalog(1, 0.75, 4e6, 5400)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            catalog,
		NumServers:         3,
		StoragePerServer:   1e12,
		BandwidthPerServer: 40e6,
		ArrivalRate:        1,
		PeakPeriod:         5400,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	layout := &core.Layout{Replicas: []int{3}, Servers: [][]int{{0, 1, 2}}}
	st, err := New(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRandomHolderDeterministicPerSeed(t *testing.T) {
	pick := func(seed int64) []int {
		st := randomTestState(t)
		r := NewRandomHolder(seed)
		choices := make([]int, 0, 20)
		for i := 0; i < 20; i++ {
			d := r.Schedule(st, 0)
			if !d.Accept {
				t.Fatalf("decision %d rejected with all servers free", i)
			}
			choices = append(choices, d.Server)
		}
		return choices
	}
	a, b := pick(1), pick(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := pick(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical choice sequences")
	}
}

func TestRandomHolderSeedDecisionOverridesStream(t *testing.T) {
	st := randomTestState(t)
	r := NewRandomHolder(0)
	base := stats.NewRNG(99)
	// Re-seeding with the same decision stream must reproduce the choice,
	// regardless of what the policy consumed in between.
	r.SeedDecision(base.Derive(5))
	d1 := r.Schedule(st, 0)
	r.SeedDecision(base.Derive(6))
	_ = r.Schedule(st, 0)
	r.SeedDecision(base.Derive(5))
	d2 := r.Schedule(st, 0)
	if d1.Server != d2.Server {
		t.Fatalf("same decision stream chose %d then %d", d1.Server, d2.Server)
	}
}

func TestRandomHolderRespectsFeasibility(t *testing.T) {
	st := randomTestState(t)
	// Saturate servers 0 and 1; only server 2 can serve.
	rate := st.Problem().Catalog[0].BitRate
	for s := 0; s < 2; s++ {
		for st.FreeBandwidth(s) >= rate {
			if _, ok := st.AdmitDirect(0, s); !ok {
				break
			}
		}
	}
	r := NewRandomHolder(3)
	for i := 0; i < 10; i++ {
		d := r.Schedule(st, 0)
		if !d.Accept || d.Server != 2 {
			t.Fatalf("decision %d chose %+v, want server 2", i, d)
		}
	}
	// Saturate the last server: every decision must reject.
	for st.FreeBandwidth(2) >= rate {
		if _, ok := st.AdmitDirect(0, 2); !ok {
			break
		}
	}
	if d := r.Schedule(st, 0); d.Accept {
		t.Fatalf("accepted %+v with the cluster saturated", d)
	}
}
