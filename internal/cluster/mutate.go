package cluster

import (
	"fmt"
	"sort"
)

// Runtime layout mutation: the operations dynamic replication (paper §4.1.2
// "the replication algorithms can be applied for dynamic replication during
// run-time") needs to add and remove replicas while streams are in flight.
// Active streams are never disturbed — removing a replica only stops future
// requests from being scheduled onto it.

// StorageUsed returns the bytes of content stored on server s.
func (st *State) StorageUsed(s int) float64 { return st.storageUsed[s] }

// StorageFree returns the remaining content storage of server s.
func (st *State) StorageFree(s int) float64 {
	return st.p.StorageOf(s) - st.storageUsed[s]
}

// Replicas returns the current number of replicas of video v.
func (st *State) Replicas(v int) int { return len(st.holders[v]) }

// AddReplica places a new replica of video v on server s at runtime. The
// server must be up, must not already hold the video, and must have storage
// room. The cursor arithmetic of the static round-robin scheduler adapts
// automatically to the longer holder list. States running WithCopyRates
// must use AddReplicaRate so the new copy gets an encoding rate.
func (st *State) AddReplica(v, s int) error {
	if st.copyRates != nil {
		return fmt.Errorf("cluster: per-copy rates configured; use AddReplicaRate")
	}
	return st.addReplica(v, s, 0)
}

// AddReplicaRate places a new replica of video v on server s with an
// explicit encoding rate in bits/s — the WithCopyRates counterpart of
// AddReplica, charging rate·duration/8 bytes of storage for the new copy.
func (st *State) AddReplicaRate(v, s int, rate float64) error {
	if st.copyRates == nil {
		return fmt.Errorf("cluster: no per-copy rates configured; use AddReplica")
	}
	if rate <= 0 {
		return fmt.Errorf("cluster: copy rate must be positive, got %g", rate)
	}
	return st.addReplica(v, s, rate)
}

func (st *State) addReplica(v, s int, rate float64) error {
	if v < 0 || v >= st.p.M() {
		return fmt.Errorf("cluster: no video %d", v)
	}
	if s < 0 || s >= st.p.N() {
		return fmt.Errorf("cluster: no server %d", s)
	}
	if !st.up[s] {
		return fmt.Errorf("cluster: server %d is down", s)
	}
	holders := st.holders[v]
	i := sort.SearchInts(holders, s)
	if i < len(holders) && holders[i] == s {
		return fmt.Errorf("cluster: server %d already holds video %d", s, v)
	}
	size := st.p.Catalog[v].SizeBytes()
	if rate > 0 {
		size = rate * st.p.Catalog[v].Duration / 8
	}
	if st.StorageFree(s) < size-1e-6 {
		return fmt.Errorf("cluster: server %d lacks %g bytes for video %d", s, size, v)
	}
	holders = append(holders, 0)
	copy(holders[i+1:], holders[i:])
	holders[i] = s
	st.holders[v] = holders
	st.storageUsed[s] += size
	if st.copyRates != nil {
		st.copyRates[v][s] = rate
	}
	return nil
}

// RemoveReplica evicts the replica of video v from server s. The video's
// last replica can never be removed (constraint Eq. 7 keeps every video
// present). Streams currently served from s continue; only future
// scheduling is affected.
func (st *State) RemoveReplica(v, s int) error {
	if v < 0 || v >= st.p.M() {
		return fmt.Errorf("cluster: no video %d", v)
	}
	holders := st.holders[v]
	i := sort.SearchInts(holders, s)
	if i >= len(holders) || holders[i] != s {
		return fmt.Errorf("cluster: server %d does not hold video %d", s, v)
	}
	if len(holders) == 1 {
		return fmt.Errorf("cluster: refusing to remove the last replica of video %d", v)
	}
	st.holders[v] = append(holders[:i], holders[i+1:]...)
	size := st.p.Catalog[v].SizeBytes()
	if st.copyRates != nil {
		// Per-copy rates charge rate·duration/8 per copy; refund the same.
		size = st.copyRates[v][s] * st.p.Catalog[v].Duration / 8
		st.copyRates[v][s] = 0
	}
	st.storageUsed[s] -= size
	if st.storageUsed[s] < 0 {
		st.storageUsed[s] = 0
	}
	return nil
}

// PinnedStreams counts active streams pinned to video v's replica on server
// s: streams of v carried by s's outgoing link, plus redirected streams of v
// sourced from s's copy. A replica with pinned streams must not be evicted —
// the copy is feeding live sessions.
func (st *State) PinnedStreams(v, s int) int {
	n := 0
	for _, stream := range st.streams {
		if stream.Video == v && (stream.Server == s || stream.Source == s) {
			n++
		}
	}
	return n
}

// EvictReplica removes the replica of video v from server s only when no
// active stream is pinned to it — the rebalancer's safe eviction, as opposed
// to RemoveReplica, which merely stops future scheduling. The last replica
// of a video can never be evicted.
func (st *State) EvictReplica(v, s int) error {
	if v < 0 || v >= st.p.M() {
		return fmt.Errorf("cluster: no video %d", v)
	}
	if n := st.PinnedStreams(v, s); n > 0 {
		return fmt.Errorf("cluster: video %d on server %d has %d pinned streams", v, s, n)
	}
	return st.RemoveReplica(v, s)
}

// ReserveBackbone claims bps of internal backbone bandwidth (e.g. for a
// replica migration) and reports whether it fit.
func (st *State) ReserveBackbone(bps float64) bool {
	if bps <= 0 {
		return false
	}
	if st.BackboneFree() < bps-1e-6 {
		return false
	}
	st.backboneUsed += bps
	return true
}

// ReleaseBackbone returns previously reserved backbone bandwidth.
func (st *State) ReleaseBackbone(bps float64) {
	st.backboneUsed -= bps
	if st.backboneUsed < 0 {
		st.backboneUsed = 0
	}
}

// ReserveOutgoing claims bps of server s's outgoing bandwidth for a
// non-stream load — e.g. sourcing a re-replication copy on a cluster with
// no internal backbone — and reports whether it fit. The reservation is
// visible to admission control and load sampling like any stream's usage.
func (st *State) ReserveOutgoing(s int, bps float64) bool {
	if s < 0 || s >= st.p.N() || bps <= 0 || !st.up[s] {
		return false
	}
	if st.FreeBandwidth(s) < bps-1e-6 {
		return false
	}
	st.usedBW[s] += bps
	return true
}

// ReleaseOutgoing returns outgoing bandwidth claimed with ReserveOutgoing.
func (st *State) ReleaseOutgoing(s int, bps float64) {
	if s < 0 || s >= st.p.N() || bps <= 0 {
		return
	}
	st.usedBW[s] -= bps
	if st.usedBW[s] < 0 {
		st.usedBW[s] = 0
	}
}
