package cluster

import (
	"fmt"
	"sort"
)

// Runtime layout mutation: the operations dynamic replication (paper §4.1.2
// "the replication algorithms can be applied for dynamic replication during
// run-time") needs to add and remove replicas while streams are in flight.
// Active streams are never disturbed — removing a replica only stops future
// requests from being scheduled onto it.

// StorageUsed returns the bytes of content stored on server s.
func (st *State) StorageUsed(s int) float64 { return st.storageUsed[s] }

// StorageFree returns the remaining content storage of server s.
func (st *State) StorageFree(s int) float64 {
	return st.p.StorageOf(s) - st.storageUsed[s]
}

// Replicas returns the current number of replicas of video v.
func (st *State) Replicas(v int) int { return len(st.holders[v]) }

// AddReplica places a new replica of video v on server s at runtime. The
// server must be up, must not already hold the video, and must have storage
// room. The cursor arithmetic of the static round-robin scheduler adapts
// automatically to the longer holder list.
func (st *State) AddReplica(v, s int) error {
	if v < 0 || v >= st.p.M() {
		return fmt.Errorf("cluster: no video %d", v)
	}
	if s < 0 || s >= st.p.N() {
		return fmt.Errorf("cluster: no server %d", s)
	}
	if !st.up[s] {
		return fmt.Errorf("cluster: server %d is down", s)
	}
	holders := st.holders[v]
	i := sort.SearchInts(holders, s)
	if i < len(holders) && holders[i] == s {
		return fmt.Errorf("cluster: server %d already holds video %d", s, v)
	}
	size := st.p.Catalog[v].SizeBytes()
	if st.StorageFree(s) < size-1e-6 {
		return fmt.Errorf("cluster: server %d lacks %g bytes for video %d", s, size, v)
	}
	holders = append(holders, 0)
	copy(holders[i+1:], holders[i:])
	holders[i] = s
	st.holders[v] = holders
	st.storageUsed[s] += size
	return nil
}

// RemoveReplica evicts the replica of video v from server s. The video's
// last replica can never be removed (constraint Eq. 7 keeps every video
// present). Streams currently served from s continue; only future
// scheduling is affected.
func (st *State) RemoveReplica(v, s int) error {
	if v < 0 || v >= st.p.M() {
		return fmt.Errorf("cluster: no video %d", v)
	}
	holders := st.holders[v]
	i := sort.SearchInts(holders, s)
	if i >= len(holders) || holders[i] != s {
		return fmt.Errorf("cluster: server %d does not hold video %d", s, v)
	}
	if len(holders) == 1 {
		return fmt.Errorf("cluster: refusing to remove the last replica of video %d", v)
	}
	st.holders[v] = append(holders[:i], holders[i+1:]...)
	st.storageUsed[s] -= st.p.Catalog[v].SizeBytes()
	if st.storageUsed[s] < 0 {
		st.storageUsed[s] = 0
	}
	return nil
}

// ReserveBackbone claims bps of internal backbone bandwidth (e.g. for a
// replica migration) and reports whether it fit.
func (st *State) ReserveBackbone(bps float64) bool {
	if bps <= 0 {
		return false
	}
	if st.BackboneFree() < bps-1e-6 {
		return false
	}
	st.backboneUsed += bps
	return true
}

// ReleaseBackbone returns previously reserved backbone bandwidth.
func (st *State) ReleaseBackbone(bps float64) {
	st.backboneUsed -= bps
	if st.backboneUsed < 0 {
		st.backboneUsed = 0
	}
}
