package cluster

// Scheduler chooses which replica (if any) serves a request for a video.
// Implementations may keep per-video state inside the State (the static
// round-robin cursor) but must not mutate bandwidth accounting; Admit does
// that after the decision.
type Scheduler interface {
	// Schedule returns the admission decision for one request for video v.
	Schedule(st *State, v int) Decision
	// Name identifies the policy in reports.
	Name() string
}

// StaticRoundRobin is the paper's scheduling model (§3.2): requests for a
// video rotate over its replicas in fixed order, regardless of load, so each
// replica receives w_i = p_i·λ·T/r_i expected requests. If the designated
// server lacks outgoing bandwidth the request is rejected — the paper's
// simple admission control. The cursor advances on every request, accepted
// or not, to preserve the rotation.
type StaticRoundRobin struct{}

// Name implements Scheduler.
func (StaticRoundRobin) Name() string { return "static-rr" }

// Schedule implements Scheduler.
func (StaticRoundRobin) Schedule(st *State, v int) Decision {
	holders := st.holders[v]
	if len(holders) == 0 {
		return Reject
	}
	k := st.rrNext[v] % len(holders)
	st.rrNext[v] = (k + 1) % len(holders)
	s := holders[k]
	if !st.CanServe(s, v) {
		return Reject
	}
	return Direct(s)
}

// FirstAvailable rotates like StaticRoundRobin but, when the designated
// replica's server is saturated, tries the video's remaining replicas before
// rejecting. This is the natural "retry" refinement of the paper's policy and
// quantifies how much of the replication benefit static scheduling leaves on
// the table.
type FirstAvailable struct{}

// Name implements Scheduler.
func (FirstAvailable) Name() string { return "first-available" }

// Schedule implements Scheduler.
func (FirstAvailable) Schedule(st *State, v int) Decision {
	holders := st.holders[v]
	if len(holders) == 0 {
		return Reject
	}
	k := st.rrNext[v] % len(holders)
	st.rrNext[v] = (k + 1) % len(holders)
	for probe := 0; probe < len(holders); probe++ {
		s := holders[(k+probe)%len(holders)]
		if st.CanServe(s, v) {
			return Direct(s)
		}
	}
	return Reject
}

// LeastLoaded serves each request from the replica holder with the most free
// outgoing bandwidth — the strongest dynamic policy available without
// redirection, used as the upper-bound control in scheduling ablations.
type LeastLoaded struct{}

// Name implements Scheduler.
func (LeastLoaded) Name() string { return "least-loaded" }

// Schedule implements Scheduler.
func (LeastLoaded) Schedule(st *State, v int) Decision {
	best := -1
	bestFree := 0.0
	for _, s := range st.holders[v] {
		if free := st.FreeBandwidth(s); free > bestFree {
			best, bestFree = s, free
		}
	}
	if best == -1 || !st.CanServe(best, v) {
		return Reject
	}
	return Direct(best)
}
