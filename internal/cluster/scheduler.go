package cluster

import "vodcluster/internal/stats"

// Scheduler chooses which replica (if any) serves a request for a video.
// Implementations may keep per-video state inside the State (the static
// round-robin cursor) but must not mutate bandwidth accounting; Admit does
// that after the decision.
type Scheduler interface {
	// Schedule returns the admission decision for one request for video v.
	Schedule(st *State, v int) Decision
	// Name identifies the policy in reports.
	Name() string
}

// SeededScheduler is an optional interface a Scheduler may implement to
// receive a fresh decision-scoped RNG before each Schedule call. The
// simulator derives the stream from (run seed, decision index), so
// randomized policies draw common random numbers: at decision k every
// policy replaying the same trace sees the same stream, no matter how much
// randomness earlier decisions consumed. That is what keeps counterfactual
// lockstep comparisons paired even across randomized policies.
//
// Decorators that wrap a base Scheduler (redirect, degradation) expose the
// wrapped policy via Unwrap() so the simulator can find the seeded
// scheduler through the chain.
type SeededScheduler interface {
	SeedDecision(rng *stats.RNG)
}

// StaticRoundRobin is the paper's scheduling model (§3.2): requests for a
// video rotate over its replicas in fixed order, regardless of load, so each
// replica receives w_i = p_i·λ·T/r_i expected requests. If the designated
// server lacks outgoing bandwidth the request is rejected — the paper's
// simple admission control. The cursor advances on every request, accepted
// or not, to preserve the rotation.
type StaticRoundRobin struct{}

// Name implements Scheduler.
func (StaticRoundRobin) Name() string { return "static-rr" }

// Schedule implements Scheduler.
func (StaticRoundRobin) Schedule(st *State, v int) Decision {
	holders := st.holders[v]
	if len(holders) == 0 {
		return Reject
	}
	k := st.rrNext[v] % len(holders)
	st.rrNext[v] = (k + 1) % len(holders)
	s := holders[k]
	if !st.CanServe(s, v) {
		return Reject
	}
	return Direct(s)
}

// FirstAvailable rotates like StaticRoundRobin but, when the designated
// replica's server is saturated, tries the video's remaining replicas before
// rejecting. This is the natural "retry" refinement of the paper's policy and
// quantifies how much of the replication benefit static scheduling leaves on
// the table.
type FirstAvailable struct{}

// Name implements Scheduler.
func (FirstAvailable) Name() string { return "first-available" }

// Schedule implements Scheduler.
func (FirstAvailable) Schedule(st *State, v int) Decision {
	holders := st.holders[v]
	if len(holders) == 0 {
		return Reject
	}
	k := st.rrNext[v] % len(holders)
	st.rrNext[v] = (k + 1) % len(holders)
	for probe := 0; probe < len(holders); probe++ {
		s := holders[(k+probe)%len(holders)]
		if st.CanServe(s, v) {
			return Direct(s)
		}
	}
	return Reject
}

// RandomHolder serves each request from a uniformly random replica holder
// that can serve it, rejecting only when no holder has room — the
// memoryless baseline between the paper's static rotation and the
// load-aware policies. It implements SeededScheduler: under the simulator
// each decision draws from its own (seed, decision-index) substream, so two
// runs at the same seed make identical random choices request for request
// even when their cluster states have diverged. Outside the simulator (or
// before the first SeedDecision) it draws from a private stream seeded at
// construction, staying deterministic per seed.
type RandomHolder struct {
	rng *stats.RNG
}

// NewRandomHolder returns a random-holder policy whose fallback stream is
// seeded with seed (used only until SeedDecision installs per-decision
// streams).
func NewRandomHolder(seed int64) *RandomHolder {
	return &RandomHolder{rng: stats.NewRNG(seed).Derive(7)}
}

// Name implements Scheduler.
func (r *RandomHolder) Name() string { return "random" }

// SeedDecision implements SeededScheduler.
func (r *RandomHolder) SeedDecision(rng *stats.RNG) { r.rng = rng }

// Schedule implements Scheduler.
func (r *RandomHolder) Schedule(st *State, v int) Decision {
	feasible := make([]int, 0, len(st.holders[v]))
	for _, s := range st.holders[v] {
		if st.CanServe(s, v) {
			feasible = append(feasible, s)
		}
	}
	if len(feasible) == 0 {
		return Reject
	}
	return Direct(feasible[r.rng.Intn(len(feasible))])
}

// LeastLoaded serves each request from the replica holder with the most free
// outgoing bandwidth — the strongest dynamic policy available without
// redirection, used as the upper-bound control in scheduling ablations.
type LeastLoaded struct{}

// Name implements Scheduler.
func (LeastLoaded) Name() string { return "least-loaded" }

// Schedule implements Scheduler.
func (LeastLoaded) Schedule(st *State, v int) Decision {
	best := -1
	bestFree := 0.0
	for _, s := range st.holders[v] {
		if free := st.FreeBandwidth(s); free > bestFree {
			best, bestFree = s, free
		}
	}
	if best == -1 || !st.CanServe(best, v) {
		return Reject
	}
	return Direct(best)
}
