package cluster

import (
	"sort"
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
)

// contains reports whether sorted holder list xs names server x.
func contains(xs []int, x int) bool {
	i := sort.SearchInts(xs, x)
	return i < len(xs) && xs[i] == x
}

// evictProblem builds a 3-server cluster with spare storage so replicas can
// be added and evicted at runtime.
func evictProblem(t *testing.T) (*core.Problem, *core.Layout) {
	t.Helper()
	c, err := core.NewCatalog(6, 0.9, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         3,
		StoragePerServer:   5 * c[0].SizeBytes(),
		BandwidthPerServer: 100 * core.Mbps,
		ArrivalRate:        1.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
		BackboneBandwidth:  core.Gbps,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	return p, layout
}

// TestEvictReplicaRefusesPinnedStreams exercises eviction racing active
// sessions: a replica feeding a live stream — directly or as the source of a
// redirected stream — must survive until the stream ends, and the refusal
// must leak no resources.
func TestEvictReplicaRefusesPinnedStreams(t *testing.T) {
	p, layout := evictProblem(t)
	st, err := New(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a video with at least two replicas so eviction is otherwise legal.
	v := -1
	for cand := 0; cand < p.M(); cand++ {
		if st.Replicas(cand) >= 2 {
			v = cand
			break
		}
	}
	if v == -1 {
		t.Fatal("layout has no replicated video")
	}
	s := st.Holders(v)[0]

	// Direct stream pinned to the replica.
	id, ok := st.AdmitDirect(v, s)
	if !ok {
		t.Fatal("admission failed with free capacity")
	}
	if got := st.PinnedStreams(v, s); got != 1 {
		t.Fatalf("PinnedStreams = %d, want 1", got)
	}
	usedBefore := st.StorageUsed(s)
	if err := st.EvictReplica(v, s); err == nil {
		t.Fatal("evicted a replica feeding a live stream")
	}
	if st.StorageUsed(s) != usedBefore {
		t.Fatal("failed eviction changed storage accounting")
	}
	if !contains(st.Holders(v), s) {
		t.Fatal("failed eviction removed the holder")
	}

	// A redirected stream sourced from s pins the replica too.
	other := -1
	for cand := 0; cand < p.N(); cand++ {
		if cand != s && !contains(st.Holders(v), cand) {
			other = cand
			break
		}
	}
	if other >= 0 {
		id2, ok := st.admit(v, Decision{Accept: true, Server: other, Source: s})
		if !ok {
			t.Fatal("redirected admission failed with free capacity")
		}
		if err := st.Release(id); err != nil {
			t.Fatal(err)
		}
		if got := st.PinnedStreams(v, s); got != 1 {
			t.Fatalf("redirected stream not pinned: PinnedStreams = %d", got)
		}
		if err := st.EvictReplica(v, s); err == nil {
			t.Fatal("evicted the source replica of a redirected stream")
		}
		if err := st.Release(id2); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := st.Release(id); err != nil {
			t.Fatal(err)
		}
	}

	// With every stream drained the eviction proceeds and refunds storage.
	if got := st.PinnedStreams(v, s); got != 0 {
		t.Fatalf("PinnedStreams = %d after drain", got)
	}
	if err := st.EvictReplica(v, s); err != nil {
		t.Fatalf("eviction failed after drain: %v", err)
	}
	if contains(st.Holders(v), s) {
		t.Fatal("holder list still names the evicted server")
	}
	if want := usedBefore - p.Catalog[v].SizeBytes(); st.StorageUsed(s) != want {
		t.Fatalf("storage after eviction %g, want %g", st.StorageUsed(s), want)
	}
	// Bandwidth fully refunded: nothing active anywhere.
	for srv := 0; srv < p.N(); srv++ {
		if st.UsedBandwidth(srv) != 0 || st.ActiveStreams(srv) != 0 {
			t.Fatalf("server %d leaks bandwidth after drain", srv)
		}
	}
	if st.BackboneFree() != p.BackboneBandwidth {
		t.Fatal("backbone bandwidth leaked")
	}
}

// TestEvictReplicaLastCopyAndBounds covers the guardrails: the last replica
// is sacrosanct, and bad coordinates error cleanly.
func TestEvictReplicaLastCopyAndBounds(t *testing.T) {
	p, layout := evictProblem(t)
	st, err := New(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	v := -1
	for cand := 0; cand < p.M(); cand++ {
		if st.Replicas(cand) == 1 {
			v = cand
			break
		}
	}
	if v == -1 {
		t.Skip("every video replicated; nothing holds a last copy")
	}
	if err := st.EvictReplica(v, st.Holders(v)[0]); err == nil {
		t.Fatal("evicted a video's last replica")
	}
	if err := st.EvictReplica(-1, 0); err == nil {
		t.Fatal("negative video accepted")
	}
	if err := st.EvictReplica(0, p.N()+3); err == nil {
		t.Fatal("out-of-range server accepted")
	}
}

// TestAddReplicaRateUnderLiveLoad adds a scaled-rate replica while streams
// are active, verifies its storage charge uses the copy's own rate, and
// evicts it again once its stream drains.
func TestAddReplicaRateUnderLiveLoad(t *testing.T) {
	p, layout := evictProblem(t)
	rates := make([][]float64, p.M())
	for v := range rates {
		rates[v] = make([]float64, p.N())
		for _, s := range layout.Servers[v] {
			rates[v][s] = p.Catalog[v].BitRate
		}
	}
	st, err := New(p, layout, WithCopyRates(rates))
	if err != nil {
		t.Fatal(err)
	}
	// Keep a stream running on an existing copy throughout.
	v0 := 0
	s0 := st.Holders(v0)[0]
	id, ok := st.AdmitDirect(v0, s0)
	if !ok {
		t.Fatal("admission failed")
	}

	// Add a half-rate replica of another video on a server lacking it.
	v, dst := -1, -1
	for cand := 0; cand < p.M() && v == -1; cand++ {
		for srv := 0; srv < p.N(); srv++ {
			if !contains(st.Holders(cand), srv) && st.Up(srv) {
				v, dst = cand, srv
				break
			}
		}
	}
	if v == -1 {
		t.Fatal("layout saturated; no slot for a new replica")
	}
	if err := st.AddReplica(v, dst); err == nil {
		t.Fatal("AddReplica accepted on a per-copy-rate state")
	}
	rate := p.Catalog[v].BitRate / 2
	usedBefore := st.StorageUsed(dst)
	if err := st.AddReplicaRate(v, dst, rate); err != nil {
		t.Fatal(err)
	}
	wantCharge := rate * p.Catalog[v].Duration / 8
	if got := st.StorageUsed(dst) - usedBefore; got != wantCharge {
		t.Fatalf("storage charge %g, want %g", got, wantCharge)
	}
	if got := st.RateOf(v, dst); got != rate {
		t.Fatalf("RateOf = %g, want %g", got, rate)
	}

	// Pin the new copy, watch eviction refuse, then drain and evict.
	id2, ok := st.AdmitDirect(v, dst)
	if !ok {
		t.Fatal("admission on the new copy failed")
	}
	if err := st.EvictReplica(v, dst); err == nil {
		t.Fatal("evicted a pinned scaled-rate replica")
	}
	if err := st.Release(id2); err != nil {
		t.Fatal(err)
	}
	if err := st.EvictReplica(v, dst); err != nil {
		t.Fatalf("eviction after drain failed: %v", err)
	}
	if got := st.StorageUsed(dst); got != usedBefore {
		t.Fatalf("scaled-rate refund wrong: storage %g, want %g", got, usedBefore)
	}
	if st.RateOf(v, dst) != 0 {
		t.Fatal("copy rate not cleared after eviction")
	}
	if err := st.Release(id); err != nil {
		t.Fatal(err)
	}
}
