package cluster

import (
	"testing"

	"vodcluster/internal/core"
)

// ratesFor builds a copy-rate matrix matching the test layout (v0 on {0,1},
// v1 on {0}, v2 on {1}) with the given rates.
func ratesFor(t testing.TB, p *core.Problem, r00, r01, r10, r21 float64) [][]float64 {
	t.Helper()
	rates := make([][]float64, p.M())
	for v := range rates {
		rates[v] = make([]float64, p.N())
	}
	rates[0][0], rates[0][1] = r00, r01
	rates[1][0] = r10
	rates[2][1] = r21
	return rates
}

func TestCopyRatesAccounting(t *testing.T) {
	p := testProblem(t, 0)
	p.StoragePerServer = 7 * core.GB // room for the mixed sizes below
	l := testLayout(t)
	// v0 at 2 Mb/s on s0 and 6 Mb/s on s1; v1 at 4, v2 at 4.
	rates := ratesFor(t, p, 2*core.Mbps, 6*core.Mbps, 4*core.Mbps, 4*core.Mbps)
	st, err := New(p, l, WithCopyRates(rates))
	if err != nil {
		t.Fatal(err)
	}
	if st.RateOf(0, 0) != 2*core.Mbps || st.RateOf(0, 1) != 6*core.Mbps {
		t.Fatal("RateOf ignores the matrix")
	}
	// Storage accounting uses per-copy sizes: s0 = (2+4) Mb/s × 90 min / 8.
	wantS0 := (2 + 4) * core.Mbps * 90 * core.Minute / 8
	if got := st.StorageUsed(0); got < wantS0-1 || got > wantS0+1 {
		t.Fatalf("storage on s0 = %g, want %g", got, wantS0)
	}
	// Admission charges the serving copy's rate.
	id, ok := st.Admit(0, StaticRoundRobin{})
	if !ok {
		t.Fatal("admit failed")
	}
	s, _ := st.Lookup(id)
	if s.Rate != st.RateOf(0, s.Server) {
		t.Fatalf("stream rate %g, want the copy's %g", s.Rate, st.RateOf(0, s.Server))
	}
	if st.UsedBandwidth(s.Server) != s.Rate {
		t.Fatal("bandwidth charged at the wrong rate")
	}
}

func TestCopyRatesValidationAtClusterLevel(t *testing.T) {
	p := testProblem(t, 0)
	l := testLayout(t)
	// Rate missing for a held copy.
	rates := ratesFor(t, p, 2*core.Mbps, 0, 4*core.Mbps, 4*core.Mbps)
	if _, err := New(p, l, WithCopyRates(rates)); err == nil {
		t.Fatal("missing copy rate accepted")
	}
	// Rate present for an absent copy.
	rates = ratesFor(t, p, 2*core.Mbps, 2*core.Mbps, 4*core.Mbps, 4*core.Mbps)
	rates[1][1] = 4 * core.Mbps
	if _, err := New(p, l, WithCopyRates(rates)); err == nil {
		t.Fatal("phantom copy rate accepted")
	}
	// Per-copy sizes exceeding the server's storage.
	rates = ratesFor(t, p, 50*core.Mbps, 2*core.Mbps, 50*core.Mbps, 2*core.Mbps)
	if _, err := New(p, l, WithCopyRates(rates)); err == nil {
		t.Fatal("oversized copies accepted")
	}
	// Wrong shape.
	if _, err := New(p, l, WithCopyRates(make([][]float64, 1))); err == nil {
		t.Fatal("wrong-shape matrix accepted")
	}
}

func TestCopyRatesBandwidthBoundary(t *testing.T) {
	p := testProblem(t, 0) // 10 Mb/s links
	p.StoragePerServer = 8 * core.GB
	l := testLayout(t)
	// v1's only copy runs at 6 Mb/s: one stream fits, two exceed 10 Mb/s.
	rates := ratesFor(t, p, 2*core.Mbps, 2*core.Mbps, 6*core.Mbps, 2*core.Mbps)
	st, err := New(p, l, WithCopyRates(rates))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Admit(1, StaticRoundRobin{}); !ok {
		t.Fatal("first 6 Mb/s stream refused")
	}
	if _, ok := st.Admit(1, StaticRoundRobin{}); ok {
		t.Fatal("second 6 Mb/s stream exceeded the 10 Mb/s link")
	}
}
