package cluster

import (
	"math"
	"testing"

	"vodcluster/internal/core"
)

// testProblem: 3 videos, 2 servers, 10 Mb/s links, 4 Mb/s videos — each
// server carries at most 2 concurrent streams.
func testProblem(t testing.TB, backbone float64) *core.Problem {
	t.Helper()
	c := core.Catalog{
		{ID: 0, Popularity: 0.5, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 1, Popularity: 0.3, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 2, Popularity: 0.2, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         2,
		StoragePerServer:   2 * c[0].SizeBytes(),
		BandwidthPerServer: 10 * core.Mbps,
		ArrivalRate:        1.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
		BackboneBandwidth:  backbone,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// testLayout: v0 on both, v1 on s0, v2 on s1.
func testLayout(t testing.TB) *core.Layout {
	t.Helper()
	l := core.NewLayout(3)
	l.Replicas = []int{2, 1, 1}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 0}, {2, 1}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func newState(t testing.TB, backbone float64) *State {
	t.Helper()
	st, err := New(testProblem(t, backbone), testLayout(t))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewRejectsInvalidLayout(t *testing.T) {
	p := testProblem(t, 0)
	bad := core.NewLayout(3) // no placements at all
	if _, err := New(p, bad); err == nil {
		t.Fatal("invalid layout accepted")
	}
}

func TestAdmitChargesAndReleaseFrees(t *testing.T) {
	st := newState(t, 0)
	id, ok := st.Admit(1, StaticRoundRobin{})
	if !ok {
		t.Fatal("admission of first stream failed")
	}
	if got := st.UsedBandwidth(0); math.Abs(got-4*core.Mbps) > 1 {
		t.Fatalf("server 0 used bw = %g", got)
	}
	if st.ActiveStreams(0) != 1 || st.TotalActive() != 1 {
		t.Fatal("stream accounting wrong")
	}
	s, ok := st.Lookup(id)
	if !ok || s.Video != 1 || s.Server != 0 || s.Redirected {
		t.Fatalf("stream record %+v", s)
	}
	if err := st.Release(id); err != nil {
		t.Fatal(err)
	}
	if st.UsedBandwidth(0) != 0 || st.TotalActive() != 0 {
		t.Fatal("release did not free resources")
	}
	if err := st.Release(id); err == nil {
		t.Fatal("double release accepted")
	}
	if _, ok := st.Lookup(id); ok {
		t.Fatal("released stream still visible")
	}
}

func TestStaticRoundRobinRotation(t *testing.T) {
	st := newState(t, 0)
	// Video 0 has replicas on servers 0 and 1; the cursor must alternate.
	first, ok := st.Admit(0, StaticRoundRobin{})
	if !ok {
		t.Fatal("admit failed")
	}
	second, ok := st.Admit(0, StaticRoundRobin{})
	if !ok {
		t.Fatal("admit failed")
	}
	s1, _ := st.Lookup(first)
	s2, _ := st.Lookup(second)
	if s1.Server == s2.Server {
		t.Fatalf("static RR did not rotate: %d, %d", s1.Server, s2.Server)
	}
	third, ok := st.Admit(0, StaticRoundRobin{})
	if !ok {
		t.Fatal("admit failed")
	}
	s3, _ := st.Lookup(third)
	if s3.Server != s1.Server {
		t.Fatal("rotation should wrap to the first holder")
	}
}

func TestStaticRoundRobinRejectsWhenDesignatedBusy(t *testing.T) {
	st := newState(t, 0)
	// Fill server 0 (capacity 2 streams at 4 of 10 Mb/s: 2 streams = 8, a
	// third needs 12 > 10).
	if _, ok := st.Admit(1, StaticRoundRobin{}); !ok { // v1 only on s0
		t.Fatal("admit 1 failed")
	}
	if _, ok := st.Admit(1, StaticRoundRobin{}); !ok {
		t.Fatal("admit 2 failed")
	}
	// Server 0 now has 8 Mb/s used; one more 4 Mb/s stream does not fit.
	if _, ok := st.Admit(1, StaticRoundRobin{}); ok {
		t.Fatal("overloaded server accepted a stream")
	}
	// Static RR for v0: cursor starts at holder index 0 = server 0 (full),
	// so the request is rejected even though server 1 has room.
	if _, ok := st.Admit(0, StaticRoundRobin{}); ok {
		t.Fatal("static RR must reject when the designated server is full")
	}
	// The rotation advanced, so the next request lands on server 1 and is
	// accepted.
	if _, ok := st.Admit(0, StaticRoundRobin{}); !ok {
		t.Fatal("rotation should reach the free holder")
	}
}

func TestFirstAvailableRetries(t *testing.T) {
	st := newState(t, 0)
	for i := 0; i < 2; i++ {
		if _, ok := st.Admit(1, FirstAvailable{}); !ok {
			t.Fatal("admit failed")
		}
	}
	// Server 0 full. FirstAvailable for v0 must fall through to server 1.
	id, ok := st.Admit(0, FirstAvailable{})
	if !ok {
		t.Fatal("first-available failed to retry")
	}
	s, _ := st.Lookup(id)
	if s.Server != 1 {
		t.Fatalf("expected server 1, got %d", s.Server)
	}
}

func TestLeastLoadedPicksFreest(t *testing.T) {
	st := newState(t, 0)
	if _, ok := st.Admit(1, LeastLoaded{}); !ok { // s0 busier now
		t.Fatal("admit failed")
	}
	id, ok := st.Admit(0, LeastLoaded{})
	if !ok {
		t.Fatal("admit failed")
	}
	s, _ := st.Lookup(id)
	if s.Server != 1 {
		t.Fatalf("least-loaded picked %d, want 1", s.Server)
	}
}

func TestLeastLoadedRejectsWhenAllFull(t *testing.T) {
	st := newState(t, 0)
	for i := 0; i < 4; i++ { // 2 per server via v0's two replicas
		if _, ok := st.Admit(0, LeastLoaded{}); !ok {
			t.Fatalf("admit %d failed", i)
		}
	}
	if _, ok := st.Admit(0, LeastLoaded{}); ok {
		t.Fatal("saturated cluster accepted a stream")
	}
}

func TestCanServeBoundary(t *testing.T) {
	st := newState(t, 0)
	if !st.CanServe(0, 0) {
		t.Fatal("empty server cannot serve?")
	}
	for i := 0; i < 2; i++ {
		if _, ok := st.Admit(1, StaticRoundRobin{}); !ok {
			t.Fatal("admit failed")
		}
	}
	if st.CanServe(0, 0) {
		t.Fatal("full server claims capacity")
	}
	if got := st.FreeBandwidth(0); math.Abs(got-2*core.Mbps) > 1 {
		t.Fatalf("free bw = %g, want 2 Mb/s", got)
	}
}

func TestRedirectedStreamChargesBackbone(t *testing.T) {
	st := newState(t, 8*core.Mbps)
	// Build a redirected decision manually: serve v1 (held by s0) out of s1.
	d := Decision{Accept: true, Server: 1, Source: 0}
	rate := 4 * core.Mbps
	id, ok := st.Admit(1, fixedScheduler{d})
	if !ok {
		t.Fatal("redirected admission failed")
	}
	s, _ := st.Lookup(id)
	if !s.Redirected {
		t.Fatal("stream not marked redirected")
	}
	if got := st.BackboneFree(); math.Abs(got-(8*core.Mbps-rate)) > 1 {
		t.Fatalf("backbone free = %g", got)
	}
	if st.UsedBandwidth(1) != rate {
		t.Fatal("proxy server not charged")
	}
	if st.UsedBandwidth(0) != 0 {
		t.Fatal("source server wrongly charged outgoing bandwidth")
	}
	if err := st.Release(id); err != nil {
		t.Fatal(err)
	}
	if st.BackboneFree() != 8*core.Mbps {
		t.Fatal("backbone not freed on release")
	}
}

func TestRedirectedAdmissionFailsWithoutBackbone(t *testing.T) {
	st := newState(t, 2*core.Mbps) // backbone smaller than one stream
	d := Decision{Accept: true, Server: 1, Source: 0}
	if _, ok := st.Admit(1, fixedScheduler{d}); ok {
		t.Fatal("redirection admitted past backbone capacity")
	}
}

func TestAdmitDefendsAgainstLyingScheduler(t *testing.T) {
	st := newState(t, 0)
	for i := 0; i < 2; i++ {
		if _, ok := st.Admit(1, StaticRoundRobin{}); !ok {
			t.Fatal("admit failed")
		}
	}
	// Scheduler promises server 0 although it is full.
	if _, ok := st.Admit(1, fixedScheduler{Direct(0)}); ok {
		t.Fatal("Admit believed a scheduler promising a full server")
	}
}

func TestHoldersAndAccessors(t *testing.T) {
	st := newState(t, 0)
	if got := st.Holders(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("holders of v0 = %v", got)
	}
	if st.Problem() == nil || st.Layout() == nil {
		t.Fatal("accessors returned nil")
	}
	bw := st.UsedBandwidths()
	bw[0] = 123
	if st.UsedBandwidth(0) == 123 {
		t.Fatal("UsedBandwidths exposed internal state")
	}
}

func TestSchedulerNames(t *testing.T) {
	if (StaticRoundRobin{}).Name() != "static-rr" ||
		(FirstAvailable{}).Name() != "first-available" ||
		(LeastLoaded{}).Name() != "least-loaded" {
		t.Fatal("scheduler names changed")
	}
}

// fixedScheduler returns a canned decision; used to drive Admit directly.
type fixedScheduler struct{ d Decision }

func (f fixedScheduler) Schedule(*State, int) Decision { return f.d }
func (f fixedScheduler) Name() string                  { return "fixed" }
