package cluster

import (
	"testing"

	"vodcluster/internal/core"
)

func TestFailServerDropsItsStreams(t *testing.T) {
	st := newState(t, 8*core.Mbps)
	// Two streams on server 0 (v1 lives only there) and one on server 1.
	if _, ok := st.Admit(1, FirstAvailable{}); !ok {
		t.Fatal("admit failed")
	}
	if _, ok := st.Admit(1, FirstAvailable{}); !ok {
		t.Fatal("admit failed")
	}
	id2, ok := st.Admit(2, FirstAvailable{}) // v2 lives on server 1
	if !ok {
		t.Fatal("admit failed")
	}

	torn := st.FailServer(0)
	if len(torn) != 2 {
		t.Fatalf("dropped %d streams, want 2", len(torn))
	}
	// Teardown is reported in admission order with the stream records intact.
	for i, tr := range torn {
		if i > 0 && torn[i-1].ID >= tr.ID {
			t.Fatal("torn streams not in admission order")
		}
		if tr.Video != 1 || tr.Server != 0 {
			t.Fatalf("torn stream %d records %+v, want video 1 on server 0", i, tr.Stream)
		}
	}
	if st.Up(0) {
		t.Fatal("server still up after FailServer")
	}
	if st.UpServers() != 1 {
		t.Fatalf("up servers = %d", st.UpServers())
	}
	if st.UsedBandwidth(0) != 0 || st.ActiveStreams(0) != 0 {
		t.Fatal("failed server still charged")
	}
	if _, ok := st.Lookup(id2); !ok {
		t.Fatal("unrelated stream torn down")
	}
	// Requests for v1 (only on server 0) must now be rejected by every
	// scheduler.
	for _, sched := range []Scheduler{StaticRoundRobin{}, FirstAvailable{}, LeastLoaded{}} {
		if _, ok := st.Admit(1, sched); ok {
			t.Fatalf("%s admitted to a down server", sched.Name())
		}
	}
	// v0 has a replica on server 1, so it is still servable.
	if _, ok := st.Admit(0, FirstAvailable{}); !ok {
		t.Fatal("surviving replica not used")
	}

	st.RestoreServer(0)
	if !st.Up(0) {
		t.Fatal("RestoreServer did not revive")
	}
	if _, ok := st.Admit(1, FirstAvailable{}); !ok {
		t.Fatal("restored server not servable")
	}
}

func TestFailServerIdempotentAndBounds(t *testing.T) {
	st := newState(t, 0)
	if len(st.FailServer(0)) != 0 {
		t.Fatal("failing an idle server dropped streams")
	}
	if len(st.FailServer(0)) != 0 {
		t.Fatal("double failure dropped streams")
	}
	if len(st.FailServer(-1)) != 0 || len(st.FailServer(99)) != 0 {
		t.Fatal("out-of-range failure did something")
	}
	st.RestoreServer(-1) // must not panic
	st.RestoreServer(99)
}

func TestFailServerTearsDownRedirectedSources(t *testing.T) {
	st := newState(t, 8*core.Mbps)
	// A redirected stream: source server 0, proxy server 1.
	id, ok := st.Admit(1, fixedScheduler{Decision{Accept: true, Server: 1, Source: 0}})
	if !ok {
		t.Fatal("redirected admit failed")
	}
	if torn := st.FailServer(0); len(torn) != 1 || !torn[0].Redirected {
		t.Fatalf("source failure tore down %v, want the one redirected stream", torn)
	}
	if _, ok := st.Lookup(id); ok {
		t.Fatal("redirected stream survived its source's failure")
	}
	if st.BackboneFree() != 8*core.Mbps {
		t.Fatal("backbone not refunded on failure teardown")
	}
	if st.UsedBandwidth(1) != 0 {
		t.Fatal("proxy bandwidth not refunded")
	}
}

func TestAdmitRejectsDownRedirectSource(t *testing.T) {
	st := newState(t, 8*core.Mbps)
	st.FailServer(0)
	if _, ok := st.Admit(1, fixedScheduler{Decision{Accept: true, Server: 1, Source: 0}}); ok {
		t.Fatal("admitted a stream sourced from a down server")
	}
}

func TestStreamLimit(t *testing.T) {
	p := testProblem(t, 0)
	l := testLayout(t)
	st, err := New(p, l, WithStreamLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Admit(1, FirstAvailable{}); !ok {
		t.Fatal("first stream refused")
	}
	// Server 0 has bandwidth for another stream (10 Mb/s link, 4 Mb/s
	// streams) but the disk limit caps it at one.
	if _, ok := st.Admit(1, FirstAvailable{}); ok {
		t.Fatal("stream limit not enforced")
	}
	// Another video on the other server is fine.
	if _, ok := st.Admit(2, FirstAvailable{}); !ok {
		t.Fatal("limit leaked across servers")
	}
}
