// Package cluster models the runtime state of a distributed-storage VoD
// cluster serving streams under a fixed layout: per-server outgoing
// bandwidth accounting, the replica directory, admission control, and the
// replica-scheduling policies (static round-robin, as in the paper, plus
// least-loaded and first-available variants).
//
// The dispatcher model follows the paper: admission decisions are made
// centrally, servers stream directly to clients (TCP handoff), and a request
// is rejected when the required outgoing bandwidth is unavailable. When the
// problem defines internal backbone bandwidth, an admission failure may be
// repaired by request redirection (paper §6 / [29]): a server with spare
// outgoing bandwidth fetches the stream from a replica holder over the
// backbone and serves the client itself.
package cluster

import (
	"fmt"
	"sort"

	"vodcluster/internal/core"
)

// StreamID identifies an active stream within a State.
type StreamID int64

// Stream records one admitted stream's resource usage.
type Stream struct {
	// Video is the catalog rank of the title being streamed.
	Video int
	// Server is the server whose outgoing link carries the stream.
	Server int
	// Source is the server holding the replica; it differs from Server
	// only for redirected streams.
	Source int
	// Rate is the encoding bit rate in bits/s.
	Rate float64
	// Redirected reports whether the stream crosses the backbone.
	Redirected bool
}

// Decision is a scheduler's verdict for one request.
type Decision struct {
	// Accept is false when the request must be rejected.
	Accept bool
	// Server is the server whose outgoing link will carry the stream.
	Server int
	// Source is the replica holder feeding the stream (== Server for
	// direct service).
	Source int
}

// Reject is the decision that refuses a request.
var Reject = Decision{Accept: false}

// Direct returns an accepting decision served directly by holder s.
func Direct(s int) Decision { return Decision{Accept: true, Server: s, Source: s} }

// State is the mutable runtime state of the cluster. It is not safe for
// concurrent use; each simulation run owns one State.
type State struct {
	p       *core.Problem
	layout  *core.Layout
	holders [][]int // video -> sorted servers holding it

	usedBW       []float64 // outgoing bits/s in use per server
	activeByServ []int     // active streams per server (outgoing link)
	backboneUsed float64

	up          []bool      // server liveness (failure injection)
	storageUsed []float64   // bytes of content per server
	streamLimit int         // max concurrent streams per server; 0 = unlimited
	copyRates   [][]float64 // optional per-(video,server) encoding rates

	streams map[StreamID]Stream
	nextID  StreamID

	rrNext []int // static round-robin cursor per video
}

// Option configures optional State behavior.
type Option func(*State)

// WithStreamLimit caps the number of concurrent streams each server's
// storage subsystem sustains (see internal/disk for deriving the cap from a
// disk-array model). Zero means unlimited — the paper's assumption that the
// outgoing network link is the only bottleneck.
func WithStreamLimit(limit int) Option {
	return func(st *State) { st.streamLimit = limit }
}

// WithCopyRates gives each placed copy its own encoding rate in bits/s
// (rates[v][s] > 0 exactly where the layout places video v on server s) —
// the scalable-bit-rate runtime of the paper's §4.3, where different copies
// of a video serve different qualities. Admission then charges the chosen
// copy's rate, and storage accounting uses rate·duration/8 per copy; the
// catalog's own BitRate fields are ignored.
func WithCopyRates(rates [][]float64) Option {
	return func(st *State) { st.copyRates = rates }
}

// New builds runtime state for a validated problem/layout pair.
func New(p *core.Problem, layout *core.Layout, opts ...Option) (*State, error) {
	st := &State{
		p:            p,
		layout:       layout,
		holders:      make([][]int, p.M()),
		usedBW:       make([]float64, p.N()),
		activeByServ: make([]int, p.N()),
		up:           make([]bool, p.N()),
		streams:      make(map[StreamID]Stream),
		rrNext:       make([]int, p.M()),
	}
	for s := range st.up {
		st.up[s] = true
	}
	for v := range st.holders {
		st.holders[v] = append([]int(nil), layout.Servers[v]...)
	}
	st.storageUsed = layout.ServerStorageUsed(p)
	for _, opt := range opts {
		opt(st)
	}
	if st.copyRates == nil {
		if err := layout.Validate(p); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	} else {
		if err := st.validateCopyRates(layout); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// validateCopyRates checks the per-copy rate matrix against the layout and
// re-derives storage accounting with per-copy sizes.
func (st *State) validateCopyRates(layout *core.Layout) error {
	p := st.p
	if err := layout.ValidateStructure(p); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if len(st.copyRates) != p.M() {
		return fmt.Errorf("cluster: copy rates cover %d videos; problem has %d", len(st.copyRates), p.M())
	}
	used := make([]float64, p.N())
	for v := 0; v < p.M(); v++ {
		if len(st.copyRates[v]) != p.N() {
			return fmt.Errorf("cluster: copy rates for video %d cover %d servers; want %d", v, len(st.copyRates[v]), p.N())
		}
		for s := 0; s < p.N(); s++ {
			rate := st.copyRates[v][s]
			holds := layout.Holds(v, s)
			if holds && rate <= 0 {
				return fmt.Errorf("cluster: video %d on server %d has no copy rate", v, s)
			}
			if !holds && rate > 0 {
				return fmt.Errorf("cluster: copy rate set for video %d on server %d, which holds no copy", v, s)
			}
			if holds {
				used[s] += rate * p.Catalog[v].Duration / 8
			}
		}
	}
	for s, u := range used {
		if u > p.StorageOf(s)*(1+1e-9) {
			return fmt.Errorf("cluster: server %d stores %.0f bytes of %.0f available (Eq. 4, per-copy rates)", s, u, p.StorageOf(s))
		}
	}
	st.storageUsed = used
	// Runtime mutation (AddReplicaRate, RemoveReplica) edits the matrix, and
	// parallel replications share the caller's slice — keep a private copy.
	rates := make([][]float64, len(st.copyRates))
	for v := range st.copyRates {
		rates[v] = append([]float64(nil), st.copyRates[v]...)
	}
	st.copyRates = rates
	return nil
}

// RateOf returns the encoding rate served when video v streams from server
// s's copy: the per-copy rate when configured, the catalog rate otherwise.
func (st *State) RateOf(v, s int) float64 {
	if st.copyRates != nil {
		return st.copyRates[v][s]
	}
	return st.p.Catalog[v].BitRate
}

// HasCopyRates reports whether the state runs with per-copy encoding rates
// (WithCopyRates). It decides which replica-addition entry point applies:
// AddReplicaRate with rates, AddReplica without.
func (st *State) HasCopyRates() bool { return st.copyRates != nil }

// NominalRate returns the full-quality rate of video v: the catalog rate,
// or — under WithCopyRates, where the catalog field is ignored — the highest
// rate among the video's current copies. It is the reference degradation
// floors are relative to.
func (st *State) NominalRate(v int) float64 {
	if st.copyRates == nil {
		return st.p.Catalog[v].BitRate
	}
	max := 0.0
	for _, r := range st.copyRates[v] {
		if r > max {
			max = r
		}
	}
	return max
}

// Problem returns the problem this state was built for.
func (st *State) Problem() *core.Problem { return st.p }

// Layout returns the layout this state was built for.
func (st *State) Layout() *core.Layout { return st.layout }

// Holders returns the servers holding video v (shared slice; do not modify).
func (st *State) Holders(v int) []int { return st.holders[v] }

// FreeBandwidth returns the unused outgoing bandwidth of server s in bits/s.
func (st *State) FreeBandwidth(s int) float64 {
	return st.p.BandwidthOf(s) - st.usedBW[s]
}

// UsedBandwidth returns the outgoing bandwidth in use on server s.
func (st *State) UsedBandwidth(s int) float64 { return st.usedBW[s] }

// UsedBandwidths returns a copy of the per-server outgoing bandwidth usage.
func (st *State) UsedBandwidths() []float64 {
	return append([]float64(nil), st.usedBW...)
}

// ActiveStreams returns the number of streams currently using server s's
// outgoing link.
func (st *State) ActiveStreams(s int) int { return st.activeByServ[s] }

// TotalActive returns the number of active streams cluster-wide.
func (st *State) TotalActive() int { return len(st.streams) }

// BackboneFree returns the unused internal backbone bandwidth in bits/s.
func (st *State) BackboneFree() float64 { return st.p.BackboneBandwidth - st.backboneUsed }

// CanServe reports whether server s is up and has outgoing room (and, when a
// stream limit is configured, disk headroom) for one more stream of video v.
func (st *State) CanServe(s, v int) bool {
	if !st.up[s] {
		return false
	}
	if st.streamLimit > 0 && st.activeByServ[s] >= st.streamLimit {
		return false
	}
	return st.FreeBandwidth(s) >= st.RateOf(v, s)-1e-6
}

// Up reports whether server s is alive.
func (st *State) Up(s int) bool { return st.up[s] }

// Torn is one stream torn down by a server failure: its last known record
// plus the handle it was admitted under (now released).
type Torn struct {
	ID StreamID
	Stream
}

// FailServer marks server s failed and tears down every stream it was
// serving — both streams using its outgoing link and redirected streams
// sourced from its replicas. It returns the torn-down streams in admission
// order so recovery policies (session failover) can try to re-admit them.
// Failing an already-failed server is a no-op.
func (st *State) FailServer(s int) []Torn {
	if s < 0 || s >= st.p.N() || !st.up[s] {
		return nil
	}
	st.up[s] = false
	var torn []Torn
	for id, stream := range st.streams {
		if stream.Server == s || stream.Source == s {
			torn = append(torn, Torn{ID: id, Stream: stream})
		}
	}
	// Map iteration order is random; admission order (IDs are monotone)
	// keeps teardown and any failover deterministic.
	sort.Slice(torn, func(i, j int) bool { return torn[i].ID < torn[j].ID })
	for _, t := range torn {
		if err := st.Release(t.ID); err != nil {
			panic(err) // ids were just read from the live map
		}
	}
	return torn
}

// RestoreServer brings a failed server back. Its replicas become servable
// again immediately (the paper's distributed-storage model keeps content on
// local disks across restarts).
func (st *State) RestoreServer(s int) {
	if s >= 0 && s < st.p.N() {
		st.up[s] = true
	}
}

// UpServers returns the number of live servers.
func (st *State) UpServers() int {
	n := 0
	for _, u := range st.up {
		if u {
			n++
		}
	}
	return n
}

// Admit runs the scheduler for a request for video v and, on acceptance,
// charges the resources and returns the stream handle. ok is false on
// rejection.
func (st *State) Admit(v int, sched Scheduler) (StreamID, bool) {
	return st.admit(v, sched.Schedule(st, v))
}

// AdmitDirect admits one stream of video v served directly by replica
// holder s, bypassing the scheduling policy — the entry point session
// failover and other recovery mechanisms use. It performs the same capacity
// checks as Admit and additionally refuses servers that hold no copy of v.
func (st *State) AdmitDirect(v, s int) (StreamID, bool) {
	if v < 0 || v >= st.p.M() || s < 0 || s >= st.p.N() {
		return 0, false
	}
	holders := st.holders[v]
	i := sort.SearchInts(holders, s)
	if i >= len(holders) || holders[i] != s {
		return 0, false
	}
	return st.admit(v, Direct(s))
}

// admit applies an accepting decision, charging resources after defensive
// capacity re-checks.
func (st *State) admit(v int, d Decision) (StreamID, bool) {
	if !d.Accept {
		return 0, false
	}
	rate := st.RateOf(v, d.Source)
	s := Stream{Video: v, Server: d.Server, Source: d.Source, Rate: rate, Redirected: d.Server != d.Source}
	// Defensive re-checks: the scheduler may promise capacity it lacks, and
	// for redirected streams the outgoing charge is the *source copy's*
	// rate on the proxy's link, which CanServe alone cannot see.
	if rate <= 0 || !st.up[d.Server] {
		return 0, false
	}
	if st.streamLimit > 0 && st.activeByServ[d.Server] >= st.streamLimit {
		return 0, false
	}
	if st.FreeBandwidth(d.Server) < rate-1e-6 {
		return 0, false
	}
	if s.Redirected && !st.up[d.Source] {
		return 0, false // the replica's server is down
	}
	if s.Redirected {
		if st.BackboneFree() < rate-1e-6 {
			return 0, false
		}
		st.backboneUsed += rate
	}
	st.usedBW[d.Server] += rate
	st.activeByServ[d.Server]++
	st.nextID++
	id := st.nextID
	st.streams[id] = s
	return id, true
}

// Release ends the stream with the given handle and frees its resources.
func (st *State) Release(id StreamID) error {
	s, ok := st.streams[id]
	if !ok {
		return fmt.Errorf("cluster: unknown stream %d", id)
	}
	delete(st.streams, id)
	st.usedBW[s.Server] -= s.Rate
	if st.usedBW[s.Server] < 0 {
		st.usedBW[s.Server] = 0 // absorb floating-point dust
	}
	st.activeByServ[s.Server]--
	if s.Redirected {
		st.backboneUsed -= s.Rate
		if st.backboneUsed < 0 {
			st.backboneUsed = 0
		}
	}
	return nil
}

// Lookup returns the record of an active stream.
func (st *State) Lookup(id StreamID) (Stream, bool) {
	s, ok := st.streams[id]
	return s, ok
}
