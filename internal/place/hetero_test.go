package place

import (
	"math"
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/replicate"
)

// heteroProblem: 6 servers in two tiers — 3 big (2× bandwidth, 2× storage)
// and 3 small — serving a skewed catalog.
func heteroProblem(t testing.TB, m int) *core.Problem {
	t.Helper()
	c, err := core.NewCatalog(m, 0.9, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	size := c[0].SizeBytes()
	// Two tiers whose storage scales with the catalog: the big tier holds
	// 2m/5 replicas per server, the small tier m/5 (1.8·m cluster-wide).
	big := float64(2*m/5) * size
	small := float64(m/5) * size
	p := &core.Problem{
		Catalog:         c,
		NumServers:      6,
		ServerStorage:   []float64{big, big, big, small, small, small},
		ServerBandwidth: []float64{2.4 * core.Gbps, 2.4 * core.Gbps, 2.4 * core.Gbps, 1.2 * core.Gbps, 1.2 * core.Gbps, 1.2 * core.Gbps},
		ArrivalRate:     40.0 / core.Minute,
		PeakPeriod:      90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func heteroReplicas(t testing.TB, p *core.Problem, degree float64) []int {
	t.Helper()
	budget, err := p.TargetTotalReplicas(degree)
	if err != nil {
		t.Fatal(err)
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestHeteroPlacersSatisfyConstraints(t *testing.T) {
	p := heteroProblem(t, 40)
	r := heteroReplicas(t, p, 1.4)
	for _, pl := range []Placer{WeightedSLF{}, BSR{}, SmallestLoadFirst{}, Greedy{}, RoundRobin{}} {
		layout, err := pl.Place(p, r)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if err := layout.Validate(p); err != nil {
			t.Fatalf("%s: invalid layout: %v", pl.Name(), err)
		}
	}
}

func TestWeightedSLFMatchesSLFWhenHomogeneous(t *testing.T) {
	p := makeProblem(t, 40, 6, 0.75, 10)
	r, err := replicate.BoundedAdams{}.Replicate(p, 56)
	if err != nil {
		t.Fatal(err)
	}
	slf, err := SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	wslf, err := WeightedSLF{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	// The round structure differs slightly, so exact equality is not
	// guaranteed, but the load balance quality must match closely.
	a := core.ImbalanceStd(slf.ServerLoads(p))
	b := core.ImbalanceStd(wslf.ServerLoads(p))
	bound := GeneralBound(p, r)
	if b > bound+1e-9 {
		t.Fatalf("homogeneous wslf imbalance %g above bound %g (slf: %g)", b, bound, a)
	}
}

func TestWeightedSLFBalancesUtilization(t *testing.T) {
	p := heteroProblem(t, 40)
	r := heteroReplicas(t, p, 1.4)
	wslf, err := WeightedSLF{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	slf, err := SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	// Plain SLF equalizes absolute loads, overloading the small servers in
	// utilization space; the weighted variant must do clearly better there.
	wu := RelativeImbalance(p, wslf)
	su := RelativeImbalance(p, slf)
	if wu >= su {
		t.Fatalf("weighted SLF utilization imbalance %g not below plain SLF's %g", wu, su)
	}
	// And big servers must carry more absolute load than small ones.
	loads := wslf.ServerLoads(p)
	bigMean := (loads[0] + loads[1] + loads[2]) / 3
	smallMean := (loads[3] + loads[4] + loads[5]) / 3
	if bigMean <= smallMean {
		t.Fatalf("big servers carry %g, small %g; want proportional to bandwidth", bigMean, smallMean)
	}
}

// crossedProblem builds the cluster shape BSR exists for: servers whose
// bandwidth-to-space ratios differ. Type A is bandwidth-rich and space-poor
// (streaming boxes); type B is the opposite (archive boxes).
func crossedProblem(t testing.TB, m int) *core.Problem {
	t.Helper()
	c, err := core.NewCatalog(m, 0.9, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	size := c[0].SizeBytes()
	p := &core.Problem{
		Catalog:         c,
		NumServers:      6,
		ServerStorage:   []float64{8 * size, 8 * size, 8 * size, 16 * size, 16 * size, 16 * size},
		ServerBandwidth: []float64{2.4 * core.Gbps, 2.4 * core.Gbps, 2.4 * core.Gbps, 1.2 * core.Gbps, 1.2 * core.Gbps, 1.2 * core.Gbps},
		ArrivalRate:     40.0 / core.Minute,
		PeakPeriod:      90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBSRBeatsResourceBlindSLF(t *testing.T) {
	// On a crossed cluster, the resource-ratio-aware BSR baseline must
	// balance utilization better than plain SLF, which equalizes absolute
	// loads and therefore overloads the low-bandwidth tier. (BSR does not
	// beat the weighted SLF generalization — see the ranking test below —
	// matching the paper's thesis that optimization-based placement beats
	// online heuristics.)
	p := crossedProblem(t, 40)
	r := heteroReplicas(t, p, 1.4)
	bsr, err := BSR{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	slf, err := SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if bu, su := RelativeImbalance(p, bsr), RelativeImbalance(p, slf); bu >= su {
		t.Fatalf("BSR utilization imbalance %g not below plain SLF's %g", bu, su)
	}
	// BSR's defining behavior: the bandwidth-rich, space-poor servers end
	// up holding the hotter (heavier) replicas.
	loads := bsr.ServerLoads(p)
	fastMean := (loads[0] + loads[1] + loads[2]) / 3
	slowMean := (loads[3] + loads[4] + loads[5]) / 3
	if fastMean <= slowMean {
		t.Fatalf("bandwidth-rich servers carry %g, space-rich %g; BSR should favor the former for hot content",
			fastMean, slowMean)
	}
}

func TestHeteroPlacerRanking(t *testing.T) {
	// The full ranking on the crossed cluster: weighted SLF (the proper
	// heterogeneous generalization) balances utilization best.
	p := crossedProblem(t, 40)
	r := heteroReplicas(t, p, 1.4)
	imb := map[string]float64{}
	for _, pl := range []Placer{WeightedSLF{}, BSR{}, SmallestLoadFirst{}, RoundRobin{}} {
		layout, err := pl.Place(p, r)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		imb[pl.Name()] = RelativeImbalance(p, layout)
	}
	for name, v := range imb {
		if name == "wslf" {
			continue
		}
		if imb["wslf"] > v {
			t.Fatalf("wslf (%.3f) worse than %s (%.3f)", imb["wslf"], name, v)
		}
	}
}

func TestRelativeImbalanceReducesToEq2(t *testing.T) {
	p := makeProblem(t, 20, 4, 0.75, 6)
	r, err := replicate.BoundedAdams{}.Replicate(p, 24)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	rel := RelativeImbalance(p, layout)
	abs := core.ImbalanceMax(layout.ServerBandwidthDemand(p))
	if math.Abs(rel-abs) > 1e-12 {
		t.Fatalf("homogeneous RelativeImbalance %g != Eq.2 on demand %g", rel, abs)
	}
}

func TestHeteroStorageRespected(t *testing.T) {
	// Saturate the heterogeneous cluster: small servers must not be
	// overfilled by any placer.
	p := heteroProblem(t, 24)
	total, err := p.ClusterReplicaCapacity()
	if err != nil {
		t.Fatal(err)
	}
	// Tiers scale with m: 3×⌊2·24/5⌋ + 3×⌊24/5⌋ = 3×9 + 3×4 = 39.
	if total != 39 {
		t.Fatalf("capacity = %d, want 39", total)
	}
	budget := total
	if budget > p.M()*p.N() {
		budget = p.M() * p.N()
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range []Placer{WeightedSLF{}, BSR{}, SmallestLoadFirst{}} {
		layout, err := pl.Place(p, r)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		used := layout.ServerStorageUsed(p)
		for s, u := range used {
			if u > p.StorageOf(s)*(1+1e-9) {
				t.Fatalf("%s overfilled server %d", pl.Name(), s)
			}
		}
	}
}

func BenchmarkWeightedSLF(b *testing.B) {
	p := heteroProblem(b, 100)
	budget, err := p.TargetTotalReplicas(1.2)
	if err != nil {
		b.Fatal(err)
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (WeightedSLF{}).Place(p, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBSRPlace(b *testing.B) {
	p := heteroProblem(b, 100)
	budget, err := p.TargetTotalReplicas(1.2)
	if err != nil {
		b.Fatal(err)
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (BSR{}).Place(p, r); err != nil {
			b.Fatal(err)
		}
	}
}
