package place

import (
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/replicate"
	"vodcluster/internal/stats"
)

// bruteForceBestImbalance exhaustively enumerates feasible placements of the
// replica vector and returns the minimum Eq. 3 load imbalance. Exponential;
// callers keep M·N tiny.
func bruteForceBestImbalance(t *testing.T, p *core.Problem, replicas []int) float64 {
	t.Helper()
	n := p.N()
	capLeft := make([]float64, n)
	for s := range capLeft {
		capLeft[s] = p.StorageOf(s)
	}
	peak := p.PeakRequests()
	loads := make([]float64, n)
	best := -1.0

	var rec func(v int)
	var choose func(v, start, left int, chosen []int)
	rec = func(v int) {
		if v == p.M() {
			if l := core.ImbalanceStd(loads); best < 0 || l < best {
				best = l
			}
			return
		}
		choose(v, 0, replicas[v], nil)
	}
	choose = func(v, start, left int, chosen []int) {
		if left == 0 {
			w := p.Catalog[v].Popularity * peak / float64(replicas[v])
			size := p.Catalog[v].SizeBytes()
			for _, s := range chosen {
				loads[s] += w
				capLeft[s] -= size
			}
			ok := true
			for _, s := range chosen {
				if capLeft[s] < -1e-6 {
					ok = false
				}
			}
			if ok {
				rec(v + 1)
			}
			for _, s := range chosen {
				loads[s] -= w
				capLeft[s] += size
			}
			return
		}
		for s := start; s <= n-left; s++ {
			choose(v, s+1, left-1, append(chosen, s))
		}
	}
	rec(0)
	if best < 0 {
		t.Fatal("no feasible placement found by brute force")
	}
	return best
}

// TestSLFNearOptimalSmall compares smallest-load-first against the exhaustive
// optimum on random tiny instances: SLF must stay within 2× of the best
// possible Eq. 3 imbalance plus a small absolute slack, and of course within
// its own theorem bound.
func TestSLFNearOptimalSmall(t *testing.T) {
	rng := stats.NewRNG(2024)
	for trial := 0; trial < 25; trial++ {
		m := 3 + rng.Intn(3) // 3..5 videos
		n := 2 + rng.Intn(2) // 2..3 servers
		capPer := (m+n-1)/n + 1
		p := makeProblem(t, m, n, 0.3+rng.Float64()*0.7, capPer)
		maxBudget := n * capPer
		if maxBudget > m*n {
			maxBudget = m * n
		}
		budget := m + rng.Intn(maxBudget-m+1)
		r, err := replicate.BoundedAdams{}.Replicate(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := SmallestLoadFirst{}.Place(p, r)
		if err != nil {
			t.Fatal(err)
		}
		got := core.ImbalanceStd(layout.ServerLoads(p))
		opt := bruteForceBestImbalance(t, p, r)
		slack := 0.05 * p.PeakRequests() / float64(n)
		if got > 2*opt+slack {
			t.Fatalf("trial %d (m=%d n=%d budget=%d): SLF imbalance %.3f vs optimal %.3f",
				trial, m, n, budget, got, opt)
		}
	}
}
