package place

import (
	"fmt"

	"vodcluster/internal/core"
)

// RoundRobin is the baseline placement (paper §4.2): replicas are arranged in
// groups in catalog order — v1's replicas, then v2's, and so on — and dealt
// to servers cyclically. A server that already holds the video or lacks
// storage is skipped. The paper shows this is optimal only when every replica
// carries the same communication weight.
type RoundRobin struct{}

// Name implements Placer.
func (RoundRobin) Name() string { return "roundrobin" }

// Place implements Placer.
func (RoundRobin) Place(p *core.Problem, replicas []int) (*core.Layout, error) {
	if err := checkReplicaVector(p, replicas); err != nil {
		return nil, err
	}
	refs := groupedReplicas(p, replicas)
	st := newState(p, replicas)
	n := p.N()
	next := 0
	for _, ref := range refs {
		placed := false
		for probe := 0; probe < n; probe++ {
			sv := (next + probe) % n
			if st.canHost(sv, ref.video) {
				if err := st.assign(sv, ref.video, ref.weight); err != nil {
					return nil, err
				}
				next = (sv + 1) % n
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("place: roundrobin cannot place a replica of video %d", ref.video)
		}
	}
	if err := st.layout.Validate(p); err != nil {
		return nil, fmt.Errorf("place: roundrobin produced invalid layout: %w", err)
	}
	return st.layout, nil
}

var _ Placer = RoundRobin{}
