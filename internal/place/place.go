// Package place implements the paper's video placement algorithms: mapping
// all replicas of M videos onto N servers to minimize the load imbalance
// degree L, subject to per-server storage (Eq. 4) and the rule that all
// replicas of a video live on distinct servers (Eq. 6).
//
// The paper's contribution is the smallest-load-first placement
// (Algorithm 1), whose imbalance under Eq. 3 is bounded by
// max w − min w (Theorem 4.2). A round-robin placement serves as the
// baseline, with greedy and random variants for ablations.
package place

import (
	"fmt"
	"sort"

	"vodcluster/internal/core"
)

// Placer maps a replica vector onto servers.
type Placer interface {
	// Place returns a layout with Servers filled in for every video,
	// satisfying the hard constraints. replicas must already satisfy
	// 1 ≤ r_i ≤ p.N().
	Place(p *core.Problem, replicas []int) (*core.Layout, error)
	// Name identifies the algorithm in reports.
	Name() string
}

// replicaRef is one replica awaiting placement.
type replicaRef struct {
	video  int
	weight float64
}

// sortedReplicas flattens the replica vector into per-replica refs sorted by
// communication weight, non-increasing; ties break toward the lower video ID
// so results are deterministic. Replicas of one video are adjacent (they all
// share one weight), which is the "grouped" arrangement of Algorithm 1.
func sortedReplicas(p *core.Problem, replicas []int) []replicaRef {
	total := 0
	for _, r := range replicas {
		total += r
	}
	refs := make([]replicaRef, 0, total)
	peak := p.PeakRequests()
	for v, r := range replicas {
		if r <= 0 {
			continue
		}
		w := p.Catalog[v].Popularity * peak / float64(r)
		for k := 0; k < r; k++ {
			refs = append(refs, replicaRef{video: v, weight: w})
		}
	}
	sort.SliceStable(refs, func(i, j int) bool {
		if refs[i].weight != refs[j].weight {
			return refs[i].weight > refs[j].weight
		}
		return refs[i].video < refs[j].video
	})
	return refs
}

// groupedReplicas flattens the replica vector in catalog (rank) order without
// sorting by weight — the "arbitrary order" arrangement the paper's
// round-robin placement uses.
func groupedReplicas(p *core.Problem, replicas []int) []replicaRef {
	refs := make([]replicaRef, 0)
	peak := p.PeakRequests()
	for v, r := range replicas {
		if r <= 0 {
			continue
		}
		w := p.Catalog[v].Popularity * peak / float64(r)
		for k := 0; k < r; k++ {
			refs = append(refs, replicaRef{video: v, weight: w})
		}
	}
	return refs
}

// state tracks the mutable placement state: accumulated expected load,
// remaining storage bytes, and the layout under construction.
type state struct {
	p       *core.Problem
	layout  *core.Layout
	loads   []float64
	storage []float64 // bytes remaining
}

func newState(p *core.Problem, replicas []int) *state {
	s := &state{
		p:       p,
		layout:  core.FromReplicaVector(replicas),
		loads:   make([]float64, p.N()),
		storage: make([]float64, p.N()),
	}
	for i := range s.storage {
		s.storage[i] = p.StorageOf(i)
	}
	return s
}

// canHost reports whether server sv can receive a replica of video v.
func (s *state) canHost(sv, v int) bool {
	return !s.layout.Holds(v, sv) && s.storage[sv] >= s.p.Catalog[v].SizeBytes()-1e-6
}

// assign places a replica of video v with weight w on server sv.
func (s *state) assign(sv, v int, w float64) error {
	if err := s.layout.Place(v, sv); err != nil {
		return err
	}
	s.loads[sv] += w
	s.storage[sv] -= s.p.Catalog[v].SizeBytes()
	return nil
}

// unassign reverses assign; used by conflict-resolution swaps.
func (s *state) unassign(sv, v int, w float64) {
	list := s.layout.Servers[v]
	for i, x := range list {
		if x == sv {
			s.layout.Servers[v] = append(list[:i], list[i+1:]...)
			break
		}
	}
	s.loads[sv] -= w
	s.storage[sv] += s.p.Catalog[v].SizeBytes()
}

// checkReplicaVector validates placement preconditions.
func checkReplicaVector(p *core.Problem, replicas []int) error {
	if len(replicas) != p.M() {
		return fmt.Errorf("place: replica vector has %d entries for %d videos", len(replicas), p.M())
	}
	needed := 0.0
	for v, r := range replicas {
		if r < 1 || r > p.N() {
			return fmt.Errorf("place: video %d has %d replicas; want 1..%d", v, r, p.N())
		}
		needed += float64(r) * p.Catalog[v].SizeBytes()
	}
	if avail := p.TotalStorage(); needed > avail*(1+1e-9) {
		return fmt.Errorf("place: replicas need %.0f bytes; cluster has %.0f", needed, avail)
	}
	return nil
}

// relocateFor makes room for a replica of video v when every server with
// storage room already holds it: it moves some other video's replica off a
// full server that does not hold v onto a server with room, then returns
// that freed server. This last-resort repair keeps the greedy placers
// complete on heterogeneous clusters, where storage can run out mid-stream.
// It returns -1 when no single relocation unblocks the placement.
func (s *state) relocateFor(v int) int { return s.relocateDepth(v, 3) }

func (s *state) relocateDepth(v, depth int) int {
	if depth <= 0 {
		return -1
	}
	for sf := 0; sf < s.p.N(); sf++ {
		if s.layout.Holds(v, sf) {
			continue // moving content off sf would not let it host v twice
		}
		if s.storage[sf] >= s.p.Catalog[v].SizeBytes()-1e-6 {
			continue // sf already has room; the caller would have used it
		}
		// Find a resident video vx on sf that fits somewhere else.
		for vx := 0; vx < s.p.M(); vx++ {
			if vx == v || !s.layout.Holds(vx, sf) {
				continue
			}
			for sr := 0; sr < s.p.N(); sr++ {
				if sr == sf || !s.canHost(sr, vx) {
					continue
				}
				w := s.weightOf(vx)
				s.unassign(sf, vx, w)
				if err := s.assign(sr, vx, w); err != nil {
					// Cannot happen after canHost, but restore defensively.
					_ = s.assign(sf, vx, w)
					continue
				}
				if s.canHost(sf, v) {
					return sf
				}
				// Still not enough room (larger video); keep freeing.
				if sf2 := s.relocateDepth(v, depth-1); sf2 != -1 {
					return sf2
				}
				// Give up on this path; leave the relocation in place (it
				// is harmless) and try the next candidate.
			}
		}
	}
	return -1
}

// weightOf returns the per-replica communication weight of video v under the
// state's replica vector.
func (s *state) weightOf(v int) float64 {
	r := s.layout.Replicas[v]
	if r <= 0 {
		return 0
	}
	return s.p.Catalog[v].Popularity * s.p.PeakRequests() / float64(r)
}
