package place

import (
	"fmt"
	"sort"

	"vodcluster/internal/core"
)

// SmallestLoadFirst is the paper's Algorithm 1. Replicas are arranged in
// groups per video and the groups sorted by communication weight,
// non-increasing. Placement proceeds in rounds of N: each round takes the N
// heaviest unplaced replicas and gives exactly one to each server — the
// heaviest replica to the least-loaded server that does not already hold
// that video (and has storage room), the next to the least-loaded remaining
// server, and so on. Giving each server one replica per round keeps storage
// use perfectly even, and weight-ordered rounds yield the tight imbalance
// bound of Theorem 4.2: L_Eq3 ≤ max_i w_i − min_i w_i.
//
// When the least-loaded remaining server already holds the video, the replica
// moves to the next-smallest load (the v4² step in the paper's Figure 3).
// If every remaining server in the round holds the video, a same-round swap
// repairs the conflict; placement fails only if the instance itself is
// infeasible.
type SmallestLoadFirst struct{}

// Name implements Placer.
func (SmallestLoadFirst) Name() string { return "slf" }

// Place implements Placer.
func (SmallestLoadFirst) Place(p *core.Problem, replicas []int) (*core.Layout, error) {
	if err := checkReplicaVector(p, replicas); err != nil {
		return nil, err
	}
	refs := sortedReplicas(p, replicas)
	st := newState(p, replicas)
	n := p.N()

	for start := 0; start < len(refs); start += n {
		end := start + n
		if end > len(refs) {
			end = len(refs)
		}
		if err := placeRound(st, refs[start:end]); err != nil {
			return nil, err
		}
	}
	if err := st.layout.Validate(p); err != nil {
		return nil, fmt.Errorf("place: slf produced invalid layout: %w", err)
	}
	return st.layout, nil
}

// roundAssignment records one placement within the current round so a later
// conflict can swap with it.
type roundAssignment struct {
	server int
	video  int
	weight float64
}

// placeRound distributes the given replicas (already weight-ordered), one per
// server, smallest load first.
func placeRound(st *state, round []replicaRef) error {
	free := make([]int, st.p.N())
	for i := range free {
		free[i] = i
	}
	done := make([]roundAssignment, 0, len(round))

	takeFree := func(idx int) int {
		sv := free[idx]
		free = append(free[:idx], free[idx+1:]...)
		return sv
	}

	for _, ref := range round {
		// Order the free servers by (load, index): smallest load first.
		sort.SliceStable(free, func(a, b int) bool {
			if st.loads[free[a]] != st.loads[free[b]] {
				return st.loads[free[a]] < st.loads[free[b]]
			}
			return free[a] < free[b]
		})
		placed := false
		for idx := range free {
			if st.canHost(free[idx], ref.video) {
				sv := takeFree(idx)
				if err := st.assign(sv, ref.video, ref.weight); err != nil {
					return err
				}
				done = append(done, roundAssignment{server: sv, video: ref.video, weight: ref.weight})
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		// Conflict: every remaining server either holds ref.video or (on
		// heterogeneous clusters) is out of storage. First try a same-round
		// swap — find (sv1, v1) where sv1 can host ref.video and some free
		// server can host v1 — and as a last resort relocate an existing
		// replica from an earlier round to make room.
		moved, err := swapRepair(st, &free, done, ref)
		if err != nil {
			sf := st.relocateFor(ref.video)
			if sf == -1 {
				return err
			}
			if err := st.assign(sf, ref.video, ref.weight); err != nil {
				return err
			}
			for idx, sv := range free {
				if sv == sf {
					free = append(free[:idx], free[idx+1:]...)
					break
				}
			}
			moved = roundAssignment{server: sf, video: ref.video, weight: ref.weight}
		}
		done = append(done, moved)
	}
	return nil
}

// swapRepair relocates an earlier same-round assignment to a free server and
// places ref on the vacated server. It returns the new assignment for ref.
func swapRepair(st *state, free *[]int, done []roundAssignment, ref replicaRef) (roundAssignment, error) {
	for di := len(done) - 1; di >= 0; di-- {
		prev := done[di]
		if prev.video == ref.video {
			continue
		}
		// The vacated server must be able to host ref.video.
		if st.layout.Holds(ref.video, prev.server) {
			continue
		}
		for idx, sv2 := range *free {
			if !st.canHost(sv2, prev.video) {
				continue
			}
			// Move prev.video from prev.server to sv2, then place ref on
			// prev.server.
			st.unassign(prev.server, prev.video, prev.weight)
			if err := st.assign(sv2, prev.video, prev.weight); err != nil {
				return roundAssignment{}, err
			}
			if !st.canHost(prev.server, ref.video) {
				// Rare storage edge with heterogeneous sizes: undo and keep
				// searching.
				st.unassign(sv2, prev.video, prev.weight)
				if err := st.assign(prev.server, prev.video, prev.weight); err != nil {
					return roundAssignment{}, err
				}
				continue
			}
			if err := st.assign(prev.server, ref.video, ref.weight); err != nil {
				return roundAssignment{}, err
			}
			*free = append((*free)[:idx], (*free)[idx+1:]...)
			return roundAssignment{server: prev.server, video: ref.video, weight: ref.weight}, nil
		}
	}
	return roundAssignment{}, fmt.Errorf("place: slf cannot place a replica of video %d: all feasible servers already hold it", ref.video)
}

var _ Placer = SmallestLoadFirst{}

// TheoremBound returns the Theorem 4.2 upper bound on the Eq. 3 load
// imbalance degree achieved by smallest-load-first placement: the difference
// between the greatest and smallest per-replica communication weights.
//
// The paper's telescoping proof assumes every round places exactly N
// replicas, i.e. the total replica count is a multiple of N (storage fully
// saturated, the setting of §4.1). When the final round is partial, the
// spread can additionally grow by that round's largest weight; GeneralBound
// covers that case. Both bounds were verified empirically over tens of
// thousands of random instances.
func TheoremBound(p *core.Problem, replicas []int) float64 {
	peak := p.PeakRequests()
	first := true
	var min, max float64
	for v, r := range replicas {
		if r <= 0 {
			continue
		}
		w := p.Catalog[v].Popularity * peak / float64(r)
		if first {
			min, max = w, w
			first = false
			continue
		}
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	return max - min
}

// GeneralBound extends TheoremBound to replica totals that are not a
// multiple of N: the final, partial round can widen the load spread by at
// most its own largest communication weight, which is added to the full-round
// bound.
func GeneralBound(p *core.Problem, replicas []int) float64 {
	bound := TheoremBound(p, replicas)
	total := 0
	for _, r := range replicas {
		total += r
	}
	n := p.N()
	if n == 0 || total%n == 0 {
		return bound
	}
	refs := sortedReplicas(p, replicas)
	lastRoundStart := (total / n) * n
	if lastRoundStart < len(refs) {
		bound += refs[lastRoundStart].weight
	}
	return bound
}
