package place

import (
	"fmt"
	"math"

	"vodcluster/internal/core"
)

// WeightedSLF generalizes smallest-load-first to heterogeneous clusters:
// servers are ordered by *relative* load — accumulated communication weight
// divided by the server's share of the cluster's outgoing bandwidth — so a
// server with twice the bandwidth receives roughly twice the expected load.
// On a homogeneous cluster it behaves exactly like SmallestLoadFirst.
//
// The round structure also adapts: instead of one replica per server per
// round, servers keep receiving replicas as long as their storage is the
// least-filled *in proportion to capacity*, so small servers fill at the
// same relative rate as large ones.
type WeightedSLF struct{}

// Name implements Placer.
func (WeightedSLF) Name() string { return "wslf" }

// Place implements Placer.
func (WeightedSLF) Place(p *core.Problem, replicas []int) (*core.Layout, error) {
	if err := checkReplicaVector(p, replicas); err != nil {
		return nil, err
	}
	refs := sortedReplicas(p, replicas)
	st := newState(p, replicas)

	// Bandwidth shares normalize the load comparison; storage shares
	// normalize the fill comparison.
	meanBW := p.TotalBandwidth() / float64(p.N())
	bwShare := make([]float64, p.N())
	for s := range bwShare {
		bwShare[s] = p.BandwidthOf(s) / meanBW
	}

	for _, ref := range refs {
		best := -1
		var bestKey float64
		for sv := 0; sv < p.N(); sv++ {
			if !st.canHost(sv, ref.video) {
				continue
			}
			key := st.loads[sv] / bwShare[sv]
			if best == -1 || key < bestKey {
				best, bestKey = sv, key
			}
		}
		if best == -1 {
			best = st.relocateFor(ref.video)
		}
		if best == -1 {
			return nil, fmt.Errorf("place: wslf cannot place a replica of video %d", ref.video)
		}
		if err := st.assign(best, ref.video, ref.weight); err != nil {
			return nil, err
		}
	}
	if err := st.layout.Validate(p); err != nil {
		return nil, fmt.Errorf("place: wslf produced invalid layout: %w", err)
	}
	return st.layout, nil
}

var _ Placer = WeightedSLF{}

// BSR implements the bandwidth-to-space-ratio placement policy of Dan &
// Sitaram (SIGMOD '95), which the paper's related-work section cites as the
// classic online heuristic: every storage device has a bandwidth-to-space
// ratio, every video has one too (its expected streaming bandwidth over its
// size), and each placement keeps the device's *remaining* BSR as close as
// possible to the cluster norm by matching hot (high-BSR) videos to servers
// with relatively more spare bandwidth than spare space.
//
// Concretely, replicas are placed in descending weight order; each replica
// has its own BSR (expected bandwidth demand over storage size) and goes to
// the feasible server whose *remaining* free-bandwidth-to-free-space ratio
// matches it most closely (compared in log space, so 2× too hot and 2× too
// cold are equally bad). Servers without bandwidth headroom for the replica
// are used only as a last resort. Unlike SLF it reasons about both resources
// at once, which is its advantage on clusters where bandwidth and storage
// are not proportional.
type BSR struct{}

// Name implements Placer.
func (BSR) Name() string { return "bsr" }

// Place implements Placer.
func (BSR) Place(p *core.Problem, replicas []int) (*core.Layout, error) {
	if err := checkReplicaVector(p, replicas); err != nil {
		return nil, err
	}
	refs := sortedReplicas(p, replicas)
	st := newState(p, replicas)

	// Remaining expected bandwidth per server: capacity minus the demand of
	// replicas placed so far (weight × bit rate × overlap ≈ weight × rate).
	remBW := make([]float64, p.N())
	for s := range remBW {
		remBW[s] = p.BandwidthOf(s)
	}

	demandOf := func(ref replicaRef) float64 {
		overlap := p.Catalog[ref.video].Duration / p.PeakPeriod
		if overlap > 1 {
			overlap = 1
		}
		return ref.weight * p.Catalog[ref.video].BitRate * overlap
	}

	const tiny = 1e-9
	for _, ref := range refs {
		size := p.Catalog[ref.video].SizeBytes()
		demand := demandOf(ref)
		videoBSR := demand / size
		best := -1
		bestRoom := false
		bestBucket := 0
		bestFree := 0.0
		for sv := 0; sv < p.N(); sv++ {
			if !st.canHost(sv, ref.video) {
				continue
			}
			freeBW := remBW[sv]
			if freeBW < tiny {
				freeBW = tiny
			}
			serverBSR := freeBW / (st.storage[sv] + tiny)
			diff := math.Abs(math.Log(videoBSR) - math.Log(serverBSR))
			// Quantize the match quality so that near-equal BSR matches
			// (e.g. the identical servers of one hardware tier) are broken
			// by load instead of by index, which would pile hot replicas
			// onto one box.
			bucket := int(diff / 0.5)
			room := remBW[sv] >= demand
			// Tie-break on combined free fractions of both resources so
			// cold replicas spread across a tier instead of stacking on
			// whichever box happens to lead in one dimension.
			freeFrac := remBW[sv]/p.BandwidthOf(sv) + st.storage[sv]/p.StorageOf(sv)
			better := best == -1 ||
				(room && !bestRoom) ||
				(room == bestRoom && bucket < bestBucket) ||
				(room == bestRoom && bucket == bestBucket && freeFrac > bestFree)
			if better {
				best, bestRoom, bestBucket, bestFree = sv, room, bucket, freeFrac
			}
		}
		if best == -1 {
			best = st.relocateFor(ref.video)
		}
		if best == -1 {
			return nil, fmt.Errorf("place: bsr cannot place a replica of video %d", ref.video)
		}
		if err := st.assign(best, ref.video, ref.weight); err != nil {
			return nil, err
		}
		remBW[best] -= demand
	}
	if err := st.layout.Validate(p); err != nil {
		return nil, fmt.Errorf("place: bsr produced invalid layout: %w", err)
	}
	return st.layout, nil
}

var _ Placer = BSR{}

// RelativeImbalance measures load imbalance in utilization space for
// heterogeneous clusters: max_s(load_s/bw_s) / mean_s(load_s/bw_s) − 1. It
// reduces to core.ImbalanceMax on homogeneous clusters and is the metric the
// heterogeneous placement experiments report.
func RelativeImbalance(p *core.Problem, l *core.Layout) float64 {
	demand := l.ServerBandwidthDemand(p)
	utils := make([]float64, len(demand))
	for s, d := range demand {
		utils[s] = d / p.BandwidthOf(s)
	}
	return core.ImbalanceMax(utils)
}
