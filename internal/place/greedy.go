package place

import (
	"fmt"

	"vodcluster/internal/core"
)

// Greedy is the classic longest-processing-time heuristic adapted to the
// placement constraints: replicas in non-increasing weight order, each to the
// feasible server with the smallest accumulated load, without the
// round-of-N structure of SmallestLoadFirst. It usually matches SLF on load
// balance but can skew storage use, since nothing forces servers to fill at
// the same rate; it exists as an ablation of the round discipline.
type Greedy struct{}

// Name implements Placer.
func (Greedy) Name() string { return "greedy" }

// Place implements Placer.
func (Greedy) Place(p *core.Problem, replicas []int) (*core.Layout, error) {
	if err := checkReplicaVector(p, replicas); err != nil {
		return nil, err
	}
	refs := sortedReplicas(p, replicas)
	st := newState(p, replicas)
	for _, ref := range refs {
		best := -1
		for sv := 0; sv < p.N(); sv++ {
			if !st.canHost(sv, ref.video) {
				continue
			}
			if best == -1 || st.loads[sv] < st.loads[best] {
				best = sv
			}
		}
		if best == -1 {
			best = st.relocateFor(ref.video)
		}
		if best == -1 {
			return nil, fmt.Errorf("place: greedy cannot place a replica of video %d", ref.video)
		}
		if err := st.assign(best, ref.video, ref.weight); err != nil {
			return nil, err
		}
	}
	if err := st.layout.Validate(p); err != nil {
		return nil, fmt.Errorf("place: greedy produced invalid layout: %w", err)
	}
	return st.layout, nil
}

var _ Placer = Greedy{}
