package place

import (
	"fmt"

	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// Random places each replica on a uniformly random feasible server. It is the
// no-intelligence control for placement ablations and a stress generator for
// the constraint validator. The same Seed always yields the same layout.
type Random struct {
	Seed int64
}

// Name implements Placer.
func (Random) Name() string { return "random" }

// Place implements Placer.
func (r Random) Place(p *core.Problem, replicas []int) (*core.Layout, error) {
	if err := checkReplicaVector(p, replicas); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(r.Seed)
	refs := groupedReplicas(p, replicas)
	// Shuffle placement order so storage pressure is spread fairly.
	rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
	st := newState(p, replicas)
	feasible := make([]int, 0, p.N())
	for _, ref := range refs {
		feasible = feasible[:0]
		for sv := 0; sv < p.N(); sv++ {
			if st.canHost(sv, ref.video) {
				feasible = append(feasible, sv)
			}
		}
		if len(feasible) == 0 {
			// All servers with room already hold the video; relocate some
			// other replica to unblock, as the deterministic placers do.
			if sf := st.relocateFor(ref.video); sf != -1 {
				feasible = append(feasible, sf)
			}
		}
		if len(feasible) == 0 {
			return nil, fmt.Errorf("place: random placement stuck on video %d (retry with another seed or use slf)", ref.video)
		}
		sv := feasible[rng.Intn(len(feasible))]
		if err := st.assign(sv, ref.video, ref.weight); err != nil {
			return nil, err
		}
	}
	if err := st.layout.Validate(p); err != nil {
		return nil, fmt.Errorf("place: random produced invalid layout: %w", err)
	}
	return st.layout, nil
}

var _ Placer = Random{}
