package place

import (
	"math"
	"strings"
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/replicate"
	"vodcluster/internal/stats"
)

// makeProblem builds a fixed-rate instance: m videos, n servers, skew theta,
// storage for capPerServer replicas each.
func makeProblem(t testing.TB, m, n int, theta float64, capPerServer int) *core.Problem {
	t.Helper()
	c, err := core.NewCatalog(m, theta, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         n,
		StoragePerServer:   float64(capPerServer) * c[0].SizeBytes(),
		BandwidthPerServer: 1.8 * core.Gbps,
		ArrivalRate:        40.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func allPlacers() []Placer {
	return []Placer{SmallestLoadFirst{}, RoundRobin{}, Greedy{}, Random{Seed: 3}}
}

func TestPlacersSatisfyConstraints(t *testing.T) {
	p := makeProblem(t, 30, 6, 0.75, 8)
	r, err := replicate.BoundedAdams{}.Replicate(p, 44)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range allPlacers() {
		layout, err := pl.Place(p, r)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if err := layout.Validate(p); err != nil {
			t.Fatalf("%s produced invalid layout: %v", pl.Name(), err)
		}
		for v, want := range r {
			if layout.Replicas[v] != want || len(layout.Servers[v]) != want {
				t.Fatalf("%s changed the replica vector at video %d", pl.Name(), v)
			}
		}
	}
}

func TestPlacersRejectBadVectors(t *testing.T) {
	p := makeProblem(t, 10, 4, 0.75, 3)
	for _, pl := range allPlacers() {
		if _, err := pl.Place(p, []int{1, 1}); err == nil {
			t.Fatalf("%s: wrong-length vector accepted", pl.Name())
		}
		bad := make([]int, 10)
		for i := range bad {
			bad[i] = 1
		}
		bad[0] = 5 // exceeds N
		if _, err := pl.Place(p, bad); err == nil {
			t.Fatalf("%s: r > N accepted", pl.Name())
		}
		bad[0] = 0
		if _, err := pl.Place(p, bad); err == nil {
			t.Fatalf("%s: r = 0 accepted", pl.Name())
		}
		over := make([]int, 10)
		for i := range over {
			over[i] = 2 // 20 replicas, capacity 12
		}
		if _, err := pl.Place(p, over); err == nil {
			t.Fatalf("%s: storage-infeasible vector accepted", pl.Name())
		}
	}
}

// TestSLFBoundTheorem verifies Theorem 4.2 on random instances under the
// paper's setting (total replicas a multiple of N, i.e. only full placement
// rounds): the Eq. 3 load imbalance of a smallest-load-first placement never
// exceeds max w − min w.
func TestSLFBoundTheorem(t *testing.T) {
	rng := stats.NewRNG(1234)
	for trial := 0; trial < 200; trial++ {
		m := 5 + rng.Intn(60)
		n := 2 + rng.Intn(10)
		capPer := 1 + (m+n-1)/n + rng.Intn(5)
		theta := 0.2 + rng.Float64()
		p := makeProblem(t, m, n, theta, capPer)
		budget := m + rng.Intn(n*capPer-m+1)
		if budget > m*n {
			budget = m * n
		}
		budget -= budget % n // paper setting: full rounds only
		if budget < m {
			budget += n
		}
		if budget > n*capPer || budget > m*n {
			continue
		}
		r, err := replicate.BoundedAdams{}.Replicate(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := SmallestLoadFirst{}.Place(p, r)
		if err != nil {
			t.Fatalf("trial %d (m=%d n=%d budget=%d): %v", trial, m, n, budget, err)
		}
		loads := layout.ServerLoads(p)
		bound := TheoremBound(p, r)
		if got := core.ImbalanceStd(loads); got > bound+1e-9 {
			t.Fatalf("trial %d: Eq.3 L = %g exceeds Theorem 4.2 bound %g", trial, got, bound)
		}
	}
}

// TestSLFGeneralBound covers arbitrary budgets: with the partial-round
// correction term, the bound holds for any replica total.
func TestSLFGeneralBound(t *testing.T) {
	rng := stats.NewRNG(4321)
	for trial := 0; trial < 300; trial++ {
		m := 5 + rng.Intn(60)
		n := 2 + rng.Intn(10)
		capPer := 1 + (m+n-1)/n + rng.Intn(5)
		theta := 0.2 + rng.Float64()
		p := makeProblem(t, m, n, theta, capPer)
		budget := m + rng.Intn(n*capPer-m+1)
		if budget > m*n {
			budget = m * n
		}
		r, err := replicate.BoundedAdams{}.Replicate(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := SmallestLoadFirst{}.Place(p, r)
		if err != nil {
			t.Fatalf("trial %d (m=%d n=%d budget=%d): %v", trial, m, n, budget, err)
		}
		loads := layout.ServerLoads(p)
		bound := GeneralBound(p, r)
		if got := core.ImbalanceStd(loads); got > bound+1e-9 {
			t.Fatalf("trial %d: Eq.3 L = %g exceeds general bound %g", trial, got, bound)
		}
		if GeneralBound(p, r) < TheoremBound(p, r)-1e-12 {
			t.Fatal("general bound below theorem bound")
		}
	}
}

// TestSLFStorageBalanced: the round discipline keeps per-server replica
// counts within one of each other.
func TestSLFStorageBalanced(t *testing.T) {
	p := makeProblem(t, 50, 8, 0.75, 10)
	r, err := replicate.BoundedAdams{}.Replicate(p, 77)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, p.N())
	for _, servers := range layout.Servers {
		for _, s := range servers {
			counts[s]++
		}
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("round discipline broken: replica counts %v", counts)
	}
}

// TestSLFStress hammers the swap-repair path with thousands of random
// feasible instances; every one must place successfully and validate.
func TestSLFStress(t *testing.T) {
	rng := stats.NewRNG(77)
	trials := 2000
	if testing.Short() {
		trials = 200
	}
	for trial := 0; trial < trials; trial++ {
		m := 2 + rng.Intn(20)
		n := 2 + rng.Intn(8)
		capPer := (m + n - 1) / n
		if capPer < 1 {
			capPer = 1
		}
		capPer += rng.Intn(4)
		if capPer > m { // no point storing more replicas than videos
			capPer = m
		}
		p := makeProblem(t, m, n, rng.Float64(), capPer)
		maxBudget := n * capPer
		if maxBudget > m*n {
			maxBudget = m * n
		}
		budget := m + rng.Intn(maxBudget-m+1)
		r, err := replicate.BoundedAdams{}.Replicate(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := SmallestLoadFirst{}.Place(p, r)
		if err != nil {
			t.Fatalf("trial %d (m=%d n=%d capPer=%d budget=%d): %v", trial, m, n, capPer, budget, err)
		}
		if err := layout.Validate(p); err != nil {
			t.Fatalf("trial %d: invalid layout: %v", trial, err)
		}
	}
}

// TestSLFBeatsRoundRobinOnSkewedLoad: with a hot catalog and low degree,
// smallest-load-first must balance at least as well as round-robin, measured
// by Eq. 2.
func TestSLFBeatsRoundRobinOnSkewedLoad(t *testing.T) {
	p := makeProblem(t, 100, 8, 1.0, 15)
	r, err := replicate.Classification{}.Replicate(p, 120)
	if err != nil {
		t.Fatal(err)
	}
	slf, err := SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobin{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	lSLF := core.ImbalanceMax(slf.ServerLoads(p))
	lRR := core.ImbalanceMax(rr.ServerLoads(p))
	if lSLF > lRR+1e-9 {
		t.Fatalf("SLF imbalance %g worse than round-robin %g", lSLF, lRR)
	}
}

func TestRoundRobinSpreadsGroups(t *testing.T) {
	// With M = N and one replica each, round-robin puts video i on server i.
	p := makeProblem(t, 4, 4, 0.75, 1)
	r := []int{1, 1, 1, 1}
	layout, err := RoundRobin{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if layout.Servers[v][0] != v {
			t.Fatalf("round-robin order broken: video %d on %v", v, layout.Servers[v])
		}
	}
}

func TestRandomPlacementDeterministicPerSeed(t *testing.T) {
	p := makeProblem(t, 20, 5, 0.75, 6)
	r, err := replicate.BoundedAdams{}.Replicate(p, 28)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Random{Seed: 9}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random{Seed: 9}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Servers {
		for k := range a.Servers[v] {
			if a.Servers[v][k] != b.Servers[v][k] {
				t.Fatal("same seed produced different layouts")
			}
		}
	}
	c, err := Random{Seed: 10}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Servers {
		for k := range a.Servers[v] {
			if a.Servers[v][k] != c.Servers[v][k] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical layouts (suspicious)")
	}
}

func TestGreedyMatchesSLFBalanceClosely(t *testing.T) {
	// Greedy without rounds should balance comparably (ablation of the
	// round discipline). Allow it to win or lose, but both must respect the
	// theorem-style bound scaled by 2.
	p := makeProblem(t, 60, 8, 0.75, 12)
	r, err := replicate.BoundedAdams{}.Replicate(p, 90)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Greedy{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	loads := g.ServerLoads(p)
	if core.ImbalanceStd(loads) > 2*TheoremBound(p, r)+1e-9 {
		t.Fatalf("greedy imbalance wildly above bound: %g vs %g",
			core.ImbalanceStd(loads), TheoremBound(p, r))
	}
}

func TestTheoremBound(t *testing.T) {
	p := makeProblem(t, 3, 2, 0, 3)
	// Uniform popularity and equal replicas ⇒ equal weights ⇒ bound 0.
	if got := TheoremBound(p, []int{1, 1, 1}); math.Abs(got) > 1e-12 {
		t.Fatalf("bound for uniform weights = %g, want 0", got)
	}
	// Skewed: bound is max w − min w.
	q := makeProblem(t, 2, 2, 1, 2)
	peak := q.PeakRequests()
	want := q.Catalog[0].Popularity*peak - q.Catalog[1].Popularity*peak
	if got := TheoremBound(q, []int{1, 1}); math.Abs(got-want) > 1e-9 {
		t.Fatalf("bound = %g, want %g", got, want)
	}
	if got := TheoremBound(p, []int{0, 0, 0}); got != 0 {
		t.Fatalf("bound of empty vector = %g", got)
	}
}

func TestSLFErrorMentionsVideo(t *testing.T) {
	// An infeasible instance (more replicas than the cluster can separate)
	// is rejected up front by checkReplicaVector; exercise the message.
	p := makeProblem(t, 4, 2, 0.75, 2)
	_, err := SmallestLoadFirst{}.Place(p, []int{2, 2, 2, 2})
	if err == nil {
		t.Fatal("expected storage error")
	}
	if !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func BenchmarkSLFPlace100x8(b *testing.B) {
	p := makeProblem(b, 100, 8, 0.75, 15)
	r, err := replicate.BoundedAdams{}.Replicate(p, 120)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (SmallestLoadFirst{}).Place(p, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundRobinPlace100x8(b *testing.B) {
	p := makeProblem(b, 100, 8, 0.75, 15)
	r, err := replicate.BoundedAdams{}.Replicate(p, 120)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (RoundRobin{}).Place(p, r); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUniformWeightsPerfectBalance: the paper notes round-robin placement is
// optimal when every replica carries the same communication weight; with a
// uniform catalog and a budget that is a multiple of N, both RR and SLF must
// achieve exactly zero imbalance.
func TestUniformWeightsPerfectBalance(t *testing.T) {
	p := makeProblem(t, 12, 4, 0, 6) // θ=0: uniform popularity
	r := make([]int, 12)
	for i := range r {
		r[i] = 2 // uniform replicas → uniform weights; 24 = 6 rounds of 4
	}
	for _, pl := range []Placer{SmallestLoadFirst{}, RoundRobin{}} {
		layout, err := pl.Place(p, r)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		loads := layout.ServerLoads(p)
		if got := core.ImbalanceStd(loads); got > 1e-9 {
			t.Fatalf("%s: uniform weights must balance perfectly, L = %g", pl.Name(), got)
		}
	}
}

// TestPlacersKeepReplicaGroupsIntact: no placer may merge or split replica
// groups — each video's server list has exactly r_i distinct entries.
func TestPlacersKeepReplicaGroupsIntact(t *testing.T) {
	p := makeProblem(t, 25, 5, 0.9, 8)
	r, err := replicate.BoundedAdams{}.Replicate(p, 37)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range allPlacers() {
		layout, err := pl.Place(p, r)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		for v, servers := range layout.Servers {
			seen := map[int]bool{}
			for _, s := range servers {
				if seen[s] {
					t.Fatalf("%s: video %d placed twice on server %d", pl.Name(), v, s)
				}
				seen[s] = true
			}
			if len(servers) != r[v] {
				t.Fatalf("%s: video %d has %d placements, want %d", pl.Name(), v, len(servers), r[v])
			}
		}
	}
}
